// Package rfdump's top-level benchmarks regenerate the cost side of every
// table and figure in the paper's evaluation (run the full experiment
// drivers via cmd/rfbench for the accuracy numbers):
//
//	Table 1  — per-block CPU cost: BenchmarkTable1_*
//	Figure 6 — 802.11 unicast detectors: BenchmarkFigure6_*
//	Figure 7 — 802.11 broadcast detector: BenchmarkFigure7_DIFS
//	Figure 8 — Bluetooth detectors: BenchmarkFigure8_*
//	Table 3  — traffic-mix detection: BenchmarkTable3_Mix
//	Figure 9 — the nine architectures: BenchmarkFigure9_*
//	Table 4  — real-world DBPSK selectivity: BenchmarkTable4_DBPSK
//	Ablations: BenchmarkAblation* (chunk granularity, averaging window,
//	BT cache, in-burst sampling)
//	Extensions: BenchmarkExtension* (multi-threaded scheduler, OFDM
//	detection, piconet discovery, header-only analysis, streaming mode).
//
// Each benchmark reports ns/op over a fixed pre-generated trace and
// MB/s of IQ samples processed, so relative block costs (the paper's
// CPU-time/real-time ratios) can be read directly from the output.
package rfdump

import (
	"sync"
	"testing"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/experiments"
	"rfdump/internal/flowgraph"
	"rfdump/internal/frontend"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
)

const (
	benchLAP = experiments.PiconetLAP
	benchUAP = experiments.PiconetUAP
)

func benchAddr(b byte) (a [6]byte) {
	for i := range a {
		a[i] = b
	}
	return
}

// trace cache: each workload is generated once per process.
var (
	traceMu    sync.Mutex
	traceCache = map[string]*ether.Result{}
)

func cachedTrace(b *testing.B, key string, gen func() (*ether.Result, error)) *ether.Result {
	b.Helper()
	traceMu.Lock()
	defer traceMu.Unlock()
	if res, ok := traceCache[key]; ok {
		return res
	}
	res, err := gen()
	if err != nil {
		b.Fatal(err)
	}
	traceCache[key] = res
	return res
}

// unicastTrace: ~100 ms at moderate utilization.
func benchUnicast(b *testing.B) *ether.Result {
	return cachedTrace(b, "unicast", func() (*ether.Result, error) {
		return ether.Run(ether.Config{
			Duration: 800_000,
			SNRdB:    20,
			Seed:     1,
			Sources: []mac.Source{&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 1 << 20, PayloadBytes: 500,
				InterPing: 38_000,
				Requester: benchAddr(1), Responder: benchAddr(2), BSSID: benchAddr(3),
				CFOHz: 2000,
			}},
		})
	})
}

func benchBroadcast(b *testing.B) *ether.Result {
	return cachedTrace(b, "broadcast", func() (*ether.Result, error) {
		return ether.Run(ether.Config{
			Duration: 800_000,
			SNRdB:    20,
			Seed:     2,
			Sources: []mac.Source{&mac.WiFiBroadcast{
				Rate: protocols.WiFi80211b1M, Count: 1 << 20, PayloadBytes: 500,
				Sender: benchAddr(1), BSSID: benchAddr(3),
			}},
		})
	})
}

func benchBT(b *testing.B) *ether.Result {
	return cachedTrace(b, "bt", func() (*ether.Result, error) {
		return ether.Run(ether.Config{
			Duration: 1_600_000,
			SNRdB:    20,
			Seed:     3,
			Sources: []mac.Source{&mac.BluetoothPiconet{
				LAP: benchLAP, UAP: benchUAP, Pings: 1 << 16, InterPingSlots: 2,
			}},
		})
	})
}

func benchMix(b *testing.B) *ether.Result {
	return cachedTrace(b, "mix", func() (*ether.Result, error) {
		return ether.Run(ether.Config{
			Duration: 1_600_000,
			SNRdB:    20,
			Seed:     4,
			Sources: []mac.Source{
				&mac.WiFiUnicast{
					Rate: protocols.WiFi80211b1M, Pings: 1 << 20, PayloadBytes: 500,
					InterPing: 100_000,
					Requester: benchAddr(1), Responder: benchAddr(2), BSSID: benchAddr(3),
				},
				&mac.BluetoothPiconet{LAP: benchLAP, UAP: benchUAP, Pings: 1 << 16, InterPingSlots: 20},
			},
		})
	})
}

func benchRealWorld(b *testing.B) *ether.Result {
	return cachedTrace(b, "realworld", func() (*ether.Result, error) {
		return experiments.RealWorldTrace(experiments.Options{Scale: 0.05})
	})
}

func setBytes(b *testing.B, res *ether.Result) {
	b.SetBytes(int64(len(res.Samples) * 8)) // complex64 = 8 bytes
}

// --- Table 1: per-block cost ---

func BenchmarkTable1_WiFiDemod(b *testing.B) {
	res := benchUnicast(b)
	setBytes(b, res)
	d := demod.NewWiFiDemod()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Demodulate(res.Samples, 0)
	}
}

func BenchmarkTable1_BTDemodChannel(b *testing.B) {
	res := benchUnicast(b)
	setBytes(b, res)
	d := demod.NewBTDemod(benchLAP, benchUAP, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.DemodulateChannel(res.Samples, 0, 3)
	}
}

func BenchmarkTable1_PeakDetection(b *testing.B) {
	res := benchUnicast(b)
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pd := core.NewPeakDetector(core.PeakConfig{})
		drain := func(flowgraph.Item) {}
		n := len(res.Samples)
		for s := 0; s < n; s += iq.ChunkSamples {
			e := s + iq.ChunkSamples
			if e > n {
				e = n
			}
			_ = pd.Process(core.Chunk{
				Seq:     s / iq.ChunkSamples,
				Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
				Samples: res.Samples[s:e],
			}, drain)
		}
		_ = pd.Flush(drain)
	}
}

// --- Figures 6-8, Table 3: detector cost on their workloads ---

func runPipeline(b *testing.B, res *ether.Result, cfg core.Config, analyzers ...core.Analyzer) {
	b.Helper()
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(res.Clock, cfg, analyzers...)
		if _, err := p.Run(res.Samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6_SIFSTiming(b *testing.B) {
	runPipeline(b, benchUnicast(b), core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{DisableDIFS: true})))
}

func BenchmarkFigure6_Phase(b *testing.B) {
	runPipeline(b, benchUnicast(b), core.Detect(core.WiFiPhaseSpec(core.WiFiPhaseConfig{})))
}

func BenchmarkFigure7_DIFS(b *testing.B) {
	runPipeline(b, benchBroadcast(b), core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{DisableSIFS: true})))
}

func BenchmarkFigure8_BTTiming(b *testing.B) {
	runPipeline(b, benchBT(b), core.Detect(core.BTTimingSpec(core.BTTimingConfig{})))
}

func BenchmarkFigure8_BTPhase(b *testing.B) {
	runPipeline(b, benchBT(b), core.Detect(core.BTPhaseSpec(core.BTPhaseConfig{})))
}

func BenchmarkFigure8_BTFreq(b *testing.B) {
	runPipeline(b, benchBT(b), core.Detect(core.BTFreqSpec(core.BTFreqConfig{})))
}

func BenchmarkTable3_MixTimingPhase(b *testing.B) {
	runPipeline(b, benchMix(b), core.TimingAndPhase())
}

// --- Figure 9: the nine architectures over the same trace ---

func benchArch(b *testing.B, mon arch.Monitor, res *ether.Result) {
	b.Helper()
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mon.Process(res.Samples); err != nil {
			b.Fatal(err)
		}
	}
}

func fig9Analyzers() []core.Analyzer {
	return []core.Analyzer{
		demod.NewWiFiDemod(),
		demod.NewBTDemod(benchLAP, benchUAP, 8),
	}
}

func BenchmarkFigure9_Naive(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewNaive(res.Clock, fig9Analyzers()...), res)
}

func BenchmarkFigure9_NaiveEnergy(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewNaiveEnergy(res.Clock, true, fig9Analyzers()...), res)
}

func BenchmarkFigure9_NaiveEnergyNoDemod(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewNaiveEnergy(res.Clock, false), res)
}

func BenchmarkFigure9_RFDumpTiming(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("t", res.Clock, core.TimingOnly(), fig9Analyzers()...), res)
}

func BenchmarkFigure9_RFDumpPhase(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("p", res.Clock, core.PhaseOnly(), fig9Analyzers()...), res)
}

func BenchmarkFigure9_RFDumpTimingPhase(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("tp", res.Clock, core.TimingAndPhase(), fig9Analyzers()...), res)
}

func BenchmarkFigure9_RFDumpTimingNoDemod(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("tn", res.Clock, core.TimingOnly()), res)
}

func BenchmarkFigure9_RFDumpPhaseNoDemod(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("pn", res.Clock, core.PhaseOnly()), res)
}

func BenchmarkFigure9_RFDumpTimingPhaseNoDemod(b *testing.B) {
	res := benchUnicast(b)
	benchArch(b, arch.NewRFDump("tpn", res.Clock, core.TimingAndPhase()), res)
}

// --- Table 4: real-world selectivity ---

func BenchmarkTable4_DBPSKSelectivity(b *testing.B) {
	res := benchRealWorld(b)
	runPipeline(b, res, core.Detect(core.WiFiPhaseSpec(core.WiFiPhaseConfig{})))
}

// --- Ablations (DESIGN.md section 5) ---

func BenchmarkAblationChunkSize(b *testing.B) {
	res := benchUnicast(b)
	for _, slack := range []int{25, 200, 1600} {
		b.Run(itoa(slack), func(b *testing.B) {
			cfg := core.TimingAndPhase()
			cfg.Dispatch.SlackSamples = iq.Tick(slack)
			runPipeline(b, res, cfg)
		})
	}
}

func BenchmarkAblationAvgWindow(b *testing.B) {
	res := benchUnicast(b)
	for _, win := range []int{5, 20, 80} {
		b.Run(itoa(win), func(b *testing.B) {
			cfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{}))
			cfg.Peak = core.PeakConfig{AvgWindow: win}
			runPipeline(b, res, cfg)
		})
	}
}

func BenchmarkAblationBTCache(b *testing.B) {
	res := benchBT(b)
	for _, disable := range []bool{false, true} {
		name := "cache"
		if disable {
			name = "scan"
		}
		b.Run(name, func(b *testing.B) {
			runPipeline(b, res, core.Detect(core.BTTimingSpec(core.BTTimingConfig{DisableCache: disable})))
		})
	}
}

func BenchmarkAblationSampling(b *testing.B) {
	res := benchUnicast(b)
	for _, stride := range []int{1, 4} {
		b.Run(itoa(stride), func(b *testing.B) {
			cfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{}))
			cfg.Peak = core.PeakConfig{SampleStride: stride}
			runPipeline(b, res, cfg)
		})
	}
}

func BenchmarkExtensionParallel(b *testing.B) {
	res := benchUnicast(b)
	for _, parallel := range []bool{false, true} {
		name := "single"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.TimingAndPhase()
			cfg.Parallel = parallel
			runPipeline(b, res, cfg)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Extensions ---

func benchOFDM(b *testing.B) *ether.Result {
	return cachedTrace(b, "ofdm", func() (*ether.Result, error) {
		return ether.Run(ether.Config{
			Duration: 800_000,
			SNRdB:    20,
			Seed:     5,
			Sources: []mac.Source{&mac.WiFiGUnicast{
				Pings: 1 << 20, PayloadBytes: 500, InterPing: 38_000,
				Requester: benchAddr(4), Responder: benchAddr(5), BSSID: benchAddr(6),
			}},
		})
	})
}

func BenchmarkExtensionOFDMDetector(b *testing.B) {
	runPipeline(b, benchOFDM(b), core.Detect(core.OFDMSpec(core.OFDMConfig{})))
}

func BenchmarkExtensionBTDiscovery(b *testing.B) {
	res := benchBT(b)
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(res.Clock, core.PhaseOnly(), demod.NewBTDiscover(8))
		if _, err := p.Run(res.Samples); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionHeaderOnly(b *testing.B) {
	res := benchUnicast(b)
	for _, hdrOnly := range []bool{false, true} {
		name := "full"
		mk := func() core.Analyzer { return demod.NewWiFiDemod() }
		if hdrOnly {
			name = "header"
			mk = func() core.Analyzer { return demod.NewWiFiHeaderDemod() }
		}
		b.Run(name, func(b *testing.B) {
			runPipeline(b, res, core.TimingAndPhase(), mk())
		})
	}
}

func BenchmarkExtensionStreaming(b *testing.B) {
	res := benchUnicast(b)
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPipeline(res.Clock, core.TimingOnly())
		src := frontend.NewMemorySource(res.Samples)
		if _, err := p.RunStream(src, core.StreamConfig{WindowSamples: 400_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionStreamingMetrics is BenchmarkExtensionStreaming
// with a metrics registry attached: the delta between the two is the
// full observability overhead on the streaming hot path (budget: <=2%).
func BenchmarkExtensionStreamingMetrics(b *testing.B) {
	res := benchUnicast(b)
	setBytes(b, res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.TimingOnly()
		cfg.Metrics = metrics.NewRegistry()
		p := core.NewPipeline(res.Clock, cfg)
		src := frontend.NewMemorySource(res.Samples)
		if _, err := p.RunStream(src, core.StreamConfig{WindowSamples: 400_000}); err != nil {
			b.Fatal(err)
		}
	}
}
