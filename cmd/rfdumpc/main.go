// Command rfdumpc is the cluster aggregator: one daemon that watches a
// fleet of rfdumpd sensors and serves their combined view of the ether
// through the same API a single rfdumpd serves. Radios with
// overlapping coverage hear — and report — the same packets; rfdumpc
// subscribes to every node's live feed, fuses detections of the same
// over-the-air event across sensors (keeping each sensor's sighting as
// evidence), and re-exports /api/streams, /api/detections, /api/live
// and the DVR query surface so fleet-unaware clients work unchanged.
//
// Because the exported surface is identical to a node's, aggregators
// compose into broker trees: a mid-tier rfdumpc aggregates a rack of
// sensors, and a root rfdumpc aggregates mid-tiers exactly as it would
// aggregate nodes. -store-dir makes the fused ledger durable — a
// SIGKILL'd aggregator restarts with its ledger, sequence epoch and
// dedup state recovered from disk, so the fleet replaying its history
// produces no duplicates.
//
// Usage:
//
//	rfdumpc -nodes lab1=10.0.0.1:7532,lab2=10.0.0.2:7532
//	rfdumpc -discover :7331            # nodes announce themselves
//	                                   # (rfdumpd -announce host:7331)
//	rfdumpc -discover :7332 -node rack1 -parent root-host:7331
//	                                   # mid-tier: aggregate local
//	                                   # beacons, announce upward
//
// Then:
//
//	curl localhost:7533/api/nodes                 # fleet + subscription state
//	curl localhost:7533/api/streams               # all sensors' streams
//	curl localhost:7533/api/detections            # fused, deduplicated
//	curl "localhost:7533/api/detections?evidence=1"  # per-sensor evidence
//	curl -N localhost:7533/api/live               # fused SSE feed
//	curl localhost:7533/api/history               # fused WAL bounds
//	curl localhost:7533/healthz                   # 503 while a node is down
//
// Static -nodes and -discover compose: static nodes are permanent,
// discovered nodes come and go with their beacons.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rfdump/internal/cluster"
	"rfdump/internal/history"
	"rfdump/internal/metrics"
)

func main() {
	var (
		httpAddr   = flag.String("http", "127.0.0.1:7533", "HTTP API address")
		nodes      = flag.String("nodes", "", "static fleet: comma list of name=host:port rfdumpd (or rfdumpc) API addresses")
		discover   = flag.String("discover", "", "listen for node beacons on this UDP address (rfdumpd -announce target)")
		ttl        = flag.Duration("discover-ttl", 6*time.Second, "expire a discovered node after this long without a beacon")
		nodeID     = flag.String("node", "", "this aggregator's node id in a broker tree (default: hostname)")
		parent     = flag.String("parent", "", "announce this aggregator to a parent's -discover address (broker tree)")
		parentI    = flag.Duration("parent-interval", 2*time.Second, "beacon interval toward -parent")
		storeDir   = flag.String("store-dir", "", "persist the fused ledger to disk segments here (survives SIGKILL)")
		storeMaxB  = flag.Int64("store-max-bytes", 0, "fused ledger store size bound (0 = engine default)")
		storeMaxA  = flag.Duration("store-max-age", 0, "fused ledger store age bound (0 = engine default)")
		overlap    = flag.Float64("match-overlap", 0.5, "fraction of the shorter span two sightings must overlap to fuse")
		slack      = flag.Int64("match-slack", 64, "clock-skew allowance in sample ticks when matching spans across sensors")
		lookback   = flag.Int("match-lookback", 512, "recent fused detections scanned per match (the reorder horizon)")
		ledger     = flag.Int("ledger-cap", 65536, "retained fused detections (oldest evicted)")
		queue      = flag.Int("sse-queue", 256, "per-subscriber live-feed queue length (slow clients drop past this)")
		sseEvict   = flag.Int("sse-evict", 1024, "consecutive live-feed drops before a slow subscriber is evicted (negative disables)")
		shards     = flag.Int("sse-shards", 0, "subscriber map shards for fan-out (0 = one per core)")
		stall      = flag.Duration("stall-after", 5*time.Second, "/healthz degrades when a node subscription is down this long")
		queryRPS   = flag.Float64("query-rps", 0, "per-host rate limit on DVR query endpoints (0 = default 20, negative disables)")
		queryBurst = flag.Int("query-burst", 0, "per-host burst on DVR query endpoints (0 = 2x rate)")
	)
	flag.Parse()

	if *nodes == "" && *discover == "" {
		fmt.Fprintln(os.Stderr, "rfdumpc: need -nodes and/or -discover (an aggregator with no fleet watches nothing)")
		os.Exit(2)
	}

	reg := metrics.NewRegistry()
	var store history.Store
	if *storeDir != "" {
		var err error
		store, err = history.OpenDisk(history.DiskConfig{
			Dir:      *storeDir,
			MaxBytes: *storeMaxB,
			MaxAge:   *storeMaxA,
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdumpc: ledger store:", err)
			os.Exit(1)
		}
	}
	agg, err := cluster.NewAggregator(cluster.AggregatorConfig{
		Match: cluster.MatchConfig{
			MinOverlap: *overlap,
			SlackTicks: *slack,
			Lookback:   *lookback,
			LedgerCap:  *ledger,
		},
		Store:      store,
		SSEQueue:   *queue,
		EvictAfter: *sseEvict,
		Shards:     *shards,
		StallAfter: *stall,
		QueryRPS:   *queryRPS,
		QueryBurst: *queryBurst,
		Registry:   reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpc:", err)
		os.Exit(1)
	}
	if store != nil {
		if last := agg.Ledger().Store().LastSeq(); last > 0 {
			fmt.Fprintf(os.Stderr, "rfdumpc: fused ledger recovered from %s (last seq %d, %d retained)\n",
				*storeDir, last, agg.Fuser().Len())
		}
	}

	n := 0
	for _, spec := range strings.Split(*nodes, ",") {
		if spec = strings.TrimSpace(spec); spec == "" {
			continue
		}
		name, api, ok := strings.Cut(spec, "=")
		if !ok || name == "" || api == "" {
			fmt.Fprintf(os.Stderr, "rfdumpc: bad -nodes entry %q (want name=host:port)\n", spec)
			os.Exit(2)
		}
		agg.Add(name, api)
		n++
	}

	var disc *cluster.Discoverer
	if *discover != "" {
		var err error
		disc, err = cluster.NewDiscoverer(cluster.DiscoverConfig{
			Listen:   *discover,
			TTL:      *ttl,
			OnNode:   agg.Discovered,
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdumpc: discover:", err)
			os.Exit(1)
		}
	}

	apiLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpc: http listen:", err)
		os.Exit(1)
	}
	api := &http.Server{Handler: agg.Handler()}
	go func() {
		if err := api.Serve(apiLn); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rfdumpc: http:", err)
		}
	}()
	switch {
	case disc != nil:
		fmt.Fprintf(os.Stderr, "rfdumpc: API on http://%s, %d static nodes, discovering on %s\n",
			apiLn.Addr(), n, disc.Addr())
	default:
		fmt.Fprintf(os.Stderr, "rfdumpc: API on http://%s, %d static nodes\n", apiLn.Addr(), n)
	}

	// Broker tree: announce this aggregator upward exactly as rfdumpd
	// announces to us — a parent rfdumpc discovers and subscribes to
	// this tier with no new wire concepts. (The wildcard API host is
	// fine: the parent's discoverer substitutes the datagram source.)
	var ann *cluster.Announcer
	if *parent != "" {
		node := *nodeID
		if node == "" {
			node, _ = os.Hostname()
		}
		ann, err = cluster.NewAnnouncer(cluster.AnnounceConfig{
			Target:   *parent,
			Node:     node,
			API:      apiLn.Addr().String(),
			Interval: *parentI,
			Info: func() (int, int) {
				return 0, agg.Ledger().Streams()
			},
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdumpc: parent announce:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rfdumpc: announcing as %q to parent %s every %s\n", node, *parent, *parentI)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "rfdumpc: signal — shutting down")
	if ann != nil {
		_ = ann.Close()
	}
	if disc != nil {
		_ = disc.Close()
	}
	agg.Close()
	_ = api.Close()

	fused := reg.Counter("cluster/detections_fused").Load()
	merged := reg.Counter("cluster/evidence_merged").Load()
	fmt.Fprintf(os.Stderr, "rfdumpc: done: %d fused detections, %d cross-sensor merges\n", fused, merged)
}
