// Command rfdumpd is the live-monitoring daemon: rfdump as a network
// service. It accepts IQ sample streams over the wire framing protocol
// (one core.Session per ingest connection, all sharing one Engine and
// block pool) and serves the results over HTTP — stream inventory,
// recent detections and decoded packets, a waterfall, metrics, and a
// server-sent-events live feed.
//
// Usage:
//
//	rfdumpd                                  # ingest :7531, API :7532
//	rfdumpd -listen :9000 -http :9001
//	rfdumpd -detectors timing,phase -overload -supervise
//	rfgen -profile mix -stream localhost:7531 -realtime   # a transmitter
//
// Then:
//
//	curl localhost:7532/api/streams
//	curl localhost:7532/api/detections
//	curl localhost:7532/api/packets
//	curl "localhost:7532/api/waterfall?format=text"
//	curl localhost:7532/api/metricz
//	curl localhost:7532/api/protocols        # registered protocol modules
//	curl -N localhost:7532/api/live          # SSE event feed
//
// With -store-dir the daemon becomes a spectrum DVR: history persists
// to an append-only segment store and survives restarts, and -capture
// banks the raw IQ burst behind every detection for later replay:
//
//	rfdumpd -store-dir /var/lib/rfdump -capture
//	curl "localhost:7532/api/streams/1/detections?from=0.1&to=0.5&limit=100"
//	curl "localhost:7532/api/streams/1/packets?cursor=1234"
//	curl "localhost:7532/api/streams/1/snippets/87" > snippet.json
//	curl "localhost:7532/api/streams/1/snippets/87?format=trace" > snippet.rfd
//	rfdump -replay-snippet snippet.json      # re-demodulate offline
//	curl localhost:7532/api/history          # store kind, retention, bounds
//	curl -N "localhost:7532/api/live?since=1234"  # replay history, then tail
//
// The first SIGINT/SIGTERM drains: ingest stops, per-connection
// sessions flush their pipelines, results stay queryable until exit. A
// second signal aborts immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rfdump/internal/cluster"
	"rfdump/internal/core"
	"rfdump/internal/experiments"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/server"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:7531", "IQ ingest address (wire framing protocol)")
		httpAddr  = flag.String("http", "127.0.0.1:7532", "HTTP API address")
		rate      = flag.Int("rate", iq.DefaultSampleRate, "engine sample rate in Hz; mismatched transmitters are rejected")
		detectors = flag.String("detectors", "timing,phase", core.DetectorUsage())
		noDemod   = flag.Bool("no-demod", false, "skip the analysis stage (classification only)")
		lap       = flag.Uint64("lap", experiments.PiconetLAP, "Bluetooth piconet LAP to follow")
		uap       = flag.Uint64("uap", experiments.PiconetUAP, "Bluetooth piconet UAP")
		window    = flag.Int("window", 1_600_000, "per-session sliding window in samples")
		supervise = flag.Bool("supervise", false, "supervised scheduling: quarantine crashing blocks instead of failing the session")
		overload  = flag.Bool("overload", false, "real-time pacing with graceful degradation per session")
		faultSpec = flag.String("faults", "", "inject front-end faults on every ingest stream, e.g. gap=0.001,corrupt=0.01,seed=7")
		retries   = flag.Int("retries", 4, "retry attempts for transient front-end read errors with -faults")
		waterfall = flag.Int("waterfall", 1<<19, "per-stream waterfall ring in samples (negative disables)")
		queue     = flag.Int("sse-queue", 256, "per-subscriber live-feed queue length (slow clients drop past this)")
		sseEvict  = flag.Int("sse-evict", 0, "consecutive live-feed drops before a slow subscriber is evicted (0 = 4x queue, negative disables)")
		idleTO    = flag.Duration("idle-timeout", 45*time.Second, "reap ingest connections silent (no frame, no heartbeat) this long; 0 disables")
		nodeID    = flag.String("node", "", "fleet-unique node id for cluster discovery (default: hostname)")
		announce  = flag.String("announce", "", "announce this node to an rfdumpc discoverer at this UDP address (empty disables)")
		announceI = flag.Duration("announce-interval", 2*time.Second, "beacon interval with -announce")
		stall     = flag.Duration("stall-after", server.DefaultStallAfter, "/healthz reports stalled when an active stream is silent this long; negative disables")
		quiet     = flag.Bool("q", false, "suppress per-stream log lines")

		storeDir   = flag.String("store-dir", "", "persist history (detections, packets, tiles, IQ snippets) to a disk-backed segment store in this directory; empty keeps it in memory")
		storeMaxB  = flag.Int64("store-max-bytes", 0, "disk store retention bound in bytes (0 = engine default 256 MiB; negative unbounded)")
		storeMaxA  = flag.Duration("store-max-age", 0, "disk store retention bound by segment age (0 disables)")
		capture    = flag.Bool("capture", false, "capture the raw IQ burst behind every detection as a replayable snippet in the store")
		capturePad = flag.Int("capture-pad", 0, "widen each captured burst by this many samples per side (0 = one chunk; negative disables padding)")
		captureMax = flag.Int("capture-max", 0, "cap one captured burst at this many samples, keeping the head (0 = default 65536)")
		tileSpan   = flag.Int("tile-samples", 1<<19, "persist one waterfall tile per this many ingest samples (negative disables)")
		queryRPS   = flag.Float64("query-rps", 0, "per-host rate limit on history query endpoints in requests/s (0 = default 20; negative disables)")
		queryBurst = flag.Int("query-burst", 0, "history query burst ceiling per host (0 = 2x the rate)")
	)
	flag.Parse()

	cfg, err := core.ParseDetectors(*detectors)
	if err == core.ErrDetectorList {
		fmt.Print(core.DetectorList())
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpd:", err)
		os.Exit(2)
	}
	// The daemon is always metered: /api/metricz is part of the API, so
	// the registry is unconditional (unlike rfdump's opt-in -metrics).
	reg := metrics.NewRegistry()
	cfg.Metrics = reg

	// The analysis stage comes from the registry: one analyzer factory
	// per registered module with an analysis capability.
	var factories []core.AnalyzerFactory
	if !*noDemod {
		factories = core.RegistryAnalyzerFactories(protocols.AnalyzerOptions{
			LAP: uint32(*lap), UAP: byte(*uap), Channels: 8,
		})
	}
	eng := core.NewEngine(iq.NewClock(*rate), cfg, factories...)

	scfg := core.StreamConfig{WindowSamples: *window}
	if *supervise {
		scfg.Supervise = &flowgraph.SupervisorConfig{
			MaxErrors:    3,
			BackoffItems: 10_000,
			OnEvent: func(ev flowgraph.SupervisorEvent) {
				fmt.Fprintln(os.Stderr, "rfdumpd: supervisor:", ev)
			},
		}
	}
	if *overload {
		scfg.Overload = &core.OverloadConfig{}
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "rfdumpd: "+format+"\n", args...)
		}
	}
	d, err := server.NewDaemon(server.Options{
		Engine:           eng,
		Registry:         reg,
		Session:          scfg,
		Faults:           *faultSpec,
		Retries:          *retries,
		WaterfallSamples: *waterfall,
		SubscriberQueue:  *queue,
		EvictAfter:       *sseEvict,
		IdleTimeout:      *idleTO,
		StallAfter:       *stall,
		StoreDir:         *storeDir,
		StoreMaxBytes:    *storeMaxB,
		StoreMaxAge:      *storeMaxA,
		Capture:          *capture,
		CapturePad:       *capturePad,
		CaptureMaxSamples: *captureMax,
		TileSamples:      *tileSpan,
		QueryRPS:         *queryRPS,
		QueryBurst:       *queryBurst,
		Logf:             logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpd:", err)
		os.Exit(2)
	}

	ingest, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpd: ingest listen:", err)
		os.Exit(1)
	}
	apiLn, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdumpd: http listen:", err)
		os.Exit(1)
	}
	api := &http.Server{Handler: d.APIHandler()}
	go func() {
		if err := api.Serve(apiLn); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rfdumpd: http:", err)
		}
	}()
	go func() {
		if err := d.Serve(ingest); err != nil {
			fmt.Fprintln(os.Stderr, "rfdumpd: ingest:", err)
		}
	}()
	fmt.Fprintf(os.Stderr, "rfdumpd: ingest on %s, API on http://%s (rate %d Hz, detectors %s)\n",
		ingest.Addr(), apiLn.Addr(), *rate, *detectors)

	// Cluster beacon: announce the bound API address (its wildcard host
	// is fine — the discoverer substitutes the datagram's source IP).
	if *announce != "" {
		node := *nodeID
		if node == "" {
			node, _ = os.Hostname()
		}
		ann, err := cluster.NewAnnouncer(cluster.AnnounceConfig{
			Target:   *announce,
			Node:     node,
			API:      apiLn.Addr().String(),
			Interval: *announceI,
			Info: func() (int, int) {
				return *rate, len(d.Hub().Streams())
			},
			Registry: reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdumpd: announce:", err)
			os.Exit(1)
		}
		defer ann.Close()
		fmt.Fprintf(os.Stderr, "rfdumpd: announcing as %q to %s every %s\n", node, *announce, *announceI)
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "rfdumpd: signal — draining ingest (^C again to abort)")
	go func() {
		<-sig
		os.Exit(130)
	}()

	// Drain: stop accepting, nudge blocked reads, let every session
	// flush its pipeline. Results stay queryable until the API closes.
	d.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = api.Shutdown(ctx)

	var streams, detections, packets int64
	for _, st := range d.Hub().Streams() {
		streams++
		detections += st.Detections
		packets += st.Packets
	}
	fmt.Fprintf(os.Stderr, "rfdumpd: drained: %d streams, %d detections, %d packets decoded\n",
		streams, detections, packets)
	// Release the history store last: a disk store flushes per append,
	// so even an abrupt kill loses at most a torn tail frame, but a
	// clean exit closes the active segment properly.
	d.Close()
}
