package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rfdump/internal/experiments"
)

// benchBaseline is the pinned reference document the delta gate compares
// against: the pre-FFT-kernel revision, with the Bluetooth demodulator
// above real time (cpu_per_real_time 1.045). Newer committed documents
// must not regress any shared Table 1 row by more than 10% against it.
const benchBaseline = "BENCH_37795eefc8b7.json"

func readBench(t *testing.T, path string) *experiments.BenchReport {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.BenchReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return &report
}

// TestBenchDeltaVsBaseline is the Table 1 regression gate over the
// committed benchmark documents: every BENCH_*.json newer than the
// pinned baseline must hold cpu_per_real_time within 1.1x of the
// baseline on every row both documents measure. Catches a committed
// document that quietly gives back the FFT-kernel win.
func TestBenchDeltaVsBaseline(t *testing.T) {
	root := filepath.Join("..", "..")
	base := readBench(t, filepath.Join(root, benchBaseline))
	baseRows := map[string]float64{}
	for _, rec := range base.Table1 {
		baseRows[rec.Name] = rec.CPUPerRealTime
	}

	docs, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(docs)
	checked := 0
	for _, path := range docs {
		if filepath.Base(path) == benchBaseline {
			continue
		}
		report := readBench(t, path)
		if !report.Taken.After(base.Taken) {
			continue // older than the baseline: historical, not gated
		}
		checked++
		for _, rec := range report.Table1 {
			want, ok := baseRows[rec.Name]
			if !ok {
				continue // row added after the baseline document
			}
			// 10% relative plus a small absolute floor: the cheap rows
			// (peak detection at ~0.05x real time) are tens of
			// milliseconds in a single recorded pass, where timer and
			// scheduler noise alone exceeds 10%.
			ceiling := want*1.1 + 0.02
			if rec.CPUPerRealTime > ceiling {
				t.Errorf("%s: table1 row %q regressed: cpu_per_real_time %.3f vs baseline %.3f in %s (+%.1f%%, allowed ceiling %.3f).\n"+
					"If the slowdown is expected, re-run `go run ./cmd/rfbench -json` on quiet hardware and commit the new document; "+
					"if not, profile the row's code path before committing.",
					filepath.Base(path), rec.Name, rec.CPUPerRealTime, want, benchBaseline,
					100*(rec.CPUPerRealTime-want)/want, ceiling)
			}
		}
	}
	if checked == 0 {
		t.Log("no post-baseline BENCH_*.json committed yet; gate is vacuous")
	}
}
