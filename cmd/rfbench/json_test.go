package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rfdump/internal/experiments"
)

// TestBenchJSONRoundTrip generates a small-scale report, writes it via
// runJSON, reads it back, and validates the schema — the same check the
// CI schema-validation step runs against the committed BENCH_*.json.
func TestBenchJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a trace and times demodulators")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := runJSON(experiments.Options{Scale: 0.05}, "test", out); err != nil {
		t.Fatal(err)
	}
	validateFile(t, out)
}

// TestBenchJSONValidatesFile checks an existing document named by
// RFBENCH_JSON (the CI step points this at the committed BENCH_*.json).
func TestBenchJSONValidatesFile(t *testing.T) {
	path := os.Getenv("RFBENCH_JSON")
	if path == "" {
		t.Skip("RFBENCH_JSON not set")
	}
	validateFile(t, path)
}

func validateFile(t *testing.T, path string) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report experiments.BenchReport
	dec := json.NewDecoder(bytes.NewReader(buf))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&report); err != nil {
		t.Fatalf("%s: decode: %v", path, err)
	}
	if err := report.Validate(); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	if len(report.Figure9) != 9 {
		t.Errorf("%s: figure9 has %d rows, want 9 architectures", path, len(report.Figure9))
	}
	// v2 added the streaming zero-copy and wire-ingest rows; v4 added
	// the ingest-while-querying DVR row; v5 added the fused-ingest row;
	// v6 adds the broker-tree row.
	wantTable1 := 8
	switch report.Schema {
	case experiments.BenchSchemaV1:
		wantTable1 = 3
	case experiments.BenchSchemaV2, experiments.BenchSchemaV3:
		wantTable1 = 5
	case experiments.BenchSchemaV4:
		wantTable1 = 6
	case experiments.BenchSchemaV5:
		wantTable1 = 7
	}
	if len(report.Table1) != wantTable1 {
		t.Errorf("%s: table1 has %d rows, want %d blocks", path, len(report.Table1), wantTable1)
	}
	if report.Schema == experiments.BenchSchema {
		// v3: the scaling matrix must cover the machine (Validate already
		// checked the workers=1 baseline and monotonic worker counts).
		last := report.Scaling[len(report.Scaling)-1]
		if last.Workers < 2 && len(report.Scaling) > 1 {
			t.Errorf("%s: scaling matrix tops out at %d workers", path, last.Workers)
		}
	}
}
