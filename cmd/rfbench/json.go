package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"

	"rfdump/internal/experiments"
)

// buildRevision returns the VCS revision stamped into the binary, or
// "dev" when built without VCS info (go run, detached builds).
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "dev"
}

// runJSON measures the benchmark matrices and writes the validated
// BENCH_<rev>.json document.
func runJSON(opt experiments.Options, rev, out string) error {
	if rev == "" {
		rev = buildRevision()
	}
	report, err := experiments.BenchJSON(opt)
	if err != nil {
		return err
	}
	report.Revision = rev
	if err := report.Validate(); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", rev)
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rfbench: wrote %s (%d table1 rows, %d figure9 rows)\n",
		out, len(report.Table1), len(report.Figure9))
	return nil
}
