// Command rfbench regenerates every table and figure of the paper's
// evaluation from the Go reproduction.
//
// Usage:
//
//	rfbench -experiment all -scale 0.2
//	rfbench -experiment fig9 -scale 1 -v
//
// Experiments: table1 table2 fig6 fig7 fig8 table3 fig9 table4
// ablations all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rfdump/internal/experiments"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

func main() {
	var (
		exp      = flag.String("experiment", "all", "which experiment to run (scorecard,table1,table2,fig6,fig7,fig8,table3,fig9,table4,ofdm,ablations,all)")
		scale    = flag.Float64("scale", 0.25, "workload scale; 1.0 = paper-size workloads")
		seed     = flag.Uint64("seed", 0, "PRNG seed (0 = default)")
		verbose  = flag.Bool("v", false, "progress logging")
		csv      = flag.Bool("csv", false, "also print figure data as CSV")
		jsonMode = flag.Bool("json", false, "emit the Table 1 / Figure 9 matrices as a machine-readable BENCH_<rev>.json instead of running experiments")
		out      = flag.String("out", "", "with -json: output path (default BENCH_<rev>.json; - for stdout)")
		rev      = flag.String("rev", "", "with -json: revision stamp (default: VCS revision from build info, else dev)")
	)
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	opt := experiments.Options{Seed: *seed, Scale: *scale, Log: logw}

	if *jsonMode {
		if err := runJSON(opt, *rev, *out); err != nil {
			fmt.Fprintln(os.Stderr, "rfbench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := 0

	runTable := func(name string, fn func(experiments.Options) (*report.Table, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		t, err := fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	runFigure := func(name string, fn func(experiments.Options) (*report.Figure, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		f, err := fn(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(f.String())
		if *csv {
			fmt.Println(f.CSV())
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
	}

	if all || want["table2"] {
		ran++
		fmt.Println("=== Table 2: Relevant features for wireless protocols in the 2.4 GHz ISM band ===")
		fmt.Println(protocols.FormatTable2())
	}
	runTable("scorecard", experiments.Scorecard)
	runTable("table1", experiments.Table1)
	runFigure("fig6", experiments.Figure6)
	runFigure("fig7", experiments.Figure7)
	runFigure("fig8", experiments.Figure8)
	runTable("table3", experiments.Table3)
	runFigure("fig9", experiments.Figure9)
	runTable("table4", experiments.Table4)
	runFigure("ofdm", experiments.ExtensionOFDM)

	if all || want["ablations"] {
		for _, n := range []string{"ablation-chunk", "ablation-avgwin", "ablation-btcache", "ablation-sampling", "ablation-headeronly", "ablation-subband", "extension-parallel", "ofdm"} {
			want[n] = true
		}
	}
	runTable("ablation-chunk", experiments.AblationChunkSize)
	runTable("ablation-avgwin", experiments.AblationAvgWindow)
	runTable("ablation-btcache", experiments.AblationBTCache)
	runTable("ablation-sampling", experiments.AblationSampling)
	runTable("ablation-headeronly", experiments.AblationHeaderOnly)
	runTable("ablation-subband", experiments.AblationSubband)
	runTable("extension-parallel", experiments.ExtensionParallel)

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
