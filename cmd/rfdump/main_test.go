package main

import (
	"io"
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/iq"
)

func TestDetectorConfig(t *testing.T) {
	cfg, err := detectorConfig("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WiFiTiming == nil || cfg.BTTiming == nil || cfg.WiFiPhase == nil || cfg.BTPhase == nil {
		t.Error("timing,phase did not enable the four detectors")
	}
	if cfg.BTFreq != nil || cfg.Microwave || cfg.ZigBee || cfg.OFDM != nil {
		t.Error("unrequested detectors enabled")
	}

	cfg, err = detectorConfig("freq, microwave ,zigbee,ofdm")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BTFreq == nil || !cfg.Microwave || !cfg.ZigBee || cfg.OFDM == nil {
		t.Error("freq/microwave/zigbee/ofdm not enabled")
	}

	if _, err := detectorConfig("bogus"); err == nil {
		t.Error("unknown detector accepted")
	}
	if _, err := detectorConfig(""); err == nil {
		t.Error("empty detector list accepted")
	}
}

func TestBlockSource(t *testing.T) {
	src := &blockSource{s: make(iq.Samples, 450)}
	buf := make(iq.Samples, 200)
	total := 0
	for {
		n, err := src.ReadBlock(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 450 {
		t.Errorf("read %d samples", total)
	}
}

func TestResultFromPipeline(t *testing.T) {
	clock := iq.NewClock(0)
	res := &core.Result{StreamLen: 800, Clock: clock}
	out := resultFromPipeline(res, clock)
	if out.StreamLen != 800 || out.Clock.Rate != clock.Rate {
		t.Error("conversion lost fields")
	}
}

func TestChanSuffix(t *testing.T) {
	if chanSuffix(-1) != "" || chanSuffix(3) != " ch=3" {
		t.Error("chanSuffix")
	}
}

func TestSecs(t *testing.T) {
	clock := iq.NewClock(8_000_000)
	if got := secs(clock, 4_000_000); got != 0.5 {
		t.Errorf("secs = %v", got)
	}
}
