package main

import (
	"io"
	"reflect"
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/iq"
)

func names(cfg core.Config) []string {
	var out []string
	for _, s := range cfg.Detectors {
		out = append(out, s.Name)
	}
	return out
}

func TestDetectorConfig(t *testing.T) {
	cfg, err := detectorConfig("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"802.11-timing", "bt-timing", "802.11-phase", "bt-phase"}
	if got := names(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("timing,phase = %v, want %v", got, want)
	}

	cfg, err = detectorConfig("freq, microwave ,zigbee,ofdm")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"bt-freq", "microwave-timing", "zigbee-timing", "802.11g-ofdm"}
	if got := names(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("freq,microwave,zigbee,ofdm = %v, want %v", got, want)
	}

	// Registry-derived module selectors.
	cfg, err = detectorConfig("wifi.timing,bt.*")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"802.11-timing", "bt-timing", "bt-phase", "bt-freq"}
	if got := names(cfg); !reflect.DeepEqual(got, want) {
		t.Errorf("wifi.timing,bt.* = %v, want %v", got, want)
	}

	cfg, err = detectorConfig("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Detectors) < 8 {
		t.Errorf("all selected %d detectors, want every registered one (>= 8)", len(cfg.Detectors))
	}

	if _, err := detectorConfig("list"); err != core.ErrDetectorList {
		t.Errorf("list returned %v, want ErrDetectorList", err)
	}
	if _, err := detectorConfig("bogus"); err == nil {
		t.Error("unknown detector accepted")
	}
	if _, err := detectorConfig(""); err == nil {
		t.Error("empty detector list accepted")
	}
}

func TestBlockSource(t *testing.T) {
	src := &blockSource{s: make(iq.Samples, 450)}
	buf := make(iq.Samples, 200)
	total := 0
	for {
		n, err := src.ReadBlock(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 450 {
		t.Errorf("read %d samples", total)
	}
}

func TestResultFromPipeline(t *testing.T) {
	clock := iq.NewClock(0)
	res := &core.Result{StreamLen: 800, Clock: clock}
	out := resultFromPipeline(res, clock)
	if out.StreamLen != 800 || out.Clock.Rate != clock.Rate {
		t.Error("conversion lost fields")
	}
}

func TestChanSuffix(t *testing.T) {
	if chanSuffix(-1) != "" || chanSuffix(3) != " ch=3" {
		t.Error("chanSuffix")
	}
}

func TestSecs(t *testing.T) {
	clock := iq.NewClock(8_000_000)
	if got := secs(clock, 4_000_000); got != 0.5 {
		t.Errorf("secs = %v", got)
	}
}
