// Command rfdump is the monitoring tool itself: the tcpdump of the
// wireless ether. It reads an IQ trace (recorded by rfgen, or by any
// front end writing the trace format), runs the RFDump detection →
// dispatch → analysis pipeline, and prints one line per classified
// transmission plus decoded link-layer frames.
//
// Usage:
//
//	rfdump -r trace.rfd                  # detect + demodulate
//	rfdump -r trace.rfd -detectors phase # phase detection only
//	rfdump -r trace.rfd -no-demod        # classification only
//	rfdump -r trace.rfd -stats           # per-block CPU accounting
//	rfdump -r trace.rfd -truth trace.rfd.truth   # score vs ground truth
//	rfdump -replay-snippet snippet.json  # re-demodulate a captured burst
//	                                     # from rfdumpd's snippet API
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/experiments"
	"rfdump/internal/faults"
	"rfdump/internal/flowgraph"
	"rfdump/internal/history"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/report"
	"rfdump/internal/trace"
	"rfdump/internal/truth"
)

// blockSource adapts an in-memory trace to the streaming BlockReader.
type blockSource struct {
	s   iq.Samples
	pos int
}

func (b *blockSource) ReadBlock(dst iq.Samples) (int, error) {
	if b.pos >= len(b.s) {
		return 0, io.EOF
	}
	n := copy(dst, b.s[b.pos:])
	b.pos += n
	if b.pos >= len(b.s) {
		return n, io.EOF
	}
	return n, nil
}

// stopReader ends the stream early on an interrupt: the flowgraph sees a
// clean EOF, drains its pending state, and the summary still prints.
type stopReader struct {
	inner   core.BlockReader
	stopped atomic.Bool
}

func (s *stopReader) ReadBlock(dst iq.Samples) (int, error) {
	if s.stopped.Load() {
		return 0, io.EOF
	}
	return s.inner.ReadBlock(dst)
}

// discoverPiconets runs a detection pass with only the discovery
// analyzer attached and returns the LAPs heard, busiest first.
func discoverPiconets(clock iq.Clock, cfg core.Config, samples iq.Samples) ([]uint32, error) {
	disc := demod.NewBTDiscover(8)
	p := core.NewPipeline(clock, cfg, disc)
	if _, err := p.Run(samples); err != nil {
		return nil, err
	}
	return disc.KnownLAPs(), nil
}

// resultFromPipeline converts a pipeline result for the shared printers.
func resultFromPipeline(res *core.Result, clock iq.Clock) *arch.Result {
	out := &arch.Result{
		Detections: res.Detections,
		Forwarded:  map[protocols.ID][]iq.Interval{},
		CPU:        res.Busy,
		PerBlock:   res.Stats,
		StreamLen:  res.StreamLen,
		Clock:      clock,
	}
	for _, item := range res.Outputs {
		if pkt, ok := item.(demod.Packet); ok {
			out.Packets = append(out.Packets, pkt)
		}
	}
	return out
}

func main() {
	var (
		read      = flag.String("r", "", "trace file to read (required unless -replay-snippet)")
		replay    = flag.String("replay-snippet", "", "replay a captured IQ snippet (rfdumpd snippet JSON; \"-\" = stdin) through the pipeline instead of a trace file")
		detectors = flag.String("detectors", "timing,phase", core.DetectorUsage())
		noDemod   = flag.Bool("no-demod", false, "skip the analysis stage (classification only)")
		stats     = flag.Bool("stats", false, "print per-block CPU accounting")
		truthPath = flag.String("truth", "", "ground-truth sidecar to score against")
		lap       = flag.Uint64("lap", experiments.PiconetLAP, "Bluetooth piconet LAP to follow (0 = discover automatically)")
		uap       = flag.Uint64("uap", experiments.PiconetUAP, "Bluetooth piconet UAP")
		quiet     = flag.Bool("q", false, "suppress per-packet lines")
		spectrum  = flag.Bool("spectrum", false, "print a text waterfall of the trace before monitoring")
		stream    = flag.Bool("stream", false, "process in streaming mode with a bounded sample window")
		window    = flag.Int("window", 1_600_000, "sliding window size in samples for -stream")
		writeLog  = flag.String("w", "", "write decoded packets to a JSONL packet log")
		faultSpec = flag.String("faults", "", "inject front-end faults in -stream mode, e.g. gap=0.001,corrupt=0.01,transient=0.01,seed=7")
		supervise = flag.Bool("supervise", false, "supervised scheduling in -stream mode: quarantine crashing blocks instead of aborting")
		overload  = flag.Bool("overload", false, "real-time pacing with graceful degradation in -stream mode")
		retries   = flag.Int("retries", 4, "retry attempts for transient front-end read errors with -faults")
		sessions  = flag.Int("sessions", 1, "run N concurrent monitoring sessions over the trace in -stream mode (one shared engine and block pool)")
		metricsAt = flag.Duration("metrics", 0, "collect pipeline metrics and emit a snapshot to stderr at this interval (plus a final one); 0 = off")
		metricsFm = flag.String("metrics-format", "text", "metrics snapshot format: text or json")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and an expvar metrics snapshot on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *detectors == "list" {
		fmt.Print(core.DetectorList())
		os.Exit(0)
	}
	if *read == "" && *replay == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *read != "" && *replay != "" {
		fmt.Fprintln(os.Stderr, "rfdump: -r and -replay-snippet are mutually exclusive")
		os.Exit(2)
	}
	if !*stream && (*faultSpec != "" || *supervise || *overload) {
		fmt.Fprintln(os.Stderr, "rfdump: -faults, -supervise and -overload require -stream")
		os.Exit(2)
	}
	if *sessions < 1 {
		fmt.Fprintln(os.Stderr, "rfdump: -sessions must be >= 1")
		os.Exit(2)
	}
	if *sessions > 1 && !*stream {
		fmt.Fprintln(os.Stderr, "rfdump: -sessions requires -stream")
		os.Exit(2)
	}

	// Graceful shutdown: register before the (possibly long) trace load so
	// an early signal is queued rather than fatal; the drain goroutine
	// starts with the stream.
	var sig chan os.Signal
	if *stream {
		sig = make(chan os.Signal, 2)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	}

	var (
		rate    int
		samples iq.Samples
	)
	if *replay != "" {
		snip, err := readSnippet(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdump:", err)
			os.Exit(1)
		}
		rate, samples = snip.Rate, snip.IQ
		fmt.Printf("replaying snippet: stream %d detection %d, %d samples [%d, %d) at %d Hz\n\n",
			snip.Stream, snip.Detection, len(snip.IQ), snip.Start, snip.End, snip.Rate)
	} else {
		hdr, s, err := trace.ReadFile(*read)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdump:", err)
			os.Exit(1)
		}
		rate, samples = hdr.Rate, s
	}
	clock := iq.NewClock(rate)

	cfg, err := detectorConfig(*detectors)
	if err == core.ErrDetectorList {
		fmt.Print(core.DetectorList())
		os.Exit(0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdump:", err)
		os.Exit(2)
	}

	// Observability: -metrics and -pprof share one registry, threaded
	// through Config so every stage (detectors, analyzers, flowgraph,
	// shedding, faults) publishes into it. When neither flag is set the
	// registry is nil and the pipeline pays nothing.
	if *metricsFm != "text" && *metricsFm != "json" {
		fmt.Fprintf(os.Stderr, "rfdump: unknown -metrics-format %q (want text or json)\n", *metricsFm)
		os.Exit(2)
	}
	var reg *metrics.Registry
	if *metricsAt > 0 || *pprofAddr != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	emitSnapshot := func(label string) {
		if reg == nil {
			return
		}
		snap := reg.Snapshot()
		if *metricsFm == "json" {
			_ = snap.WriteJSON(os.Stderr)
			return
		}
		fmt.Fprintf(os.Stderr, "--- metrics (%s) ---\n", label)
		_ = snap.WriteText(os.Stderr)
	}
	if *pprofAddr != "" {
		expvar.Publish("rfdump_metrics", expvar.Func(func() any { return reg.Snapshot() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "rfdump: pprof:", err)
			}
		}()
	}
	if *metricsAt > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			ticker := time.NewTicker(*metricsAt)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					emitSnapshot("periodic")
				case <-stop:
					return
				}
			}
		}()
	}
	if *lap == 0 && !*noDemod {
		// Auto-discovery: a fast pass with the discovery analyzer names
		// the piconets on the air; the busiest one is then followed.
		found, err := discoverPiconets(clock, cfg, samples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdump: discovery:", err)
			os.Exit(1)
		}
		if len(found) == 0 {
			fmt.Fprintln(os.Stderr, "rfdump: no piconets discovered; Bluetooth payloads will not decode")
		} else {
			fmt.Printf("discovered piconets:")
			for _, l := range found {
				fmt.Printf(" %06x", l)
			}
			fmt.Printf("; following %06x\n\n", found[0])
			*lap = uint64(found[0])
		}
	}
	// The analysis stage comes from the registry: one analyzer per
	// registered module with an analysis capability.
	analyzerOpts := protocols.AnalyzerOptions{LAP: uint32(*lap), UAP: byte(*uap), Channels: 8}
	var analyzers []core.Analyzer
	if !*noDemod {
		analyzers = core.RegistryAnalyzers(analyzerOpts)
	}
	if *spectrum {
		fmt.Print(report.Waterfall(samples, clock.Rate, 24, 64))
		fmt.Println()
	}

	var out *arch.Result
	var degradation core.Degradation
	if *stream {
		// Streaming mode: bounded memory, same detectors/analyzers. Each
		// session gets its own source chain (fault injection included).
		buildSource := func() (core.BlockReader, *faults.Injector, error) {
			var src core.BlockReader = &blockSource{s: samples}
			var injector *faults.Injector
			if *faultSpec != "" {
				fcfg, err := faults.ParseSpec(*faultSpec)
				if err != nil {
					return nil, nil, err
				}
				injector = faults.NewInjector(src, fcfg)
				injector.InstrumentMetrics(reg)
				src = &faults.Retry{Src: injector, Attempts: *retries, Metrics: reg}
			}
			return src, injector, nil
		}

		scfg := core.StreamConfig{WindowSamples: *window}
		if *supervise {
			scfg.Supervise = &flowgraph.SupervisorConfig{
				MaxErrors:    3,
				BackoffItems: 10_000,
				OnEvent: func(ev flowgraph.SupervisorEvent) {
					fmt.Fprintln(os.Stderr, "rfdump: supervisor:", ev)
				},
			}
		}
		if *overload {
			scfg.Overload = &core.OverloadConfig{}
		}

		// One Engine serves all sessions: configuration and detector
		// setup are resolved once, and every session recycles sample
		// blocks through the shared pool.
		var factories []core.AnalyzerFactory
		if !*noDemod {
			factories = core.RegistryAnalyzerFactories(analyzerOpts)
		}
		eng := core.NewEngine(clock, cfg, factories...)

		n := *sessions
		results := make([]*core.Result, n)
		errs := make([]error, n)
		injectors := make([]*faults.Injector, n)
		stoppers := make([]*stopReader, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			src, injector, err := buildSource()
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfdump:", err)
				os.Exit(2)
			}
			injectors[i] = injector
			stoppers[i] = &stopReader{inner: src}
			sess, err := eng.NewSession(scfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfdump:", err)
				os.Exit(1)
			}
			wg.Add(1)
			go func(i int, sess *core.Session, src core.BlockReader) {
				defer wg.Done()
				results[i], errs[i] = sess.Run(src)
			}(i, sess, stoppers[i])
		}

		// First SIGINT/SIGTERM stops every source so the flowgraphs drain
		// and the summary still prints; a second signal aborts.
		go func() {
			<-sig
			fmt.Fprintln(os.Stderr, "rfdump: interrupt — draining pipeline (^C again to abort)")
			for _, st := range stoppers {
				st.stopped.Store(true)
			}
			<-sig
			os.Exit(130)
		}()

		wg.Wait()
		signal.Stop(sig)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfdump:", err)
				os.Exit(1)
			}
		}
		if n > 1 {
			for i, res := range results {
				fmt.Fprintf(os.Stderr, "rfdump: session %d: %d detections, %d outputs, CPU/real-time %.2fx\n",
					i, len(res.Detections), len(res.Outputs), res.CPUPerRealTime())
			}
		}
		res := results[0]
		out = resultFromPipeline(res, clock)
		degradation = res.Degradation
		for i, injector := range injectors {
			if injector != nil {
				if n > 1 {
					fmt.Fprintf(os.Stderr, "rfdump: session %d: %v\n", i, injector.Stats())
				} else {
					fmt.Fprintln(os.Stderr, "rfdump:", injector.Stats())
				}
			}
		}
	} else {
		mon := arch.NewRFDump("rfdump", clock, cfg, analyzers...)
		var err error
		out, err = mon.Process(samples)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdump:", err)
			os.Exit(1)
		}
	}

	if !*quiet {
		printTimeline(clock, out)
	}

	if *writeLog != "" {
		if err := trace.WritePacketLogFile(*writeLog, clock, out.Packets); err != nil {
			fmt.Fprintln(os.Stderr, "rfdump: packet log:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d packets to %s\n", len(out.Packets), *writeLog)
	}

	fmt.Printf("\n%d detections, %d packets decoded, CPU/real-time %.2fx over %.2f s\n",
		len(out.Detections), len(out.Packets), out.CPUPerRealTime(),
		float64(len(samples))/float64(clock.Rate))
	if degradation.Any() {
		fmt.Printf("degraded: %s\n", degradation)
	}
	emitSnapshot("final")

	if *stats {
		fmt.Println("\nper-block CPU:")
		for _, b := range out.PerBlock {
			fmt.Printf("  %-20s %12v  (%d items)\n", b.Name, b.Busy, b.Items)
		}
	}

	if *truthPath != "" {
		ts, err := trace.ReadTruthFile(*truthPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfdump: truth:", err)
			os.Exit(1)
		}
		fmt.Println("\naccuracy vs ground truth:")
		for _, fam := range protocols.Families() {
			st := truth.Match(ts, out.TruthDetections(), fam)
			if st.Total == 0 {
				continue
			}
			fmt.Printf("  %s\n", st)
		}
	}
}

// detectorConfig is core.ParseDetectors — the same flag syntax rfdumpd
// accepts, parsed in one place so the tools cannot drift.
func detectorConfig(list string) (core.Config, error) {
	return core.ParseDetectors(list)
}

// readSnippet loads a captured-burst JSON file as served by rfdumpd's
// /api/streams/{id}/snippets/{det} ("-" reads stdin) — the replay half
// of the spectrum DVR.
func readSnippet(path string) (*history.Snippet, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var j history.SnippetJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("snippet: %w", err)
	}
	return j.Snippet()
}

// event is one printable line, time-ordered.
type event struct {
	at   iq.Tick
	line string
}

func printTimeline(clock iq.Clock, out *arch.Result) {
	var events []event
	for _, d := range out.Detections {
		events = append(events, event{d.Span.Start, fmt.Sprintf(
			"%12.6f  DETECT %-10s %-14s %6.0fus conf=%.2f%s",
			secs(clock, d.Span.Start), d.Family.FamilyName(), d.Detector,
			clock.Micros(d.Span.Len()), d.Confidence, chanSuffix(d.Channel))})
	}
	for _, p := range out.Packets {
		events = append(events, event{p.Span.Start, packetLine(clock, p)})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].at < events[j].at })
	for _, e := range events {
		fmt.Println(e.line)
	}
}

func packetLine(clock iq.Clock, p demod.Packet) string {
	status := "ok"
	if !p.Valid {
		status = "bad"
	}
	detail := p.Note
	if p.Proto.Family() == protocols.WiFi80211b1M && len(p.Frame) > 0 {
		if m, err := wifi.ParseMPDU(p.Frame); err == nil {
			switch {
			case m.IsAck():
				detail = fmt.Sprintf("ACK ra=%s", m.Addr1)
			case m.IsCTS():
				detail = fmt.Sprintf("CTS ra=%s nav=%dus", m.Addr1, m.Duration)
			case m.IsBeacon():
				detail = fmt.Sprintf("Beacon bssid=%s", m.Addr3)
			default:
				detail = fmt.Sprintf("Data %s -> %s seq=%d len=%d", m.Addr2, m.Addr1, m.Seq, len(m.Payload))
			}
		}
	}
	return fmt.Sprintf("%12.6f  PACKET %-10s %-4s %4d bytes [%s] %s%s",
		secs(clock, p.Span.Start), p.Proto, status, len(p.Frame), p.Proto.FamilyName(), detail, chanSuffix(p.Channel))
}

func chanSuffix(ch int) string {
	if ch < 0 {
		return ""
	}
	return fmt.Sprintf(" ch=%d", ch)
}

func secs(clock iq.Clock, t iq.Tick) float64 {
	return float64(t) / float64(clock.Rate)
}
