// Command rfgen synthesizes IQ traces of the wireless ether (the role the
// USRP + emulator testbed play in the paper) and writes them as trace
// files with ground-truth sidecars.
//
// Usage:
//
//	rfgen -profile unicast -snr 20 -out trace.rfd
//	rfgen -profile mix -pings 100 -out mix.rfd        # + mix.rfd.truth
//	rfgen -profile realworld -scale 0.2 -out rw.rfd
//
// Profiles: unicast broadcast bluetooth mix realworld zigbee microwave ofdm
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdump/internal/ether"
	"rfdump/internal/experiments"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/trace"
)

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func main() {
	var (
		profile = flag.String("profile", "mix", "workload profile: unicast broadcast bluetooth mix realworld zigbee microwave ofdm")
		out     = flag.String("out", "trace.rfd", "output trace path (ground truth written to <out>.truth)")
		snr     = flag.Float64("snr", 20, "per-burst SNR in dB")
		pings   = flag.Int("pings", 100, "packet/exchange count for packetized profiles")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		scale   = flag.Float64("scale", 0.25, "scale for the realworld profile")
	)
	flag.Parse()

	res, err := generate(*profile, *snr, *pings, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfgen:", err)
		os.Exit(1)
	}
	if err := trace.WriteFile(*out, res.Clock.Rate, res.Samples); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing trace:", err)
		os.Exit(1)
	}
	if err := trace.WriteTruthFile(*out+".truth", res.Truth); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing truth:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d samples (%.2f s), %d transmissions, %.1f%% busy\n",
		*out, len(res.Samples),
		float64(len(res.Samples))/float64(res.Clock.Rate),
		len(res.Truth.Records), 100*res.Utilization())
}

func generate(profile string, snr float64, pings int, seed uint64, scale float64) (*ether.Result, error) {
	cfg := ether.Config{SNRdB: snr, Seed: seed}
	switch profile {
	case "unicast":
		cfg.Sources = []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: 500,
			InterPing: 8000, Requester: addr(0x11), Responder: addr(0x22),
			BSSID: addr(0x33), CFOHz: 2500,
		}}
	case "broadcast":
		cfg.Sources = []mac.Source{&mac.WiFiBroadcast{
			Rate: protocols.WiFi80211b1M, Count: pings, PayloadBytes: 500,
			Sender: addr(0x11), BSSID: addr(0x33), CFOHz: -1800,
		}}
	case "bluetooth":
		cfg.Sources = []mac.Source{&mac.BluetoothPiconet{
			LAP: experiments.PiconetLAP, UAP: experiments.PiconetUAP,
			Pings: pings, InterPingSlots: 2, CFOHz: 1200,
		}}
	case "mix":
		cfg.Sources = []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: 500,
				InterPing: 260_000, Requester: addr(0x11), Responder: addr(0x22),
				BSSID: addr(0x33), CFOHz: 2500,
			},
			&mac.BluetoothPiconet{
				LAP: experiments.PiconetLAP, UAP: experiments.PiconetUAP,
				Pings: pings * 2, InterPingSlots: 84, CFOHz: -900,
			},
		}
	case "ofdm":
		cfg.Sources = []mac.Source{&mac.WiFiGUnicast{
			Pings: pings, PayloadBytes: 500, InterPing: 8000, Protection: true,
			Requester: addr(0x51), Responder: addr(0x52), BSSID: addr(0x53),
		}}
	case "zigbee":
		cfg.Sources = []mac.Source{&mac.ZigBeeSource{
			Reports: pings, PayloadBytes: 48, OffsetHz: 1_500_000,
		}}
	case "microwave":
		cfg.Sources = []mac.Source{&mac.MicrowaveSource{SNROffsetDB: 8}}
		cfg.Duration = iq.Tick(8_000_000) // 1 s of oven cycles
	case "realworld":
		return experiments.RealWorldTrace(experiments.Options{Seed: seed, Scale: scale})
	default:
		return nil, fmt.Errorf("unknown profile %q", profile)
	}
	return ether.Run(cfg)
}
