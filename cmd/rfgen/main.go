// Command rfgen synthesizes IQ traces of the wireless ether (the role the
// USRP + emulator testbed play in the paper) and writes them as trace
// files with ground-truth sidecars — or transmits them to a running
// rfdumpd over the wire framing protocol.
//
// Usage:
//
//	rfgen -profile unicast -snr 20 -out trace.rfd
//	rfgen -profile mix -pings 100 -out mix.rfd        # + mix.rfd.truth
//	rfgen -profile realworld -scale 0.2 -out rw.rfd
//	rfgen -profile mix -stream localhost:7531          # transmit to rfdumpd
//	rfgen -profile mix -stream localhost:7531 -realtime
//
// Single-protocol profiles come from the module registry (any registered
// module key or alias — wifi, bt, zigbee, microwave, wifig/ofdm — plus
// their traffic fragments); composite profiles (broadcast, mix,
// realworld) are assembled here.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rfdump/internal/chaos"
	"rfdump/internal/ether"
	"rfdump/internal/experiments"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/trace"
	"rfdump/internal/wire"
)

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func main() {
	var (
		profile = flag.String("profile", "mix", "workload profile: any registered module key (wifi/unicast bluetooth zigbee microwave ofdm; see rfdumpd /api/protocols) or a composite: broadcast mix realworld")
		out     = flag.String("out", "trace.rfd", "output trace path (ground truth written to <out>.truth)")
		snr     = flag.Float64("snr", 20, "per-burst SNR in dB")
		pings   = flag.Int("pings", 100, "packet/exchange count for packetized profiles")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		scale   = flag.Float64("scale", 0.25, "scale for the realworld profile")

		sensors  = flag.Int("sensors", 1, "render the same ether at N sensor positions, emitting N synchronized traces")
		pathLoss = flag.String("path-loss", "", "comma list of per-sensor path loss in dB (default: 3 dB per position)")
		skew     = flag.String("skew", "", "comma list of per-sensor clock skew in samples (default: 16 per position)")

		streamTo = flag.String("stream", "", "transmit the trace to an rfdumpd ingest address instead of writing files; with -sensors, a comma list (one address per sensor, or one address reused)")
		realtime = flag.Bool("realtime", false, "pace transmission at the trace's sample rate (with -stream)")
		frameLen = flag.Int("frame-samples", wire.DefaultFrameSamples, "samples per wire frame (with -stream)")
		streamID = flag.Uint("stream-id", 1, "wire stream id (with -stream)")
		center   = flag.Uint64("center", 2_437_000_000, "center frequency metadata in Hz (with -stream)")

		reconnect = flag.Bool("reconnect", false, "survive daemon outages: redial with backoff and resume the stream (with -stream)")
		heartbeat = flag.Duration("heartbeat", 0, "send keep-alive frames when idle this long, e.g. 2s (with -reconnect)")
		dialTO    = flag.Duration("dial-timeout", wire.DefaultDialTimeout, "TCP connect timeout (with -stream)")
		writeTO   = flag.Duration("write-timeout", wire.DefaultWriteTimeout, "per-frame write deadline; 0 disables (with -stream)")
		maxDown   = flag.Duration("max-down", 0, "shed (and account) frames once the link has been down this long; 0 blocks forever (with -reconnect)")
		chaosSpec = flag.String("chaos", "", "degrade the link through an in-process chaos proxy, e.g. latency=2ms,jitter=500us,bw=1000000,reset=262144 (with -stream)")
	)
	flag.Parse()
	if *streamTo == "" {
		for name, set := range map[string]bool{
			"-realtime": *realtime, "-reconnect": *reconnect, "-chaos": *chaosSpec != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "rfgen: %s requires -stream\n", name)
				os.Exit(2)
			}
		}
	}

	opts := txOptions{
		realtime:  *realtime,
		reconnect: *reconnect,
		heartbeat: *heartbeat,
		dialTO:    *dialTO,
		writeTO:   *writeTO,
		maxDown:   *maxDown,
		chaosSpec: *chaosSpec,
	}
	if *sensors > 1 {
		if err := runMultiSensor(*profile, *snr, *pings, *seed, *scale,
			*sensors, *pathLoss, *skew,
			*out, *streamTo, uint32(*streamID), *center, *frameLen, opts); err != nil {
			fmt.Fprintln(os.Stderr, "rfgen:", err)
			os.Exit(1)
		}
		return
	}

	res, err := generate(*profile, *snr, *pings, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfgen:", err)
		os.Exit(1)
	}
	if *streamTo != "" {
		if err := transmit(res, *streamTo, uint32(*streamID), *center, *frameLen, opts); err != nil {
			fmt.Fprintln(os.Stderr, "rfgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := trace.WriteFile(*out, res.Clock.Rate, res.Samples); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing trace:", err)
		os.Exit(1)
	}
	if err := trace.WriteTruthFile(*out+".truth", res.Truth); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing truth:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d samples (%.2f s), %d transmissions, %.1f%% busy\n",
		*out, len(res.Samples),
		float64(len(res.Samples))/float64(res.Clock.Rate),
		len(res.Truth.Records), 100*res.Utilization())
}

// txOptions bundles the -stream transmission knobs.
type txOptions struct {
	realtime  bool
	reconnect bool
	heartbeat time.Duration
	dialTO    time.Duration
	writeTO   time.Duration
	maxDown   time.Duration
	chaosSpec string
}

// transmit streams the generated trace over the wire protocol — rfgen
// acting as the RF front end of a live rfdumpd deployment. With
// realtime set, frames are paced so samples arrive at the trace's
// sample rate (what a real receiver would deliver); otherwise the trace
// is sent as fast as the socket accepts it. With reconnect set, the
// stream survives daemon outages (redial, resume, gap accounting); with
// a chaos spec, everything crosses an in-process degraded proxy first.
func transmit(res *ether.Result, target string, streamID uint32, centerHz uint64, frameLen int, o txOptions) error {
	addr := target
	var proxy *chaos.Proxy
	if o.chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(o.chaosSpec)
		if err != nil {
			return err
		}
		proxy = chaos.New(target, ccfg)
		paddr, err := proxy.Start()
		if err != nil {
			return fmt.Errorf("chaos proxy: %w", err)
		}
		defer proxy.Close()
		addr = paddr
		fmt.Fprintf(os.Stderr, "rfgen: chaos proxy %s -> %s (%s)\n", paddr, target, o.chaosSpec)
	}
	meta := wire.StreamMeta{
		StreamID: streamID,
		Rate:     res.Clock.Rate,
		CenterHz: centerHz,
	}

	// Both client flavors speak the same frame API; finish closes the
	// stream and reports frames sent plus any resilience tail for the
	// summary line.
	var (
		send    func(iq.Samples) error
		sendAll func(iq.Samples) error
		frame   int
		finish  func() (int64, string, error)
	)
	if o.reconnect {
		rc := wire.NewReconnectClient(addr, meta, wire.ReconnectConfig{
			DialTimeout:  o.dialTO,
			WriteTimeout: o.writeTO,
			Heartbeat:    o.heartbeat,
			MaxDown:      o.maxDown,
			FrameSamples: frameLen,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "rfgen: "+format+"\n", args...)
			},
		})
		defer rc.Close()
		frame = rc.FrameSamples()
		send, sendAll = rc.SendFrame, rc.SendSamples
		finish = func() (int64, string, error) {
			err := rc.Close()
			st := rc.Stats()
			var extra string
			if st.Reconnects > 0 || st.DroppedSamples > 0 {
				extra = fmt.Sprintf(", %d reconnects, %d samples shed", st.Reconnects, st.DroppedSamples)
			}
			return int64(st.SentFrames), extra, err
		}
	} else {
		client, err := wire.DialTimeout(addr, meta, o.dialTO, o.writeTO)
		if err != nil {
			return err
		}
		defer client.Close()
		client.SetFrameSamples(frameLen)
		frame = client.FrameSamples()
		send, sendAll = client.SendFrame, client.SendSamples
		finish = func() (int64, string, error) {
			err := client.Close()
			return client.FramesSent(), "", err
		}
	}

	start := time.Now()
	if o.realtime {
		for off := 0; off < len(res.Samples); off += frame {
			end := off + frame
			if end > len(res.Samples) {
				end = len(res.Samples)
			}
			if err := send(res.Samples[off:end]); err != nil {
				return err
			}
			// Sleep toward the absolute schedule so pacing error does not
			// accumulate across frames.
			target := start.Add(res.Clock.Duration(iq.Tick(end)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
	} else if err := sendAll(res.Samples); err != nil {
		return err
	}
	frames, extra, err := finish()
	if err != nil {
		return err
	}
	took := time.Since(start).Seconds()
	fmt.Printf("streamed %d samples (%.2f s of air time) to %s in %.2f s: %d frames, %d transmissions%s\n",
		len(res.Samples), float64(len(res.Samples))/float64(res.Clock.Rate), addr,
		took, frames, len(res.Truth.Records), extra)
	if proxy != nil {
		// Our close only queued the tail of the stream; the proxy link
		// stays active until it forwards through to EOF. Wait for that
		// before the deferred Close resets the link, or the last frames
		// die in a kernel buffer.
		deadline := time.Now().Add(30 * time.Second)
		for proxy.Stats().Active > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		st := proxy.Stats()
		fmt.Printf("chaos: %d connections, %d bytes forwarded, %d resets, %d refused\n",
			st.Accepted, st.Bytes, st.Resets, st.Refused)
	}
	return nil
}

func generate(profile string, snr float64, pings int, seed uint64, scale float64) (*ether.Result, error) {
	cfg, pre, err := buildConfig(profile, snr, pings, seed, scale)
	if err != nil {
		return nil, err
	}
	if pre != nil {
		return pre, nil
	}
	return ether.Run(*cfg)
}

// buildConfig resolves a profile into an ether.Config, or (for profiles
// that generate a finished trace directly) a pre-rendered result.
func buildConfig(profile string, snr float64, pings int, seed uint64, scale float64) (*ether.Config, *ether.Result, error) {
	cfg := ether.Config{SNRdB: snr, Seed: seed}
	switch profile {
	case "broadcast":
		cfg.Sources = []mac.Source{&mac.WiFiBroadcast{
			Rate: protocols.WiFi80211b1M, Count: pings, PayloadBytes: 500,
			Sender: addr(0x11), BSSID: addr(0x33), CFOHz: -1800,
		}}
	case "mix":
		cfg.Sources = []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: 500,
				InterPing: 260_000, Requester: addr(0x11), Responder: addr(0x22),
				BSSID: addr(0x33), CFOHz: 2500,
			},
			&mac.BluetoothPiconet{
				LAP: experiments.PiconetLAP, UAP: experiments.PiconetUAP,
				Pings: pings * 2, InterPingSlots: 84, CFOHz: -900,
			},
		}
	case "realworld":
		res, err := experiments.RealWorldTrace(experiments.Options{Seed: seed, Scale: scale})
		return nil, res, err
	default:
		// Single-protocol profiles resolve through the module registry:
		// any registered key or alias with a traffic fragment works, so
		// a newly registered protocol is generatable with no rfgen edits.
		m, ok := protocols.ModuleByKey(profile)
		if !ok || !m.HasTraffic() {
			return nil, nil, fmt.Errorf("unknown profile %q (module keys: see rfdumpd /api/protocols; composites: broadcast mix realworld)", profile)
		}
		tr := m.NewTraffic(protocols.TrafficOptions{Count: pings})
		for _, src := range tr.Sources {
			ms, ok := src.(mac.Source)
			if !ok {
				return nil, nil, fmt.Errorf("profile %q: traffic source %T does not implement mac.Source", profile, src)
			}
			cfg.Sources = append(cfg.Sources, ms)
		}
		cfg.Duration = tr.Duration
	}
	return &cfg, nil, nil
}

// sensorSet builds the N sensor positions from the -path-loss and
// -skew lists; unlisted positions default to 3 dB extra loss and 16
// ticks extra skew per step away from the reference sensor.
func sensorSet(n int, pathLoss, skew string) ([]ether.Sensor, error) {
	losses, err := parseFloatList(pathLoss)
	if err != nil {
		return nil, fmt.Errorf("-path-loss: %w", err)
	}
	skews, err := parseFloatList(skew)
	if err != nil {
		return nil, fmt.Errorf("-skew: %w", err)
	}
	out := make([]ether.Sensor, n)
	for i := range out {
		out[i] = ether.Sensor{
			Name:       fmt.Sprintf("s%d", i),
			PathLossdB: 3 * float64(i),
			ClockSkew:  iq.Tick(16 * i),
		}
		if i < len(losses) {
			out[i].PathLossdB = losses[i]
		}
		if i < len(skews) {
			out[i].ClockSkew = iq.Tick(skews[i])
		}
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad entry %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// sensorPath derives one sensor's trace path from -out: trace.rfd →
// trace.s0.rfd (extensionless paths get the suffix appended).
func sensorPath(out, name string) string {
	if ext := filepath.Ext(out); ext != "" {
		return strings.TrimSuffix(out, ext) + "." + name + ext
	}
	return out + "." + name
}

// runMultiSensor renders one ether schedule at N positions and emits N
// synchronized outputs: trace files with per-sensor ground truth (plus
// the master truth under <out>.truth), or N concurrent wire streams —
// one rfdumpd target per sensor — for cluster tests.
func runMultiSensor(profile string, snr float64, pings int, seed uint64, scale float64,
	n int, pathLoss, skew string,
	out, streamTo string, streamID uint32, center uint64, frameLen int, opts txOptions) error {
	cfg, pre, err := buildConfig(profile, snr, pings, seed, scale)
	if err != nil {
		return err
	}
	if pre != nil {
		return fmt.Errorf("profile %q pre-renders a single trace and cannot be re-rendered per sensor", profile)
	}
	sensors, err := sensorSet(n, pathLoss, skew)
	if err != nil {
		return err
	}
	mr, err := ether.RunSensors(*cfg, sensors)
	if err != nil {
		return err
	}

	if streamTo != "" {
		targets := strings.Split(streamTo, ",")
		if len(targets) == 1 {
			for len(targets) < n {
				targets = append(targets, targets[0])
			}
		}
		if len(targets) != n {
			return fmt.Errorf("-stream lists %d targets for %d sensors", len(targets), n)
		}
		// Transmit concurrently: the sensors heard the same air at the
		// same time, so their streams should land together too.
		errs := make(chan error, n)
		for i, sr := range mr.Sensors {
			go func(i int, sr *ether.SensorResult) {
				res := &ether.Result{Samples: sr.Samples, Truth: sr.Truth, Clock: mr.Clock}
				errs <- transmit(res, strings.TrimSpace(targets[i]), streamID+uint32(i), center, frameLen, opts)
			}(i, sr)
		}
		for range mr.Sensors {
			if e := <-errs; e != nil && err == nil {
				err = e
			}
		}
		return err
	}

	for _, sr := range mr.Sensors {
		path := sensorPath(out, sr.Sensor.Name)
		if err := trace.WriteFile(path, mr.Clock.Rate, sr.Samples); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := trace.WriteTruthFile(path+".truth", sr.Truth); err != nil {
			return fmt.Errorf("writing truth: %w", err)
		}
		fmt.Printf("wrote %s: %d samples, path loss %.1f dB, skew %d samples\n",
			path, len(sr.Samples), sr.Sensor.PathLossdB, int64(sr.Sensor.ClockSkew))
	}
	if err := trace.WriteTruthFile(out+".truth", mr.Truth); err != nil {
		return fmt.Errorf("writing master truth: %w", err)
	}
	fmt.Printf("wrote %s.truth (master): %d transmissions across %d sensors\n",
		out, len(mr.Truth.Records), n)
	return nil
}
