// Command rfgen synthesizes IQ traces of the wireless ether (the role the
// USRP + emulator testbed play in the paper) and writes them as trace
// files with ground-truth sidecars — or transmits them to a running
// rfdumpd over the wire framing protocol.
//
// Usage:
//
//	rfgen -profile unicast -snr 20 -out trace.rfd
//	rfgen -profile mix -pings 100 -out mix.rfd        # + mix.rfd.truth
//	rfgen -profile realworld -scale 0.2 -out rw.rfd
//	rfgen -profile mix -stream localhost:7531          # transmit to rfdumpd
//	rfgen -profile mix -stream localhost:7531 -realtime
//
// Single-protocol profiles come from the module registry (any registered
// module key or alias — wifi, bt, zigbee, microwave, wifig/ofdm — plus
// their traffic fragments); composite profiles (broadcast, mix,
// realworld) are assembled here.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rfdump/internal/ether"
	"rfdump/internal/experiments"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/trace"
	"rfdump/internal/wire"
)

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func main() {
	var (
		profile = flag.String("profile", "mix", "workload profile: any registered module key (wifi/unicast bluetooth zigbee microwave ofdm; see rfdumpd /api/protocols) or a composite: broadcast mix realworld")
		out     = flag.String("out", "trace.rfd", "output trace path (ground truth written to <out>.truth)")
		snr     = flag.Float64("snr", 20, "per-burst SNR in dB")
		pings   = flag.Int("pings", 100, "packet/exchange count for packetized profiles")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		scale   = flag.Float64("scale", 0.25, "scale for the realworld profile")

		streamTo = flag.String("stream", "", "transmit the trace to an rfdumpd ingest address instead of writing files")
		realtime = flag.Bool("realtime", false, "pace transmission at the trace's sample rate (with -stream)")
		frameLen = flag.Int("frame-samples", wire.DefaultFrameSamples, "samples per wire frame (with -stream)")
		streamID = flag.Uint("stream-id", 1, "wire stream id (with -stream)")
		center   = flag.Uint64("center", 2_437_000_000, "center frequency metadata in Hz (with -stream)")
	)
	flag.Parse()
	if *realtime && *streamTo == "" {
		fmt.Fprintln(os.Stderr, "rfgen: -realtime requires -stream")
		os.Exit(2)
	}

	res, err := generate(*profile, *snr, *pings, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfgen:", err)
		os.Exit(1)
	}
	if *streamTo != "" {
		if err := transmit(res, *streamTo, uint32(*streamID), *center, *frameLen, *realtime); err != nil {
			fmt.Fprintln(os.Stderr, "rfgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := trace.WriteFile(*out, res.Clock.Rate, res.Samples); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing trace:", err)
		os.Exit(1)
	}
	if err := trace.WriteTruthFile(*out+".truth", res.Truth); err != nil {
		fmt.Fprintln(os.Stderr, "rfgen: writing truth:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d samples (%.2f s), %d transmissions, %.1f%% busy\n",
		*out, len(res.Samples),
		float64(len(res.Samples))/float64(res.Clock.Rate),
		len(res.Truth.Records), 100*res.Utilization())
}

// transmit streams the generated trace over the wire protocol — rfgen
// acting as the RF front end of a live rfdumpd deployment. With
// realtime set, frames are paced so samples arrive at the trace's
// sample rate (what a real receiver would deliver); otherwise the trace
// is sent as fast as the socket accepts it.
func transmit(res *ether.Result, addr string, streamID uint32, centerHz uint64, frameLen int, realtime bool) error {
	client, err := wire.Dial(addr, wire.StreamMeta{
		StreamID: streamID,
		Rate:     res.Clock.Rate,
		CenterHz: centerHz,
	})
	if err != nil {
		return err
	}
	defer client.Close()
	client.SetFrameSamples(frameLen)

	start := time.Now()
	if realtime {
		frame := client.FrameSamples()
		for off := 0; off < len(res.Samples); off += frame {
			end := off + frame
			if end > len(res.Samples) {
				end = len(res.Samples)
			}
			if err := client.SendFrame(res.Samples[off:end]); err != nil {
				return err
			}
			// Sleep toward the absolute schedule so pacing error does not
			// accumulate across frames.
			target := start.Add(res.Clock.Duration(iq.Tick(end)))
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
	} else if err := client.SendSamples(res.Samples); err != nil {
		return err
	}
	if err := client.Close(); err != nil {
		return err
	}
	took := time.Since(start).Seconds()
	fmt.Printf("streamed %d samples (%.2f s of air time) to %s in %.2f s: %d frames, %d transmissions\n",
		len(res.Samples), float64(len(res.Samples))/float64(res.Clock.Rate), addr,
		took, client.FramesSent(), len(res.Truth.Records))
	return nil
}

func generate(profile string, snr float64, pings int, seed uint64, scale float64) (*ether.Result, error) {
	cfg := ether.Config{SNRdB: snr, Seed: seed}
	switch profile {
	case "broadcast":
		cfg.Sources = []mac.Source{&mac.WiFiBroadcast{
			Rate: protocols.WiFi80211b1M, Count: pings, PayloadBytes: 500,
			Sender: addr(0x11), BSSID: addr(0x33), CFOHz: -1800,
		}}
	case "mix":
		cfg.Sources = []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: 500,
				InterPing: 260_000, Requester: addr(0x11), Responder: addr(0x22),
				BSSID: addr(0x33), CFOHz: 2500,
			},
			&mac.BluetoothPiconet{
				LAP: experiments.PiconetLAP, UAP: experiments.PiconetUAP,
				Pings: pings * 2, InterPingSlots: 84, CFOHz: -900,
			},
		}
	case "realworld":
		return experiments.RealWorldTrace(experiments.Options{Seed: seed, Scale: scale})
	default:
		// Single-protocol profiles resolve through the module registry:
		// any registered key or alias with a traffic fragment works, so
		// a newly registered protocol is generatable with no rfgen edits.
		m, ok := protocols.ModuleByKey(profile)
		if !ok || !m.HasTraffic() {
			return nil, fmt.Errorf("unknown profile %q (module keys: see rfdumpd /api/protocols; composites: broadcast mix realworld)", profile)
		}
		tr := m.NewTraffic(protocols.TrafficOptions{Count: pings})
		for _, src := range tr.Sources {
			ms, ok := src.(mac.Source)
			if !ok {
				return nil, fmt.Errorf("profile %q: traffic source %T does not implement mac.Source", profile, src)
			}
			cfg.Sources = append(cfg.Sources, ms)
		}
		cfg.Duration = tr.Duration
	}
	return ether.Run(cfg)
}
