package main

import (
	"testing"

	"rfdump/internal/protocols"
)

func TestGenerateProfiles(t *testing.T) {
	for _, profile := range []string{"unicast", "broadcast", "bluetooth", "mix", "zigbee", "microwave", "ofdm"} {
		res, err := generate(profile, 20, 4, 1, 0.05)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if len(res.Samples) == 0 {
			t.Errorf("%s: empty trace", profile)
		}
		if len(res.Truth.Records) == 0 {
			t.Errorf("%s: no ground truth", profile)
		}
	}
	if _, err := generate("bogus", 20, 4, 1, 0.05); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateRealWorldComposition(t *testing.T) {
	res, err := generate("realworld", 18, 0, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	fams := map[protocols.ID]bool{}
	for _, r := range res.Truth.Records {
		fams[r.Proto.Family()] = true
	}
	if !fams[protocols.WiFi80211b1M] || !fams[protocols.Bluetooth] {
		t.Errorf("realworld families %v", fams)
	}
}
