// Package trace implements the on-disk IQ trace format the tools exchange
// — the stand-in for the paper's "files that store the streams of samples
// recorded by the USRP" (Section 5) — plus a JSON-lines ground-truth
// sidecar so accuracy experiments can run from files as well as from
// in-memory emulation.
//
// Format (little-endian):
//
//	magic   [4]byte  "RFDT"
//	version uint32   1
//	rate    uint32   samples per second
//	count   uint64   number of complex samples
//	data    count x (float32 I, float32 Q)
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"rfdump/internal/iq"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// Magic identifies trace files.
var Magic = [4]byte{'R', 'F', 'D', 'T'}

// Version is the current format version.
const Version = 1

// Header is the trace file header.
type Header struct {
	Rate  int
	Count uint64
}

// Write stores a stream to w.
func Write(w io.Writer, rate int, samples iq.Samples) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(Version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(rate)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(samples))); err != nil {
		return err
	}
	var buf [8]byte
	for _, s := range samples {
		binary.LittleEndian.PutUint32(buf[0:4], math.Float32bits(real(s)))
		binary.LittleEndian.PutUint32(buf[4:8], math.Float32bits(imag(s)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadHeader parses and validates the header.
func ReadHeader(r io.Reader) (Header, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return Header{}, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return Header{}, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var version, rate uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return Header{}, err
	}
	if version != Version {
		return Header{}, fmt.Errorf("trace: unsupported version %d", version)
	}
	if err := binary.Read(r, binary.LittleEndian, &rate); err != nil {
		return Header{}, err
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return Header{}, err
	}
	return Header{Rate: int(rate), Count: count}, nil
}

// Read loads a complete trace from r. The header count is untrusted: a
// corrupted or hostile count must not pre-allocate unbounded memory, so
// the sample slice grows as data actually arrives, with only a bounded
// initial capacity.
func Read(r io.Reader) (Header, iq.Samples, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := ReadHeader(br)
	if err != nil {
		return Header{}, nil, err
	}
	prealloc := h.Count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	samples := make(iq.Samples, 0, prealloc)
	var buf [8]byte
	for i := uint64(0); i < h.Count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			if err == io.EOF {
				// Bare io.EOF here means the payload ended with samples
				// still owed — truncation, not a clean end of stream.
				err = io.ErrUnexpectedEOF
			}
			return h, samples, fmt.Errorf("trace: truncated at sample %d: %w", i, err)
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[0:4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:8]))
		samples = append(samples, complex(re, im))
	}
	return h, samples, nil
}

// WriteFile stores a trace to path.
func WriteFile(path string, rate int, samples iq.Samples) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Write(f, rate, samples); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from path.
func ReadFile(path string) (Header, iq.Samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return Read(f)
}

// truthRecord is the sidecar JSON shape (stable field names).
type truthRecord struct {
	Proto   string  `json:"proto"`
	Kind    string  `json:"kind"`
	Start   int64   `json:"start"`
	End     int64   `json:"end"`
	Channel int     `json:"channel"`
	SNRdB   float64 `json:"snr_db"`
	Visible bool    `json:"visible"`
}

var protoNames = map[protocols.ID]string{
	protocols.WiFi80211b1M:  "802.11b/1",
	protocols.WiFi80211b2M:  "802.11b/2",
	protocols.WiFi80211b5M5: "802.11b/5.5",
	protocols.WiFi80211b11M: "802.11b/11",
	protocols.WiFi80211g:    "802.11g",
	protocols.Bluetooth:     "bluetooth",
	protocols.ZigBee:        "zigbee",
	protocols.Microwave:     "microwave",
	protocols.Unknown:       "unknown",
}

func protoFromName(s string) protocols.ID {
	for id, name := range protoNames {
		if name == s {
			return id
		}
	}
	// Not one of the sidecar's fixed labels: resolve registered
	// (including dynamically allocated) protocol names.
	return protocols.IDByName(s)
}

// WriteTruth stores a ground-truth sidecar as JSON lines.
func WriteTruth(w io.Writer, ts *truth.Set) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	head := struct {
		TraceLen int64 `json:"trace_len"`
		Rate     int   `json:"rate"`
	}{int64(ts.TraceLen), ts.Clock.Rate}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, r := range ts.Records {
		name, ok := protoNames[r.Proto]
		if !ok {
			// Dynamically registered protocol: its String() is its name.
			name = r.Proto.String()
		}
		tr := truthRecord{
			Proto:   name,
			Kind:    r.Kind,
			Start:   int64(r.Span.Start),
			End:     int64(r.Span.End),
			Channel: r.Channel,
			SNRdB:   r.SNRdB,
			Visible: r.Visible,
		}
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTruth loads a ground-truth sidecar.
func ReadTruth(r io.Reader) (*truth.Set, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var head struct {
		TraceLen int64 `json:"trace_len"`
		Rate     int   `json:"rate"`
	}
	if err := dec.Decode(&head); err != nil {
		return nil, fmt.Errorf("trace: truth header: %w", err)
	}
	ts := &truth.Set{TraceLen: iq.Tick(head.TraceLen), Clock: iq.NewClock(head.Rate)}
	for {
		var tr truthRecord
		if err := dec.Decode(&tr); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		ts.Add(truth.Record{
			Proto:   protoFromName(tr.Proto),
			Kind:    tr.Kind,
			Span:    iq.Interval{Start: iq.Tick(tr.Start), End: iq.Tick(tr.End)},
			Channel: tr.Channel,
			SNRdB:   tr.SNRdB,
			Visible: tr.Visible,
		})
	}
	ts.MarkCollisions()
	return ts, nil
}

// WriteTruthFile stores the sidecar to path.
func WriteTruthFile(path string, ts *truth.Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteTruth(f, ts); err != nil {
		return err
	}
	return f.Close()
}

// ReadTruthFile loads the sidecar from path.
func ReadTruthFile(path string) (*truth.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTruth(f)
}
