package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rfdump/internal/iq"
	"rfdump/internal/truth"
)

// FuzzRead feeds arbitrary bytes — including traces with corrupted
// headers and hostile sample counts — to the binary trace reader. The
// reader must never panic and must never allocate proportionally to an
// untrusted header count (a 4 GiB claim backed by a 20-byte file).
func FuzzRead(f *testing.F) {
	var ok bytes.Buffer
	if err := Write(&ok, 8_000_000, iq.Samples{1, complex(2, -3)}); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte("RFDT"))
	f.Add([]byte("NOPE...."))
	f.Add([]byte{})

	// A valid header claiming ~2^61 samples with no data behind it.
	huge := []byte{'R', 'F', 'D', 'T'}
	huge = binary.LittleEndian.AppendUint32(huge, Version)
	huge = binary.LittleEndian.AppendUint32(huge, 8_000_000)
	huge = binary.LittleEndian.AppendUint64(huge, 1<<61)
	f.Add(huge)

	// Truncated mid-sample.
	trunc := append([]byte{}, ok.Bytes()...)
	f.Add(trunc[:len(trunc)-5])

	f.Fuzz(func(t *testing.T, data []byte) {
		h, samples, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if uint64(len(samples)) != h.Count {
			t.Errorf("clean read returned %d samples for count %d", len(samples), h.Count)
		}
	})
}

// FuzzReadTruth feeds arbitrary bytes to the JSON-lines ground-truth
// reader; it must reject garbage without panicking.
func FuzzReadTruth(f *testing.F) {
	var ok bytes.Buffer
	ts := &truth.Set{TraceLen: 10_000, Clock: iq.NewClock(8_000_000)}
	ts.Add(truth.Record{Kind: "data", Span: iq.Interval{Start: 1, End: 9}})
	if err := WriteTruth(&ok, ts); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte("not json"))
	f.Add([]byte(`{"trace_len":-1,"rate":-5}`))
	f.Add([]byte(`{"trace_len":1,"rate":1}` + "\n" + `{"start":9,"end":1}`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTruth(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Error("nil set with nil error")
		}
	})
}
