package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"rfdump/internal/demod"
	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

func TestRoundTrip(t *testing.T) {
	samples := iq.Samples{complex(1, -2), complex(0.5, 0.25), complex(-3, 4)}
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, samples); err != nil {
		t.Fatal(err)
	}
	h, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rate != 8_000_000 || h.Count != 3 {
		t.Errorf("header %+v", h)
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Errorf("sample %d: %v != %v", i, got[i], samples[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := dsp.NewRand(seed)
		samples := make(iq.Samples, n%500)
		for i := range samples {
			samples[i] = complex(float32(r.Norm()), float32(r.Norm()))
		}
		var buf bytes.Buffer
		if err := Write(&buf, 1_000_000, samples); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil || len(got) != len(samples) {
			return false
		}
		for i := range samples {
			if got[i] != samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, _, err := Read(strings.NewReader("NOPE....")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestTruncatedData(t *testing.T) {
	samples := make(iq.Samples, 100)
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, samples); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-10]
	_, got, err := Read(bytes.NewReader(cut))
	if err == nil {
		t.Error("truncated trace read without error")
	}
	if len(got) == 0 {
		t.Error("partial data should be returned for inspection")
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, iq.Samples{1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	if _, _, err := Read(bytes.NewReader(b)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.rfd")
	samples := iq.Samples{1, complex(2, 3)}
	if err := WriteFile(path, 8_000_000, samples); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadFile(path)
	if err != nil || h.Count != 2 || got[1] != complex64(complex(2, 3)) {
		t.Fatalf("file round trip: %v %v %v", h, got, err)
	}
	if _, _, err := ReadFile(filepath.Join(dir, "missing.rfd")); err == nil {
		t.Error("missing file read")
	}
}

func TestTruthRoundTrip(t *testing.T) {
	ts := &truth.Set{TraceLen: 10_000, Clock: iq.NewClock(8_000_000)}
	ts.Add(truth.Record{
		Proto:   protocols.WiFi80211b2M,
		Kind:    "data",
		Span:    iq.Interval{Start: 100, End: 900},
		Channel: -1,
		SNRdB:   17.5,
		Visible: true,
	})
	ts.Add(truth.Record{
		Proto:   protocols.Bluetooth,
		Kind:    "l2ping-req",
		Span:    iq.Interval{Start: 2000, End: 4000},
		Channel: 6,
		SNRdB:   20,
		Visible: false,
	})
	var buf bytes.Buffer
	if err := WriteTruth(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruth(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceLen != ts.TraceLen || got.Clock.Rate != 8_000_000 {
		t.Error("header fields")
	}
	if len(got.Records) != 2 {
		t.Fatalf("records = %d", len(got.Records))
	}
	r0 := got.Records[0]
	if r0.Proto != protocols.WiFi80211b2M || r0.Kind != "data" ||
		r0.Span != (iq.Interval{Start: 100, End: 900}) || !r0.Visible {
		t.Errorf("record 0 = %+v", r0)
	}
	r1 := got.Records[1]
	if r1.Proto != protocols.Bluetooth || r1.Channel != 6 || r1.Visible {
		t.Errorf("record 1 = %+v", r1)
	}
}

func TestTruthFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.truth")
	ts := &truth.Set{TraceLen: 5, Clock: iq.NewClock(0)}
	if err := WriteTruthFile(path, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruthFile(path)
	if err != nil || got.TraceLen != 5 {
		t.Fatalf("truth file round trip: %v %v", got, err)
	}
}

func TestTruthBadHeader(t *testing.T) {
	if _, err := ReadTruth(strings.NewReader("not json")); err == nil {
		t.Error("garbage truth accepted")
	}
}

func TestPacketLogRoundTrip(t *testing.T) {
	clock := iq.NewClock(0)
	packets := []demod.Packet{
		{
			Proto:   protocols.WiFi80211b1M,
			Span:    iq.Interval{Start: 8000, End: 48000},
			Channel: -1,
			Valid:   true,
			Frame:   []byte{0x08, 0x00, 0xDE, 0xAD},
		},
		{
			Proto:   protocols.Bluetooth,
			Span:    iq.Interval{Start: 100_000, End: 120_000},
			Channel: 5,
			Valid:   false,
			Note:    "CRC mismatch",
		},
	}
	var buf bytes.Buffer
	w := NewPacketLogWriter(&buf, clock)
	for _, p := range packets {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2 {
		t.Errorf("count %d", w.Count())
	}

	recs, err := ReadPacketLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records %d", len(recs))
	}
	if recs[0].TimeS != 0.001 {
		t.Errorf("time %v", recs[0].TimeS)
	}
	for i, rec := range recs {
		p, err := rec.DecodePacket()
		if err != nil {
			t.Fatal(err)
		}
		if p.Proto != packets[i].Proto || p.Span != packets[i].Span ||
			p.Valid != packets[i].Valid || p.Channel != packets[i].Channel {
			t.Errorf("packet %d: %+v != %+v", i, p, packets[i])
		}
		if !bytes.Equal(p.Frame, packets[i].Frame) {
			t.Errorf("packet %d frame mismatch", i)
		}
	}
}

func TestPacketLogFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pkts.jsonl")
	clock := iq.NewClock(0)
	if err := WritePacketLogFile(path, clock, []demod.Packet{{Proto: protocols.ZigBee, Valid: true}}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadPacketLog(f)
	if err != nil || len(recs) != 1 || recs[0].Proto != "ZigBee" {
		t.Fatalf("recs %v err %v", recs, err)
	}
}

func TestPacketLogGarbage(t *testing.T) {
	if _, err := ReadPacketLog(strings.NewReader("{bad json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := (PacketRecord{Frame: "zz"}).DecodePacket(); err == nil {
		t.Error("bad hex accepted")
	}
}
