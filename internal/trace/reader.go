package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"rfdump/internal/iq"
)

// Reader streams a trace file block by block instead of materializing
// the whole capture in memory. It implements the pipeline's block-source
// contract (core.BlockReader / frontend.SampleSource): the caller hands
// in the destination buffer — typically a pooled sample block — and the
// reader fills it, so a multi-gigabyte trace is monitored with a
// bounded-size pool instead of one giant slice.
//
// ReadBlock performs no per-block allocations: the byte scratch grows to
// the largest block requested and is reused thereafter.
type Reader struct {
	src     io.Reader
	closer  io.Closer
	br      *bufio.Reader
	header  Header
	left    uint64 // samples the header still promises
	pos     uint64 // samples delivered so far
	scratch []byte
}

// NewReader wraps r, parsing and validating the trace header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	return &Reader{src: r, br: br, header: h, left: h.Count}, nil
}

// OpenFile opens a trace file for streaming; Close releases it.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// Header returns the parsed trace header.
func (r *Reader) Header() Header { return r.header }

// Pos returns the number of samples delivered so far.
func (r *Reader) Pos() iq.Tick { return iq.Tick(r.pos) }

// ReadBlock fills dst with the next samples of the trace and returns the
// number delivered; io.EOF (possibly alongside n > 0) ends the stream.
// A trace shorter than its header count returns an error describing the
// truncation point, matching Read's contract.
func (r *Reader) ReadBlock(dst iq.Samples) (int, error) {
	if r.left == 0 {
		return 0, io.EOF
	}
	want := uint64(len(dst))
	if want > r.left {
		want = r.left
	}
	if want == 0 {
		return 0, nil
	}
	need := int(want) * 8
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	n, err := io.ReadFull(r.br, buf)
	got := n / 8
	for i := 0; i < got; i++ {
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8 : i*8+4]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[i*8+4 : i*8+8]))
		dst[i] = complex(re, im)
	}
	r.pos += uint64(got)
	r.left -= uint64(got)
	if err != nil {
		if err == io.EOF {
			// ReadFull reports a bare io.EOF when zero bytes were read;
			// with samples still owed that is a truncation, and wrapping
			// io.EOF would let callers mistake it for a clean end of
			// stream (errors.Is(err, io.EOF)).
			err = io.ErrUnexpectedEOF
		}
		return got, fmt.Errorf("trace: truncated at sample %d: %w", r.pos, err)
	}
	if r.left == 0 {
		return got, io.EOF
	}
	return got, nil
}

// Close releases the underlying file (no-op for NewReader over a plain
// io.Reader).
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}
