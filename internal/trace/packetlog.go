package trace

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rfdump/internal/demod"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// PacketRecord is the JSON shape of one decoded packet in a packet log —
// rfdump's equivalent of a pcap entry: enough to replay analysis offline
// (protocol, timing, channel, validity, raw frame bytes).
type PacketRecord struct {
	// TimeS is the packet start in seconds from trace start.
	TimeS float64 `json:"t"`
	// Proto is the decoded protocol/rate name.
	Proto string `json:"proto"`
	// Start/End are the sample positions.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Channel is the protocol channel, or -1.
	Channel int `json:"channel"`
	// Valid reports checksum status.
	Valid bool `json:"valid"`
	// Note carries demodulator diagnostics.
	Note string `json:"note,omitempty"`
	// Frame is the hex-encoded link-layer frame (empty if undecoded).
	Frame string `json:"frame,omitempty"`
}

// PacketLogWriter streams decoded packets as JSON lines.
type PacketLogWriter struct {
	w     *bufio.Writer
	enc   *json.Encoder
	clock iq.Clock
	n     int
}

// NewPacketLogWriter wraps w; clock converts spans to seconds.
func NewPacketLogWriter(w io.Writer, clock iq.Clock) *PacketLogWriter {
	bw := bufio.NewWriter(w)
	return &PacketLogWriter{w: bw, enc: json.NewEncoder(bw), clock: clock}
}

// NewPacketRecord converts one decoded packet into the canonical JSON
// record. It is the single constructor shared by the offline packet log
// and the daemon's /api/packets + live event feed, so the packet schema
// cannot drift between the two surfaces.
func NewPacketRecord(clock iq.Clock, p demod.Packet) PacketRecord {
	return PacketRecord{
		TimeS:   float64(p.Span.Start) / float64(clock.Rate),
		Proto:   p.Proto.String(),
		Start:   int64(p.Span.Start),
		End:     int64(p.Span.End),
		Channel: p.Channel,
		Valid:   p.Valid,
		Note:    p.Note,
		Frame:   hex.EncodeToString(p.Frame),
	}
}

// Write appends one packet.
func (l *PacketLogWriter) Write(p demod.Packet) error {
	l.n++
	return l.enc.Encode(NewPacketRecord(l.clock, p))
}

// Count returns how many packets have been written.
func (l *PacketLogWriter) Count() int { return l.n }

// Flush drains the buffer.
func (l *PacketLogWriter) Flush() error { return l.w.Flush() }

// ReadPacketLog parses a packet log back into records.
func ReadPacketLog(r io.Reader) ([]PacketRecord, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []PacketRecord
	for {
		var rec PacketRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("trace: packet log entry %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// DecodePacket converts a record back to a demod.Packet (the inverse of
// PacketLogWriter.Write, modulo the protocol name round trip).
func (rec PacketRecord) DecodePacket() (demod.Packet, error) {
	frame, err := hex.DecodeString(rec.Frame)
	if err != nil {
		return demod.Packet{}, fmt.Errorf("trace: bad frame hex: %w", err)
	}
	if len(frame) == 0 {
		frame = nil
	}
	return demod.Packet{
		Proto:   protoIDFromString(rec.Proto),
		Span:    iq.Interval{Start: iq.Tick(rec.Start), End: iq.Tick(rec.End)},
		Channel: rec.Channel,
		Valid:   rec.Valid,
		Note:    rec.Note,
		Frame:   frame,
	}, nil
}

// protoIDFromString inverts protocols.ID.String for log round trips
// (protocols.IDByName also resolves dynamically registered protocols).
func protoIDFromString(s string) protocols.ID {
	return protocols.IDByName(s)
}

// WritePacketLogFile writes a complete packet set to path.
func WritePacketLogFile(path string, clock iq.Clock, packets []demod.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	l := NewPacketLogWriter(f, clock)
	for _, p := range packets {
		if err := l.Write(p); err != nil {
			return err
		}
	}
	if err := l.Flush(); err != nil {
		return err
	}
	return f.Close()
}
