package trace_test

import (
	"bytes"
	"fmt"

	"rfdump/internal/iq"
	"rfdump/internal/trace"
)

// Example shows the trace codec round trip the tools use to exchange
// recorded ether.
func Example() {
	samples := iq.Samples{complex(1, 0), complex(0, -1), complex(0.5, 0.5)}

	var buf bytes.Buffer
	if err := trace.Write(&buf, 8_000_000, samples); err != nil {
		panic(err)
	}
	hdr, got, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rate %d Hz, %d samples, first %v\n", hdr.Rate, hdr.Count, got[0])
	// Output:
	// rate 8000000 Hz, 3 samples, first (1+0i)
}
