package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"rfdump/internal/iq"
)

func randomStream(n int, seed int64) iq.Samples {
	rng := rand.New(rand.NewSource(seed))
	s := make(iq.Samples, n)
	for i := range s {
		s[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	return s
}

// TestReaderMatchesRead: streaming the trace block by block reproduces
// exactly what the monolithic Read loads, across block sizes that do and
// do not divide the trace length.
func TestReaderMatchesRead(t *testing.T) {
	stream := randomStream(4_321, 1)
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, stream); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, blockSize := range []int{1, 7, iq.ChunkSamples, 4096} {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if r.Header().Count != uint64(len(stream)) || r.Header().Rate != 8_000_000 {
			t.Fatalf("header = %+v", r.Header())
		}
		var got iq.Samples
		dst := make(iq.Samples, blockSize)
		for {
			n, err := r.ReadBlock(dst)
			got = append(got, dst[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("block %d: %v", blockSize, err)
			}
		}
		if len(got) != len(stream) {
			t.Fatalf("block %d: got %d samples, want %d", blockSize, len(got), len(stream))
		}
		for i := range got {
			if got[i] != stream[i] {
				t.Fatalf("block %d: sample %d = %v, want %v", blockSize, i, got[i], stream[i])
			}
		}
		if r.Pos() != iq.Tick(len(stream)) {
			t.Fatalf("Pos = %d, want %d", r.Pos(), len(stream))
		}
	}
}

func TestReaderTruncated(t *testing.T) {
	stream := randomStream(500, 2)
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, stream); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cut := raw[:len(raw)-96] // drop 12 samples
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	dst := make(iq.Samples, 64)
	for {
		n, err := r.ReadBlock(dst)
		total += n
		if err != nil {
			if errors.Is(err, io.EOF) && total == len(stream) {
				t.Fatal("truncated trace reported clean EOF")
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("unexpected error type: %v", err)
			}
			break
		}
	}
	if total != 488 {
		t.Fatalf("delivered %d samples from truncated trace, want 488", total)
	}
}

// TestReaderTruncatedAtBlockBoundary: a trace cut exactly at a block
// boundary must still surface truncation. io.ReadFull reports a bare
// io.EOF there (zero bytes read), and wrapping that verbatim would let
// errors.Is(err, io.EOF) callers mistake the short trace for a clean
// end of stream.
func TestReaderTruncatedAtBlockBoundary(t *testing.T) {
	stream := randomStream(500, 5)
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, stream); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cut := raw[:len(raw)-52*8] // 448 samples remain: exactly 7 blocks of 64
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	dst := make(iq.Samples, 64)
	for {
		n, err := r.ReadBlock(dst)
		total += n
		if err == nil {
			continue
		}
		if errors.Is(err, io.EOF) {
			t.Fatalf("boundary truncation reported as clean EOF: %v", err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error type: %v", err)
		}
		break
	}
	if total != 448 {
		t.Fatalf("delivered %d samples, want 448", total)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope-nothing-here"))); err == nil {
		t.Fatal("expected header error")
	}
}

func TestOpenFileRoundTrip(t *testing.T) {
	stream := randomStream(1000, 3)
	path := filepath.Join(t.TempDir(), "t.rfd")
	if err := WriteFile(path, 4_000_000, stream); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dst := make(iq.Samples, 333)
	total := 0
	for {
		n, err := r.ReadBlock(dst)
		total += n
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != len(stream) {
		t.Fatalf("streamed %d, want %d", total, len(stream))
	}
}

// TestReaderSteadyStateAllocs: after warm-up, ReadBlock must not
// allocate (it fills pooled blocks on the hot path).
func TestReaderSteadyStateAllocs(t *testing.T) {
	stream := randomStream(200*iq.ChunkSamples, 4)
	var buf bytes.Buffer
	if err := Write(&buf, 8_000_000, stream); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	dst := make(iq.Samples, iq.ChunkSamples)
	if _, err := r.ReadBlock(dst); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := r.ReadBlock(dst); err != nil && !errors.Is(err, io.EOF) {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("ReadBlock allocates %.1f objects per block, want 0", allocs)
	}
}
