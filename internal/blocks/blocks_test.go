package blocks

import (
	"sync"
	"testing"

	"rfdump/internal/iq"
)

func TestPoolGetReleaseRecycles(t *testing.T) {
	p := NewPool(8)
	b := p.Get()
	if b.Refs() != 1 {
		t.Fatalf("fresh block refs = %d, want 1", b.Refs())
	}
	if b.Cap() != 8 || b.Len() != 8 {
		t.Fatalf("fresh block cap=%d len=%d, want 8/8", b.Cap(), b.Len())
	}
	b.SetLen(5)
	if got := len(b.Samples()); got != 5 {
		t.Fatalf("Samples() len = %d, want 5", got)
	}
	b.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live after release = %d, want 0", st.Live)
	}
	// Recycling must dominate allocation. sync.Pool is best-effort and
	// deliberately drops a fraction of puts under the race detector, so
	// assert statistically over many cycles rather than on one buffer's
	// identity: 100 get/release cycles must not mint 100 new buffers.
	start := p.Stats().News
	for i := 0; i < 100; i++ {
		b2 := p.Get()
		b2.Release()
	}
	if made := p.Stats().News - start; made >= 100 {
		t.Errorf("no recycling: %d new buffers for 100 gets", made)
	}
}

func TestRetainKeepsBlockAlive(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	b.Retain()
	b.Release()
	if b.Refs() != 1 {
		t.Fatalf("refs after retain+release = %d, want 1", b.Refs())
	}
	if st := p.Stats(); st.Live != 1 {
		t.Fatalf("live = %d, want 1", st.Live)
	}
	b.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live after final release = %d, want 0", st.Live)
	}
}

func TestReleaseDeadBlockPanics(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("double Release did not panic")
		}
	}()
	b.Release()
}

func TestRetainDeadBlockPanics(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("Retain after last Release did not panic")
		}
	}()
	p2 := p.Get() // reuses the buffer; b's refcount was reset by Get
	_ = p2
	// A fresh handle to the dead state: simulate via a block that was
	// fully released and never re-issued.
	dead := &Block{buf: make(iq.Samples, 4), pool: p}
	dead.Retain()
}

func TestSetLenBounds(t *testing.T) {
	p := NewPool(4)
	b := p.Get()
	defer b.Release()
	defer func() {
		if recover() == nil {
			t.Error("SetLen beyond capacity did not panic")
		}
	}()
	b.SetLen(5)
}

func TestDefaultChunkCapacity(t *testing.T) {
	p := NewPool(0)
	if p.ChunkSamples() != iq.ChunkSamples {
		t.Fatalf("default chunk = %d, want %d", p.ChunkSamples(), iq.ChunkSamples)
	}
}

// TestConcurrentRetainRelease hammers the refcount protocol from many
// goroutines — the scheduler's fan-out retains and per-delivery releases
// under RunParallel. Run with -race (CI does).
func TestConcurrentRetainRelease(t *testing.T) {
	p := NewPool(16)
	const (
		rounds  = 200
		holders = 8
	)
	for r := 0; r < rounds; r++ {
		b := p.Get()
		for i := range b.Buf() {
			b.Buf()[i] = complex(float32(r), float32(i))
		}
		var wg sync.WaitGroup
		for h := 0; h < holders; h++ {
			b.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Read while holding a reference, then drop it.
				s := b.Samples()
				if real(s[0]) != float32(r) {
					t.Errorf("round %d: sample overwritten while retained", r)
				}
				b.Release()
			}()
		}
		b.Release() // producer's reference
		wg.Wait()
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live after hammer = %d, want 0", st.Live)
	}
}

// TestConcurrentPoolSharing drives several producer/consumer pairs
// through one shared pool, the multi-session Engine shape.
func TestConcurrentPoolSharing(t *testing.T) {
	p := NewPool(32)
	const sessions = 6
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ch := make(chan *Block, 4)
			go func() {
				for i := 0; i < 300; i++ {
					b := p.Get()
					b.SetLen(seed%31 + 1)
					for j := range b.Samples() {
						b.Samples()[j] = complex(float32(seed), float32(i))
					}
					ch <- b
				}
				close(ch)
			}()
			for b := range ch {
				if int(real(b.Samples()[0])) != seed {
					t.Errorf("session %d: cross-session sample bleed", seed)
				}
				b.Release()
			}
		}(s)
	}
	wg.Wait()
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live after sessions = %d, want 0", st.Live)
	}
}

func BenchmarkPoolGetRelease(b *testing.B) {
	p := NewPool(iq.ChunkSamples)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := p.Get()
		blk.SetLen(iq.ChunkSamples)
		blk.Release()
	}
}
