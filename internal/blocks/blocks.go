// Package blocks provides the pooled, reference-counted sample blocks
// the streaming pipeline is built on. The architecture's premise is that
// the cheap detection stage must keep up with the full 8 Msps stream
// (Section 2.1); at that rate a per-chunk allocation is a per-chunk GC
// obligation, and garbage collection — not DSP — becomes the throughput
// bound. A Block is a fixed-capacity buffer (one forwarding unit, the
// paper's chunk granularity by default) that is recycled through a
// sync.Pool once every holder has released it.
//
// Ownership rules (enforced by panics on misuse):
//
//   - Pool.Get returns a block with one reference, owned by the caller.
//   - Retain adds a reference for every additional holder (a window that
//     keeps the block for later probes, a queue that carries it).
//   - Release drops one reference; the last Release returns the buffer
//     to the pool. Using a block after its last Release — or releasing
//     it twice — is a bug, and the refcount guard turns it into an
//     immediate panic instead of silent sample corruption.
//
// The counters are atomic so blocks can be retained and released from
// the parallel scheduler's goroutines.
package blocks

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rfdump/internal/iq"
)

// Block is one pooled span of complex baseband samples. The zero value
// is not usable; obtain blocks from a Pool.
type Block struct {
	buf  iq.Samples // full-capacity backing store
	n    int        // filled length
	refs atomic.Int32
	pool *Pool
}

// Buf returns the full-capacity buffer for filling (length == capacity).
// Call SetLen with the number of samples actually written.
func (b *Block) Buf() iq.Samples { return b.buf }

// SetLen records how many samples of the buffer are valid.
func (b *Block) SetLen(n int) {
	if n < 0 || n > len(b.buf) {
		panic(fmt.Sprintf("blocks: SetLen(%d) outside [0, %d]", n, len(b.buf)))
	}
	b.n = n
}

// Len returns the number of valid samples.
func (b *Block) Len() int { return b.n }

// Cap returns the block capacity in samples.
func (b *Block) Cap() int { return len(b.buf) }

// Samples returns the filled prefix of the buffer. The slice is valid
// only while the caller holds a reference.
func (b *Block) Samples() iq.Samples { return b.buf[:b.n] }

// Refs returns the current reference count (diagnostics and tests).
func (b *Block) Refs() int32 { return b.refs.Load() }

// Retain adds a reference and returns the block for chaining. Retaining
// a dead block (refcount already zero) panics: the buffer may already be
// carrying another stream's samples.
func (b *Block) Retain() *Block {
	if b.refs.Add(1) <= 1 {
		panic("blocks: Retain on a released block")
	}
	return b
}

// Release drops one reference. The last release recycles the buffer into
// the pool; releasing more times than the block was retained panics.
func (b *Block) Release() {
	switch n := b.refs.Add(-1); {
	case n == 0:
		b.pool.put(b)
	case n < 0:
		panic("blocks: Release of a dead block")
	}
}

// Pool recycles fixed-capacity blocks. It is safe for concurrent use by
// any number of sessions; a single pool is typically shared by every
// session of an Engine so idle sessions donate capacity to busy ones.
type Pool struct {
	chunk int
	pool  sync.Pool

	// Accounting (atomic; read by tests, the bench harness and the
	// daemon's metrics scrape).
	gets  atomic.Int64
	news  atomic.Int64
	puts  atomic.Int64
	live  atomic.Int64 // blocks currently held by callers
}

// NewPool returns a pool of blocks holding chunkSamples samples each
// (the paper's 25 us forwarding unit by default when <= 0).
func NewPool(chunkSamples int) *Pool {
	if chunkSamples <= 0 {
		chunkSamples = iq.ChunkSamples
	}
	p := &Pool{chunk: chunkSamples}
	p.pool.New = func() any {
		p.news.Add(1)
		return &Block{buf: make(iq.Samples, chunkSamples), pool: p}
	}
	return p
}

// ChunkSamples returns the per-block capacity.
func (p *Pool) ChunkSamples() int { return p.chunk }

// Get returns a block with one reference and length reset to full
// capacity, ready for filling.
func (p *Pool) Get() *Block {
	b := p.pool.Get().(*Block)
	b.n = len(b.buf)
	b.refs.Store(1)
	p.gets.Add(1)
	p.live.Add(1)
	return b
}

func (p *Pool) put(b *Block) {
	p.live.Add(-1)
	p.puts.Add(1)
	b.n = 0
	p.pool.Put(b)
}

// Stats is a point-in-time snapshot of pool accounting.
type Stats struct {
	// Gets counts Pool.Get calls.
	Gets int64
	// News counts backing allocations (Gets that missed the pool).
	News int64
	// Puts counts blocks recycled into the pool (final Releases); the
	// Gets−News−Puts gap over time is pool churn the GC absorbed.
	Puts int64
	// Live counts blocks currently checked out (non-zero refcount).
	Live int64
}

// Stats returns the pool's accounting snapshot.
func (p *Pool) Stats() Stats {
	return Stats{Gets: p.gets.Load(), News: p.news.Load(), Puts: p.puts.Load(), Live: p.live.Load()}
}
