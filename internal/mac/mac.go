// Package mac contains the link-layer schedulers that turn traffic
// descriptions ("250 unicast pings", "l2ping over a piconet") into timed
// physical transmissions. Each Source emits Scheduled bursts on a shared
// timeline; the ether emulator mixes them. Sources implement their own
// protocol's medium timing (SIFS/DIFS/backoff for 802.11 DCF, 625 us TDD
// slots and frequency hopping for Bluetooth, AC-cycle gating for
// microwave ovens) so the fast detectors have the real patterns to find.
package mac

import (
	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
)

// Scheduled is one burst placed on the ether timeline.
type Scheduled struct {
	// Start is the first sample of the burst.
	Start iq.Tick
	// Burst is the modulated waveform and its ground-truth labels.
	Burst *phy.Burst
	// Chan carries per-burst channel impairments (SNR, CFO, phase).
	Chan phy.Channel
	// Visible is false for transmissions outside the monitored band
	// (e.g. Bluetooth hops beyond the captured 8 MHz); the emulator
	// skips mixing them but ground truth still records their existence.
	Visible bool
	// Dur carries the airtime for bursts whose waveform was never
	// synthesized (invisible transmissions need only ground truth).
	Dur iq.Tick
}

// End returns the first sample after the burst.
func (s Scheduled) End() iq.Tick {
	if len(s.Burst.Samples) == 0 && s.Dur > 0 {
		return s.Start + s.Dur
	}
	return s.Start + s.Burst.Duration()
}

// Context carries everything a Source needs to build its schedule.
type Context struct {
	// Clock is the sample clock of the monitored stream.
	Clock iq.Clock
	// Duration bounds the timeline; bursts must end before it.
	Duration iq.Tick
	// Rng drives every random choice so schedules are reproducible.
	Rng *dsp.Rand
	// SNRdB is the default per-burst SNR; sources may override per
	// station.
	SNRdB float64
}

// Source produces a transmission schedule.
type Source interface {
	// Name identifies the source in diagnostics.
	Name() string
	// Schedule returns the source's transmissions within [0, ctx.Duration).
	Schedule(ctx *Context) ([]Scheduled, error)
}
