package mac

import (
	"fmt"
	"math"
	"time"

	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// WiFiUnicast models the 802.11 unicast microbenchmark of Section 5.1.2:
// ping exchanges where every data frame is followed after SIFS by a
// MAC-level ACK, and consecutive exchanges are separated by
// DIFS + k*SlotTime backoff plus the configured inter-ping spacing.
type WiFiUnicast struct {
	// Rate is the 802.11b PSDU rate.
	Rate protocols.ID
	// Pings is the number of echo requests; each produces a request, its
	// ACK, a reply, and the reply's ACK (4 frames per ping, so the
	// paper's 250 pings give 1000 packets).
	Pings int
	// PayloadBytes is the ICMP payload size (500 in the paper; the MPDU
	// adds the 24-byte MAC header, 8-byte ICMP-ish header and 4-byte FCS).
	PayloadBytes int
	// InterPing is the idle gap between exchanges in samples (beyond
	// DIFS + backoff); controls medium utilization in Figure 9.
	InterPing iq.Tick
	// CW bounds the random backoff (k in [0, CW]).
	CW int
	// AckRate selects the MAC ACK rate (default 1 Mbps, the basic rate).
	AckRate protocols.ID
	// SNROffsetDB shifts this source's bursts from the context default.
	SNROffsetDB float64
	// CFOHz is the station's carrier frequency offset.
	CFOHz float64
	// Requester, Responder, BSSID identify the stations.
	Requester, Responder, BSSID wifi.Addr
}

// Name implements Source.
func (w *WiFiUnicast) Name() string { return fmt.Sprintf("wifi-unicast-%v", w.Rate) }

// Schedule implements Source.
func (w *WiFiUnicast) Schedule(ctx *Context) ([]Scheduled, error) {
	rate := w.Rate
	if rate == protocols.Unknown {
		rate = protocols.WiFi80211b1M
	}
	cw := w.CW
	if cw <= 0 {
		cw = 31
	}
	mod, err := wifi.NewModulator(rate)
	if err != nil {
		return nil, err
	}
	ackRate := w.AckRate
	if ackRate == protocols.Unknown {
		ackRate = protocols.WiFi80211b1M
	}
	ackMod, err := wifi.NewModulator(ackRate)
	if err != nil {
		return nil, err
	}
	sifs := ctx.Clock.Ticks(protocols.WiFiSIFS)
	difs := ctx.Clock.Ticks(protocols.WiFiDIFS)
	slot := ctx.Clock.Ticks(protocols.WiFiSlotTime)

	var out []Scheduled
	t := difs
	payload := make([]byte, 8+w.PayloadBytes) // 8-byte echo header + data

	push := func(m *wifi.Modulator, frame []byte, kind string) error {
		burst, err := m.Modulate(frame)
		if err != nil {
			return err
		}
		burst.Kind = kind
		if t+burst.Duration() > ctx.Duration {
			t = ctx.Duration // stop scheduling
			return nil
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, w.SNROffsetDB, w.CFOHz, ctx.Rng.Float64()),
			Visible: true,
		})
		t += burst.Duration()
		return nil
	}

	for i := 0; i < w.Pings && t < ctx.Duration; i++ {
		ctx.Rng.Bytes(payload)
		seq := uint16(i*2) & 0xFFF

		// Echo request.
		req := wifi.BuildDataFrame(w.Responder, w.Requester, w.BSSID, seq, payload)
		if err := push(mod, req, "data"); err != nil {
			return nil, err
		}
		if t >= ctx.Duration {
			break
		}
		// SIFS then MAC ACK from responder.
		t += sifs
		if err := push(ackMod, wifi.BuildAck(w.Requester), "ack"); err != nil {
			return nil, err
		}
		if t >= ctx.Duration {
			break
		}
		// Responder contends, then sends the echo reply.
		t += difs + iq.Tick(ctx.Rng.Intn(cw+1))*slot
		rep := wifi.BuildDataFrame(w.Requester, w.Responder, w.BSSID, seq+1, payload)
		if err := push(mod, rep, "data"); err != nil {
			return nil, err
		}
		if t >= ctx.Duration {
			break
		}
		t += sifs
		if err := push(ackMod, wifi.BuildAck(w.Responder), "ack"); err != nil {
			return nil, err
		}
		// Idle gap plus next contention round.
		t += w.InterPing + difs + iq.Tick(ctx.Rng.Intn(cw+1))*slot
	}
	return out, nil
}

// WiFiBroadcast models the broadcast microbenchmark of Section 5.1.3: a
// single node floods broadcast frames, so consecutive packets are spaced
// by exactly DIFS + k*SlotTime.
type WiFiBroadcast struct {
	Rate          protocols.ID
	Count         int
	PayloadBytes  int
	CW            int
	ExtraGap      iq.Tick
	SNROffsetDB   float64
	CFOHz         float64
	Sender, BSSID wifi.Addr
}

// Name implements Source.
func (w *WiFiBroadcast) Name() string { return fmt.Sprintf("wifi-broadcast-%v", w.Rate) }

// Schedule implements Source.
func (w *WiFiBroadcast) Schedule(ctx *Context) ([]Scheduled, error) {
	rate := w.Rate
	if rate == protocols.Unknown {
		rate = protocols.WiFi80211b1M
	}
	cw := w.CW
	if cw <= 0 {
		cw = 31
	}
	mod, err := wifi.NewModulator(rate)
	if err != nil {
		return nil, err
	}
	difs := ctx.Clock.Ticks(protocols.WiFiDIFS)
	slot := ctx.Clock.Ticks(protocols.WiFiSlotTime)

	var out []Scheduled
	t := difs
	payload := make([]byte, 8+w.PayloadBytes)
	for i := 0; i < w.Count; i++ {
		ctx.Rng.Bytes(payload)
		frame := wifi.BuildDataFrame(wifi.Broadcast, w.Sender, w.BSSID, uint16(i)&0xFFF, payload)
		burst, err := mod.Modulate(frame)
		if err != nil {
			return nil, err
		}
		burst.Kind = "broadcast"
		if t+burst.Duration() > ctx.Duration {
			break
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, w.SNROffsetDB, w.CFOHz, ctx.Rng.Float64()),
			Visible: true,
		})
		t += burst.Duration() + difs + iq.Tick(ctx.Rng.Intn(cw+1))*slot + w.ExtraGap
	}
	return out, nil
}

// WiFiBeacons emits AP beacons every interval (102.4 ms default), used by
// the real-world profile (Table 4 mentions beacons among broadcast
// 1 Mbps traffic).
type WiFiBeacons struct {
	Interval    iq.Tick
	SSID        string
	BSSID       wifi.Addr
	SNROffsetDB float64
	CFOHz       float64
}

// Name implements Source.
func (w *WiFiBeacons) Name() string { return "wifi-beacons" }

// Schedule implements Source.
func (w *WiFiBeacons) Schedule(ctx *Context) ([]Scheduled, error) {
	interval := w.Interval
	if interval <= 0 {
		interval = ctx.Clock.Ticks(102400 * time.Microsecond)
	}
	mod, err := wifi.NewModulator(protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	var out []Scheduled
	seq := uint16(0)
	for t := ctx.Clock.Ticks(time.Millisecond); t < ctx.Duration; t += interval {
		frame := wifi.BuildBeacon(w.BSSID, seq, w.SSID)
		seq++
		burst, err := mod.Modulate(frame)
		if err != nil {
			return nil, err
		}
		burst.Kind = "beacon"
		if t+burst.Duration() > ctx.Duration {
			break
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, w.SNROffsetDB, w.CFOHz, ctx.Rng.Float64()),
			Visible: true,
		})
	}
	return out, nil
}

func chanFor(ctx *Context, snrOffset, cfoHz, phase01 float64) phy.Channel {
	return phy.Channel{
		SNRdB:    ctx.SNRdB + snrOffset,
		CFOHz:    cfoHz,
		PhaseRad: 2 * math.Pi * phase01,
	}
}
