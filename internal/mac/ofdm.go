package mac

import (
	"rfdump/internal/iq"
	"rfdump/internal/phy/ofdm"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// WiFiGUnicast models an 802.11g ERP-OFDM station doing unicast
// exchanges: OFDM data frames answered after SIFS by OFDM ACKs,
// exchanges separated by DIFS (with the 802.11g 9 us short slot) plus
// backoff. It drives the OFDM detector extension.
type WiFiGUnicast struct {
	// Pings is the number of echo exchanges (4 frames each).
	Pings int
	// PayloadBytes per data frame.
	PayloadBytes int
	// InterPing idle gap between exchanges in samples.
	InterPing iq.Tick
	// CW bounds backoff.
	CW int
	// Protection sends a CTS-to-self at 1 Mbps DSSS before each data
	// frame (ERP protection; Table 2 footnote b).
	Protection bool
	// SNROffsetDB shifts from the context default.
	SNROffsetDB float64
	// CFOHz is the station carrier offset.
	CFOHz float64
	// Requester, Responder, BSSID identify the stations.
	Requester, Responder, BSSID wifi.Addr
}

// Name implements Source.
func (w *WiFiGUnicast) Name() string { return "wifi-g-unicast" }

// Schedule implements Source.
func (w *WiFiGUnicast) Schedule(ctx *Context) ([]Scheduled, error) {
	cw := w.CW
	if cw <= 0 {
		cw = 15 // 802.11g aCWmin
	}
	mod := ofdm.NewModulator()
	var ctsMod *wifi.Modulator
	if w.Protection {
		m, err := wifi.NewModulator(protocols.WiFi80211b1M)
		if err != nil {
			return nil, err
		}
		ctsMod = m
	}
	sifs := ctx.Clock.Ticks(protocols.WiFiSIFS)
	slot := ctx.Clock.Ticks(protocols.WiFiSlotTimeG)
	difs := sifs + 2*slot

	var out []Scheduled
	t := difs
	payload := make([]byte, 8+w.PayloadBytes)

	push := func(frame []byte, kind string) bool {
		burst := mod.Modulate(frame)
		burst.Kind = kind
		if t+burst.Duration() > ctx.Duration {
			t = ctx.Duration
			return false
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, w.SNROffsetDB, w.CFOHz, ctx.Rng.Float64()),
			Visible: true,
		})
		t += burst.Duration()
		return true
	}

	pushCTS := func(ra wifi.Addr) bool {
		if ctsMod == nil {
			return true
		}
		// The NAV covers the OFDM data + SIFS + ACK that follow.
		dur := uint16(ofdm.AirtimeUS(len(payload)+28) + 10 + ofdm.AirtimeUS(14))
		burst, err := ctsMod.Modulate(wifi.BuildCTS(ra, dur))
		if err != nil {
			return false
		}
		burst.Kind = "cts-to-self"
		if t+burst.Duration() > ctx.Duration {
			t = ctx.Duration
			return false
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, w.SNROffsetDB, w.CFOHz, ctx.Rng.Float64()),
			Visible: true,
		})
		t += burst.Duration() + sifs
		return true
	}

	for i := 0; i < w.Pings && t < ctx.Duration; i++ {
		ctx.Rng.Bytes(payload)
		seq := uint16(i*2) & 0xFFF
		if !pushCTS(w.Requester) {
			break
		}
		req := wifi.BuildDataFrame(w.Responder, w.Requester, w.BSSID, seq, payload)
		if !push(req, "ofdm-data") {
			break
		}
		t += sifs
		if !push(wifi.BuildAck(w.Requester), "ofdm-ack") {
			break
		}
		t += difs + iq.Tick(ctx.Rng.Intn(cw+1))*slot
		rep := wifi.BuildDataFrame(w.Requester, w.Responder, w.BSSID, seq+1, payload)
		if !push(rep, "ofdm-data") {
			break
		}
		t += sifs
		if !push(wifi.BuildAck(w.Responder), "ofdm-ack") {
			break
		}
		t += w.InterPing + difs + iq.Tick(ctx.Rng.Intn(cw+1))*slot
	}
	return out, nil
}
