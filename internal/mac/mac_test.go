package mac

import (
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

func ctx(durationSec float64, snr float64) *Context {
	clock := iq.NewClock(0)
	return &Context{
		Clock:    clock,
		Duration: iq.Tick(durationSec * float64(clock.Rate)),
		Rng:      dsp.NewRand(1),
		SNRdB:    snr,
	}
}

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func TestWiFiUnicastSchedule(t *testing.T) {
	c := ctx(1.0, 20)
	src := &WiFiUnicast{
		Rate: protocols.WiFi80211b1M, Pings: 5, PayloadBytes: 100,
		InterPing: 10_000,
		Requester: addr(1), Responder: addr(2), BSSID: addr(3),
	}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 20 { // 4 frames per ping
		t.Fatalf("scheduled %d frames, want 20", len(scheds))
	}
	sifs := c.Clock.Ticks(protocols.WiFiSIFS)
	difs := c.Clock.Ticks(protocols.WiFiDIFS)
	for i := 0; i+1 < len(scheds); i += 2 {
		data, ack := scheds[i], scheds[i+1]
		if data.Burst.Kind != "data" || ack.Burst.Kind != "ack" {
			t.Fatalf("frame %d kinds: %q %q", i, data.Burst.Kind, ack.Burst.Kind)
		}
		// Every data frame is followed by its ACK after exactly SIFS.
		if gap := ack.Start - data.End(); gap != sifs {
			t.Errorf("data->ack gap = %d, want %d", gap, sifs)
		}
	}
	// Between exchanges: at least DIFS (plus backoff and InterPing).
	for i := 1; i+1 < len(scheds); i += 2 {
		gap := scheds[i+1].Start - scheds[i].End()
		if gap < difs {
			t.Errorf("inter-exchange gap %d < DIFS", gap)
		}
	}
	// No self-overlaps.
	for i := 1; i < len(scheds); i++ {
		if scheds[i].Start < scheds[i-1].End() {
			t.Fatalf("overlap at %d", i)
		}
	}
}

func TestWiFiUnicastRespectsDuration(t *testing.T) {
	c := ctx(0.01, 20) // 10 ms: room for ~2 exchanges only
	src := &WiFiUnicast{
		Pings: 1000, PayloadBytes: 100,
		Requester: addr(1), Responder: addr(2), BSSID: addr(3),
	}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scheds {
		if s.End() > c.Duration {
			t.Fatalf("burst extends past duration: %d > %d", s.End(), c.Duration)
		}
	}
}

func TestWiFiBroadcastGaps(t *testing.T) {
	c := ctx(1.0, 20)
	src := &WiFiBroadcast{
		Rate: protocols.WiFi80211b1M, Count: 20, PayloadBytes: 100,
		Sender: addr(1), BSSID: addr(3),
	}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 20 {
		t.Fatalf("scheduled %d", len(scheds))
	}
	difs := c.Clock.Ticks(protocols.WiFiDIFS)
	slot := c.Clock.Ticks(protocols.WiFiSlotTime)
	for i := 1; i < len(scheds); i++ {
		gap := scheds[i].Start - scheds[i-1].End()
		// gap must be exactly DIFS + k*ST for integer k in [0, CW].
		rem := gap - difs
		if rem < 0 || rem%slot != 0 || rem/slot > 31 {
			t.Errorf("gap %d is not DIFS + k*ST", gap)
		}
	}
}

func TestWiFiBeacons(t *testing.T) {
	c := ctx(1.05, 20)
	src := &WiFiBeacons{SSID: "x", BSSID: addr(9)}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	// Default interval 102.4 ms: ~10 beacons in 1.05 s.
	if len(scheds) < 9 || len(scheds) > 11 {
		t.Fatalf("beacons = %d", len(scheds))
	}
	for _, s := range scheds {
		if s.Burst.Kind != "beacon" {
			t.Error("kind")
		}
	}
	// Evenly spaced.
	d01 := scheds[1].Start - scheds[0].Start
	d12 := scheds[2].Start - scheds[1].Start
	if d01 != d12 {
		t.Errorf("beacon spacing varies: %d vs %d", d01, d12)
	}
}

func TestBluetoothPiconetSlotAlignment(t *testing.T) {
	c := ctx(2.0, 20)
	src := &BluetoothPiconet{LAP: 0x9E8B33, UAP: 0x47, Pings: 50}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) == 0 {
		t.Fatal("nothing scheduled")
	}
	slot := c.Clock.Ticks(protocols.BTSlot)
	visible := 0
	for _, s := range scheds {
		if s.Start%slot != 0 {
			t.Fatalf("packet start %d not on slot grid", s.Start)
		}
		if s.Burst.Proto != protocols.Bluetooth {
			t.Error("proto")
		}
		if s.Visible {
			visible++
			// Visible packets must be within the monitored 8 channels.
			if s.Burst.Channel < 0 || s.Burst.Channel >= VisibleChannels {
				t.Errorf("visible packet on channel %d", s.Burst.Channel)
			}
		}
	}
	// Roughly 8/79 of packets are audible.
	frac := float64(visible) / float64(len(scheds))
	if frac < 0.02 || frac > 0.30 {
		t.Errorf("visible fraction %.3f, want ~0.10", frac)
	}
}

func TestBluetoothPayloadSizesEncodeSeq(t *testing.T) {
	c := ctx(2.0, 20)
	src := &BluetoothPiconet{LAP: 1, UAP: 2, Pings: 10}
	scheds, _ := src.Schedule(c)
	// Paper Section 5.1.1: sizes 225-339 encode sequence numbers.
	for i, s := range scheds {
		n := len(s.Burst.Frame)
		if n < 225 || n > 339 {
			t.Fatalf("payload %d bytes", n)
		}
		want := 225 + i%(339-225+1)
		if n != want {
			t.Fatalf("packet %d payload %d, want %d", i, n, want)
		}
	}
}

func TestBluetoothRejectsOversizedPayload(t *testing.T) {
	c := ctx(1, 20)
	src := &BluetoothPiconet{LAP: 1, UAP: 2, Pings: 1, MinPayload: 400, MaxPayload: 400}
	if _, err := src.Schedule(c); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestMicrowaveSourcePeriodicity(t *testing.T) {
	c := ctx(0.2, 20)
	src := &MicrowaveSource{}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) < 10 {
		t.Fatalf("bursts = %d", len(scheds))
	}
	period := c.Clock.Ticks(protocols.MicrowaveACPeriodUS)
	for i := 1; i < len(scheds); i++ {
		if dt := scheds[i].Start - scheds[i-1].Start; dt != period {
			t.Fatalf("burst spacing %d, want %d", dt, period)
		}
	}
}

func TestZigBeeSourceTurnaround(t *testing.T) {
	c := ctx(1.0, 20)
	src := &ZigBeeSource{Reports: 5, PayloadBytes: 40, Interval: 100_000}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 10 { // data + ack per report
		t.Fatalf("scheduled %d", len(scheds))
	}
	tack := c.Clock.Ticks(protocols.ZigBeeSIFS)
	for i := 0; i+1 < len(scheds); i += 2 {
		if scheds[i].Burst.Kind != "zb-data" || scheds[i+1].Burst.Kind != "zb-ack" {
			t.Fatal("kinds")
		}
		if gap := scheds[i+1].Start - scheds[i].End(); gap != tack {
			t.Errorf("data->ack gap %d, want %d", gap, tack)
		}
	}
}

func TestUnknownInterferer(t *testing.T) {
	c := ctx(0.5, 20)
	src := &UnknownInterferer{Bursts: 10}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) == 0 {
		t.Fatal("nothing scheduled")
	}
	for _, s := range scheds {
		if s.Burst.Proto != protocols.Unknown {
			t.Error("proto must be unknown")
		}
		if s.End() > c.Duration {
			t.Error("burst past duration")
		}
	}
}

func TestBluetoothMastersOnEvenSlots(t *testing.T) {
	c := ctx(2.0, 20)
	src := &BluetoothPiconet{LAP: 3, UAP: 4, Pings: 8, InterPingSlots: 5}
	scheds, _ := src.Schedule(c)
	slot := c.Clock.Ticks(protocols.BTSlot)
	for _, s := range scheds {
		slotIdx := s.Start / slot
		isMaster := s.Burst.Kind == "l2ping-req"
		if isMaster && slotIdx%2 != 0 {
			t.Fatalf("master packet on odd slot %d", slotIdx)
		}
		if !isMaster && slotIdx%2 != 1 {
			t.Fatalf("slave packet on even slot %d", slotIdx)
		}
	}
	_ = bluetooth.TypeDH5 // document the DH5 framing dependency
}
