package mac

import (
	"fmt"

	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/protocols"
)

// BluetoothPiconet models the l2ping microbenchmark of Section 5.1.4: a
// master/slave pair exchanging DH5 packets in 625 us TDD slots while
// frequency-hopping over the 79 BR channels. The monitor only captures 8
// of those channels, so most packets are scheduled but invisible — the
// paper's ground truth handles the same situation by identifying audible
// packets via their varying sizes (225-339 bytes).
type BluetoothPiconet struct {
	// LAP/UAP identify the piconet.
	LAP uint32
	UAP byte
	// Pings is the number of L2CAP echo exchanges (each is one master
	// packet and one slave reply).
	Pings int
	// MinPayload/MaxPayload bound the varying DH5 payload sizes (the
	// paper uses 225-339 so sizes encode sequence numbers).
	MinPayload, MaxPayload int
	// InterPing is the idle time between exchanges in slots.
	InterPingSlots int
	// MonitorBaseChannel is the first BT channel inside the monitored
	// 8 MHz band; channels [base, base+8) are visible.
	MonitorBaseChannel int
	// SNROffsetDB shifts this piconet's bursts from the context default.
	SNROffsetDB float64
	// CFOHz is the radio's carrier offset.
	CFOHz float64
}

// Name implements Source.
func (b *BluetoothPiconet) Name() string { return fmt.Sprintf("bt-piconet-%06x", b.LAP) }

// VisibleChannels is how many BT channels the 8 MHz front end hears.
const VisibleChannels = 8

// Schedule implements Source.
func (b *BluetoothPiconet) Schedule(ctx *Context) ([]Scheduled, error) {
	minP, maxP := b.MinPayload, b.MaxPayload
	if minP <= 0 {
		minP = 225
	}
	if maxP < minP {
		maxP = 339
	}
	if maxP > bluetooth.TypeDH5.MaxPayload() {
		return nil, fmt.Errorf("bluetooth: payload %d exceeds DH5 max", maxP)
	}
	mod := bluetooth.NewModulator()
	hop := bluetooth.NewHopSequence(b.LAP)
	dev := bluetooth.Device{LAP: b.LAP, UAP: b.UAP}
	slotLen := ctx.Clock.Ticks(protocols.BTSlot)

	var out []Scheduled
	clk := uint32(0) // master clock in slots
	payload := make([]byte, maxP)
	sizeSpan := maxP - minP + 1

	emit := func(master bool, seq int) {
		ch := hop.ChannelAt(clk)
		visible := ch >= b.MonitorBaseChannel && ch < b.MonitorBaseChannel+VisibleChannels
		// Offset of the hop channel within the monitored band: channels
		// [base, base+8) span the 8 MHz with centers at
		// (ch-base-3.5) MHz from band center.
		offsetHz := (float64(ch-b.MonitorBaseChannel) - 3.5) * float64(protocols.BTChannelWidthHz)
		n := minP + seq%sizeSpan // size encodes the sequence number
		ctx.Rng.Bytes(payload[:n])
		h := bluetooth.Header{
			LTAddr: 1,
			Type:   bluetooth.TypeDH5,
			SEQN:   byte(seq & 1),
		}
		kind := "l2ping-rsp"
		if master {
			kind = "l2ping-req"
		}
		start := iq.Tick(clk) * slotLen
		dur := bluetooth.PacketDuration(n)
		if start+dur > ctx.Duration {
			return
		}
		var burst *phy.Burst
		if visible {
			// Only audible packets need a waveform; invisible hops exist
			// purely as ground truth.
			burst = mod.ModulatePacket(dev, h, payload[:n], clk, offsetHz, ch)
		} else {
			burst = &phy.Burst{
				Proto:   protocols.Bluetooth,
				Channel: ch,
				Frame:   append([]byte(nil), payload[:n]...),
			}
		}
		burst.Kind = kind
		out = append(out, Scheduled{
			Start:   start,
			Burst:   burst,
			Chan:    chanFor(ctx, b.SNROffsetDB, b.CFOHz, ctx.Rng.Float64()),
			Visible: visible,
			Dur:     dur,
		})
	}

	slots := uint32(bluetooth.TypeDH5.Slots()) // 5 slots per DH5
	for i := 0; i < b.Pings; i++ {
		if iq.Tick(clk)*slotLen >= ctx.Duration {
			break
		}
		emit(true, 2*i) // master request on an even slot
		// A DH5 from an even slot occupies slots clk..clk+4; the first
		// slave-to-master opportunity is the odd slot clk+5.
		clk += slots
		emit(false, 2*i+1)
		// The slave's DH5 occupies clk..clk+4 (ending on an odd slot
		// boundary region); the next master slot is clk+5, which is even
		// again.
		clk += slots
		clk += uint32(b.InterPingSlots)
		if clk%2 == 1 {
			clk++ // master transmissions start on even slots
		}
	}
	return out, nil
}
