package mac

import (
	"testing"

	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

func TestWiFiGUnicastSchedule(t *testing.T) {
	c := ctx(0.5, 20)
	src := &WiFiGUnicast{
		Pings: 3, PayloadBytes: 200, InterPing: 20_000,
		Requester: addr(1), Responder: addr(2), BSSID: addr(3),
	}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) != 12 { // 4 OFDM frames per ping
		t.Fatalf("scheduled %d", len(scheds))
	}
	sifs := c.Clock.Ticks(protocols.WiFiSIFS)
	for i := 0; i+1 < len(scheds); i += 2 {
		if gap := scheds[i+1].Start - scheds[i].End(); gap != sifs {
			t.Errorf("data->ack gap %d, want SIFS %d", gap, sifs)
		}
	}
	for _, s := range scheds {
		if s.Burst.Proto != protocols.WiFi80211g {
			t.Errorf("proto %v", s.Burst.Proto)
		}
	}
}

func TestWiFiGUnicastProtection(t *testing.T) {
	c := ctx(0.5, 20)
	src := &WiFiGUnicast{
		Pings: 2, PayloadBytes: 200, InterPing: 20_000, Protection: true,
		Requester: addr(1), Responder: addr(2), BSSID: addr(3),
	}
	scheds, err := src.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	// 2 pings x (CTS + data + ack + data + ack) = 10 bursts (CTS only
	// before the requester's data frame).
	cts := 0
	for _, s := range scheds {
		if s.Burst.Kind != "cts-to-self" {
			continue
		}
		cts++
		// CTS-to-self goes out at an 802.11b rate (Table 2 footnote).
		if s.Burst.Proto != protocols.WiFi80211b1M {
			t.Errorf("CTS proto %v", s.Burst.Proto)
		}
		m, err := wifi.ParseMPDU(s.Burst.Frame)
		if err != nil || !m.IsCTS() {
			t.Errorf("CTS frame parse: %v %v", m, err)
		}
		if m.Duration == 0 {
			t.Error("CTS NAV duration zero")
		}
	}
	if cts != 2 {
		t.Errorf("CTS count %d, want 2", cts)
	}
}

func TestBuildCTSParse(t *testing.T) {
	ra := wifi.Addr{1, 2, 3, 4, 5, 6}
	frame := wifi.BuildCTS(ra, 350)
	m, err := wifi.ParseMPDU(frame)
	if err != nil || !m.FCSValid || !m.IsCTS() {
		t.Fatalf("CTS parse: %+v %v", m, err)
	}
	if m.Duration != 350 || m.Addr1 != ra {
		t.Errorf("CTS fields: %+v", m)
	}
	if m.IsAck() {
		t.Error("CTS misidentified as ACK")
	}
}
