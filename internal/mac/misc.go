package mac

import (
	"fmt"

	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/microwave"
	"rfdump/internal/phy/zigbee"
	"rfdump/internal/protocols"
)

// MicrowaveSource schedules oven emission bursts at the AC line period.
type MicrowaveSource struct {
	// Oven overrides the default oven model when non-zero.
	Oven *microwave.Oven
	// SNROffsetDB shifts the oven's bursts from the context default
	// (ovens are usually loud; +10 dB is a sensible default offset).
	SNROffsetDB float64
	// StartDelay offsets the first burst.
	StartDelay iq.Tick
}

// Name implements Source.
func (m *MicrowaveSource) Name() string { return "microwave" }

// Schedule implements Source.
func (m *MicrowaveSource) Schedule(ctx *Context) ([]Scheduled, error) {
	oven := microwave.DefaultOven(ctx.Clock)
	if m.Oven != nil {
		oven = *m.Oven
	}
	var out []Scheduled
	for t := m.StartDelay; t < ctx.Duration; t += oven.ACPeriod {
		burst := oven.Burst(ctx.Rng)
		if t+burst.Duration() > ctx.Duration {
			break
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, m.SNROffsetDB, 0, ctx.Rng.Float64()),
			Visible: true,
		})
	}
	return out, nil
}

// ZigBeeSource models a periodic 802.15.4 sensor reporting to a
// coordinator, with the MAC-level ACK following after tACK (aTurnaround),
// used by the extensibility example.
type ZigBeeSource struct {
	// Reports is the number of data frames.
	Reports int
	// PayloadBytes per report.
	PayloadBytes int
	// Interval between reports in samples.
	Interval iq.Tick
	// OffsetHz within the monitored band.
	OffsetHz float64
	// SNROffsetDB shifts from the context default.
	SNROffsetDB float64
}

// Name implements Source.
func (z *ZigBeeSource) Name() string { return "zigbee" }

// Schedule implements Source.
func (z *ZigBeeSource) Schedule(ctx *Context) ([]Scheduled, error) {
	payloadBytes := z.PayloadBytes
	if payloadBytes <= 0 {
		payloadBytes = 32
	}
	if payloadBytes > 100 {
		return nil, fmt.Errorf("zigbee: payload %d too large", payloadBytes)
	}
	interval := z.Interval
	if interval <= 0 {
		interval = ctx.Clock.Ticks(protocols.ZigBeeLIFS) * 20
	}
	mod := zigbee.NewModulator()
	tack := ctx.Clock.Ticks(protocols.ZigBeeSIFS)
	var out []Scheduled

	payload := make([]byte, payloadBytes)
	t := iq.Tick(0)
	for i := 0; i < z.Reports && t < ctx.Duration; i++ {
		ctx.Rng.Bytes(payload)
		ppdu, err := zigbee.BuildPPDU(payload)
		if err != nil {
			return nil, err
		}
		burst := mod.Modulate(ppdu, z.OffsetHz)
		burst.Kind = "zb-data"
		if t+burst.Duration() > ctx.Duration {
			break
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   burst,
			Chan:    chanFor(ctx, z.SNROffsetDB, 0, ctx.Rng.Float64()),
			Visible: true,
		})
		t += burst.Duration() + tack

		// Coordinator ACK: a 3-byte imm-ack PSDU.
		ackPPDU, err := zigbee.BuildPPDU([]byte{0x02, 0x00, byte(i)})
		if err != nil {
			return nil, err
		}
		ack := mod.Modulate(ackPPDU, z.OffsetHz)
		ack.Kind = "zb-ack"
		if t+ack.Duration() > ctx.Duration {
			break
		}
		out = append(out, Scheduled{
			Start:   t,
			Burst:   ack,
			Chan:    chanFor(ctx, z.SNROffsetDB, 0, ctx.Rng.Float64()),
			Visible: true,
		})
		t += ack.Duration() + interval
	}
	return out, nil
}

// UnknownInterferer injects bursts of band-limited noise with no protocol
// structure — the "unknown signal sources" of the real-world evaluation
// (Section 5.3) and the failure-injection tests.
type UnknownInterferer struct {
	// Bursts is the number of noise bursts.
	Bursts int
	// MinLen/MaxLen bound burst length in samples.
	MinLen, MaxLen iq.Tick
	// SNROffsetDB shifts from the context default.
	SNROffsetDB float64
}

// Name implements Source.
func (u *UnknownInterferer) Name() string { return "unknown" }

// Schedule implements Source.
func (u *UnknownInterferer) Schedule(ctx *Context) ([]Scheduled, error) {
	minLen := u.MinLen
	if minLen <= 0 {
		minLen = 400
	}
	maxLen := u.MaxLen
	if maxLen < minLen {
		maxLen = minLen * 8
	}
	var out []Scheduled
	for i := 0; i < u.Bursts; i++ {
		n := int(minLen) + ctx.Rng.Intn(int(maxLen-minLen)+1)
		start := iq.Tick(ctx.Rng.Intn(int(ctx.Duration)))
		if start+iq.Tick(n) > ctx.Duration {
			continue
		}
		samples := make(iq.Samples, n)
		for j := range samples {
			samples[j] = complex(float32(ctx.Rng.Norm()), float32(ctx.Rng.Norm()))
		}
		burst := &phy.Burst{
			Proto:   protocols.Unknown,
			Samples: samples,
			Channel: -1,
			Kind:    "unknown",
		}
		burst.NormalizePower()
		out = append(out, Scheduled{
			Start:   start,
			Burst:   burst,
			Chan:    chanFor(ctx, u.SNROffsetDB, 0, ctx.Rng.Float64()),
			Visible: true,
		})
	}
	return out, nil
}
