package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/server"
	"rfdump/internal/serving"
)

// AggregatorConfig configures the fleet aggregator.
type AggregatorConfig struct {
	// Match tunes cross-sensor fusion (zero value = defaults).
	Match MatchConfig
	// Store persists the fused ledger WAL (nil = in-memory; a
	// disk-backed store survives SIGKILL with bounds, seqs and dedup
	// state intact). The aggregator owns it and closes it in Close.
	Store history.Store
	// SSEQueue / EvictAfter / Shards configure the fan-out broker
	// (defaults 64 / 256 / per-core).
	SSEQueue   int
	EvictAfter int
	Shards     int
	// StallAfter marks a node unhealthy once its subscription has been
	// down this long (default 5s). /healthz degrades while any node is
	// past it and recovers when the manager reconnects.
	StallAfter time.Duration
	// StreamsTimeout bounds the per-node /api/streams fan-out poll
	// (default 2s): one stalled node delays the merged view at most
	// this long and lands in the response's per-node error map instead
	// of hanging every caller.
	StreamsTimeout time.Duration
	// QueryRPS / QueryBurst rate-limit the DVR query endpoints per
	// client host, as on rfdumpd (defaults 20 rps, burst 40; negative
	// RPS disables).
	QueryRPS   float64
	QueryBurst int
	// Client, backoff and seed pass through to the Manager.
	Client     *http.Client
	MinBackoff time.Duration
	MaxBackoff time.Duration
	Seed       uint64
	// Clock passes through to the Manager (default SystemClock).
	Clock Clock
	// Registry receives all cluster/* and server/sse/* metrics; nil
	// disables metrics (the /api/metricz endpoint then serves an empty
	// snapshot).
	Registry *metrics.Registry
}

// Aggregator is the rfdumpc core: a Manager subscribed to every known
// node, a durable FusedLedger deduplicating their overlapping
// detections, and the same serving surface rfdumpd exports — streams,
// detections, live SSE with store catch-up, DVR queries, health — so a
// fleet looks to clients like one big monitor. Because the surface is
// identical (it is the same serving.Core code), an aggregator can
// subscribe to other aggregators: broker trees of any depth need no
// new wire concepts, and fusion stays idempotent level over level.
//
// Node-local stream ids collide across a fleet, so the ledger assigns
// each (node, stream) pair a fleet-unique fused stream id on first
// sight and rewrites all exported records with it.
type Aggregator struct {
	cfg     AggregatorConfig
	manager *Manager
	ledger  *FusedLedger
	broker  *serving.Broker
	quota   *serving.Quota
	reg     *metrics.Registry
}

// NewAggregator builds an aggregator (recovering the fused ledger from
// cfg.Store when it holds one); Add or Discovered feed it nodes.
func NewAggregator(cfg AggregatorConfig) (*Aggregator, error) {
	if cfg.SSEQueue <= 0 {
		cfg.SSEQueue = 64
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 256
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 5 * time.Second
	}
	if cfg.StreamsTimeout <= 0 {
		cfg.StreamsTimeout = 2 * time.Second
	}
	broker := serving.NewBrokerSharded(cfg.SSEQueue, cfg.EvictAfter, cfg.Shards, cfg.Registry)
	ledger, err := NewFusedLedger(LedgerConfig{
		Match:    cfg.Match,
		Store:    cfg.Store,
		Broker:   broker,
		Registry: cfg.Registry,
	})
	if err != nil {
		return nil, err
	}
	a := &Aggregator{
		cfg:    cfg,
		reg:    cfg.Registry,
		broker: broker,
		ledger: ledger,
		quota:  serving.NewQuota(cfg.QueryRPS, cfg.QueryBurst, cfg.Registry),
	}
	a.manager = NewManager(ManagerConfig{
		Client:     cfg.Client,
		MinBackoff: cfg.MinBackoff,
		MaxBackoff: cfg.MaxBackoff,
		Seed:       cfg.Seed,
		Clock:      cfg.Clock,
		OnEvent:    a.onEvent,
		OnState:    a.onState,
		Registry:   cfg.Registry,
	})
	return a, nil
}

// Add subscribes a node by id and API address (static fleet config).
// The address may belong to another aggregator — the surfaces are
// identical, which is what makes broker trees composable.
func (a *Aggregator) Add(node, api string) { a.manager.Add(node, api) }

// Remove drops a node from the fleet.
func (a *Aggregator) Remove(node string) { a.manager.Remove(node) }

// Discovered is the Discoverer OnNode callback: beacons add nodes,
// expiry removes them.
func (a *Aggregator) Discovered(rec NodeRecord, alive bool) {
	if alive {
		a.manager.Add(rec.Node, rec.API)
	} else {
		a.manager.Remove(rec.Node)
	}
}

// Fuser exposes the fused in-memory ledger (tests, rfbench).
func (a *Aggregator) Fuser() *Fuser { return a.ledger.Fuser() }

// Ledger exposes the durable fused ledger.
func (a *Aggregator) Ledger() *FusedLedger { return a.ledger }

// Manager exposes subscription state (tests, health).
func (a *Aggregator) Manager() *Manager { return a.manager }

// Close stops all subscriptions and releases the ledger store.
func (a *Aggregator) Close() {
	a.manager.Close()
	_ = a.ledger.Close()
}

// onEvent is the manager sink: detections (and a child aggregator's
// detection-updates) feed the ledger, which fuses, journals and
// republishes on this tier's live feed in one step.
func (a *Aggregator) onEvent(node string, ev serving.Event) {
	if (ev.Type != "detection" && ev.Type != "detection-update") || ev.Detection == nil {
		return
	}
	a.ledger.Ingest(node, ev.Stream, ev.Detection)
}

// onState republishes node connectivity edges on the live feed. The
// events carry no sequence number — connectivity is not part of the
// replayable ledger — and seq-less events always pass the SSE catch-up
// seam filter.
func (a *Aggregator) onState(node string, connected bool) {
	typ := "node-down"
	if connected {
		typ = "node-up"
	}
	a.broker.Publish(serving.Event{Type: typ, Error: node})
}

// Handler serves the aggregator API: the fleet-specific routes
//
//	GET /api/streams    — every node's streams, fleet ids, node-tagged,
//	                      polled in parallel under StreamsTimeout with
//	                      per-node errors reported, not hidden
//	GET /api/detections — fused detections (?limit=, ?evidence=1 for
//	                      full per-sensor evidence)
//	GET /api/nodes      — fleet membership + subscription status
//
// plus the shared serving core (identical to rfdumpd's, from the same
// handler code): /api/live with ?since= catch-up over the fused WAL,
// /api/history serving the WAL store's bounds, the quota'd DVR query
// routes, /api/metricz, /healthz (503 while any node subscription is
// down past StallAfter) and /readyz.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/streams", a.handleStreams)
	mux.HandleFunc("/api/detections", a.handleDetections)
	mux.HandleFunc("/api/nodes", a.handleNodes)
	a.core().Register(mux)
	return mux
}

// core assembles the shared serving surface over the fused ledger's
// WAL store. Live events are published under WAL sequence numbers, so
// the SSE catch-up replay and the live tail meet without duplicates —
// the same discipline rfdumpd's hub follows, which is what lets a
// parent aggregator subscribe to this one with the same manager code.
func (a *Aggregator) core() *serving.Core {
	return &serving.Core{
		Broker:      a.broker,
		Ledger:      serving.StoreLedger{Store: a.ledger.Store()},
		Store:       a.ledger.Store(),
		Quota:       a.quota,
		Registry:    a.reg,
		Refresh:     a.refreshGauges,
		FeedComment: ": rfdumpc fused feed",
		Health:      a.healthProbe,
		Ready:       a.readyProbe,
	}
}

func (a *Aggregator) refreshGauges() {
	a.reg.Gauge("cluster/nodes_connected").Set(int64(a.manager.Connected()))
	a.reg.Gauge("cluster/ledger_size").Set(int64(a.Fuser().Len()))
}

// fleetStream is a node's StreamInfo under its fleet id, tagged with
// the node that owns it.
type fleetStream struct {
	server.StreamInfo
	Node string `json:"node"`
}

// handleStreams polls every connected node's /api/streams in parallel
// and merges the results under fleet ids. The fan-out is bounded by
// StreamsTimeout, so one stalled node cannot hang the merged view; a
// node that fails or times out appears in the response's "errors" map
// (node → message) while the rest of the fleet is served — partial
// results over no results, with the partiality explicit.
func (a *Aggregator) handleStreams(w http.ResponseWriter, r *http.Request) {
	client := a.cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(r.Context(), a.cfg.StreamsTimeout)
	defer cancel()

	type result struct {
		node    string
		streams []fleetStream
		err     error
	}
	var pending int
	results := make(chan result)
	for _, st := range a.manager.Nodes() {
		if !st.Connected {
			continue
		}
		pending++
		go func(st NodeStatus) {
			streams, err := a.fetchStreams(ctx, client, st)
			results <- result{node: st.Node, streams: streams, err: err}
		}(st)
	}

	out := make([]fleetStream, 0)
	errs := make(map[string]string)
	for ; pending > 0; pending-- {
		res := <-results
		if res.err != nil {
			errs[res.node] = res.err.Error()
			continue
		}
		out = append(out, res.streams...)
	}
	// Parallel arrival order is nondeterministic; fleet ids are not.
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	body := map[string]any{"streams": out}
	if len(errs) > 0 {
		body["errors"] = errs
	}
	serving.WriteJSON(w, body)
}

// fetchStreams polls one node's stream table and rewrites ids into the
// fleet id space.
func (a *Aggregator) fetchStreams(ctx context.Context, client *http.Client, st NodeStatus) ([]fleetStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/api/streams", st.API), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Streams []server.StreamInfo `json:"streams"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]fleetStream, 0, len(body.Streams))
	for _, si := range body.Streams {
		fs := fleetStream{StreamInfo: si, Node: st.Node}
		fs.ID = a.ledger.FusedStream(st.Node, si.ID)
		out = append(out, fs)
	}
	return out, nil
}

func (a *Aggregator) handleDetections(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	fused := a.Fuser().Recent(limit)
	if r.URL.Query().Get("evidence") != "" {
		serving.WriteJSON(w, map[string]any{"detections": fused})
		return
	}
	// Flattened single-node schema, so fleet-unaware clients work
	// unchanged against the aggregator.
	recs := make([]history.DetectionRecord, len(fused))
	for i := range fused {
		recs[i] = fused[i].record()
	}
	serving.WriteJSON(w, map[string]any{"detections": recs})
}

func (a *Aggregator) handleNodes(w http.ResponseWriter, r *http.Request) {
	serving.WriteJSON(w, map[string]any{"nodes": a.manager.Nodes()})
}

// clusterHealth is the JSON body of the aggregator's /healthz.
type clusterHealth struct {
	Status string `json:"status"`
	// Nodes / Connected count the fleet; Down lists nodes whose
	// subscription has been broken past StallAfter.
	Nodes     int          `json:"nodes"`
	Connected int          `json:"connected"`
	Down      []NodeStatus `json:"down,omitempty"`
	// Fused ledger + dedup counters at a glance.
	Fused      int64 `json:"fused"`
	Merged     int64 `json:"merged"`
	Duplicates int64 `json:"duplicates"`
	Resets     int64 `json:"resets"`
}

func (a *Aggregator) health() clusterHealth {
	h := clusterHealth{
		Status:     "ok",
		Fused:      a.reg.Counter("cluster/detections_fused").Load(),
		Merged:     a.reg.Counter("cluster/evidence_merged").Load(),
		Duplicates: a.reg.Counter("cluster/events_duplicate").Load(),
		Resets:     a.reg.Counter("cluster/node_resets").Load(),
	}
	stall := a.cfg.StallAfter.Seconds()
	for _, st := range a.manager.Nodes() {
		h.Nodes++
		if st.Connected {
			h.Connected++
			continue
		}
		if st.DownS >= stall {
			h.Down = append(h.Down, st)
		}
	}
	return h
}

// healthProbe backs /healthz: degraded (503) while any fleet node's
// subscription has been down past StallAfter — mirroring rfdumpd's
// stall probe — recovering the moment the manager reconnects.
func (a *Aggregator) healthProbe() (any, bool) {
	h := a.health()
	if len(h.Down) > 0 {
		h.Status = "degraded"
		return h, false
	}
	return h, true
}

// readyProbe backs /readyz (currently always ready; the body carries
// the same fleet snapshot as /healthz).
func (a *Aggregator) readyProbe() (any, bool) {
	return a.health(), true
}
