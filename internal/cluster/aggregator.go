package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"rfdump/internal/metrics"
	"rfdump/internal/server"
)

// AggregatorConfig configures the fleet aggregator.
type AggregatorConfig struct {
	// Match tunes cross-sensor fusion (zero value = defaults).
	Match MatchConfig
	// SSEQueue / EvictAfter / Shards configure the fan-out broker
	// (defaults 64 / 256 / per-core).
	SSEQueue   int
	EvictAfter int
	Shards     int
	// StallAfter marks a node unhealthy once its subscription has been
	// down this long (default 5s). /healthz degrades while any node is
	// past it and recovers when the manager reconnects.
	StallAfter time.Duration
	// Client, backoff and seed pass through to the Manager.
	Client     *http.Client
	MinBackoff time.Duration
	MaxBackoff time.Duration
	Seed       uint64
	// Registry receives all cluster/* and server/sse/* metrics; nil
	// disables metrics (the /api/metricz endpoint then serves an empty
	// snapshot).
	Registry *metrics.Registry
}

// Aggregator is the rfdumpc core: a Manager subscribed to every known
// rfdumpd node, a Fuser deduplicating their overlapping detections,
// and the same /api surface rfdumpd serves — streams, detections,
// live SSE, health — so a fleet looks to clients like one big
// monitor. Node-local stream ids collide across a fleet, so the
// aggregator assigns each (node, stream) pair a fleet-unique fused
// stream id on first sight and rewrites all exported records with it.
type Aggregator struct {
	cfg     AggregatorConfig
	manager *Manager
	fuser   *Fuser
	broker  *server.Broker
	reg     *metrics.Registry

	mu      sync.Mutex
	streams map[string]map[uint64]uint64 // node → node stream id → fused id
	origin  map[uint64][2]string         // fused id → {node, node stream id}
	nextID  uint64
}

// NewAggregator builds an aggregator; Add or Discovered feed it nodes.
func NewAggregator(cfg AggregatorConfig) *Aggregator {
	if cfg.SSEQueue <= 0 {
		cfg.SSEQueue = 64
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 256
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 5 * time.Second
	}
	a := &Aggregator{
		cfg:     cfg,
		reg:     cfg.Registry,
		broker:  server.NewBrokerSharded(cfg.SSEQueue, cfg.EvictAfter, cfg.Shards, cfg.Registry),
		fuser:   NewFuser(cfg.Match, cfg.Registry),
		streams: make(map[string]map[uint64]uint64),
		origin:  make(map[uint64][2]string),
	}
	a.manager = NewManager(ManagerConfig{
		Client:     cfg.Client,
		MinBackoff: cfg.MinBackoff,
		MaxBackoff: cfg.MaxBackoff,
		Seed:       cfg.Seed,
		OnEvent:    a.onEvent,
		OnState:    a.onState,
		Registry:   cfg.Registry,
	})
	return a
}

// Add subscribes a node by id and API address (static fleet config).
func (a *Aggregator) Add(node, api string) { a.manager.Add(node, api) }

// Remove drops a node from the fleet.
func (a *Aggregator) Remove(node string) { a.manager.Remove(node) }

// Discovered is the Discoverer OnNode callback: beacons add nodes,
// expiry removes them.
func (a *Aggregator) Discovered(rec NodeRecord, alive bool) {
	if alive {
		a.manager.Add(rec.Node, rec.API)
	} else {
		a.manager.Remove(rec.Node)
	}
}

// Fuser exposes the fused ledger (tests, rfbench).
func (a *Aggregator) Fuser() *Fuser { return a.fuser }

// Manager exposes subscription state (tests, health).
func (a *Aggregator) Manager() *Manager { return a.manager }

// Close stops all subscriptions.
func (a *Aggregator) Close() { a.manager.Close() }

// fusedStream maps a node-local stream id to its fleet-unique id,
// allocating on first sight. Ids are stable for the aggregator's
// lifetime, across node reconnects and restarts.
func (a *Aggregator) fusedStream(node string, stream uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	byNode, ok := a.streams[node]
	if !ok {
		byNode = make(map[uint64]uint64)
		a.streams[node] = byNode
	}
	if id, ok := byNode[stream]; ok {
		return id
	}
	a.nextID++
	byNode[stream] = a.nextID
	a.origin[a.nextID] = [2]string{node, strconv.FormatUint(stream, 10)}
	return a.nextID
}

// onEvent is the manager sink: detections feed the fuser; fused
// results republish on the aggregator's own live feed.
func (a *Aggregator) onEvent(node string, ev server.Event) {
	if ev.Type != "detection" || ev.Detection == nil {
		return
	}
	stream := a.fusedStream(node, ev.Stream)
	fd, res := a.fuser.Ingest(node, stream, ev.Detection)
	if res == Duplicate {
		return // replayed sighting, nothing new to publish
	}
	rec := fd.record()
	typ := "detection"
	if res == Merged {
		// Additional evidence on an already-published event: clients
		// counting "detection" events per over-the-air packet must not
		// double-count, so merges go out under their own type.
		typ = "detection-update"
	}
	a.broker.Publish(server.Event{
		Seq: fd.Seq, Type: typ, Stream: rec.Stream, Detection: &rec,
	})
}

// onState republishes node connectivity edges on the live feed.
func (a *Aggregator) onState(node string, connected bool) {
	typ := "node-down"
	if connected {
		typ = "node-up"
	}
	a.broker.Publish(server.Event{Type: typ, Error: node})
}

// Handler serves the aggregator API:
//
//	GET /api/streams    — every node's streams, fleet ids, node-tagged
//	GET /api/detections — fused detections (?limit=, ?evidence=1 for
//	                      full per-sensor evidence)
//	GET /api/live       — SSE fused feed (?types=, ?since= on fused seq)
//	GET /api/nodes      — fleet membership + subscription status
//	GET /api/history    — fused ledger bounds (same shape a node's
//	                      store stats endpoint serves, so an aggregator
//	                      can itself be aggregated)
//	GET /api/metricz    — metrics snapshot (cluster/* + server/sse/*)
//	GET /healthz        — 503 while any node subscription is down past
//	                      StallAfter
//	GET /readyz         — readiness (currently always 200)
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/streams", a.handleStreams)
	mux.HandleFunc("/api/detections", a.handleDetections)
	mux.HandleFunc("/api/live", a.handleLive)
	mux.HandleFunc("/api/nodes", a.handleNodes)
	mux.HandleFunc("/api/history", a.handleHistory)
	mux.Handle("/api/metricz", metrics.Handler(a.reg, a.refreshGauges))
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	return mux
}

func (a *Aggregator) refreshGauges() {
	a.reg.Gauge("cluster/nodes_connected").Set(int64(a.manager.Connected()))
	a.reg.Gauge("cluster/ledger_size").Set(int64(a.fuser.Len()))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// fleetStream is a node's StreamInfo under its fleet id, tagged with
// the node that owns it.
type fleetStream struct {
	server.StreamInfo
	Node string `json:"node"`
}

// handleStreams polls every connected node's /api/streams and merges
// the results under fleet ids. Nodes that fail to answer are skipped
// (their subscription state shows on /api/nodes); the merged view is
// best-effort by design — it is a monitoring surface, not a ledger.
func (a *Aggregator) handleStreams(w http.ResponseWriter, r *http.Request) {
	client := a.cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	out := make([]fleetStream, 0)
	for _, st := range a.manager.Nodes() {
		if !st.Connected {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
			fmt.Sprintf("http://%s/api/streams", st.API), nil)
		if err != nil {
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		var body struct {
			Streams []server.StreamInfo `json:"streams"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			continue
		}
		for _, si := range body.Streams {
			fs := fleetStream{StreamInfo: si, Node: st.Node}
			fs.ID = a.fusedStream(st.Node, si.ID)
			out = append(out, fs)
		}
	}
	writeJSON(w, map[string]any{"streams": out})
}

func (a *Aggregator) handleDetections(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	fused := a.fuser.Recent(limit)
	if r.URL.Query().Get("evidence") != "" {
		writeJSON(w, map[string]any{"detections": fused})
		return
	}
	// Flattened single-node schema, so fleet-unaware clients work
	// unchanged against the aggregator.
	recs := make([]server.DetectionRecord, len(fused))
	for i := range fused {
		recs[i] = fused[i].record()
	}
	writeJSON(w, map[string]any{"detections": recs})
}

func (a *Aggregator) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"nodes": a.manager.Nodes()})
}

func (a *Aggregator) handleHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"kind":       "fused",
		"last_seq":   a.fuser.LastSeq(),
		"detections": a.fuser.Len(),
	})
}

// handleLive is the fused SSE feed, with the same contract as
// rfdumpd's: ?types= filters, ?since= replays fused detections with
// Seq > since from the ledger before tailing, and live events already
// covered by the replay are skipped.
func (a *Aggregator) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var types []string
	if t := r.URL.Query().Get("types"); t != "" {
		types = strings.Split(t, ",")
	}
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = v
	}
	sub := a.broker.Subscribe(types...)
	defer a.broker.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, ": rfdumpc fused feed\n\n")

	var replayed uint64
	if r.URL.Query().Has("since") {
		wants := func(t string) bool {
			if len(types) == 0 {
				return true
			}
			for _, x := range types {
				if x == t {
					return true
				}
			}
			return false
		}
		if wants("detection") {
			for _, fd := range a.fuser.Since(since) {
				rec := fd.record()
				ev := server.Event{Seq: fd.Seq, Type: "detection", Stream: rec.Stream, Detection: &rec}
				if data, err := json.Marshal(ev); err == nil {
					fmt.Fprintf(w, "event: detection\ndata: %s\n\n", data)
				}
				if fd.Seq > replayed {
					replayed = fd.Seq
				}
			}
		}
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if ev.Type == "detection" && ev.Seq <= replayed {
				continue // covered by the catch-up replay
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}

// clusterHealth is the JSON body of the aggregator's /healthz.
type clusterHealth struct {
	Status string `json:"status"`
	// Nodes / Connected count the fleet; Down lists nodes whose
	// subscription has been broken past StallAfter.
	Nodes     int          `json:"nodes"`
	Connected int          `json:"connected"`
	Down      []NodeStatus `json:"down,omitempty"`
	// Fused ledger + dedup counters at a glance.
	Fused      int64 `json:"fused"`
	Merged     int64 `json:"merged"`
	Duplicates int64 `json:"duplicates"`
	Resets     int64 `json:"resets"`
}

func (a *Aggregator) health() clusterHealth {
	h := clusterHealth{
		Status:     "ok",
		Fused:      a.reg.Counter("cluster/detections_fused").Load(),
		Merged:     a.reg.Counter("cluster/evidence_merged").Load(),
		Duplicates: a.reg.Counter("cluster/events_duplicate").Load(),
		Resets:     a.reg.Counter("cluster/node_resets").Load(),
	}
	stall := a.cfg.StallAfter.Seconds()
	for _, st := range a.manager.Nodes() {
		h.Nodes++
		if st.Connected {
			h.Connected++
			continue
		}
		if st.DownS >= stall {
			h.Down = append(h.Down, st)
		}
	}
	return h
}

// handleHealthz degrades (503) while any fleet node's subscription has
// been down past StallAfter — mirroring rfdumpd's stall probe — and
// recovers the moment the manager reconnects.
func (a *Aggregator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := a.health()
	code := http.StatusOK
	if len(h.Down) > 0 {
		h.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

func (a *Aggregator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := a.health()
	writeJSON(w, h)
}
