package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/server"
)

// fakeNode mimics the two rfdumpd endpoints the manager speaks:
// /api/history for the seq-epoch probe and /api/live for the
// replay-then-tail feed. The live handler replays everything past the
// cursor, then holds the connection open and tails extend()ed events —
// and drops it when set() installs a new epoch, exactly the connection
// failure a real restart produces.
type fakeNode struct {
	mu      sync.Mutex
	epoch   int
	lastSeq uint64
	events  []server.Event
	lives   int
}

func (n *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/history", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		last := n.lastSeq
		n.mu.Unlock()
		fmt.Fprintf(w, `{"kind":"fake","last_seq":%d}`, last)
	})
	mux.HandleFunc("/api/live", func(w http.ResponseWriter, r *http.Request) {
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		n.mu.Lock()
		n.lives++
		epoch := n.epoch
		n.mu.Unlock()
		cur := since
		for {
			n.mu.Lock()
			if n.epoch != epoch {
				n.mu.Unlock()
				return // restarted: the old daemon's connections die
			}
			var pending []server.Event
			for _, ev := range n.events {
				if ev.Seq > cur {
					pending = append(pending, ev)
				}
			}
			n.mu.Unlock()
			for _, ev := range pending {
				buf, _ := json.Marshal(ev)
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, buf)
				cur = ev.Seq
			}
			fl.Flush()
			select {
			case <-r.Context().Done():
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	})
	return mux
}

// set replaces the node's entire ledger — a restart installs a fresh
// one whose seqs start over — and severs live connections.
func (n *fakeNode) set(evs []server.Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch++
	n.events = evs
	n.lastSeq = 0
	if len(evs) > 0 {
		n.lastSeq = evs[len(evs)-1].Seq
	}
}

func (n *fakeNode) extend(evs ...server.Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.events = append(n.events, evs...)
	n.lastSeq = n.events[len(n.events)-1].Seq
}

// detEvent builds a detection event; the span identifies the
// over-the-air packet, so re-streaming the same trace after a restart
// reproduces the same spans under fresh seqs.
func detEvent(seq uint64, start int64) server.Event {
	return server.Event{
		Seq: seq, Type: "detection", Stream: 1,
		Detection: &history.DetectionRecord{
			Seq: seq, Stream: 1, Family: "wifi", Detector: "timing",
			TimeS: float64(start) / 20e6, AbsStart: start, AbsEnd: start + 20_000,
			Confidence: 0.9, Channel: 6,
		},
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestManagerSeamAcrossRestart is the epoch-seam test: a node restarts
// mid-subscription, its seq allocator starts over, and its replayed
// history overlaps what the aggregator already consumed. The manager
// must detect the restart (store LastSeq below the cursor), reset the
// cursor, take the full replay — and the fuser must dedup the overlap
// by content, so the fused ledger counts each packet exactly once
// across both epochs.
func TestManagerSeamAcrossRestart(t *testing.T) {
	node := &fakeNode{}
	// Epoch 1: five detections on the air, seqs 1..5.
	epoch1 := make([]server.Event, 0, 5)
	for i := uint64(1); i <= 5; i++ {
		epoch1 = append(epoch1, detEvent(i, int64(i)*1_000_000))
	}
	node.set(epoch1)

	ts := httptest.NewServer(node.handler())
	defer ts.Close()
	api := strings.TrimPrefix(ts.URL, "http://")

	reg := metrics.NewRegistry()
	fuser := NewFuser(MatchConfig{}, reg)
	var cmu sync.Mutex
	created, merged, dups := 0, 0, 0
	m := NewManager(ManagerConfig{
		OnEvent: func(n string, ev server.Event) {
			if ev.Detection == nil {
				return
			}
			_, res := fuser.Ingest(n, ev.Stream, ev.Detection)
			cmu.Lock()
			switch res {
			case Created:
				created++
			case Merged:
				merged++
			case Duplicate:
				dups++
			}
			cmu.Unlock()
		},
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Seed:       1,
		Registry:   reg,
	})
	defer m.Close()
	m.Add("lab1", api)

	status := func() NodeStatus {
		sts := m.Nodes()
		if len(sts) != 1 {
			t.Fatalf("status for %d nodes, want 1", len(sts))
		}
		return sts[0]
	}
	waitFor(t, "epoch-1 consume", func() bool { return status().LastSeq == 5 })
	if fuser.Len() != 5 {
		t.Fatalf("epoch 1 fused %d detections, want 5", fuser.Len())
	}

	// Restart: the node comes back re-streaming the same trace. Its
	// store holds the first three detections again — identical packets,
	// fresh seqs 1..3 hiding behind the aggregator's stale cursor of 5.
	node.set([]server.Event{
		detEvent(1, 1_000_000), detEvent(2, 2_000_000), detEvent(3, 3_000_000),
	})
	waitFor(t, "restart detect + replay", func() bool {
		st := status()
		return st.Resets == 1 && st.LastSeq == 3
	})

	// The replay crossed OnEvent again; content dedup must have eaten
	// all of it.
	cmu.Lock()
	if created != 5 || dups != 3 {
		cmu.Unlock()
		t.Fatalf("after replay: created=%d dups=%d, want 5/3", created, dups)
	}
	cmu.Unlock()
	if fuser.Len() != 5 {
		t.Fatalf("replay grew the fused ledger to %d, want 5", fuser.Len())
	}

	// The epoch-2 node keeps detecting: seqs 4..6 are genuinely new
	// packets and must flow normally from the reset cursor.
	node.extend(detEvent(4, 11_000_000), detEvent(5, 12_000_000), detEvent(6, 13_000_000))
	waitFor(t, "post-restart tail", func() bool { return status().LastSeq == 6 })
	waitFor(t, "post-restart fusion", func() bool { return fuser.Len() == 8 })

	cmu.Lock()
	defer cmu.Unlock()
	if created != 8 || dups != 3 || merged != 0 {
		t.Fatalf("final ledger: created=%d merged=%d dups=%d, want 8/0/3", created, merged, dups)
	}
	if got := reg.Counter("cluster/node_resets").Load(); got != 1 {
		t.Fatalf("cluster/node_resets = %d, want 1", got)
	}
	if st := status(); st.Duplicates != 0 {
		// Seq-level duplicates never happened: the seam was handled by
		// cursor reset + content dedup, not by replaying into the guard.
		t.Fatalf("seq-duplicate count %d, want 0", st.Duplicates)
	}
}

// TestManagerRemoveStopsConsuming pins Remove: the loop stops, status
// disappears, and later node activity is never consumed.
func TestManagerRemoveStopsConsuming(t *testing.T) {
	node := &fakeNode{}
	node.set([]server.Event{detEvent(1, 1_000_000)})
	ts := httptest.NewServer(node.handler())
	defer ts.Close()

	reg := metrics.NewRegistry()
	var cmu sync.Mutex
	seen := 0
	m := NewManager(ManagerConfig{
		OnEvent:    func(string, server.Event) { cmu.Lock(); seen++; cmu.Unlock() },
		MinBackoff: time.Millisecond,
		MaxBackoff: 5 * time.Millisecond,
		Registry:   reg,
	})
	defer m.Close()
	m.Add("lab1", strings.TrimPrefix(ts.URL, "http://"))
	waitFor(t, "first event", func() bool { cmu.Lock(); defer cmu.Unlock(); return seen == 1 })

	m.Remove("lab1")
	if len(m.Nodes()) != 0 {
		t.Fatal("removed node still reported")
	}
	node.extend(detEvent(2, 2_000_000))
	time.Sleep(30 * time.Millisecond)
	cmu.Lock()
	defer cmu.Unlock()
	if seen != 1 {
		t.Fatalf("removed node's events still consumed: seen=%d", seen)
	}
}
