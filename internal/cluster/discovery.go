package cluster

import (
	"encoding/json"
	"net"
	"sort"
	"sync"
	"time"

	"rfdump/internal/metrics"
)

// AnnounceConfig configures a node's beacon transmitter.
type AnnounceConfig struct {
	// Target is the UDP address beacons are sent to: a broadcast or
	// multicast group in a real deployment, a unicast listener in
	// tests. Required.
	Target string
	// Node is the fleet-unique node id; API the HTTP address to
	// announce (the host part may be empty — receivers substitute the
	// datagram source). Both required.
	Node string
	API  string
	// Interval between beacons (default 2s). Receivers expire a node
	// after missing ~3 intervals, so the interval bounds failover
	// detection latency.
	Interval time.Duration
	// Info, if set, is polled per beacon for the advisory fields.
	Info func() (rate, streams int)
	// Registry receives cluster/announce metrics; nil disables.
	Registry *metrics.Registry
}

// Announcer periodically broadcasts a node's service record. It is the
// entire server side of discovery: stateless, connectionless, one JSON
// datagram every interval. Lost beacons cost nothing but latency — the
// next one re-announces everything.
type Announcer struct {
	cfg    AnnounceConfig
	conn   net.Conn
	sent   *metrics.Counter
	beacon uint64
	stop   chan struct{}
	done   chan struct{}
}

// NewAnnouncer starts announcing to cfg.Target until Close.
func NewAnnouncer(cfg AnnounceConfig) (*Announcer, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	conn, err := net.Dial("udp", cfg.Target)
	if err != nil {
		return nil, err
	}
	a := &Announcer{
		cfg:  cfg,
		conn: conn,
		sent: cfg.Registry.Counter("cluster/announces_sent"),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go a.run()
	return a, nil
}

func (a *Announcer) run() {
	defer close(a.done)
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	a.send()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			a.send()
		}
	}
}

func (a *Announcer) send() {
	a.beacon++
	rec := NodeRecord{
		Magic:  BeaconMagic,
		Node:   a.cfg.Node,
		API:    a.cfg.API,
		Beacon: a.beacon,
	}
	if a.cfg.Info != nil {
		rec.Rate, rec.Streams = a.cfg.Info()
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if _, err := a.conn.Write(buf); err == nil {
		a.sent.Inc()
	}
}

// Close stops the beacon loop and releases the socket.
func (a *Announcer) Close() error {
	close(a.stop)
	<-a.done
	return a.conn.Close()
}

// DiscoverConfig configures a beacon listener.
type DiscoverConfig struct {
	// Listen is the UDP address to bind ("host:port"; e.g. ":7331").
	Listen string
	// TTL is how long a node survives without a beacon before it is
	// expired (default 3× the 2s announce default).
	TTL time.Duration
	// OnNode fires on every state change: a node appearing (or its API
	// address changing) with alive=true, and expiry with alive=false.
	// Called from the discoverer's goroutines; must not block.
	OnNode func(rec NodeRecord, alive bool)
	// Clock drives beacon timestamps and TTL sweeps (default
	// SystemClock; tests expire nodes by advancing a fake clock instead
	// of sleeping out real TTLs).
	Clock Clock
	// Registry receives cluster/discovery metrics; nil disables.
	Registry *metrics.Registry
}

// Discoverer folds beacons into the live node set. The set is soft
// state in the mDNS tradition: membership is exactly "announced
// recently", so a crashed node disappears after TTL without any
// teardown protocol, and a restarted one reappears on its first
// beacon.
type Discoverer struct {
	cfg  DiscoverConfig
	pc   net.PacketConn
	stop chan struct{}
	done chan struct{}

	received *metrics.Counter
	bad      *metrics.Counter
	expired  *metrics.Counter
	known    *metrics.Gauge

	mu    sync.Mutex
	nodes map[string]discovered
}

type discovered struct {
	rec  NodeRecord
	seen time.Time
}

// NewDiscoverer binds cfg.Listen and tracks announcing nodes until
// Close.
func NewDiscoverer(cfg DiscoverConfig) (*Discoverer, error) {
	if cfg.TTL <= 0 {
		cfg.TTL = 6 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock{}
	}
	pc, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	d := &Discoverer{
		cfg:      cfg,
		pc:       pc,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		received: cfg.Registry.Counter("cluster/beacons_received"),
		bad:      cfg.Registry.Counter("cluster/beacons_bad"),
		expired:  cfg.Registry.Counter("cluster/nodes_expired"),
		known:    cfg.Registry.Gauge("cluster/nodes_known"),
		nodes:    make(map[string]discovered),
	}
	go d.listen()
	go d.sweep()
	return d, nil
}

// Addr returns the bound listen address (useful with ":0" in tests).
func (d *Discoverer) Addr() net.Addr { return d.pc.LocalAddr() }

func (d *Discoverer) listen() {
	defer close(d.done)
	buf := make([]byte, 2048)
	for {
		n, src, err := d.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-d.stop:
				return
			default:
			}
			d.bad.Inc()
			continue
		}
		d.ingest(buf[:n], src)
	}
}

func (d *Discoverer) ingest(buf []byte, src net.Addr) {
	var rec NodeRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		d.bad.Inc()
		return
	}
	// mDNS-style source substitution: a node that announced a bare
	// port (or a wildcard host) gets the address it actually spoke
	// from, which is by construction a route that reaches it.
	if host, port, err := net.SplitHostPort(rec.API); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			if udp, ok := src.(*net.UDPAddr); ok {
				rec.API = net.JoinHostPort(udp.IP.String(), port)
			}
		}
	}
	if err := rec.validate(); err != nil {
		d.bad.Inc()
		return
	}
	d.received.Inc()

	d.mu.Lock()
	prev, had := d.nodes[rec.Node]
	d.nodes[rec.Node] = discovered{rec: rec, seen: d.cfg.Clock.Now()}
	d.known.Set(int64(len(d.nodes)))
	d.mu.Unlock()
	if (!had || prev.rec.API != rec.API) && d.cfg.OnNode != nil {
		d.cfg.OnNode(rec, true)
	}
}

// sweep expires nodes whose beacons stopped. It sleeps through the
// injected clock (TTL/3 a tick) so a fake clock drives expiry in
// tests.
func (d *Discoverer) sweep() {
	for {
		select {
		case <-d.stop:
			return
		case <-d.cfg.Clock.After(d.cfg.TTL / 3):
			now := d.cfg.Clock.Now()
			var gone []NodeRecord
			d.mu.Lock()
			for id, n := range d.nodes {
				if now.Sub(n.seen) > d.cfg.TTL {
					delete(d.nodes, id)
					gone = append(gone, n.rec)
				}
			}
			d.known.Set(int64(len(d.nodes)))
			d.mu.Unlock()
			for _, rec := range gone {
				d.expired.Inc()
				if d.cfg.OnNode != nil {
					d.cfg.OnNode(rec, false)
				}
			}
		}
	}
}

// Nodes snapshots the live node set, sorted by node id.
func (d *Discoverer) Nodes() []NodeRecord {
	d.mu.Lock()
	out := make([]NodeRecord, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, n.rec)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Close stops listening; tracked state is discarded.
func (d *Discoverer) Close() error {
	close(d.stop)
	err := d.pc.Close()
	<-d.done
	return err
}
