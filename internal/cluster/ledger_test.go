package cluster

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/server"
)

// openLedger builds a FusedLedger over a disk store in dir.
func openLedger(t *testing.T, dir string, reg *metrics.Registry) *FusedLedger {
	t.Helper()
	store, err := history.OpenDisk(history.DiskConfig{Dir: dir, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := NewFusedLedger(LedgerConfig{Store: store, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return ledger
}

// sighting builds a raw node detection record for ledger tests.
func sighting(seq uint64, detector string, start int64, conf float64) *history.DetectionRecord {
	return &history.DetectionRecord{
		Seq: seq, Stream: 1, Family: "wifi", Detector: detector,
		TimeS: float64(start) / 20e6, AbsStart: start, AbsEnd: start + 20_000,
		Confidence: conf, Channel: 6,
	}
}

// fusedByID indexes a fused-ledger snapshot by fused id.
func fusedByID(fuser *Fuser) map[uint64]FusedDetection {
	out := make(map[uint64]FusedDetection)
	for _, fd := range fuser.Recent(0) {
		out[fd.Seq] = fd
	}
	return out
}

// dumpWAL pages the whole store — the byte-identity witness for the
// SIGKILL recovery invariant.
func dumpWAL(t *testing.T, store history.Store) []history.DetectionRecord {
	t.Helper()
	var out []history.DetectionRecord
	var cursor uint64
	for {
		recs, next, more, err := store.QueryDetections(history.Query{Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, recs...)
		cursor = next
		if !more {
			return out
		}
	}
}

// TestFusedLedgerDiskRecovery is the SIGKILL half of the tentpole: a
// ledger journaled to disk segments is dropped without any shutdown
// (only the abandoned store's file handle survives, as after a kill
// -9) and reopened — fused detections, stream-id map, seq epoch and
// dedup state must all come back, and a full fleet replay must append
// nothing.
func TestFusedLedgerDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	led := openLedger(t, dir, reg)

	// Two sensors hear the shared packet (create + merge), one packet
	// is near-only (create): three WAL records, two fused detections.
	feed := func(l *FusedLedger) []IngestResult {
		var out []IngestResult
		for _, in := range []struct {
			node string
			rec  *history.DetectionRecord
		}{
			{"near", sighting(1, "timing", 5_000_000, 0.8)},
			{"far", sighting(1, "timing", 5_000_030, 0.95)}, // 30 ticks of skew
			{"near", sighting(2, "phase", 9_000_000, 0.7)},
		} {
			_, res := l.Ingest(in.node, 1, in.rec)
			out = append(out, res)
		}
		return out
	}
	if got := feed(led); !reflect.DeepEqual(got, []IngestResult{Created, Merged, Created}) {
		t.Fatalf("first ingest results: %v", got)
	}

	before := fusedByID(led.Fuser())
	walBefore := dumpWAL(t, led.Store())
	lastSeq := led.Store().LastSeq()
	streams := led.Streams()
	nearID := led.FusedStream("near", 1)
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same segments.
	led2 := openLedger(t, dir, reg)
	defer led2.Close()

	if got := led2.Store().LastSeq(); got != lastSeq {
		t.Fatalf("seq epoch after recovery: %d, want %d", got, lastSeq)
	}
	if got := led2.Streams(); got != streams {
		t.Fatalf("stream-id map size after recovery: %d, want %d", got, streams)
	}
	if got := led2.FusedStream("near", 1); got != nearID {
		t.Fatalf("stream id (near,1) after recovery: %d, want %d (must not re-allocate)", got, nearID)
	}
	after := fusedByID(led2.Fuser())
	if !reflect.DeepEqual(after, before) {
		t.Fatalf("fused ledger after recovery:\n got %+v\nwant %+v", after, before)
	}

	// The fleet replays its history in full (what the manager does after
	// its restart probe): every sighting is a content-level duplicate,
	// so the recovered ledger appends nothing and the WAL stays
	// identical record for record.
	if got := feed(led2); !reflect.DeepEqual(got, []IngestResult{Duplicate, Duplicate, Duplicate}) {
		t.Fatalf("replay ingest results: %v, want all duplicates", got)
	}
	if got := dumpWAL(t, led2.Store()); !reflect.DeepEqual(got, walBefore) {
		t.Fatalf("WAL changed across recovery + replay:\n got %+v\nwant %+v", got, walBefore)
	}
	if got := led2.Store().LastSeq(); got != lastSeq {
		t.Fatalf("replay advanced the seq epoch: %d, want %d", got, lastSeq)
	}

	// New traffic after recovery continues the epoch, never reuses seqs.
	wal, res := led2.Ingest("near", 1, sighting(3, "timing", 13_000_000, 0.6))
	if res != Created || wal == nil {
		t.Fatalf("post-recovery ingest: res=%v wal=%+v", res, wal)
	}
	if wal.Seq != lastSeq+1 {
		t.Fatalf("post-recovery WAL seq %d, want %d", wal.Seq, lastSeq+1)
	}
}

// TestFusedLedgerTreeIdempotence chains two ledgers the way a broker
// tree chains aggregators: the mid ledger's WAL records (evidence
// deltas attached) feed the root ledger. The root must count each leaf
// sighting exactly once — including through a diamond, where a second
// mid-tier re-offers evidence the root already holds.
func TestFusedLedgerTreeIdempotence(t *testing.T) {
	reg := metrics.NewRegistry()
	mid, err := NewFusedLedger(LedgerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	root, err := NewFusedLedger(LedgerConfig{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	// Leaf sightings into the mid tier; its WAL chains upward.
	var walUp []*history.DetectionRecord
	for _, in := range []struct {
		node string
		rec  *history.DetectionRecord
	}{
		{"near", sighting(1, "timing", 5_000_000, 0.8)},
		{"far", sighting(1, "timing", 5_000_030, 0.95)},
		{"near", sighting(2, "phase", 9_000_000, 0.7)},
	} {
		if wal, _ := mid.Ingest(in.node, 1, in.rec); wal != nil {
			walUp = append(walUp, wal)
		}
	}
	if len(walUp) != 3 {
		t.Fatalf("mid tier produced %d WAL records, want 3", len(walUp))
	}

	for _, wal := range walUp {
		root.Ingest("mid", wal.Stream, wal)
	}
	if got := root.Fuser().Len(); got != 2 {
		t.Fatalf("root fused %d detections, want 2 (fusion must be idempotent across levels)", got)
	}

	// The root's evidence keeps leaf provenance — node names survive the
	// extra level, which is exactly what makes the diamond dedup work.
	for _, fd := range root.Fuser().Recent(0) {
		for _, ev := range fd.Evidence {
			if ev.Node != "near" && ev.Node != "far" {
				t.Fatalf("root evidence lost leaf provenance: %+v", ev)
			}
		}
	}

	// Diamond: a second mid-tier heard the same leaves and offers the
	// same evidence under its own WAL. Nothing may double-count.
	mid2, err := NewFusedLedger(LedgerConfig{Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer mid2.Close()
	for _, in := range []struct {
		node string
		rec  *history.DetectionRecord
	}{
		{"near", sighting(1, "timing", 5_000_000, 0.8)},
		{"far", sighting(1, "timing", 5_000_030, 0.95)},
	} {
		if wal, _ := mid2.Ingest(in.node, 1, in.rec); wal != nil {
			if _, res := root.Ingest("mid2", wal.Stream, wal); res != Duplicate {
				t.Fatalf("diamond re-offer fused as %v, want Duplicate", res)
			}
		}
	}
	if got := root.Fuser().Len(); got != 2 {
		t.Fatalf("diamond double-counted: root ledger %d, want 2", got)
	}
	shared := root.Fuser().Recent(0)
	var twoSensor *FusedDetection
	for i := range shared {
		if shared[i].Sensors == 2 {
			twoSensor = &shared[i]
		}
	}
	if twoSensor == nil || len(twoSensor.Evidence) != 2 {
		t.Fatalf("shared packet evidence wrong after diamond: %+v", shared)
	}
}

// TestBrokerTreeEndToEnd stands up a two-level tree over real HTTP —
// leaf node → mid aggregator → root aggregator — with nothing but the
// public serving surface between the tiers, and checks exactly-once
// delivery at the root through live traffic, a merge, and a leaf
// restart replay.
func TestBrokerTreeEndToEnd(t *testing.T) {
	leaf := &fakeNode{}
	leaf.set([]server.Event{detEvent(1, 1_000_000), detEvent(2, 5_000_000)})
	leafTS := httptest.NewServer(leaf.handler())
	defer leafTS.Close()

	midReg := metrics.NewRegistry()
	mid := newTestAggregator(midReg, 5*time.Second)
	defer mid.Close()
	mid.Add("leaf1", strings.TrimPrefix(leafTS.URL, "http://"))
	midTS := httptest.NewServer(mid.Handler())
	defer midTS.Close()

	rootReg := metrics.NewRegistry()
	root := newTestAggregator(rootReg, 5*time.Second)
	defer root.Close()
	root.Add("mid", strings.TrimPrefix(midTS.URL, "http://"))

	waitFor(t, "tree converged", func() bool {
		return mid.Fuser().Len() == 2 && root.Fuser().Len() == 2
	})

	// Evidence at the root names the leaf node, not the mid tier.
	for _, fd := range root.Fuser().Recent(0) {
		for _, ev := range fd.Evidence {
			if ev.Node != "leaf1" {
				t.Fatalf("root evidence lost leaf provenance: %+v", ev)
			}
		}
	}

	// A second sighting of packet 1 (other detector) merges at the mid
	// tier and propagates to the root as a merge — never as a new
	// detection at either level.
	upd := detEvent(3, 1_000_000)
	upd.Detection.Detector = "phase"
	leaf.extend(upd)
	waitFor(t, "merge propagated to root", func() bool {
		return rootReg.Counter("cluster/evidence_merged").Load() == 1
	})
	if got := root.Fuser().Len(); got != 2 {
		t.Fatalf("merge created a new root detection: ledger %d, want 2", got)
	}

	// Leaf restarts and replays the same packets under fresh seqs: the
	// mid tier dedups by content, so the root sees nothing at all.
	midWAL := mid.Ledger().Store().LastSeq()
	rootWAL := root.Ledger().Store().LastSeq()
	leaf.set([]server.Event{detEvent(1, 1_000_000), detEvent(2, 5_000_000)})
	waitFor(t, "leaf replay consumed", func() bool {
		return midReg.Counter("cluster/node_resets").Load() == 1 &&
			midReg.Counter("cluster/events_received").Load() >= 5
	})
	time.Sleep(50 * time.Millisecond) // let any (wrong) propagation surface
	if got := mid.Ledger().Store().LastSeq(); got != midWAL {
		t.Fatalf("leaf replay appended to the mid WAL: seq %d, want %d", got, midWAL)
	}
	if got := root.Ledger().Store().LastSeq(); got != rootWAL {
		t.Fatalf("leaf replay reached the root WAL: seq %d, want %d", got, rootWAL)
	}
	if got := root.Fuser().Len(); got != 2 {
		t.Fatalf("exactly-once broken at root: ledger %d, want 2", got)
	}

	// New over-the-air traffic after the restart still flows the whole
	// tree.
	leaf.extend(detEvent(3, 9_000_000))
	waitFor(t, "post-restart packet at root", func() bool {
		return root.Fuser().Len() == 3
	})
}
