package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/server"
)

// withStreams extends the fake node with the /api/streams inventory
// endpoint the aggregator's merged stream view polls.
func withStreams(n *fakeNode, streams ...server.StreamInfo) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", n.handler())
	mux.HandleFunc("/api/streams", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"streams": streams})
	})
	return mux
}

func newTestAggregator(reg *metrics.Registry, stall time.Duration) *Aggregator {
	agg, err := NewAggregator(AggregatorConfig{
		SSEQueue: 64, EvictAfter: -1,
		StallAfter: stall,
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Seed:       1,
		Registry:   reg,
	})
	if err != nil {
		panic(err)
	}
	return agg
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestAggregatorSurface drives the full HTTP surface against two fake
// nodes that both heard the same packet: the fleet view must show both
// nodes' streams under distinct fleet ids, one fused detection with
// two-sensor evidence, and matching ledger bounds on /api/history.
func TestAggregatorSurface(t *testing.T) {
	shared := int64(5_000_000) // the packet both sensors heard
	nodeA, nodeB := &fakeNode{}, &fakeNode{}
	nodeA.set([]server.Event{detEvent(1, shared), detEvent(2, 20_000_000)})
	evB := detEvent(1, shared+30) // 30 ticks of skew at sensor B
	evB.Detection.Confidence = 0.95
	nodeB.set([]server.Event{evB})

	tsA := httptest.NewServer(withStreams(nodeA, server.StreamInfo{ID: 1, Remote: "radioA"}))
	defer tsA.Close()
	tsB := httptest.NewServer(withStreams(nodeB, server.StreamInfo{ID: 1, Remote: "radioB"}))
	defer tsB.Close()

	reg := metrics.NewRegistry()
	agg := newTestAggregator(reg, 5*time.Second)
	defer agg.Close()
	agg.Add("labA", strings.TrimPrefix(tsA.URL, "http://"))
	agg.Add("labB", strings.TrimPrefix(tsB.URL, "http://"))

	api := httptest.NewServer(agg.Handler())
	defer api.Close()

	waitFor(t, "both nodes consumed", func() bool {
		return agg.Fuser().Len() == 2 && agg.Manager().Connected() == 2
	})

	// Flattened view: fleet-unaware clients see plain detection records.
	var flat struct {
		Detections []server.DetectionRecord `json:"detections"`
	}
	getJSON(t, api.URL+"/api/detections", &flat)
	if len(flat.Detections) != 2 {
		t.Fatalf("flattened detections: %d, want 2", len(flat.Detections))
	}

	// Evidence view: the shared packet fused across both sensors.
	var full struct {
		Detections []FusedDetection `json:"detections"`
	}
	getJSON(t, api.URL+"/api/detections?evidence=1", &full)
	// Arrival order across two live subscriptions is nondeterministic,
	// so the canonical span is whichever sensor landed first — find the
	// fused record by its two-sensor evidence.
	var fusedShared *FusedDetection
	for i := range full.Detections {
		if full.Detections[i].Sensors == 2 {
			fusedShared = &full.Detections[i]
		}
	}
	if fusedShared == nil {
		t.Fatalf("shared packet never fused: %+v", full.Detections)
	}
	if len(fusedShared.Evidence) != 2 {
		t.Fatalf("shared packet evidence=%d, want 2", len(fusedShared.Evidence))
	}
	if d := fusedShared.AbsStart - shared; d < 0 || d > 30 {
		t.Fatalf("fused span start %d not near %d", fusedShared.AbsStart, shared)
	}
	if fusedShared.Confidence != 0.95 {
		t.Fatalf("fused confidence %v, want sensor B's 0.95", fusedShared.Confidence)
	}

	// Stream inventory: both nodes' radios under distinct fleet ids.
	var streams struct {
		Streams []struct {
			ID     uint64 `json:"id"`
			Remote string `json:"remote"`
			Node   string `json:"node"`
		} `json:"streams"`
	}
	getJSON(t, api.URL+"/api/streams", &streams)
	if len(streams.Streams) != 2 {
		t.Fatalf("fleet streams: %d, want 2", len(streams.Streams))
	}
	ids := map[uint64]string{}
	for _, s := range streams.Streams {
		if s.Node == "" {
			t.Fatalf("stream missing node tag: %+v", s)
		}
		ids[s.ID] = s.Node
	}
	if len(ids) != 2 {
		t.Fatalf("node-local stream ids collided in the fleet view: %v", ids)
	}

	// /api/history now serves the fused WAL store's bounds — the same
	// shape a node's store stats endpoint serves, which is what lets an
	// aggregator itself be aggregated. Three sightings changed fused
	// state (two creates + one cross-sensor merge) = three WAL records.
	var hist struct {
		Kind       string `json:"kind"`
		LastSeq    uint64 `json:"last_seq"`
		Detections int    `json:"detections"`
	}
	getJSON(t, api.URL+"/api/history", &hist)
	if hist.Kind != "memory" || hist.LastSeq != 3 || hist.Detections != 3 {
		t.Fatalf("history bounds: %+v", hist)
	}

	var nodes struct {
		Nodes []NodeStatus `json:"nodes"`
	}
	getJSON(t, api.URL+"/api/nodes", &nodes)
	if len(nodes.Nodes) != 2 || !nodes.Nodes[0].Connected || !nodes.Nodes[1].Connected {
		t.Fatalf("node status: %+v", nodes.Nodes)
	}

	// Metrics surface: the cluster counters are exported.
	resp, err := http.Get(api.URL + "/api/metricz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"cluster/detections_fused", "cluster/evidence_merged", "cluster/nodes_connected"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metricz missing %s:\n%s", want, body)
		}
	}
}

// TestAggregatorHealthzDegradeRecover kills a node and brings it back
// on the same port: /healthz must degrade to 503 once the outage
// passes StallAfter, and recover to 200 when the manager resubscribes.
func TestAggregatorHealthzDegradeRecover(t *testing.T) {
	node := &fakeNode{}
	node.set([]server.Event{detEvent(1, 1_000_000)})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := &http.Server{Handler: node.handler()}
	go srv.Serve(ln)

	reg := metrics.NewRegistry()
	agg := newTestAggregator(reg, 20*time.Millisecond)
	defer agg.Close()
	agg.Add("lab1", addr)

	api := httptest.NewServer(agg.Handler())
	defer api.Close()

	healthCode := func() int {
		resp, err := http.Get(api.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	waitFor(t, "node up", func() bool { return agg.Manager().Connected() == 1 })
	if code := healthCode(); code != http.StatusOK {
		t.Fatalf("healthy fleet: /healthz = %d, want 200", code)
	}

	_ = srv.Close()
	waitFor(t, "degrade", func() bool { return healthCode() == http.StatusServiceUnavailable })

	var h clusterHealth
	if code := getJSON(t, api.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("/readyz = %d (readiness reports state, it does not gate)", code)
	}
	if h.Nodes != 1 || h.Connected != 0 {
		t.Fatalf("degraded health: %+v", h)
	}

	// Same port comes back — the outage heals without operator action.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: node.handler()}
	go srv2.Serve(ln2)
	defer srv2.Close()
	waitFor(t, "recover", func() bool { return healthCode() == http.StatusOK })
}

// TestAggregatorLiveReplay exercises the fused /api/live catch-up: a
// late subscriber with ?since= replays the fused ledger before
// tailing, and a node restart replay publishes nothing new on the
// feed.
func TestAggregatorLiveReplay(t *testing.T) {
	node := &fakeNode{}
	node.set([]server.Event{detEvent(1, 1_000_000), detEvent(2, 2_000_000), detEvent(3, 3_000_000)})
	ts := httptest.NewServer(node.handler())
	defer ts.Close()

	reg := metrics.NewRegistry()
	agg := newTestAggregator(reg, 5*time.Second)
	defer agg.Close()
	agg.Add("lab1", strings.TrimPrefix(ts.URL, "http://"))

	api := httptest.NewServer(agg.Handler())
	defer api.Close()
	waitFor(t, "initial consume", func() bool { return agg.Fuser().Len() == 3 })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		api.URL+"/api/live?since=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	events := make(chan server.Event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev server.Event
			if json.Unmarshal([]byte(line[len("data: "):]), &ev) == nil {
				events <- ev
			}
		}
	}()
	next := func(what string) server.Event {
		select {
		case ev := <-events:
			return ev
		case <-time.After(3 * time.Second):
			t.Fatalf("timed out waiting for %s", what)
			return server.Event{}
		}
	}

	// Catch-up: fused seqs 2 and 3 replay (1 is behind the cursor).
	if ev := next("replay seq 2"); ev.Seq != 2 || ev.Type != "detection" {
		t.Fatalf("first replayed event: %+v", ev)
	}
	if ev := next("replay seq 3"); ev.Seq != 3 {
		t.Fatalf("second replayed event: %+v", ev)
	}

	// A new packet arrives at the node: it must flow through live.
	node.extend(detEvent(4, 9_000_000))
	if ev := next("live seq 4"); ev.Seq != 4 || ev.Detection == nil {
		t.Fatalf("live event: %+v", ev)
	}

	// Evidence from a second sighting of packet 4 arrives (same span,
	// other detector): published as detection-update, never as a second
	// "detection" — subscribers counting packets stay exact. The update
	// is its own WAL record (seq 5) pointing back at fused id 4.
	upd := detEvent(5, 9_000_000)
	upd.Detection.Detector = "phase"
	node.extend(upd)
	ev := next("detection-update")
	if ev.Type != "detection-update" || ev.Seq != 5 {
		t.Fatalf("merge event: %+v", ev)
	}
	if ev.Detection == nil || ev.Detection.Fused != 4 || !ev.Detection.Merge {
		t.Fatalf("merge event record: %+v", ev.Detection)
	}
}

// TestAggregatorStreamsStalledNode wedges one node's /api/streams and
// asserts the fan-out contract: the merged view still returns within
// StreamsTimeout carrying the healthy node's streams, and the stalled
// node surfaces in the per-node "errors" map instead of hanging — or
// silently truncating — the response.
func TestAggregatorStreamsStalledNode(t *testing.T) {
	good := &fakeNode{}
	good.set([]server.Event{detEvent(1, 1_000_000)})
	tsGood := httptest.NewServer(withStreams(good, server.StreamInfo{ID: 1, Remote: "radioA"}))
	defer tsGood.Close()

	stalled := &fakeNode{}
	stalled.set(nil)
	mux := http.NewServeMux()
	mux.Handle("/", stalled.handler())
	mux.HandleFunc("/api/streams", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // wedged: never answers the inventory poll
	})
	tsStalled := httptest.NewServer(mux)
	defer tsStalled.Close()

	reg := metrics.NewRegistry()
	agg, err := NewAggregator(AggregatorConfig{
		SSEQueue: 64, EvictAfter: -1,
		StallAfter:     5 * time.Second,
		StreamsTimeout: 100 * time.Millisecond,
		MinBackoff:     time.Millisecond,
		MaxBackoff:     10 * time.Millisecond,
		Seed:           1,
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	agg.Add("labA", strings.TrimPrefix(tsGood.URL, "http://"))
	agg.Add("labB", strings.TrimPrefix(tsStalled.URL, "http://"))

	api := httptest.NewServer(agg.Handler())
	defer api.Close()
	waitFor(t, "both nodes subscribed", func() bool { return agg.Manager().Connected() == 2 })

	var body struct {
		Streams []struct {
			ID   uint64 `json:"id"`
			Node string `json:"node"`
		} `json:"streams"`
		Errors map[string]string `json:"errors"`
	}
	begin := time.Now()
	getJSON(t, api.URL+"/api/streams", &body)
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("merged view took %v; the stalled node must not hang it past StreamsTimeout", elapsed)
	}
	if len(body.Streams) != 1 || body.Streams[0].Node != "labA" {
		t.Fatalf("healthy node's streams missing from partial result: %+v", body.Streams)
	}
	if msg, ok := body.Errors["labB"]; !ok || msg == "" {
		t.Fatalf("stalled node not reported in errors map: %+v", body.Errors)
	}
	if _, ok := body.Errors["labA"]; ok {
		t.Fatalf("healthy node wrongly reported failed: %+v", body.Errors)
	}
}

// TestAggregatorRecordFlattening pins the fused→flat record mapping
// the compatibility surfaces rely on.
func TestAggregatorRecordFlattening(t *testing.T) {
	fd := FusedDetection{
		Seq: 7, Family: "wifi", Channel: 6, TimeS: 0.25,
		AbsStart: 5_000_000, AbsEnd: 5_020_000, Confidence: 0.9, Sensors: 2,
		Evidence: []Evidence{
			{Node: "labA", Stream: 3, Detector: "timing", Confidence: 0.8},
			{Node: "labB", Stream: 4, Detector: "phase", Confidence: 0.9},
		},
	}
	rec := fd.record()
	want := history.DetectionRecord{
		Seq: 7, Stream: 3, TimeS: 0.25, Family: "wifi", Detector: "timing",
		AbsStart: 5_000_000, AbsEnd: 5_020_000, Confidence: 0.9, Channel: 6,
	}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("flattened record:\n got %+v\nwant %+v", rec, want)
	}
}
