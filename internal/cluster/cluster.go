// Package cluster is the aggregation tier above rfdumpd: the machinery
// that turns a fleet of independent single-vantage monitors into one
// coherent view of the ether. The RFDump architecture (CoNEXT 2009)
// analyzes what a single radio hears; a campus deployment has many
// radios whose coverage overlaps, so the same packet is heard — and
// detected — by several sensors at once. This package provides the
// three pieces that reconcile those views:
//
//   - discovery: rfdumpd nodes announce themselves with periodic UDP
//     beacons carrying an mDNS-style service record (node id, API
//     address, stream count, sample rate); a Discoverer folds beacons
//     into a live node set with TTL expiry.
//
//   - subscription: a Manager keeps one SSE subscription per node to
//     the rfdumpd /api/live feed, reconnecting with the same jittered
//     exponential backoff the wire transmitter uses, resuming with
//     ?since=<last seq> and detecting node restarts (sequence-number
//     epoch resets) so the dedup ledger holds across them.
//
//   - fusion: a Fuser dedups the same over-the-air packet heard by
//     multiple radios, matching detections by family, channel and
//     time-span overlap in the style of internal/truth's ground-truth
//     matcher, and keeps every sensor's sighting as evidence on the
//     fused record.
//
// The Aggregator composes the three behind the same /api surface
// rfdumpd serves, so existing clients point at a fleet unchanged.
package cluster

import (
	"fmt"

	"rfdump/internal/history"
)

// BeaconMagic versions the discovery datagram; receivers drop anything
// else. Bump it only with the record schema.
const BeaconMagic = "rfdump-cluster/1"

// NodeRecord is the service record a node announces and a Discoverer
// tracks — the minimum a subscriber needs to find and rank a sensor:
// identity, API address, and what it is currently ingesting.
type NodeRecord struct {
	Magic string `json:"magic"`
	// Node is the fleet-unique node id (rfdumpd -node flag; defaults
	// to the hostname).
	Node string `json:"node"`
	// API is the node's HTTP address ("host:port"). An empty or
	// wildcard host is filled in by the receiver from the datagram's
	// source address, mDNS-style, so nodes need not know their own
	// routable IP.
	API string `json:"api"`
	// Rate is the node's ingest sample rate (Hz) and Streams its
	// current stream count — advisory, for operator surfaces.
	Rate    int `json:"rate,omitempty"`
	Streams int `json:"streams,omitempty"`
	// Beacon is a per-node monotone beacon counter (gap = lost
	// datagrams, reset = node restart). Advisory.
	Beacon uint64 `json:"beacon,omitempty"`
}

func (r NodeRecord) validate() error {
	if r.Magic != BeaconMagic {
		return fmt.Errorf("cluster: beacon magic %q (want %q)", r.Magic, BeaconMagic)
	}
	if r.Node == "" {
		return fmt.Errorf("cluster: beacon without node id")
	}
	if r.API == "" {
		return fmt.Errorf("cluster: beacon without api address")
	}
	return nil
}

// Evidence is one sensor's sighting of a fused detection. It is the
// history store's SensorEvidence — fused records persist through the
// store WAL and carry their evidence with them, so the schema lives
// where the persistence does.
type Evidence = history.SensorEvidence

// FusedDetection is one over-the-air event as the cluster understands
// it: every sensor sighting the fuser matched together, under one
// aggregator-wide sequence number.
type FusedDetection struct {
	// Seq is the aggregator's ledger sequence (the /api/live?since=
	// cursor on the fused feed).
	Seq uint64 `json:"seq"`
	// Family and Channel are shared by all evidence (the matcher never
	// merges across either).
	Family  string `json:"family"`
	Channel int    `json:"channel"`
	// TimeS is the earliest sighting's timestamp; AbsStart/AbsEnd the
	// first sighting's span (the canonical span other sightings were
	// matched against).
	TimeS    float64 `json:"t"`
	AbsStart int64   `json:"abs_start"`
	AbsEnd   int64   `json:"abs_end"`
	// Confidence is the best sighting's confidence; Sensors the count
	// of distinct nodes in the evidence.
	Confidence float64 `json:"confidence"`
	Sensors    int     `json:"sensors"`
	// Evidence lists every matched sighting, in arrival order.
	Evidence []Evidence `json:"evidence"`
}

// record flattens the fused detection into the single-node
// DetectionRecord schema, so fleet-unaware clients consume the
// aggregator's /api/detections and /api/live exactly as they would a
// single rfdumpd.
func (f *FusedDetection) record() history.DetectionRecord {
	first := f.Evidence[0]
	return history.DetectionRecord{
		Seq:        f.Seq,
		Stream:     first.Stream,
		TimeS:      f.TimeS,
		Family:     f.Family,
		Detector:   first.Detector,
		AbsStart:   f.AbsStart,
		AbsEnd:     f.AbsEnd,
		Confidence: f.Confidence,
		Channel:    f.Channel,
	}
}
