package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"rfdump/internal/metrics"
	"rfdump/internal/serving"
)

// ManagerConfig configures the fleet subscription manager.
type ManagerConfig struct {
	// Client issues the HTTP requests (default http.DefaultClient; the
	// SSE GET is long-lived, so the client must not set an overall
	// request timeout).
	Client *http.Client
	// OnEvent receives every non-duplicate live event from every node,
	// tagged with the node id. Called from per-node goroutines; must
	// not block for long (it stalls only that node's feed).
	OnEvent func(node string, ev serving.Event)
	// OnState fires on connect (true) and disconnect (false) edges.
	OnState func(node string, connected bool)
	// Reconnect backoff, mirroring wire.ReconnectClient's semantics:
	// exponential from MinBackoff to MaxBackoff with ±Jitter fraction
	// of randomization, reset to MinBackoff after a successful
	// subscription. Defaults: 50ms, 2s, 0.25.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	Jitter     float64
	// Seed fixes the jitter sequence (0 = a fixed default; tests can
	// pin it).
	Seed uint64
	// Types filters the subscription (default "detection" +
	// "detection-update", so a subtree's evidence merges propagate up a
	// broker tree).
	Types []string
	// Clock abstracts backoff sleeps and down-time accounting (default
	// SystemClock; tests inject a fake).
	Clock Clock
	// Registry receives cluster/subscription metrics; nil disables.
	Registry *metrics.Registry
}

// NodeStatus is one node's subscription state for operator surfaces.
type NodeStatus struct {
	Node      string `json:"node"`
	API       string `json:"api"`
	Connected bool   `json:"connected"`
	// LastSeq is the newest node-local event seq consumed; Resets
	// counts detected node restarts (seq epoch resets), Events and
	// Duplicates the per-node consume ledger.
	LastSeq    uint64  `json:"last_seq"`
	Resets     int64   `json:"resets"`
	Events     int64   `json:"events"`
	Duplicates int64   `json:"duplicates"`
	DownS      float64 `json:"down_s,omitempty"`
}

// Manager maintains one live subscription per node in a dynamic node
// set. Each node gets a goroutine running the subscribe loop:
//
//	GET /api/history                  — restart (seq-epoch) probe
//	GET /api/live?types=…&since=<seq> — replay what we missed, then tail
//
// with jittered exponential backoff between attempts, exactly the
// redial discipline wire.ReconnectClient applies on the sample path.
//
// The since-cursor is the dedup line within a node epoch: events at or
// below it were already consumed and are dropped here, so OnEvent sees
// each node-local seq at most once per epoch. Across epochs the cursor
// is useless — a restarted rfdumpd restarts its seq allocator, and its
// replayed history hides behind a stale high cursor (the /api/live
// replay pages `seq > since`). The manager detects the restart by
// probing the node's store bounds: LastSeq below our cursor can only
// mean a new store, so the cursor resets to 0 and the node's history
// replays in full. The replayed events are genuine duplicates of
// already-consumed ones with different seqs — content-level dedup is
// the fuser's job, which is why the fusion matcher is node- and
// seq-agnostic.
type Manager struct {
	cfg    ManagerConfig
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	connects    *metrics.Counter
	disconnects *metrics.Counter
	events      *metrics.Counter
	duplicates  *metrics.Counter
	resets      *metrics.Counter
	connected   *metrics.Gauge

	mu    sync.Mutex
	nodes map[string]*nodeSub
	rng   uint64
}

type nodeSub struct {
	node   string
	api    string
	cancel context.CancelFunc

	mu         sync.Mutex
	connected  bool
	lastSeq    uint64
	resets     int64
	events     int64
	duplicates int64
	downSince  time.Time
}

// NewManager starts an empty manager; Add nodes to subscribe.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.MinBackoff <= 0 {
		cfg.MinBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.25
	}
	if len(cfg.Types) == 0 {
		cfg.Types = []string{"detection", "detection-update"}
	}
	if cfg.Clock == nil {
		cfg.Clock = SystemClock{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:         cfg,
		ctx:         ctx,
		cancel:      cancel,
		connects:    cfg.Registry.Counter("cluster/node_connects"),
		disconnects: cfg.Registry.Counter("cluster/node_disconnects"),
		events:      cfg.Registry.Counter("cluster/events_received"),
		duplicates:  cfg.Registry.Counter("cluster/events_duplicate"),
		resets:      cfg.Registry.Counter("cluster/node_resets"),
		connected:   cfg.Registry.Gauge("cluster/nodes_connected"),
		nodes:       make(map[string]*nodeSub),
		rng:         seed,
	}
}

// Add starts (or re-targets) the subscription for a node. Re-adding an
// existing node with a new API address restarts its loop but keeps its
// seq cursor — the node itself did not restart, only its address
// record changed.
func (m *Manager) Add(node, api string) {
	m.mu.Lock()
	if old, ok := m.nodes[node]; ok {
		if old.api == api {
			m.mu.Unlock()
			return
		}
		old.cancel()
		old.mu.Lock()
		last, resets := old.lastSeq, old.resets
		events, dups := old.events, old.duplicates
		old.mu.Unlock()
		ctx, cancel := context.WithCancel(m.ctx)
		ns := &nodeSub{node: node, api: api, cancel: cancel,
			lastSeq: last, resets: resets, events: events, duplicates: dups,
			downSince: m.cfg.Clock.Now()}
		m.nodes[node] = ns
		m.mu.Unlock()
		m.wg.Add(1)
		go m.run(ctx, ns)
		return
	}
	ctx, cancel := context.WithCancel(m.ctx)
	ns := &nodeSub{node: node, api: api, cancel: cancel, downSince: m.cfg.Clock.Now()}
	m.nodes[node] = ns
	m.mu.Unlock()
	m.wg.Add(1)
	go m.run(ctx, ns)
}

// Remove stops a node's subscription and forgets its cursor.
func (m *Manager) Remove(node string) {
	m.mu.Lock()
	ns, ok := m.nodes[node]
	if ok {
		delete(m.nodes, node)
	}
	m.mu.Unlock()
	if ok {
		ns.cancel()
	}
}

// Nodes snapshots per-node subscription status, sorted by node id.
func (m *Manager) Nodes() []NodeStatus {
	m.mu.Lock()
	subs := make([]*nodeSub, 0, len(m.nodes))
	for _, ns := range m.nodes {
		subs = append(subs, ns)
	}
	m.mu.Unlock()
	out := make([]NodeStatus, 0, len(subs))
	now := m.cfg.Clock.Now()
	for _, ns := range subs {
		ns.mu.Lock()
		st := NodeStatus{
			Node: ns.node, API: ns.api, Connected: ns.connected,
			LastSeq: ns.lastSeq, Resets: ns.resets,
			Events: ns.events, Duplicates: ns.duplicates,
		}
		if !ns.connected {
			st.DownS = now.Sub(ns.downSince).Seconds()
		}
		ns.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Connected counts nodes with a live subscription.
func (m *Manager) Connected() int {
	n := 0
	for _, st := range m.Nodes() {
		if st.Connected {
			n++
		}
	}
	return n
}

// Close stops every subscription and waits for the loops to exit.
func (m *Manager) Close() {
	m.cancel()
	m.wg.Wait()
}

// run is the per-node subscribe loop.
func (m *Manager) run(ctx context.Context, ns *nodeSub) {
	defer m.wg.Done()
	backoff := m.cfg.MinBackoff
	for ctx.Err() == nil {
		connected := m.subscribe(ctx, ns)
		m.setConnected(ns, false)
		if ctx.Err() != nil {
			return
		}
		if connected {
			backoff = m.cfg.MinBackoff // healthy session: start over
		}
		select {
		case <-ctx.Done():
			return
		case <-m.cfg.Clock.After(m.jitter(backoff)):
		}
		backoff *= 2
		if backoff > m.cfg.MaxBackoff {
			backoff = m.cfg.MaxBackoff
		}
	}
}

// jitter spreads a backoff by ±cfg.Jitter, xorshift64 like the wire
// client — cheap, deterministic under a pinned seed, and keeps a fleet
// of managers from thundering onto a node that just came back.
func (m *Manager) jitter(d time.Duration) time.Duration {
	if m.cfg.Jitter <= 0 {
		return d
	}
	m.mu.Lock()
	x := m.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.rng = x
	m.mu.Unlock()
	// [-1,1) from the top 53 bits.
	f := float64(int64(x>>11))/float64(1<<52) - 1
	return d + time.Duration(float64(d)*m.cfg.Jitter*f)
}

// subscribe probes the node's seq epoch, opens the SSE feed at the
// cursor, and consumes until error or cancellation. It reports whether
// a subscription was actually established (resets the caller's
// backoff); every exit is otherwise a retryable disconnect.
func (m *Manager) subscribe(ctx context.Context, ns *nodeSub) bool {
	ns.mu.Lock()
	since := ns.lastSeq
	ns.mu.Unlock()

	// Restart probe: the store's LastSeq is monotone within one node
	// lifetime, so seeing it below our cursor proves the node (and its
	// seq allocator) restarted. Reset the cursor and take the full
	// replay; the fuser dedups the overlap by content.
	if since > 0 {
		stats, err := m.storeStats(ctx, ns.api)
		if err != nil {
			return false
		}
		if stats.LastSeq < since {
			ns.mu.Lock()
			ns.lastSeq = 0
			ns.resets++
			ns.mu.Unlock()
			m.resets.Inc()
			since = 0
		}
	}

	url := fmt.Sprintf("http://%s/api/live?types=%s&since=%d",
		ns.api, strings.Join(m.cfg.Types, ","), since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := m.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}

	m.setConnected(ns, true)
	m.connects.Inc()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event: lines, comments, blank separators
		}
		var ev serving.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			continue
		}
		ns.mu.Lock()
		if ev.Seq <= ns.lastSeq {
			ns.duplicates++
			ns.mu.Unlock()
			m.duplicates.Inc()
			continue
		}
		ns.lastSeq = ev.Seq
		ns.events++
		ns.mu.Unlock()
		m.events.Inc()
		if m.cfg.OnEvent != nil {
			m.cfg.OnEvent(ns.node, ev)
		}
	}
	return true
}

// storeStats fetches /api/history for the restart probe.
func (m *Manager) storeStats(ctx context.Context, api string) (*storeBounds, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/api/history", api), nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: /api/history status %d", resp.StatusCode)
	}
	var st storeBounds
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// storeBounds is the slice of history.Stats the probe needs.
type storeBounds struct {
	LastSeq uint64 `json:"last_seq"`
}

func (m *Manager) setConnected(ns *nodeSub, up bool) {
	ns.mu.Lock()
	changed := ns.connected != up
	ns.connected = up
	if changed && !up {
		ns.downSince = m.cfg.Clock.Now()
	}
	ns.mu.Unlock()
	if !changed {
		return
	}
	if up {
		m.connected.Set(int64(m.Connected()))
	} else {
		m.disconnects.Inc()
		m.connected.Set(int64(m.Connected()))
	}
	if m.cfg.OnState != nil {
		m.cfg.OnState(ns.node, up)
	}
}
