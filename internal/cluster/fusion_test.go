package cluster

import (
	"testing"

	"rfdump/internal/history"
)

// det builds a sighting; spans are in ticks, channel -1 means unknown.
func det(detector string, start, end int64, channel int, conf float64) *history.DetectionRecord {
	return &history.DetectionRecord{
		Family: "wifi", Detector: detector,
		TimeS: float64(start) / 20e6, AbsStart: start, AbsEnd: end,
		Confidence: conf, Channel: channel,
	}
}

func TestFuseCrossSensor(t *testing.T) {
	f := NewFuser(MatchConfig{SlackTicks: 64}, nil)

	fd, res := f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	if res != Created || fd.Sensors != 1 {
		t.Fatalf("first sighting: res=%v sensors=%d", res, fd.Sensors)
	}
	// Same burst at a second sensor: 40 ticks of clock skew, heard a
	// little weaker but detected with higher confidence.
	fd, res = f.Ingest("lab2", 2, det("timing", 10_040, 30_040, 6, 0.9))
	if res != Merged {
		t.Fatalf("skewed second sighting: res=%v, want Merged", res)
	}
	if fd.Sensors != 2 || len(fd.Evidence) != 2 {
		t.Fatalf("fused: sensors=%d evidence=%d, want 2/2", fd.Sensors, len(fd.Evidence))
	}
	if fd.Confidence != 0.9 {
		t.Fatalf("fused confidence %v, want the max 0.9", fd.Confidence)
	}
	if fd.AbsStart != 10_000 {
		t.Fatalf("fused span start %d, want the first sighting's 10000", fd.AbsStart)
	}
	if f.Len() != 1 {
		t.Fatalf("ledger holds %d records, want 1", f.Len())
	}
}

func TestFuseAdjacentChannelsStayDistinct(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	// Perfectly coincident spans on channels 6 and 7: two different
	// packets that happen to overlap in time, never one event.
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	fd, res := f.Ingest("lab2", 2, det("timing", 10_000, 30_000, 7, 0.8))
	if res != Created {
		t.Fatalf("adjacent-channel sighting: res=%v, want Created", res)
	}
	if fd.Sensors != 1 || f.Len() != 2 {
		t.Fatalf("adjacent channels merged: sensors=%d ledger=%d", fd.Sensors, f.Len())
	}
}

func TestFuseUnknownChannelDefersToTime(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, -1, 0.8))
	fd, res := f.Ingest("lab2", 2, det("timing", 10_000, 30_000, 6, 0.8))
	if res != Merged {
		t.Fatalf("unknown-channel sighting refused to merge: res=%v", res)
	}
	if fd.Channel != 6 {
		t.Fatalf("fused channel %d, want backfilled 6", fd.Channel)
	}
}

func TestFuseOneSensorOnly(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	// A packet only one sensor was in range of stands alone, untouched
	// by unrelated traffic elsewhere on the timeline.
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	f.Ingest("lab2", 2, det("timing", 500_000, 520_000, 6, 0.7))
	if f.Len() != 2 {
		t.Fatalf("ledger holds %d, want 2 isolated detections", f.Len())
	}
	for _, fd := range f.Recent(0) {
		if fd.Sensors != 1 || len(fd.Evidence) != 1 {
			t.Fatalf("isolated detection gained evidence: %+v", fd)
		}
	}
}

func TestFuseOutOfOrderArrival(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	// Sensor A reports two packets in order; sensor B's sighting of the
	// FIRST packet arrives after A's second — a slow node or a longer
	// network path. It must still find and join the older record.
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	f.Ingest("lab1", 1, det("timing", 100_000, 120_000, 6, 0.8))
	fd, res := f.Ingest("lab2", 2, det("timing", 10_030, 30_030, 6, 0.9))
	if res != Merged || fd.Sensors != 2 {
		t.Fatalf("late sighting: res=%v sensors=%d, want Merged/2", res, fd.Sensors)
	}
	if fd.AbsStart != 10_000 {
		t.Fatalf("late sighting merged into wrong record (start %d)", fd.AbsStart)
	}
	if f.Len() != 2 {
		t.Fatalf("ledger holds %d, want 2", f.Len())
	}
}

func TestFuseReplayDuplicateGuard(t *testing.T) {
	f := NewFuser(MatchConfig{SlackTicks: 64}, nil)
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	// A restarted lab1 re-streams the same trace: same node, same
	// detector, same span (modulo a few ticks) — the identical sighting
	// re-offered, not a new vantage.
	fd, res := f.Ingest("lab1", 1, det("timing", 10_002, 30_002, 6, 0.8))
	if res != Duplicate {
		t.Fatalf("replayed sighting: res=%v, want Duplicate", res)
	}
	if len(fd.Evidence) != 1 || fd.Sensors != 1 {
		t.Fatalf("duplicate grew the record: evidence=%d sensors=%d", len(fd.Evidence), fd.Sensors)
	}
}

func TestFuseDetectorAgnostic(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	// Timing and phase detectors firing on the same burst within one
	// node are one over-the-air event with two pieces of evidence.
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	fd, res := f.Ingest("lab1", 1, det("phase", 10_005, 29_990, 6, 0.85))
	if res != Merged || len(fd.Evidence) != 2 {
		t.Fatalf("phase sighting: res=%v evidence=%d, want Merged/2", res, len(fd.Evidence))
	}
	if fd.Sensors != 1 {
		t.Fatalf("one node counted as %d sensors", fd.Sensors)
	}
}

func TestFuseFamiliesNeverCross(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	bt := det("hop", 10_000, 30_000, 6, 0.8)
	bt.Family = "bluetooth"
	_, res := f.Ingest("lab2", 2, bt)
	if res != Created || f.Len() != 2 {
		t.Fatalf("cross-family merge: res=%v ledger=%d", res, f.Len())
	}
}

func TestFuseBackToBackPacketsDistinct(t *testing.T) {
	f := NewFuser(MatchConfig{SlackTicks: 64}, nil)
	// A data frame and the ACK that follows it: adjacent spans on the
	// same channel. Slack widening must not glue them together.
	f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	_, res := f.Ingest("lab1", 1, det("timing", 30_200, 31_200, 6, 0.8))
	if res != Created || f.Len() != 2 {
		t.Fatalf("back-to-back packets fused: res=%v ledger=%d", res, f.Len())
	}
}

func TestFuseLedgerCapAndCursors(t *testing.T) {
	f := NewFuser(MatchConfig{LedgerCap: 8, Lookback: 4}, nil)
	for i := 0; i < 20; i++ {
		start := int64(i) * 1_000_000
		f.Ingest("lab1", 1, det("timing", start, start+10_000, 6, 0.8))
	}
	if f.Len() != 8 {
		t.Fatalf("ledger holds %d, want cap 8", f.Len())
	}
	if f.LastSeq() != 20 {
		t.Fatalf("LastSeq %d, want 20", f.LastSeq())
	}
	since := f.Since(15)
	if len(since) != 5 || since[0].Seq != 16 || since[4].Seq != 20 {
		t.Fatalf("Since(15) = %d records [%d..%d], want 5 [16..20]",
			len(since), since[0].Seq, since[len(since)-1].Seq)
	}
	recent := f.Recent(3)
	if len(recent) != 3 || recent[0].Seq != 20 {
		t.Fatalf("Recent(3) newest-first broke: %+v", recent)
	}
}

func TestFuseSnapshotIsolation(t *testing.T) {
	f := NewFuser(MatchConfig{}, nil)
	fd1, _ := f.Ingest("lab1", 1, det("timing", 10_000, 30_000, 6, 0.8))
	fd2, _ := f.Ingest("lab2", 2, det("timing", 10_020, 30_020, 6, 0.9))
	// The first snapshot must not observe the later merge: callers hold
	// copies, not windows into the ledger.
	if len(fd1.Evidence) != 1 {
		t.Fatalf("earlier snapshot grew: evidence=%d", len(fd1.Evidence))
	}
	fd2.Evidence[0].Node = "mutated"
	if got := f.Recent(1)[0].Evidence[0].Node; got == "mutated" {
		t.Fatal("mutating a returned snapshot reached the ledger")
	}
}
