package cluster

import "time"

// Clock abstracts wall time for the cluster tier — discovery TTL
// expiry, manager backoff sleeps and down-time accounting all go
// through it, so tests drive them with a fake clock instead of real
// sleeps (the difference between a deterministic suite and a flaky
// one). The zero configuration everywhere takes SystemClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After fires once after d, like time.After.
	After(d time.Duration) <-chan time.Time
}

// SystemClock is the real wall clock.
type SystemClock struct{}

// Now returns time.Now().
func (SystemClock) Now() time.Time { return time.Now() }

// After returns time.After(d).
func (SystemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
