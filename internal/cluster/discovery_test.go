package cluster

import (
	"encoding/json"
	"net"
	"sync"
	"testing"
	"time"

	"rfdump/internal/metrics"
)

// TestDiscoveryAnnounceExpire walks the full beacon lifecycle over real
// loopback UDP: a node announces with a wildcard API host, the
// discoverer substitutes the datagram's source address, and when the
// beacons stop the node ages out of the set.
func TestDiscoveryAnnounceExpire(t *testing.T) {
	reg := metrics.NewRegistry()
	type edge struct {
		rec   NodeRecord
		alive bool
	}
	var mu sync.Mutex
	var edges []edge
	disc, err := NewDiscoverer(DiscoverConfig{
		Listen: "127.0.0.1:0",
		TTL:    200 * time.Millisecond,
		OnNode: func(rec NodeRecord, alive bool) {
			mu.Lock()
			edges = append(edges, edge{rec, alive})
			mu.Unlock()
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	ann, err := NewAnnouncer(AnnounceConfig{
		Target:   disc.Addr().String(),
		Node:     "lab1",
		API:      "0.0.0.0:7532", // wildcard host: discoverer must fill in the source IP
		Interval: 25 * time.Millisecond,
		Info:     func() (int, int) { return 20_000_000, 2 },
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, "node discovered", func() bool { return len(disc.Nodes()) == 1 })
	rec := disc.Nodes()[0]
	if rec.Node != "lab1" || rec.Rate != 20_000_000 || rec.Streams != 2 {
		t.Fatalf("discovered record wrong: %+v", rec)
	}
	host, port, err := net.SplitHostPort(rec.API)
	if err != nil || host != "127.0.0.1" || port != "7532" {
		t.Fatalf("source substitution failed: API=%q", rec.API)
	}

	if err := ann.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node expiry", func() bool { return len(disc.Nodes()) == 0 })

	mu.Lock()
	defer mu.Unlock()
	if len(edges) != 2 || !edges[0].alive || edges[1].alive {
		t.Fatalf("want exactly one up edge then one down edge, got %+v", edges)
	}
	if edges[1].rec.Node != "lab1" {
		t.Fatalf("expiry edge for %q, want lab1", edges[1].rec.Node)
	}
	if got := reg.Counter("cluster/nodes_expired").Load(); got != 1 {
		t.Fatalf("cluster/nodes_expired = %d, want 1", got)
	}
	if reg.Counter("cluster/beacons_received").Load() == 0 {
		t.Fatal("no beacons counted")
	}
}

// TestDiscoveryRejectsGarbage: datagrams that are not valid beacons —
// broken JSON, or a record missing the protocol magic — never enter
// the node set.
func TestDiscoveryRejectsGarbage(t *testing.T) {
	reg := metrics.NewRegistry()
	called := 0
	disc, err := NewDiscoverer(DiscoverConfig{
		Listen:   "127.0.0.1:0",
		TTL:      time.Second,
		OnNode:   func(NodeRecord, bool) { called++ },
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	conn, err := net.Dial("udp", disc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not a beacon")); err != nil {
		t.Fatal(err)
	}
	wrongMagic, _ := json.Marshal(NodeRecord{Magic: "bogus/9", Node: "evil", API: "127.0.0.1:1"})
	if _, err := conn.Write(wrongMagic); err != nil {
		t.Fatal(err)
	}

	waitFor(t, "bad beacons counted", func() bool {
		return reg.Counter("cluster/beacons_bad").Load() >= 2
	})
	if len(disc.Nodes()) != 0 || called != 0 {
		t.Fatalf("garbage entered the node set: nodes=%d callbacks=%d", len(disc.Nodes()), called)
	}
}
