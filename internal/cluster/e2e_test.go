package cluster

import (
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/server"
	"rfdump/internal/wire"
)

func e2eAddr(b byte) (a [6]byte) {
	for i := range a {
		a[i] = b
	}
	return
}

// clusterDaemon spins an in-process rfdumpd: engine with the standard
// timing+phase detectors and the WiFi analyzer, ingest listener, API
// server.
func clusterDaemon(t *testing.T, clock iq.Clock) (net.Listener, *httptest.Server) {
	t.Helper()
	cfg, err := core.ParseDetectors("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(clock, cfg, func() core.Analyzer { return demod.NewWiFiDemod() })
	d, err := server.NewDaemon(server.Options{Engine: eng, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = d.Serve(ln) }()
	ts := httptest.NewServer(d.APIHandler())
	t.Cleanup(func() {
		ts.Close()
		d.Close()
	})
	return ln, ts
}

// TestClusterEndToEnd is the acceptance path for the aggregation tier:
// one over-the-air reality rendered at two sensor positions with
// overlapping coverage (the far sensor hears everything 3 dB weaker,
// on a clock 24 ticks askew), streamed into two real rfdumpd daemons,
// fused by one aggregator — and the fused ledger verified against the
// master ground truth: every visible packet reported exactly once,
// with cross-sensor evidence.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-daemon e2e in -short")
	}
	multi, err := ether.RunSensors(ether.Config{
		SNRdB: 20,
		Seed:  3,
		Sources: []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: 4, PayloadBytes: 200,
			InterPing: 8000, Requester: e2eAddr(0x11), Responder: e2eAddr(0x22),
			BSSID: e2eAddr(0x33), CFOHz: 2500,
		}},
	}, []ether.Sensor{
		{Name: "near"},
		{Name: "far", PathLossdB: 3, ClockSkew: 24},
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	agg, err := NewAggregator(AggregatorConfig{
		SSEQueue: 256, EvictAfter: -1,
		MinBackoff: time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Seed:       1,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	// Two daemons, one per sensor; subscribe before streaming so the
	// live path (not history replay) carries the detections.
	var wg sync.WaitGroup
	for i, sen := range multi.Sensors {
		ln, ts := clusterDaemon(t, multi.Clock)
		agg.Add(sen.Sensor.Name, strings.TrimPrefix(ts.URL, "http://"))
		wg.Add(1)
		go func(id uint32, samples iq.Samples, addr string) {
			defer wg.Done()
			client, err := wire.Dial(addr, wire.StreamMeta{
				StreamID: id, Rate: multi.Clock.Rate, CenterHz: 2_437_000_000,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if err := client.SendSamples(samples); err != nil {
				t.Error(err)
				return
			}
			if err := client.Close(); err != nil {
				t.Error(err)
			}
		}(uint32(i+1), sen.Samples, ln.Addr().String())
	}
	wg.Wait()

	// Both single-sensor analyses are done once the daemons drain;
	// fusion is done when the ledger stops moving.
	waitFor(t, "fused ledger to settle", func() bool {
		n := agg.Fuser().Len()
		if n == 0 {
			return false
		}
		time.Sleep(150 * time.Millisecond)
		return agg.Fuser().Len() == n
	})

	fused := agg.Fuser().Recent(0)
	family := protocols.WiFi80211b1M.FamilyName()

	// Exactly-once: each visible master-truth packet is covered by
	// exactly one fused detection. Truth spans are in the reference
	// clock; sensor skew (24 ticks) is far below packet scale, so plain
	// overlap attribution is unambiguous.
	twoSensor := 0
	for _, rec := range multi.Truth.Records {
		if !rec.Visible {
			continue
		}
		matches := 0
		for _, fd := range fused {
			if fd.Family != family {
				continue
			}
			if fd.AbsStart < int64(rec.Span.End) && int64(rec.Span.Start) < fd.AbsEnd {
				matches++
				if fd.Sensors == 2 {
					twoSensor++
				}
			}
		}
		if matches != 1 {
			t.Errorf("truth packet %v reported %d times, want exactly 1", rec.Span, matches)
		}
	}
	if t.Failed() {
		t.Fatalf("fused ledger: %d detections for %d truth packets",
			len(fused), multi.Truth.VisibleCount(protocols.WiFi80211b1M))
	}

	// Overlapping coverage must show: the packets both radios heard
	// carry evidence from both (the far sensor at 17 dB still detects).
	if twoSensor == 0 {
		t.Fatalf("no fused detection carries two-sensor evidence: %+v", fused)
	}

	// No phantom detections: every fused record maps back onto some
	// truth packet.
	for _, fd := range fused {
		onAir := false
		for _, rec := range multi.Truth.Records {
			if rec.Visible && fd.AbsStart < int64(rec.Span.End) && int64(rec.Span.Start) < fd.AbsEnd {
				onAir = true
				break
			}
		}
		if !onAir {
			t.Errorf("fused detection %+v matches no truth packet", fd)
		}
	}

	// The cross-sensor dedup actually happened — the fuser merged
	// evidence rather than double-reporting.
	if reg.Counter("cluster/evidence_merged").Load() == 0 {
		t.Fatal("no cross-sensor merges recorded")
	}
	if got := int(reg.Counter("cluster/detections_fused").Load()); got != len(fused) {
		t.Fatalf("fused counter %d != ledger %d", got, len(fused))
	}
}
