package cluster

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rfdump/internal/metrics"
)

// fakeClock is a manually advanced Clock: Now is frozen until Advance,
// and After-waiters fire only when Advance carries time past their
// deadline. Tests drive TTL expiry and reconnect backoff through it
// instead of sleeping out real durations.
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	now := c.now
	kept := c.waiters[:0]
	var fire []chan time.Time
	for _, w := range c.waiters {
		if w.at.After(now) {
			kept = append(kept, w)
		} else {
			fire = append(fire, w.ch)
		}
	}
	c.waiters = kept
	c.mu.Unlock()
	for _, ch := range fire {
		ch <- now
	}
}

// TestDiscoveryExpireFakeClock replays the beacon TTL lifecycle on a
// fake clock: with an hour-long TTL no real test run could expire the
// node, so survival across a refresh and expiry after silence prove
// the sweep reads the injected clock, not the wall.
func TestDiscoveryExpireFakeClock(t *testing.T) {
	clk := newFakeClock()
	reg := metrics.NewRegistry()
	var mu sync.Mutex
	var downs []string
	disc, err := NewDiscoverer(DiscoverConfig{
		Listen: "127.0.0.1:0",
		TTL:    time.Hour,
		Clock:  clk,
		OnNode: func(rec NodeRecord, alive bool) {
			if !alive {
				mu.Lock()
				downs = append(downs, rec.Node)
				mu.Unlock()
			}
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer disc.Close()

	conn, err := net.Dial("udp", disc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	beacon, _ := json.Marshal(NodeRecord{Magic: BeaconMagic, Node: "lab1", API: "127.0.0.1:7532"})
	if _, err := conn.Write(beacon); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "node discovered", func() bool { return len(disc.Nodes()) == 1 })

	// A refresh beacon 40 minutes in restarts the node's TTL window.
	clk.Advance(40 * time.Minute)
	if _, err := conn.Write(beacon); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "refresh beacon ingested", func() bool {
		return reg.Counter("cluster/beacons_received").Load() >= 2
	})

	// 80 minutes after the first beacon — over TTL — but only 40 past
	// the refresh: the sweep runs (the Advance releases its After) and
	// must keep the node.
	clk.Advance(40 * time.Minute)
	time.Sleep(20 * time.Millisecond) // let the released sweep finish
	if len(disc.Nodes()) != 1 {
		t.Fatal("node expired despite a refresh beacon inside TTL")
	}

	// Silence. Advancing past TTL from the refresh expires it; no real
	// time passes.
	waitFor(t, "expiry under fake clock", func() bool {
		clk.Advance(30 * time.Minute)
		return len(disc.Nodes()) == 0
	})

	mu.Lock()
	defer mu.Unlock()
	if len(downs) != 1 || downs[0] != "lab1" {
		t.Fatalf("down edges: %v, want exactly [lab1]", downs)
	}
	if got := reg.Counter("cluster/nodes_expired").Load(); got != 1 {
		t.Fatalf("cluster/nodes_expired = %d, want 1", got)
	}
}

// TestManagerBackoffFakeClock pins the manager's reconnect discipline
// to the injected clock: after a failed subscription the loop parks on
// Clock.After and retries exactly when the fake clock releases it —
// never on its own — and down-time accounting (DownS) counts fake
// seconds, not wall seconds.
func TestManagerBackoffFakeClock(t *testing.T) {
	clk := newFakeClock()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "not yet", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	reg := metrics.NewRegistry()
	m := NewManager(ManagerConfig{
		MinBackoff: time.Second,
		MaxBackoff: 8 * time.Second,
		Jitter:     -1, // exact backoff: the test asserts precise release times
		Clock:      clk,
		Registry:   reg,
	})
	defer m.Close()

	start := clk.Now()
	m.Add("lab1", strings.TrimPrefix(srv.URL, "http://"))

	// The first attempt needs no clock: Add dials immediately.
	waitFor(t, "first attempt", func() bool { return hits.Load() == 1 })

	// Frozen clock, parked loop: real time alone must not retry.
	time.Sleep(50 * time.Millisecond)
	if got := hits.Load(); got != 1 {
		t.Fatalf("retried %d times with the clock frozen, want the loop parked", got-1)
	}

	// Each release of the (jitterless) backoff yields exactly one more
	// attempt; the loop may not have re-armed its After yet, so advance
	// inside the poll.
	waitFor(t, "second attempt", func() bool {
		clk.Advance(time.Second)
		return hits.Load() >= 2
	})

	// DownS is measured on the same clock: the node has been down for
	// exactly the fake time elapsed since Add.
	sts := m.Nodes()
	if len(sts) != 1 || sts[0].Connected {
		t.Fatalf("node status: %+v", sts)
	}
	if want := clk.Now().Sub(start).Seconds(); sts[0].DownS != want {
		t.Fatalf("DownS = %v, want fake-clock elapsed %v", sts[0].DownS, want)
	}
}
