package cluster

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rfdump/internal/metrics"
	"rfdump/internal/server"
	"rfdump/internal/serving/conformance"
)

// TestServingConformance runs the shared-surface contract suite
// against a primed aggregator — the fleet tier's half of the guarantee
// that both tiers serve an identical API (rfdumpd runs the same suite
// in internal/server). This symmetry is what makes broker trees work:
// a parent aggregator subscribes to whatever passes this suite.
func TestServingConformance(t *testing.T) {
	node := &fakeNode{}
	node.set([]server.Event{
		detEvent(1, 1_000_000),
		detEvent(2, 5_000_000),
		detEvent(3, 9_000_000),
	})
	ts := httptest.NewServer(withStreams(node, server.StreamInfo{ID: 1, Remote: "radio"}))
	defer ts.Close()

	reg := metrics.NewRegistry()
	agg, err := NewAggregator(AggregatorConfig{
		SSEQueue: 64, EvictAfter: -1,
		StallAfter: 5 * time.Second,
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		// Quota sized so the suite's pagination walk fits in the burst
		// but its hammer loop does not.
		QueryRPS: 50, QueryBurst: 50,
		Seed:     1,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	agg.Add("lab1", strings.TrimPrefix(ts.URL, "http://"))

	api := httptest.NewServer(agg.Handler())
	defer api.Close()
	waitFor(t, "fleet consumed", func() bool {
		return agg.Fuser().Len() == 3 && agg.Manager().Connected() == 1
	})

	conformance.Run(t, api.URL, conformance.Options{
		MinDetections: 3,
		StreamID:      1, // the fleet id the ledger minted for (lab1, 1)
		Quota:         true,
	})
}
