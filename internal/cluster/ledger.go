package cluster

import (
	"fmt"
	"sync"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/serving"
)

// LedgerConfig configures a durable fused ledger.
type LedgerConfig struct {
	// Match tunes cross-sensor fusion (zero value = defaults).
	Match MatchConfig
	// Store persists the fused WAL. Nil takes a bounded in-memory store
	// (history dies with the process); a disk-backed store makes the
	// fused ledger, its seq epoch and its dedup state survive SIGKILL.
	// The ledger owns the store and closes it in Close.
	Store history.Store
	// Broker, when set, receives one live event per WAL append, under
	// the WAL sequence number and inside the ledger lock — publish
	// order is sequence order, which is what a downstream manager's
	// seq-dedup guard requires.
	Broker *serving.Broker
	// Registry receives cluster/* metrics; nil disables.
	Registry *metrics.Registry
}

// FusedLedger is the aggregator's ledger: content-level fusion (the
// Fuser) journaled through a history.Store. Every sighting that
// changes the fused state — a new fused detection, or new evidence
// merged into one — appends exactly one detection record to the store:
//
//   - Seq is store-assigned (monotone, recovered across restarts), so
//     the aggregator's /api/live and /api/history speak the same
//     sequence discipline a node does;
//   - Fused links the record to its fused-detection id, Merge marks an
//     evidence merge (replayed as "detection-update");
//   - Node/Origin record which sensor's sighting triggered the append
//     (rebuilding the fleet stream-id map on recovery);
//   - Evidence carries the delta — only the sightings this record
//     added — so replaying the WAL front to back reconstructs the
//     fused ledger without double-counting.
//
// Duplicates append nothing: a node's post-restart history replay
// re-offers sightings the ledger already holds, and the store stays
// byte-identical through it. That is the recovery invariant the tree
// smoke test pins down — SIGKILL the aggregator, restart it on the
// same store, and bounds, seqs and dedup state all come back.
type FusedLedger struct {
	fuser  *Fuser
	store  history.Store
	broker *serving.Broker

	walErrs *metrics.Counter

	// mu serializes fuse + WAL append + publish so events reach the
	// broker in sequence order. Publish never blocks (bounded queues),
	// so holding the lock across it is safe.
	mu      sync.Mutex
	streams map[string]map[uint64]uint64 // node → node stream id → fused id
	nextID  uint64
}

// NewFusedLedger builds the ledger and, when the store already holds a
// fused WAL, recovers the fuser ring, stream-id map and seq epoch from
// it.
func NewFusedLedger(cfg LedgerConfig) (*FusedLedger, error) {
	store := cfg.Store
	if store == nil {
		match := cfg.Match.withDefaults()
		var err error
		store, err = history.NewMemory(history.MemoryConfig{
			// The WAL holds creates + merges; give it headroom over the
			// fuser's own retention so a full ledger still replays.
			DetectionCap: 2 * match.LedgerCap,
			Registry:     cfg.Registry,
		})
		if err != nil {
			return nil, err
		}
	}
	l := &FusedLedger{
		fuser:   NewFuser(cfg.Match, cfg.Registry),
		store:   store,
		broker:  cfg.Broker,
		walErrs: cfg.Registry.Counter("cluster/wal_errors"),
		streams: make(map[string]map[uint64]uint64),
	}
	if err := l.recover(); err != nil {
		store.Close()
		return nil, fmt.Errorf("cluster: ledger recovery: %w", err)
	}
	return l, nil
}

// recover replays the persisted WAL: the first record of each fused id
// recreates the fused detection (its canonical span), later ones merge
// their evidence deltas, and Node/Origin rebuild the stream-id map.
func (l *FusedLedger) recover() error {
	var (
		ring     []*FusedDetection
		byID     = make(map[uint64]*FusedDetection)
		cursor   uint64
		maxFused uint64
	)
	for {
		recs, next, more, err := l.store.QueryDetections(history.Query{Cursor: cursor})
		if err != nil {
			return err
		}
		for i := range recs {
			rec := &recs[i]
			if rec.Fused == 0 {
				continue // not a fused WAL record
			}
			if rec.Node != "" {
				byNode := l.streams[rec.Node]
				if byNode == nil {
					byNode = make(map[uint64]uint64)
					l.streams[rec.Node] = byNode
				}
				byNode[rec.Origin] = rec.Stream
			}
			if rec.Stream > l.nextID {
				l.nextID = rec.Stream
			}
			if rec.Fused > maxFused {
				maxFused = rec.Fused
			}
			fd := byID[rec.Fused]
			if fd == nil {
				fd = &FusedDetection{
					Seq: rec.Fused, Family: rec.Family, Channel: rec.Channel,
					TimeS: rec.TimeS, AbsStart: rec.AbsStart, AbsEnd: rec.AbsEnd,
					Confidence: rec.Confidence,
				}
				byID[rec.Fused] = fd
				ring = append(ring, fd)
			}
			fd.Evidence = append(fd.Evidence, rec.Evidence...)
			if rec.Confidence > fd.Confidence {
				fd.Confidence = rec.Confidence
			}
			if rec.TimeS < fd.TimeS {
				fd.TimeS = rec.TimeS
			}
			if fd.Channel < 0 && rec.Channel >= 0 {
				fd.Channel = rec.Channel
			}
		}
		cursor = next
		if !more {
			break
		}
	}
	if len(ring) == 0 {
		return nil
	}
	for _, fd := range ring {
		fd.Sensors = countSensors(fd.Evidence)
	}
	l.fuser.Restore(ring, maxFused)
	return nil
}

// Fuser exposes the fused in-memory ledger (queries, tests, rfbench).
func (l *FusedLedger) Fuser() *Fuser { return l.fuser }

// Store exposes the WAL store (the aggregator's serving ledger and DVR
// query surface run over it).
func (l *FusedLedger) Store() history.Store { return l.store }

// Close releases the WAL store.
func (l *FusedLedger) Close() error { return l.store.Close() }

// FusedStream maps a node-local stream id to its fleet-unique id,
// allocating on first sight. Ids are stable for the ledger's lifetime
// and — under a persistent store — across aggregator restarts.
func (l *FusedLedger) FusedStream(node string, stream uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fusedStreamLocked(node, stream)
}

func (l *FusedLedger) fusedStreamLocked(node string, stream uint64) uint64 {
	byNode, ok := l.streams[node]
	if !ok {
		byNode = make(map[uint64]uint64)
		l.streams[node] = byNode
	}
	if id, ok := byNode[stream]; ok {
		return id
	}
	l.nextID++
	byNode[stream] = l.nextID
	return l.nextID
}

// Streams counts fleet-unique stream ids allocated so far.
func (l *FusedLedger) Streams() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.nextID)
}

// Ingest feeds one sighting from a node (or a child aggregator) into
// the ledger. A record that carries Evidence — an already-fused record
// from one tree level down — is ingested entry by entry, which is what
// makes fusion idempotent across levels: entries the ledger already
// holds are duplicates, new ones merge. A raw single-node record
// synthesizes its one evidence entry.
//
// It returns the WAL record written (nil when the sighting was a pure
// duplicate, or on a WAL write error) and what the fuser did. The WAL
// record is also what the broker published, so a caller chaining
// ledgers (rfbench's tree row) can feed it straight into the next
// level.
func (l *FusedLedger) Ingest(node string, stream uint64, rec *history.DetectionRecord) (*history.DetectionRecord, IngestResult) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fusedStream := l.fusedStreamLocked(node, stream)

	evs := rec.Evidence
	if len(evs) == 0 {
		evs = []Evidence{{
			Node: node, Stream: fusedStream, Seq: rec.Seq, Epoch: rec.Epoch,
			Detector: rec.Detector, Confidence: rec.Confidence,
			TimeS: rec.TimeS, AbsStart: rec.AbsStart, AbsEnd: rec.AbsEnd,
		}}
	} else {
		// Re-scope the provenance stream ids into this ledger's id
		// space but keep the leaf node names: cross-level dedup matches
		// on (node, detector, span), so a diamond topology — two
		// aggregators both feeding the same leaves upward — still
		// counts each sighting once.
		evs = append([]Evidence(nil), evs...)
		for i := range evs {
			evs[i].Stream = fusedStream
		}
	}

	var (
		fd    FusedDetection
		res   = Duplicate
		delta []Evidence
	)
	for _, ev := range evs {
		got, r := l.fuser.IngestEvidence(rec.Family, rec.Channel, ev)
		switch r {
		case Created:
			fd = got
			res = Created
			delta = append(delta, ev)
		case Merged:
			fd = got
			if res != Created {
				res = Merged
			}
			delta = append(delta, ev)
		case Duplicate:
			if res == Duplicate {
				fd = got
			}
		}
	}
	if len(delta) == 0 {
		return nil, Duplicate // nothing new: no WAL append, no event
	}

	wal := history.DetectionRecord{
		Stream:     fusedStream,
		TimeS:      fd.TimeS,
		Family:     fd.Family,
		Detector:   fd.Evidence[0].Detector,
		AbsStart:   fd.AbsStart,
		AbsEnd:     fd.AbsEnd,
		Confidence: fd.Confidence,
		Channel:    fd.Channel,
		Fused:      fd.Seq,
		Merge:      res == Merged,
		Node:       node,
		Origin:     stream,
		Evidence:   delta,
	}
	if err := l.store.AppendDetection(&wal); err != nil {
		l.walErrs.Inc()
		return nil, res
	}
	if l.broker != nil {
		typ := "detection"
		if wal.Merge {
			typ = "detection-update"
		}
		pub := wal
		l.broker.Publish(serving.Event{
			Seq: wal.Seq, Type: typ, Stream: wal.Stream, Detection: &pub,
		})
	}
	return &wal, res
}
