package cluster

import (
	"sync"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
)

// MatchConfig tunes the cross-sensor matcher.
type MatchConfig struct {
	// MinOverlap is the fraction of the shorter span two sightings
	// must overlap to be the same over-the-air event (default 0.5).
	// The same packet heard by two radios overlaps almost completely —
	// their clocks disagree by path delay and skew, a few dozen ticks
	// against bursts tens of thousands of ticks long — while distinct
	// back-to-back packets (a data frame and its ACK, 10 µs apart)
	// never reach half overlap.
	MinOverlap float64
	// SlackTicks widens each candidate span by ±SlackTicks before the
	// overlap test, absorbing cross-sensor clock skew on short bursts
	// (default 64).
	SlackTicks int64
	// Lookback is how many recent fused detections the matcher scans
	// (default 512). It bounds matching cost and sets the reorder
	// horizon: a sighting arriving later than Lookback fused events
	// after its peers starts a new record instead of merging.
	Lookback int
	// LedgerCap bounds retained fused detections (default 65536,
	// oldest evicted first).
	LedgerCap int
}

func (c MatchConfig) withDefaults() MatchConfig {
	if c.MinOverlap <= 0 {
		c.MinOverlap = 0.5
	}
	if c.SlackTicks <= 0 {
		c.SlackTicks = 64
	}
	if c.Lookback <= 0 {
		c.Lookback = 512
	}
	if c.LedgerCap <= 0 {
		c.LedgerCap = 65536
	}
	return c
}

// Fuser matches per-sensor detections into fused cluster detections
// and keeps the fused ledger. The matching rule follows
// internal/truth's ground-truth matcher — interval overlap within a
// family — hardened for the cluster case:
//
//   - same family, always: a WiFi sighting never merges with a
//     Bluetooth one whatever the timing;
//   - compatible channel: two sightings with known channels merge only
//     if the channels are equal, so near-coincident packets on
//     adjacent channels stay distinct; an unknown channel (<0) defers
//     to the time test;
//   - span overlap ≥ MinOverlap of the shorter sighting, with
//     ±SlackTicks of skew allowance.
//
// The matcher is deliberately node- and detector-agnostic: the same
// burst seen by two nodes merges (cross-sensor dedup), and so do two
// detectors firing on the same burst within one node (timing + phase
// on one packet is one event, not two). Every sighting is retained as
// Evidence, so nothing a sensor measured is lost by fusion.
type Fuser struct {
	cfg MatchConfig

	fused  *metrics.Counter
	merged *metrics.Counter
	size   *metrics.Gauge

	mu   sync.Mutex
	seq  uint64
	ring []*FusedDetection // ascending seq, capped at LedgerCap
}

// NewFuser returns a fuser with the given matching rules. reg may be
// nil.
func NewFuser(cfg MatchConfig, reg *metrics.Registry) *Fuser {
	return &Fuser{
		cfg:    cfg.withDefaults(),
		fused:  reg.Counter("cluster/detections_fused"),
		merged: reg.Counter("cluster/evidence_merged"),
		size:   reg.Gauge("cluster/ledger_size"),
	}
}

// IngestResult says what the fuser did with a sighting.
type IngestResult int

const (
	// Created: the sighting started a new fused detection.
	Created IngestResult = iota
	// Merged: the sighting joined an existing fused detection as new
	// evidence.
	Merged
	// Duplicate: the sighting was already held (a node's post-restart
	// history replay re-offering evidence); nothing changed.
	Duplicate
)

// Ingest feeds one sensor sighting into the fuser. stream is the
// aggregator-scoped stream id the sighting maps to. It returns the
// fused record the sighting landed in (a copy, safe to retain) and
// what happened to it.
func (f *Fuser) Ingest(node string, stream uint64, rec *history.DetectionRecord) (FusedDetection, IngestResult) {
	ev := Evidence{
		Node: node, Stream: stream, Seq: rec.Seq, Epoch: rec.Epoch,
		Detector: rec.Detector, Confidence: rec.Confidence,
		TimeS: rec.TimeS, AbsStart: rec.AbsStart, AbsEnd: rec.AbsEnd,
	}
	return f.IngestEvidence(rec.Family, rec.Channel, ev)
}

// IngestEvidence is Ingest at the evidence granularity: one sighting
// already in Evidence form, matched under the given family and
// channel. This is what makes fusion idempotent across broker-tree
// levels — an already-fused record arriving from a child aggregator is
// ingested evidence entry by evidence entry, each passing the same
// duplicate guard a raw sighting does, so evidence the parent already
// holds is recognized instead of double-counted.
func (f *Fuser) IngestEvidence(family string, channel int, ev Evidence) (FusedDetection, IngestResult) {
	f.mu.Lock()
	defer f.mu.Unlock()

	if fd := f.matchLocked(family, channel, ev.AbsStart, ev.AbsEnd); fd != nil {
		// Duplicate evidence guard: a node whose history replayed after
		// a restart re-offers sightings we already hold. Same node +
		// same detector + near-identical span = the same sighting, not
		// a new vantage.
		for _, have := range fd.Evidence {
			if have.Node == ev.Node && have.Detector == ev.Detector &&
				abs64(have.AbsStart-ev.AbsStart) <= f.cfg.SlackTicks &&
				abs64(have.AbsEnd-ev.AbsEnd) <= f.cfg.SlackTicks {
				return f.snapshotLocked(fd), Duplicate
			}
		}
		fd.Evidence = append(fd.Evidence, ev)
		if ev.Confidence > fd.Confidence {
			fd.Confidence = ev.Confidence
		}
		if ev.TimeS < fd.TimeS {
			fd.TimeS = ev.TimeS
		}
		if fd.Channel < 0 && channel >= 0 {
			fd.Channel = channel
		}
		fd.Sensors = countSensors(fd.Evidence)
		f.merged.Inc()
		return f.snapshotLocked(fd), Merged
	}

	f.seq++
	fd := &FusedDetection{
		Seq: f.seq, Family: family, Channel: channel,
		TimeS: ev.TimeS, AbsStart: ev.AbsStart, AbsEnd: ev.AbsEnd,
		Confidence: ev.Confidence, Sensors: 1,
		Evidence: []Evidence{ev},
	}
	f.ring = append(f.ring, fd)
	if len(f.ring) > f.cfg.LedgerCap {
		f.ring = f.ring[len(f.ring)-f.cfg.LedgerCap:]
	}
	f.fused.Inc()
	f.size.Set(int64(len(f.ring)))
	return f.snapshotLocked(fd), Created
}

// Restore replaces the ledger with records reconstructed from a
// persisted WAL (ascending fused seq) and seeds the seq allocator —
// the recovery half of the durable fused ledger. The ring is trimmed
// to LedgerCap (oldest first), mirroring what live ingestion would
// have retained.
func (f *Fuser) Restore(ring []*FusedDetection, seq uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(ring) > f.cfg.LedgerCap {
		ring = ring[len(ring)-f.cfg.LedgerCap:]
	}
	f.ring = ring
	if len(ring) > 0 && ring[len(ring)-1].Seq > seq {
		seq = ring[len(ring)-1].Seq
	}
	f.seq = seq
	f.size.Set(int64(len(f.ring)))
}

// matchLocked scans the lookback window, newest first, for a fused
// record a sighting with the given family/channel/span belongs to.
func (f *Fuser) matchLocked(family string, channel int, absStart, absEnd int64) *FusedDetection {
	lo := len(f.ring) - f.cfg.Lookback
	if lo < 0 {
		lo = 0
	}
	for i := len(f.ring) - 1; i >= lo; i-- {
		fd := f.ring[i]
		if fd.Family != family {
			continue
		}
		if fd.Channel >= 0 && channel >= 0 && fd.Channel != channel {
			continue
		}
		if f.overlaps(fd, absStart, absEnd) {
			return fd
		}
	}
	return nil
}

// overlaps applies the span test against every sighting already in the
// record (any vantage may be the closest clock to the new one).
func (f *Fuser) overlaps(fd *FusedDetection, absStart, absEnd int64) bool {
	for i := range fd.Evidence {
		e := &fd.Evidence[i]
		if spanOverlap(e.AbsStart, e.AbsEnd, absStart, absEnd,
			f.cfg.SlackTicks, f.cfg.MinOverlap) {
			return true
		}
	}
	return false
}

// spanOverlap is the core rule: widen each span by the skew slack,
// then require the intersection to cover MinOverlap of the shorter
// original span.
func spanOverlap(aStart, aEnd, bStart, bEnd, slack int64, minFrac float64) bool {
	ov := min64(aEnd+slack, bEnd+slack) - max64(aStart-slack, bStart-slack)
	if ov <= 0 {
		return false
	}
	short := min64(aEnd-aStart, bEnd-bStart)
	if short <= 0 {
		short = 1
	}
	return float64(ov) >= minFrac*float64(short)
}

// Recent returns up to limit newest fused detections, newest first
// (limit ≤ 0 = all retained).
func (f *Fuser) Recent(limit int) []FusedDetection {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]FusedDetection, 0, n)
	for i := len(f.ring) - 1; i >= len(f.ring)-n; i-- {
		out = append(out, f.snapshotLocked(f.ring[i]))
	}
	return out
}

// Since returns fused detections with Seq > since, ascending — the
// /api/live catch-up replay on the fused feed.
func (f *Fuser) Since(since uint64) []FusedDetection {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []FusedDetection
	for _, fd := range f.ring {
		if fd.Seq > since {
			out = append(out, f.snapshotLocked(fd))
		}
	}
	return out
}

// LastSeq returns the newest fused sequence number assigned.
func (f *Fuser) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Len returns the retained ledger size.
func (f *Fuser) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

func (f *Fuser) snapshotLocked(fd *FusedDetection) FusedDetection {
	cp := *fd
	cp.Evidence = append([]Evidence(nil), fd.Evidence...)
	return cp
}

func countSensors(evs []Evidence) int {
	seen := make(map[string]struct{}, len(evs))
	for _, e := range evs {
		seen[e.Node] = struct{}{}
	}
	return len(seen)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
