// Package ether is the wireless emulator substrate (the stand-in for the
// CMU emulator testbed of Judd & Steenkiste the paper evaluates on): it
// mixes the transmissions scheduled by MAC sources into one complex
// baseband stream at the monitor sample rate, applies per-burst channel
// impairments and the receiver noise floor, and emits exact ground truth.
package ether

import (
	"fmt"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/truth"
)

// Config describes one emulation run.
type Config struct {
	// Rate is the sample rate (DefaultSampleRate when 0).
	Rate int
	// Duration is the trace length in samples. When 0 the trace is
	// auto-sized to the last scheduled transmission (bounded by
	// MaxDuration) plus a small tail of idle noise.
	Duration iq.Tick
	// MaxDuration caps auto-sizing (default 30 s of samples).
	MaxDuration iq.Tick
	// NoiseFloorPower is the mean power of the receiver noise floor.
	// 1.0 keeps SNR arithmetic trivial: a burst at SNR x dB has mean
	// power 10^(x/10).
	NoiseFloorPower float64
	// SNRdB is the default per-burst SNR handed to sources.
	SNRdB float64
	// Seed makes the run reproducible.
	Seed uint64
	// Sources are the transmitters sharing the ether.
	Sources []mac.Source
}

// Result is a completed emulation: the monitored stream plus ground truth.
type Result struct {
	Samples iq.Samples
	Truth   *truth.Set
	Clock   iq.Clock
}

// schedule runs phase 1 of the emulation: every source schedules its
// transmissions against the horizon, and the trace length is resolved
// (auto-sized to the last transmission when cfg.Duration is 0).
func schedule(cfg *Config) (iq.Clock, *dsp.Rand, []mac.Scheduled, iq.Tick, error) {
	if cfg.NoiseFloorPower <= 0 {
		cfg.NoiseFloorPower = 1.0
	}
	clock := iq.NewClock(cfg.Rate)
	horizon := cfg.Duration
	autoSize := horizon <= 0
	if autoSize {
		horizon = cfg.MaxDuration
		if horizon <= 0 {
			horizon = iq.Tick(30 * clock.Rate) // 30 s cap
		}
	}
	rng := dsp.NewRand(cfg.Seed)
	ctx := &mac.Context{
		Clock:    clock,
		Duration: horizon,
		Rng:      rng,
		SNRdB:    cfg.SNRdB,
	}

	var placed []mac.Scheduled
	var maxEnd iq.Tick
	for _, src := range cfg.Sources {
		scheds, err := src.Schedule(ctx)
		if err != nil {
			return clock, nil, nil, 0, fmt.Errorf("ether: %s: %w", src.Name(), err)
		}
		for _, sc := range scheds {
			placed = append(placed, sc)
			if sc.End() > maxEnd {
				maxEnd = sc.End()
			}
		}
	}
	length := horizon
	if autoSize {
		length = maxEnd + iq.Tick(clock.Rate/1000) // 1 ms idle tail
		if length > horizon {
			length = horizon
		}
		if length <= 0 {
			length = iq.Tick(clock.Rate / 100) // 10 ms of pure noise
		}
	}
	return clock, rng, placed, length, nil
}

// Run executes the emulation.
func Run(cfg Config) (*Result, error) {
	clock, rng, placed, length, err := schedule(&cfg)
	if err != nil {
		return nil, err
	}

	// Phase 2: mix.
	stream := make(iq.Samples, length)
	ts := &truth.Set{TraceLen: length, Clock: clock}
	for _, sc := range placed {
		ts.Add(truth.Record{
			Proto:   sc.Burst.Proto,
			Kind:    sc.Burst.Kind,
			Span:    iq.Interval{Start: sc.Start, End: sc.End()},
			Channel: sc.Burst.Channel,
			SNRdB:   sc.Chan.SNRdB,
			Frame:   sc.Burst.Frame,
			Visible: sc.Visible,
		})
		if !sc.Visible {
			continue
		}
		sc.Chan.Apply(sc.Burst, cfg.NoiseFloorPower, clock.Rate)
		stream.Add(sc.Start, sc.Burst.Samples)
	}

	// Receiver noise floor over the whole band.
	dsp.AWGN(rng, stream, cfg.NoiseFloorPower)

	ts.MarkCollisions()
	return &Result{Samples: stream, Truth: ts, Clock: clock}, nil
}

// Sensor is one monitor position in a multi-sensor rendering: the same
// ether heard through a different channel. Path loss attenuates every
// burst's SNR at this sensor; clock skew shifts where the bursts land
// on its sample timeline (sensors do not share a sampling clock).
type Sensor struct {
	// Name labels the sensor's outputs ("sensor0" when empty).
	Name string
	// PathLossdB is subtracted from each burst's scheduled SNR at this
	// sensor (0 = the reference position).
	PathLossdB float64
	// ClockSkew offsets this sensor's sample clock in ticks: a burst
	// scheduled at t lands at t+ClockSkew in this sensor's trace.
	ClockSkew iq.Tick
	// Seed drives this sensor's independent receiver noise (0 derives
	// one from the run seed and the sensor index — two radios never
	// share a noise floor).
	Seed uint64
}

// SensorResult is one sensor's rendering: its trace and the ground
// truth in its own clock (spans skew-shifted, SNRs after path loss).
type SensorResult struct {
	Sensor  Sensor
	Samples iq.Samples
	Truth   *truth.Set
}

// MultiResult is a completed multi-sensor emulation. Truth is the
// master ground truth in the schedule's reference clock (what actually
// happened on the air); each SensorResult holds the same events as
// that sensor observed them.
type MultiResult struct {
	Sensors []*SensorResult
	Truth   *truth.Set
	Clock   iq.Clock
}

// RunSensors executes one emulation heard at N sensor positions: a
// single MAC schedule (one shared reality), rendered once per sensor
// with per-sensor path loss, clock skew and independent receiver
// noise. This is the cluster-test substrate — N synchronized traces
// whose detections should fuse back into exactly the master truth.
func RunSensors(cfg Config, sensors []Sensor) (*MultiResult, error) {
	if len(sensors) == 0 {
		sensors = []Sensor{{}}
	}
	clock, _, placed, length, err := schedule(&cfg)
	if err != nil {
		return nil, err
	}

	master := &truth.Set{TraceLen: length, Clock: clock}
	for _, sc := range placed {
		master.Add(truth.Record{
			Proto:   sc.Burst.Proto,
			Kind:    sc.Burst.Kind,
			Span:    iq.Interval{Start: sc.Start, End: sc.End()},
			Channel: sc.Burst.Channel,
			SNRdB:   sc.Chan.SNRdB,
			Frame:   sc.Burst.Frame,
			Visible: sc.Visible,
		})
	}
	master.MarkCollisions()

	out := &MultiResult{Truth: master, Clock: clock}
	for i, sen := range sensors {
		if sen.Name == "" {
			sen.Name = fmt.Sprintf("sensor%d", i)
		}
		seed := sen.Seed
		if seed == 0 {
			seed = cfg.Seed*0x9e3779b9 + uint64(i) + 1
		}
		rng := dsp.NewRand(seed)
		stream := make(iq.Samples, length)
		ts := &truth.Set{TraceLen: length, Clock: clock}
		for _, sc := range placed {
			start := sc.Start + sen.ClockSkew
			ts.Add(truth.Record{
				Proto:   sc.Burst.Proto,
				Kind:    sc.Burst.Kind,
				Span:    iq.Interval{Start: start, End: start + iq.Tick(len(sc.Burst.Samples))},
				Channel: sc.Burst.Channel,
				SNRdB:   sc.Chan.SNRdB - sen.PathLossdB,
				Frame:   sc.Burst.Frame,
				Visible: sc.Visible,
			})
			if !sc.Visible {
				continue
			}
			// Channel.Apply scales the burst in place, so each sensor
			// renders a private copy of the scheduled waveform.
			b := *sc.Burst
			b.Samples = sc.Burst.Samples.Clone()
			ch := sc.Chan
			ch.SNRdB -= sen.PathLossdB
			ch.Apply(&b, cfg.NoiseFloorPower, clock.Rate)
			stream.Add(start, b.Samples)
		}
		dsp.AWGN(rng, stream, cfg.NoiseFloorPower)
		ts.MarkCollisions()
		out.Sensors = append(out.Sensors, &SensorResult{Sensor: sen, Samples: stream, Truth: ts})
	}
	return out, nil
}

// Utilization returns the fraction of trace samples covered by visible
// transmissions — the "medium utilization" axis of Figure 9.
func (r *Result) Utilization() float64 {
	if r.Truth.TraceLen == 0 {
		return 0
	}
	busy := iq.TotalLen(r.Truth.Spans())
	return float64(busy) / float64(r.Truth.TraceLen)
}
