// Package ether is the wireless emulator substrate (the stand-in for the
// CMU emulator testbed of Judd & Steenkiste the paper evaluates on): it
// mixes the transmissions scheduled by MAC sources into one complex
// baseband stream at the monitor sample rate, applies per-burst channel
// impairments and the receiver noise floor, and emits exact ground truth.
package ether

import (
	"fmt"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/truth"
)

// Config describes one emulation run.
type Config struct {
	// Rate is the sample rate (DefaultSampleRate when 0).
	Rate int
	// Duration is the trace length in samples. When 0 the trace is
	// auto-sized to the last scheduled transmission (bounded by
	// MaxDuration) plus a small tail of idle noise.
	Duration iq.Tick
	// MaxDuration caps auto-sizing (default 30 s of samples).
	MaxDuration iq.Tick
	// NoiseFloorPower is the mean power of the receiver noise floor.
	// 1.0 keeps SNR arithmetic trivial: a burst at SNR x dB has mean
	// power 10^(x/10).
	NoiseFloorPower float64
	// SNRdB is the default per-burst SNR handed to sources.
	SNRdB float64
	// Seed makes the run reproducible.
	Seed uint64
	// Sources are the transmitters sharing the ether.
	Sources []mac.Source
}

// Result is a completed emulation: the monitored stream plus ground truth.
type Result struct {
	Samples iq.Samples
	Truth   *truth.Set
	Clock   iq.Clock
}

// Run executes the emulation.
func Run(cfg Config) (*Result, error) {
	if cfg.NoiseFloorPower <= 0 {
		cfg.NoiseFloorPower = 1.0
	}
	clock := iq.NewClock(cfg.Rate)
	horizon := cfg.Duration
	autoSize := horizon <= 0
	if autoSize {
		horizon = cfg.MaxDuration
		if horizon <= 0 {
			horizon = iq.Tick(30 * clock.Rate) // 30 s cap
		}
	}
	rng := dsp.NewRand(cfg.Seed)
	ctx := &mac.Context{
		Clock:    clock,
		Duration: horizon,
		Rng:      rng,
		SNRdB:    cfg.SNRdB,
	}

	// Phase 1: schedule everything so the trace can be auto-sized.
	var placed []mac.Scheduled
	var maxEnd iq.Tick
	for _, src := range cfg.Sources {
		scheds, err := src.Schedule(ctx)
		if err != nil {
			return nil, fmt.Errorf("ether: %s: %w", src.Name(), err)
		}
		for _, sc := range scheds {
			placed = append(placed, sc)
			if sc.End() > maxEnd {
				maxEnd = sc.End()
			}
		}
	}
	length := horizon
	if autoSize {
		length = maxEnd + iq.Tick(clock.Rate/1000) // 1 ms idle tail
		if length > horizon {
			length = horizon
		}
		if length <= 0 {
			length = iq.Tick(clock.Rate / 100) // 10 ms of pure noise
		}
	}

	// Phase 2: mix.
	stream := make(iq.Samples, length)
	ts := &truth.Set{TraceLen: length, Clock: clock}
	for _, sc := range placed {
		ts.Add(truth.Record{
			Proto:   sc.Burst.Proto,
			Kind:    sc.Burst.Kind,
			Span:    iq.Interval{Start: sc.Start, End: sc.End()},
			Channel: sc.Burst.Channel,
			SNRdB:   sc.Chan.SNRdB,
			Frame:   sc.Burst.Frame,
			Visible: sc.Visible,
		})
		if !sc.Visible {
			continue
		}
		sc.Chan.Apply(sc.Burst, cfg.NoiseFloorPower, clock.Rate)
		stream.Add(sc.Start, sc.Burst.Samples)
	}

	// Receiver noise floor over the whole band.
	dsp.AWGN(rng, stream, cfg.NoiseFloorPower)

	ts.MarkCollisions()
	return &Result{Samples: stream, Truth: ts, Clock: clock}, nil
}

// Utilization returns the fraction of trace samples covered by visible
// transmissions — the "medium utilization" axis of Figure 9.
func (r *Result) Utilization() float64 {
	if r.Truth.TraceLen == 0 {
		return 0
	}
	busy := iq.TotalLen(r.Truth.Spans())
	return float64(busy) / float64(r.Truth.TraceLen)
}
