package ether

import (
	"math"
	"testing"

	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func unicast(pings int) mac.Source {
	return &mac.WiFiUnicast{
		Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: 100,
		InterPing: 20_000,
		Requester: addr(1), Responder: addr(2), BSSID: addr(3),
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(Config{
		Duration: 800_000,
		SNRdB:    20,
		Seed:     1,
		Sources:  []mac.Source{unicast(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 800_000 {
		t.Fatalf("trace length %d", len(res.Samples))
	}
	if res.Truth.TraceLen != 800_000 {
		t.Error("truth length")
	}
	if len(res.Truth.Records) != 12 {
		t.Errorf("truth records %d, want 12", len(res.Truth.Records))
	}
	u := res.Utilization()
	if u <= 0 || u >= 1 {
		t.Errorf("utilization %v", u)
	}
}

func TestNoiseFloorPower(t *testing.T) {
	// An empty ether must measure at the configured noise floor.
	res, err := Run(Config{Duration: 200_000, NoiseFloorPower: 2.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p := res.Samples.MeanPower(); math.Abs(p-2.5) > 0.1 {
		t.Errorf("noise power %v, want 2.5", p)
	}
}

func TestSNRApplied(t *testing.T) {
	res, err := Run(Config{
		Duration: 1_600_000,
		SNRdB:    13,
		Seed:     3,
		Sources:  []mac.Source{unicast(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Measure power inside the first data burst vs in a known idle gap.
	rec := res.Truth.Records[0]
	inBurst := res.Samples[rec.Span.Start:rec.Span.End].MeanPower()
	// SNR 13 dB over floor 1.0: burst power ~ 20, plus noise ~ 21.
	want := iq.FromDB(13) + 1
	if math.Abs(inBurst-want)/want > 0.15 {
		t.Errorf("in-burst power %v, want ~%v", inBurst, want)
	}
}

func TestInvisibleBurstsNotMixed(t *testing.T) {
	// A Bluetooth piconet: most packets are out of band; their spans
	// must carry no signal power.
	res, err := Run(Config{
		Duration: 8_000_000,
		SNRdB:    25,
		Seed:     4,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{LAP: 7, UAP: 8, Pings: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, r := range res.Truth.Records {
		if r.Visible || r.Span.End > iq.Tick(len(res.Samples)) {
			continue
		}
		// Skip spans that overlap a visible record.
		overlapsVisible := false
		for _, o := range res.Truth.Records {
			if o.Visible && o.Span.Overlaps(r.Span) {
				overlapsVisible = true
				break
			}
		}
		if overlapsVisible {
			continue
		}
		p := res.Samples[r.Span.Start:r.Span.End].MeanPower()
		if p > 2 { // just noise (1.0) allowed
			t.Fatalf("invisible burst has power %v", p)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no clean invisible spans with this seed")
	}
}

func TestAutoDuration(t *testing.T) {
	res, err := Run(Config{
		SNRdB:   20,
		Seed:    5,
		Sources: []mac.Source{unicast(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxEnd iq.Tick
	for _, r := range res.Truth.Records {
		if r.Span.End > maxEnd {
			maxEnd = r.Span.End
		}
	}
	if iq.Tick(len(res.Samples)) < maxEnd {
		t.Error("auto-sized trace truncates transmissions")
	}
	if iq.Tick(len(res.Samples)) > maxEnd+16_000 {
		t.Errorf("auto-sized trace too long: %d vs %d", len(res.Samples), maxEnd)
	}
}

func TestAutoDurationEmptyEther(t *testing.T) {
	res, err := Run(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Error("empty ether should still produce noise")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{Duration: 400_000, SNRdB: 20, Seed: 7, Sources: []mac.Source{unicast(1)}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestCollisionsMarked(t *testing.T) {
	// Two broadcast sources talking over each other must produce
	// collisions.
	res, err := Run(Config{
		Duration: 4_000_000,
		SNRdB:    20,
		Seed:     8,
		Sources: []mac.Source{
			&mac.WiFiBroadcast{Rate: protocols.WiFi80211b1M, Count: 20, PayloadBytes: 400, Sender: addr(1), BSSID: addr(3)},
			&mac.WiFiBroadcast{Rate: protocols.WiFi80211b1M, Count: 20, PayloadBytes: 400, Sender: addr(2), BSSID: addr(3)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	collided := 0
	for _, r := range res.Truth.Records {
		if r.Collided {
			collided++
		}
	}
	if collided == 0 {
		t.Error("independent broadcast floods produced no collisions")
	}
}
