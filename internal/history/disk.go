package history

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rfdump/internal/metrics"
)

// The segment store is the durable half of the DVR: records are framed
// with a length and a CRC and appended to segment files that roll at a
// byte threshold. Nothing is ever rewritten — retention deletes whole
// segments from the oldest end, and crash recovery truncates the torn
// tail of whichever segment was mid-write when the process died. A
// reader (query, snippet fetch) opens its own file handle and never
// touches the writer's, so sustained ingest and dashboard queries do
// not serialize on each other.
//
// Frame layout (little-endian):
//
//	u32 length   — of everything after the CRC (type byte + payload)
//	u32 crc32    — IEEE, over the type byte + payload
//	u8  type     — frameDetection | framePacket | frameTile | frameSnippet
//	payload      — JSON for records, binary for snippets
//
// Segment files are named seg-<first-seq>.seg; a restart never appends
// to an old segment (recovery truncates it and a fresh segment opens at
// lastSeq+1), so a torn tail can only ever be the newest frames of the
// newest pre-crash segment.
const (
	frameDetection byte = 1
	framePacket    byte = 2
	frameTile      byte = 3
	frameSnippet   byte = 4

	frameHeader = 9 // u32 length + u32 crc + u8 type

	segPrefix = "seg-"
	segSuffix = ".seg"

	// maxFramePayload rejects absurd lengths during recovery before
	// allocating (a corrupt length field must not OOM the scan).
	maxFramePayload = 64 << 20
)

// DiskConfig configures the segment store.
type DiskConfig struct {
	// Dir holds the segment files (created if missing; required).
	Dir string
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxBytes bounds total retained bytes; the oldest whole segments
	// are deleted past it (default 256 MiB; negative = unbounded).
	MaxBytes int64
	// MaxAge deletes segments whose newest write is older (0 = keep
	// forever). Age uses file modification time, so it survives
	// restarts without a separate clock record.
	MaxAge time.Duration
	// CompactEvery is the background retention cadence (default 15 s;
	// bytes-based retention also runs inline at every segment roll).
	CompactEvery time.Duration
	// TimeIndexStride spaces the per-segment sparse time index: one
	// entry per this many committed bytes (default 64 KiB). Time-bounded
	// queries (?from=) binary-search the index and start scanning at the
	// last entry known to precede the window instead of at byte 0.
	// Negative disables the index (every query scans whole segments —
	// the pre-index behavior, kept reachable for benchmarking).
	TimeIndexStride int64
	// Registry receives history/* instruments; may be nil.
	Registry *metrics.Registry
}

// tIdxEntry is one sparse time-index entry: every frame before off has
// a record time ≤ maxT. maxT is a running maximum, not the time of the
// frame at off, so the guarantee holds even when record timestamps
// arrive out of order (multi-stream segments interleave timelines).
type tIdxEntry struct {
	maxT float64
	off  int64
}

// segMeta is the in-memory index of one segment file.
type segMeta struct {
	path     string
	firstSeq uint64 // from the filename (seq the segment was opened at)
	lastSeq  uint64 // newest record inside (0 = empty)
	minT     float64
	maxT     float64
	size     int64 // committed bytes (frames fully written)
	records  int64
	byType   [frameSnippet + 1]int64 // record counts indexed by frame type
	mtime    time.Time
	snipKeys []snipKey
	// tIndex is the sparse time→offset index (ascending off, and maxT
	// nondecreasing because it is a running max); idxAnchor is the
	// offset of the newest entry, pacing the stride.
	tIndex    []tIdxEntry
	idxAnchor int64
}

// seekOffset returns the byte offset a scan for records with time ≥
// from may start at: the last index entry whose running-max time is
// still below from. Every skipped frame has a record time < from, so
// no matching record is ever jumped over.
func (seg *segMeta) seekOffset(from float64) int64 {
	off := int64(0)
	for _, e := range seg.tIndex {
		if e.maxT >= from {
			break
		}
		off = e.off
	}
	return off
}

// snipLoc locates one snippet frame for random access.
type snipLoc struct {
	path string
	off  int64
}

// Disk is the append-only segment-file Store.
type Disk struct {
	cfg DiskConfig

	mu        sync.Mutex
	segs      []*segMeta // oldest first; the last one is active when f != nil
	f         *os.File   // active segment append handle (nil until first append)
	scratch   []byte     // frame assembly buffer, reused under mu
	snipIndex map[snipKey]snipLoc
	lastSeq   uint64
	appended  int64
	evictedN  int64
	closed    bool

	stop chan struct{}
	done chan struct{}

	appends   *metrics.Counter
	appendB   *metrics.Counter
	evicted   *metrics.Counter
	tornTails *metrics.Counter
	corrupt   *metrics.Counter
	segGauge  *metrics.Gauge
	byteGauge *metrics.Gauge
}

// OpenDisk opens (or creates) a segment store in cfg.Dir, recovering
// whatever a previous process left behind: every segment is scanned,
// frames past the first corruption are truncated away (the torn tail of
// a crash), and the sequence high-water mark is rebuilt so new records
// continue where the dead process stopped.
func OpenDisk(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("history: DiskConfig.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 4 << 20
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 15 * time.Second
	}
	if cfg.TimeIndexStride == 0 {
		cfg.TimeIndexStride = 64 << 10
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	d := &Disk{
		cfg:       cfg,
		snipIndex: make(map[snipKey]snipLoc),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		appends:   cfg.Registry.Counter("history/appends"),
		appendB:   cfg.Registry.Counter("history/append_bytes"),
		evicted:   cfg.Registry.Counter("history/evicted"),
		tornTails: cfg.Registry.Counter("history/torn_tails"),
		corrupt:   cfg.Registry.Counter("history/corrupt_frames"),
		segGauge:  cfg.Registry.Gauge("history/segments"),
		byteGauge: cfg.Registry.Gauge("history/bytes"),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	go d.compactLoop()
	return d, nil
}

// recover scans the directory and rebuilds the index.
func (d *Disk) recover() error {
	entries, err := os.ReadDir(d.cfg.Dir)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names) // zero-padded hex first-seq sorts chronologically
	for _, name := range names {
		path := filepath.Join(d.cfg.Dir, name)
		meta, err := d.scanSegment(path, -1)
		if err != nil {
			return err
		}
		d.segs = append(d.segs, meta)
		if meta.lastSeq > d.lastSeq {
			d.lastSeq = meta.lastSeq
		}
	}
	d.updateGauges()
	return nil
}

// parseSegSeq extracts the first-seq from a segment filename.
func parseSegSeq(name string) uint64 {
	var seq uint64
	fmt.Sscanf(filepath.Base(name), segPrefix+"%016x"+segSuffix, &seq)
	return seq
}

// scanSegment walks every frame of one segment, building its metadata
// and registering snippet locations. limit clips the scan (negative =
// whole file). A frame that fails validation truncates the file there:
// on the recovery path that is the torn tail of a crash, and keeping
// the file and index consistent is worth discarding the bytes.
func (d *Disk) scanSegment(path string, limit int64) (*segMeta, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if limit >= 0 && int64(len(buf)) > limit {
		buf = buf[:limit]
	}
	meta := &segMeta{path: path, firstSeq: parseSegSeq(path)}
	if fi, err := os.Stat(path); err == nil {
		meta.mtime = fi.ModTime()
	}
	valid := int64(0)
	torn := false
	for off := int64(0); off < int64(len(buf)); {
		ftype, payload, next, ok := parseFrame(buf, off)
		if !ok {
			torn = true
			break
		}
		if err := d.indexFrame(meta, ftype, payload, off); err != nil {
			torn = true
			break
		}
		valid, off = next, next
	}
	meta.size = valid
	if torn {
		d.tornTails.Inc()
		d.corrupt.Inc()
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("history: truncating torn tail of %s: %w", path, err)
		}
	}
	return meta, nil
}

// parseFrame validates one frame at off; ok is false for a short or
// corrupt frame.
func parseFrame(buf []byte, off int64) (ftype byte, payload []byte, next int64, ok bool) {
	if off+frameHeader > int64(len(buf)) {
		return 0, nil, 0, false
	}
	length := int64(binary.LittleEndian.Uint32(buf[off:]))
	if length < 1 || length > maxFramePayload || off+8+length > int64(len(buf)) {
		return 0, nil, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[off+4:])
	body := buf[off+8 : off+8+length]
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, 0, false
	}
	return body[0], body[1:], off + 8 + length, true
}

// maybeIndexTime appends a sparse time-index entry for the frame about
// to be indexed at off. It runs before the frame's own time folds into
// meta.maxT, so the entry's running max covers exactly the frames
// preceding off.
func (d *Disk) maybeIndexTime(meta *segMeta, off int64) {
	if d.cfg.TimeIndexStride <= 0 || meta.records == 0 {
		return
	}
	if off-meta.idxAnchor < d.cfg.TimeIndexStride {
		return
	}
	meta.tIndex = append(meta.tIndex, tIdxEntry{maxT: meta.maxT, off: off})
	meta.idxAnchor = off
}

// indexFrame folds one decoded frame into the segment metadata.
func (d *Disk) indexFrame(meta *segMeta, ftype byte, payload []byte, off int64) error {
	var seq uint64
	var stream uint64
	var t float64
	switch ftype {
	case frameDetection:
		var rec DetectionRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		seq, stream, t = rec.Seq, rec.Stream, rec.TimeS
	case framePacket:
		var ev PacketEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			return err
		}
		seq, stream, t = ev.Seq, ev.Stream, ev.TimeS
	case frameTile:
		var tile Tile
		if err := json.Unmarshal(payload, &tile); err != nil {
			return err
		}
		seq, stream, t = tile.Seq, tile.Stream, tile.TimeS
	case frameSnippet:
		s, err := decodeSnippetFrame(payload, true)
		if err != nil {
			return err
		}
		seq, stream, t = s.Seq, s.Stream, snippetTime(s)
		key := snipKey{stream, s.Detection}
		meta.snipKeys = append(meta.snipKeys, key)
		d.snipIndex[key] = snipLoc{path: meta.path, off: off}
	default:
		return fmt.Errorf("history: unknown frame type %d", ftype)
	}
	_ = stream
	d.maybeIndexTime(meta, off)
	meta.records++
	meta.byType[ftype]++
	if seq > meta.lastSeq {
		meta.lastSeq = seq
	}
	if meta.records == 1 || t < meta.minT {
		meta.minT = t
	}
	if t > meta.maxT {
		meta.maxT = t
	}
	return nil
}

// snippetTime derives a snippet's timeline position from its span.
func snippetTime(s *Snippet) float64 {
	if s.Rate <= 0 {
		return 0
	}
	return float64(s.Start) / float64(s.Rate)
}

// append frames one record and writes it to the active segment.
// committed, when non-nil, runs under the store lock right after the
// frame lands, with the segment and frame offset — how the snippet
// index learns its location atomically with the write. t is the
// record's timeline position, folded into the segment's time index.
func (d *Disk) append(ftype byte, seq *uint64, t float64, encode func() []byte, committed func(seg *segMeta, off int64)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if *seq == 0 {
		*seq = d.lastSeq + 1
	}
	if *seq > d.lastSeq {
		d.lastSeq = *seq
	}
	payload := encode()
	n := len(payload) + 1
	if cap(d.scratch) < 8+n {
		d.scratch = make([]byte, 0, 8+n+1024)
	}
	frame := d.scratch[:8+n]
	binary.LittleEndian.PutUint32(frame, uint32(n))
	frame[8] = ftype
	copy(frame[9:], payload)
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(frame[8:]))

	if d.f == nil {
		if err := d.openSegmentLocked(); err != nil {
			return err
		}
	}
	seg := d.segs[len(d.segs)-1]
	off := seg.size
	if _, err := d.f.Write(frame); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	d.maybeIndexTime(seg, off)
	// The frame is fully on the file before the committed size moves, so
	// a concurrent reader clipping at seg.size never sees half a frame.
	seg.size += int64(len(frame))
	seg.mtime = time.Now()
	seg.records++
	seg.byType[ftype]++
	if *seq > seg.lastSeq {
		seg.lastSeq = *seq
	}
	if seg.records == 1 || t < seg.minT {
		seg.minT = t
	}
	if t > seg.maxT {
		seg.maxT = t
	}
	d.appended++
	d.appends.Inc()
	d.appendB.Add(int64(len(frame)))
	if committed != nil {
		committed(seg, off)
	}
	return nil
}

// openSegmentLocked starts a fresh active segment at lastSeq+1.
func (d *Disk) openSegmentLocked() error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, d.lastSeq+1, segSuffix)
	path := filepath.Join(d.cfg.Dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	d.f = f
	d.segs = append(d.segs, &segMeta{
		path:     path,
		firstSeq: d.lastSeq + 1,
		mtime:    time.Now(),
	})
	d.updateGauges()
	return nil
}

// rollLocked closes the active segment when it outgrew the threshold
// and applies retention.
func (d *Disk) rollLocked() {
	if d.f != nil && len(d.segs) > 0 && d.segs[len(d.segs)-1].size >= d.cfg.SegmentBytes {
		d.f.Close()
		d.f = nil
	}
	d.retainLocked(time.Now())
}

// retainLocked deletes whole segments from the oldest end until the
// byte and age budgets hold. The active segment is never deleted.
func (d *Disk) retainLocked(now time.Time) {
	for len(d.segs) > 1 {
		oldest := d.segs[0]
		over := false
		if d.cfg.MaxBytes > 0 && d.totalBytesLocked() > d.cfg.MaxBytes {
			over = true
		}
		if d.cfg.MaxAge > 0 && now.Sub(oldest.mtime) > d.cfg.MaxAge {
			over = true
		}
		if !over {
			break
		}
		os.Remove(oldest.path)
		for _, k := range oldest.snipKeys {
			if loc, ok := d.snipIndex[k]; ok && loc.path == oldest.path {
				delete(d.snipIndex, k)
			}
		}
		d.evictedN += oldest.records
		d.evicted.Add(oldest.records)
		d.segs = d.segs[1:]
	}
	d.updateGauges()
}

// totalBytesLocked sums committed segment sizes.
func (d *Disk) totalBytesLocked() int64 {
	var n int64
	for _, s := range d.segs {
		n += s.size
	}
	return n
}

// updateGauges publishes the retention shape.
func (d *Disk) updateGauges() {
	d.segGauge.Set(int64(len(d.segs)))
	d.byteGauge.Set(d.totalBytesLocked())
}

// compactLoop runs retention in the background so age-based deletion
// happens even when ingest is idle.
func (d *Disk) compactLoop() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.mu.Lock()
			if !d.closed {
				d.retainLocked(time.Now())
			}
			d.mu.Unlock()
		}
	}
}

// AppendDetection implements Store.
func (d *Disk) AppendDetection(rec *DetectionRecord) error {
	err := d.append(frameDetection, &rec.Seq, rec.TimeS, func() []byte {
		b, _ := json.Marshal(rec)
		return b
	}, nil)
	if err != nil {
		return err
	}
	d.afterAppend()
	return nil
}

// AppendPacket implements Store.
func (d *Disk) AppendPacket(ev *PacketEvent) error {
	err := d.append(framePacket, &ev.Seq, ev.TimeS, func() []byte {
		b, _ := json.Marshal(ev)
		return b
	}, nil)
	if err != nil {
		return err
	}
	d.afterAppend()
	return nil
}

// AppendTile implements Store.
func (d *Disk) AppendTile(t *Tile) error {
	err := d.append(frameTile, &t.Seq, t.TimeS, func() []byte {
		b, _ := json.Marshal(t)
		return b
	}, nil)
	if err != nil {
		return err
	}
	d.afterAppend()
	return nil
}

// AppendSnippet implements Store. The IQ payload is serialized into the
// frame immediately; s.IQ is not retained.
func (d *Disk) AppendSnippet(s *Snippet) error {
	err := d.append(frameSnippet, &s.Seq, snippetTime(s), func() []byte {
		return encodeSnippetFrame(s)
	}, func(seg *segMeta, off int64) {
		key := snipKey{s.Stream, s.Detection}
		seg.snipKeys = append(seg.snipKeys, key)
		d.snipIndex[key] = snipLoc{path: seg.path, off: off}
	})
	if err != nil {
		return err
	}
	d.afterAppend()
	return nil
}

// afterAppend applies roll + retention outside the append fast path's
// critical section boundaries (still serialized by mu).
func (d *Disk) afterAppend() {
	d.mu.Lock()
	d.rollLocked()
	d.mu.Unlock()
}

// snapshotSegs copies the segment index for lock-free file reads.
func (d *Disk) snapshotSegs() []segMeta {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]segMeta, len(d.segs))
	for i, s := range d.segs {
		out[i] = *s
	}
	return out
}

// scanRecords streams every frame of the wanted type in one segment
// through fn (stop by returning false). Readers use their own snapshot
// of the committed size; a segment deleted underneath them simply
// yields nothing.
func scanRecords(seg segMeta, want byte, fn func(payload []byte) bool) {
	scanRecordsFrom(seg, want, 0, fn)
}

// scanRecordsFrom is scanRecords starting at a frame-aligned byte
// offset (a sparse time-index entry): only the tail of the file from
// startOff to the committed size is read and parsed.
func scanRecordsFrom(seg segMeta, want byte, startOff int64, fn func(payload []byte) bool) {
	if startOff >= seg.size {
		return
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return
	}
	buf := make([]byte, seg.size-startOff)
	n, _ := f.ReadAt(buf, startOff)
	f.Close()
	buf = buf[:n]
	for off := int64(0); off < int64(len(buf)); {
		ftype, payload, next, ok := parseFrame(buf, off)
		if !ok {
			return
		}
		if ftype == want && !fn(payload) {
			return
		}
		off = next
	}
}

// segMatches is the coarse per-segment query filter.
func segMatches(seg segMeta, q Query) bool {
	if seg.records == 0 || seg.lastSeq <= q.Cursor {
		return false
	}
	if q.To > 0 && seg.minT >= q.To {
		return false
	}
	return seg.maxT >= q.From
}

// queryDisk pages records of one type across segments.
func queryDisk[T any](d *Disk, want byte, q Query,
	decode func([]byte) (T, bool), key func(T) (uint64, uint64, float64)) ([]T, uint64, bool, error) {
	limit := q.limit()
	var out []T
	next := q.Cursor
	more := false
	for _, seg := range d.snapshotSegs() {
		if more {
			break
		}
		if !segMatches(seg, q) {
			continue
		}
		// Time-bounded queries seek via the sparse index instead of
		// scanning the whole segment.
		startOff := int64(0)
		if q.From > 0 {
			startOff = seg.seekOffset(q.From)
		}
		scanRecordsFrom(seg, want, startOff, func(payload []byte) bool {
			v, ok := decode(payload)
			if !ok {
				return true
			}
			seq, stream, ts := key(v)
			if seq <= q.Cursor || !q.matchStream(stream) || !q.matchTime(ts) {
				return true
			}
			if len(out) == limit {
				more = true
				return false
			}
			out = append(out, v)
			next = seq
			return true
		})
	}
	return out, next, more, nil
}

// maxRecent bounds an unlimited Recent* scan on the disk store (the
// memory store is naturally bounded by its rings; a month of segments
// is not).
const maxRecent = 4096

// recentDisk returns the newest limit records of one type.
func recentDisk[T any](d *Disk, want byte, stream uint64, limit int,
	decode func([]byte) (T, bool), streamOf func(T) uint64) []T {
	if limit <= 0 || limit > maxRecent {
		limit = maxRecent
	}
	segs := d.snapshotSegs()
	var chunks [][]T
	total := 0
	for i := len(segs) - 1; i >= 0 && total < limit; i-- {
		var in []T
		scanRecords(segs[i], want, func(payload []byte) bool {
			if v, ok := decode(payload); ok && (stream == 0 || streamOf(v) == stream) {
				in = append(in, v)
			}
			return true
		})
		if len(in) > 0 {
			chunks = append(chunks, in)
			total += len(in)
		}
	}
	out := make([]T, 0, total)
	for i := len(chunks) - 1; i >= 0; i-- {
		out = append(out, chunks[i]...)
	}
	if len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// RecentDetections implements Store.
func (d *Disk) RecentDetections(stream uint64, limit int) []DetectionRecord {
	return recentDisk(d, frameDetection, stream, limit, decodeDetection,
		func(r DetectionRecord) uint64 { return r.Stream })
}

// RecentPackets implements Store.
func (d *Disk) RecentPackets(stream uint64, limit int) []PacketEvent {
	return recentDisk(d, framePacket, stream, limit, decodePacket,
		func(e PacketEvent) uint64 { return e.Stream })
}

// QueryDetections implements Store.
func (d *Disk) QueryDetections(q Query) ([]DetectionRecord, uint64, bool, error) {
	return queryDisk(d, frameDetection, q, decodeDetection,
		func(r DetectionRecord) (uint64, uint64, float64) { return r.Seq, r.Stream, r.TimeS })
}

// QueryPackets implements Store.
func (d *Disk) QueryPackets(q Query) ([]PacketEvent, uint64, bool, error) {
	return queryDisk(d, framePacket, q, decodePacket,
		func(e PacketEvent) (uint64, uint64, float64) { return e.Seq, e.Stream, e.TimeS })
}

// QueryTiles implements Store.
func (d *Disk) QueryTiles(q Query) ([]Tile, uint64, bool, error) {
	return queryDisk(d, frameTile, q, decodeTile,
		func(t Tile) (uint64, uint64, float64) { return t.Seq, t.Stream, t.TimeS })
}

func decodeDetection(payload []byte) (DetectionRecord, bool) {
	var rec DetectionRecord
	return rec, json.Unmarshal(payload, &rec) == nil
}

func decodePacket(payload []byte) (PacketEvent, bool) {
	var ev PacketEvent
	return ev, json.Unmarshal(payload, &ev) == nil
}

func decodeTile(payload []byte) (Tile, bool) {
	var t Tile
	return t, json.Unmarshal(payload, &t) == nil
}

// Snippet implements Store via the random-access index.
func (d *Disk) Snippet(stream, detection uint64) (*Snippet, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	loc, ok := d.snipIndex[snipKey{stream, detection}]
	d.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	f, err := os.Open(loc.path)
	if err != nil {
		return nil, ErrNotFound // retention raced the lookup
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], loc.off); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	length := int64(binary.LittleEndian.Uint32(hdr[:]))
	if length < 1 || length > maxFramePayload {
		return nil, fmt.Errorf("history: snippet frame at %s+%d has corrupt length %d", loc.path, loc.off, length)
	}
	body := make([]byte, length)
	if _, err := f.ReadAt(body, loc.off+8); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(hdr[4:]) {
		d.corrupt.Inc()
		return nil, fmt.Errorf("history: snippet frame at %s+%d failed CRC", loc.path, loc.off)
	}
	if body[0] != frameSnippet {
		return nil, fmt.Errorf("history: frame at %s+%d is type %d, not a snippet", loc.path, loc.off, body[0])
	}
	return decodeSnippetFrame(body[1:], false)
}

// encodeSnippetFrame serializes a snippet payload:
//
//	u64 seq, u64 stream, u64 detection, u32 epoch, u32 rate,
//	i64 start, i64 end, u32 n, n × (f32 I, f32 Q) little-endian
func encodeSnippetFrame(s *Snippet) []byte {
	out := make([]byte, 48+len(s.IQ)*8)
	binary.LittleEndian.PutUint64(out[0:], s.Seq)
	binary.LittleEndian.PutUint64(out[8:], s.Stream)
	binary.LittleEndian.PutUint64(out[16:], s.Detection)
	binary.LittleEndian.PutUint32(out[24:], s.Epoch)
	binary.LittleEndian.PutUint32(out[28:], uint32(s.Rate))
	binary.LittleEndian.PutUint64(out[32:], uint64(s.Start))
	binary.LittleEndian.PutUint64(out[40:], uint64(len(s.IQ)))
	copy(out[48:], encodeIQ(s.IQ))
	// End is derivable (Start + n) but stored spans may clip; rederive.
	return out
}

// decodeSnippetFrame parses an encoded snippet. metaOnly skips the IQ
// copy (the recovery scan only needs the index fields).
func decodeSnippetFrame(payload []byte, metaOnly bool) (*Snippet, error) {
	if len(payload) < 48 {
		return nil, fmt.Errorf("history: snippet payload too short (%d bytes)", len(payload))
	}
	n := binary.LittleEndian.Uint64(payload[40:])
	if uint64(len(payload)-48) != n*8 {
		return nil, fmt.Errorf("history: snippet declares %d samples but payload holds %d bytes", n, len(payload)-48)
	}
	s := &Snippet{
		Seq:       binary.LittleEndian.Uint64(payload[0:]),
		Stream:    binary.LittleEndian.Uint64(payload[8:]),
		Detection: binary.LittleEndian.Uint64(payload[16:]),
		Epoch:     binary.LittleEndian.Uint32(payload[24:]),
		Rate:      int(binary.LittleEndian.Uint32(payload[28:])),
		Start:     int64(binary.LittleEndian.Uint64(payload[32:])),
	}
	s.End = s.Start + int64(n)
	if !metaOnly {
		s.IQ = decodeIQ(payload[48:])
	}
	return s, nil
}

// LastSeq implements Store.
func (d *Disk) LastSeq() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastSeq
}

// Stats implements Store. Retained per-type counts would need a full
// rescan, so the segment store reports total records per segment
// instead: Detections carries the total and the per-type fields stay 0
// except Snippets (indexed exactly).
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Stats{
		Kind:     "segment",
		LastSeq:  d.lastSeq,
		Appended: d.appended,
		Evicted:  d.evictedN,
		Bytes:    d.totalBytesLocked(),
		Segments: len(d.segs),
		Snippets: int64(len(d.snipIndex)),
	}
	first := true
	for _, s := range d.segs {
		st.Detections += s.byType[frameDetection]
		st.Packets += s.byType[framePacket]
		st.Tiles += s.byType[frameTile]
		if s.records == 0 {
			continue
		}
		if first || s.minT < st.OldestTimeS {
			st.OldestTimeS = s.minT
		}
		if s.maxT > st.NewestTimeS {
			st.NewestTimeS = s.maxT
		}
		first = false
	}
	return st
}

// Close implements Store: stops compaction and closes the active
// segment. Committed frames are already on the file (every append is a
// single write), so close adds no flush step beyond the handle close.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	var err error
	if d.f != nil {
		err = d.f.Close()
		d.f = nil
	}
	d.mu.Unlock()
	close(d.stop)
	<-d.done
	return err
}

// ensure interface conformance for both stores.
var (
	_ Store = (*Memory)(nil)
	_ Store = (*Disk)(nil)
)
