package history

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openDir opens a disk store over dir with small segments so tests
// exercise rolling without megabytes of records.
func openDir(t *testing.T, dir string, cfg DiskConfig) *Disk {
	t.Helper()
	cfg.Dir = dir
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 4 << 10
	}
	d, err := OpenDisk(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// fillDisk appends n detections plus a snippet every 10th.
func fillDisk(t *testing.T, d *Disk, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := det(1, float64(i)*0.001)
		if err := d.AppendDetection(rec); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := d.AppendSnippet(snip(1, rec.Seq, 128)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDiskSurvivesReopen is the core durability claim: everything a
// process appended (without any explicit flush or clean close) is there
// when the directory is reopened, and sequencing continues past the old
// high-water mark. Not closing the first store models a SIGKILL — each
// append is a single write(2), so the kernel has the bytes even though
// the process never said goodbye.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1 := openDir(t, dir, DiskConfig{})
	fillDisk(t, d1, 100)
	lastSeq := d1.LastSeq()
	wantSnip, err := d1.Snippet(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No Close: the process "dies" here.

	d2 := openDir(t, dir, DiskConfig{})
	defer d2.Close()
	if got := d2.LastSeq(); got != lastSeq {
		t.Fatalf("recovered LastSeq = %d, want %d", got, lastSeq)
	}
	recs, _, _, err := d2.QueryDetections(Query{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("recovered %d detections, want 100", len(recs))
	}
	// Recovery recounts records by type, not as one lumped total.
	if st := d2.Stats(); st.Detections != 100 || st.Packets != 0 || st.Snippets != 10 {
		t.Fatalf("recovered per-type stats: %+v", st)
	}
	got, err := d2.Snippet(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IQ) != len(wantSnip.IQ) || got.IQ[5] != wantSnip.IQ[5] {
		t.Fatal("recovered snippet does not match the original")
	}
	rec := det(1, 0.5)
	if err := d2.AppendDetection(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq <= lastSeq {
		t.Fatalf("post-recovery seq %d does not continue past %d", rec.Seq, lastSeq)
	}
	d1.Close()
}

// TestDiskTornTailTruncated crashes mid-frame: garbage appended to the
// newest segment (what an interrupted write leaves) must be truncated
// away on reopen, with every whole frame before it intact.
func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d1 := openDir(t, dir, DiskConfig{})
	fillDisk(t, d1, 50)
	d1.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	newest := segs[len(segs)-1]
	before, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible torn frame: a length header promising more than is there.
	if _, err := f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := openDir(t, dir, DiskConfig{})
	defer d2.Close()
	after, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", after.Size(), before.Size())
	}
	recs, _, _, err := d2.QueryDetections(Query{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("recovered %d detections after torn tail, want 50", len(recs))
	}
}

// TestDiskMidFileCorruption flips a byte inside a committed frame: the
// CRC catches it and recovery keeps the valid prefix.
func TestDiskMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	d1 := openDir(t, dir, DiskConfig{SegmentBytes: 1 << 20})
	for i := 0; i < 40; i++ {
		if err := d1.AppendDetection(det(1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	d1.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, have %d", len(segs))
	}
	buf, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(segs[0], buf, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDir(t, dir, DiskConfig{})
	defer d2.Close()
	recs, _, _, err := d2.QueryDetections(Query{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= 40 {
		t.Fatalf("recovered %d detections, want a valid prefix strictly between 0 and 40", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("prefix broken at %d: seq %d", i, r.Seq)
		}
	}
}

// TestDiskRetentionByBytes proves old segments (and their snippets)
// fall off the back while new appends continue.
func TestDiskRetentionByBytes(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir, DiskConfig{SegmentBytes: 2 << 10, MaxBytes: 8 << 10})
	fillDisk(t, d, 400)
	defer d.Close()

	st := d.Stats()
	if st.Bytes > 16<<10 {
		t.Fatalf("retention did not bound bytes: %d", st.Bytes)
	}
	if st.Evicted == 0 {
		t.Fatal("nothing evicted despite the byte budget")
	}
	if st.Segments < 1 {
		t.Fatal("no segments left")
	}
	// The earliest records are gone; the newest survive.
	recs, _, _, err := d.QueryDetections(Query{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].Seq == 1 {
		t.Fatalf("oldest record still present after retention: %+v", recs)
	}
	if _, err := d.Snippet(1, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snippet in evicted segment: err = %v, want ErrNotFound", err)
	}
	tail := d.RecentDetections(1, 1)
	if len(tail) != 1 || tail[0].Seq != d.LastSeq() {
		t.Fatalf("newest record missing after retention: %+v", tail)
	}
}

// TestDiskRetentionByAge backdates old segments and checks the
// compactor deletes them.
func TestDiskRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir, DiskConfig{SegmentBytes: 2 << 10, MaxAge: time.Hour, MaxBytes: -1})
	fillDisk(t, d, 200)
	defer d.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("want several segments, have %d", len(segs))
	}
	old := time.Now().Add(-2 * time.Hour)
	for _, p := range segs[:len(segs)-1] {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Backdate the in-memory index too (mtime was cached at append) and
	// run one retention pass as the compactor would.
	d.mu.Lock()
	for _, s := range d.segs[:len(d.segs)-1] {
		s.mtime = old
	}
	d.retainLocked(time.Now())
	d.mu.Unlock()

	st := d.Stats()
	if st.Segments != 1 {
		t.Fatalf("age retention left %d segments, want 1", st.Segments)
	}
	if st.Evicted == 0 {
		t.Fatal("age retention evicted nothing")
	}
}

// TestDiskSegmentRoll checks segments actually roll at the byte
// threshold and queries stitch across them.
func TestDiskSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir, DiskConfig{SegmentBytes: 1 << 10, MaxBytes: -1})
	fillDisk(t, d, 100)
	defer d.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("expected several rolled segments, have %d", len(segs))
	}
	recs, _, _, err := d.QueryDetections(Query{Limit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 100 {
		t.Fatalf("cross-segment query returned %d, want 100", len(recs))
	}
}
