package history

import (
	"fmt"
	"testing"
	"time"
)

// fillIndexed writes n detection records with deliberately interleaved
// timelines: two streams whose timestamps are offset against each
// other, so record times within a segment are NOT monotone — the case
// the running-max index entries must stay correct under.
func fillIndexed(t testing.TB, d *Disk, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		stream := uint64(1 + i%2)
		ts := float64(i/2) * 1e-3
		if stream == 2 {
			ts += 0.4e-3 // stream 2 lags: timestamps interleave out of order
		}
		rec := &DetectionRecord{
			Stream: stream, TimeS: ts, Family: "wifi", Detector: "timing",
			AbsStart: int64(i) * 100, AbsEnd: int64(i)*100 + 80, Confidence: 0.9,
			Channel: 6,
		}
		if err := d.AppendDetection(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTimeIndexSeekMatchesScan pins the sparse index's safety property:
// a ?from= query through the index returns byte-identical results to a
// full-segment scan, including with out-of-order record times, across
// both the append-built index and the recovery-built one.
func TestTimeIndexSeekMatchesScan(t *testing.T) {
	dir := t.TempDir()
	open := func(stride int64) *Disk {
		d, err := OpenDisk(DiskConfig{
			Dir: dir, SegmentBytes: 16 << 10, TimeIndexStride: stride,
			CompactEvery: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	d := open(512)
	fillIndexed(t, d, 4000)
	queries := []Query{
		{From: 0.5, Limit: 100},
		{From: 1.0, To: 1.2, Limit: 1000},
		{From: 1.9, Limit: 1000},
		{Stream: 2, From: 0.7, Limit: 500},
		{From: 0.0004, To: 0.0008, Limit: 50}, // straddles the interleave offset
	}
	run := func(d *Disk, q Query) []DetectionRecord {
		out, _, _, err := d.QueryDetections(q)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	appendBuilt := make([][]DetectionRecord, len(queries))
	for i, q := range queries {
		appendBuilt[i] = run(d, q)
		if len(appendBuilt[i]) == 0 {
			t.Fatalf("query %d returned nothing; test data or query bounds are wrong", i)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery-built index must answer identically.
	d = open(512)
	for i, q := range queries {
		got := run(d, q)
		if fmt.Sprint(got) != fmt.Sprint(appendBuilt[i]) {
			t.Fatalf("query %d: recovered index answers differ (%d vs %d records)",
				i, len(got), len(appendBuilt[i]))
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Index disabled (full scans) must also answer identically — the
	// index is an access-path optimization, never a semantic change.
	d = open(-1)
	defer d.Close()
	for i, q := range queries {
		got := run(d, q)
		if fmt.Sprint(got) != fmt.Sprint(appendBuilt[i]) {
			t.Fatalf("query %d: unindexed scan answers differ (%d vs %d records)",
				i, len(got), len(appendBuilt[i]))
		}
	}
}

// TestTimeIndexActuallySeeks proves the index is engaged: with a tight
// stride the active segment accumulates entries, and a late-window
// query's seek offset lands past byte 0.
func TestTimeIndexActuallySeeks(t *testing.T) {
	d, err := OpenDisk(DiskConfig{
		Dir: t.TempDir(), SegmentBytes: 1 << 30, TimeIndexStride: 1024,
		CompactEvery: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fillIndexed(t, d, 4000)
	segs := d.snapshotSegs()
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	seg := segs[0]
	if len(seg.tIndex) == 0 {
		t.Fatal("no sparse index entries built")
	}
	off := seg.seekOffset(1.5)
	if off == 0 {
		t.Fatal("seekOffset(1.5) = 0: query would scan the whole segment")
	}
	if off >= seg.size {
		t.Fatalf("seekOffset(1.5) = %d beyond committed size %d", off, seg.size)
	}
}

// benchQueryFrom measures a late ?from= window against a prefilled
// store — the DVR "jump to five minutes ago" access pattern.
func benchQueryFrom(b *testing.B, stride int64) {
	d, err := OpenDisk(DiskConfig{
		Dir: b.TempDir(), SegmentBytes: 4 << 20, TimeIndexStride: stride,
		CompactEvery: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	fillIndexed(b, d, 60_000)
	q := Query{From: 14.9, Limit: 200} // newest ~1% of a 15 s timeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, _, err := d.QueryDetections(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkQueryFromIndexed(b *testing.B) { benchQueryFrom(b, 64<<10) }
func BenchmarkQueryFromScan(b *testing.B)    { benchQueryFrom(b, -1) }
