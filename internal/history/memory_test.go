package history

import (
	"errors"
	"testing"
)

// TestMemoryRejectsNegativeCaps: a negative capacity is a caller bug,
// reported loudly instead of silently defaulted (the old hub behavior).
func TestMemoryRejectsNegativeCaps(t *testing.T) {
	for _, cfg := range []MemoryConfig{
		{DetectionCap: -1},
		{PacketCap: -5},
		{TileCap: -1},
		{SnippetCap: -1},
		{SnippetMaxBytes: -1},
	} {
		if _, err := NewMemory(cfg); err == nil {
			t.Fatalf("NewMemory(%+v) accepted a negative capacity", cfg)
		}
	}
	if _, err := NewMemory(MemoryConfig{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

// TestMemoryEvictionDuringPagination is the REST pagination edge case
// the issue calls out: a client paging with a cursor while the ring
// evicts underneath must see no duplicates and no reordering — just a
// gap where eviction overtook it.
func TestMemoryEvictionDuringPagination(t *testing.T) {
	m, err := NewMemory(MemoryConfig{DetectionCap: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := m.AppendDetection(det(1, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	page1, next, more, err := m.QueryDetections(Query{Limit: 8})
	if err != nil || len(page1) != 8 || !more {
		t.Fatalf("page1: %d records, more=%v, err=%v", len(page1), more, err)
	}

	// The ring turns over completely between pages.
	for i := 0; i < 32; i++ {
		if err := m.AppendDetection(det(1, float64(100+i))); err != nil {
			t.Fatal(err)
		}
	}

	page2, _, _, err := m.QueryDetections(Query{Limit: 100, Cursor: next})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, r := range page1 {
		seen[r.Seq] = true
	}
	prev := next
	for _, r := range page2 {
		if seen[r.Seq] {
			t.Fatalf("seq %d served twice across eviction", r.Seq)
		}
		if r.Seq <= prev {
			t.Fatalf("page2 reordered: seq %d after %d", r.Seq, prev)
		}
		prev = r.Seq
	}
	if len(page2) != 32 {
		t.Fatalf("page2 = %d records, want the 32 surviving the ring", len(page2))
	}
}

// TestMemorySnippetByteBudget: total IQ payload is bounded, oldest
// snippets evicted first, index kept consistent.
func TestMemorySnippetByteBudget(t *testing.T) {
	m, err := NewMemory(MemoryConfig{SnippetMaxBytes: 4096}) // 512 samples total
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		if err := m.AppendSnippet(snip(1, i, 128)); err != nil { // 1024 bytes each
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Bytes > 4096 {
		t.Fatalf("snippet bytes %d exceed the budget", st.Bytes)
	}
	if st.Snippets != 4 {
		t.Fatalf("retained %d snippets, want 4", st.Snippets)
	}
	if _, err := m.Snippet(1, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest snippet still present: %v", err)
	}
	if _, err := m.Snippet(1, 8); err != nil {
		t.Fatalf("newest snippet missing: %v", err)
	}
}
