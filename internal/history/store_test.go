package history

import (
	"errors"
	"testing"
	"time"

	"rfdump/internal/iq"
)

// The conformance suite: every behavior the daemon relies on, run
// against both implementations. A Store that passes here can be swapped
// into the hub without the API noticing.

type storeCase struct {
	name string
	open func(t *testing.T) Store
}

func storeCases() []storeCase {
	return []storeCase{
		{"memory", func(t *testing.T) Store {
			m, err := NewMemory(MemoryConfig{})
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"disk", func(t *testing.T) Store {
			d, err := OpenDisk(DiskConfig{Dir: t.TempDir(), SegmentBytes: 8 << 10})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		}},
	}
}

// det builds a test detection at time t seconds on the given stream.
func det(stream uint64, t float64) *DetectionRecord {
	return &DetectionRecord{
		Stream: stream, TimeS: t, Family: "Bluetooth", Detector: "bt-timing",
		Start: int64(t * 8e6), End: int64(t*8e6) + 400, AbsStart: int64(t * 8e6),
		AbsEnd: int64(t*8e6) + 400, Confidence: 0.9, Channel: 3,
	}
}

// pkt builds a test packet at time t seconds.
func pkt(stream uint64, t float64) *PacketEvent {
	ev := &PacketEvent{Stream: stream}
	ev.TimeS = t
	ev.Proto = "Bluetooth"
	ev.Start = int64(t * 8e6)
	ev.End = ev.Start + 2992
	ev.Channel = 40
	ev.Valid = true
	ev.Frame = "a0b1c2"
	return ev
}

func snip(stream, det uint64, n int) *Snippet {
	s := &Snippet{
		Stream: stream, Detection: det, Rate: 8_000_000,
		Start: int64(det) * 1000, End: int64(det)*1000 + int64(n),
		IQ: make(iq.Samples, n),
	}
	for i := range s.IQ {
		s.IQ[i] = complex(float32(i)/float32(n), -float32(i%7))
	}
	return s
}

func TestStoreSequencing(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			var prev uint64
			for i := 0; i < 10; i++ {
				rec := det(1, float64(i)*0.001)
				if err := s.AppendDetection(rec); err != nil {
					t.Fatal(err)
				}
				if rec.Seq <= prev {
					t.Fatalf("append %d: seq %d not strictly increasing past %d", i, rec.Seq, prev)
				}
				prev = rec.Seq
			}
			if got := s.LastSeq(); got != prev {
				t.Fatalf("LastSeq = %d, want %d", got, prev)
			}
			// Pre-stamped sequences (the hub's allocator) are honored.
			rec := det(1, 0.5)
			rec.Seq = prev + 7
			if err := s.AppendDetection(rec); err != nil {
				t.Fatal(err)
			}
			if got := s.LastSeq(); got != prev+7 {
				t.Fatalf("LastSeq after pre-stamped append = %d, want %d", got, prev+7)
			}
		})
	}
}

func TestStoreRecentSemantics(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			for i := 0; i < 20; i++ {
				stream := uint64(1 + i%2)
				if err := s.AppendDetection(det(stream, float64(i))); err != nil {
					t.Fatal(err)
				}
				if err := s.AppendPacket(pkt(stream, float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			all := s.RecentDetections(0, 0)
			if len(all) != 20 {
				t.Fatalf("RecentDetections(0,0) = %d records, want 20", len(all))
			}
			for i := 1; i < len(all); i++ {
				if all[i].Seq <= all[i-1].Seq {
					t.Fatalf("recent not oldest-first at %d: %d then %d", i, all[i-1].Seq, all[i].Seq)
				}
			}
			newest := s.RecentDetections(0, 5)
			if len(newest) != 5 || newest[4].TimeS != 19 {
				t.Fatalf("RecentDetections(0,5) tail = %+v", newest)
			}
			one := s.RecentPackets(2, 0)
			if len(one) != 10 {
				t.Fatalf("RecentPackets(stream 2) = %d, want 10", len(one))
			}
			for _, e := range one {
				if e.Stream != 2 {
					t.Fatalf("stream filter leaked record for stream %d", e.Stream)
				}
			}
		})
	}
}

func TestStoreQueryPagination(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			const n = 57
			for i := 0; i < n; i++ {
				if err := s.AppendDetection(det(1, float64(i)*0.01)); err != nil {
					t.Fatal(err)
				}
			}
			var walked []DetectionRecord
			cursor := uint64(0)
			pages := 0
			for {
				recs, next, more, err := s.QueryDetections(Query{Stream: 1, Limit: 10, Cursor: cursor})
				if err != nil {
					t.Fatal(err)
				}
				walked = append(walked, recs...)
				pages++
				if !more {
					break
				}
				if next <= cursor {
					t.Fatalf("cursor did not advance: %d -> %d", cursor, next)
				}
				cursor = next
			}
			if len(walked) != n {
				t.Fatalf("cursor walk returned %d records, want %d", len(walked), n)
			}
			if pages != 6 {
				t.Fatalf("walked %d pages, want 6 (5 full + final partial)", pages)
			}
			for i := 1; i < len(walked); i++ {
				if walked[i].Seq <= walked[i-1].Seq {
					t.Fatalf("duplicate or reordered record at %d", i)
				}
			}
			// Time-range filter: a window in the middle.
			recs, _, _, err := s.QueryDetections(Query{From: 0.10, To: 0.20, Limit: 100})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 10 {
				t.Fatalf("time window [0.10,0.20) returned %d records, want 10", len(recs))
			}
			for _, r := range recs {
				if r.TimeS < 0.10 || r.TimeS >= 0.20 {
					t.Fatalf("record at t=%v outside window", r.TimeS)
				}
			}
		})
	}
}

func TestStoreQueryEdgeCases(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			for i := 0; i < 5; i++ {
				if err := s.AppendDetection(det(1, float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			last := s.LastSeq()

			// Empty time range: a window holding no records.
			recs, next, more, err := s.QueryDetections(Query{From: 100, To: 200})
			if err != nil || len(recs) != 0 || more {
				t.Fatalf("empty range: recs=%d more=%v err=%v", len(recs), more, err)
			}
			if next != 0 {
				t.Fatalf("empty range must echo the cursor, got next=%d", next)
			}

			// from > to is a literal empty window, not an error.
			recs, _, more, err = s.QueryDetections(Query{From: 3, To: 1})
			if err != nil || len(recs) != 0 || more {
				t.Fatalf("from>to: recs=%d more=%v err=%v", len(recs), more, err)
			}

			// Cursor past the end: nothing left.
			recs, next, more, err = s.QueryDetections(Query{Cursor: last + 100})
			if err != nil || len(recs) != 0 || more || next != last+100 {
				t.Fatalf("cursor past end: recs=%d next=%d more=%v err=%v", len(recs), next, more, err)
			}

			// Unknown stream filter.
			recs, _, _, err = s.QueryDetections(Query{Stream: 99})
			if err != nil || len(recs) != 0 {
				t.Fatalf("unknown stream: recs=%d err=%v", len(recs), err)
			}
		})
	}
}

func TestStoreSnippetRoundTrip(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			rec := det(3, 0.25)
			if err := s.AppendDetection(rec); err != nil {
				t.Fatal(err)
			}
			want := snip(3, rec.Seq, 333)
			want.Epoch = 2
			if err := s.AppendSnippet(want); err != nil {
				t.Fatal(err)
			}
			got, err := s.Snippet(3, rec.Seq)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stream != 3 || got.Detection != rec.Seq || got.Epoch != 2 ||
				got.Rate != want.Rate || got.Start != want.Start || got.End != want.End {
				t.Fatalf("snippet metadata mismatch: %+v", got)
			}
			if len(got.IQ) != len(want.IQ) {
				t.Fatalf("snippet has %d samples, want %d", len(got.IQ), len(want.IQ))
			}
			for i := range got.IQ {
				if got.IQ[i] != want.IQ[i] {
					t.Fatalf("sample %d: %v != %v", i, got.IQ[i], want.IQ[i])
				}
			}
			if _, err := s.Snippet(3, rec.Seq+999); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing snippet: err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreTiles(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			for i := 0; i < 8; i++ {
				tile := &Tile{
					Stream: 1, TimeS: float64(i) * 0.016,
					Start: int64(i) * 131072, SamplesPerBin: 2048,
					Bins: []float32{0.5, float32(i), 2},
				}
				if err := s.AppendTile(tile); err != nil {
					t.Fatal(err)
				}
			}
			recs, _, _, err := s.QueryTiles(Query{Stream: 1, Limit: 100})
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 8 {
				t.Fatalf("QueryTiles = %d, want 8", len(recs))
			}
			if recs[3].Bins[1] != 3 {
				t.Fatalf("tile payload mismatch: %+v", recs[3])
			}
		})
	}
}

func TestStoreStatsAndClose(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			for i := 0; i < 6; i++ {
				if err := s.AppendDetection(det(1, float64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.AppendPacket(pkt(1, 6)); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendTile(&Tile{Stream: 1, TimeS: 7, SamplesPerBin: 4, Bins: []float32{1, 2}}); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendSnippet(snip(1, 1, 16)); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Kind == "" || st.LastSeq != s.LastSeq() || st.Appended != 9 {
				t.Fatalf("stats: %+v", st)
			}
			// Per-type counts must be per-type, not a lumped record total.
			if st.Detections != 6 || st.Packets != 1 || st.Tiles != 1 || st.Snippets != 1 {
				t.Fatalf("per-type stats: %+v", st)
			}
			if st.OldestTimeS != 0 || st.NewestTimeS != 7 {
				t.Fatalf("time bounds: %+v", st)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendDetection(det(1, 9)); !errors.Is(err, ErrClosed) {
				t.Fatalf("append after close: %v, want ErrClosed", err)
			}
		})
	}
}

// TestStoreConcurrentIngestAndQuery hammers appends from one goroutine
// while queries page from another — the disk store's reader handles and
// committed-size clipping must never surface a torn frame as data.
func TestStoreConcurrentIngestAndQuery(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 500; i++ {
					_ = s.AppendDetection(det(1, float64(i)*0.001))
					if i%10 == 0 {
						_ = s.AppendSnippet(snip(1, uint64(i+1), 64))
					}
				}
			}()
			for {
				select {
				case <-done:
					recs, _, _, err := s.QueryDetections(Query{Limit: 1000})
					if err != nil {
						t.Fatal(err)
					}
					if len(recs) == 0 {
						t.Fatal("no records after concurrent ingest")
					}
					return
				default:
					cursor := uint64(0)
					for {
						recs, next, more, err := s.QueryDetections(Query{Limit: 32, Cursor: cursor})
						if err != nil {
							t.Fatal(err)
						}
						for _, r := range recs {
							if r.Seq <= cursor {
								t.Fatalf("page returned seq %d at cursor %d", r.Seq, cursor)
							}
							cursor = r.Seq
						}
						if !more {
							break
						}
						cursor = next
					}
					time.Sleep(time.Millisecond)
				}
			}
		})
	}
}

// TestSnippetJSONRoundTrip proves the wire shape (what the API serves
// and rfdump -replay-snippet reads) reproduces the samples exactly.
func TestSnippetJSONRoundTrip(t *testing.T) {
	want := snip(7, 42, 100)
	j := want.JSON()
	if j.Samples != 100 {
		t.Fatalf("JSON samples = %d", j.Samples)
	}
	got, err := j.Snippet()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != 7 || got.Detection != 42 || got.Rate != want.Rate {
		t.Fatalf("metadata: %+v", got)
	}
	for i := range want.IQ {
		if got.IQ[i] != want.IQ[i] {
			t.Fatalf("sample %d: %v != %v", i, got.IQ[i], want.IQ[i])
		}
	}
	// Corrupt payload lengths are rejected, not misread.
	j.IQ = j.IQ[:len(j.IQ)-4]
	if _, err := j.Snippet(); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestStoreIsolation double-checks the memory store hands out copies:
// mutating a queried record or snippet must not corrupt the store.
func TestStoreIsolation(t *testing.T) {
	for _, tc := range storeCases() {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			rec := det(1, 0.1)
			if err := s.AppendDetection(rec); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendSnippet(snip(1, rec.Seq, 16)); err != nil {
				t.Fatal(err)
			}
			got, err := s.Snippet(1, rec.Seq)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got.IQ {
				got.IQ[i] = complex(9, 9)
			}
			again, err := s.Snippet(1, rec.Seq)
			if err != nil {
				t.Fatal(err)
			}
			if again.IQ[0] == complex(float32(9), float32(9)) {
				t.Fatal("snippet mutation leaked back into the store")
			}
			recs, _, _, err := s.QueryDetections(Query{})
			if err != nil || len(recs) != 1 {
				t.Fatalf("query: %d, %v", len(recs), err)
			}
			recs[0].Family = "corrupted"
			recs2, _, _, _ := s.QueryDetections(Query{})
			if recs2[0].Family != "Bluetooth" {
				t.Fatal("record mutation leaked back into the store")
			}
		})
	}
}

