// Package history is the spectrum DVR behind the daemon: durable,
// queryable storage for everything the live pipeline produces about the
// ether — detection verdicts, decoded packets, waterfall tiles, and the
// raw IQ bursts behind detections. The paper's architecture banks on
// keeping cheap per-packet state around so analysts can drill into the
// spectrum after the fact; this package turns that from three in-memory
// rings into a storage capability with two implementations: a bounded
// in-memory store (the old rings, now behind the interface) and an
// append-only segment-file engine that survives restarts.
//
// Records are totally ordered by a store-wide sequence number. The hub
// owns one allocator for live event sequencing and stamps records before
// appending; a store opened standalone (tests, offline tools) assigns
// sequences itself when a record arrives with Seq == 0. Queries paginate
// by cursor: a page is "records with Seq > cursor, ascending", so a
// dashboard can walk history without ever seeing a record twice, even
// while retention evicts from below.
package history

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"rfdump/internal/iq"
	"rfdump/internal/trace"
)

// ErrNotFound reports a lookup for a record the store does not hold —
// never written, or already evicted by retention.
var ErrNotFound = errors.New("history: not found")

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("history: store closed")

// DetectionRecord is the JSON form of one fast-detector verdict.
// Start/End are sample offsets relative to the connection (epoch) that
// carried them; AbsStart/AbsEnd place the span on the stream's
// transmit timeline across reconnects, which is what gap accounting
// and cross-epoch comparisons must use.
type DetectionRecord struct {
	// Seq is the store-wide sequence number (0 before the record is
	// appended); it doubles as the pagination cursor.
	Seq        uint64  `json:"seq,omitempty"`
	Stream     uint64  `json:"stream"`
	Epoch      uint32  `json:"epoch,omitempty"`
	TimeS      float64 `json:"t"`
	Family     string  `json:"family"`
	Detector   string  `json:"detector"`
	Start      int64   `json:"start"`
	End        int64   `json:"end"`
	AbsStart   int64   `json:"abs_start"`
	AbsEnd     int64   `json:"abs_end"`
	Confidence float64 `json:"confidence"`
	Channel    int     `json:"channel"`

	// The aggregation-tier provenance fields, zero on single-node
	// records. A fused record written by the cluster WAL sets Fused to
	// the fused-detection id it belongs to, Merge when the record adds
	// evidence to an already-written fused detection (replayed as a
	// "detection-update" event), Node/Origin to the sensor and its
	// node-local stream id the triggering sighting came from, and
	// Evidence to the per-sensor sightings this record contributed —
	// the delta, so replaying the WAL reconstructs the fused ledger
	// without double-counting evidence.
	Fused    uint64           `json:"fused,omitempty"`
	Merge    bool             `json:"merge,omitempty"`
	Node     string           `json:"node,omitempty"`
	Origin   uint64           `json:"origin,omitempty"`
	Evidence []SensorEvidence `json:"evidence,omitempty"`
}

// SensorEvidence is one sensor's sighting of a fused detection: which
// node and stream heard it, the detector that fired, and the
// per-sensor signal measurements (confidence, and the span in that
// sensor's sample clock — sensors disagree by path delay and clock
// skew, which is exactly why the raw spans are kept). It lives here —
// not in the cluster package — because fused records persist through
// the history store and replay byte-identical at every tree level.
type SensorEvidence struct {
	Node   string `json:"node"`
	Stream uint64 `json:"stream"` // fused (aggregator-scoped) stream id
	Seq    uint64 `json:"seq"`    // node-local store seq of the sighting
	Epoch  uint32 `json:"epoch,omitempty"`
	// Detector and Confidence are the node-side detection verdict;
	// confidence is the per-sensor signal-quality proxy (the detection
	// records carry no calibrated RSSI, so the detector's confidence —
	// which scales with SNR at the sensor — is the honest per-sensor
	// strength evidence).
	Detector   string  `json:"detector"`
	Confidence float64 `json:"confidence"`
	// TimeS / AbsStart / AbsEnd are the sighting's time and span in
	// the sensor's own clock.
	TimeS    float64 `json:"t"`
	AbsStart int64   `json:"abs_start"`
	AbsEnd   int64   `json:"abs_end"`
}

// PacketEvent is one decoded packet tagged with its stream — the
// embedded record is trace.PacketRecord, the same schema the offline
// packet log writes, built by the same constructor.
type PacketEvent struct {
	Seq    uint64 `json:"seq,omitempty"`
	Stream uint64 `json:"stream"`
	trace.PacketRecord
}

// Tile is one column of a persisted waterfall: mean linear power over
// SamplesPerBin-sample bins starting at absolute sample Start. Tiles
// are the coarse, cheap spectrogram history; snippets are the
// full-resolution bursts.
type Tile struct {
	Seq           uint64    `json:"seq,omitempty"`
	Stream        uint64    `json:"stream"`
	TimeS         float64   `json:"t"`
	Start         int64     `json:"start"`
	SamplesPerBin int64     `json:"samples_per_bin"`
	Bins          []float32 `json:"bins"`
}

// Snippet is the raw IQ burst captured around one detection — the
// record that closes the replay loop: stored at detection time, served
// by the API, and re-demodulated offline with better settings later.
// Keyed by (Stream, Detection) where Detection is the triggering
// DetectionRecord's Seq.
type Snippet struct {
	Seq       uint64 `json:"seq,omitempty"`
	Stream    uint64 `json:"stream"`
	Detection uint64 `json:"detection"`
	Epoch     uint32 `json:"epoch,omitempty"`
	// Rate is the sample rate of IQ; Start/End the absolute sample span
	// the burst covers on the stream timeline.
	Rate  int   `json:"rate"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	IQ    iq.Samples
}

// Bytes returns the snippet's IQ payload size (8 bytes per sample).
func (s *Snippet) Bytes() int64 { return int64(len(s.IQ)) * 8 }

// SnippetJSON is the wire shape of a snippet: the metadata plus the IQ
// payload as base64 little-endian float32 I/Q pairs. It is what
// /api/streams/{id}/snippets/{det} serves and what rfdump
// -replay-snippet reads back.
type SnippetJSON struct {
	Stream    uint64 `json:"stream"`
	Detection uint64 `json:"detection"`
	Epoch     uint32 `json:"epoch,omitempty"`
	Rate      int    `json:"rate"`
	Start     int64  `json:"start"`
	End       int64  `json:"end"`
	Samples   int    `json:"samples"`
	IQ        string `json:"iq_b64"`
}

// JSON converts the snippet to its wire shape.
func (s *Snippet) JSON() SnippetJSON {
	return SnippetJSON{
		Stream:    s.Stream,
		Detection: s.Detection,
		Epoch:     s.Epoch,
		Rate:      s.Rate,
		Start:     s.Start,
		End:       s.End,
		Samples:   len(s.IQ),
		IQ:        base64.StdEncoding.EncodeToString(encodeIQ(s.IQ)),
	}
}

// Snippet converts the wire shape back, validating the payload length.
func (j SnippetJSON) Snippet() (*Snippet, error) {
	raw, err := base64.StdEncoding.DecodeString(j.IQ)
	if err != nil {
		return nil, fmt.Errorf("history: snippet iq_b64: %w", err)
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("history: snippet payload %d bytes is not a whole number of complex64 samples", len(raw))
	}
	if j.Samples != 0 && j.Samples != len(raw)/8 {
		return nil, fmt.Errorf("history: snippet declares %d samples but payload holds %d", j.Samples, len(raw)/8)
	}
	return &Snippet{
		Stream:    j.Stream,
		Detection: j.Detection,
		Epoch:     j.Epoch,
		Rate:      j.Rate,
		Start:     j.Start,
		End:       j.End,
		IQ:        decodeIQ(raw),
	}, nil
}

// encodeIQ serializes samples as little-endian float32 I/Q pairs.
func encodeIQ(s iq.Samples) []byte {
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*8:], math.Float32bits(real(v)))
		binary.LittleEndian.PutUint32(out[i*8+4:], math.Float32bits(imag(v)))
	}
	return out
}

// decodeIQ is the inverse of encodeIQ (raw length must be a multiple
// of 8).
func decodeIQ(raw []byte) iq.Samples {
	out := make(iq.Samples, len(raw)/8)
	for i := range out {
		re := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*8:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(raw[i*8+4:]))
		out[i] = complex(re, im)
	}
	return out
}

// Query selects a page of history. Records match when they belong to
// Stream (0 = every stream) and their timestamp t satisfies
// t >= From && t < To (To <= 0 means no upper bound). Results come back
// ordered by Seq ascending, strictly after Cursor, at most Limit per
// page (Limit <= 0 takes DefaultQueryLimit).
type Query struct {
	Stream uint64
	From   float64
	To     float64
	Limit  int
	Cursor uint64
}

// DefaultQueryLimit bounds a page when the query does not.
const DefaultQueryLimit = 256

// limit resolves the page size.
func (q Query) limit() int {
	if q.Limit <= 0 {
		return DefaultQueryLimit
	}
	return q.Limit
}

// matchTime reports whether a record timestamp falls in the query's
// time range.
func (q Query) matchTime(t float64) bool {
	return t >= q.From && (q.To <= 0 || t < q.To)
}

// matchStream reports whether a record's stream passes the filter.
func (q Query) matchStream(stream uint64) bool {
	return q.Stream == 0 || stream == q.Stream
}

// Stats is a store's retention snapshot, served by /api/history and
// mirrored into gauges.
type Stats struct {
	// Kind names the implementation: "memory" or "segment".
	Kind string `json:"kind"`
	// LastSeq is the newest sequence number ever assigned.
	LastSeq uint64 `json:"last_seq"`
	// Retained record counts by type.
	Detections int64 `json:"detections"`
	Packets    int64 `json:"packets"`
	Tiles      int64 `json:"tiles"`
	Snippets   int64 `json:"snippets"`
	// Appended/Evicted are lifetime record totals (evicted = dropped by
	// retention, not by query).
	Appended int64 `json:"appended"`
	Evicted  int64 `json:"evicted"`
	// Bytes approximates retained payload (exact file bytes for the
	// segment store; snippet payload bytes for the memory store).
	Bytes int64 `json:"bytes"`
	// Segments counts live segment files (0 for the memory store).
	Segments int `json:"segments,omitempty"`
	// DetectionCap/PacketCap are the count bounds of the memory rings
	// (0 = not bounded by count).
	DetectionCap int `json:"detection_cap,omitempty"`
	PacketCap    int `json:"packet_cap,omitempty"`
	// OldestTimeS/NewestTimeS bracket retained record timestamps.
	OldestTimeS float64 `json:"oldest_t,omitempty"`
	NewestTimeS float64 `json:"newest_t,omitempty"`
}

// Store is the spectrum DVR contract. Append methods stamp rec.Seq when
// it arrives as 0 (standalone use); a caller that owns its own sequence
// allocator (the hub) stamps records itself, and stores must accept any
// strictly increasing sequence. Appends run on pipeline callback
// goroutines and must not block on queries; queries run on API
// goroutines concurrently with appends. AppendSnippet must not retain
// s.IQ after returning — the capture path reuses the buffer.
type Store interface {
	AppendDetection(rec *DetectionRecord) error
	AppendPacket(ev *PacketEvent) error
	AppendTile(t *Tile) error
	AppendSnippet(s *Snippet) error

	// RecentDetections/RecentPackets return the newest limit records
	// (oldest first), optionally filtered to one stream — the legacy
	// ring-snapshot semantics behind /api/detections and /api/packets.
	// limit <= 0 takes the store's recent-scan bound.
	RecentDetections(stream uint64, limit int) []DetectionRecord
	RecentPackets(stream uint64, limit int) []PacketEvent

	QueryDetections(q Query) (recs []DetectionRecord, next uint64, more bool, err error)
	QueryPackets(q Query) (recs []PacketEvent, next uint64, more bool, err error)
	QueryTiles(q Query) (recs []Tile, next uint64, more bool, err error)

	// Snippet returns the burst captured for the given detection
	// sequence on the given stream (ErrNotFound when missing/evicted).
	Snippet(stream, detection uint64) (*Snippet, error)

	// LastSeq returns the newest sequence number the store has seen —
	// what a restarting hub seeds its allocator from.
	LastSeq() uint64
	Stats() Stats
	Close() error
}
