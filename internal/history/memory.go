package history

import (
	"fmt"
	"sync"

	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// MemoryConfig sizes the in-memory store.
type MemoryConfig struct {
	// DetectionCap / PacketCap bound the record rings (defaults 4096
	// and 2048). Negative values are rejected — a caller that computed
	// a negative capacity has a bug upstream, and silently defaulting
	// would hide it.
	DetectionCap int
	PacketCap    int
	// TileCap bounds the waterfall-tile ring (default 512).
	TileCap int
	// SnippetCap / SnippetMaxBytes bound captured IQ bursts by count
	// (default 256) and total payload (default 16 MiB); the oldest
	// snippets are evicted first on either budget.
	SnippetCap      int
	SnippetMaxBytes int64
	// Registry receives history/* instruments; may be nil.
	Registry *metrics.Registry
}

// Memory is the bounded in-memory Store: the daemon's original
// overwrite-oldest rings, now behind the interface. It is the default —
// zero configuration, no disk, history dies with the process.
type Memory struct {
	mu         sync.Mutex
	detections seqRing[DetectionRecord]
	packets    seqRing[PacketEvent]
	tiles      seqRing[Tile]
	snippets   []*Snippet // oldest first
	snipIndex  map[snipKey]*Snippet
	snipBytes  int64
	cfg        MemoryConfig
	lastSeq    uint64
	appended   int64
	evictedN   int64
	closed     bool

	appends *metrics.Counter
	evicted *metrics.Counter
}

type snipKey struct{ stream, detection uint64 }

// NewMemory validates the configuration and builds the store.
func NewMemory(cfg MemoryConfig) (*Memory, error) {
	if cfg.DetectionCap < 0 || cfg.PacketCap < 0 {
		return nil, fmt.Errorf("history: negative ring capacity (detections %d, packets %d)",
			cfg.DetectionCap, cfg.PacketCap)
	}
	if cfg.TileCap < 0 || cfg.SnippetCap < 0 || cfg.SnippetMaxBytes < 0 {
		return nil, fmt.Errorf("history: negative capacity (tiles %d, snippets %d, snippet bytes %d)",
			cfg.TileCap, cfg.SnippetCap, cfg.SnippetMaxBytes)
	}
	if cfg.DetectionCap == 0 {
		cfg.DetectionCap = 4096
	}
	if cfg.PacketCap == 0 {
		cfg.PacketCap = 2048
	}
	if cfg.TileCap == 0 {
		cfg.TileCap = 512
	}
	if cfg.SnippetCap == 0 {
		cfg.SnippetCap = 256
	}
	if cfg.SnippetMaxBytes == 0 {
		cfg.SnippetMaxBytes = 16 << 20
	}
	return &Memory{
		detections: newSeqRing[DetectionRecord](cfg.DetectionCap),
		packets:    newSeqRing[PacketEvent](cfg.PacketCap),
		tiles:      newSeqRing[Tile](cfg.TileCap),
		snipIndex:  make(map[snipKey]*Snippet),
		cfg:        cfg,
		appends:    cfg.Registry.Counter("history/appends"),
		evicted:    cfg.Registry.Counter("history/evicted"),
	}, nil
}

// stamp assigns the next sequence when the record arrives unstamped and
// tracks the high-water mark either way.
func (m *Memory) stamp(seq *uint64) {
	if *seq == 0 {
		m.lastSeq++
		*seq = m.lastSeq
	} else if *seq > m.lastSeq {
		m.lastSeq = *seq
	}
	m.appended++
	m.appends.Inc()
}

// AppendDetection implements Store.
func (m *Memory) AppendDetection(rec *DetectionRecord) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stamp(&rec.Seq)
	if m.detections.add(*rec, rec.Seq) {
		m.evictedN++
		m.evicted.Inc()
	}
	return nil
}

// AppendPacket implements Store.
func (m *Memory) AppendPacket(ev *PacketEvent) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stamp(&ev.Seq)
	if m.packets.add(*ev, ev.Seq) {
		m.evictedN++
		m.evicted.Inc()
	}
	return nil
}

// AppendTile implements Store.
func (m *Memory) AppendTile(t *Tile) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stamp(&t.Seq)
	if m.tiles.add(*t, t.Seq) {
		m.evictedN++
		m.evicted.Inc()
	}
	return nil
}

// AppendSnippet implements Store. The IQ payload is copied — the
// capture path reuses its buffer.
func (m *Memory) AppendSnippet(s *Snippet) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.stamp(&s.Seq)
	own := *s
	own.IQ = append(iq.Samples(nil), s.IQ...)
	p := &own
	m.snippets = append(m.snippets, p)
	m.snipIndex[snipKey{p.Stream, p.Detection}] = p
	m.snipBytes += p.Bytes()
	for len(m.snippets) > 1 &&
		(len(m.snippets) > m.cfg.SnippetCap || m.snipBytes > m.cfg.SnippetMaxBytes) {
		old := m.snippets[0]
		m.snippets = m.snippets[1:]
		m.snipBytes -= old.Bytes()
		if m.snipIndex[snipKey{old.Stream, old.Detection}] == old {
			delete(m.snipIndex, snipKey{old.Stream, old.Detection})
		}
		m.evictedN++
		m.evicted.Inc()
	}
	return nil
}

// RecentDetections implements Store (limit <= 0 returns everything the
// ring retains).
func (m *Memory) RecentDetections(stream uint64, limit int) []DetectionRecord {
	m.mu.Lock()
	all := m.detections.snapshot()
	m.mu.Unlock()
	return filterTail(all, limit, func(r DetectionRecord) bool {
		return stream == 0 || r.Stream == stream
	})
}

// RecentPackets implements Store.
func (m *Memory) RecentPackets(stream uint64, limit int) []PacketEvent {
	m.mu.Lock()
	all := m.packets.snapshot()
	m.mu.Unlock()
	return filterTail(all, limit, func(e PacketEvent) bool {
		return stream == 0 || e.Stream == stream
	})
}

// QueryDetections implements Store.
func (m *Memory) QueryDetections(q Query) ([]DetectionRecord, uint64, bool, error) {
	m.mu.Lock()
	all := m.detections.snapshot()
	m.mu.Unlock()
	return page(all, q, func(r DetectionRecord) (uint64, uint64, float64) {
		return r.Seq, r.Stream, r.TimeS
	})
}

// QueryPackets implements Store.
func (m *Memory) QueryPackets(q Query) ([]PacketEvent, uint64, bool, error) {
	m.mu.Lock()
	all := m.packets.snapshot()
	m.mu.Unlock()
	return page(all, q, func(e PacketEvent) (uint64, uint64, float64) {
		return e.Seq, e.Stream, e.TimeS
	})
}

// QueryTiles implements Store.
func (m *Memory) QueryTiles(q Query) ([]Tile, uint64, bool, error) {
	m.mu.Lock()
	all := m.tiles.snapshot()
	m.mu.Unlock()
	return page(all, q, func(t Tile) (uint64, uint64, float64) {
		return t.Seq, t.Stream, t.TimeS
	})
}

// Snippet implements Store, returning a copy safe to hold after the
// original is evicted.
func (m *Memory) Snippet(stream, detection uint64) (*Snippet, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	p, ok := m.snipIndex[snipKey{stream, detection}]
	if !ok {
		return nil, ErrNotFound
	}
	out := *p
	out.IQ = append(iq.Samples(nil), p.IQ...)
	return &out, nil
}

// LastSeq implements Store.
func (m *Memory) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastSeq
}

// Stats implements Store.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Kind:         "memory",
		LastSeq:      m.lastSeq,
		Detections:   int64(m.detections.len()),
		Packets:      int64(m.packets.len()),
		Tiles:        int64(m.tiles.len()),
		Snippets:     int64(len(m.snippets)),
		Appended:     m.appended,
		Evicted:      m.evictedN,
		Bytes:        m.snipBytes,
		DetectionCap: m.cfg.DetectionCap,
		PacketCap:    m.cfg.PacketCap,
	}
	// Time bounds span every record type, matching the segment store.
	dLo, dHi, dAny := m.detections.timeBounds(func(r DetectionRecord) float64 { return r.TimeS })
	pLo, pHi, pAny := m.packets.timeBounds(func(r PacketEvent) float64 { return r.TimeS })
	tLo, tHi, tAny := m.tiles.timeBounds(func(r Tile) float64 { return r.TimeS })
	first := true
	for _, b := range []struct {
		lo, hi float64
		any    bool
	}{{dLo, dHi, dAny}, {pLo, pHi, pAny}, {tLo, tHi, tAny}} {
		if !b.any {
			continue
		}
		if first || b.lo < st.OldestTimeS {
			st.OldestTimeS = b.lo
		}
		if first || b.hi > st.NewestTimeS {
			st.NewestTimeS = b.hi
		}
		first = false
	}
	return st
}

// Close implements Store. The memory store has nothing to flush;
// further appends and snippet lookups fail with ErrClosed.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// page applies the query contract to a seq-ordered snapshot: records
// after the cursor matching the stream/time filters, one page plus a
// lookahead bit.
func page[T any](all []T, q Query, key func(T) (seq, stream uint64, t float64)) ([]T, uint64, bool, error) {
	limit := q.limit()
	var out []T
	next := q.Cursor
	more := false
	for _, v := range all {
		seq, stream, ts := key(v)
		if seq <= q.Cursor || !q.matchStream(stream) || !q.matchTime(ts) {
			continue
		}
		if len(out) == limit {
			more = true
			break
		}
		out = append(out, v)
		next = seq
	}
	return out, next, more, nil
}

// filterTail keeps matching entries, then the newest limit of them.
func filterTail[T any](in []T, limit int, keep func(T) bool) []T {
	out := in[:0]
	for _, v := range in {
		if keep(v) {
			out = append(out, v)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	res := make([]T, len(out))
	copy(res, out)
	return res
}

// seqRing is a fixed-capacity overwrite-oldest buffer whose snapshot
// comes back oldest-first (seq ascending, since appends are ordered).
type seqRing[T any] struct {
	buf  []T
	next int
	full bool
}

func newSeqRing[T any](n int) seqRing[T] {
	if n < 1 {
		n = 1
	}
	return seqRing[T]{buf: make([]T, n)}
}

// add stores v, reporting whether an older entry was overwritten.
func (r *seqRing[T]) add(v T, _ uint64) (evicted bool) {
	evicted = r.full
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

func (r *seqRing[T]) len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// snapshot returns the contents oldest-first.
func (r *seqRing[T]) snapshot() []T {
	if !r.full {
		out := make([]T, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]T, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// timeBounds returns the oldest and newest timestamps retained.
func (r *seqRing[T]) timeBounds(t func(T) float64) (lo, hi float64, ok bool) {
	n := r.len()
	if n == 0 {
		return 0, 0, false
	}
	if !r.full {
		return t(r.buf[0]), t(r.buf[r.next-1]), true
	}
	newest := r.next - 1
	if newest < 0 {
		newest = len(r.buf) - 1
	}
	return t(r.buf[r.next]), t(r.buf[newest]), true
}
