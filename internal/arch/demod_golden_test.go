package arch

import (
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
)

// The demod golden suite locks down the numerics under every decoded
// bit: for each registered module that can transmit and detect, the
// modulate→detect→demod loop (the same one the conformance suite
// exercises) must reproduce byte-identical frames, exact detection
// offsets, and exact packet spans against checked-in goldens. The
// goldens were generated from the direct (pre-FFT) demod kernels, so
// the FFT convolution/channelizer paths are accepted only while they
// remain bit-exact with the reference implementations end to end.
//
// Regenerate intentionally with
//
//	go test ./internal/arch -run TestGoldenDemod -update
//
// and review the diff of testdata/demod_golden.json like code.

// demodGoldenDetection is one expected detection with quantized
// confidence so the comparison is exact.
type demodGoldenDetection struct {
	Family     string `json:"family"`
	Detector   string `json:"detector"`
	Start      int64  `json:"start"`
	End        int64  `json:"end"`
	Channel    int    `json:"channel"`
	Confidence int64  `json:"confidence_millis"`
}

// demodGoldenPacket is one expected decoded packet, frame bytes and all.
type demodGoldenPacket struct {
	Proto   string `json:"proto"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
	Channel int    `json:"channel"`
	Valid   bool   `json:"valid"`
	Note    string `json:"note,omitempty"`
	Frame   string `json:"frame_hex"`
}

// demodGoldenModule is the full expected output of one module's loop.
type demodGoldenModule struct {
	Samples    int                    `json:"samples"`
	Detections []demodGoldenDetection `json:"detections"`
	Packets    []demodGoldenPacket    `json:"packets"`
}

func demodGoldenRun(t *testing.T, m *protocols.Module) demodGoldenModule {
	t.Helper()
	res := moduleTrace(t, m, 12, 20)
	cfg := core.Detect(m.Detectors()...)
	var analyzers []core.Analyzer
	if m.HasAnalyzer() {
		analyzers = append(analyzers, m.NewAnalyzer(protocols.AnalyzerOptions{}))
	}
	mon := NewRFDump("demod-golden-"+m.Key, res.Clock, cfg, analyzers...)
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	g := demodGoldenModule{Samples: len(res.Samples)}
	for _, d := range out.Detections {
		g.Detections = append(g.Detections, demodGoldenDetection{
			Family:     d.Family.FamilyName(),
			Detector:   d.Detector,
			Start:      int64(d.Span.Start),
			End:        int64(d.Span.End),
			Channel:    d.Channel,
			Confidence: quantize(d.Confidence),
		})
	}
	for _, p := range out.Packets {
		g.Packets = append(g.Packets, demodGoldenPacket{
			Proto:   p.Proto.String(),
			Start:   int64(p.Span.Start),
			End:     int64(p.Span.End),
			Channel: p.Channel,
			Valid:   p.Valid,
			Note:    p.Note,
			Frame:   hex.EncodeToString(p.Frame),
		})
	}
	return g
}

func TestGoldenDemod(t *testing.T) {
	if testing.Short() {
		t.Skip("demod golden suite synthesizes full traces")
	}
	path := filepath.Join("testdata", "demod_golden.json")

	got := map[string]demodGoldenModule{}
	for _, m := range protocols.Modules() {
		if !m.HasTraffic() || len(m.Detectors()) == 0 {
			continue
		}
		got[m.Key] = demodGoldenRun(t, m)
	}
	if len(got) < 5 {
		t.Fatalf("demod golden covered %d modules, want the 5 builtins at least", len(got))
	}

	if *update {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d modules)", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading demod goldens (regenerate with -update): %v", err)
	}
	want := map[string]demodGoldenModule{}
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("module %q in goldens but not registered", key)
			continue
		}
		compareDemodGolden(t, key, g, w)
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("module %q registered but missing from goldens — regenerate with -update", key)
		}
	}
	if t.Failed() {
		t.Log("demod golden mismatch: the demod kernels no longer reproduce the reference numerics bit-exactly")
	}
}

func compareDemodGolden(t *testing.T, key string, got, want demodGoldenModule) {
	t.Helper()
	if got.Samples != want.Samples {
		t.Errorf("%s: trace length %d, want %d", key, got.Samples, want.Samples)
	}
	if len(got.Detections) != len(want.Detections) {
		t.Errorf("%s: detections: got %d, want %d", key, len(got.Detections), len(want.Detections))
	}
	for i := range min(len(got.Detections), len(want.Detections)) {
		if got.Detections[i] != want.Detections[i] {
			t.Errorf("%s detection[%d]:\n  got  %+v\n  want %+v", key, i, got.Detections[i], want.Detections[i])
		}
	}
	if len(got.Packets) != len(want.Packets) {
		t.Errorf("%s: packets: got %d, want %d", key, len(got.Packets), len(want.Packets))
	}
	for i := range min(len(got.Packets), len(want.Packets)) {
		if got.Packets[i] != want.Packets[i] {
			t.Errorf("%s packet[%d]:\n  got  %+v\n  want %+v", key, i, got.Packets[i], want.Packets[i])
		}
	}
}
