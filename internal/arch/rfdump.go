package arch

import (
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// RFDump wraps the core pipeline as a Monitor.
type RFDump struct {
	// Label distinguishes configurations in reports
	// ("rfdump-timing", "rfdump-phase", ...).
	Label     string
	clock     iq.Clock
	cfg       core.Config
	analyzers []core.Analyzer
}

// NewRFDump returns the RFDump architecture with the given detector
// configuration and analyzers (pass none for the detection-only
// "no demodulation" variants of Figure 9).
func NewRFDump(label string, clock iq.Clock, cfg core.Config, analyzers ...core.Analyzer) *RFDump {
	return &RFDump{Label: label, clock: clock, cfg: cfg, analyzers: analyzers}
}

// Name implements Monitor.
func (r *RFDump) Name() string {
	if r.Label != "" {
		return r.Label
	}
	return "rfdump"
}

// Process implements Monitor.
func (r *RFDump) Process(stream iq.Samples) (*Result, error) {
	p := core.NewPipeline(r.clock, r.cfg, r.analyzers...)
	res, err := p.Run(stream)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Detections: res.Detections,
		Forwarded:  map[protocols.ID][]iq.Interval{},
		CPU:        res.Busy,
		PerBlock:   res.Stats,
		StreamLen:  res.StreamLen,
		Clock:      r.clock,
	}
	for _, fam := range protocols.Families() {
		if spans := res.ForwardedSpans(fam); len(spans) > 0 {
			out.Forwarded[fam] = spans
		}
	}
	for _, item := range res.Outputs {
		if pkt, ok := item.(demod.Packet); ok {
			out.Packets = append(out.Packets, pkt)
		}
	}
	return out, nil
}
