package arch

import (
	"io"
	"strings"
	"testing"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/faults"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// Resilience integration: the streaming pipeline must survive a faulty
// front end and a crashing analyzer with bounded metric degradation —
// the live monitor stays on the air.

// spreadTrace generates unicast traffic spread across the whole trace,
// so an injected overflow gap hits a packet count proportional to the
// time it covers.
func spreadTrace(t *testing.T, snrDB float64, pings int) *ether.Result {
	t.Helper()
	clock := iq.NewClock(0)
	res, err := ether.Run(ether.Config{
		Duration: iq.Tick(clock.Rate / 2), // 500 ms
		SNRdB:    snrDB,
		Seed:     42,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate:         protocols.WiFi80211b1M,
				Pings:        pings,
				PayloadBytes: 500,
				InterPing:    60_000,
				Requester:    addr(1),
				Responder:    addr(2),
				BSSID:        addr(3),
				CFOHz:        2500,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sliceBlocks adapts an in-memory trace to core.BlockReader.
type sliceBlocks struct {
	s   iq.Samples
	pos int
}

func (r *sliceBlocks) ReadBlock(dst iq.Samples) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(dst, r.s[r.pos:])
	r.pos += n
	if r.pos >= len(r.s) {
		return n, io.EOF
	}
	return n, nil
}

// panicAnalyzer crashes on every request — the misbehaving plug-in the
// supervisor must fence off.
type panicAnalyzer struct{}

func (panicAnalyzer) Name() string              { return "panicky" }
func (panicAnalyzer) Accepts(protocols.ID) bool { return true }
func (panicAnalyzer) Analyze(core.SampleAccessor, core.AnalysisRequest, func(flowgraph.Item)) error {
	panic("analyzer bug")
}

func truthDets(dets []core.Detection) []truth.Detection {
	out := make([]truth.Detection, len(dets))
	for i, d := range dets {
		out[i] = truth.Detection{
			Family: d.Family, Span: d.Span, Detector: d.Detector,
			Confidence: d.Confidence, Channel: d.Channel,
		}
	}
	return out
}

func missRate(res *ether.Result, dets []core.Detection) float64 {
	st := truth.Match(res.Truth, truthDets(dets), protocols.WiFi80211b1M)
	if st.Total == 0 {
		return 0
	}
	return 1 - float64(st.Found)/float64(st.Total)
}

func TestStreamResilienceUnderFaults(t *testing.T) {
	res := spreadTrace(t, 22, 40) // high SNR, traffic across the trace
	cfg := core.TimingAndPhase()

	// Baseline: clean streaming run.
	clean := core.NewPipeline(res.Clock, cfg, demod.NewWiFiDemod())
	resClean, err := clean.RunStream(&sliceBlocks{s: res.Samples}, core.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	miss0 := missRate(res, resClean.Detections)

	// Faulty run: overflow gaps (a few long ones, ~6% of the stream),
	// transient read errors behind a retry wrapper, sample corruption,
	// and a panicking analyzer riding next to the real demodulator.
	inj := faults.NewInjector(&sliceBlocks{s: res.Samples}, faults.Config{
		Seed:          17, // two ~30 ms gaps, ~7% of the stream dropped
		GapProb:       0.0001,
		GapBlocks:     1200, // 240k samples = 30 ms per gap
		CorruptProb:   0.002,
		TransientProb: 0.005,
	})
	src := &faults.Retry{Src: inj, Sleep: func(time.Duration) {}}

	var events []flowgraph.SupervisorEvent
	p := core.NewPipeline(res.Clock, cfg, demod.NewWiFiDemod(), panicAnalyzer{})
	resFault, err := p.RunStream(src, core.StreamConfig{
		Supervise: &flowgraph.SupervisorConfig{
			MaxErrors: 3,
			OnEvent:   func(ev flowgraph.SupervisorEvent) { events = append(events, ev) },
		},
	})
	if err != nil {
		t.Fatalf("faulty run did not complete: %v", err)
	}

	st := inj.Stats()
	dropFrac := float64(st.DroppedSamples) / float64(len(res.Samples))
	if dropFrac < 0.05 {
		t.Fatalf("injection too weak for the test: dropped %.1f%% (%+v)", 100*dropFrac, st)
	}
	if st.TransientErrors == 0 {
		t.Error("no transient errors injected")
	}

	// The supervisor fenced off exactly the faulty analyzer.
	d := resFault.Degradation
	if len(d.Quarantined) != 1 || d.Quarantined[0] != "panicky" {
		t.Errorf("quarantined %v, want exactly [panicky]", d.Quarantined)
	}
	if d.BlockPanics == 0 || d.BlockDropped == 0 {
		t.Errorf("degradation not accounted: %+v", d)
	}
	quarantines := 0
	for _, ev := range events {
		if ev.Kind == flowgraph.EventQuarantine {
			quarantines++
			if ev.Block != "panicky" {
				t.Errorf("healthy block quarantined: %v", ev)
			}
		}
	}
	if quarantines != 1 {
		t.Errorf("%d quarantine events", quarantines)
	}

	// The healthy demodulator kept decoding around the faults.
	valid := 0
	for _, item := range resFault.Outputs {
		if pkt, ok := item.(demod.Packet); ok && pkt.Valid {
			valid++
		}
	}
	if valid == 0 {
		t.Error("no valid packets decoded on the healthy path")
	}

	// Bounded metric degradation: the extra misses are explained by the
	// dropped input plus a small tolerance for gap-edge clipping.
	missF := missRate(res, resFault.Detections)
	if missF > miss0+dropFrac+0.02 {
		t.Errorf("miss %.3f exceeds baseline %.3f + dropped %.3f + 0.02",
			missF, miss0, dropFrac)
	}
}

func TestStreamResilienceParallelScheduler(t *testing.T) {
	// The supervised scheduler must be race-free under RunParallel with a
	// panicking block (run with -race in CI).
	res := unicastTrace(t, 20, 4)
	cfg := core.TimingOnly()
	cfg.Parallel = true
	p := core.NewPipeline(res.Clock, cfg, demod.NewWiFiDemod(), panicAnalyzer{})
	out, err := p.RunStream(&sliceBlocks{s: res.Samples}, core.StreamConfig{
		Supervise: &flowgraph.SupervisorConfig{MaxErrors: 1},
	})
	if err != nil {
		t.Fatalf("parallel supervised run failed: %v", err)
	}
	if len(out.Degradation.Quarantined) != 1 || out.Degradation.Quarantined[0] != "panicky" {
		t.Errorf("quarantined %v", out.Degradation.Quarantined)
	}
}

func TestStreamTransientErrorsFailWithoutRetry(t *testing.T) {
	// Without the retry wrapper a transient front-end error surfaces as a
	// stream error: resilience is a policy choice, not silent swallowing.
	res := unicastTrace(t, 20, 2)
	inj := faults.NewInjector(&sliceBlocks{s: res.Samples}, faults.Config{
		Seed: 1, TransientProb: 0.05,
	})
	p := core.NewPipeline(res.Clock, core.TimingOnly())
	_, err := p.RunStream(inj, core.StreamConfig{})
	if err == nil || !strings.Contains(err.Error(), "stream source") {
		t.Fatalf("transient error not surfaced: %v", err)
	}
}
