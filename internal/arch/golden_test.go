package arch

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/trace"
)

// update regenerates the golden trace and the expected packet log. Run
//
//	go test ./internal/arch -run TestGoldenTrace -update
//
// after an intentional pipeline change and review the diff of
// testdata/golden.json like any other code change.
var update = flag.Bool("update", false, "regenerate testdata/golden.rfd and testdata/golden.json")

// The golden piconet mirrors the experiments package constants
// (the inquiry-scan LAP the paper's l2ping microbenchmark uses).
const (
	goldenLAP = 0x9E8B33
	goldenUAP = 0x47
)

// goldenDetection is one expected detection, with the confidence
// quantized so the comparison is exact.
type goldenDetection struct {
	Family     string `json:"family"`
	Detector   string `json:"detector"`
	Start      int64  `json:"start"`
	End        int64  `json:"end"`
	Channel    int    `json:"channel"`
	Confidence int64  `json:"confidence_millis"`
}

// goldenPacket is one expected decoded packet.
type goldenPacket struct {
	Proto   string `json:"proto"`
	Start   int64  `json:"start"`
	End     int64  `json:"end"`
	Channel int    `json:"channel"`
	Valid   bool   `json:"valid"`
	Frame   int    `json:"frame_bytes"`
}

// goldenLog is the checked-in expectation: every detection and every
// decoded packet of the golden trace, in pipeline order.
type goldenLog struct {
	Rate       int               `json:"rate"`
	Samples    int               `json:"samples"`
	Detections []goldenDetection `json:"detections"`
	Packets    []goldenPacket    `json:"packets"`
}

// goldenAddr builds a locally-administered MAC address.
func goldenAddr(b byte) (a wifi.Addr) {
	a[0] = 0x02
	a[5] = b
	return a
}

// goldenEther emits the deterministic trace: two 802.11b unicast
// exchanges and one Bluetooth l2ping exchange sharing the ether, sized
// automatically to the last transmission.
func goldenEther() (*ether.Result, error) {
	return ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  7,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 2,
				PayloadBytes: 120, InterPing: 24_000,
				Requester: goldenAddr(0x11),
				Responder: goldenAddr(0x22),
				BSSID:     goldenAddr(0x33),
			},
			&mac.BluetoothPiconet{
				LAP: goldenLAP, UAP: goldenUAP, Pings: 2,
				MinPayload: 225, MaxPayload: 225,
				// The hop sequence for this LAP lands on channels 53 and
				// 56 at slots 10 and 15 (the second ping exchange), so a
				// monitored band of [50, 58) makes both packets audible.
				MonitorBaseChannel: 50,
			},
		},
	})
}

// goldenRun processes samples through the pipeline under lockdown: both
// fast-detector families plus the full analysis stage.
func goldenRun(clock iq.Clock, samples iq.Samples) (*Result, error) {
	mon := NewRFDump("golden", clock, core.TimingAndPhase(),
		demod.NewWiFiDemod(),
		demod.NewBTDemod(goldenLAP, goldenUAP, 8),
	)
	return mon.Process(samples)
}

// quantize maps a confidence in [0,1] to integer thousandths, rounding
// half away from zero, so the golden file compares exactly.
func quantize(c float64) int64 {
	return int64(math.Round(c * 1000))
}

func logFrom(rate int, n int, out *Result) goldenLog {
	g := goldenLog{Rate: rate, Samples: n}
	for _, d := range out.Detections {
		g.Detections = append(g.Detections, goldenDetection{
			Family:     d.Family.FamilyName(),
			Detector:   d.Detector,
			Start:      int64(d.Span.Start),
			End:        int64(d.Span.End),
			Channel:    d.Channel,
			Confidence: quantize(d.Confidence),
		})
	}
	for _, p := range out.Packets {
		g.Packets = append(g.Packets, goldenPacket{
			Proto:   p.Proto.String(),
			Start:   int64(p.Span.Start),
			End:     int64(p.Span.End),
			Channel: p.Channel,
			Valid:   p.Valid,
			Frame:   len(p.Frame),
		})
	}
	return g
}

// TestGoldenTrace locks down the full detect→dispatch→analyze pipeline
// against a checked-in trace: any change to a detection boundary,
// protocol label, confidence, channel, or decoded packet fails the test
// with a field-level diff. Regenerate intentionally with -update.
func TestGoldenTrace(t *testing.T) {
	tracePath := filepath.Join("testdata", "golden.rfd")
	logPath := filepath.Join("testdata", "golden.json")

	if *update {
		res, err := goldenEther()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteFile(tracePath, res.Clock.Rate, res.Samples); err != nil {
			t.Fatal(err)
		}
		out, err := goldenRun(res.Clock, res.Samples)
		if err != nil {
			t.Fatal(err)
		}
		g := logFrom(res.Clock.Rate, len(res.Samples), out)
		buf, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(logPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d samples) and %s (%d detections, %d packets)",
			tracePath, len(res.Samples), logPath, len(g.Detections), len(g.Packets))
		return
	}

	hdr, samples, err := trace.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("reading golden trace (regenerate with -update): %v", err)
	}
	buf, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("reading golden log (regenerate with -update): %v", err)
	}
	var want goldenLog
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if hdr.Rate != want.Rate || len(samples) != want.Samples {
		t.Fatalf("trace/log mismatch: trace %d samples at %d Hz, log expects %d at %d",
			len(samples), hdr.Rate, want.Samples, want.Rate)
	}

	out, err := goldenRun(iq.NewClock(hdr.Rate), samples)
	if err != nil {
		t.Fatal(err)
	}
	got := logFrom(hdr.Rate, len(samples), out)

	if len(got.Detections) != len(want.Detections) {
		t.Errorf("detections: got %d, want %d", len(got.Detections), len(want.Detections))
	}
	for i := range min(len(got.Detections), len(want.Detections)) {
		if got.Detections[i] != want.Detections[i] {
			t.Errorf("detection[%d]:\n  got  %+v\n  want %+v", i, got.Detections[i], want.Detections[i])
		}
	}
	if len(got.Packets) != len(want.Packets) {
		t.Errorf("packets: got %d, want %d", len(got.Packets), len(want.Packets))
	}
	for i := range min(len(got.Packets), len(want.Packets)) {
		if got.Packets[i] != want.Packets[i] {
			t.Errorf("packet[%d]:\n  got  %+v\n  want %+v", i, got.Packets[i], want.Packets[i])
		}
	}
	if t.Failed() {
		t.Log("golden mismatch: if the pipeline change is intentional, regenerate with -update and review the diff")
	}
}
