package arch

import (
	"time"

	"rfdump/internal/core"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// Naive is Figure 1: the entire input stream goes to the demodulators of
// every technology. Expensive and flat in cost regardless of how busy the
// ether is.
type Naive struct {
	clock     iq.Clock
	analyzers []core.Analyzer
}

// NewNaive returns the naïve architecture over the given demodulators.
func NewNaive(clock iq.Clock, analyzers ...core.Analyzer) *Naive {
	return &Naive{clock: clock, analyzers: analyzers}
}

// Name implements Monitor.
func (n *Naive) Name() string { return "naive" }

// Process implements Monitor.
func (n *Naive) Process(stream iq.Samples) (*Result, error) {
	src := &core.StreamAccessor{Stream: stream}
	span := iq.Interval{Start: 0, End: iq.Tick(len(stream))}
	col := &collector{}
	busy := map[string]time.Duration{}
	items := map[string]int64{}
	forwarded := map[protocols.ID][]iq.Interval{}

	for _, fam := range analyzerFamilies(n.analyzers) {
		forwarded[fam] = []iq.Interval{span}
		req := core.AnalysisRequest{Family: fam, Span: span, Channel: -1, Confidence: 1}
		for _, a := range n.analyzers {
			if !a.Accepts(fam) {
				continue
			}
			start := time.Now()
			err := a.Analyze(src, req, col.emit)
			busy[a.Name()] += time.Since(start)
			items[a.Name()]++
			if err != nil {
				return nil, err
			}
		}
	}

	var total time.Duration
	for _, d := range busy {
		total += d
	}
	return &Result{
		Forwarded: forwarded,
		Packets:   col.packets,
		CPU:       total,
		PerBlock:  sortedBlockStats(busy, items),
		StreamLen: iq.Tick(len(stream)),
		Clock:     n.clock,
	}, nil
}

// NaiveEnergy is the naïve design with an energy-detection stage: only
// chunks above the energy threshold are forwarded, but they still go to
// every demodulator ("all the demodulators process every signal that
// passes the energy filter", Section 5.2).
type NaiveEnergy struct {
	clock iq.Clock
	// Demodulate false gives the "energy filtering without demodulation"
	// curve of Figure 9.
	Demodulate bool
	peakCfg    core.PeakConfig
	analyzers  []core.Analyzer
}

// NewNaiveEnergy returns the energy-filtered naïve architecture.
func NewNaiveEnergy(clock iq.Clock, demodulate bool, analyzers ...core.Analyzer) *NaiveEnergy {
	return &NaiveEnergy{clock: clock, Demodulate: demodulate, analyzers: analyzers}
}

// Name implements Monitor.
func (n *NaiveEnergy) Name() string {
	if n.Demodulate {
		return "naive-energy"
	}
	return "naive-energy-nodemod"
}

// Process implements Monitor.
func (n *NaiveEnergy) Process(stream iq.Samples) (*Result, error) {
	busy := map[string]time.Duration{}
	items := map[string]int64{}

	// Energy filter: chunk-level average power against the calibrated
	// noise floor, the same primitive the peak detector integrates.
	start := time.Now()
	spans := energySpans(stream, n.peakCfg)
	busy["energy-filter"] += time.Since(start)
	items["energy-filter"] = int64(len(stream) / iq.ChunkSamples)

	col := &collector{}
	src := &core.StreamAccessor{Stream: stream}
	forwarded := map[protocols.ID][]iq.Interval{}

	if n.Demodulate {
		for _, fam := range analyzerFamilies(n.analyzers) {
			forwarded[fam] = spans
			for _, span := range spans {
				req := core.AnalysisRequest{Family: fam, Span: span, Channel: -1, Confidence: 1}
				for _, a := range n.analyzers {
					if !a.Accepts(fam) {
						continue
					}
					t0 := time.Now()
					err := a.Analyze(src, req, col.emit)
					busy[a.Name()] += time.Since(t0)
					items[a.Name()]++
					if err != nil {
						return nil, err
					}
				}
			}
		}
	}

	var total time.Duration
	for _, d := range busy {
		total += d
	}
	return &Result{
		Forwarded: forwarded,
		Packets:   col.packets,
		CPU:       total,
		PerBlock:  sortedBlockStats(busy, items),
		StreamLen: iq.Tick(len(stream)),
		Clock:     n.clock,
	}, nil
}

// energySpans returns merged busy-chunk intervals using the same noise
// calibration rules as the peak detector.
func energySpans(stream iq.Samples, cfg core.PeakConfig) []iq.Interval {
	noise := cfg.NoiseFloor
	thrDB := cfg.ThresholdDB
	if thrDB == 0 {
		thrDB = core.DefaultThresholdDB
	}
	nchunks := len(stream) / iq.ChunkSamples
	avgs := make([]float64, 0, nchunks+1)
	for start := 0; start < len(stream); start += iq.ChunkSamples {
		end := start + iq.ChunkSamples
		if end > len(stream) {
			end = len(stream)
		}
		avgs = append(avgs, stream[start:end].MeanPower())
	}
	if noise <= 0 {
		// Calibrate: the minimum chunk average approximates the floor.
		noise = 0
		for i, a := range avgs {
			if i == 0 || a < noise {
				noise = a
			}
		}
		if noise <= 0 {
			noise = 1e-12
		}
	}
	thr := noise * iq.FromDB(thrDB)
	var out []iq.Interval
	for i, a := range avgs {
		if a <= thr {
			continue
		}
		iv := iq.Interval{
			Start: iq.Tick(i * iq.ChunkSamples),
			End:   iq.Tick((i + 1) * iq.ChunkSamples),
		}
		if iv.End > iq.Tick(len(stream)) {
			iv.End = iq.Tick(len(stream))
		}
		if len(out) > 0 && out[len(out)-1].End >= iv.Start {
			out[len(out)-1].End = iv.End
			continue
		}
		out = append(out, iv)
	}
	return out
}
