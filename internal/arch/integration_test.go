package arch

import (
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

const (
	testLAP = 0x9E8B33
	testUAP = 0x47
)

func unicastTrace(t *testing.T, snrDB float64, pings int) *ether.Result {
	t.Helper()
	clock := iq.NewClock(0)
	res, err := ether.Run(ether.Config{
		Duration: iq.Tick(clock.Rate / 2), // 500 ms
		SNRdB:    snrDB,
		Seed:     42,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate:         protocols.WiFi80211b1M,
				Pings:        pings,
				PayloadBytes: 500,
				InterPing:    8000,
				Requester:    addr(1),
				Responder:    addr(2),
				BSSID:        addr(3),
				CFOHz:        2500,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func addr(b byte) (a [6]byte) {
	for i := range a {
		a[i] = b
	}
	return
}

func TestRFDumpTimingOnUnicast(t *testing.T) {
	res := unicastTrace(t, 20, 12) // 48 packets
	clock := res.Clock
	mon := NewRFDump("rfdump-timing", clock, core.TimingOnly())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
	if st.Total == 0 {
		t.Fatal("no ground-truth packets")
	}
	if miss := st.MissRateNonCollided(); miss > 0.02 {
		t.Errorf("SIFS timing miss rate %.3f at 20 dB, want ~0 (found %d/%d)",
			miss, st.Found, st.Total)
	}
	if st.FalsePosRate > 0.02 {
		t.Errorf("false positive rate %.4f too high", st.FalsePosRate)
	}
}

func TestRFDumpPhaseOnUnicast(t *testing.T) {
	res := unicastTrace(t, 20, 12)
	mon := NewRFDump("rfdump-phase", res.Clock, core.PhaseOnly())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
	if miss := st.MissRateNonCollided(); miss > 0.02 {
		t.Errorf("phase miss rate %.3f at 20 dB, want ~0 (found %d/%d)", miss, st.Found, st.Total)
	}
}

func TestRFDumpWithDemodDecodesFrames(t *testing.T) {
	res := unicastTrace(t, 22, 6)
	wifiDemod := demod.NewWiFiDemod()
	mon := NewRFDump("rfdump-both", res.Clock, core.TimingAndPhase(), wifiDemod)
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	for _, p := range out.Packets {
		if p.Valid && p.Proto.Family() == protocols.WiFi80211b1M {
			valid++
		}
	}
	want := res.Truth.VisibleCount(protocols.WiFi80211b1M)
	if valid < want*9/10 {
		t.Errorf("decoded %d valid frames of %d transmitted", valid, want)
	}
}

func TestBluetoothPipeline(t *testing.T) {
	clock := iq.NewClock(0)
	res, err := ether.Run(ether.Config{
		Duration: iq.Tick(clock.Rate), // 1 s
		SNRdB:    20,
		Seed:     7,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{
				LAP:   testLAP,
				UAP:   testUAP,
				Pings: 60,
				CFOHz: 1500,
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	visible := res.Truth.VisibleCount(protocols.Bluetooth)
	if visible < 5 {
		t.Fatalf("too few visible BT packets: %d (need hop luck; adjust seed)", visible)
	}

	mon := NewRFDump("rfdump-phase", res.Clock, core.PhaseOnly())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.TruthDetections(), protocols.Bluetooth)
	if miss := st.MissRate(); miss > 0.1 {
		t.Errorf("BT phase miss %.3f at 20 dB (found %d/%d)", miss, st.Found, st.Total)
	}

	// Timing detector: misses the first packet of each session but must
	// catch the steady state.
	mon2 := NewRFDump("rfdump-timing", res.Clock, core.TimingOnly())
	out2, err := mon2.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st2 := truth.Match(res.Truth, out2.TruthDetections(), protocols.Bluetooth)
	if miss := st2.MissRate(); miss > 0.35 {
		t.Errorf("BT timing miss %.3f at 20 dB (found %d/%d)", miss, st2.Found, st2.Total)
	}

	// Full pipeline with BT demod using channel hints.
	btd := demod.NewBTDemod(testLAP, testUAP, 8)
	mon3 := NewRFDump("rfdump-both", res.Clock, core.TimingAndPhase(), btd)
	out3, err := mon3.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	validBT := 0
	for _, p := range out3.Packets {
		if p.Valid && p.Proto == protocols.Bluetooth {
			validBT++
		}
	}
	if validBT < visible/2 {
		t.Errorf("decoded %d/%d visible BT packets", validBT, visible)
	}
}

func TestNaiveArchitecture(t *testing.T) {
	res := unicastTrace(t, 22, 4)
	wifiDemod := demod.NewWiFiDemod()
	btd := demod.NewBTDemod(testLAP, testUAP, 8)
	mon := NewNaive(res.Clock, wifiDemod, btd)
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.PacketDetections(), protocols.WiFi80211b1M)
	if miss := st.MissRateNonCollided(); miss > 0.1 {
		t.Errorf("naive miss rate %.3f (found %d/%d)", miss, st.Found, st.Total)
	}
	if out.CPU <= 0 {
		t.Error("no CPU accounted")
	}
}

func TestNaiveEnergyArchitecture(t *testing.T) {
	res := unicastTrace(t, 22, 4)
	wifiDemod := demod.NewWiFiDemod()
	mon := NewNaiveEnergy(res.Clock, true, wifiDemod)
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.PacketDetections(), protocols.WiFi80211b1M)
	if miss := st.MissRateNonCollided(); miss > 0.1 {
		t.Errorf("naive-energy miss rate %.3f (found %d/%d)", miss, st.Found, st.Total)
	}

	// The no-demod variant must be clearly cheaper than the demod
	// variant. (The margin was 2x when demodulation ran on the direct
	// per-sample kernels; the FFT demod path cut always-demod cost to
	// about twice the energy scan, so the gap asserted here is 20%.)
	monND := NewNaiveEnergy(res.Clock, false)
	outND, err := monND.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if outND.CPU*5 >= out.CPU*4 {
		t.Errorf("energy-only CPU %v not well below demod CPU %v", outND.CPU, out.CPU)
	}
}

func TestRFDumpCheaperThanNaive(t *testing.T) {
	res := unicastTrace(t, 22, 8)
	wifiDemod := demod.NewWiFiDemod()
	btd := demod.NewBTDemod(testLAP, testUAP, 8)

	naive := NewNaive(res.Clock, wifiDemod, btd)
	outN, err := naive.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	rf := NewRFDump("rfdump-timing", res.Clock, core.TimingOnly(), demod.NewWiFiDemod(), demod.NewBTDemod(testLAP, testUAP, 8))
	outR, err := rf.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if outR.CPU*2 >= outN.CPU {
		t.Errorf("RFDump CPU %v not at least 2x cheaper than naive %v", outR.CPU, outN.CPU)
	}
}
