package arch

import (
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// TestERPProtectionScenario reproduces the Table 2 footnote end to end:
// an 802.11g station with protection on sends a CTS-to-self at an
// 802.11b rate before each OFDM exchange. The DSSS phase detector must
// classify (and the demodulator decode) the CTS frames, while the OFDM
// detector classifies the OFDM frames — two detectors, two physical
// layers, one station.
func TestERPProtectionScenario(t *testing.T) {
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  71,
		Sources: []mac.Source{&mac.WiFiGUnicast{
			Pings: 6, PayloadBytes: 300, InterPing: 40_000, Protection: true,
			Requester: addr(0x61), Responder: addr(0x62), BSSID: addr(0x63),
			CFOHz: 1100,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.PhaseOnly()
	cfg.Detectors = append(cfg.Detectors, core.OFDMSpec(core.OFDMConfig{}))
	mon := NewRFDump("erp", res.Clock, cfg, demod.NewWiFiDemod())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}

	// Every CTS-to-self (an 802.11b transmission) found by the DSSS side.
	stB := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
	if stB.Total != 6 {
		t.Fatalf("expected 6 CTS-to-self in truth, have %d", stB.Total)
	}
	if stB.MissRateNonCollided() > 0.2 {
		t.Errorf("CTS-to-self miss %.2f (found %d/%d)", stB.MissRateNonCollided(), stB.Found, stB.Total)
	}

	// Every OFDM frame found by the OFDM side.
	stG := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211g)
	if stG.Total != 24 {
		t.Fatalf("expected 24 OFDM frames in truth, have %d", stG.Total)
	}
	if stG.MissRateNonCollided() > 0.1 {
		t.Errorf("OFDM miss %.2f (found %d/%d)", stG.MissRateNonCollided(), stG.Found, stG.Total)
	}

	// The demodulator actually decodes the CTS frames.
	ctsDecoded := 0
	for _, p := range out.Packets {
		if !p.Valid || len(p.Frame) == 0 {
			continue
		}
		if m, err := wifi.ParseMPDU(p.Frame); err == nil && m.IsCTS() {
			ctsDecoded++
			if m.Duration == 0 {
				t.Error("decoded CTS has zero NAV")
			}
		}
	}
	if ctsDecoded < 5 {
		t.Errorf("decoded %d CTS-to-self frames, want ~6", ctsDecoded)
	}
}

// TestDiscoveryPipeline wires BTDiscover into the full pipeline: unknown
// piconets on the air are named by LAP without any prior configuration.
func TestDiscoveryPipeline(t *testing.T) {
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  72,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{LAP: 0x5A17E3, UAP: 0x21, Pings: 40, InterPingSlots: 2, CFOHz: 800},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	visible := res.Truth.VisibleCount(protocols.Bluetooth)
	if visible < 3 {
		t.Skip("hop luck: too few audible packets")
	}
	disc := demod.NewBTDiscover(8)
	mon := NewRFDump("discover", res.Clock, core.PhaseOnly(), disc)
	if _, err := mon.Process(res.Samples); err != nil {
		t.Fatal(err)
	}
	laps := disc.KnownLAPs()
	if len(laps) != 1 || laps[0] != 0x5A17E3 {
		t.Fatalf("discovered LAPs %06x, want [5a17e3]", laps)
	}
}
