package arch

import (
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
	_ "rfdump/internal/protocols/builtin"
	"rfdump/internal/truth"
)

// The module conformance suite: every registered protocol module that
// can both transmit (traffic fragment) and detect must close its own
// loop — modulate a clean trace through the emulated front end, detect
// it with its own registered detectors at high SNR, and, where an
// analyzer is attached, decode it. The suite iterates the registry, so
// a module registered tomorrow is conformance-tested tomorrow with no
// edits here.
//
// Per-module miss tolerances: detectors warm up differently (the
// microwave detector must observe several AC cycles before its first
// verdict; the ZigBee SIFS detector needs a request/ack pair), so the
// gate is per-module where warm-up is inherent, strict where it is not.
var conformanceMissTolerance = map[string]float64{
	"wifi":      0.05,
	"bt":        0.10,
	"wifig":     0.10,
	"zigbee":    0.35,
	"microwave": 0.50,
}

// moduleTrace synthesizes a single-protocol ether from the module's own
// registered traffic fragment.
func moduleTrace(t *testing.T, m *protocols.Module, count int, snrDB float64) *ether.Result {
	t.Helper()
	tr := m.NewTraffic(protocols.TrafficOptions{Count: count})
	if len(tr.Sources) == 0 {
		t.Fatalf("module %q traffic fragment yielded no sources", m.Key)
	}
	var srcs []mac.Source
	for _, s := range tr.Sources {
		ms, ok := s.(mac.Source)
		if !ok {
			t.Fatalf("module %q traffic source %T does not implement mac.Source", m.Key, s)
		}
		srcs = append(srcs, ms)
	}
	res, err := ether.Run(ether.Config{
		Duration: tr.Duration,
		SNRdB:    snrDB,
		Seed:     27,
		Sources:  srcs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestModuleConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite synthesizes full traces")
	}
	ran := 0
	for _, m := range protocols.Modules() {
		if !m.HasTraffic() || len(m.Detectors()) == 0 {
			continue
		}
		ran++
		t.Run(m.Key, func(t *testing.T) {
			res := moduleTrace(t, m, 12, 20)

			reg := metrics.NewRegistry()
			cfg := core.Detect(m.Detectors()...)
			cfg.Metrics = reg
			var analyzers []core.Analyzer
			if m.HasAnalyzer() {
				analyzers = append(analyzers, m.NewAnalyzer(protocols.AnalyzerOptions{}))
			}
			mon := NewRFDump("conformance-"+m.Key, res.Clock, cfg, analyzers...)
			out, err := mon.Process(res.Samples)
			if err != nil {
				t.Fatal(err)
			}

			fam := m.ID.Family()
			st := truth.Match(res.Truth, out.TruthDetections(), fam)
			if st.Total == 0 {
				t.Fatalf("module %q traffic produced no visible %v truth records", m.Key, fam)
			}
			tol, ok := conformanceMissTolerance[m.Key]
			if !ok {
				tol = 0.35 // out-of-tree module default
			}
			if miss := st.MissRateNonCollided(); miss > tol {
				t.Errorf("module %q missed its own traffic: %v (tolerance %.2f)", m.Key, st, tol)
			}
			if st.FalsePosRate > 0.05 {
				t.Errorf("module %q false-positive rate %.4f on its own clean trace", m.Key, st.FalsePosRate)
			}

			// Detections must claim the module's own family — a detector
			// that labels its own protocol as something else is broken
			// regardless of span accuracy.
			for _, d := range out.Detections {
				if d.Family.Family() != fam {
					t.Errorf("module %q detector %q claimed family %v", m.Key, d.Detector, d.Family)
				}
			}

			// Where the module can analyze, the decode loop must close.
			if m.HasAnalyzer() {
				valid := 0
				for _, p := range out.Packets {
					if p.Valid && p.Proto.Family() == fam {
						valid++
					}
				}
				if valid == 0 {
					t.Errorf("module %q analyzer decoded no valid packets from its own traffic", m.Key)
				}
			}

			// Metric names derive from the module's registry label, so a
			// freshly registered protocol shows up in /api/metricz with
			// no dashboard edits. Lock that contract per module.
			counters := reg.Snapshot().Counters
			label := protocols.LabelFor(fam)
			if counters["dispatch/"+label+"/detections"] == 0 {
				t.Errorf("module %q: no dispatch/%s/detections counter in a metered run", m.Key, label)
			}
			if counters["dispatch/"+label+"/forwarded_spans"] == 0 {
				t.Errorf("module %q: no dispatch/%s/forwarded_spans counter", m.Key, label)
			}
			if m.HasAnalyzer() && counters["demod/"+label+"/crc_pass"] == 0 {
				t.Errorf("module %q: no demod/%s/crc_pass counter", m.Key, label)
			}
		})
	}
	if ran < 5 {
		t.Errorf("conformance covered %d modules, want the 5 builtins at least", ran)
	}
}

// TestModuleCrossFamilyRejection runs the FULL registry — every
// detector and every analyzer — over each module's single-protocol
// trace. Fast detectors are deliberately permissive (the paper accepts
// detector false positives because the analysis stage is strict), so
// the registry-wide invariant gated here is the end-to-end one: the
// module's own family is detected, and no analyzer decodes a valid
// packet of a family the trace never transmitted.
func TestModuleCrossFamilyRejection(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance suite synthesizes full traces")
	}
	for _, m := range protocols.Modules() {
		if !m.HasTraffic() || len(m.Detectors()) == 0 {
			continue
		}
		t.Run(m.Key, func(t *testing.T) {
			res := moduleTrace(t, m, 8, 20)
			// Families actually on the air (ERP protection puts 802.11b
			// CTS-to-self frames inside the 802.11g module's trace).
			transmitted := map[protocols.ID]bool{}
			for _, r := range res.Truth.Records {
				if r.Visible {
					transmitted[r.Proto.Family()] = true
				}
			}

			mon := NewRFDump("cross-"+m.Key, res.Clock,
				core.Detect(protocols.AllDetectors()...),
				core.RegistryAnalyzers(protocols.AnalyzerOptions{})...)
			out, err := mon.Process(res.Samples)
			if err != nil {
				t.Fatal(err)
			}

			fam := m.ID.Family()
			own := 0
			for _, d := range out.Detections {
				if d.Family.Family() == fam {
					own++
				}
			}
			if own == 0 {
				t.Fatalf("module %q not detected by the full registry pipeline", m.Key)
			}
			for _, p := range out.Packets {
				if p.Valid && !transmitted[p.Proto.Family()] {
					t.Errorf("module %q trace decoded a valid %v packet — nothing of that family was transmitted",
						m.Key, p.Proto.Family())
				}
			}
		})
	}
}
