// Package arch assembles the three monitoring architectures the paper
// compares (Section 5.2 / Figure 9): the naïve design that demodulates
// everything, the naïve design with an energy-detection filter, and
// RFDump itself — all behind one Monitor interface with per-block CPU
// accounting so the efficiency experiments treat them identically.
package arch

import (
	"sort"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// Result is a monitoring run's output.
type Result struct {
	// Detections is the fast-detection output (empty for architectures
	// without a detection stage).
	Detections []core.Detection
	// Forwarded is the per-family merged sample ranges handed to the
	// analysis stage.
	Forwarded map[protocols.ID][]iq.Interval
	// Packets is everything the demodulators decoded.
	Packets []demod.Packet
	// CPU is total processing time (single-threaded).
	CPU time.Duration
	// PerBlock breaks CPU down by block.
	PerBlock []flowgraph.BlockStat
	// StreamLen and Clock describe the processed trace.
	StreamLen iq.Tick
	Clock     iq.Clock
}

// CPUPerRealTime is the Figure 9 y-axis: CPU time over trace real time.
func (r *Result) CPUPerRealTime() float64 {
	rt := r.Clock.Duration(r.StreamLen)
	if rt <= 0 {
		return 0
	}
	return float64(r.CPU) / float64(rt)
}

// TruthDetections converts detections for accuracy matching.
func (r *Result) TruthDetections() []truth.Detection {
	out := make([]truth.Detection, len(r.Detections))
	for i, d := range r.Detections {
		out[i] = truth.Detection{
			Family:     d.Family,
			Span:       d.Span,
			Detector:   d.Detector,
			Confidence: d.Confidence,
			Channel:    d.Channel,
		}
	}
	return out
}

// PacketDetections converts decoded packets into detections, which is how
// architectures without a detection stage (the naïve ones) participate in
// accuracy comparisons.
func (r *Result) PacketDetections() []truth.Detection {
	out := make([]truth.Detection, 0, len(r.Packets))
	for _, p := range r.Packets {
		out = append(out, truth.Detection{
			Family:     p.Proto.Family(),
			Span:       p.Span,
			Detector:   "demod",
			Confidence: 1,
			Channel:    p.Channel,
		})
	}
	return out
}

// Monitor is one monitoring architecture.
type Monitor interface {
	// Name identifies the configuration ("naive", "rfdump-timing", ...).
	Name() string
	// Process runs the architecture over a trace.
	Process(stream iq.Samples) (*Result, error)
}

// collectEmit gathers analyzer outputs, keeping decoded packets.
type collector struct {
	packets []demod.Packet
}

func (c *collector) emit(item flowgraph.Item) {
	if p, ok := item.(demod.Packet); ok {
		c.packets = append(c.packets, p)
	}
}

// analyzerFamilies returns the families an analyzer set covers, in a
// stable order.
func analyzerFamilies(analyzers []core.Analyzer) []protocols.ID {
	known := protocols.Families()
	var out []protocols.ID
	for _, f := range known {
		for _, a := range analyzers {
			if a.Accepts(f) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func sortedBlockStats(m map[string]time.Duration, items map[string]int64) []flowgraph.BlockStat {
	out := make([]flowgraph.BlockStat, 0, len(m))
	for name, busy := range m {
		out = append(out, flowgraph.BlockStat{Name: name, Busy: busy, Items: items[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	return out
}
