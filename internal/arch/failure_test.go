package arch

import (
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/dsp"
	"rfdump/internal/ether"
	"rfdump/internal/frontend"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/truth"
)

// Failure injection: the monitoring architectures must stay correct (or
// at least silent) on hostile input, never crash or hallucinate traffic.

func TestRFDumpOnEmptyEther(t *testing.T) {
	res, err := ether.Run(ether.Config{Duration: 400_000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewRFDump("r", res.Clock, core.TimingAndPhase(),
		demod.NewWiFiDemod(), demod.NewBTDemod(testLAP, testUAP, 8))
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Packets) != 0 {
		t.Errorf("decoded %d packets from pure noise", len(out.Packets))
	}
	if len(out.Detections) > 4 {
		t.Errorf("%d detections from noise", len(out.Detections))
	}
}

func TestRFDumpOnUnknownInterferer(t *testing.T) {
	// Unknown bursts may be tentatively classified (false positives are
	// allowed by design) but must never decode into valid packets.
	res, err := ether.Run(ether.Config{
		Duration: 2_000_000,
		SNRdB:    20,
		Seed:     32,
		Sources:  []mac.Source{&mac.UnknownInterferer{Bursts: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewRFDump("r", res.Clock, core.TimingAndPhase(),
		demod.NewWiFiDemod(), demod.NewBTDemod(testLAP, testUAP, 8))
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Packets {
		if p.Valid {
			t.Errorf("valid packet decoded from unknown interference: %v", p)
		}
	}
}

func TestRFDumpSurvivesSaturatedFrontend(t *testing.T) {
	res := unicastTrace(t, 22, 4)
	// Gain 3 drives the signal (amplitude ~10 -> 30) well past the
	// full-scale of 8 while the noise floor stays linear: hard clipping
	// of the bursts only.
	fe := frontend.Frontend{Gain: 3, Quantize: true, FullScale: 8, Decimation: 1}
	clipped := fe.Process(res.Samples)
	mon := NewRFDump("r", res.Clock, core.TimingAndPhase(), demod.NewWiFiDemod())
	out, err := mon.Process(clipped)
	if err != nil {
		t.Fatal(err)
	}
	// Hard clipping mangles amplitude but DBPSK phase survives: most
	// packets should still be detected.
	st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
	if st.MissRateNonCollided() > 0.3 {
		t.Errorf("clipped trace miss %.2f", st.MissRateNonCollided())
	}
}

func TestRFDumpTruncatedTrace(t *testing.T) {
	res := unicastTrace(t, 20, 3)
	// Cut mid-packet.
	cut := res.Samples[:len(res.Samples)*2/3]
	mon := NewRFDump("r", res.Clock, core.TimingAndPhase(), demod.NewWiFiDemod())
	if _, err := mon.Process(cut); err != nil {
		t.Fatalf("truncated trace crashed the monitor: %v", err)
	}
}

func TestMonitorsAgreeOnCleanTraffic(t *testing.T) {
	// RFDump must find at least everything the naive architecture finds
	// (same demodulators, more selective input) on a clean trace.
	res := unicastTrace(t, 25, 5)
	naive := NewNaive(res.Clock, demod.NewWiFiDemod())
	outN, err := naive.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	rf := NewRFDump("r", res.Clock, core.TimingAndPhase(), demod.NewWiFiDemod())
	outR, err := rf.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	validCount := func(ps []demod.Packet) int {
		n := 0
		for _, p := range ps {
			if p.Valid {
				n++
			}
		}
		return n
	}
	if validCount(outR.Packets) < validCount(outN.Packets) {
		t.Errorf("RFDump decoded %d valid, naive %d", validCount(outR.Packets), validCount(outN.Packets))
	}
}

func TestNaiveEnergyFindsSameSpansAsPeaks(t *testing.T) {
	// The chunk-level energy filter must cover every true transmission
	// at high SNR (conservatively, per Section 3.1).
	res := unicastTrace(t, 25, 4)
	mon := NewNaiveEnergy(res.Clock, false)
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	// No demod: nothing forwarded, but the filter itself ran. Process
	// again with demod to get forwarded spans.
	monD := NewNaiveEnergy(res.Clock, true, demod.NewWiFiDemod())
	outD, err := monD.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	spans := outD.Forwarded[protocols.WiFi80211b1M]
	for _, r := range res.Truth.Records {
		if !r.Visible {
			continue
		}
		if iq.CoverageOf(r.Span, spans) < r.Span.Len()*9/10 {
			t.Errorf("energy filter dropped transmission %v", r.Span)
		}
	}
}

func TestDetectionOnlyMuchCheaperThanDemod(t *testing.T) {
	res := unicastTrace(t, 20, 6)
	det := NewRFDump("d", res.Clock, core.TimingAndPhase())
	outDet, err := det.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	naive := NewNaive(res.Clock, demod.NewWiFiDemod(), demod.NewBTDemod(testLAP, testUAP, 8))
	outNaive, err := naive.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if outDet.CPU*4 >= outNaive.CPU {
		t.Errorf("detection (%v) not ≪ naive demodulation (%v)", outDet.CPU, outNaive.CPU)
	}
}

func TestPerBlockAccountingSums(t *testing.T) {
	res := unicastTrace(t, 20, 3)
	mon := NewRFDump("r", res.Clock, core.TimingAndPhase(), demod.NewWiFiDemod())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, b := range out.PerBlock {
		sum += int64(b.Busy)
	}
	if sum <= 0 || sum != int64(out.CPU) {
		t.Errorf("per-block sum %d != total %d", sum, int64(out.CPU))
	}
}

func TestNoiseFloorMismatchGraceful(t *testing.T) {
	// A trace with a higher noise floor than expected must still work
	// via calibration (no fixed floor configured anywhere).
	res, err := ether.Run(ether.Config{
		Duration:        3_000_000,
		NoiseFloorPower: 4,
		SNRdB:           18,
		Seed:            33,
		Sources: []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: 4, PayloadBytes: 300,
			InterPing: 40_000,
			Requester: addr(1), Responder: addr(2), BSSID: addr(3),
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := NewRFDump("r", res.Clock, core.TimingOnly())
	out, err := mon.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
	if st.MissRateNonCollided() > 0.1 {
		t.Errorf("calibration failed at floor 4: miss %.2f (found %d/%d)",
			st.MissRateNonCollided(), st.Found, st.Total)
	}
	_ = dsp.NewRand(0) // keep dsp import for symmetry with other tests
}
