package arch

import (
	"testing"

	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
)

// TestRFDumpForwardsFarLessThanEnergyFilter pins the architecture's core
// selectivity claim: on a mixed trace the per-family forwarded sample
// count of RFDump is well below what the energy filter forwards to every
// demodulator.
func TestRFDumpForwardsFarLessThanEnergyFilter(t *testing.T) {
	res := unicastTrace(t, 20, 8)

	rf := NewRFDump("rf", res.Clock, core.TimingAndPhase(), demod.NewWiFiDemod())
	outRF, err := rf.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}
	ne := NewNaiveEnergy(res.Clock, true, demod.NewWiFiDemod(), demod.NewBTDemod(testLAP, testUAP, 8))
	outNE, err := ne.Process(res.Samples)
	if err != nil {
		t.Fatal(err)
	}

	// The energy filter forwards its busy spans to EVERY family; RFDump
	// forwards Bluetooth only where a Bluetooth detector fired.
	neBT := iq.TotalLen(outNE.Forwarded[protocols.Bluetooth])
	rfBT := iq.TotalLen(outRF.Forwarded[protocols.Bluetooth])
	if rfBT*2 >= neBT {
		t.Errorf("RFDump forwarded %d BT samples vs energy filter's %d — no selectivity", rfBT, neBT)
	}

	// And the 802.11 forwarding must still cover the real packets.
	for _, r := range res.Truth.Records {
		if !r.Visible || r.Collided {
			continue
		}
		cov := iq.CoverageOf(r.Span, outRF.Forwarded[protocols.WiFi80211b1M])
		if cov < r.Span.Len()*8/10 {
			t.Errorf("packet %v only %d/%d covered", r.Span, cov, r.Span.Len())
		}
	}
}

// TestCrossDemodRejection feeds each demodulator the other technology's
// clean signal: no valid packets may come out (the false-positive
// tolerance of the detectors rests on demodulators being strict).
func TestCrossDemodRejection(t *testing.T) {
	// A Bluetooth-only ether.
	btRes := bluetoothOnlyTrace(t)
	wifiD := demod.NewWiFiDemod()
	if pkts := wifiD.Demodulate(btRes.Samples, 0); countValid(pkts) != 0 {
		t.Errorf("WiFi demod decoded %d valid packets from Bluetooth traffic", countValid(pkts))
	}

	// An 802.11-only ether.
	wifiRes := unicastTrace(t, 22, 3)
	btD := demod.NewBTDemod(testLAP, testUAP, 8)
	total := 0
	for ch := 0; ch < 8; ch++ {
		total += countValid(btD.DemodulateChannel(wifiRes.Samples, 0, ch))
	}
	if total != 0 {
		t.Errorf("BT demod decoded %d valid packets from 802.11 traffic", total)
	}
}

func countValid(pkts []demod.Packet) int {
	n := 0
	for _, p := range pkts {
		if p.Valid {
			n++
		}
	}
	return n
}

func bluetoothOnlyTrace(t *testing.T) *ether.Result {
	t.Helper()
	res, err := ether.Run(ether.Config{
		SNRdB: 22,
		Seed:  81,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{LAP: testLAP, UAP: testUAP, Pings: 30, InterPingSlots: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}
