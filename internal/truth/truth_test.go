package truth

import (
	"math"
	"testing"

	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

func set(records ...Record) *Set {
	s := &Set{TraceLen: 100_000, Clock: iq.NewClock(0)}
	for _, r := range records {
		s.Add(r)
	}
	s.MarkCollisions()
	return s
}

func rec(proto protocols.ID, start, end iq.Tick) Record {
	return Record{Proto: proto, Span: iq.Interval{Start: start, End: end}, Visible: true}
}

func TestMatchAllFound(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 100, 500),
		rec(protocols.WiFi80211b1M, 1000, 1500),
	)
	dets := []Detection{
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 90, End: 520}},
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 1100, End: 1200}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.Total != 2 || st.Found != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.MissRate() != 0 {
		t.Errorf("miss %v", st.MissRate())
	}
}

func TestMatchMisses(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 100, 500),
		rec(protocols.WiFi80211b1M, 1000, 1500),
		rec(protocols.WiFi80211b1M, 2000, 2500),
	)
	dets := []Detection{
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 100, End: 500}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.Found != 1 || math.Abs(st.MissRate()-2.0/3) > 1e-9 {
		t.Errorf("stats %+v miss=%v", st, st.MissRate())
	}
}

func TestMatchWrongFamilyIgnored(t *testing.T) {
	ts := set(rec(protocols.WiFi80211b1M, 100, 500))
	dets := []Detection{
		{Family: protocols.Bluetooth, Span: iq.Interval{Start: 100, End: 500}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.Found != 0 {
		t.Error("cross-family detection counted")
	}
}

func TestMatchFamilyCollapse(t *testing.T) {
	// An 11 Mbps truth packet is found by a detection labeled with the
	// generic 802.11 family.
	ts := set(rec(protocols.WiFi80211b11M, 100, 500))
	dets := []Detection{
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 200, End: 300}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.Found != 1 {
		t.Error("family collapse failed")
	}
}

func TestFalsePositiveRate(t *testing.T) {
	ts := set(rec(protocols.WiFi80211b1M, 0, 10_000))
	dets := []Detection{
		// 10k samples on the real packet + 5k samples of pure noise.
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 0, End: 10_000}},
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 50_000, End: 55_000}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.FalsePosSamples != 5000 {
		t.Errorf("fp samples %d", st.FalsePosSamples)
	}
	if math.Abs(st.FalsePosRate-0.05) > 1e-9 {
		t.Errorf("fp rate %v", st.FalsePosRate)
	}
}

func TestFalsePositiveCountsOtherFamiliesAsValid(t *testing.T) {
	// Samples of a Bluetooth transmission forwarded as 802.11 are a
	// misclassification but NOT false-positive samples (they belong to a
	// valid transmission; the paper counts non-useful samples only).
	ts := set(rec(protocols.Bluetooth, 0, 10_000))
	dets := []Detection{
		{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 0, End: 10_000}},
	}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.FalsePosSamples != 0 {
		t.Errorf("fp samples %d", st.FalsePosSamples)
	}
}

func TestInvisibleRecordsExcluded(t *testing.T) {
	ts := set(
		rec(protocols.Bluetooth, 100, 500),
		Record{Proto: protocols.Bluetooth, Span: iq.Interval{Start: 1000, End: 1500}, Visible: false},
	)
	st := Match(ts, nil, protocols.Bluetooth)
	if st.Total != 1 {
		t.Errorf("total %d, want 1 (invisible excluded)", st.Total)
	}
	if ts.VisibleCount(protocols.Bluetooth) != 1 {
		t.Error("VisibleCount")
	}
}

func TestCollisionMarking(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 0, 1000),
		rec(protocols.Bluetooth, 500, 1500), // overlaps the first
		rec(protocols.WiFi80211b1M, 5000, 6000),
	)
	if !ts.Records[0].Collided || !ts.Records[1].Collided {
		t.Error("overlap not marked")
	}
	if ts.Records[2].Collided {
		t.Error("clean record marked")
	}
	if f := ts.CollisionFraction(protocols.WiFi80211b1M); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("collision fraction %v", f)
	}
}

func TestCollisionWithInvisibleDoesNotCount(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 0, 1000),
		Record{Proto: protocols.Bluetooth, Span: iq.Interval{Start: 500, End: 1500}, Visible: false},
	)
	if ts.Records[0].Collided {
		t.Error("collision with invisible transmission marked")
	}
}

func TestMissRateNonCollided(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 0, 1000),
		rec(protocols.Bluetooth, 500, 1500),
		rec(protocols.WiFi80211b1M, 5000, 6000),
	)
	// Only the clean packet is detected.
	dets := []Detection{{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 5000, End: 6000}}}
	st := Match(ts, dets, protocols.WiFi80211b1M)
	if st.MissRate() != 0.5 {
		t.Errorf("miss %v", st.MissRate())
	}
	if st.MissRateNonCollided() != 0 {
		t.Errorf("non-collided miss %v", st.MissRateNonCollided())
	}
}

func TestSpansMerged(t *testing.T) {
	ts := set(
		rec(protocols.WiFi80211b1M, 0, 1000),
		rec(protocols.Bluetooth, 500, 1500),
		rec(protocols.WiFi80211b1M, 5000, 6000),
	)
	spans := ts.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans %v", spans)
	}
	if spans[0] != (iq.Interval{Start: 0, End: 1500}) {
		t.Errorf("merged span %v", spans[0])
	}
}

func TestEmptyTruthStats(t *testing.T) {
	ts := set()
	st := Match(ts, nil, protocols.WiFi80211b1M)
	if st.MissRate() != 0 || st.MissRateNonCollided() != 0 {
		t.Error("empty truth rates must be 0")
	}
	if ts.CollisionFraction(protocols.Bluetooth) != 0 {
		t.Error("empty collision fraction")
	}
	if st.String() == "" {
		t.Error("empty String")
	}
}
