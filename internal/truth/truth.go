// Package truth holds ground-truth records for synthesized traces and the
// matching logic that turns detector output into the paper's metrics:
// packet miss rate ("ratio of the number of packets in the correct output
// and not found by the detection modules, to the total number of packets
// in correct output") and false-positive rate ("ratio of the number of
// non-useful samples ... to the total size of the trace"), Section 5.1.
package truth

import (
	"fmt"

	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// Record is one scheduled transmission with exact ground truth.
type Record struct {
	// Proto is the transmitting technology (rate-specific for 802.11b).
	Proto protocols.ID
	// Kind labels the transmission ("data", "ack", "beacon", "l2ping"...).
	Kind string
	// Span is the on-air interval in samples.
	Span iq.Interval
	// Channel is the protocol channel (Bluetooth hop), or -1.
	Channel int
	// SNRdB is the per-burst SNR the channel applied.
	SNRdB float64
	// Frame is the carried link-layer frame (nil for non-packet sources).
	Frame []byte
	// Visible reports whether the transmission falls inside the monitored
	// band (Bluetooth hops outside the captured 8 MHz are invisible; the
	// paper counts only audible channels, Section 5.1.1).
	Visible bool
	// Collided is set by MarkCollisions when the record overlaps another
	// visible transmission in time.
	Collided bool
}

// Set is the ground truth for one trace.
type Set struct {
	Records  []Record
	TraceLen iq.Tick
	Clock    iq.Clock
}

// Add appends a record.
func (s *Set) Add(r Record) { s.Records = append(s.Records, r) }

// MarkCollisions flags records whose spans overlap another visible
// record's span. The paper's traffic-mix analysis discounts collided
// packets ("as we have not incorporated collision detection in our
// detectors yet, these collisions appear as missed packets", 5.1.5).
func (s *Set) MarkCollisions() {
	for i := range s.Records {
		s.Records[i].Collided = false
	}
	for i := range s.Records {
		if !s.Records[i].Visible {
			continue
		}
		for j := i + 1; j < len(s.Records); j++ {
			if !s.Records[j].Visible {
				continue
			}
			if s.Records[i].Span.Overlaps(s.Records[j].Span) {
				s.Records[i].Collided = true
				s.Records[j].Collided = true
			}
		}
	}
}

// VisibleCount returns the number of visible records of the given family
// (protocols.Unknown counts every family).
func (s *Set) VisibleCount(family protocols.ID) int {
	n := 0
	for _, r := range s.Records {
		if r.Visible && (family == protocols.Unknown || r.Proto.Family() == family.Family()) {
			n++
		}
	}
	return n
}

// Spans returns the visible transmission intervals of all records
// (any family) — the "valid transmission" samples for FP accounting.
func (s *Set) Spans() []iq.Interval {
	out := make([]iq.Interval, 0, len(s.Records))
	for _, r := range s.Records {
		if r.Visible {
			out = append(out, r.Span)
		}
	}
	return iq.Merge(out)
}

// Detection is the detector/dispatcher output for matching: a span of
// samples tentatively attributed to a protocol family by a named
// detector.
type Detection struct {
	// Family is the protocol family the detector claims.
	Family protocols.ID
	// Span is the forwarded sample range.
	Span iq.Interval
	// Detector names the module that fired ("802.11-sifs", "bt-phase"...).
	Detector string
	// Confidence in [0, 1] as the architecture's metadata carries it.
	Confidence float64
	// Channel is the claimed protocol channel, or -1.
	Channel int
}

// Stats are the accuracy metrics for one (family, detector set) pairing.
type Stats struct {
	Family protocols.ID
	// Total visible ground-truth packets of the family.
	Total int
	// Found among them (overlapped by a matching detection).
	Found int
	// Collided counts visible packets that overlap other transmissions.
	Collided int
	// FoundNonCollided / TotalNonCollided restrict to clean packets.
	TotalNonCollided int
	FoundNonCollided int
	// FalsePosSamples is the number of forwarded samples outside every
	// valid transmission; FalsePosRate divides by the trace length.
	FalsePosSamples iq.Tick
	FalsePosRate    float64
}

// MissRate is 1 - Found/Total (1.0 when Total is 0 would be misleading;
// it returns 0 for empty truth).
func (st Stats) MissRate() float64 {
	if st.Total == 0 {
		return 0
	}
	return 1 - float64(st.Found)/float64(st.Total)
}

// MissRateNonCollided discounts collided packets.
func (st Stats) MissRateNonCollided() float64 {
	if st.TotalNonCollided == 0 {
		return 0
	}
	return 1 - float64(st.FoundNonCollided)/float64(st.TotalNonCollided)
}

func (st Stats) String() string {
	return fmt.Sprintf("%s: found %d/%d (miss %.4f, non-collided miss %.4f), fp-rate %.5f",
		st.Family.FamilyName(), st.Found, st.Total, st.MissRate(), st.MissRateNonCollided(), st.FalsePosRate)
}

// Match computes Stats for one protocol family given all detections.
// A truth packet is found when any detection of the same family overlaps
// its span. Detections of other families are ignored for the miss rate
// but all detections of this family contribute to its FP accounting.
func Match(ts *Set, dets []Detection, family protocols.ID) Stats {
	st := Stats{Family: family.Family()}
	famDets := make([]iq.Interval, 0, len(dets))
	for _, d := range dets {
		if d.Family.Family() == family.Family() {
			famDets = append(famDets, d.Span)
		}
	}
	merged := iq.Merge(famDets)

	for _, r := range ts.Records {
		if !r.Visible || r.Proto.Family() != family.Family() {
			continue
		}
		st.Total++
		if r.Collided {
			st.Collided++
		} else {
			st.TotalNonCollided++
		}
		found := false
		for _, iv := range merged {
			if iv.Overlaps(r.Span) {
				found = true
				break
			}
		}
		if found {
			st.Found++
			if !r.Collided {
				st.FoundNonCollided++
			}
		}
	}

	// False positives: forwarded samples outside any valid transmission.
	valid := ts.Spans()
	var fp iq.Tick
	for _, iv := range merged {
		fp += iv.Len() - iq.CoverageOf(iv, valid)
	}
	st.FalsePosSamples = fp
	if ts.TraceLen > 0 {
		st.FalsePosRate = float64(fp) / float64(ts.TraceLen)
	}
	return st
}

// CollisionFraction returns the fraction of visible family packets that
// collided (Table 3 context: ~0.016 for 802.11, ~0.012 for Bluetooth).
func (s *Set) CollisionFraction(family protocols.ID) float64 {
	total, col := 0, 0
	for _, r := range s.Records {
		if !r.Visible || r.Proto.Family() != family.Family() {
			continue
		}
		total++
		if r.Collided {
			col++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(col) / float64(total)
}
