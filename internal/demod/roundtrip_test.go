package demod

import (
	"bytes"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// embed modulated burst in noise at given SNR with padding.
func embed(t *testing.T, burst *phy.Burst, snrDB float64, cfoHz float64, pad int, seed uint64) iq.Samples {
	t.Helper()
	rng := dsp.NewRand(seed)
	ch := phy.Channel{SNRdB: snrDB, CFOHz: cfoHz, PhaseRad: 1.234}
	ch.Apply(burst, 1.0, phy.SampleRate)
	stream := make(iq.Samples, pad+len(burst.Samples)+pad)
	stream.Add(iq.Tick(pad), burst.Samples)
	dsp.AWGN(rng, stream, 1.0)
	return stream
}

func TestWiFiRoundTrip1M(t *testing.T) {
	mod, err := wifi.NewModulator(protocols.WiFi80211b1M)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello wireless ether, this is a data frame payload")
	frame := wifi.BuildDataFrame(wifi.Addr{1, 2, 3, 4, 5, 6}, wifi.Addr{7, 8, 9, 10, 11, 12}, wifi.Addr{1, 1, 1, 1, 1, 1}, 42, payload)
	burst, err := mod.Modulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	stream := embed(t, burst, 25, 2000, 500, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	p := pkts[0]
	if p.Proto != protocols.WiFi80211b1M {
		t.Errorf("proto = %v", p.Proto)
	}
	if !p.Valid {
		t.Errorf("packet not valid: %s", p.Note)
	}
	if !bytes.Equal(p.Frame, frame) {
		t.Errorf("frame mismatch: got %d bytes want %d", len(p.Frame), len(frame))
	}
	mpdu, err := wifi.ParseMPDU(p.Frame)
	if err != nil {
		t.Fatal(err)
	}
	if !mpdu.FCSValid {
		t.Error("FCS invalid after parse")
	}
	if !bytes.Equal(mpdu.Payload, payload) {
		t.Error("payload mismatch")
	}
}

func TestWiFiRoundTrip2M(t *testing.T) {
	mod, err := wifi.NewModulator(protocols.WiFi80211b2M)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{7, 8, 9, 10, 11, 12}, wifi.Addr{1, 1, 1, 1, 1, 1}, 7, payload)
	burst, err := mod.Modulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	stream := embed(t, burst, 25, 1000, 300, 2)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	p := pkts[0]
	if p.Proto != protocols.WiFi80211b2M {
		t.Errorf("proto = %v", p.Proto)
	}
	if !p.Valid {
		t.Errorf("packet not valid: %s", p.Note)
	}
	if !bytes.Equal(p.Frame, frame) {
		t.Errorf("frame mismatch")
	}
}

func TestWiFiAckRoundTrip(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildAck(wifi.Addr{9, 9, 9, 9, 9, 9})
	burst, err := mod.Modulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	stream := embed(t, burst, 20, 0, 200, 3)
	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 || !pkts[0].Valid {
		t.Fatalf("ACK decode failed: %v", pkts)
	}
	mpdu, err := wifi.ParseMPDU(pkts[0].Frame)
	if err != nil || !mpdu.IsAck() {
		t.Fatalf("not an ACK: %v %v", mpdu, err)
	}
}

func TestWiFiCCKHeaderOnly(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b11M)
	payload := make([]byte, 400)
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, payload)
	burst, err := mod.Modulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	stream := embed(t, burst, 25, 0, 300, 4)
	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1 (header-only)", len(pkts))
	}
	if pkts[0].Proto != protocols.WiFi80211b11M {
		t.Errorf("proto = %v", pkts[0].Proto)
	}
	if pkts[0].Frame != nil {
		t.Error("CCK payload should not decode at 8 Msps")
	}
}

func TestBluetoothRoundTrip(t *testing.T) {
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH5, SEQN: 1}
	clk := uint32(0x12345)
	// Channel 5 of 8 monitored channels.
	ch := 5
	offsetHz := (float64(ch) - 3.5) * 1e6
	burst := mod.ModulatePacket(dev, h, payload, clk, offsetHz, ch)
	stream := embed(t, burst, 25, 3000, 400, 5)

	d := NewBTDemod(dev.LAP, dev.UAP, 8)
	pkts := d.DemodulateChannel(stream, 0, ch)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	p := pkts[0]
	if !p.Valid {
		t.Fatalf("packet invalid: %s", p.Note)
	}
	if !bytes.Equal(p.Frame, payload) {
		t.Errorf("payload mismatch: got %d bytes", len(p.Frame))
	}
	if p.Channel != ch {
		t.Errorf("channel = %d want %d", p.Channel, ch)
	}
}

func TestBluetoothWrongChannelSilent(t *testing.T) {
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH1}
	burst := mod.ModulatePacket(dev, h, []byte{1, 2, 3}, 0, (5.0-3.5)*1e6, 5)
	stream := embed(t, burst, 25, 0, 400, 6)
	d := NewBTDemod(dev.LAP, dev.UAP, 8)
	// Demodulating a distant channel should find nothing.
	if pkts := d.DemodulateChannel(stream, 0, 0); len(pkts) != 0 {
		t.Fatalf("channel 0 decoded %d packets from channel-5 signal", len(pkts))
	}
}

func TestWiFiDemodOnNoise(t *testing.T) {
	rng := dsp.NewRand(7)
	stream := dsp.NoiseBlock(rng, 100_000, 1.0)
	d := NewWiFiDemod()
	if pkts := d.Demodulate(stream, 0); len(pkts) != 0 {
		t.Fatalf("decoded %d packets from pure noise", len(pkts))
	}
}

func TestBTDemodOnNoise(t *testing.T) {
	rng := dsp.NewRand(8)
	stream := dsp.NoiseBlock(rng, 100_000, 1.0)
	d := NewBTDemod(0x9E8B33, 0x47, 8)
	for ch := 0; ch < 8; ch++ {
		if pkts := d.DemodulateChannel(stream, 0, ch); len(pkts) != 0 {
			t.Fatalf("ch %d decoded %d packets from noise", ch, len(pkts))
		}
	}
}

func TestBluetoothDMRoundTrip(t *testing.T) {
	// DM5: payload protected by the rate-2/3 FEC.
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	payload := make([]byte, 150)
	for i := range payload {
		payload[i] = byte(i ^ 0x5A)
	}
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDM5}
	ch := 4
	burst := mod.ModulatePacket(dev, h, payload, 0x222, (float64(ch)-3.5)*1e6, ch)
	stream := embed(t, burst, 25, 1000, 400, 9)

	d := NewBTDemod(dev.LAP, dev.UAP, 8)
	pkts := d.DemodulateChannel(stream, 0, ch)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets", len(pkts))
	}
	if !pkts[0].Valid || !bytes.Equal(pkts[0].Frame, payload) {
		t.Fatalf("DM5 decode failed: %v", pkts[0])
	}
	if pkts[0].Note != "DM5" {
		t.Errorf("note %q", pkts[0].Note)
	}
}

func TestBluetoothDMBeatsDHAtLowSNR(t *testing.T) {
	// The reason DM exists: at an SNR where raw bits start flipping, the
	// FEC-protected payload should survive more often. Compare decode
	// success over several trials at a marginal SNR.
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	payload := make([]byte, 100)
	ch := 3
	trial := func(ptype bluetooth.PacketType, seed uint64) bool {
		h := bluetooth.Header{LTAddr: 1, Type: ptype}
		burst := mod.ModulatePacket(dev, h, payload, 7, (float64(ch)-3.5)*1e6, ch)
		stream := embed(t, burst, 7.2, 0, 400, seed)
		d := NewBTDemod(dev.LAP, dev.UAP, 8)
		pkts := d.DemodulateChannel(stream, 0, ch)
		return len(pkts) == 1 && pkts[0].Valid
	}
	dmOK, dhOK := 0, 0
	const trials = 30
	for s := uint64(0); s < trials; s++ {
		if trial(bluetooth.TypeDM5, 100+s) {
			dmOK++
		}
		if trial(bluetooth.TypeDH5, 100+s) {
			dhOK++
		}
	}
	if dmOK < dhOK {
		t.Errorf("DM5 decoded %d/%d vs DH5 %d/%d at marginal SNR; FEC should help",
			dmOK, trials, dhOK, trials)
	}
	if dmOK == 0 {
		t.Errorf("DM5 never decoded at marginal SNR (dm=%d dh=%d)", dmOK, dhOK)
	}
}
