package demod

import (
	"bytes"
	"testing"
	"time"

	"rfdump/internal/core"
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

func TestWiFiTwoPacketsInOneBlock(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	f1 := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, []byte("first"))
	f2 := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 2, []byte("second"))
	b1, _ := mod.Modulate(f1)
	b2, _ := mod.Modulate(f2)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(b1, 1, phy.SampleRate)
	ch2 := phy.Channel{SNRdB: 25, PhaseRad: 2}
	ch2.Apply(b2, 1, phy.SampleRate)

	gap := 800
	stream := make(iq.Samples, 300+len(b1.Samples)+gap+len(b2.Samples)+300)
	stream.Add(300, b1.Samples)
	stream.Add(iq.Tick(300+len(b1.Samples)+gap), b2.Samples)
	dsp.AWGN(dsp.NewRand(20), stream, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 2 {
		t.Fatalf("decoded %d packets, want 2", len(pkts))
	}
	m1, _ := wifi.ParseMPDU(pkts[0].Frame)
	m2, _ := wifi.ParseMPDU(pkts[1].Frame)
	if string(m1.Payload) != "first" || string(m2.Payload) != "second" {
		t.Errorf("payloads %q %q", m1.Payload, m2.Payload)
	}
	// Spans must be ordered and disjoint.
	if pkts[0].Span.End > pkts[1].Span.Start {
		t.Error("packet spans overlap")
	}
}

func TestWiFiTruncatedBurst(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, make([]byte, 400))
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	// Keep only 60% of the burst: header decodes, payload truncated.
	cut := burst.Samples[:len(burst.Samples)*6/10]
	stream := make(iq.Samples, 300+len(cut)+300)
	stream.Add(300, cut)
	dsp.AWGN(dsp.NewRand(21), stream, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) == 0 {
		t.Skip("truncated burst not found at all (acceptable)")
	}
	if pkts[0].Valid {
		t.Error("truncated packet reported valid")
	}
}

func TestWiFiCorruptedFCSReported(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, make([]byte, 100))
	// Corrupt the payload after the FCS was computed.
	frame[30] ^= 0xFF
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 300+len(burst.Samples)+300)
	stream.Add(300, burst.Samples)
	dsp.AWGN(dsp.NewRand(22), stream, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 {
		t.Fatalf("packets = %d", len(pkts))
	}
	if pkts[0].Valid {
		t.Error("corrupted frame reported valid")
	}
	if pkts[0].Note == "" {
		t.Error("no diagnostic note")
	}
}

func TestWiFiCFOTolerance(t *testing.T) {
	// The demodulator must survive realistic carrier offsets (±25 ppm of
	// 2.4 GHz = ±60 kHz is extreme; 802.11 requires ±25 ppm combined).
	for _, cfo := range []float64{-30e3, -10e3, 10e3, 30e3} {
		mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
		frame := wifi.BuildAck(wifi.Addr{9})
		burst, _ := mod.Modulate(frame)
		ch := phy.Channel{SNRdB: 25, CFOHz: cfo}
		ch.Apply(burst, 1, phy.SampleRate)
		stream := make(iq.Samples, 300+len(burst.Samples)+300)
		stream.Add(300, burst.Samples)
		dsp.AWGN(dsp.NewRand(23), stream, 1)

		d := NewWiFiDemod()
		pkts := d.Demodulate(stream, 0)
		if len(pkts) != 1 || !pkts[0].Valid {
			t.Errorf("CFO %v Hz: packets = %v", cfo, pkts)
		}
	}
}

func TestWiFiBeaconDecode(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildBeacon(wifi.Addr{7, 7, 7, 7, 7, 7}, 3, "OfficeNet")
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 300+len(burst.Samples)+300)
	stream.Add(300, burst.Samples)
	dsp.AWGN(dsp.NewRand(24), stream, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 0)
	if len(pkts) != 1 || !pkts[0].Valid {
		t.Fatalf("packets = %v", pkts)
	}
	m, err := wifi.ParseMPDU(pkts[0].Frame)
	if err != nil || !m.IsBeacon() {
		t.Fatalf("not a beacon: %v %v", m, err)
	}
	if !bytes.Contains(m.Payload, []byte("OfficeNet")) {
		t.Error("SSID lost")
	}
}

func TestWiFiSpanAccurate(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildAck(wifi.Addr{1})
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	const pad = 1000
	stream := make(iq.Samples, pad+len(burst.Samples)+pad)
	stream.Add(pad, burst.Samples)
	dsp.AWGN(dsp.NewRand(25), stream, 1)

	d := NewWiFiDemod()
	pkts := d.Demodulate(stream, 5000) // base offset
	if len(pkts) != 1 {
		t.Fatal("packet count")
	}
	wantStart := iq.Tick(5000 + pad)
	if pkts[0].Span.Start < wantStart-64 || pkts[0].Span.Start > wantStart+64 {
		t.Errorf("span start %d, want ~%d", pkts[0].Span.Start, wantStart)
	}
	wantEnd := wantStart + iq.Tick(len(burst.Samples))
	if pkts[0].Span.End < wantEnd-200 || pkts[0].Span.End > wantEnd+200 {
		t.Errorf("span end %d, want ~%d", pkts[0].Span.End, wantEnd)
	}
}

func TestBTDemodAnalyzeChannelHint(t *testing.T) {
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	payload := make([]byte, 60)
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH1}
	// DH1 max payload is 27; use DH3.
	h.Type = bluetooth.TypeDH3
	ch := 2
	burst := mod.ModulatePacket(dev, h, payload, 9, (float64(ch)-3.5)*1e6, ch)
	chn := phy.Channel{SNRdB: 25}
	chn.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	stream.Add(400, burst.Samples)
	dsp.AWGN(dsp.NewRand(26), stream, 1)

	d := NewBTDemod(dev.LAP, dev.UAP, 8)
	src := &core.StreamAccessor{Stream: stream}
	var got []Packet
	emit := func(it flowgraph.Item) {
		if p, ok := it.(Packet); ok {
			got = append(got, p)
		}
	}
	req := core.AnalysisRequest{
		Family:  protocols.Bluetooth,
		Span:    iq.Interval{Start: 0, End: iq.Tick(len(stream))},
		Channel: ch,
	}
	if err := d.Analyze(src, req, emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].Valid {
		t.Fatalf("channel-hinted analyze: %v", got)
	}
}

func TestBTDemodWrongLAPSilent(t *testing.T) {
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH1}
	burst := mod.ModulatePacket(dev, h, []byte{1, 2, 3}, 0, 0.5e6, 4)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	stream.Add(400, burst.Samples)
	dsp.AWGN(dsp.NewRand(27), stream, 1)

	// A monitor following a different piconet must not decode it.
	d := NewBTDemod(0x123456, 0x47, 8)
	if pkts := d.DemodulateChannel(stream, 0, 4); len(pkts) != 0 {
		t.Errorf("wrong piconet decoded %d packets", len(pkts))
	}
}

func TestBTDemodDH1(t *testing.T) {
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	mod := bluetooth.NewModulator()
	payload := []byte("short dh1 pkt")
	h := bluetooth.Header{LTAddr: 2, Type: bluetooth.TypeDH1}
	burst := mod.ModulatePacket(dev, h, payload, 33, 0.5e6, 4)
	ch := phy.Channel{SNRdB: 25, CFOHz: -4000}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	stream.Add(400, burst.Samples)
	dsp.AWGN(dsp.NewRand(28), stream, 1)

	d := NewBTDemod(dev.LAP, dev.UAP, 8)
	pkts := d.DemodulateChannel(stream, 0, 4)
	if len(pkts) != 1 || !pkts[0].Valid || !bytes.Equal(pkts[0].Frame, payload) {
		t.Fatalf("DH1 decode: %v", pkts)
	}
	if pkts[0].Note != "DH1" {
		t.Errorf("note %q", pkts[0].Note)
	}
}

func TestPacketString(t *testing.T) {
	p := Packet{Proto: protocols.Bluetooth, Channel: 3, Frame: []byte{1}, Valid: true, Note: "DH1"}
	if s := p.String(); s == "" {
		t.Error("empty string")
	}
	bad := Packet{Proto: protocols.WiFi80211b1M, Channel: -1}
	if s := bad.String(); s == "" {
		t.Error("empty string")
	}
}

func TestWiFiHeaderOnlyAnalyzer(t *testing.T) {
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, make([]byte, 700))
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 300+len(burst.Samples)+300)
	stream.Add(300, burst.Samples)
	dsp.AWGN(dsp.NewRand(29), stream, 1)

	full := NewWiFiDemod()
	hdr := NewWiFiHeaderDemod()
	pFull := full.Demodulate(stream, 0)
	pHdr := hdr.Demodulate(stream, 0)
	if len(pFull) != 1 || len(pHdr) != 1 {
		t.Fatalf("full=%d hdr=%d packets", len(pFull), len(pHdr))
	}
	if pHdr[0].Frame != nil {
		t.Error("header-only analyzer decoded a payload")
	}
	if pHdr[0].Proto != protocols.WiFi80211b1M || !pHdr[0].Valid {
		t.Errorf("header-only packet %v", pHdr[0])
	}
	// Same airtime reported (from the PLCP LENGTH field).
	if pHdr[0].Span != pFull[0].Span {
		t.Errorf("spans differ: %v vs %v", pHdr[0].Span, pFull[0].Span)
	}
	if hdr.Name() == full.Name() {
		t.Error("analyzer names must differ for accounting")
	}
}

func TestWiFiHeaderOnlyCheaper(t *testing.T) {
	// The whole point: header-only analysis skips the payload work.
	mod, _ := wifi.NewModulator(protocols.WiFi80211b1M)
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 1, make([]byte, 1400))
	burst, _ := mod.Modulate(frame)
	ch := phy.Channel{SNRdB: 25}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 300+len(burst.Samples)+300)
	stream.Add(300, burst.Samples)
	dsp.AWGN(dsp.NewRand(30), stream, 1)

	timeOf := func(d *WiFiDemod) time.Duration {
		start := time.Now()
		for i := 0; i < 5; i++ {
			d.Demodulate(stream, 0)
		}
		return time.Since(start)
	}
	tFull := timeOf(NewWiFiDemod())
	tHdr := timeOf(NewWiFiHeaderDemod())
	// Both pay the per-sample sync scan; the payload symbol correlation
	// is what header-only saves. Expect a measurable gap, not parity.
	if tHdr >= tFull {
		t.Errorf("header-only (%v) not cheaper than full (%v)", tHdr, tFull)
	}
}

func TestBTDiscoverRecoversUnknownLAPs(t *testing.T) {
	// Two piconets the monitor was never told about.
	mod := bluetooth.NewModulator()
	laps := []uint32{0x33AA55, 0x9E8B33}
	stream := make(iq.Samples, 80_000)
	chn := 3
	offset := (float64(chn) - 3.5) * 1e6
	pos := iq.Tick(2000)
	for i, lap := range laps {
		dev := bluetooth.Device{LAP: lap, UAP: byte(i + 1)}
		h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH1}
		burst := mod.ModulatePacket(dev, h, []byte{1, 2, 3}, uint32(i), offset, chn)
		ch := phy.Channel{SNRdB: 22, CFOHz: float64(i) * 1500}
		ch.Apply(burst, 1, phy.SampleRate)
		stream.Add(pos, burst.Samples)
		pos += iq.Tick(len(burst.Samples)) + 6000
	}
	dsp.AWGN(dsp.NewRand(31), stream, 1)

	d := NewBTDiscover(8)
	sightings := d.DiscoverChannel(stream, 0, chn)
	found := map[uint32]bool{}
	for _, s := range sightings {
		found[s.LAP] = true
		if s.Channel != chn {
			t.Errorf("sighting channel %d", s.Channel)
		}
	}
	for _, lap := range laps {
		if !found[lap] {
			t.Errorf("LAP %06x not discovered (found %v)", lap, found)
		}
	}
	if len(d.KnownLAPs()) != len(laps) {
		t.Errorf("KnownLAPs = %v", d.KnownLAPs())
	}
}

func TestBTDiscoverSilentOnNoise(t *testing.T) {
	stream := dsp.NoiseBlock(dsp.NewRand(32), 200_000, 1.0)
	d := NewBTDiscover(8)
	for ch := 0; ch < 8; ch++ {
		if s := d.DiscoverChannel(stream, 0, ch); len(s) != 0 {
			t.Fatalf("ch %d discovered %v from noise", ch, s)
		}
	}
}

func TestBTDiscoverAsAnalyzer(t *testing.T) {
	mod := bluetooth.NewModulator()
	dev := bluetooth.Device{LAP: 0x70F0F0, UAP: 0x11}
	burst := mod.ModulatePacket(dev, bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH1},
		[]byte{9, 9}, 5, (6.0-3.5)*1e6, 6)
	ch := phy.Channel{SNRdB: 22}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	stream.Add(400, burst.Samples)
	dsp.AWGN(dsp.NewRand(33), stream, 1)

	d := NewBTDiscover(8)
	src := &core.StreamAccessor{Stream: stream}
	var sightings []PiconetSighting
	err := d.Analyze(src, core.AnalysisRequest{
		Family:  protocols.Bluetooth,
		Span:    iq.Interval{Start: 0, End: iq.Tick(len(stream))},
		Channel: 6,
	}, func(it flowgraph.Item) {
		if s, ok := it.(PiconetSighting); ok {
			sightings = append(sightings, s)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sightings) == 0 || sightings[0].LAP != 0x70F0F0 {
		t.Fatalf("sightings = %v", sightings)
	}
}
