package demod

import (
	"sort"

	"rfdump/internal/core"
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/protocols"
)

// PiconetSighting is BTDiscover's product: an unknown piconet identified
// purely from the air.
type PiconetSighting struct {
	// LAP recovered from the BCH-verified sync word.
	LAP uint32
	// Channel the sighting was heard on.
	Channel int
	// At is the sample position of the sync word's end.
	At iq.Tick
}

// BTDiscover is the piconet-discovery analyzer: unlike BTDemod (which
// follows one known piconet, like BlueSniff's target mode), it slices
// GFSK bits on each monitored channel, hunts for *any* valid BCH(64,30)
// sync word, and recovers the transmitting piconet's LAP — turning
// "there is Bluetooth here" (the fast detectors' verdict) into "piconet
// 0x9e8b33 is here". Plug it into the pipeline next to the demodulators.
type BTDiscover struct {
	// Channels in the monitored band.
	Channels int

	filter  *dsp.FIR
	scratch iq.Samples
	dbuf    []float64

	// Seen accumulates distinct LAPs across the run.
	Seen map[uint32]int
}

// NewBTDiscover returns the discovery analyzer.
func NewBTDiscover(channels int) *BTDiscover {
	if channels <= 0 {
		channels = 8
	}
	return &BTDiscover{
		Channels: channels,
		filter:   dsp.LowPass(700_000, float64(phy.SampleRate), 21),
		Seen:     map[uint32]int{},
	}
}

// Name implements core.Analyzer.
func (d *BTDiscover) Name() string { return "bt-discover" }

// Accepts implements core.Analyzer.
func (d *BTDiscover) Accepts(f protocols.ID) bool { return f.Family() == protocols.Bluetooth }

// Analyze implements core.Analyzer.
func (d *BTDiscover) Analyze(src core.SampleAccessor, req core.AnalysisRequest, emit func(flowgraph.Item)) error {
	samples := src.Slice(req.Span)
	if req.Channel >= 0 && req.Channel < d.Channels {
		for _, s := range d.DiscoverChannel(samples, req.Span.Start, req.Channel) {
			emit(s)
		}
		return nil
	}
	for ch := 0; ch < d.Channels; ch++ {
		for _, s := range d.DiscoverChannel(samples, req.Span.Start, ch) {
			emit(s)
		}
	}
	return nil
}

// DiscoverChannel hunts sync words of any piconet on one channel.
func (d *BTDiscover) DiscoverChannel(samples iq.Samples, base iq.Tick, ch int) []PiconetSighting {
	n := len(samples)
	if n < 64*bluetooth.SPS {
		return nil
	}
	if cap(d.scratch) < n {
		d.scratch = make(iq.Samples, n)
		d.dbuf = make([]float64, n)
	}
	shifted := d.scratch[:n]
	copy(shifted, samples)
	offset := (float64(ch) - (float64(d.Channels)-1)/2) * float64(protocols.BTChannelWidthHz)
	shifted.FrequencyShift(-offset, phy.SampleRate, 0)
	d.filter.Reset()
	d.filter.Process(shifted, shifted)
	diffs := dsp.PhaseDiff(shifted, d.dbuf[:0])

	drift := dsp.NewMovingAverage(256)
	var regs [bluetooth.SPS]uint64
	var out []PiconetSighting
	lastAt := iq.Tick(-1)
	var lastLAP uint32

	for i, dv := range diffs {
		mean := drift.Push(dv)
		bit := uint64(0)
		if dv > mean {
			bit = 1
		}
		p := i % bluetooth.SPS
		regs[p] = regs[p]>>1 | bit<<63
		if i < 63*bluetooth.SPS {
			continue
		}
		lap, ok := bluetooth.RecoverLAP(regs[p])
		if !ok {
			continue
		}
		at := base + iq.Tick(i)
		// The eye is several samples wide: collapse duplicate hits of
		// the same sync word.
		if lap == lastLAP && lastAt >= 0 && at-lastAt < iq.Tick(2*bluetooth.SPS) {
			lastAt = at
			continue
		}
		out = append(out, PiconetSighting{LAP: lap, Channel: ch, At: at})
		d.Seen[lap]++
		lastLAP, lastAt = lap, at
	}
	return out
}

// KnownLAPs returns the distinct LAPs seen so far, most-sighted first.
func (d *BTDiscover) KnownLAPs() []uint32 {
	out := make([]uint32, 0, len(d.Seen))
	for lap := range d.Seen {
		out = append(out, lap)
	}
	sort.Slice(out, func(i, j int) bool {
		if d.Seen[out[i]] != d.Seen[out[j]] {
			return d.Seen[out[i]] > d.Seen[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
