package demod

import (
	"math"

	"rfdump/internal/core"
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// WiFiDemod is the 802.11b software demodulator. It continuously
// correlates the Barker phase signature against the input (the sync
// search runs on every sample, like the BBN decoder), locks symbol
// timing, differential-decodes DBPSK/DQPSK, descrambles, hunts the PLCP
// SFD, validates the PLCP header CRC, decodes the PSDU at 1 or 2 Mbps
// and verifies the MAC FCS. 5.5/11 Mbps CCK payloads are reported
// header-only: the 8 MHz capture of the 22 MHz channel cannot carry them
// (the same limitation the paper's USRP imposes).
type WiFiDemod struct {
	// LockThreshold is the signature correlation needed to consider a
	// sample a symbol start.
	LockThreshold float64
	// HeaderOnly makes the analyzer decode just the PLCP preamble and
	// header of each packet — the cheap analysis-stage variant the paper
	// names ("other analysis tools could be used, e.g. demodulation of
	// headers only", Section 2.2). Rate, airtime and position are still
	// reported; the PSDU is skipped entirely.
	HeaderOnly bool
	// Direct forces the reference atan2+cos+sliding-window chain
	// instead of the FFT correlation front end. The equivalence tests
	// compare the two; production paths leave it false.
	Direct bool
	// sig is the intra-symbol transition sign pattern.
	sig [wifi.SymbolSPS - 1]float64
	// template is the 8-sample chip pattern.
	template [wifi.SymbolSPS]float64
	// sigConv correlates the signature against the transition cosines by
	// overlap-save FFT: taps are the time-reversed sign pattern, so
	// corr(i) lands at output index i+SymbolSPS-2.
	sigConv *dsp.FFTConvolver

	// scratch
	diffs  []float64
	coss   []float64
	coss32 []float32
	corrs  []float32
}

// NewWiFiDemod returns a demodulator.
func NewWiFiDemod() *WiFiDemod {
	d := &WiFiDemod{LockThreshold: 0.72}
	d.init()
	return d
}

// NewWiFiHeaderDemod returns the header-only analyzer variant.
func NewWiFiHeaderDemod() *WiFiDemod {
	d := &WiFiDemod{LockThreshold: 0.72, HeaderOnly: true}
	d.init()
	return d
}

func (d *WiFiDemod) init() {
	sig := wifi.PhaseSignature()
	for m := range d.sig {
		if sig[m] == 0 {
			d.sig[m] = 1
		} else {
			d.sig[m] = -1
		}
	}
	t := wifi.SymbolTemplate()
	copy(d.template[:], t)
	// Convolution with reversed, pre-normalized signature taps computes
	// every symbol-start correlation in one pass: with
	// taps[k] = sig[n-1-k]/n (n = SymbolSPS-1), the overlap-save output
	// at index i+n-1 is exactly corr(i) of the direct path.
	n := wifi.SymbolSPS - 1
	taps := make([]float64, n)
	for k := range taps {
		taps[k] = d.sig[n-1-k] / float64(n)
	}
	d.sigConv = dsp.NewFFTConvolver(taps, 0)
}

// Name implements core.Analyzer.
func (d *WiFiDemod) Name() string {
	if d.HeaderOnly {
		return "802.11-hdr-demod"
	}
	return "802.11-demod"
}

// Accepts implements core.Analyzer.
func (d *WiFiDemod) Accepts(f protocols.ID) bool {
	return f.Family() == protocols.WiFi80211b1M
}

// Analyze implements core.Analyzer. A request flagged HeaderOnly (the
// overload gate shedding full demodulation) is decoded in the header-only
// mode for just that request; the toggle is safe because the scheduler
// runs each block on a single goroutine.
func (d *WiFiDemod) Analyze(src core.SampleAccessor, req core.AnalysisRequest, emit func(flowgraph.Item)) error {
	samples := src.Slice(req.Span)
	if req.HeaderOnly && !d.HeaderOnly {
		d.HeaderOnly = true
		defer func() { d.HeaderOnly = false }()
	}
	for _, p := range d.Demodulate(samples, req.Span.Start) {
		emit(p)
	}
	return nil
}

// Demodulate hunts and decodes every 802.11b packet in the block. base
// is the block's position in the stream (for packet spans).
func (d *WiFiDemod) Demodulate(samples iq.Samples, base iq.Tick) []Packet {
	n := len(samples)
	if n < 4*wifi.SymbolSPS {
		return nil
	}
	// corr(i) = signature correlation for a symbol starting at sample i.
	var corr func(i int) float64
	if !d.Direct {
		// FFT front end: cos(Δφ) computed algebraically (re/|z|, no
		// transcendental per sample), then every correlation in one
		// overlap-save convolution pass.
		d.coss32 = dsp.CosPhaseDiff(samples, d.coss32[:0])
		d.corrs = d.sigConv.ApplyReal(d.corrs[:0], d.coss32)
		coss32, corrs := d.coss32, d.corrs
		corr = func(i int) float64 {
			if i+wifi.SymbolSPS-1 > len(coss32) {
				return 0
			}
			return float64(corrs[i+wifi.SymbolSPS-2])
		}
	} else {
		// Reference chain: phase transitions and their cosines for the
		// whole block — the unconditional per-sample work of the direct
		// demodulator.
		if cap(d.diffs) < n {
			d.diffs = make([]float64, n)
			d.coss = make([]float64, n)
		}
		diffs := dsp.PhaseDiff(samples, d.diffs[:0])
		coss := d.coss[:len(diffs)]
		for i, v := range diffs {
			coss[i] = math.Cos(v)
		}
		corr = func(i int) float64 {
			if i+wifi.SymbolSPS-1 > len(coss) {
				return 0
			}
			var acc float64
			for m := 0; m < wifi.SymbolSPS-1; m++ {
				acc += d.sig[m] * coss[i+m]
			}
			return acc / float64(wifi.SymbolSPS-1)
		}
	}

	var packets []Packet
	i := 0
	for i+16*wifi.SymbolSPS < n {
		if corr(i) < d.LockThreshold {
			i++
			continue
		}
		// Verify the lock over the next 16 symbol periods.
		good := 0
		for k := 0; k < 16; k++ {
			if corr(i+k*wifi.SymbolSPS) > d.LockThreshold-0.1 {
				good++
			}
		}
		if good < 12 {
			i++
			continue
		}
		pkt, consumed := d.decodeFrom(samples, i, base)
		if pkt != nil {
			packets = append(packets, *pkt)
			i += consumed
			continue
		}
		// Lock did not yield a packet; skip ahead to avoid rescanning
		// the same false lock sample by sample.
		i += 8 * wifi.SymbolSPS
	}
	return packets
}

// decodeFrom attempts to decode one PPDU whose symbol grid starts at
// sample offset start. It returns the packet (nil if none) and how many
// samples to skip.
func (d *WiFiDemod) decodeFrom(samples iq.Samples, start int, base iq.Tick) (*Packet, int) {
	n := len(samples)
	maxSyms := (n - start) / wifi.SymbolSPS
	if maxSyms < 60 {
		return nil, 0
	}
	// Cap: preamble+header+max PSDU duration at 1 Mbps — or, for the
	// header-only analyzer, just past the PLCP (the cost saving).
	capSyms := wifi.PLCPBits + 18000
	if d.HeaderOnly {
		capSyms = wifi.PLCPBits + 80
	}
	if maxSyms > capSyms {
		maxSyms = capSyms
	}

	// Complex per-symbol correlations against the chip template.
	corrs := make([]complex128, 0, maxSyms)
	var energyRef float64
	lowRun := 0
	for k := 0; k < maxSyms; k++ {
		var accRe, accIm float64
		off := start + k*wifi.SymbolSPS
		for m := 0; m < wifi.SymbolSPS; m++ {
			s := samples[off+m]
			accRe += float64(real(s)) * d.template[m]
			accIm += float64(imag(s)) * d.template[m]
		}
		c := complex(accRe, accIm)
		mag := math.Hypot(accRe, accIm)
		if k < 20 {
			energyRef += mag / 20
		} else if mag < 0.15*energyRef {
			// Tolerate a single noise dip; two in a row means the burst
			// (or its Barker-modulated portion) ended.
			lowRun++
			if lowRun >= 2 {
				break
			}
		} else {
			lowRun = 0
		}
		corrs = append(corrs, c)
	}
	if len(corrs) < 60 {
		return nil, 0
	}

	// Differential phases and CFO estimate (M-power over the DBPSK
	// region; the first 192 symbols are always DBPSK).
	deltas := make([]float64, len(corrs)-1)
	for k := 1; k < len(corrs); k++ {
		deltas[k-1] = phaseOfProduct(corrs[k], corrs[k-1])
	}
	cfoRegion := deltas
	if len(cfoRegion) > wifi.PLCPBits {
		cfoRegion = cfoRegion[:wifi.PLCPBits]
	}
	doubled := make([]float64, len(cfoRegion))
	for i, v := range cfoRegion {
		doubled[i] = dsp.WrapPhase(2 * v)
	}
	cfo := dsp.CircularMean(doubled) / 2

	// DBPSK hard decisions over everything (payload re-decided for 2M).
	bits := make([]byte, len(deltas))
	for k, v := range deltas {
		if math.Abs(dsp.WrapPhase(v-cfo)) > math.Pi/2 {
			bits[k] = 1
		}
	}

	// Descramble and hunt the SFD.
	scr := phy.NewScramble802(0)
	desc := make([]byte, len(bits))
	copy(desc, bits)
	scr.Descramble(desc)
	sfd := wifi.SFDPattern()
	sfdPos := -1
	huntEnd := len(desc) - wifi.HeaderBits - len(sfd) + 1
	if huntEnd > 200 {
		huntEnd = 200
	}
	for p := 8; p < huntEnd; p++ {
		if dsp.BitCorrelate(desc, p, sfd) >= len(sfd)-1 {
			sfdPos = p
			break
		}
	}
	if sfdPos < 0 {
		return nil, 0
	}
	hdrStart := sfdPos + len(sfd)
	hdr, err := wifi.ParseHeaderBits(desc[hdrStart : hdrStart+wifi.HeaderBits])
	if err != nil || !hdr.CRCValid() {
		return nil, 0
	}
	rate, err := hdr.Rate()
	if err != nil {
		return nil, 0
	}

	payloadSym := hdrStart + wifi.HeaderBits // symbol index where PSDU starts
	// +1: deltas[k] carries the bit of symbol k+1, so symbol index i maps
	// to delta index i-1; desc was indexed by delta position already.
	spanStart := base + iq.Tick(start)
	durationUS := int(hdr.LengthUS)
	spanEnd := spanStart + iq.Tick((payloadSym+1+durationUS)*wifi.SymbolSPS)
	consumed := (payloadSym + 1 + durationUS) * wifi.SymbolSPS

	pkt := &Packet{
		Proto:   rate,
		Span:    iq.Interval{Start: spanStart, End: spanEnd},
		Channel: -1,
	}

	if d.HeaderOnly {
		pkt.Valid = true
		pkt.Note = "header only"
		return pkt, consumed
	}

	switch rate {
	case protocols.WiFi80211b1M:
		nbits := durationUS
		if payloadSym+nbits > len(desc) {
			pkt.Note = "truncated payload"
			return pkt, consumed
		}
		frame := phy.BitsToBytesLSB(desc[payloadSym : payloadSym+nbits])
		pkt.Frame = frame
		pkt.Valid = fcsOK(frame)
		if !pkt.Valid {
			pkt.Note = "FCS mismatch"
		}
	case protocols.WiFi80211b2M:
		nsym := durationUS
		if payloadSym+nsym > len(deltas) {
			pkt.Note = "truncated payload"
			return pkt, consumed
		}
		// Re-decide payload symbols as DQPSK and continue the
		// descrambler from the header's state.
		raw := make([]byte, 0, nsym*2)
		for k := payloadSym; k < payloadSym+nsym; k++ {
			d0, d1 := wifi.DQPSKDecide(deltas[k] - cfo)
			raw = append(raw, d0, d1)
		}
		// The descrambler state after the header: rebuild by replaying
		// the scrambled bits up to payloadSym.
		scr2 := phy.NewScramble802(0)
		replay := make([]byte, payloadSym)
		copy(replay, bits[:payloadSym])
		scr2.Descramble(replay)
		scr2.Descramble(raw)
		frame := phy.BitsToBytesLSB(raw)
		pkt.Frame = frame
		pkt.Valid = fcsOK(frame)
		if !pkt.Valid {
			pkt.Note = "FCS mismatch"
		}
	default:
		// 5.5/11 Mbps CCK: headers only at this capture bandwidth.
		pkt.Valid = true
		pkt.Note = "CCK payload undecodable at 8 Msps"
	}
	return pkt, consumed
}

func fcsOK(frame []byte) bool {
	if len(frame) < 8 {
		return false
	}
	body := frame[:len(frame)-4]
	want := uint32(frame[len(frame)-4]) | uint32(frame[len(frame)-3])<<8 |
		uint32(frame[len(frame)-2])<<16 | uint32(frame[len(frame)-1])<<24
	return phy.CRC32(body) == want
}

func phaseOfProduct(b, a complex128) float64 {
	re := real(b)*real(a) + imag(b)*imag(a)
	im := imag(b)*real(a) - real(b)*imag(a)
	return math.Atan2(im, re)
}
