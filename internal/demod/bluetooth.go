package demod

import (
	"math/bits"

	"rfdump/internal/core"
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/protocols"
)

// BTDemod is the Bluetooth software demodulator (the BlueSniff role): for
// each of the monitored channels it shifts the channel to baseband,
// low-pass filters, FM-discriminates, slices symbols at every timing
// phase, correlates the 64-bit sync word continuously, majority-decodes
// the FEC-1/3 header (brute-forcing the whitening clock against the HEC,
// as BlueSniff does), and decodes DH payloads with CRC verification.
//
// Like BlueSniff it must be told which piconet to follow (LAP/UAP); the
// monitoring pipeline is passive and cannot page the devices to ask.
type BTDemod struct {
	// LAP/UAP identify the piconet whose access code is correlated.
	LAP uint32
	UAP byte
	// Channels is how many 1 MHz channels the band holds (8).
	Channels int
	// MaxSyncErrors tolerated in the 64-bit sync correlation.
	MaxSyncErrors int
	// HeaderOnly stops decoding after the FEC header (first HEC-passing
	// whitening candidate); the payload — the expensive part — is
	// skipped. The overload gate sets it per request when shedding.
	HeaderOnly bool
	// Direct forces the reference per-channel mix+FIR+atan2 chain
	// instead of the FFT channelizer front end. The equivalence tests
	// compare the two; production paths leave it false.
	Direct bool

	sync    uint64
	filter  *dsp.FIR
	chanzr  *dsp.Channelizer
	scratch iq.Samples
	dbuf    []float64
}

// NewBTDemod returns a demodulator for one piconet.
func NewBTDemod(lap uint32, uap byte, channels int) *BTDemod {
	if channels <= 0 {
		channels = 8
	}
	filter := dsp.LowPass(700_000, float64(phy.SampleRate), 21)
	// The channelizer extracts every monitored channel from one forward
	// transform per segment instead of a mix+FIR pass per channel. A
	// nil channelizer (offsets that miss the bin grid at this block
	// size) silently falls back to the direct chain.
	chanzr, _ := dsp.NewChannelizer(dsp.ChannelizerConfig{
		Taps:      filter.Taps(),
		Channels:  channels,
		SpacingHz: float64(protocols.BTChannelWidthHz),
		RateHz:    float64(phy.SampleRate),
		BlockLen:  512,
	})
	return &BTDemod{
		LAP:           lap,
		UAP:           uap,
		Channels:      channels,
		MaxSyncErrors: 7,
		sync:          bluetooth.SyncWord(lap),
		filter:        filter,
		chanzr:        chanzr,
	}
}

// Name implements core.Analyzer.
func (d *BTDemod) Name() string { return "bt-demod" }

// Accepts implements core.Analyzer.
func (d *BTDemod) Accepts(f protocols.ID) bool { return f.Family() == protocols.Bluetooth }

// Analyze implements core.Analyzer: when the request names a channel only
// that channel's demodulator runs (the efficiency edge phase and
// frequency detection give, Section 5.2); otherwise all channels run.
func (d *BTDemod) Analyze(src core.SampleAccessor, req core.AnalysisRequest, emit func(flowgraph.Item)) error {
	samples := src.Slice(req.Span)
	if req.HeaderOnly && !d.HeaderOnly {
		// Degraded mode for this request only; safe, the scheduler runs
		// each block on a single goroutine.
		d.HeaderOnly = true
		defer func() { d.HeaderOnly = false }()
	}
	if req.Channel >= 0 && req.Channel < d.Channels {
		for _, p := range d.DemodulateChannel(samples, req.Span.Start, req.Channel) {
			emit(p)
		}
		return nil
	}
	if d.chanzr != nil && !d.Direct && len(samples) >= bluetooth.AccessCodeBits*bluetooth.SPS {
		// All channels requested: share one forward FFT per segment
		// across the whole bank.
		d.chanzr.ExtractAll(samples, func(ch int, out []complex64) {
			d.dbuf = dsp.FastPhaseDiff(out, d.dbuf[:0])
			for _, p := range d.scanChannel(d.dbuf, req.Span.Start, ch) {
				emit(p)
			}
		})
		return nil
	}
	for ch := 0; ch < d.Channels; ch++ {
		for _, p := range d.DemodulateChannel(samples, req.Span.Start, ch) {
			emit(p)
		}
	}
	return nil
}

// channelOffsetHz returns the channel center relative to band center.
func (d *BTDemod) channelOffsetHz(ch int) float64 {
	return (float64(ch) - (float64(d.Channels)-1)/2) * float64(protocols.BTChannelWidthHz)
}

// DemodulateChannel hunts and decodes Bluetooth packets on one channel
// within the block.
func (d *BTDemod) DemodulateChannel(samples iq.Samples, base iq.Tick, ch int) []Packet {
	n := len(samples)
	if n < bluetooth.AccessCodeBits*bluetooth.SPS {
		return nil
	}
	diffs := d.discriminate(samples, ch)
	return d.scanChannel(diffs, base, ch)
}

// discriminate produces the FM discriminator output for one channel:
// channel extraction (FFT channelizer, or the reference mix+FIR chain
// when Direct is set) followed by the adjacent-sample phase difference.
func (d *BTDemod) discriminate(samples iq.Samples, ch int) []float64 {
	n := len(samples)
	if d.chanzr != nil && !d.Direct {
		d.scratch = d.chanzr.Extract(d.scratch[:0], samples, ch)
		d.dbuf = dsp.FastPhaseDiff(d.scratch, d.dbuf[:0])
		return d.dbuf
	}
	// Reference chain: shift channel to baseband and low-pass — the
	// unconditional per-sample cost of a direct channel demodulator.
	if cap(d.scratch) < n {
		d.scratch = make(iq.Samples, n)
	}
	shifted := d.scratch[:n]
	copy(shifted, samples)
	shifted.FrequencyShift(-d.channelOffsetHz(ch), phy.SampleRate, 0)
	d.filter.Reset()
	d.filter.Process(shifted, shifted)
	d.dbuf = dsp.PhaseDiff(shifted, d.dbuf[:0])
	return d.dbuf
}

// scanChannel runs the continuous sync-word correlation at every symbol
// phase over a channel's discriminator output: slice a bit at each
// sample against a slowly-adapting drift estimate, and keep one 64-bit
// shift register per timing phase.
func (d *BTDemod) scanChannel(diffs []float64, base iq.Tick, ch int) []Packet {
	// The drift estimate is a 256-sample moving average, inlined so the
	// slicer compares dv·filled > sum — one multiply instead of the
	// division dv > sum/filled it is equivalent to (filled > 0). The
	// division is only paid when a sync word fires, where decodePacket
	// wants the mean itself.
	var window [256]float64
	var sum float64
	filled, pos := 0, 0

	var regs [bluetooth.SPS]uint64
	var packets []Packet
	skipUntil := 0

	for i, dv := range diffs {
		sum -= window[pos]
		window[pos] = dv
		sum += dv
		pos++
		if pos == len(window) {
			pos = 0
		}
		if filled < len(window) {
			filled++
		}
		bit := uint64(0)
		if dv*float64(filled) > sum {
			bit = 1
		}
		p := i % bluetooth.SPS
		regs[p] = regs[p]>>1 | bit<<63
		if i < skipUntil || i < 63*bluetooth.SPS {
			continue
		}
		if bits.OnesCount64(regs[p]^d.sync) > d.MaxSyncErrors {
			continue
		}
		// Sync word matched ending at sample i: decode from here.
		pkt, endSample := d.decodePacket(diffs, i, sum/float64(filled), ch, base)
		if pkt != nil {
			packets = append(packets, *pkt)
			skipUntil = endSample
		} else {
			skipUntil = i + bluetooth.SPS // avoid re-firing on same spot
		}
	}
	return packets
}

// refineSync returns the offset in [0, SPS) to add to the firing index so
// that bit slicing happens at the center of the timing eye. For each
// candidate offset it counts sync-word bit errors when re-slicing at that
// grid; the returned offset is the middle of the best run.
func (d *BTDemod) refineSync(diffs []float64, syncEnd int, drift float64) int {
	const span = bluetooth.SPS
	errsAt := make([]int, span)
	for cand := 0; cand < span; cand++ {
		e := 0
		for k := 0; k < 64; k++ {
			idx := syncEnd + cand - (63-k)*bluetooth.SPS
			if idx < 0 || idx >= len(diffs) {
				e = 64
				break
			}
			bit := uint64(0)
			if diffs[idx] > drift {
				bit = 1
			}
			if bit != (d.sync>>k)&1 {
				e++
			}
		}
		errsAt[cand] = e
	}
	// Find the minimum error value, then the longest contiguous run at
	// (or within 1 of) the minimum, and return its middle.
	minE := errsAt[0]
	for _, e := range errsAt {
		if e < minE {
			minE = e
		}
	}
	bestStart, bestLen := 0, 0
	runStart, runLen := -1, 0
	for c := 0; c < span; c++ {
		if errsAt[c] <= minE+1 {
			if runStart < 0 {
				runStart = c
			}
			runLen++
			if runLen > bestLen {
				bestLen = runLen
				bestStart = runStart
			}
		} else {
			runStart, runLen = -1, 0
		}
	}
	return bestStart + bestLen/2
}

// decodePacket decodes header+payload given the sync word's last sample
// index. Returns the packet (nil on failure) and the sample index to
// resume scanning at.
func (d *BTDemod) decodePacket(diffs []float64, syncEnd int, drift float64, ch int, base iq.Tick) (*Packet, int) {
	// Refine symbol timing: the sync correlator fires at the left edge
	// of the eye (the first intra-symbol offset clearing the error
	// budget), but a long DH5 needs center sampling. Re-slice the 64
	// sync bits at each grid offset ahead of the firing point and move
	// to the center of the zero-ish-error eye.
	syncEnd += d.refineSync(diffs, syncEnd, drift)

	sliceBit := func(sym int) (byte, bool) {
		// Symbol k after the sync word: sample the symbol center.
		idx := syncEnd + (sym+1)*bluetooth.SPS
		if idx >= len(diffs) {
			return 0, false
		}
		if diffs[idx] > drift {
			return 1, true
		}
		return 0, true
	}

	// Trailer: 4 bits between sync word and header.
	const trailerBits = 4
	readBits := func(off, n int) ([]byte, bool) {
		out := make([]byte, n)
		for k := 0; k < n; k++ {
			b, ok := sliceBit(off + k)
			if !ok {
				return nil, false
			}
			out[k] = b
		}
		return out, true
	}

	hdrAir, ok := readBits(trailerBits, bluetooth.HeaderAirBits)
	if !ok {
		return nil, syncEnd + bluetooth.SPS
	}

	spanStart := base + iq.Tick(syncEnd) - iq.Tick((bluetooth.AccessCodeBits-trailerBits)*bluetooth.SPS)
	if spanStart < base {
		spanStart = base
	}

	// Brute-force the whitening clock against the HEC (the receiver does
	// not know CLK; 64 candidate inits, exactly what BlueSniff does). An
	// 8-bit HEC passes by chance for ~1 in 4 wrong clocks across 64
	// trials, so a candidate is only accepted outright when the payload
	// CRC also validates; the first HEC-passing candidate is kept as a
	// fallback for header-only packets.
	var fallback *Packet
	fallbackEnd := 0
	for c := 0; c < 64; c++ {
		w := phy.NewWhitener(byte(c) | 0x40)
		tmp := make([]byte, len(hdrAir))
		copy(tmp, hdrAir)
		w.XorStream(tmp)
		hdr, hecOK := bluetooth.DecodeHeader(tmp, d.UAP)
		if !hecOK {
			continue
		}
		if d.HeaderOnly {
			// Shed mode: the first HEC-passing header is reported as-is
			// and the payload (the expensive part) is never decoded.
			end := syncEnd + (trailerBits+bluetooth.HeaderAirBits+1)*bluetooth.SPS
			return &Packet{
				Proto:   protocols.Bluetooth,
				Channel: ch,
				Span:    iq.Interval{Start: spanStart, End: base + iq.Tick(end)},
				Note:    hdr.Type.String() + " (header only, shed)",
			}, end
		}
		pkt, end := d.decodePayload(diffs, syncEnd, spanStart, base, ch, hdr, w, readBits)
		if pkt == nil {
			continue
		}
		if pkt.Valid {
			return pkt, end
		}
		if fallback == nil {
			fallback, fallbackEnd = pkt, end
		}
	}
	if fallback != nil {
		return fallback, fallbackEnd
	}
	return nil, syncEnd + bluetooth.SPS
}

// decodePayload decodes the payload portion under one whitening
// hypothesis. whit must be positioned just past the header bits.
func (d *BTDemod) decodePayload(diffs []float64, syncEnd int, spanStart, base iq.Tick, ch int,
	hdr bluetooth.Header, whit *phy.Whitener, readBits func(off, n int) ([]byte, bool)) (*Packet, int) {

	const trailerBits = 4
	pkt := &Packet{
		Proto:   protocols.Bluetooth,
		Channel: ch,
		Note:    hdr.Type.String(),
	}
	maxPayload := hdr.Type.MaxPayload()
	if maxPayload == 0 {
		// NULL/POLL: header-only packet; nothing further to verify, so
		// it is reported but never outranks a CRC-verified candidate.
		end := syncEnd + (trailerBits+bluetooth.HeaderAirBits+1)*bluetooth.SPS
		pkt.Span = iq.Interval{Start: spanStart, End: base + iq.Tick(end)}
		pkt.Valid = false
		pkt.Note += " (header only, unverified)"
		return pkt, end
	}

	// Payload: header(2) + data + CRC(2); length is in the payload
	// header, so peek it first with a whitener copy. DM payloads are
	// rate-2/3 FEC coded under the whitening, so the peek spans two
	// (15,10) blocks.
	isDM := hdr.Type.IsDM()
	peekAir := 16
	if isDM {
		peekAir = 30
	}
	plHdrAir, ok := readBits(trailerBits+bluetooth.HeaderAirBits, peekAir)
	if !ok {
		return nil, 0
	}
	whitCopy := *whit
	tmp := make([]byte, peekAir)
	copy(tmp, plHdrAir)
	whitCopy.XorStream(tmp)
	if isDM {
		tmp, _ = phy.FEC23Decode(tmp)
	}
	raw := phy.BitsToBytesLSB(tmp[:16])
	length := int(raw[0]>>2) | int(raw[1])<<6
	if length > maxPayload {
		return nil, 0
	}
	totalPlainBits := (2 + length + 2) * 8
	totalAirBits := totalPlainBits
	if isDM {
		totalAirBits = phy.FEC23AirBits(totalPlainBits)
	}
	plAir, ok := readBits(trailerBits+bluetooth.HeaderAirBits, totalAirBits)
	if !ok {
		pkt.Span = iq.Interval{Start: spanStart, End: base + iq.Tick(len(diffs))}
		pkt.Note += " truncated"
		return pkt, len(diffs)
	}
	whit.XorStream(plAir)
	plain := plAir
	if isDM {
		var fecOK bool
		plain, fecOK = phy.FEC23Decode(plAir)
		if !fecOK {
			pkt.Note += " FEC uncorrectable"
		}
		plain = plain[:totalPlainBits]
	}
	data, crcOK := bluetooth.ParsePayloadBits(plain, d.UAP)
	pkt.Frame = data
	pkt.Valid = crcOK
	if !crcOK {
		pkt.Note += " CRC mismatch"
	}
	end := syncEnd + (trailerBits+bluetooth.HeaderAirBits+totalAirBits+1)*bluetooth.SPS
	pkt.Span = iq.Interval{Start: spanStart, End: base + iq.Tick(end)}
	return pkt, end
}
