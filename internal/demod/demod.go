// Package demod implements the analysis stage of the architecture: full
// software demodulators for 802.11b and Bluetooth, written from scratch
// (standing in for the BBN/ADROIT 802.11 decoder and the BlueSniff
// Bluetooth decoder the paper plugs in). They are deliberately complete —
// continuous preamble/access-code search over every input sample, real
// descrambling/de-whitening, header and frame CRC verification — because
// the architecture's efficiency argument rests on demodulation being
// expensive relative to fast detection (Table 1).
package demod

import (
	"fmt"

	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// Packet is a decoded (or partially decoded) link-layer packet.
type Packet struct {
	// Proto is the decoded technology and rate.
	Proto protocols.ID
	// Span is the packet's position in the stream.
	Span iq.Interval
	// Frame is the recovered link-layer frame (nil when only the
	// physical header could be decoded).
	Frame []byte
	// Valid reports whether all applicable checksums passed.
	Valid bool
	// Channel is the protocol channel (Bluetooth hop), or -1.
	Channel int
	// Note carries diagnostics ("CCK payload undecodable at 8 Msps",
	// "FCS mismatch", ...).
	Note string
}

// MetricOutcome implements metrics.Outcome: instrumented pipelines
// count decoded packets per protocol family, split by CRC verdict, so
// the demod CRC pass rate is a first-class metric
// (demod/<label>/crc_pass vs crc_fail). The label comes from the module
// registry when the family is registered, so out-of-tree protocols get
// their own CRC-rate series automatically.
func (p Packet) MetricOutcome() (string, bool) {
	return protocols.LabelFor(p.Proto.Family()), p.Valid
}

// String implements fmt.Stringer in a tcpdump-ish one-liner.
func (p Packet) String() string {
	status := "ok"
	if !p.Valid {
		status = "BAD"
	}
	ch := ""
	if p.Channel >= 0 {
		ch = fmt.Sprintf(" ch=%d", p.Channel)
	}
	return fmt.Sprintf("%s%s %d bytes [%s] %s", p.Proto, ch, len(p.Frame), status, p.Note)
}
