// Package chaos is a fault-injecting TCP proxy for exercising the wire
// ingest path under network misbehavior. It sits between a transmitter
// and rfdumpd and degrades the link on purpose: added latency and
// jitter, a bandwidth cap, mid-stream connection resets after a byte
// budget, full partitions (existing links stall, new connections are
// refused), and on-demand drops of every active link. The faults
// package does this for the signal path; chaos does it for the network
// path — together they let a test prove the resilience claim
// end-to-end: every detection delivered or accounted, never silently
// lost.
//
// The proxy is driven from tests and from rfgen's -chaos flag; specs
// use the same key=value,... format as faults.ParseSpec:
//
//	latency=2ms,jitter=500us,bw=1000000,reset=262144,seed=3
package chaos

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes the link degradation a Proxy applies. The zero
// value forwards cleanly.
type Config struct {
	// Latency is added to every forwarded chunk (client→server
	// direction); Jitter randomizes it by ±Jitter.
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBps caps client→server throughput in bytes per second
	// (0 = unlimited).
	BandwidthBps int64
	// ResetAfterBytes hard-resets a connection (RST, not FIN) once it
	// has carried this many client→server bytes (0 = never). The
	// budget is per-connection, so every reconnect earns another reset
	// — a repeating mid-stream failure.
	ResetAfterBytes int64
	// Seed seeds the jitter PRNG (0 takes a fixed seed).
	Seed uint64
}

// ParseSpec parses a chaos spec string: comma-separated key=value
// pairs with keys latency, jitter (durations), bw (bytes/sec), reset
// (bytes), seed. Empty spec is a clean config.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return Config{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "latency", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Config{}, fmt.Errorf("chaos: bad %s %q", key, val)
			}
			if key == "latency" {
				cfg.Latency = d
			} else {
				cfg.Jitter = d
			}
		case "bw", "reset", "seed":
			n, err := strconv.ParseUint(val, 10, 63)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: bad %s %q", key, val)
			}
			switch key {
			case "bw":
				cfg.BandwidthBps = int64(n)
			case "reset":
				cfg.ResetAfterBytes = int64(n)
			case "seed":
				cfg.Seed = n
			}
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
	}
	return cfg, nil
}

// Stats is a snapshot of a proxy's life so far.
type Stats struct {
	// Accepted counts client connections proxied; Active is how many
	// are live now.
	Accepted int64 `json:"accepted"`
	Active   int64 `json:"active"`
	// Resets counts links killed by the byte budget or DropActive;
	// Refused counts connections rejected during a partition (or a
	// failed dial to the target).
	Resets  int64 `json:"resets"`
	Refused int64 `json:"refused"`
	// Bytes counts client→server payload forwarded.
	Bytes int64 `json:"bytes"`
}

// Proxy is a TCP proxy applying a Config to every link. Create with
// New, arm with Start, point the transmitter at Addr.
type Proxy struct {
	target string
	cfg    Config

	partitioned atomic.Bool

	mu     sync.Mutex
	ln     net.Listener
	links  map[*link]struct{}
	closed bool
	wg     sync.WaitGroup

	accepted atomic.Int64
	resets   atomic.Int64
	refused  atomic.Int64
	bytes    atomic.Int64
}

// New returns an unstarted proxy in front of target ("host:port").
func New(target string, cfg Config) *Proxy {
	return &Proxy{target: target, cfg: cfg, links: make(map[*link]struct{})}
}

// Start listens on an ephemeral loopback port and begins proxying.
// Returns the address transmitters should dial.
func (p *Proxy) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return "", net.ErrClosed
	}
	p.ln = ln
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the proxy's listen address ("" before Start).
func (p *Proxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	active := int64(len(p.links))
	p.mu.Unlock()
	return Stats{
		Accepted: p.accepted.Load(),
		Active:   active,
		Resets:   p.resets.Load(),
		Refused:  p.refused.Load(),
		Bytes:    p.bytes.Load(),
	}
}

// Partition opens (true) or heals (false) a full network partition:
// existing links stop forwarding — TCP backpressure stalls both ends
// without closing anything, exactly what a routing blackhole looks
// like — and new connections are reset at accept.
func (p *Proxy) Partition(on bool) { p.partitioned.Store(on) }

// DropActive hard-resets every active link (RST) and returns how many
// it killed — a forced mid-stream disconnect.
func (p *Proxy) DropActive() int {
	p.mu.Lock()
	victims := make([]*link, 0, len(p.links))
	for l := range p.links {
		victims = append(victims, l)
	}
	p.mu.Unlock()
	for _, l := range victims {
		l.reset()
	}
	return len(victims)
}

// Close stops accepting, kills every link, and joins the forwarders.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ln := p.ln
	p.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	p.DropActive()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop(ln net.Listener) {
	defer p.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		if p.partitioned.Load() {
			abortConn(c)
			p.refused.Add(1)
			continue
		}
		srv, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			abortConn(c)
			p.refused.Add(1)
			continue
		}
		n := p.accepted.Add(1)
		seed := p.cfg.Seed
		if seed == 0 {
			seed = 0x2545f4914f6cdd1d
		}
		l := &link{p: p, cli: c, srv: srv, budget: p.cfg.ResetAfterBytes, rng: seed + uint64(n)*0x9e3779b9}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			l.reset()
			continue
		}
		p.links[l] = struct{}{}
		p.mu.Unlock()
		p.wg.Add(2)
		go l.pipe(c, srv, true)  // client→server: shaped
		go l.pipe(srv, c, false) // server→client: clean
	}
}

// abortConn closes c with an immediate RST instead of a FIN, so the
// peer sees a hard failure, not a clean end of stream.
func abortConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	c.Close()
}

// link is one proxied connection pair.
type link struct {
	p        *Proxy
	cli, srv net.Conn
	dead     atomic.Bool
	budget   int64 // remaining client→server bytes before forced reset
	rng      uint64
}

// reset kills the link with RSTs on both sides.
func (l *link) reset() {
	if !l.dead.CompareAndSwap(false, true) {
		return
	}
	l.p.resets.Add(1)
	abortConn(l.cli)
	abortConn(l.srv)
	l.p.mu.Lock()
	delete(l.p.links, l)
	l.p.mu.Unlock()
}

// drop tears the link down without counting a forced reset (transport
// error or clean close).
func (l *link) drop() {
	if !l.dead.CompareAndSwap(false, true) {
		return
	}
	l.cli.Close()
	l.srv.Close()
	l.p.mu.Lock()
	delete(l.p.links, l)
	l.p.mu.Unlock()
}

// pollInterval is how often a blocked forwarder wakes to observe the
// partition and death flags.
const pollInterval = 50 * time.Millisecond

// pipe forwards src→dst until the link dies. The shaped direction
// applies latency, jitter, the bandwidth cap, and the reset budget.
func (l *link) pipe(src, dst net.Conn, shaped bool) {
	defer l.p.wg.Done()
	defer l.drop()
	buf := make([]byte, 8192)
	for {
		if l.dead.Load() {
			return
		}
		if l.p.partitioned.Load() {
			// Stall: stop reading entirely. The kernel buffers fill and
			// the sender blocks (or times out its write) — a blackhole,
			// not a close.
			time.Sleep(pollInterval)
			continue
		}
		_ = src.SetReadDeadline(time.Now().Add(pollInterval))
		n, err := src.Read(buf)
		if n > 0 {
			if shaped {
				if !l.shape(n) {
					return // reset by budget
				}
				l.p.bytes.Add(int64(n))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}

// shape applies the configured degradation to a chunk of n bytes on
// the shaped direction. Returns false when the reset budget fired and
// the link is gone.
func (l *link) shape(n int) bool {
	cfg := l.p.cfg
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		l.rng ^= l.rng << 13
		l.rng ^= l.rng >> 7
		l.rng ^= l.rng << 17
		frac := float64(l.rng%1024)/1024.0*2 - 1 // [-1, 1)
		delay += time.Duration(float64(cfg.Jitter) * frac)
		if delay < 0 {
			delay = 0
		}
	}
	if cfg.BandwidthBps > 0 {
		delay += time.Duration(int64(n) * int64(time.Second) / cfg.BandwidthBps)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if l.budget > 0 {
		l.budget -= int64(n)
		if l.budget <= 0 {
			l.reset()
			return false
		}
	}
	return true
}
