package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections on a fresh loopback listener and
// echoes everything back. Returns the address and a stop func.
func echoServer(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestProxyForwardsCleanly(t *testing.T) {
	target, stop := echoServer(t)
	defer stop()
	p := New(target, Config{})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("the wireless ether")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.Bytes != int64(len(msg)) {
		t.Fatalf("stats %+v, want accepted=1 bytes=%d", st, len(msg))
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=2ms,jitter=500us,bw=1000000,reset=262144,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Latency:         2 * time.Millisecond,
		Jitter:          500 * time.Microsecond,
		BandwidthBps:    1_000_000,
		ResetAfterBytes: 262_144,
		Seed:            3,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec("  "); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec = (%+v, %v), want clean config", cfg, err)
	}
	for _, bad := range []string{
		"latency",            // no value
		"latency=abc",        // bad duration
		"latency=-1ms",       // negative duration
		"bw=hello",           // bad number
		"teleport=1",         // unknown key
		"latency=1ms,,bw=-2", // negative via parse failure
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestResetAfterBytes(t *testing.T) {
	target, stop := echoServer(t)
	defer stop()
	p := New(target, Config{ResetAfterBytes: 4096})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Push well past the budget; the link must die with a hard error.
	chunk := make([]byte, 1024)
	var werr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.SetWriteDeadline(time.Now().Add(time.Second))
		if _, werr = c.Write(chunk); werr != nil {
			break
		}
	}
	if werr == nil {
		t.Fatal("writes kept succeeding past the reset budget")
	}
	if st := p.Stats(); st.Resets < 1 {
		t.Fatalf("stats %+v, want at least one reset", st)
	}
}

func TestPartitionStallsAndRefuses(t *testing.T) {
	target, stop := echoServer(t)
	defer stop()
	p := New(target, Config{})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	p.Partition(true)
	// The partition takes effect within one forwarder poll interval; a
	// read already in flight may still deliver one chunk. Let it lapse.
	time.Sleep(2 * pollInterval)
	// Existing link stalls: bytes go nowhere, the read times out but the
	// connection is NOT closed.
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatalf("write into a partition should buffer, got %v", err)
	}
	c.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	_, err = io.ReadFull(c, buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read during partition = %v, want timeout (stall, not close)", err)
	}

	// New connections are refused outright.
	c2, err := net.Dial("tcp", addr)
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, err = c2.Read(buf)
		c2.Close()
	}
	if err == nil {
		t.Fatal("connection during partition was serviced")
	}
	if st := p.Stats(); st.Refused < 1 {
		t.Fatalf("stats %+v, want at least one refusal", st)
	}

	// Heal: the stalled bytes flow again on the same connection.
	p.Partition(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(buf, []byte("lost")) {
		t.Fatalf("after heal got %q, want %q", buf, "lost")
	}
}

func TestDropActiveResetsLinks(t *testing.T) {
	target, stop := echoServer(t)
	defer stop()
	p := New(target, Config{})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Confirm the link is up before killing it.
	if _, err := c.Write([]byte("up")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	if n := p.DropActive(); n != 1 {
		t.Fatalf("DropActive = %d, want 1", n)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read on a dropped link succeeded")
	}
	if st := p.Stats(); st.Resets != 1 || st.Active != 0 {
		t.Fatalf("stats %+v, want resets=1 active=0", st)
	}
}

func TestBandwidthCapPacesTransfer(t *testing.T) {
	target, stop := echoServer(t)
	defer stop()
	// 100 kB/s: 8 kB should take ~80 ms to cross the shaped direction.
	p := New(target, Config{BandwidthBps: 100_000})
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 8192)
	start := time.Now()
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("8 kB crossed a 100 kB/s link in %v; cap not applied", elapsed)
	}
}
