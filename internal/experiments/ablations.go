package experiments

import (
	"time"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/truth"
)

// AblationChunkSize sweeps the metadata chunk granularity tradeoff of
// Section 4.2: smaller chunks mean more metadata work, larger chunks
// forward more noise alongside each packet. The accuracy (miss rate)
// should be stable while forwarded-excess and CPU shift.
//
// The chunk size is fixed at build time (iq.ChunkSamples); this ablation
// varies the dispatcher slack, which controls the same forwarding
// granularity downstream of detection.
func AblationChunkSize(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := unicastTrace(o, 20, o.scaled(60, 8), 8000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: forwarding granularity (dispatcher slack)",
		Headers: []string{"slack (samples)", "miss rate", "fp rate", "CPU/RT"},
	}
	for _, slack := range []int{25, 100, 200, 800, 3200} {
		cfg := core.TimingAndPhase()
		cfg.Dispatch.SlackSamples = iq.Tick(slack)
		mon := arch.NewRFDump("probe", res.Clock, cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
		// FP accounting against forwarded spans (which include slack).
		fwd := out.Forwarded[protocols.WiFi80211b1M]
		fpDets := make([]truth.Detection, len(fwd))
		for i, iv := range fwd {
			fpDets[i] = truth.Detection{Family: protocols.WiFi80211b1M, Span: iv}
		}
		stFwd := truth.Match(res.Truth, fpDets, protocols.WiFi80211b1M)
		t.AddRow(slack, st.MissRate(), stFwd.FalsePosRate, out.CPUPerRealTime())
	}
	return t, nil
}

// AblationAvgWindow sweeps the peak detector's energy averaging window
// (Section 4.3: must stay well under the smallest timing of interest,
// 802.11 SIFS = 80 samples; too small splits peaks on noise).
func AblationAvgWindow(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := unicastTrace(o, 12, o.scaled(60, 8), 8000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: peak detector averaging window",
		Headers: []string{"window (samples)", "SIFS miss rate", "CPU/RT"},
	}
	for _, win := range []int{5, 10, 20, 40, 80} {
		cfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{DisableDIFS: true}))
		cfg.Peak = core.PeakConfig{AvgWindow: win}
		mon := arch.NewRFDump("probe", res.Clock, cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
		t.AddRow(win, st.MissRate(), out.CPUPerRealTime())
	}
	t.Notes = append(t.Notes, "SIFS = 80 samples; windows approaching it erode gap resolution")
	return t, nil
}

// AblationBTCache compares the Bluetooth timing detector's activity cache
// (Section 4.4) against a pure history-window scan.
func AblationBTCache(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := bluetoothTrace(o, 20, o.scaled(600, 40))
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: Bluetooth activity cache",
		Headers: []string{"config", "miss rate", "cache hits", "history scans", "CPU/RT"},
	}
	for _, disable := range []bool{false, true} {
		btCfg := core.BTTimingConfig{DisableCache: disable}
		cfg := core.Detect(core.BTTimingSpec(btCfg))
		mon := arch.NewRFDump("probe", res.Clock, cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		st := truth.Match(res.Truth, out.TruthDetections(), protocols.Bluetooth)
		hits, scans := btCounters(res, btCfg)
		name := "with cache"
		if disable {
			name = "history scan only"
		}
		t.AddRow(name, st.MissRate(), hits, scans, out.CPUPerRealTime())
	}
	return t, nil
}

// btCounters replays the BT timing detector standalone (peak detection
// feeding one BTTiming instance) to read its instrumentation counters.
func btCounters(res *ether.Result, cfg core.BTTimingConfig) (hits, scans int) {
	pd := core.NewPeakDetector(core.PeakConfig{})
	bt := core.NewBTTiming(res.Clock, cfg)
	drain := func(flowgraph.Item) {}
	stream := res.Samples
	n := len(stream)
	for s := 0; s < n; s += iq.ChunkSamples {
		e := s + iq.ChunkSamples
		if e > n {
			e = n
		}
		var metas []flowgraph.Item
		_ = pd.Process(core.Chunk{
			Seq:     s / iq.ChunkSamples,
			Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
			Samples: stream[s:e],
		}, func(it flowgraph.Item) { metas = append(metas, it) })
		for _, m := range metas {
			_ = bt.Process(m, drain)
		}
	}
	return bt.CacheHits, bt.HistoryScans
}

// AblationSampling sweeps the peak detector's in-peak sample stride (the
// optional sampling optimization of Section 3.1).
func AblationSampling(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := unicastTrace(o, 20, o.scaled(60, 8), 8000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: in-peak sampling stride",
		Headers: []string{"stride", "miss rate", "peak CPU (ms)"},
	}
	for _, stride := range []int{1, 2, 4, 8} {
		cfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{}))
		cfg.Peak = core.PeakConfig{SampleStride: stride}
		mon := arch.NewRFDump("probe", res.Clock, cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
		var peakCPU time.Duration
		for _, b := range out.PerBlock {
			if b.Name == "peak-detector" {
				peakCPU = b.Busy
			}
		}
		t.AddRow(stride, st.MissRate(), float64(peakCPU)/1e6)
	}
	return t, nil
}

// ExtensionParallel compares the single-threaded scheduler with the
// multi-threaded one the paper leaves as future work (Section 2.2 note on
// inherent parallelism).
func ExtensionParallel(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := unicastTrace(o, 20, o.scaled(60, 8), 4000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Extension: multi-threaded flowgraph scheduler",
		Headers: []string{"scheduler", "wall time (ms)", "total block CPU (ms)", "miss rate"},
	}
	for _, parallel := range []bool{false, true} {
		cfg := core.TimingAndPhase()
		cfg.Parallel = parallel
		mon := arch.NewRFDump("probe", res.Clock, cfg)
		start := time.Now()
		out, err := mon.Process(res.Samples)
		wall := time.Since(start)
		if err != nil {
			return nil, err
		}
		st := truth.Match(res.Truth, out.TruthDetections(), protocols.WiFi80211b1M)
		name := "single-threaded"
		if parallel {
			name = "worker per block"
		}
		t.AddRow(name, float64(wall)/1e6, float64(out.CPU)/1e6, st.MissRate())
	}
	t.Notes = append(t.Notes, "gains require more than one core; wall should never exceed single-threaded by much")
	return t, nil
}

// AblationHeaderOnly compares the full 802.11b demodulator against the
// header-only analyzer variant ("other analysis tools could be used,
// e.g. demodulation of headers only", Section 2.2) on the same detected
// traffic: same packets found, payload work skipped.
func AblationHeaderOnly(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := unicastTrace(o, 22, o.scaled(60, 8), 8000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Ablation: full demodulation vs header-only analysis",
		Headers: []string{"analyzer", "packets", "payload bytes", "analyzer CPU (ms)"},
	}
	for _, hdrOnly := range []bool{false, true} {
		var analyzer core.Analyzer
		name := "full demod"
		if hdrOnly {
			analyzer = demod.NewWiFiHeaderDemod()
			name = "header only"
		} else {
			analyzer = demod.NewWiFiDemod()
		}
		mon := arch.NewRFDump("probe", res.Clock, core.TimingAndPhase(), analyzer)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		payload := 0
		for _, p := range out.Packets {
			payload += len(p.Frame)
		}
		var cpu float64
		for _, b := range out.PerBlock {
			if b.Name == analyzer.Name() {
				cpu = float64(b.Busy) / 1e6
			}
		}
		t.AddRow(name, len(out.Packets), payload, cpu)
	}
	t.Notes = append(t.Notes, "same detection stage; the analyzer swap is one constructor call (functionality extensibility)")
	return t, nil
}

// AblationSubband reproduces the Section 5.4 discussion: two narrowband
// transmissions overlapping in time but not in frequency look like one
// coalesced peak (or a collision) to the single-band peak detector,
// while a subband-split detector separates them. The table counts peaks
// each stage reports for a crafted overlap scenario.
func AblationSubband(o Options) (*report.Table, error) {
	o = o.normalize()
	// Two Bluetooth packets on far-apart channels, overlapping in time.
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  o.Seed + 9,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{LAP: 0x111111, UAP: 1, Pings: o.scaled(40, 6), InterPingSlots: 1, MonitorBaseChannel: 0},
			&mac.BluetoothPiconet{LAP: 0x222222, UAP: 2, Pings: o.scaled(40, 6), InterPingSlots: 1, MonitorBaseChannel: 0, CFOHz: 900},
		},
	})
	if err != nil {
		return nil, err
	}
	// Count ground-truth time-overlapping visible pairs.
	overlaps := 0
	recs := res.Truth.Records
	for i := range recs {
		if !recs[i].Visible {
			continue
		}
		for j := i + 1; j < len(recs); j++ {
			if recs[j].Visible && recs[i].Span.Overlaps(recs[j].Span) && recs[i].Channel != recs[j].Channel {
				overlaps++
			}
		}
	}

	// Single-band peaks.
	pd := core.NewPeakDetector(core.PeakConfig{})
	sb := core.NewSubbandPeak(8)
	single, sub := 0, 0
	drainPeaks := func(it flowgraph.Item) {
		if m, ok := it.(*core.ChunkMeta); ok {
			single += len(m.Completed)
			_ = sb.Process(m, func(it2 flowgraph.Item) {
				if _, ok := it2.(core.SubbandPeakResult); ok {
					sub++
				}
			})
		}
	}
	stream := res.Samples
	for s := 0; s < len(stream); s += iq.ChunkSamples {
		e := s + iq.ChunkSamples
		if e > len(stream) {
			e = len(stream)
		}
		_ = pd.Process(core.Chunk{
			Seq:     s / iq.ChunkSamples,
			Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
			Samples: stream[s:e],
		}, drainPeaks)
	}
	_ = pd.Flush(drainPeaks)
	_ = sb.Flush(func(it flowgraph.Item) {
		if _, ok := it.(core.SubbandPeakResult); ok {
			sub++
		}
	})

	visible := res.Truth.VisibleCount(protocols.Bluetooth)
	t := &report.Table{
		Title:   "Ablation: single-band vs subband peak detection (Section 5.4)",
		Headers: []string{"stage", "peaks reported", "true transmissions", "freq-only overlaps"},
	}
	t.AddRow("single-band peak detector", single, visible, overlaps)
	t.AddRow("subband peak detector (8 bands)", sub, visible, overlaps)
	t.Notes = append(t.Notes,
		"frequency-only overlapping packets coalesce in the single-band stage; the subband stage separates them at chunk granularity")
	return t, nil
}
