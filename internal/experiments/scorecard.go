package experiments

import (
	"fmt"
	"strings"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/truth"
)

// Scorecard runs a fast, self-verifying pass over the paper's headline
// claims and reports PASS/FAIL per claim — the one-command answer to
// "does this reproduction still reproduce?". It uses small workloads
// (seconds, not minutes) and asserts the *shapes*, exactly as
// EXPERIMENTS.md defines them.
func Scorecard(o Options) (*report.Table, error) {
	o = o.normalize()
	if o.Scale > 0.2 {
		o.Scale = 0.2 // the scorecard is meant to be quick
	}

	t := &report.Table{
		Title:   "Reproduction scorecard (paper claim -> quick check)",
		Headers: []string{"claim", "evidence", "verdict"},
	}
	pass := func(claim, evidence string, ok bool) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
		}
		t.AddRow(claim, evidence, verdict)
	}

	// --- Claim 1 (Table 1): detection is far cheaper than demodulation.
	uni, err := unicastTrace(o, 20, o.scaled(60, 8), 38_000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	det := arch.NewRFDump("det", uni.Clock, core.TimingAndPhase())
	outDet, err := det.Process(uni.Samples)
	if err != nil {
		return nil, err
	}
	naive := arch.NewNaive(uni.Clock, demod.NewWiFiDemod(), demod.NewBTDemod(PiconetLAP, PiconetUAP, 8))
	outNaive, err := naive.Process(uni.Samples)
	if err != nil {
		return nil, err
	}
	ratio := float64(outNaive.CPU) / float64(outDet.CPU)
	pass("detection ≪ demodulation (Table 1)",
		fmt.Sprintf("naive/detect CPU = %.1fx", ratio), ratio > 4)

	// --- Claim 2 (Figs 6/7): 802.11 detectors ~perfect at high SNR.
	stT := truth.Match(uni.Truth, outDet.TruthDetections(), protocols.WiFi80211b1M)
	pass("802.11 detectors ≈0 miss at high SNR (Figs 6-7)",
		fmt.Sprintf("miss %.4f over %d pkts", stT.MissRateNonCollided(), stT.TotalNonCollided),
		stT.MissRateNonCollided() < 0.02)

	// And degraded at low SNR.
	low, err := unicastTrace(o, 0, o.scaled(30, 6), 38_000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	detLow := arch.NewRFDump("det", low.Clock, core.TimingAndPhase())
	outLow, err := detLow.Process(low.Samples)
	if err != nil {
		return nil, err
	}
	stLow := truth.Match(low.Truth, outLow.TruthDetections(), protocols.WiFi80211b1M)
	pass("miss rate rises below the SNR knee (Figs 6-8)",
		fmt.Sprintf("miss %.2f at 0 dB", stLow.MissRate()),
		stLow.MissRate() > stT.MissRateNonCollided()+0.05)

	// --- Claim 3 (Fig 8): Bluetooth detectors work; timing misses the
	// session's first packet.
	bt, err := bluetoothTrace(o, 20, o.scaled(600, 60))
	if err != nil {
		return nil, err
	}
	btMon := arch.NewRFDump("bt", bt.Clock, core.PhaseOnly())
	outBT, err := btMon.Process(bt.Samples)
	if err != nil {
		return nil, err
	}
	stBT := truth.Match(bt.Truth, outBT.TruthDetections(), protocols.Bluetooth)
	pass("Bluetooth phase detector ≈0 miss at high SNR (Fig 8)",
		fmt.Sprintf("miss %.4f over %d audible", stBT.MissRate(), stBT.Total),
		stBT.MissRate() < 0.05)

	// --- Claim 4 (Fig 9): RFDump with demod beats the naive baselines.
	rf := arch.NewRFDump("rf", uni.Clock, core.TimingOnly(),
		demod.NewWiFiDemod(), demod.NewBTDemod(PiconetLAP, PiconetUAP, 8))
	outRF, err := rf.Process(uni.Samples)
	if err != nil {
		return nil, err
	}
	ne := arch.NewNaiveEnergy(uni.Clock, true, demod.NewWiFiDemod(), demod.NewBTDemod(PiconetLAP, PiconetUAP, 8))
	outNE, err := ne.Process(uni.Samples)
	if err != nil {
		return nil, err
	}
	pass("RFDump < naive+energy < naive in CPU (Fig 9)",
		fmt.Sprintf("%.2fx < %.2fx < %.2fx", outRF.CPUPerRealTime(), outNE.CPUPerRealTime(), outNaive.CPUPerRealTime()),
		outRF.CPU < outNE.CPU && outNE.CPU < outNaive.CPU)

	// --- Claim 5: demodulators recover frames bit-exactly through the
	// full pipeline (the substrate is sound).
	valid := 0
	for _, p := range outRF.Packets {
		if p.Valid {
			valid++
		}
	}
	want := uni.Truth.VisibleCount(protocols.WiFi80211b1M)
	pass("frames decode bit-exactly end to end",
		fmt.Sprintf("%d valid of %d transmitted", valid, want),
		valid >= want*8/10)

	// --- Claim 6 (extension): OFDM classified, never confused with DSSS.
	ofdmFig, err := ExtensionOFDM(Options{Seed: o.Seed, Scale: o.Scale, SNRs: []float64{20}})
	if err != nil {
		return nil, err
	}
	ofdmMiss := ofdmFig.Series[0].Y[0]
	crossNote := ""
	if len(ofdmFig.Notes) > 0 {
		crossNote = ofdmFig.Notes[0]
	}
	pass("OFDM detector works at high SNR (extension)",
		fmt.Sprintf("miss %.4f; %s", ofdmMiss, shorten(crossNote, 40)),
		ofdmMiss < 0.05)

	return t, nil
}

func shorten(s string, n int) string {
	s = strings.TrimSpace(s)
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
