//go:build race

package experiments

// raceEnabled reports that the race detector is active: wall-clock cost
// ratios are distorted by instrumentation, so shape tests that assert
// CPU-time relationships skip themselves.
const raceEnabled = true
