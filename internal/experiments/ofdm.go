package experiments

import (
	"fmt"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/truth"
)

// ExtensionOFDM evaluates the OFDM detector the paper leaves as future
// work ("We believe it should be possible to build quick detectors for
// OFDM", Section 3.3): miss rate vs SNR on an 802.11g unicast workload,
// plus cross-rejection — the OFDM detector must stay silent on an
// 802.11b DSSS workload of the same shape, and the DSSS detectors on
// the OFDM one.
func ExtensionOFDM(o Options) (*report.Figure, error) {
	o = o.normalize()
	pings := o.scaled(125, 6)
	fig := &report.Figure{
		Title:  "Extension: 802.11g OFDM cyclic-prefix detector",
		XLabel: "SNR (dB)",
		YLabel: "packet miss rate",
		LogY:   true,
	}
	ofdmCfg := core.Detect(core.OFDMSpec(core.OFDMConfig{}))

	for _, snr := range o.SNRs {
		res, err := ether.Run(ether.Config{
			SNRdB: snr,
			Seed:  o.Seed + 7,
			Sources: []mac.Source{&mac.WiFiGUnicast{
				Pings: pings, PayloadBytes: 500, InterPing: 8000,
				Requester: addr(0x51), Responder: addr(0x52), BSSID: addr(0x53),
				CFOHz: 1400,
			}},
		})
		if err != nil {
			return nil, err
		}
		st, err := runDetectors(res, ofdmCfg, protocols.WiFi80211g)
		if err != nil {
			return nil, err
		}
		fig.Add("OFDM CP detector", snr, floorRate(st.MissRate()))
		o.logf("ofdm snr=%.0f: miss=%.4f (%d/%d) fp=%.5f",
			snr, st.MissRate(), st.Found, st.Total, st.FalsePosRate)
	}

	// Cross-rejection at high SNR: run the OFDM detector on a DSSS
	// workload and the DSSS detectors on the OFDM workload.
	dsss, err := unicastTrace(o, 20, pings, 8000, protocols.WiFi80211b1M)
	if err != nil {
		return nil, err
	}
	monO := arch.NewRFDump("ofdm-on-dsss", dsss.Clock, ofdmCfg)
	outO, err := monO.Process(dsss.Samples)
	if err != nil {
		return nil, err
	}
	stCross := truth.Match(dsss.Truth, outO.TruthDetections(), protocols.WiFi80211g)

	g, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  o.Seed + 8,
		Sources: []mac.Source{&mac.WiFiGUnicast{
			Pings: pings, PayloadBytes: 500, InterPing: 8000,
			Requester: addr(0x51), Responder: addr(0x52), BSSID: addr(0x53),
		}},
	})
	if err != nil {
		return nil, err
	}
	monB := arch.NewRFDump("dsss-on-ofdm", g.Clock, core.PhaseOnly())
	outB, err := monB.Process(g.Samples)
	if err != nil {
		return nil, err
	}
	stB := truth.Match(g.Truth, outB.TruthDetections(), protocols.WiFi80211b1M)

	fig.Notes = append(fig.Notes,
		fmt.Sprintf("cross-rejection at 20 dB: OFDM-detector fp on DSSS traffic %.5f; DSSS-phase fp on OFDM traffic %.5f",
			stCross.FalsePosRate, stB.FalsePosRate),
		fmt.Sprintf("%d OFDM echo exchanges per point", pings))
	return fig, nil
}
