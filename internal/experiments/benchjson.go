package experiments

import (
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"rfdump/internal/cluster"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/history"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/server"
	"rfdump/internal/serving"
	"rfdump/internal/wire"
)

// BenchSchema identifies the machine-readable benchmark format written
// by rfbench -json. Bump the suffix on incompatible changes. v6 adds
// the broker-tree row (two chained fused ledgers, the mid tier's WAL
// records re-fused at the root); v5 added the aggregation-tier row
// (cross-sensor detection fusion over the sightings of two simulated
// nodes); v4 added the sustained ingest-while-querying row (detection
// streaming into the disk-backed history store under concurrent query
// load); v3 added the scaling matrix (cores vs throughput for the
// sharded demod stage); v2 added allocation accounting
// (allocs_per_op/bytes_per_op). Older documents (without the newer
// fields) still validate.
const BenchSchema = "rfdump-bench/v6"

// BenchSchemaV5 through BenchSchemaV1 are the previous schema tags,
// still accepted by Validate so committed historical BENCH_*.json
// documents keep validating in CI.
const (
	BenchSchemaV5 = "rfdump-bench/v5"
	BenchSchemaV4 = "rfdump-bench/v4"
	BenchSchemaV3 = "rfdump-bench/v3"
	BenchSchemaV2 = "rfdump-bench/v2"
	BenchSchemaV1 = "rfdump-bench/v1"
)

// BenchRowIngestQuery is the Table 1 row name of the DVR contention
// measurement: streaming detection appending every record to a segment
// store while a client continuously pages the query API. Required at
// schema v4+.
const BenchRowIngestQuery = "Sustained ingest while querying (segment store)"

// BenchRowFusedIngest is the Table 1 row name of the aggregation-tier
// measurement: the real detections from the benchmark trace offered as
// the overlapping sightings of two sensor nodes, fused and republished
// on a live broker — the rfdumpc hot path. Required at schema v5+.
const BenchRowFusedIngest = "Fused ingest (2-node aggregation)"

// BenchRowTreeIngest is the Table 1 row name of the broker-tree
// measurement: the same two-sensor sighting feed journaled through a
// mid-tier fused ledger whose WAL records are re-fused by a root
// ledger — one extra aggregation level, end to end, the way rfdumpc
// stacks on rfdumpc. Required at schema v6.
const BenchRowTreeIngest = "Tree ingest (2-level aggregation)"

// BenchRecord is one measured row: a GNU-Radio-equivalent block
// (Table 1) or a full architecture configuration (Figure 9).
type BenchRecord struct {
	// Name labels the block or architecture.
	Name string `json:"name"`
	// NsPerOp is wall-clock nanoseconds for one pass over the trace.
	NsPerOp int64 `json:"ns_per_op"`
	// MBPerS is sample throughput (complex64 = 8 bytes per sample).
	MBPerS float64 `json:"mb_per_s"`
	// CPUPerRealTime is processing time over trace air time — the
	// paper's efficiency metric (Table 1, Figure 9 y-axis).
	CPUPerRealTime float64 `json:"cpu_per_real_time"`
	// AllocsPerOp is heap allocations during one pass (schema v2; zero
	// is the target for the steady-state streaming path).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated during one pass (schema v2).
	BytesPerOp int64 `json:"bytes_per_op"`
}

// ScalingRecord is one row of the scaling matrix: the full detection +
// sharded-demod pipeline over the benchmark trace at a fixed worker
// count (schema v3).
type ScalingRecord struct {
	// Workers is the demod worker count (1 = the inline single-threaded
	// analysis chain, the speedup baseline).
	Workers int `json:"workers"`
	// NsPerOp is wall-clock nanoseconds for one pass over the trace.
	NsPerOp int64 `json:"ns_per_op"`
	// MBPerS is sample throughput at this worker count.
	MBPerS float64 `json:"mb_per_s"`
	// Speedup is the workers=1 wall clock over this row's wall clock.
	Speedup float64 `json:"speedup"`
	// CPUPerRealTime is wall-clock processing time over trace air time.
	CPUPerRealTime float64 `json:"cpu_per_real_time"`
}

// BenchReport is the BENCH_<rev>.json document: the Table 1 block-cost
// matrix, the Figure 9 architecture matrix and the demod scaling matrix,
// stamped with enough build context to compare runs across revisions.
type BenchReport struct {
	Schema    string    `json:"schema"`
	Revision  string    `json:"revision"`
	GoVersion string    `json:"go"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	Taken     time.Time `json:"taken"`
	// Scale is the workload scale the matrices were measured at
	// (1.0 = paper-size traces).
	Scale   float64       `json:"scale"`
	Table1  []BenchRecord `json:"table1"`
	Figure9 []BenchRecord `json:"figure9"`
	// Scaling is the cores-vs-throughput matrix for the sharded analysis
	// stage (schema v3; absent in older documents).
	Scaling []ScalingRecord `json:"scaling,omitempty"`
}

// Validate checks the structural invariants CI relies on: schema tag,
// build stamps, non-empty matrices, and strictly positive measurements.
func (r *BenchReport) Validate() error {
	if r == nil {
		return fmt.Errorf("bench: nil report")
	}
	switch r.Schema {
	case BenchSchema, BenchSchemaV5, BenchSchemaV4, BenchSchemaV3, BenchSchemaV2, BenchSchemaV1:
	default:
		return fmt.Errorf("bench: schema %q, want %q (or legacy %q, %q, %q, %q, %q)",
			r.Schema, BenchSchema, BenchSchemaV5, BenchSchemaV4, BenchSchemaV3, BenchSchemaV2, BenchSchemaV1)
	}
	if r.Revision == "" || r.GoVersion == "" || r.GOOS == "" || r.GOARCH == "" {
		return fmt.Errorf("bench: missing build stamp (revision/go/goos/goarch)")
	}
	if r.Taken.IsZero() {
		return fmt.Errorf("bench: missing taken timestamp")
	}
	if len(r.Table1) == 0 || len(r.Figure9) == 0 {
		return fmt.Errorf("bench: empty matrix (table1=%d figure9=%d)", len(r.Table1), len(r.Figure9))
	}
	check := func(matrix string, recs []BenchRecord) error {
		seen := map[string]bool{}
		for i, rec := range recs {
			if rec.Name == "" {
				return fmt.Errorf("bench: %s[%d]: empty name", matrix, i)
			}
			if seen[rec.Name] {
				return fmt.Errorf("bench: %s: duplicate name %q", matrix, rec.Name)
			}
			seen[rec.Name] = true
			if rec.NsPerOp <= 0 || rec.MBPerS <= 0 || rec.CPUPerRealTime <= 0 {
				return fmt.Errorf("bench: %s[%q]: non-positive measurement %+v", matrix, rec.Name, rec)
			}
			// v2 allocation fields: zero is the goal, negative is corrupt.
			if rec.AllocsPerOp < 0 || rec.BytesPerOp < 0 {
				return fmt.Errorf("bench: %s[%q]: negative allocation count %+v", matrix, rec.Name, rec)
			}
		}
		return nil
	}
	if err := check("table1", r.Table1); err != nil {
		return err
	}
	if err := check("figure9", r.Figure9); err != nil {
		return err
	}
	if r.Schema == BenchSchema || r.Schema == BenchSchemaV5 || r.Schema == BenchSchemaV4 || r.Schema == BenchSchemaV3 {
		if len(r.Scaling) == 0 {
			return fmt.Errorf("bench: schema %s document without a scaling matrix", r.Schema)
		}
	}
	requireRow := func(name string) error {
		for _, rec := range r.Table1 {
			if rec.Name == name {
				return nil
			}
		}
		return fmt.Errorf("bench: schema %s document without the %q table1 row", r.Schema, name)
	}
	if r.Schema == BenchSchema || r.Schema == BenchSchemaV5 || r.Schema == BenchSchemaV4 {
		if err := requireRow(BenchRowIngestQuery); err != nil {
			return err
		}
	}
	if r.Schema == BenchSchema || r.Schema == BenchSchemaV5 {
		if err := requireRow(BenchRowFusedIngest); err != nil {
			return err
		}
	}
	if r.Schema == BenchSchema {
		if err := requireRow(BenchRowTreeIngest); err != nil {
			return err
		}
	}
	for i, rec := range r.Scaling {
		if rec.Workers <= 0 {
			return fmt.Errorf("bench: scaling[%d]: non-positive worker count %d", i, rec.Workers)
		}
		if i == 0 && rec.Workers != 1 {
			return fmt.Errorf("bench: scaling[0]: workers %d, want the workers=1 baseline first", rec.Workers)
		}
		if i > 0 && rec.Workers <= r.Scaling[i-1].Workers {
			return fmt.Errorf("bench: scaling[%d]: workers %d not increasing", i, rec.Workers)
		}
		if rec.NsPerOp <= 0 || rec.MBPerS <= 0 || rec.CPUPerRealTime <= 0 || rec.Speedup <= 0 {
			return fmt.Errorf("bench: scaling[%d]: non-positive measurement %+v", i, rec)
		}
	}
	return nil
}

// sliceSource adapts an in-memory trace to core.BlockReader for the
// streaming benchmark row.
type sliceSource struct {
	s   iq.Samples
	pos int
}

func (r *sliceSource) ReadBlock(dst iq.Samples) (int, error) {
	n := copy(dst, r.s[r.pos:])
	r.pos += n
	if r.pos >= len(r.s) {
		return n, io.EOF
	}
	return n, nil
}

// BenchJSON measures the Table 1 and Figure 9 matrices over a ~50%
// utilization unicast trace and returns the report (revision left for
// the caller to stamp). One pass per entry: this is a regression
// tracker, not a statistically rigorous benchmark — use go test -bench
// for repeated, isolated timings.
func BenchJSON(o Options) (*BenchReport, error) {
	o = o.normalize()
	dur := iq.Tick(float64(4_000_000) * o.Scale)
	if dur < 400_000 {
		dur = 400_000
	}
	res, err := ether.Run(ether.Config{
		Duration: dur,
		SNRdB:    20,
		Seed:     o.Seed,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 1 << 20,
				PayloadBytes: 500, InterPing: 38_000,
				Requester: addr(0x11), Responder: addr(0x22), BSSID: addr(0x33),
			},
		},
	})
	if err != nil {
		return nil, err
	}
	rt := res.Clock.Duration(iq.Tick(len(res.Samples)))
	bytes := float64(len(res.Samples)) * 8 // complex64

	record := func(name string, fn func() error) (BenchRecord, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := fn()
		took := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return BenchRecord{}, fmt.Errorf("bench %s: %w", name, err)
		}
		if took <= 0 {
			took = time.Nanosecond
		}
		return BenchRecord{
			Name:           name,
			NsPerOp:        int64(took),
			MBPerS:         bytes / 1e6 / took.Seconds(),
			CPUPerRealTime: float64(took) / float64(rt),
			AllocsPerOp:    int64(after.Mallocs - before.Mallocs),
			BytesPerOp:     int64(after.TotalAlloc - before.TotalAlloc),
		}, nil
	}

	report := &BenchReport{
		Schema:    BenchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Taken:     time.Now(),
		Scale:     o.Scale,
	}

	// Table 1 matrix: the per-block costs (same blocks as Table1, raw
	// numbers instead of a formatted table).
	wifiD := demod.NewWiFiDemod()
	btD := demod.NewBTDemod(PiconetLAP, PiconetUAP, 8)
	pd := core.NewPeakDetector(core.PeakConfig{})

	// Streaming row: one warm-up session fills the block/scratch pools so
	// the recorded pass reflects steady state — its allocs_per_op is the
	// regression number for the zero-copy block path. The warm-up pass
	// doubles as the sighting capture for the fused-ingest row: the real
	// detections the trace produces, recorded once, replayed later as
	// two sensors' overlapping reports.
	eng := core.NewEngine(res.Clock, core.TimingOnly())
	var sightings []history.DetectionRecord
	warm, err := eng.NewSession(core.StreamConfig{
		OnDetection: func(d core.Detection) {
			sightings = append(sightings, history.DetectionRecord{
				Seq: uint64(len(sightings) + 1), Stream: 1,
				TimeS:  float64(d.Span.Start) / float64(res.Clock.Rate),
				Family: d.Family.FamilyName(), Detector: d.Detector,
				AbsStart: int64(d.Span.Start), AbsEnd: int64(d.Span.End),
				Confidence: d.Confidence, Channel: d.Channel,
			})
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := warm.Run(&sliceSource{s: res.Samples}); err != nil {
		return nil, err
	}
	streamSession, err := eng.NewSession(core.StreamConfig{})
	if err != nil {
		return nil, err
	}

	// Wire-ingest row: the same streaming session fed over loopback TCP
	// through the framing protocol — what the detection stage costs when
	// rfdumpd is the front end instead of an in-memory trace. A warm-up
	// pass fills the decoder/session pools first, as above.
	runWire := func(sess *core.Session) error {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		sendErr := make(chan error, 1)
		go func() {
			client, err := wire.Dial(ln.Addr().String(), wire.StreamMeta{StreamID: 1, Rate: res.Clock.Rate})
			if err != nil {
				sendErr <- err
				return
			}
			if err := client.SendSamples(res.Samples); err != nil {
				sendErr <- err
				return
			}
			sendErr <- client.Close()
		}()
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		defer conn.Close()
		if _, err := sess.Run(wire.NewDecoder(conn)); err != nil {
			return err
		}
		return <-sendErr
	}
	wireWarm, err := eng.NewSession(core.StreamConfig{})
	if err != nil {
		return nil, err
	}
	if err := runWire(wireWarm); err != nil {
		return nil, err
	}
	wireSession, err := eng.NewSession(core.StreamConfig{})
	if err != nil {
		return nil, err
	}

	// DVR row (schema v4): streaming detection with every record appended
	// to a disk-backed segment store while a querier goroutine pages the
	// detection history as fast as it can — ingest and query contending
	// for the store the way rfdumpd -store-dir does under a polling
	// dashboard. The store lives in a scratch directory torn down with
	// the run; a warm-up pass fills pools and seeds the store so the
	// querier has history to page from the first request.
	histDir, err := os.MkdirTemp("", "rfbench-dvr-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(histDir)
	histStore, err := history.OpenDisk(history.DiskConfig{Dir: histDir})
	if err != nil {
		return nil, err
	}
	defer histStore.Close()
	newDVRSession := func() (*core.Session, error) {
		return eng.NewSession(core.StreamConfig{
			OnDetection: func(d core.Detection) {
				rec := history.DetectionRecord{
					Stream:     1,
					TimeS:      float64(d.Span.Start) / float64(res.Clock.Rate),
					Family:     d.Family.FamilyName(),
					Detector:   d.Detector,
					Start:      int64(d.Span.Start),
					End:        int64(d.Span.End),
					AbsStart:   int64(d.Span.Start),
					AbsEnd:     int64(d.Span.End),
					Confidence: d.Confidence,
					Channel:    d.Channel,
				}
				_ = histStore.AppendDetection(&rec)
			},
		})
	}
	dvrWarm, err := newDVRSession()
	if err != nil {
		return nil, err
	}
	if _, err := dvrWarm.Run(&sliceSource{s: res.Samples}); err != nil {
		return nil, err
	}
	dvrSession, err := newDVRSession()
	if err != nil {
		return nil, err
	}

	// Aggregation-tier row (schema v5): the captured detections offered
	// as the interleaved live feeds of two sensor nodes with a small
	// clock skew between them — every fused result republished on a
	// broker with two draining subscribers, the rfdumpc ingest hot path
	// end to end. The sighting list is prepared here so the recorded
	// pass measures fusion and fan-out, not setup.
	if len(sightings) == 0 {
		return nil, fmt.Errorf("bench: warm-up pass produced no detections to fuse")
	}
	type sighting struct {
		node string
		rec  history.DetectionRecord
	}
	fusedFeed := make([]sighting, 0, 2*len(sightings))
	for _, s := range sightings {
		b := s
		b.AbsStart += 24 // the second sensor's clock skew
		b.AbsEnd += 24
		b.Confidence *= 0.97 // heard a shade weaker at the far position
		fusedFeed = append(fusedFeed, sighting{"node-a", s}, sighting{"node-b", b})
	}

	table1 := []struct {
		name string
		fn   func() error
	}{
		{"802.11 demodulation (1 Mbps)", func() error {
			wifiD.Demodulate(res.Samples, 0)
			return nil
		}},
		{"Bluetooth demodulation (one channel)", func() error {
			btD.DemodulateChannel(res.Samples, 0, 3)
			return nil
		}},
		{"Peak/Energy detection", func() error {
			drain := func(flowgraph.Item) {}
			n := len(res.Samples)
			for s := 0; s < n; s += iq.ChunkSamples {
				e := s + iq.ChunkSamples
				if e > n {
					e = n
				}
				if err := pd.Process(core.Chunk{
					Seq:     s / iq.ChunkSamples,
					Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
					Samples: res.Samples[s:e],
				}, drain); err != nil {
					return err
				}
			}
			return pd.Flush(drain)
		}},
		{"Streaming detection (pooled blocks)", func() error {
			_, err := streamSession.Run(&sliceSource{s: res.Samples})
			return err
		}},
		{"Wire ingest (loopback TCP)", func() error {
			return runWire(wireSession)
		}},
		{BenchRowIngestQuery, func() error {
			stop := make(chan struct{})
			qdone := make(chan error, 1)
			go func() {
				var cursor uint64
				for {
					select {
					case <-stop:
						qdone <- nil
						return
					default:
					}
					_, next, more, err := histStore.QueryDetections(history.Query{Stream: 1, Cursor: cursor})
					if err != nil {
						qdone <- err
						return
					}
					if more {
						cursor = next
					} else {
						cursor = 0 // wrapped: page the whole history again
					}
				}
			}()
			_, err := dvrSession.Run(&sliceSource{s: res.Samples})
			close(stop)
			if qerr := <-qdone; err == nil {
				err = qerr
			}
			return err
		}},
		{BenchRowFusedIngest, func() error {
			fuser := cluster.NewFuser(cluster.MatchConfig{}, nil)
			broker := server.NewBroker(256, -1, nil)
			subs := make([]*server.Subscriber, 2)
			var drained sync.WaitGroup
			for i := range subs {
				subs[i] = broker.Subscribe()
				drained.Add(1)
				go func(sub *server.Subscriber) {
					defer drained.Done()
					for range sub.Events() {
					}
				}(subs[i])
			}
			created := 0
			for i := range fusedFeed {
				s := &fusedFeed[i]
				fd, res := fuser.Ingest(s.node, 1, &s.rec)
				if res == cluster.Duplicate {
					continue
				}
				typ := "detection"
				if res == cluster.Merged {
					typ = "detection-update"
				}
				broker.Publish(server.Event{Seq: fd.Seq, Type: typ, Stream: 1, Detection: &s.rec})
				if res == cluster.Created {
					created++
				}
			}
			for _, sub := range subs {
				broker.Unsubscribe(sub)
			}
			drained.Wait()
			if created == 0 || created > len(sightings) {
				return fmt.Errorf("bench: fused %d detections from %d sightings", created, len(sightings))
			}
			return nil
		}},
		{BenchRowTreeIngest, func() error {
			// The same two-sensor feed through a broker tree: a mid-tier
			// fused ledger journals each sighting, and its WAL records
			// (evidence deltas attached) are re-fused by a root ledger that
			// republishes on a live broker — what one extra aggregation
			// level costs end to end.
			mid, err := cluster.NewFusedLedger(cluster.LedgerConfig{})
			if err != nil {
				return err
			}
			defer mid.Close()
			broker := serving.NewBroker(256, -1, nil)
			sub := broker.Subscribe()
			var drained sync.WaitGroup
			drained.Add(1)
			go func() {
				defer drained.Done()
				for range sub.Events() {
				}
			}()
			root, err := cluster.NewFusedLedger(cluster.LedgerConfig{Broker: broker})
			if err != nil {
				return err
			}
			defer root.Close()
			created := 0
			for i := range fusedFeed {
				s := &fusedFeed[i]
				wal, _ := mid.Ingest(s.node, 1, &s.rec)
				if wal == nil {
					continue // duplicate at the mid tier: nothing travels up
				}
				if _, res := root.Ingest("mid", wal.Stream, wal); res == cluster.Created {
					created++
				}
			}
			broker.Unsubscribe(sub)
			drained.Wait()
			if created == 0 || created > len(sightings) {
				return fmt.Errorf("bench: tree fused %d detections from %d sightings", created, len(sightings))
			}
			if root.Fuser().Len() != mid.Fuser().Len() {
				return fmt.Errorf("bench: tree levels disagree: root %d fused, mid %d",
					root.Fuser().Len(), mid.Fuser().Len())
			}
			return nil
		}},
	}
	for _, entry := range table1 {
		rec, err := record(entry.name, entry.fn)
		if err != nil {
			return nil, err
		}
		o.logf("bench table1 %s: %.2fx", rec.Name, rec.CPUPerRealTime)
		report.Table1 = append(report.Table1, rec)
	}

	// Figure 9 matrix: the nine architecture configurations over the
	// same trace.
	for _, mon := range figure9Configs(res.Clock) {
		mon := mon
		rec, err := record(mon.Name(), func() error {
			_, err := mon.Process(res.Samples)
			return err
		})
		if err != nil {
			return nil, err
		}
		o.logf("bench fig9 %s: %.2fx", rec.Name, rec.CPUPerRealTime)
		report.Figure9 = append(report.Figure9, rec)
	}

	// Scaling matrix: the full detection + demodulation pipeline with the
	// analysis stage sharded across 1, 2, 4, ... GOMAXPROCS workers
	// (workers=1 is the inline chain, the speedup baseline). One warm-up
	// session per worker count fills the pools before the recorded pass.
	factories := []core.AnalyzerFactory{
		func() core.Analyzer { return demod.NewWiFiDemod() },
		func() core.Analyzer { return demod.NewBTDemod(PiconetLAP, PiconetUAP, 8) },
	}
	var counts []int
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w < maxW; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, maxW)
	for _, w := range counts {
		cfg := core.TimingAndPhase()
		cfg.DemodWorkers = w
		seng := core.NewEngine(res.Clock, cfg, factories...)
		for pass := 0; pass < 2; pass++ {
			sess, err := seng.NewSession(core.StreamConfig{})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := sess.Run(&sliceSource{s: res.Samples}); err != nil {
				return nil, err
			}
			took := time.Since(start)
			if pass == 0 {
				continue // warm-up: pools cold, workers spinning up
			}
			if took <= 0 {
				took = time.Nanosecond
			}
			rec := ScalingRecord{
				Workers:        w,
				NsPerOp:        int64(took),
				MBPerS:         bytes / 1e6 / took.Seconds(),
				Speedup:        1,
				CPUPerRealTime: float64(took) / float64(rt),
			}
			if len(report.Scaling) > 0 {
				rec.Speedup = float64(report.Scaling[0].NsPerOp) / float64(took)
			}
			o.logf("bench scaling workers=%d: %.2fx real time, %.2fx speedup", w, rec.CPUPerRealTime, rec.Speedup)
			report.Scaling = append(report.Scaling, rec)
		}
	}
	return report, nil
}
