// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 5), plus the ablation studies DESIGN.md
// calls out. Each driver builds its workload on the ether emulator, runs
// the architectures under test, and returns a report.Table or
// report.Figure whose rows/series mirror the paper's.
package experiments

import (
	"fmt"
	"io"

	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// Piconet identity shared by all Bluetooth workloads (the monitor, like
// BlueSniff, follows a known piconet).
const (
	PiconetLAP = 0x9E8B33
	PiconetUAP = 0x47
)

// Options tunes experiment size and logging.
type Options struct {
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies workload sizes; 1.0 reproduces paper-scale
	// workloads (250/4000/6000 packets), smaller values keep bench runs
	// quick.
	Scale float64
	// SNRs overrides the SNR sweep points of the accuracy figures.
	SNRs []float64
	// Log receives progress lines (nil silences).
	Log io.Writer
}

// normalize fills defaults.
func (o Options) normalize() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 20091201 // CoNeXT'09 in Rome
	}
	if len(o.SNRs) == 0 {
		// Dense at the low end where the miss-rate knee lives.
		o.SNRs = []float64{0, 1, 2, 3, 4.5, 6, 9, 12, 15, 20, 25, 30}
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// scaled returns max(lo, round(n*Scale)).
func (o Options) scaled(n, lo int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

func addr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

// unicastTrace builds the 802.11 unicast microbenchmark workload
// (Section 5.1.2): ping exchanges with SIFS-spaced MAC ACKs.
func unicastTrace(o Options, snrDB float64, pings int, interPing iq.Tick, rate protocols.ID) (*ether.Result, error) {
	if rate == protocols.Unknown {
		rate = protocols.WiFi80211b1M
	}
	return ether.Run(ether.Config{
		SNRdB: snrDB,
		Seed:  o.Seed,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate:         rate,
				Pings:        pings,
				PayloadBytes: 500,
				InterPing:    interPing,
				Requester:    addr(0x11),
				Responder:    addr(0x22),
				BSSID:        addr(0x33),
				CFOHz:        2500,
			},
		},
	})
}

// broadcastTrace builds the 802.11 broadcast microbenchmark workload
// (Section 5.1.3): a flood spaced DIFS + k*SlotTime.
func broadcastTrace(o Options, snrDB float64, count int) (*ether.Result, error) {
	return ether.Run(ether.Config{
		SNRdB: snrDB,
		Seed:  o.Seed + 1,
		Sources: []mac.Source{
			&mac.WiFiBroadcast{
				Rate:         protocols.WiFi80211b1M,
				Count:        count,
				PayloadBytes: 500,
				Sender:       addr(0x11),
				BSSID:        addr(0x33),
				CFOHz:        -1800,
			},
		},
	})
}

// bluetoothTrace builds the Bluetooth l2ping microbenchmark workload
// (Section 5.1.4).
func bluetoothTrace(o Options, snrDB float64, pings int) (*ether.Result, error) {
	return ether.Run(ether.Config{
		SNRdB: snrDB,
		Seed:  o.Seed + 2,
		Sources: []mac.Source{
			&mac.BluetoothPiconet{
				LAP:            PiconetLAP,
				UAP:            PiconetUAP,
				Pings:          pings,
				InterPingSlots: 2,
				CFOHz:          1200,
			},
		},
	})
}

// mixTrace builds the simultaneous 802.11 + Bluetooth workload of
// Section 5.1.5.
func mixTrace(o Options, snrDB float64, wifiPings, btPings int) (*ether.Result, error) {
	return ether.Run(ether.Config{
		SNRdB: snrDB,
		Seed:  o.Seed + 3,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate:         protocols.WiFi80211b1M,
				Pings:        wifiPings,
				PayloadBytes: 500,
				InterPing:    260_000, // periodic ICMP pings spread in time
				Requester:    addr(0x11),
				Responder:    addr(0x22),
				BSSID:        addr(0x33),
				CFOHz:        2500,
			},
			&mac.BluetoothPiconet{
				LAP:            PiconetLAP,
				UAP:            PiconetUAP,
				Pings:          btPings,
				InterPingSlots: 84,
				CFOHz:          -900,
			},
		},
	})
}
