package experiments

import (
	"fmt"
	"time"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

// RealWorldTrace synthesizes the campus-building trace of Section 5.3:
// sparse, mixed-rate 802.11b traffic (beacons, broadcast ARPs, unicast
// bursts at 2/5.5/11 Mbps), plus Bluetooth and an unknown interferer in
// the background. At Scale 1 it carries ~646 long-PLCP 802.11b packets of
// which ~106 are 1 Mbps, matching Table 4's composition.
func RealWorldTrace(o Options) (*ether.Result, error) {
	o = o.normalize()
	s := func(n int) int { return o.scaled(n, 2) }
	// Fixed 35 s (scaled) sparse trace; every source spreads its packet
	// budget over the whole duration so composition is scale-invariant.
	duration := iq.Tick(35 * 8_000_000 * clampScale(o.Scale))
	spread := func(count int) iq.Tick {
		if count < 1 {
			count = 1
		}
		return duration / iq.Tick(count)
	}
	return ether.Run(ether.Config{
		Duration: duration,
		SNRdB:    18,
		Seed:     o.Seed + 4,
		Sources: []mac.Source{
			// 1 Mbps long-PLCP traffic: 20 beacons + 46 broadcast ARPs +
			// 20 unicast exchanges (40 data + 40 ACKs) ≈ 146 packets...
			// trimmed to keep the 1 Mbps share near the paper's 106/646.
			&mac.WiFiBeacons{
				Interval: spread(s(20)),
				SSID:     "CS-Wireless",
				BSSID:    addr(0xA0),
				CFOHz:    900,
			},
			&mac.WiFiBroadcast{
				Rate: protocols.WiFi80211b1M, Count: s(46),
				PayloadBytes: 700, ExtraGap: spread(s(46)),
				Sender: addr(0xB1), BSSID: addr(0xA0), CFOHz: -1400,
			},
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: s(10),
				PayloadBytes: 500, InterPing: spread(s(10)),
				Requester: addr(0xB2), Responder: addr(0xB3), BSSID: addr(0xA0),
				CFOHz: 1700,
			},
			// 2 Mbps unicast bursts: 40 exchanges = 160 packets, ACKs at
			// 2 Mbps so they do not inflate the 1 Mbps census.
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b2M, Pings: s(40),
				PayloadBytes: 800, InterPing: spread(s(40)),
				Requester: addr(0xC1), Responder: addr(0xC2), BSSID: addr(0xA0),
				CFOHz: 2100, AckRate: protocols.WiFi80211b2M,
			},
			// 5.5 Mbps broadcast-heavy flows: 160 packets.
			&mac.WiFiBroadcast{
				Rate: protocols.WiFi80211b5M5, Count: s(160),
				PayloadBytes: 1000, ExtraGap: spread(s(160)),
				Sender: addr(0xD1), BSSID: addr(0xA0), CFOHz: 500,
			},
			// 11 Mbps bulk: 220 packets.
			&mac.WiFiBroadcast{
				Rate: protocols.WiFi80211b11M, Count: s(220),
				PayloadBytes: 1400, ExtraGap: spread(s(220)),
				Sender: addr(0xE1), BSSID: addr(0xA0), CFOHz: -700,
			},
			// Background clutter: a Bluetooth piconet and an unknown
			// interferer ("noise, unknown signal sources, etc.").
			&mac.BluetoothPiconet{
				LAP: PiconetLAP, UAP: PiconetUAP, Pings: s(120),
				InterPingSlots: int(spread(s(120)) / 5000), CFOHz: 600,
			},
			&mac.UnknownInterferer{Bursts: s(24), SNROffsetDB: -4},
		},
	})
}

func clampScale(s float64) float64 {
	if s < 0.05 {
		return 0.05
	}
	return s
}

// Table4 reproduces the real-world selectivity table: how many packets
// and what fraction of trace samples pass (a) no filter, (b) an ideal
// filter keeping only 1 Mbps transmissions, (c) an ideal filter keeping
// only PLCP headers, and (d) the DBPSK phase detector (paper: 646/100%,
// 106/3.97%, 0/0.35%, 106/6.05%).
func Table4(o Options) (*report.Table, error) {
	o = o.normalize()
	res, err := RealWorldTrace(o)
	if err != nil {
		return nil, err
	}
	traceLen := float64(len(res.Samples))
	clock := res.Clock
	headerTicks := clock.Ticks(wifiPLCPDuration())

	// Census of the 802.11b ground truth.
	var totalPkts, oneMbpsPkts int
	var oneMbpsSamples, headerSamples iq.Tick
	var oneMbpsSpans []iq.Interval
	for _, r := range res.Truth.Records {
		if !r.Visible || r.Proto.Family() != protocols.WiFi80211b1M {
			continue
		}
		totalPkts++
		headerSamples += headerTicks
		if r.Proto == protocols.WiFi80211b1M {
			oneMbpsPkts++
			oneMbpsSamples += r.Span.Len()
			oneMbpsSpans = append(oneMbpsSpans, r.Span)
		} else {
			oneMbpsSpans = append(oneMbpsSpans, iq.Interval{Start: r.Span.Start, End: r.Span.Start + headerTicks})
		}
	}

	// DBPSK phase detector run.
	mon := arch.NewRFDump("dbpsk", clock, core.Detect(core.WiFiPhaseSpec(core.WiFiPhaseConfig{})))
	out, err := mon.Process(res.Samples)
	if err != nil {
		return nil, err
	}
	forwarded := out.Forwarded[protocols.WiFi80211b1M]
	var fwdSamples iq.Tick
	for _, iv := range forwarded {
		fwdSamples += iv.Len()
	}
	// Full 1 Mbps packets passed: 1 Mbps truth packets covered >= 90%.
	fullPassed := 0
	for _, r := range res.Truth.Records {
		if !r.Visible || r.Proto != protocols.WiFi80211b1M {
			continue
		}
		if iq.CoverageOf(r.Span, forwarded) >= r.Span.Len()*9/10 {
			fullPassed++
		}
	}

	pct := func(n iq.Tick) string {
		return fmt.Sprintf("%.2f%%", 100*float64(n)/traceLen)
	}
	t := &report.Table{
		Title:   "Table 4: Real-world results summary",
		Headers: []string{"", "# PLCP headers", "# packets", "%age of trace"},
	}
	t.AddRow("Full trace", totalPkts, totalPkts, "100%")
	t.AddRow("Ideal 1 Mbps only", totalPkts, oneMbpsPkts, pct(oneMbpsSamples))
	t.AddRow("Ideal headers only", totalPkts, 0, pct(headerSamples))
	t.AddRow("DBPSK detector", totalPkts, fullPassed, pct(fwdSamples))
	idealCombined := iq.TotalLen(iq.Merge(oneMbpsSpans))
	t.Notes = append(t.Notes,
		fmt.Sprintf("ideal 1 Mbps + headers combined filter: %s (detector selectivity should land modestly above this)", pct(idealCombined)),
		fmt.Sprintf("trace: %.1f s, %.1f%% busy", float64(len(res.Samples))/8e6, 100*res.Utilization()))
	return t, nil
}

// wifiPLCPDuration is the 192 us long preamble + PLCP header airtime.
func wifiPLCPDuration() time.Duration {
	return time.Duration(wifi.PLCPBits) * time.Microsecond
}
