package experiments

import (
	"fmt"
	"time"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/ether"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

// Table1 reproduces the per-block cost table: CPU time / real time for
// 802.11 demodulation, Bluetooth demodulation (one channel, as GNU Radio
// blocks are per-channel), and peak/energy detection, over a ~50%
// utilization stream (paper: 0.6 / 0.7 / 0.05 on a 2.13 GHz Core 2 Duo).
func Table1(o Options) (*report.Table, error) {
	o = o.normalize()
	// A half-busy trace: unicast pings back to back.
	dur := iq.Tick(float64(4_000_000) * o.Scale) // 0.5 s at scale 1
	if dur < 400_000 {
		dur = 400_000
	}
	res, err := ether.Run(ether.Config{
		Duration: dur,
		SNRdB:    20,
		Seed:     o.Seed,
		Sources: []mac.Source{
			&mac.WiFiUnicast{
				Rate: protocols.WiFi80211b1M, Pings: 1 << 20,
				PayloadBytes: 500, InterPing: 38_000, // ~50% utilization
				Requester: addr(0x11), Responder: addr(0x22), BSSID: addr(0x33),
			},
		},
	})
	if err != nil {
		return nil, err
	}
	rt := res.Clock.Duration(iq.Tick(len(res.Samples)))

	measure := func(fn func()) float64 {
		start := time.Now()
		fn()
		return float64(time.Since(start)) / float64(rt)
	}

	t := &report.Table{
		Title:   "Table 1: Time taken by some blocks (CPU time / real time)",
		Headers: []string{"GNU Radio Block (equivalent)", "CPU time / Real time"},
	}

	wifiD := demod.NewWiFiDemod()
	t.AddRow("802.11 demodulation (1 Mbps)", measure(func() {
		wifiD.Demodulate(res.Samples, 0)
	}))

	btD := demod.NewBTDemod(PiconetLAP, PiconetUAP, 8)
	t.AddRow("Bluetooth demodulation (one channel)", measure(func() {
		btD.DemodulateChannel(res.Samples, 0, 3)
	}))

	pd := core.NewPeakDetector(core.PeakConfig{})
	t.AddRow("Peak/Energy detection", measure(func() {
		drain := func(flowgraph.Item) {}
		n := len(res.Samples)
		for s := 0; s < n; s += iq.ChunkSamples {
			e := s + iq.ChunkSamples
			if e > n {
				e = n
			}
			_ = pd.Process(core.Chunk{
				Seq:     s / iq.ChunkSamples,
				Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
				Samples: res.Samples[s:e],
			}, drain)
		}
		_ = pd.Flush(drain)
	}))

	t.Notes = append(t.Notes,
		fmt.Sprintf("trace: %.0f ms at %.0f%% medium utilization, single core", float64(rt)/1e6, 100*res.Utilization()),
		"expected shape: each demodulator >= 10x the cost of peak/energy detection")
	return t, nil
}

// figure9Configs builds the nine architecture configurations of Figure 9.
// Fresh analyzer instances per configuration keep scratch state isolated.
func figure9Configs(clock iq.Clock) []arch.Monitor {
	newAnalyzers := func() []core.Analyzer {
		return []core.Analyzer{
			demod.NewWiFiDemod(),
			demod.NewBTDemod(PiconetLAP, PiconetUAP, 8),
		}
	}
	return []arch.Monitor{
		arch.NewNaive(clock, newAnalyzers()...),
		arch.NewNaiveEnergy(clock, true, newAnalyzers()...),
		arch.NewNaiveEnergy(clock, false),
		arch.NewRFDump("RFDump timing", clock, core.TimingOnly(), newAnalyzers()...),
		arch.NewRFDump("RFDump phase", clock, core.PhaseOnly(), newAnalyzers()...),
		arch.NewRFDump("RFDump timing+phase", clock, core.TimingAndPhase(), newAnalyzers()...),
		arch.NewRFDump("RFDump timing nodemod", clock, core.TimingOnly()),
		arch.NewRFDump("RFDump phase nodemod", clock, core.PhaseOnly()),
		arch.NewRFDump("RFDump timing+phase nodemod", clock, core.TimingAndPhase()),
	}
}

// Figure9 reproduces the efficiency comparison: CPU time / real time vs
// medium utilization for the nine configurations (paper: naive flat at
// ~7x; naive+energy approaching it as utilization grows; RFDump 2-3x
// cheaper than naive+energy; detection-only far below real time).
func Figure9(o Options) (*report.Figure, error) {
	o = o.normalize()
	fig := &report.Figure{
		Title:  "Figure 9: Efficiency of detectors/demodulators vs medium utilization",
		XLabel: "medium utilization (%)",
		YLabel: "CPU time / real time",
	}
	dur := iq.Tick(float64(2_400_000) * o.Scale) // 300 ms at scale 1
	if dur < 400_000 {
		dur = 400_000
	}
	// Inter-ping spacings chosen to sweep utilization; 0 gives ~93%.
	gaps := []iq.Tick{2_000_000, 640_000, 160_000, 64_000, 24_000, 8_000, 0}
	for _, gap := range gaps {
		res, err := ether.Run(ether.Config{
			Duration: dur,
			SNRdB:    20,
			Seed:     o.Seed + iq.DefaultSampleRate,
			Sources: []mac.Source{
				&mac.WiFiUnicast{
					Rate: protocols.WiFi80211b1M, Pings: 1 << 20,
					PayloadBytes: 500, InterPing: gap,
					Requester: addr(0x11), Responder: addr(0x22), BSSID: addr(0x33),
					CFOHz: 1500,
				},
			},
		})
		if err != nil {
			return nil, err
		}
		util := 100 * res.Utilization()
		for _, mon := range figure9Configs(res.Clock) {
			out, err := mon.Process(res.Samples)
			if err != nil {
				return nil, fmt.Errorf("fig9 %s: %w", mon.Name(), err)
			}
			fig.Add(mon.Name(), util, out.CPUPerRealTime())
			o.logf("fig9 util=%.0f%% %s: %.2fx", util, mon.Name(), out.CPUPerRealTime())
		}
	}
	fig.Notes = append(fig.Notes,
		"1 x 802.11 (1 Mbps) demodulator + 8 Bluetooth channel demodulators, single core",
		fmt.Sprintf("trace length %.0f ms per point", float64(dur)/8000))
	return fig, nil
}
