package experiments

import (
	"fmt"
	"strings"
	"testing"

	"rfdump/internal/protocols"
	"rfdump/internal/report"
)

// tiny returns options small enough for CI-speed runs while keeping the
// qualitative shapes intact.
func tiny() Options {
	return Options{Scale: 0.02, SNRs: []float64{3, 20}}
}

func TestTable1Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts CPU-time ratios")
	}
	tb, err := Table1(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Parse CPU/RT column and verify the Table 1 shape: each demodulator
	// is much more expensive than peak/energy detection.
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		var v float64
		if _, err := fscan(row[1], &v); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		vals[row[0]] = v
	}
	peak := vals["Peak/Energy detection"]
	if peak <= 0 {
		t.Fatal("no peak detection cost measured")
	}
	for name, v := range vals {
		if name == "Peak/Energy detection" {
			continue
		}
		if v < 5*peak {
			t.Errorf("%s (%.3f) not well above detection (%.3f)", name, v, peak)
		}
	}
}

func fscan(s string, v *float64) (int, error) {
	return sscanf(s, v)
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %s points = %d", s.Name, len(s.Y))
		}
		// Monotone: high SNR misses <= low SNR misses.
		if s.Y[1] > s.Y[0]+1e-9 {
			t.Errorf("%s: miss rises with SNR: %v", s.Name, s.Y)
		}
		// Near zero at 20 dB.
		if s.Y[1] > 0.05 {
			t.Errorf("%s: miss %.3f at 20 dB", s.Name, s.Y[1])
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	fig, err := Figure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if s.Y[1] > 0.10 {
		t.Errorf("DIFS miss %.3f at 20 dB", s.Y[1])
	}
}

func TestFigure8Shape(t *testing.T) {
	o := tiny()
	o.Scale = 0.04 // needs enough hops to land in the monitored band
	fig, err := Figure8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		// Timing keeps a small floor (first packet of the session);
		// everything must still be far below 50% at 20 dB.
		if s.Y[len(s.Y)-1] > 0.5 {
			t.Errorf("%s: miss %.3f at 20 dB", s.Name, s.Y[len(s.Y)-1])
		}
	}
}

func TestTable3Shape(t *testing.T) {
	o := Options{Scale: 0.05}
	tb, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var missW, fpW float64
		sscanf(row[1], &missW)
		sscanf(row[5], &fpW)
		if missW > 0.2 {
			t.Errorf("%s wifi miss %.3f", row[0], missW)
		}
		if fpW > 0.05 {
			t.Errorf("%s wifi fp %.4f", row[0], fpW)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tb, err := Table4(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	pct := func(row int) float64 {
		var v float64
		s := strings.TrimSuffix(tb.Rows[row][3], "%")
		sscanf(s, &v)
		return v
	}
	full, ideal1M, headers, detector := pct(0), pct(1), pct(2), pct(3)
	if full != 100 {
		t.Errorf("full trace %v%%", full)
	}
	// Ordering: headers < ideal 1 Mbps < detector << full.
	if !(headers < ideal1M && ideal1M < detector && detector < 30) {
		t.Errorf("selectivity ordering: headers %.2f, 1M %.2f, detector %.2f", headers, ideal1M, detector)
	}
}

func TestRealWorldComposition(t *testing.T) {
	res, err := RealWorldTrace(Options{Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	total, oneM := 0, 0
	for _, r := range res.Truth.Records {
		if !r.Visible {
			continue
		}
		switch r.Proto.Family() {
		case protoWiFi:
			total++
			if r.Proto == protoWiFi {
				oneM++
			}
		}
	}
	if total == 0 {
		t.Fatal("no wifi packets")
	}
	frac := float64(oneM) / float64(total)
	// Paper: 106/646 = 16.4% of long-PLCP packets at 1 Mbps.
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("1 Mbps fraction %.2f, want ~0.16", frac)
	}
	if u := res.Utilization(); u > 0.2 {
		t.Errorf("realworld utilization %.2f, want sparse", u)
	}
}

func TestAblationsRun(t *testing.T) {
	o := Options{Scale: 0.03}
	for name, fn := range map[string]func(Options) (*tbl, error){
		"chunk":    wrapT(AblationChunkSize),
		"avgwin":   wrapT(AblationAvgWindow),
		"btcache":  wrapT(AblationBTCache),
		"sampling": wrapT(AblationSampling),
		"parallel": wrapT(ExtensionParallel),
	} {
		tb, err := fn(o)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestBTCacheAblationShape(t *testing.T) {
	tb, err := AblationBTCache(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 = with cache: must record cache hits > 0.
	var hits float64
	sscanf(tb.Rows[0][2], &hits)
	if hits == 0 {
		t.Error("cache never hit")
	}
	// Row 1 = without cache: zero hits.
	var hits2 float64
	sscanf(tb.Rows[1][2], &hits2)
	if hits2 != 0 {
		t.Error("cache hits without cache")
	}
}

// --- test helpers ---

type tbl = report.Table

func wrapT(f func(Options) (*report.Table, error)) func(Options) (*tbl, error) { return f }

const protoWiFi = protocols.WiFi80211b1M

func sscanf(s string, v *float64) (int, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, fmt.Errorf("empty cell")
	}
	return fmt.Sscanf(fields[0], "%g", v)
}

func TestExtensionOFDMShape(t *testing.T) {
	o := Options{Scale: 0.03, SNRs: []float64{2, 20}}
	fig, err := ExtensionOFDM(o)
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	if len(s.Y) != 2 {
		t.Fatalf("points %d", len(s.Y))
	}
	// Near-perfect at 20 dB, degraded at 2 dB.
	if s.Y[1] > 0.05 {
		t.Errorf("OFDM miss %.3f at 20 dB", s.Y[1])
	}
	if s.Y[0] < s.Y[1] {
		t.Errorf("miss not worse at low SNR: %v", s.Y)
	}
	if len(fig.Notes) == 0 {
		t.Error("cross-rejection note missing")
	}
}

func TestAblationHeaderOnlyShape(t *testing.T) {
	tb, err := AblationHeaderOnly(Options{Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	var fullPkts, hdrPkts, fullBytes, hdrBytes float64
	sscanf(tb.Rows[0][1], &fullPkts)
	sscanf(tb.Rows[1][1], &hdrPkts)
	sscanf(tb.Rows[0][2], &fullBytes)
	sscanf(tb.Rows[1][2], &hdrBytes)
	if fullPkts != hdrPkts {
		t.Errorf("packet counts differ: %v vs %v", fullPkts, hdrPkts)
	}
	if hdrBytes != 0 || fullBytes == 0 {
		t.Errorf("payload bytes: full %v hdr %v", fullBytes, hdrBytes)
	}
}

func TestAblationSubbandShape(t *testing.T) {
	tb, err := AblationSubband(Options{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var single, sub, truthN float64
	sscanf(tb.Rows[0][1], &single)
	sscanf(tb.Rows[1][1], &sub)
	sscanf(tb.Rows[0][2], &truthN)
	// The subband stage must resolve at least as many peaks as the
	// single-band stage and come closer to the true count.
	if sub < single {
		t.Errorf("subband %v < single-band %v", sub, single)
	}
	if diff := abs(sub - truthN); diff > abs(single-truthN) {
		t.Errorf("subband (%v) further from truth (%v) than single-band (%v)", sub, truthN, single)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestScorecardAllPass(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation distorts CPU-time ratios")
	}
	tb, err := Scorecard(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 6 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[2] != "PASS" {
			t.Errorf("claim %q: %s (%s)", row[0], row[2], row[1])
		}
	}
}
