package experiments

import (
	"fmt"

	"rfdump/internal/arch"
	"rfdump/internal/core"
	"rfdump/internal/ether"
	"rfdump/internal/protocols"
	"rfdump/internal/report"
	"rfdump/internal/truth"
)

// runDetectors processes a trace with a detector-only RFDump pipeline and
// matches against ground truth for one family.
func runDetectors(res *ether.Result, cfg core.Config, family protocols.ID) (truth.Stats, error) {
	mon := arch.NewRFDump("probe", res.Clock, cfg)
	out, err := mon.Process(res.Samples)
	if err != nil {
		return truth.Stats{}, err
	}
	return truth.Match(res.Truth, out.TruthDetections(), family), nil
}

// Figure6 reproduces the 802.11 unicast microbenchmark: packet miss rate
// vs SNR for the SIFS timing detector and the DBPSK phase detector
// (paper: 250 ICMP echo exchanges = 1000 packets per point; miss ~0 above
// 9 dB, rising steeply below).
func Figure6(o Options) (*report.Figure, error) {
	o = o.normalize()
	pings := o.scaled(250, 8)
	fig := &report.Figure{
		Title:  "Figure 6: 802.11 unicast microbenchmark",
		XLabel: "SNR (dB)",
		YLabel: "packet miss rate",
		LogY:   true,
	}
	for _, snr := range o.SNRs {
		res, err := unicastTrace(o, snr, pings, 8000, protocols.WiFi80211b1M)
		if err != nil {
			return nil, err
		}
		total := res.Truth.VisibleCount(protocols.WiFi80211b1M)

		sifsCfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{DisableDIFS: true}))
		st, err := runDetectors(res, sifsCfg, protocols.WiFi80211b1M)
		if err != nil {
			return nil, err
		}
		fig.Add("802.11 SIFS timing detector", snr, floorRate(st.MissRate()))

		phCfg := core.Detect(core.WiFiPhaseSpec(core.WiFiPhaseConfig{}))
		stp, err := runDetectors(res, phCfg, protocols.WiFi80211b1M)
		if err != nil {
			return nil, err
		}
		fig.Add("802.11 phase detector", snr, floorRate(stp.MissRate()))

		o.logf("fig6 snr=%.0f: %d pkts, sifs miss=%.4f phase miss=%.4f",
			snr, total, st.MissRate(), stp.MissRate())
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d echo exchanges per point (%d packets incl. MAC ACKs)", pings, 4*pings))
	return fig, nil
}

// Figure7 reproduces the 802.11 broadcast microbenchmark: DIFS + k*ST
// timing detection of a broadcast flood (paper: 4000 packets; near-zero
// miss above 9 dB).
func Figure7(o Options) (*report.Figure, error) {
	o = o.normalize()
	count := o.scaled(4000, 40)
	fig := &report.Figure{
		Title:  "Figure 7: 802.11 broadcast microbenchmark",
		XLabel: "SNR (dB)",
		YLabel: "packet miss rate",
		LogY:   true,
	}
	for _, snr := range o.SNRs {
		res, err := broadcastTrace(o, snr, count)
		if err != nil {
			return nil, err
		}
		cfg := core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{DisableSIFS: true}))
		st, err := runDetectors(res, cfg, protocols.WiFi80211b1M)
		if err != nil {
			return nil, err
		}
		fig.Add("802.11 DIFS timing detector", snr, floorRate(st.MissRate()))
		o.logf("fig7 snr=%.0f: difs miss=%.4f (%d/%d)", snr, st.MissRate(), st.Found, st.Total)
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("%d broadcast packets per point", count))
	return fig, nil
}

// Figure8 reproduces the Bluetooth microbenchmark: timing and phase
// detector miss rates vs SNR over l2ping traffic (paper: 6000 L2CAP pings
// across all 79 channels, ~8/79 audible; timing has a small persistent
// miss floor — the first packet of each session — phase reaches zero at
// high SNR).
func Figure8(o Options) (*report.Figure, error) {
	o = o.normalize()
	pings := o.scaled(3000, 60) // exchanges; 2 packets each = paper's 6000
	fig := &report.Figure{
		Title:  "Figure 8: Bluetooth microbenchmark",
		XLabel: "SNR (dB)",
		YLabel: "packet miss rate",
		LogY:   true,
	}
	for _, snr := range o.SNRs {
		res, err := bluetoothTrace(o, snr, pings)
		if err != nil {
			return nil, err
		}
		visible := res.Truth.VisibleCount(protocols.Bluetooth)

		tCfg := core.Detect(core.BTTimingSpec(core.BTTimingConfig{}))
		st, err := runDetectors(res, tCfg, protocols.Bluetooth)
		if err != nil {
			return nil, err
		}
		fig.Add("Bluetooth timing detector", snr, floorRate(st.MissRate()))

		pCfg := core.Detect(core.BTPhaseSpec(core.BTPhaseConfig{}))
		stp, err := runDetectors(res, pCfg, protocols.Bluetooth)
		if err != nil {
			return nil, err
		}
		fig.Add("Bluetooth phase detector", snr, floorRate(stp.MissRate()))

		o.logf("fig8 snr=%.0f: %d audible, timing miss=%.4f phase miss=%.4f",
			snr, visible, st.MissRate(), stp.MissRate())
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d L2CAP echo exchanges per point across 79 hop channels; 8 audible", pings))
	return fig, nil
}

// floorRate clamps rates to the paper's log-scale floor so log plots stay
// finite.
func floorRate(r float64) float64 {
	if r < 0.001 {
		return 0.001
	}
	return r
}

// Table3 reproduces the traffic-mix summary: packet miss rate and false
// positive rate for the timing and phase detectors with simultaneous
// 802.11b and Bluetooth transmitters (paper Table 3).
func Table3(o Options) (*report.Table, error) {
	o = o.normalize()
	wifiPings := o.scaled(250, 10) // 1000 802.11 packets
	btPings := o.scaled(500, 10)   // 1000 L2CAP pings
	res, err := mixTrace(o, 20, wifiPings, btPings)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Table 3: Traffic mix results summary",
		Headers: []string{"Detector",
			"miss 802.11b", "miss Bluetooth",
			"miss 802.11b (no coll.)", "miss BT (no coll.)",
			"fp 802.11b", "fp Bluetooth"},
	}

	type cfgRow struct {
		name string
		cfg  core.Config
	}
	rows := []cfgRow{
		{"Timing", core.TimingOnly()},
		{"Phase", core.PhaseOnly()},
	}
	for _, r := range rows {
		mon := arch.NewRFDump("probe", res.Clock, r.cfg)
		out, err := mon.Process(res.Samples)
		if err != nil {
			return nil, err
		}
		dets := out.TruthDetections()
		stW := truth.Match(res.Truth, dets, protocols.WiFi80211b1M)
		stB := truth.Match(res.Truth, dets, protocols.Bluetooth)
		t.AddRow(r.name, stW.MissRate(), stB.MissRate(),
			stW.MissRateNonCollided(), stB.MissRateNonCollided(),
			stW.FalsePosRate, stB.FalsePosRate)
		o.logf("table3 %s: wifi %d/%d bt %d/%d", r.name, stW.Found, stW.Total, stB.Found, stB.Total)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("collision fraction: 802.11b %.3f, Bluetooth %.3f (collided packets appear as misses)",
			res.Truth.CollisionFraction(protocols.WiFi80211b1M),
			res.Truth.CollisionFraction(protocols.Bluetooth)))
	return t, nil
}
