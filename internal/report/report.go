// Package report holds the result containers and text renderers the
// experiment drivers and cmd/rfbench share: fixed-width tables mirroring
// the paper's tables, and (x, y) series mirroring its figures, with an
// ASCII plot renderer so figure shapes are visible in a terminal.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e9:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.5f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a titled set of curves.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the Y axis logarithmically (the paper's miss-rate
	// figures use a log scale from 0.001 to 1).
	LogY   bool
	Series []Series
	Notes  []string
}

// Add appends a point to the named series, creating it if necessary.
func (f *Figure) Add(name string, x, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == name {
			f.Series[i].X = append(f.Series[i].X, x)
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: name, X: []float64{x}, Y: []float64{y}})
}

// String renders the figure as a data table plus an ASCII plot.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", f.Title)
	// Data listing.
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "  %-10s %s\n", trimFloat(s.X[i]), trimFloat(s.Y[i]))
		}
	}
	b.WriteString(f.Plot(64, 16))
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Plot renders an ASCII chart of all series.
func (f *Figure) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	yval := func(y float64) float64 {
		if f.LogY {
			if y < 1e-4 {
				y = 1e-4
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range f.Series {
		for i := range s.X {
			x, y := s.X[i], yval(s.Y[i])
			if first {
				xmin, xmax, ymin, ymax = x, x, y, y
				first = false
				continue
			}
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if first {
		return "(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "ox+*#@%&"
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((yval(s.Y[i]) - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = m
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %s%s)\n", f.Title, f.YLabel, map[bool]string{true: ", log", false: ""}[f.LogY])
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width+1) + "\n")
	fmt.Fprintf(&b, "  x: %s [%s .. %s]\n", f.XLabel, trimFloat(xmin), trimFloat(xmax))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// CSV renders the figure's series as csv (x, series1, series2...) for
// external plotting; series are aligned on their own x values, one block
// per series.
func (f *Figure) CSV() string {
	var b strings.Builder
	for _, s := range f.Series {
		fmt.Fprintf(&b, "# %s\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "%g,%g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}
