package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	tb.Notes = append(tb.Notes, "a note")
	out := tb.String()
	for _, want := range []string{"=== T ===", "alpha", "1.500", "42", "note: a note", "name", "value"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestTableFloatFormats(t *testing.T) {
	tb := &Table{Headers: []string{"v"}}
	tb.AddRow(0.00012)
	tb.AddRow(1234.5678)
	tb.AddRow(3.0)
	out := tb.String()
	if !strings.Contains(out, "0.00012") {
		t.Errorf("small float lost precision:\n%s", out)
	}
	if !strings.Contains(out, "1234.6") {
		t.Errorf("large float:\n%s", out)
	}
	if !strings.Contains(out, "3\n") && !strings.Contains(out, "3 ") {
		t.Errorf("integral float:\n%s", out)
	}
}

func TestFigureAddAndSeries(t *testing.T) {
	f := &Figure{Title: "F", XLabel: "x", YLabel: "y"}
	f.Add("a", 1, 10)
	f.Add("a", 2, 20)
	f.Add("b", 1, 5)
	if len(f.Series) != 2 {
		t.Fatalf("series = %d", len(f.Series))
	}
	if len(f.Series[0].X) != 2 || f.Series[0].Name != "a" {
		t.Error("series a")
	}
}

func TestFigureString(t *testing.T) {
	f := &Figure{Title: "Miss rate", XLabel: "SNR", YLabel: "miss", LogY: true}
	for snr := 0; snr <= 30; snr += 3 {
		miss := 0.001
		if snr < 9 {
			miss = 0.5
		}
		f.Add("detector", float64(snr), miss)
	}
	out := f.String()
	for _, want := range []string{"=== Miss rate ===", "detector", "SNR", "log"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}

func TestFigurePlotEmpty(t *testing.T) {
	f := &Figure{Title: "empty"}
	if !strings.Contains(f.Plot(40, 10), "no data") {
		t.Error("empty plot")
	}
}

func TestFigurePlotDimensionClamping(t *testing.T) {
	f := &Figure{Title: "x"}
	f.Add("s", 1, 1)
	out := f.Plot(1, 1) // must clamp, not panic
	if out == "" {
		t.Error("empty plot output")
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{}
	f.Add("s1", 1, 2)
	f.Add("s1", 3, 4)
	csv := f.CSV()
	if !strings.Contains(csv, "# s1") || !strings.Contains(csv, "1,2") || !strings.Contains(csv, "3,4") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestFigureSinglePoint(t *testing.T) {
	f := &Figure{Title: "p"}
	f.Add("s", 5, 5)
	if out := f.Plot(20, 8); out == "" {
		t.Error("single point plot")
	}
}

func TestWaterfall(t *testing.T) {
	// A tone at +2 MHz must light up right-of-center bins.
	stream := make([]complex64, 80_000)
	for i := range stream {
		ph := 2 * 3.14159265 * 2e6 * float64(i) / 8e6
		stream[i] = complex(float32(10*cosf(ph)), float32(10*sinf(ph)))
	}
	out := Waterfall(stream, 8_000_000, 8, 32)
	if !strings.Contains(out, "MHz") || !strings.Contains(out, "@") {
		t.Errorf("waterfall output:\n%s", out)
	}
	if Waterfall(stream[:2], 8_000_000, 8, 32) == "" {
		t.Error("short trace must still return a message")
	}
}

func cosf(x float64) float64 { return math.Cos(x) }
func sinf(x float64) float64 { return math.Sin(x) }
