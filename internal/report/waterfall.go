package report

import (
	"fmt"
	"strings"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
)

// waterfallRamp maps normalized power to glyphs, dark to bright.
const waterfallRamp = " .:-=+*#%@"

// Waterfall renders a text spectrogram of an IQ stream: rows are time
// slices (top = start), columns are frequency bins across the monitored
// band (left = lowest). It is the monitoring tool's quick look at "what
// is in the ether" before any protocol classification — the role a
// spectrum analyzer plays in the paper's related-work comparison, built
// into the free tool.
func Waterfall(stream iq.Samples, rate int, rows, cols int) string {
	if rows < 4 {
		rows = 4
	}
	if cols < 8 {
		cols = 8
	}
	if len(stream) < rows {
		return "(trace too short for a waterfall)\n"
	}
	fftSize := dsp.NextPow2(cols * 4)
	slice := len(stream) / rows

	// Compute per-cell powers in dB.
	grid := make([][]float64, rows)
	minDB, maxDB := 1e18, -1e18
	for r := 0; r < rows; r++ {
		seg := stream[r*slice : (r+1)*slice]
		if len(seg) > fftSize {
			// Average a few FFTs across the slice for stability.
			sums := make([]float64, cols)
			n := 0
			for off := 0; off+fftSize <= len(seg) && n < 8; off += (len(seg) - fftSize) / 7 {
				bins := dsp.BinPowers(seg[off:off+fftSize], fftSize, cols)
				for i, p := range bins {
					sums[i] += p
				}
				n++
				if len(seg) == fftSize {
					break
				}
			}
			for i := range sums {
				sums[i] /= float64(n)
			}
			grid[r] = sums
		} else {
			grid[r] = dsp.BinPowers(seg, fftSize, cols)
		}
		for i, p := range grid[r] {
			db := iq.DB(p + 1e-12)
			grid[r][i] = db
			if db < minDB {
				minDB = db
			}
			if db > maxDB {
				maxDB = db
			}
		}
	}
	if maxDB-minDB < 1 {
		maxDB = minDB + 1
	}

	var b strings.Builder
	span := float64(rate) / 1e6
	fmt.Fprintf(&b, "waterfall: %d rows x %d bins, band %.1f MHz, %.0f dB range\n",
		rows, cols, span, maxDB-minDB)
	for r := 0; r < rows; r++ {
		b.WriteString("| ")
		for c := 0; c < cols; c++ {
			f := (grid[r][c] - minDB) / (maxDB - minDB)
			idx := int(f * float64(len(waterfallRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(waterfallRamp) {
				idx = len(waterfallRamp) - 1
			}
			b.WriteByte(waterfallRamp[idx])
		}
		tMS := float64(r*slice) / float64(rate) * 1000
		fmt.Fprintf(&b, " | %7.1f ms\n", tMS)
	}
	b.WriteString("  ")
	b.WriteString(strings.Repeat("-", cols))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  -%.1f MHz%s+%.1f MHz\n", span/2,
		strings.Repeat(" ", maxInt(1, cols-14)), span/2)
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
