package report

import (
	"fmt"
	"strings"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
)

// waterfallRamp maps normalized power to glyphs, dark to bright.
const waterfallRamp = " .:-=+*#%@"

// WaterfallData is the serializable form of a spectrogram: rows are time
// slices (row 0 = start), columns are frequency bins across the band
// (column 0 = lowest). The daemon's /api/waterfall endpoint returns it
// as JSON; Render produces the terminal view rfdump -spectrum prints.
type WaterfallData struct {
	// Rows and Cols are the grid dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// RateHz is the sample rate the band span derives from.
	RateHz int `json:"rate_hz"`
	// SliceSamples is the number of samples summarized per row.
	SliceSamples int `json:"slice_samples"`
	// MinDB/MaxDB are the grid's power extremes (MaxDB is raised to at
	// least MinDB+1 so normalization is always well-defined).
	MinDB float64 `json:"min_db"`
	MaxDB float64 `json:"max_db"`
	// CellsDB is the row-major grid of per-cell powers in dB.
	CellsDB [][]float64 `json:"cells_db"`
}

// WaterfallGrid computes the spectrogram grid of an IQ stream. The
// second return is false when the stream is too short to summarize.
func WaterfallGrid(stream iq.Samples, rate int, rows, cols int) (WaterfallData, bool) {
	if rows < 4 {
		rows = 4
	}
	if cols < 8 {
		cols = 8
	}
	if len(stream) < rows {
		return WaterfallData{}, false
	}
	fftSize := dsp.NextPow2(cols * 4)
	slice := len(stream) / rows

	grid := make([][]float64, rows)
	minDB, maxDB := 1e18, -1e18
	for r := 0; r < rows; r++ {
		seg := stream[r*slice : (r+1)*slice]
		if len(seg) > fftSize {
			// Average a few FFTs across the slice for stability.
			sums := make([]float64, cols)
			n := 0
			for off := 0; off+fftSize <= len(seg) && n < 8; off += (len(seg) - fftSize) / 7 {
				bins := dsp.BinPowers(seg[off:off+fftSize], fftSize, cols)
				for i, p := range bins {
					sums[i] += p
				}
				n++
				if len(seg) == fftSize {
					break
				}
			}
			for i := range sums {
				sums[i] /= float64(n)
			}
			grid[r] = sums
		} else {
			grid[r] = dsp.BinPowers(seg, fftSize, cols)
		}
		for i, p := range grid[r] {
			db := iq.DB(p + 1e-12)
			grid[r][i] = db
			if db < minDB {
				minDB = db
			}
			if db > maxDB {
				maxDB = db
			}
		}
	}
	if maxDB-minDB < 1 {
		maxDB = minDB + 1
	}
	return WaterfallData{
		Rows:         rows,
		Cols:         cols,
		RateHz:       rate,
		SliceSamples: slice,
		MinDB:        minDB,
		MaxDB:        maxDB,
		CellsDB:      grid,
	}, true
}

// Render produces the text view: one glyph per cell, time running down,
// with a frequency axis across the monitored band.
func (d WaterfallData) Render() string {
	var b strings.Builder
	span := float64(d.RateHz) / 1e6
	fmt.Fprintf(&b, "waterfall: %d rows x %d bins, band %.1f MHz, %.0f dB range\n",
		d.Rows, d.Cols, span, d.MaxDB-d.MinDB)
	for r := 0; r < d.Rows; r++ {
		b.WriteString("| ")
		for c := 0; c < d.Cols; c++ {
			f := (d.CellsDB[r][c] - d.MinDB) / (d.MaxDB - d.MinDB)
			idx := int(f * float64(len(waterfallRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(waterfallRamp) {
				idx = len(waterfallRamp) - 1
			}
			b.WriteByte(waterfallRamp[idx])
		}
		tMS := float64(r*d.SliceSamples) / float64(d.RateHz) * 1000
		fmt.Fprintf(&b, " | %7.1f ms\n", tMS)
	}
	b.WriteString("  ")
	b.WriteString(strings.Repeat("-", d.Cols))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  -%.1f MHz%s+%.1f MHz\n", span/2,
		strings.Repeat(" ", maxInt(1, d.Cols-14)), span/2)
	return b.String()
}

// Waterfall renders a text spectrogram of an IQ stream: rows are time
// slices (top = start), columns are frequency bins across the monitored
// band (left = lowest). It is the monitoring tool's quick look at "what
// is in the ether" before any protocol classification — the role a
// spectrum analyzer plays in the paper's related-work comparison, built
// into the free tool.
func Waterfall(stream iq.Samples, rate int, rows, cols int) string {
	d, ok := WaterfallGrid(stream, rate, rows, cols)
	if !ok {
		return "(trace too short for a waterfall)\n"
	}
	return d.Render()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
