package iq_test

import (
	"fmt"
	"time"

	"rfdump/internal/iq"
)

// ExampleClock shows sample-tick arithmetic at the monitor rate.
func ExampleClock() {
	clock := iq.NewClock(8_000_000)
	sifs := clock.Ticks(10 * time.Microsecond)
	fmt.Println("SIFS =", sifs, "samples")
	fmt.Println("625us slot =", clock.Ticks(625*time.Microsecond), "samples")
	fmt.Println("80 samples =", clock.Duration(80))
	// Output:
	// SIFS = 80 samples
	// 625us slot = 5000 samples
	// 80 samples = 10µs
}

// ExampleMerge shows interval coalescing, the currency between detectors
// and the dispatcher.
func ExampleMerge() {
	detections := []iq.Interval{
		{Start: 100, End: 300},
		{Start: 250, End: 500}, // overlaps the first
		{Start: 900, End: 1000},
	}
	for _, iv := range iq.Merge(detections) {
		fmt.Println(iv)
	}
	// Output:
	// [100,500)
	// [900,1000)
}

// ExampleCoverageOf computes how much of a ground-truth packet a set of
// forwarded spans covers — the accuracy metric's building block.
func ExampleCoverageOf() {
	packet := iq.Interval{Start: 0, End: 1000}
	forwarded := []iq.Interval{{Start: 0, End: 400}, {Start: 700, End: 2000}}
	fmt.Println(iq.CoverageOf(packet, forwarded), "of", packet.Len(), "samples covered")
	// Output:
	// 700 of 1000 samples covered
}
