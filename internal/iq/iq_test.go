package iq

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockDuration(t *testing.T) {
	c := NewClock(8_000_000)
	if got := c.Duration(8_000_000); got != time.Second {
		t.Errorf("Duration(rate) = %v, want 1s", got)
	}
	if got := c.Duration(80); got != 10*time.Microsecond {
		t.Errorf("Duration(80) = %v, want 10us", got)
	}
}

func TestClockTicks(t *testing.T) {
	c := NewClock(8_000_000)
	cases := []struct {
		d    time.Duration
		want Tick
	}{
		{time.Second, 8_000_000},
		{10 * time.Microsecond, 80},
		{625 * time.Microsecond, 5000},
		{0, 0},
	}
	for _, tc := range cases {
		if got := c.Ticks(tc.d); got != tc.want {
			t.Errorf("Ticks(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestClockDefaultRate(t *testing.T) {
	c := NewClock(0)
	if c.Rate != DefaultSampleRate {
		t.Errorf("default rate = %d", c.Rate)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestClockRoundTripProperty(t *testing.T) {
	c := NewClock(8_000_000)
	f := func(n uint32) bool {
		ticks := Tick(n % 100_000_000)
		return c.Ticks(c.Duration(ticks)) == ticks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockMicros(t *testing.T) {
	c := NewClock(8_000_000)
	if got := c.Micros(80); got != 10 {
		t.Errorf("Micros(80) = %v", got)
	}
}

func TestPowerAndEnergy(t *testing.T) {
	s := Samples{complex(3, 4), complex(0, 0), complex(1, 0)}
	if got := Power(s[0]); got != 25 {
		t.Errorf("Power(3+4i) = %v", got)
	}
	if got := s.Energy(); got != 26 {
		t.Errorf("Energy = %v", got)
	}
	if got := s.MeanPower(); math.Abs(got-26.0/3) > 1e-12 {
		t.Errorf("MeanPower = %v", got)
	}
	if got := s.PeakPower(); got != 25 {
		t.Errorf("PeakPower = %v", got)
	}
	var empty Samples
	if empty.MeanPower() != 0 || empty.Energy() != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestDBConversions(t *testing.T) {
	if got := DB(10); math.Abs(got-10) > 1e-12 {
		t.Errorf("DB(10) = %v", got)
	}
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %v", got)
	}
	if got := DB(0); got != -300 {
		t.Errorf("DB(0) = %v, want floor", got)
	}
	if got := DB(-5); got != -300 {
		t.Errorf("DB(-5) = %v, want floor", got)
	}
	if got := FromDB(3); math.Abs(got-1.9952623) > 1e-6 {
		t.Errorf("FromDB(3) = %v", got)
	}
}

func TestDBInverseProperty(t *testing.T) {
	f := func(raw uint16) bool {
		db := float64(raw%600)/10 - 30 // [-30, 30)
		back := DB(FromDB(db))
		return math.Abs(back-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	s := Samples{complex(1, 1), complex(2, -2)}
	s.Scale(0.5)
	if s[0] != complex(0.5, 0.5) || s[1] != complex(1, -1) {
		t.Errorf("scaled = %v", s)
	}
}

func TestAdd(t *testing.T) {
	base := make(Samples, 10)
	n := base.Add(4, Samples{1, 2, 3})
	if n != 3 {
		t.Errorf("mixed %d", n)
	}
	if base[4] != 1 || base[5] != 2 || base[6] != 3 || base[3] != 0 {
		t.Errorf("base = %v", base)
	}
	// Out-of-range portions are dropped, not panicking.
	if n := base.Add(8, Samples{1, 1, 1, 1}); n != 2 {
		t.Errorf("clipped mix = %d", n)
	}
	if n := base.Add(-2, Samples{5, 5, 5}); n != 1 {
		t.Errorf("negative-offset mix = %d", n)
	}
}

func TestRotatePreservesPower(t *testing.T) {
	s := Samples{complex(1, 2), complex(-3, 0.5)}
	before := s.Energy()
	s.Rotate(1.2345)
	if math.Abs(s.Energy()-before) > 1e-4 {
		t.Errorf("energy changed: %v -> %v", before, s.Energy())
	}
}

func TestFrequencyShiftPreservesPower(t *testing.T) {
	s := make(Samples, 1000)
	for i := range s {
		s[i] = complex(1, 0)
	}
	s.FrequencyShift(1e6, 8_000_000, 0)
	if math.Abs(s.MeanPower()-1) > 1e-4 {
		t.Errorf("power after shift = %v", s.MeanPower())
	}
	// The shifted signal must actually rotate: samples differ.
	if s[0] == s[1] {
		t.Error("no rotation applied")
	}
}

func TestFrequencyShiftContinuity(t *testing.T) {
	// Shifting in two halves with the returned phase must equal one
	// shot.
	mk := func() Samples {
		s := make(Samples, 64)
		for i := range s {
			s[i] = complex(1, 0)
		}
		return s
	}
	whole := mk()
	whole.FrequencyShift(333_333, 8_000_000, 0)
	split := mk()
	ph := split[:32].FrequencyShift(333_333, 8_000_000, 0)
	split[32:].FrequencyShift(333_333, 8_000_000, ph)
	for i := range whole {
		d := whole[i] - split[i]
		if math.Hypot(float64(real(d)), float64(imag(d))) > 1e-4 {
			t.Fatalf("discontinuity at %d: %v vs %v", i, whole[i], split[i])
		}
	}
}

func TestClone(t *testing.T) {
	s := Samples{1, 2}
	c := s.Clone()
	c[0] = 9
	if s[0] == 9 {
		t.Error("clone aliases source")
	}
}

func TestChunkHelpers(t *testing.T) {
	if Chunks(399) != 1 || Chunks(400) != 2 {
		t.Error("Chunks miscounts")
	}
	if ChunkStart(3) != Tick(3*ChunkSamples) {
		t.Error("ChunkStart")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{10, 20}
	if iv.Len() != 10 || iv.Empty() {
		t.Error("len/empty")
	}
	if !iv.Contains(10) || iv.Contains(20) || iv.Contains(9) {
		t.Error("contains half-open semantics")
	}
	inv := Interval{20, 10}
	if inv.Len() != 0 || !inv.Empty() {
		t.Error("inverted interval")
	}
}

func TestIntervalOverlapIntersect(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	c := Interval{10, 20}
	if !a.Overlaps(b) || a.Overlaps(c) {
		t.Error("overlap edges")
	}
	if x := a.Intersect(b); x != (Interval{5, 10}) {
		t.Errorf("intersect = %v", x)
	}
	if x := a.Intersect(c); !x.Empty() {
		t.Errorf("touching intersect = %v", x)
	}
}

func TestIntervalUnionExpand(t *testing.T) {
	a := Interval{5, 10}
	b := Interval{20, 30}
	if u := a.Union(b); u != (Interval{5, 30}) {
		t.Errorf("union hull = %v", u)
	}
	if u := a.Union(Interval{}); u != a {
		t.Errorf("union with empty = %v", u)
	}
	if e := a.Expand(10); e != (Interval{0, 20}) {
		t.Errorf("expand clamps at 0: %v", e)
	}
}

func TestMerge(t *testing.T) {
	set := []Interval{{10, 20}, {0, 5}, {15, 25}, {5, 10}, {40, 50}, {45, 45}}
	m := Merge(set)
	want := []Interval{{0, 25}, {40, 50}}
	if len(m) != len(want) {
		t.Fatalf("merged = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, m[i], want[i])
		}
	}
	if Merge(nil) != nil {
		t.Error("merge nil")
	}
}

func TestMergeProperties(t *testing.T) {
	gen := func(seed int64) []Interval {
		set := make([]Interval, 0, 20)
		x := uint64(seed)
		next := func() int64 {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return int64(x % 1000)
		}
		for i := 0; i < 20; i++ {
			s := next()
			set = append(set, Interval{Tick(s), Tick(s + next()%50)})
		}
		return set
	}
	f := func(seed int64) bool {
		set := gen(seed)
		m := Merge(set)
		// Disjoint and sorted.
		for i := 1; i < len(m); i++ {
			if m[i].Start <= m[i-1].End {
				return false
			}
		}
		// Idempotent.
		m2 := Merge(m)
		if len(m2) != len(m) {
			return false
		}
		// Total coverage preserved: every original point is covered.
		for _, iv := range set {
			for tk := iv.Start; tk < iv.End; tk += 7 {
				covered := false
				for _, mv := range m {
					if mv.Contains(tk) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoverageOf(t *testing.T) {
	iv := Interval{0, 100}
	set := []Interval{{10, 20}, {15, 30}, {90, 150}}
	// Overlapping set counts once: [10,30) + [90,100) = 30.
	if got := CoverageOf(iv, set); got != 30 {
		t.Errorf("coverage = %d, want 30", got)
	}
	if CoverageOf(Interval{}, set) != 0 {
		t.Error("empty interval coverage")
	}
	if CoverageOf(iv, nil) != 0 {
		t.Error("nil set coverage")
	}
}

func TestCoverageBoundsProperty(t *testing.T) {
	f := func(a, b uint16, raw []uint16) bool {
		lo, hi := Tick(a%500), Tick(a%500)+Tick(b%500)+1
		iv := Interval{lo, hi}
		var set []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			s := Tick(raw[i] % 1000)
			set = append(set, Interval{s, s + Tick(raw[i+1]%100)})
		}
		cov := CoverageOf(iv, set)
		return cov >= 0 && cov <= iv.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalLen(t *testing.T) {
	if TotalLen([]Interval{{0, 5}, {10, 12}}) != 7 {
		t.Error("TotalLen")
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistoryRing(3)
	if h.Len() != 0 {
		t.Error("fresh ring non-empty")
	}
	if _, ok := h.Newest(); ok {
		t.Error("fresh Newest ok")
	}
	for i := 0; i < 5; i++ {
		h.Append(Interval{Tick(i), Tick(i + 1)})
	}
	if h.Len() != 3 || h.Total() != 5 || h.Cap() != 3 {
		t.Errorf("len=%d total=%d cap=%d", h.Len(), h.Total(), h.Cap())
	}
	if got := h.At(0); got.Start != 4 {
		t.Errorf("newest = %v", got)
	}
	if got := h.At(2); got.Start != 2 {
		t.Errorf("oldest = %v", got)
	}
	snap := h.Snapshot()
	if len(snap) != 3 || snap[0].Start != 2 || snap[2].Start != 4 {
		t.Errorf("snapshot = %v", snap)
	}
	visited := 0
	h.ScanBack(func(iv Interval) bool {
		visited++
		return iv.Start != 3
	})
	if visited != 2 {
		t.Errorf("ScanBack visited %d", visited)
	}
}

func TestHistoryRingPanics(t *testing.T) {
	h := NewHistoryRing(2)
	h.Append(Interval{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("At out of range did not panic")
		}
	}()
	h.At(1)
}
