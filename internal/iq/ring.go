package iq

// HistoryRing is a fixed-capacity ring of intervals used by the peak
// detector to expose "a pointer to the history of peaks detected" to the
// protocol-specific detectors (paper Section 3.2). Appends overwrite the
// oldest entry once the ring is full; lookups iterate from newest to
// oldest, which matches how the timing detectors search backwards for a
// peak that ended SIFS/DIFS/slot-times ago.
type HistoryRing struct {
	buf   []Interval
	next  int // index the next Append writes to
	count int // number of valid entries (<= len(buf))
	total int // total entries ever appended (monotonic sequence number)
}

// NewHistoryRing returns a ring holding up to capacity intervals.
// A capacity below 1 is raised to 1.
func NewHistoryRing(capacity int) *HistoryRing {
	if capacity < 1 {
		capacity = 1
	}
	return &HistoryRing{buf: make([]Interval, capacity)}
}

// Append records a new interval as the most recent entry.
func (h *HistoryRing) Append(iv Interval) {
	h.buf[h.next] = iv
	h.next = (h.next + 1) % len(h.buf)
	if h.count < len(h.buf) {
		h.count++
	}
	h.total++
}

// Len returns the number of intervals currently held.
func (h *HistoryRing) Len() int { return h.count }

// Total returns the number of intervals ever appended.
func (h *HistoryRing) Total() int { return h.total }

// Cap returns the ring capacity.
func (h *HistoryRing) Cap() int { return len(h.buf) }

// At returns the i-th most recent interval (0 = newest). It panics if
// i >= Len(), mirroring slice indexing semantics.
func (h *HistoryRing) At(i int) Interval {
	if i < 0 || i >= h.count {
		panic("iq: HistoryRing index out of range")
	}
	idx := h.next - 1 - i
	for idx < 0 {
		idx += len(h.buf)
	}
	return h.buf[idx]
}

// Newest returns the most recent interval and true, or a zero interval and
// false if the ring is empty.
func (h *HistoryRing) Newest() (Interval, bool) {
	if h.count == 0 {
		return Interval{}, false
	}
	return h.At(0), true
}

// ScanBack calls fn for each held interval from newest to oldest until fn
// returns false. It returns the number of intervals visited.
func (h *HistoryRing) ScanBack(fn func(Interval) bool) int {
	for i := 0; i < h.count; i++ {
		if !fn(h.At(i)) {
			return i + 1
		}
	}
	return h.count
}

// Snapshot returns the held intervals ordered oldest to newest.
func (h *HistoryRing) Snapshot() []Interval {
	out := make([]Interval, h.count)
	for i := 0; i < h.count; i++ {
		out[h.count-1-i] = h.At(i)
	}
	return out
}
