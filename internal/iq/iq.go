// Package iq provides the fundamental sample-stream types shared by every
// layer of the RFDump reproduction: complex baseband samples, the sample
// clock, chunking, and power/energy helpers.
//
// The whole system operates on a single complex64 stream at a fixed sample
// rate (8 Msps by default, matching the USRP 1 over USB from the paper).
// Time is expressed in sample counts (type Tick) and converted to wall time
// through a Clock so that no floating-point drift accumulates across a
// multi-second trace.
package iq

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"
)

// DefaultSampleRate is the sample rate of the monitored stream in samples
// per second. The paper's USRP 1 delivers 8 Msps of complex samples over
// USB, covering an 8 MHz slice of the 2.4 GHz ISM band.
const DefaultSampleRate = 8_000_000

// ChunkSamples is the number of samples per metadata chunk. The paper picks
// 25 us = 200 samples at 8 Msps as the tradeoff between metadata overhead
// and noise forwarded alongside useful samples (Section 4.2).
const ChunkSamples = 200

// Tick is a time instant measured in samples since the start of the stream.
type Tick int64

// Samples is a block of complex baseband samples.
type Samples []complex64

// Clock converts between sample ticks and wall-clock durations at a given
// sample rate.
type Clock struct {
	// Rate is the sample rate in samples per second.
	Rate int
}

// NewClock returns a Clock for the given sample rate. A non-positive rate
// falls back to DefaultSampleRate.
func NewClock(rate int) Clock {
	if rate <= 0 {
		rate = DefaultSampleRate
	}
	return Clock{Rate: rate}
}

// Duration converts a span of n samples to a wall-clock duration.
func (c Clock) Duration(n Tick) time.Duration {
	return time.Duration(int64(n) * int64(time.Second) / int64(c.Rate))
}

// Ticks converts a wall-clock duration to the nearest number of samples.
func (c Clock) Ticks(d time.Duration) Tick {
	return Tick((int64(d)*int64(c.Rate) + int64(time.Second)/2) / int64(time.Second))
}

// Micros returns the tick position in microseconds as a float.
func (c Clock) Micros(t Tick) float64 {
	return float64(t) * 1e6 / float64(c.Rate)
}

// String implements fmt.Stringer for diagnostics.
func (c Clock) String() string { return fmt.Sprintf("%d sps", c.Rate) }

// Power returns the instantaneous power |s|^2 of one sample.
func Power(s complex64) float64 {
	re := float64(real(s))
	im := float64(imag(s))
	return re*re + im*im
}

// Energy returns the total energy (sum of |s|^2) of a block.
func (s Samples) Energy() float64 {
	var e float64
	for _, v := range s {
		e += Power(v)
	}
	return e
}

// MeanPower returns the average power of the block, or 0 for an empty block.
func (s Samples) MeanPower() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Energy() / float64(len(s))
}

// PeakPower returns the maximum instantaneous power in the block.
func (s Samples) PeakPower() float64 {
	var p float64
	for _, v := range s {
		if q := Power(v); q > p {
			p = q
		}
	}
	return p
}

// DB converts a linear power ratio to decibels. A non-positive ratio maps to
// a very low floor (-300 dB) rather than -Inf so the value stays usable in
// comparisons and formatting.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return -300
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// Scale multiplies every sample by the real gain g in place and returns s.
func (s Samples) Scale(g float64) Samples {
	gf := float32(g)
	for i := range s {
		s[i] = complex(real(s[i])*gf, imag(s[i])*gf)
	}
	return s
}

// Add mixes other into s in place starting at offset off (in samples of s).
// Samples of other that would fall outside s are ignored. It returns the
// number of samples actually mixed.
func (s Samples) Add(off Tick, other Samples) int {
	n := 0
	for i, v := range other {
		j := int64(off) + int64(i)
		if j < 0 || j >= int64(len(s)) {
			continue
		}
		s[j] += v
		n++
	}
	return n
}

// Clone returns a copy of the block.
func (s Samples) Clone() Samples {
	out := make(Samples, len(s))
	copy(out, s)
	return out
}

// Phase returns the instantaneous phase of sample i in radians (-pi, pi].
func Phase(s complex64) float64 {
	return cmplx.Phase(complex128(s))
}

// Rotate multiplies every sample by exp(i*theta) in place and returns s.
// Used by channel models (carrier phase) and property tests (detection
// must be invariant under a global phase rotation).
func (s Samples) Rotate(theta float64) Samples {
	r := complex(float32(math.Cos(theta)), float32(math.Sin(theta)))
	for i := range s {
		s[i] *= r
	}
	return s
}

// FrequencyShift applies a carrier frequency offset of hz (relative to the
// sample rate) in place: s[n] *= exp(2*pi*i*hz*n/rate + i*phase0).
// It returns the phase that a continuation of the shift should start from,
// allowing streaming use across block boundaries.
func (s Samples) FrequencyShift(hz float64, rate int, phase0 float64) (nextPhase float64) {
	step := 2 * math.Pi * hz / float64(rate)
	ph := phase0
	for i := range s {
		rot := complex(float32(math.Cos(ph)), float32(math.Sin(ph)))
		s[i] *= rot
		ph += step
		if ph > math.Pi {
			ph -= 2 * math.Pi
		} else if ph < -math.Pi {
			ph += 2 * math.Pi
		}
	}
	return ph
}

// Chunks returns the number of complete ChunkSamples-sized chunks in n
// samples.
func Chunks(n int) int { return n / ChunkSamples }

// ChunkStart returns the tick at which chunk k starts.
func ChunkStart(k int) Tick { return Tick(k * ChunkSamples) }

// Interval is a half-open range of ticks [Start, End). It is the common
// currency between the peak detector, the protocol-specific detectors, the
// dispatcher and the ground-truth matcher.
type Interval struct {
	Start Tick
	End   Tick
}

// Len returns the interval length in samples (0 for inverted intervals).
func (iv Interval) Len() Tick {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval contains no samples.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether tick t lies inside the interval.
func (iv Interval) Contains(t Tick) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the two intervals share at least one sample.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(o Interval) Interval {
	r := Interval{Start: maxTick(iv.Start, o.Start), End: minTick(iv.End, o.End)}
	if r.End < r.Start {
		r.End = r.Start
	}
	return r
}

// Union returns the smallest interval covering both (the hull; any gap
// between them is included).
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{Start: minTick(iv.Start, o.Start), End: maxTick(iv.End, o.End)}
}

// Expand grows the interval by pad samples on each side (clamped at 0).
func (iv Interval) Expand(pad Tick) Interval {
	s := iv.Start - pad
	if s < 0 {
		s = 0
	}
	return Interval{Start: s, End: iv.End + pad}
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

func minTick(a, b Tick) Tick {
	if a < b {
		return a
	}
	return b
}

func maxTick(a, b Tick) Tick {
	if a > b {
		return a
	}
	return b
}

// CoverageOf returns the total number of samples of iv covered by the given
// set of intervals (which may overlap each other; overlapping coverage is
// not double counted). Used for false-positive accounting: "fraction of
// samples forwarded that do not belong to a valid transmission".
func CoverageOf(iv Interval, set []Interval) Tick {
	if iv.Empty() || len(set) == 0 {
		return 0
	}
	// Collect clipped, non-empty intersections, then merge.
	clipped := make([]Interval, 0, len(set))
	for _, o := range set {
		x := iv.Intersect(o)
		if !x.Empty() {
			clipped = append(clipped, x)
		}
	}
	merged := Merge(clipped)
	var total Tick
	for _, m := range merged {
		total += m.Len()
	}
	return total
}

// Merge sorts and coalesces a set of intervals into a minimal disjoint set.
func Merge(set []Interval) []Interval {
	if len(set) == 0 {
		return nil
	}
	sorted := make([]Interval, 0, len(set))
	for _, iv := range set {
		if !iv.Empty() {
			sorted = append(sorted, iv)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	sortIntervals(sorted)
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalLen returns the summed length of a (typically merged) interval set.
func TotalLen(set []Interval) Tick {
	var t Tick
	for _, iv := range set {
		t += iv.Len()
	}
	return t
}

func sortIntervals(set []Interval) {
	// Insertion sort is fine for detector-scale sets; the experiments use
	// Merge on thousands of intervals at most once per run. Switch to a
	// shell gap sequence to keep worst cases acceptable.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(set); i++ {
			v := set[i]
			j := i
			for ; j >= gap && (set[j-gap].Start > v.Start || (set[j-gap].Start == v.Start && set[j-gap].End > v.End)); j -= gap {
				set[j] = set[j-gap]
			}
			set[j] = v
		}
	}
}
