// Package frontend models the receive chain between the ether and the
// monitoring host — the USRP role in the paper's setup: analog gain, ADC
// quantization (12-bit on USRP 1), saturation, and the decimation that
// squeezes the stream through the host link. It also adapts traces and
// in-memory streams to a common SampleSource interface consumed by the
// monitoring architectures.
package frontend

import (
	"io"
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
)

// ADCBits is the USRP 1 ADC resolution.
const ADCBits = 12

// Frontend applies receive-chain impairments to a stream.
type Frontend struct {
	// Gain is a linear amplitude gain before the ADC.
	Gain float64
	// Quantize enables ADC quantization to ADCBits.
	Quantize bool
	// FullScale is the ADC full-scale amplitude; samples beyond it clip.
	FullScale float64
	// Decimation keeps every n-th sample (1 = none). The paper's USB
	// bottleneck forces the FPGA to decimate to 8 Msps; our ether already
	// synthesizes at 8 Msps, so this exists for bandwidth experiments.
	Decimation int
}

// Default returns a transparent front end with quantization on and a
// generous full scale.
func Default() Frontend {
	return Frontend{Gain: 1, Quantize: true, FullScale: 64, Decimation: 1}
}

// Process applies the chain to a stream, returning a new slice.
func (f Frontend) Process(in iq.Samples) iq.Samples {
	out := make(iq.Samples, len(in))
	copy(out, in)
	return f.ProcessInPlace(out)
}

// ProcessInPlace applies the chain to the block in place and returns the
// processed prefix (shorter than the input when decimating). This is the
// per-block hot path: the streaming pipeline owns each pooled block
// exclusively while it is filled, so the receive chain can overwrite the
// raw samples without a scratch copy or any allocation.
func (f Frontend) ProcessInPlace(out iq.Samples) iq.Samples {
	gain := f.Gain
	if gain == 0 {
		gain = 1
	}
	if gain != 1 {
		out.Scale(gain)
	}
	if f.Quantize {
		full := f.FullScale
		if full <= 0 {
			full = 64
		}
		levels := float64(int(1) << (ADCBits - 1))
		step := full / levels
		q := func(v float32) float32 {
			x := float64(v)
			if x > full {
				x = full
			} else if x < -full {
				x = -full
			}
			return float32(math.Round(x/step) * step)
		}
		for i, s := range out {
			out[i] = complex(q(real(s)), q(imag(s)))
		}
	}
	if f.Decimation > 1 {
		out = dsp.DecimateInto(out[:0], out, f.Decimation)
	}
	return out
}

// SampleSource delivers a stream block by block, the way the monitoring
// architectures consume input (from the USRP or from a trace file).
type SampleSource interface {
	// ReadBlock fills dst and returns the number of samples delivered;
	// io.EOF (possibly with n > 0) ends the stream.
	ReadBlock(dst iq.Samples) (int, error)
}

// MemorySource serves an in-memory stream.
type MemorySource struct {
	stream iq.Samples
	pos    int
}

// NewMemorySource wraps a stream.
func NewMemorySource(s iq.Samples) *MemorySource { return &MemorySource{stream: s} }

// ReadBlock implements SampleSource.
func (m *MemorySource) ReadBlock(dst iq.Samples) (int, error) {
	if m.pos >= len(m.stream) {
		return 0, io.EOF
	}
	n := copy(dst, m.stream[m.pos:])
	m.pos += n
	if m.pos >= len(m.stream) {
		return n, io.EOF
	}
	return n, nil
}

// Reset rewinds the source for another pass (used when comparing
// architectures over the same trace).
func (m *MemorySource) Reset() { m.pos = 0 }

// StreamSource applies the front-end chain block by block on top of any
// SampleSource, so live pipelines see the same receive-chain impairments
// as batch processing. It composes with internal/faults wrappers on
// either side (inject before the chain for antenna-side faults, after it
// for host-side ones).
type StreamSource struct {
	// Src is the wrapped source.
	Src SampleSource
	// FE is the chain applied to every block. With Decimation > 1 the
	// delivered block is shorter than the read — a short read, never a
	// loss.
	FE Frontend
}

// ReadBlock implements SampleSource. The chain runs in place on dst —
// the caller owns the block exclusively while filling it, so no scratch
// copy is made (zero allocations per block).
func (s *StreamSource) ReadBlock(dst iq.Samples) (int, error) {
	n, err := s.Src.ReadBlock(dst)
	if n > 0 {
		n = len(s.FE.ProcessInPlace(dst[:n]))
	}
	return n, err
}
