package frontend

import (
	"io"
	"math"
	"testing"

	"rfdump/internal/iq"
)

func TestDefaultTransparentish(t *testing.T) {
	f := Default()
	in := iq.Samples{complex(0.5, -0.25), complex(1, 2)}
	out := f.Process(in)
	if len(out) != len(in) {
		t.Fatal("length changed")
	}
	for i := range in {
		d := out[i] - in[i]
		if math.Hypot(float64(real(d)), float64(imag(d))) > 0.05 {
			t.Errorf("sample %d moved: %v -> %v", i, in[i], out[i])
		}
	}
	// Input must not be mutated.
	if in[0] != complex(0.5, -0.25) {
		t.Error("input mutated")
	}
}

func TestQuantization(t *testing.T) {
	f := Frontend{Gain: 1, Quantize: true, FullScale: 1}
	in := iq.Samples{complex(0.12345678, 0)}
	out := f.Process(in)
	step := 1.0 / float64(int(1)<<(ADCBits-1))
	got := float64(real(out[0]))
	// On the quantization grid: distance to the nearest multiple of step
	// is ~0.
	if d := math.Abs(got/step - math.Round(got/step)); d > 1e-6 {
		t.Errorf("value %v not on quantization grid (frac %v)", got, d)
	}
	if math.Abs(got-0.12345678) > step {
		t.Errorf("quantization error too large: %v", got)
	}
}

func TestSaturation(t *testing.T) {
	f := Frontend{Gain: 1, Quantize: true, FullScale: 1}
	in := iq.Samples{complex(50, -50)}
	out := f.Process(in)
	if real(out[0]) > 1.01 || imag(out[0]) < -1.01 {
		t.Errorf("no clipping: %v", out[0])
	}
}

func TestGain(t *testing.T) {
	f := Frontend{Gain: 2, Quantize: false, Decimation: 1}
	out := f.Process(iq.Samples{complex(1, 1)})
	if out[0] != complex(2, 2) {
		t.Errorf("gain: %v", out[0])
	}
}

func TestDecimation(t *testing.T) {
	f := Frontend{Gain: 1, Decimation: 4}
	out := f.Process(make(iq.Samples, 16))
	if len(out) != 4 {
		t.Errorf("decimated length %d", len(out))
	}
}

func TestMemorySource(t *testing.T) {
	src := NewMemorySource(iq.Samples{1, 2, 3, 4, 5})
	buf := make(iq.Samples, 2)
	n, err := src.ReadBlock(buf)
	if n != 2 || err != nil {
		t.Fatalf("first read: %d %v", n, err)
	}
	n, err = src.ReadBlock(buf)
	if n != 2 || err != nil {
		t.Fatalf("second read: %d %v", n, err)
	}
	n, err = src.ReadBlock(buf)
	if n != 1 || err != io.EOF {
		t.Fatalf("final read: %d %v", n, err)
	}
	if _, err = src.ReadBlock(buf); err != io.EOF {
		t.Fatal("read past EOF")
	}
	src.Reset()
	if n, _ := src.ReadBlock(buf); n != 2 {
		t.Error("reset failed")
	}
}

func TestStreamSourceAppliesChainPerBlock(t *testing.T) {
	in := iq.Samples{complex(1, 0), complex(2, 0), complex(3, 0), complex(4, 0)}
	src := &StreamSource{
		Src: NewMemorySource(in),
		FE:  Frontend{Gain: 2, Decimation: 1},
	}
	buf := make(iq.Samples, 2)
	n, err := src.ReadBlock(buf)
	if n != 2 || err != nil {
		t.Fatalf("first read: %d %v", n, err)
	}
	if real(buf[0]) != 2 || real(buf[1]) != 4 {
		t.Errorf("gain not applied per block: %v", buf[:n])
	}
	n, err = src.ReadBlock(buf)
	if n != 2 || err != io.EOF {
		t.Fatalf("final read: %d %v", n, err)
	}
	if real(buf[0]) != 6 || real(buf[1]) != 8 {
		t.Errorf("second block: %v", buf[:n])
	}
}

func TestStreamSourceDecimationShortens(t *testing.T) {
	in := make(iq.Samples, 8)
	for i := range in {
		in[i] = complex(float32(i+1), 0)
	}
	src := &StreamSource{
		Src: NewMemorySource(in),
		FE:  Frontend{Gain: 1, Decimation: 2},
	}
	buf := make(iq.Samples, 8)
	n, err := src.ReadBlock(buf)
	if err != io.EOF {
		t.Fatalf("err %v", err)
	}
	if n != 4 {
		t.Fatalf("decimated block length %d", n)
	}
}
