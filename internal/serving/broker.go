// Package serving is the shared HTTP/SSE serving core behind both
// monitoring tiers: the single-vantage node daemon (rfdumpd) and the
// fleet aggregator (rfdumpc). Both export the identical surface —
// /api/live with ?since= catch-up, /api/history bounds, the paged DVR
// query endpoints, health probes, metrics — and before this package
// existed each reimplemented it. Unifying the handler code is what
// makes broker trees possible: an aggregator subscribes to another
// aggregator exactly as it subscribes to a node, because the surfaces
// cannot drift apart.
//
// The pieces: a sharded SSE Broker (bounded per-subscriber queues,
// drop-and-count, consecutive-drop eviction), a Ledger abstraction
// (any seq-ordered record source that can replay history for the
// ?since= seam), a per-host query Quota, and a Core that registers the
// shared routes over them.
//
// The cardinal rule of the fan-out is that observers never apply
// backpressure to ingest: every subscriber owns a bounded queue, and a
// publisher that finds it full drops the event for that subscriber and
// counts the drop. A stalled dashboard loses events; the 8 Msps sample
// path loses nothing.
package serving

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
)

// Event is one entry of the live feed. Type selects which payload field
// is set: "detection", "packet", "stream-open", "stream-close",
// "stream-resume" (a reconnecting transmitter stitched a new
// connection onto an existing stream); the aggregation tier adds
// "detection-update" (new evidence merged into an already-published
// detection) and seq-less "node-up"/"node-down" connectivity edges.
type Event struct {
	// Seq is the publisher-wide event sequence number; a gap tells a
	// subscriber it was too slow and events were dropped. Connectivity
	// edges carry no seq (0).
	Seq uint64 `json:"seq"`
	// Type is the event kind.
	Type string `json:"type"`
	// Stream is the stream id the event belongs to.
	Stream uint64 `json:"stream"`
	// Epoch is the stream's connection epoch at the event (0 for the
	// first connection; reconnects increment it).
	Epoch uint32 `json:"epoch,omitempty"`
	// Detection is set for "detection" and "detection-update" events.
	Detection *history.DetectionRecord `json:"detection,omitempty"`
	// Packet is set for "packet" events.
	Packet *history.PacketEvent `json:"packet,omitempty"`
	// Error carries the session error on "stream-close" (empty = clean)
	// and the node id on "node-up"/"node-down".
	Error string `json:"error,omitempty"`
}

// Subscriber is one bounded event queue. Read Events until it is
// unsubscribed; Dropped counts events the publisher discarded because
// the queue was full. A subscriber that falls so far behind that it
// drops eviction-threshold events in a row is evicted: unsubscribed by
// the broker, its channel closed.
type Subscriber struct {
	ch      chan Event
	types   map[string]bool // nil = all types
	shard   *brokerShard    // home shard, for O(1) unsubscribe
	dropped atomic.Int64
	lag     atomic.Int64 // consecutive drops; reset on delivery
	evicted atomic.Bool
}

// Events returns the receive side of the queue.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscriber lost to backpressure.
func (s *Subscriber) Dropped() int64 { return s.dropped.Load() }

// Evicted reports whether the broker kicked this subscriber for
// sustained lag (its Events channel is closed).
func (s *Subscriber) Evicted() bool { return s.evicted.Load() }

// wants reports whether the subscriber's type filter admits the event.
func (s *Subscriber) wants(ev Event) bool { return s.wantsType(ev.Type) }

// wantsType is wants by event type (the SSE catch-up replay filters
// synthesized events through the same subscription filter).
func (s *Subscriber) wantsType(t string) bool { return s.types == nil || s.types[t] }

// brokerShard is one shared-nothing slice of the subscriber set: its
// own map under its own lock. Nothing is shared between shards but the
// broker's counters (which are atomic), so subscriber churn on one
// shard never contends with publishes draining another.
type brokerShard struct {
	mu   sync.RWMutex
	subs map[*Subscriber]struct{}
}

// Broker fans events out to subscribers with per-subscriber bounded
// queues. Publish never blocks: a full queue means the event is dropped
// for that subscriber and counted, both per-subscriber and in the
// registry ("server/sse/dropped_events"), where the /api/metricz scrape
// makes slow consumers visible. Drop-and-count alone lets a dead
// consumer hold its queue (and its HTTP connection) forever, so the
// broker also enforces bounded lag: a subscriber that drops evictAfter
// events consecutively is evicted — unsubscribed, channel closed,
// counted in "server/conns_evicted".
//
// The subscriber set is sharded: round-robin assignment into N
// shared-nothing maps, each under its own RWMutex. With one map and one
// lock, every Subscribe/Unsubscribe (write lock) serializes against
// every in-flight Publish (read lock) — at aggregation-tier fan-out
// (tens of thousands of SSE clients connecting and disconnecting
// continuously) that single lock is the ingest path's bottleneck.
// Sharding cuts the contention domain by N: churn on one shard stalls
// only 1/N of a publish, and publishes hold each shard lock only long
// enough to drain that shard's subscribers.
type Broker struct {
	queue      int
	evictAfter int // consecutive drops before eviction; 0 disables

	shards []*brokerShard
	rr     atomic.Uint64 // round-robin shard assignment
	count  atomic.Int64  // live subscribers across all shards

	published  *metrics.Counter
	dropped    *metrics.Counter
	evictCount *metrics.Counter
	gauge      *metrics.Gauge
}

// defaultBrokerShards sizes the shard set to the machine: one shard per
// core, capped — past ~16 shards the per-shard maps are so small that
// more sharding only adds iteration overhead.
func defaultBrokerShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// NewBroker returns a broker handing each subscriber a queue of the
// given length (minimum 1), sharded for this machine's core count.
// evictAfter is the consecutive-drop budget before a subscriber is
// evicted (0 disables eviction). reg may be nil.
func NewBroker(queue, evictAfter int, reg *metrics.Registry) *Broker {
	return NewBrokerSharded(queue, evictAfter, 0, reg)
}

// NewBrokerSharded is NewBroker with an explicit shard count (≤0 takes
// the machine default).
func NewBrokerSharded(queue, evictAfter, shards int, reg *metrics.Registry) *Broker {
	if queue < 1 {
		queue = 1
	}
	if evictAfter < 0 {
		evictAfter = 0
	}
	if shards <= 0 {
		shards = defaultBrokerShards()
	}
	b := &Broker{
		queue:      queue,
		evictAfter: evictAfter,
		shards:     make([]*brokerShard, shards),
		published:  reg.Counter("server/sse/events"),
		dropped:    reg.Counter("server/sse/dropped_events"),
		evictCount: reg.Counter("server/conns_evicted"),
		gauge:      reg.Gauge("server/sse/subscribers"),
	}
	for i := range b.shards {
		b.shards[i] = &brokerShard{subs: make(map[*Subscriber]struct{})}
	}
	return b
}

// Shards returns the shard count (observability; fixed for the
// broker's lifetime).
func (b *Broker) Shards() int { return len(b.shards) }

// Subscribers returns the current live subscriber count.
func (b *Broker) Subscribers() int64 { return b.count.Load() }

// Subscribe registers a new queue. An empty types list subscribes to
// every event type.
func (b *Broker) Subscribe(types ...string) *Subscriber {
	sh := b.shards[b.rr.Add(1)%uint64(len(b.shards))]
	s := &Subscriber{ch: make(chan Event, b.queue), shard: sh}
	if len(types) > 0 {
		s.types = make(map[string]bool, len(types))
		for _, t := range types {
			s.types[t] = true
		}
	}
	sh.mu.Lock()
	sh.subs[s] = struct{}{}
	sh.mu.Unlock()
	b.gauge.Set(b.count.Add(1))
	return s
}

// Unsubscribe removes the queue and closes its channel.
func (b *Broker) Unsubscribe(s *Subscriber) {
	sh := s.shard
	sh.mu.Lock()
	_, ok := sh.subs[s]
	if ok {
		delete(sh.subs, s)
		close(s.ch)
	}
	sh.mu.Unlock()
	if ok {
		b.gauge.Set(b.count.Add(-1))
	}
}

// Publish delivers the event to every subscriber whose queue has room;
// the rest drop-and-count, and a subscriber that exhausts the
// consecutive-drop budget is evicted. It runs on pipeline callback
// goroutines and must never block — evictions are collected under the
// per-shard read locks and applied after them.
func (b *Broker) Publish(ev Event) {
	b.published.Inc()
	var evictees []*Subscriber
	for _, sh := range b.shards {
		sh.mu.RLock()
		for s := range sh.subs {
			if !s.wants(ev) {
				continue
			}
			select {
			case s.ch <- ev:
				s.lag.Store(0)
			default:
				s.dropped.Add(1)
				b.dropped.Inc()
				if b.evictAfter > 0 && s.lag.Add(1) >= int64(b.evictAfter) &&
					s.evicted.CompareAndSwap(false, true) {
					evictees = append(evictees, s)
				}
			}
		}
		sh.mu.RUnlock()
	}
	for _, s := range evictees {
		b.evictCount.Inc()
		b.Unsubscribe(s)
	}
}
