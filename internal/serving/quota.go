package serving

import (
	"net"
	"net/http"
	"sync"
	"time"

	"rfdump/internal/metrics"
)

// Quota rate-limits the history query endpoints with one token bucket
// per client host. History queries can fan out over segment files; an
// unthrottled dashboard polling them would contend with the ingest
// path for disk, so each host gets rps tokens per second with a burst
// ceiling and a 429 (Retry-After: 1) past it. The legacy endpoints the
// integration tooling polls (/api/streams, /api/live, /healthz) are
// exempt — only the store-backed routes pay.
type Quota struct {
	rps   float64
	burst float64
	now   func() time.Time // injected in tests

	mu      sync.Mutex
	buckets map[string]*bucket

	throttled *metrics.Counter
}

type bucket struct {
	tokens float64
	last   time.Time
}

// quotaMaxHosts bounds the bucket map; past it the map is reset (every
// host restarts with a full bucket — cheap, and an abuser is throttled
// again within a burst).
const quotaMaxHosts = 1024

// NewQuota resolves the configured rate (0 = default 20 rps, burst
// 2× the rate; negative disables, returning nil — nil receivers pass
// every request).
func NewQuota(rps float64, burst int, reg *metrics.Registry) *Quota {
	if rps < 0 {
		return nil
	}
	if rps == 0 {
		rps = 20
	}
	if burst <= 0 {
		burst = int(2 * rps)
	}
	return &Quota{
		rps:       rps,
		burst:     float64(burst),
		now:       time.Now,
		buckets:   make(map[string]*bucket),
		throttled: reg.Counter("server/api/throttled"),
	}
}

// allow spends one token for host, refilling by elapsed wall time.
func (q *Quota) allow(host string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[host]
	if b == nil {
		if len(q.buckets) >= quotaMaxHosts {
			q.buckets = make(map[string]*bucket)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[host] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.rps
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens < 1 {
		q.throttled.Inc()
		return false
	}
	b.tokens--
	return true
}

// Limit wraps a handler with the quota; a nil quota passes through.
func (q *Quota) Limit(h http.HandlerFunc) http.HandlerFunc {
	if q == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		host, _, err := net.SplitHostPort(r.RemoteAddr)
		if err != nil {
			host = r.RemoteAddr
		}
		if !q.allow(host) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "history query quota exceeded", http.StatusTooManyRequests)
			return
		}
		h(w, r)
	}
}
