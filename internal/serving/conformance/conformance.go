// Package conformance is the executable contract of the shared serving
// surface: one suite of HTTP-level assertions run verbatim against
// both tiers (rfdumpd's daemon and rfdumpc's aggregator). Anything a
// fleet client — or a parent aggregator in a broker tree — relies on
// being identical between the tiers belongs here; a tier that drifts
// fails its conformance test, not a production deployment.
package conformance

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Options parameterizes the suite for the tier under test.
type Options struct {
	// MinDetections is how many detection records the caller primed the
	// tier with before running the suite (at least 1 required — an empty
	// ledger exercises nothing).
	MinDetections int
	// StreamID is a stream id whose DVR query surface holds the primed
	// detections.
	StreamID uint64
	// Quota, when true, asserts the DVR query endpoints throttle: the
	// caller configured a quota small enough that hammering one endpoint
	// must produce 429 with a Retry-After header.
	Quota bool
}

// event is the slice of the SSE event JSON the suite checks.
type event struct {
	Seq       uint64         `json:"seq"`
	Type      string         `json:"type"`
	Stream    uint64         `json:"stream"`
	Detection map[string]any `json:"detection"`
}

// detectionKeys are the JSON keys every flattened detection record
// carries on every tier — the schema fleet-unaware clients parse.
var detectionKeys = []string{
	"seq", "stream", "t", "family", "detector",
	"abs_start", "abs_end", "confidence",
}

// Run drives the shared-surface assertions against baseURL. The tier
// must be healthy (probes return ok) and primed per opt when called.
func Run(t *testing.T, baseURL string, opt Options) {
	t.Helper()
	if opt.MinDetections < 1 {
		t.Fatal("conformance: prime at least one detection before running the suite")
	}

	t.Run("history", func(t *testing.T) { checkHistory(t, baseURL, opt) })
	t.Run("probes", func(t *testing.T) { checkProbes(t, baseURL) })
	t.Run("metricz", func(t *testing.T) { checkMetricz(t, baseURL) })
	t.Run("streams", func(t *testing.T) { checkStreams(t, baseURL) })
	t.Run("live-replay", func(t *testing.T) { checkLiveReplay(t, baseURL, opt) })
	t.Run("live-bad-since", func(t *testing.T) { checkStatus(t, baseURL+"/api/live?since=banana", http.StatusBadRequest) })
	t.Run("query-pagination", func(t *testing.T) { checkPagination(t, baseURL, opt) })
	t.Run("query-bad-id", func(t *testing.T) {
		checkStatus(t, fmt.Sprintf("%s/api/streams/banana/detections", baseURL), http.StatusBadRequest)
	})
	t.Run("snippet-missing", func(t *testing.T) {
		checkStatus(t, fmt.Sprintf("%s/api/streams/%d/snippets/999999999", baseURL, opt.StreamID), http.StatusNotFound)
	})
	if opt.Quota {
		t.Run("query-quota", func(t *testing.T) { checkQuota(t, baseURL, opt) })
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode
}

func checkStatus(t *testing.T, url string, want int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, want)
	}
}

// checkHistory: /api/history serves a store retention snapshot on both
// tiers — the aggregator's fused WAL answers with the same shape a
// node's store does, which is what the cluster manager's restart probe
// (and therefore broker trees) depends on.
func checkHistory(t *testing.T, baseURL string, opt Options) {
	var hist struct {
		Kind       string  `json:"kind"`
		LastSeq    *uint64 `json:"last_seq"`
		Detections *int    `json:"detections"`
	}
	if code := getJSON(t, baseURL+"/api/history", &hist); code != http.StatusOK {
		t.Fatalf("/api/history status %d", code)
	}
	if hist.Kind == "" {
		t.Fatal("/api/history missing store kind")
	}
	if hist.LastSeq == nil || hist.Detections == nil {
		t.Fatalf("/api/history missing bounds: %+v", hist)
	}
	if int(*hist.LastSeq) < opt.MinDetections || *hist.Detections < opt.MinDetections {
		t.Fatalf("/api/history bounds below primed floor %d: %+v", opt.MinDetections, hist)
	}
}

// checkProbes: both probes answer 200 with a JSON object carrying a
// status field while the tier is healthy.
func checkProbes(t *testing.T, baseURL string) {
	for _, path := range []string{"/healthz", "/readyz"} {
		var body struct {
			Status string `json:"status"`
		}
		if code := getJSON(t, baseURL+path, &body); code != http.StatusOK {
			t.Fatalf("%s status %d on a healthy tier", path, code)
		}
		if body.Status == "" {
			t.Fatalf("%s body missing status field", path)
		}
	}
}

func checkMetricz(t *testing.T, baseURL string) {
	resp, err := http.Get(baseURL + "/api/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/metricz status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		t.Fatal("/api/metricz snapshot empty")
	}
}

// checkStreams: the stream inventory exists on both tiers, under the
// same envelope key.
func checkStreams(t *testing.T, baseURL string) {
	var body struct {
		Streams *[]map[string]any `json:"streams"`
	}
	if code := getJSON(t, baseURL+"/api/streams", &body); code != http.StatusOK {
		t.Fatalf("/api/streams status %d", code)
	}
	if body.Streams == nil {
		t.Fatal("/api/streams missing streams array")
	}
}

// checkLiveReplay: ?since=0 replays the whole retained ledger before
// tailing — sequence numbers strictly ascending, no duplicates, and
// every detection event carrying the flattened record schema.
func checkLiveReplay(t *testing.T, baseURL string, opt Options) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/api/live?since=0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/live status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("/api/live Content-Type %q", ct)
	}

	var last uint64
	detections := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for detections < opt.MinDetections && sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("unparseable event payload %q: %v", line, err)
		}
		if ev.Seq == 0 {
			continue // seq-less connectivity edges ride the feed legitimately
		}
		if ev.Seq <= last {
			t.Fatalf("replay seq %d after %d: not strictly ascending", ev.Seq, last)
		}
		last = ev.Seq
		switch ev.Type {
		case "detection", "detection-update":
			if ev.Detection == nil {
				t.Fatalf("%s event without detection record: %+v", ev.Type, ev)
			}
			for _, key := range detectionKeys {
				if _, ok := ev.Detection[key]; !ok {
					t.Fatalf("detection record missing %q: %v", key, ev.Detection)
				}
			}
			if ev.Type == "detection" {
				detections++
			}
		case "packet":
		default:
			t.Fatalf("unknown replayed event type %q", ev.Type)
		}
	}
	if detections < opt.MinDetections {
		t.Fatalf("replay served %d detections before the stream ended, primed %d (%v)",
			detections, opt.MinDetections, sc.Err())
	}
}

// checkPagination walks the per-stream DVR query with limit=1: every
// page carries the envelope, cursors never repeat a record, and the
// walk terminates with at least the primed detections served.
func checkPagination(t *testing.T, baseURL string, opt Options) {
	var (
		cursor uint64
		total  int
		last   uint64
	)
	for pages := 0; ; pages++ {
		if pages > 10_000 {
			t.Fatal("pagination never terminated")
		}
		var page struct {
			Detections *[]struct {
				Seq uint64 `json:"seq"`
			} `json:"detections"`
			NextCursor *uint64 `json:"next_cursor"`
			More       *bool   `json:"more"`
		}
		url := fmt.Sprintf("%s/api/streams/%d/detections?limit=1&cursor=%d", baseURL, opt.StreamID, cursor)
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		if page.Detections == nil || page.NextCursor == nil || page.More == nil {
			t.Fatalf("page envelope incomplete: %+v", page)
		}
		for _, rec := range *page.Detections {
			if rec.Seq <= last {
				t.Fatalf("pagination re-served seq %d after %d", rec.Seq, last)
			}
			last = rec.Seq
			total++
		}
		if !*page.More {
			break
		}
		if *page.NextCursor <= cursor {
			t.Fatalf("cursor did not advance: %d -> %d", cursor, *page.NextCursor)
		}
		cursor = *page.NextCursor
	}
	if total < opt.MinDetections {
		t.Fatalf("pagination walked %d detections, primed %d", total, opt.MinDetections)
	}

	// The sibling query surfaces exist even on a tier that persists
	// only detections: empty pages, same envelope, never 404.
	for _, sub := range []string{"packets", "tiles"} {
		var page map[string]any
		url := fmt.Sprintf("%s/api/streams/%d/%s", baseURL, opt.StreamID, sub)
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, code)
		}
		for _, key := range []string{sub, "next_cursor", "more"} {
			if _, ok := page[key]; !ok {
				t.Fatalf("%s envelope missing %q: %v", url, key, page)
			}
		}
	}
}

// checkQuota hammers one DVR query endpoint past the configured rate
// and expects throttling with the standard retry hint.
func checkQuota(t *testing.T, baseURL string, opt Options) {
	url := fmt.Sprintf("%s/api/streams/%d/detections?limit=1", baseURL, opt.StreamID)
	for i := 0; i < 200; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			return
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
	}
	t.Fatal("200 rapid queries never throttled despite a tiny quota")
}
