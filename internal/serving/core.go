package serving

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
	"rfdump/internal/trace"
)

// Ledger is a seq-ordered record source: the contract the shared SSE
// catch-up and /api/history handlers need from a tier. The node hub's
// ledger is its history store; the aggregator's is the fused WAL it
// persists through the same store interface. Either way the live feed
// publishes events under store sequence numbers, so "replay records
// with Seq > since, then tail the broker, skipping events the replay
// covered" is one shared code path.
type Ledger interface {
	// LastSeq returns the newest sequence number the ledger assigned —
	// what a subscriber resumes from, and what the cluster manager's
	// restart probe compares its cursor against.
	LastSeq() uint64
	// Replay emits stored records with Seq > since, ascending, filtered
	// through wants (the subscriber's type filter), and returns the
	// newest sequence emitted (since when nothing qualified).
	Replay(since uint64, wants func(string) bool, emit func(Event)) uint64
	// Stats returns the /api/history body (store retention snapshot).
	Stats() any
}

// replayLimit bounds how much stored history one SSE ?since= catch-up
// replays before handing over to the live feed.
const replayLimit = 4096

// StoreLedger adapts a history.Store to the Ledger contract — the one
// implementation both tiers use. Detection records replay as
// "detection" events, or "detection-update" when the record carries
// the Merge flag (the aggregator's WAL marks evidence merged into an
// already-published detection that way); packet records replay as
// "packet" events, merged into the detection stream by sequence.
type StoreLedger struct {
	Store history.Store
}

// LastSeq returns the store's newest sequence.
func (l StoreLedger) LastSeq() uint64 { return l.Store.LastSeq() }

// Stats returns the store's retention snapshot.
func (l StoreLedger) Stats() any { return l.Store.Stats() }

// eventType maps a stored detection record to its feed event type.
func eventType(rec *history.DetectionRecord) string {
	if rec.Merge {
		return "detection-update"
	}
	return "detection"
}

// Replay pages the store for detection and packet records with
// Seq > since and emits them as synthesized feed events, merged in
// sequence order.
func (l StoreLedger) Replay(since uint64, wants func(string) bool, emit func(Event)) uint64 {
	last := since
	var dets []history.DetectionRecord
	var pkts []history.PacketEvent
	if wants("detection") || wants("detection-update") {
		dets = l.queryAllDetections(since)
	}
	if wants("packet") {
		pkts = l.queryAllPackets(since)
	}
	di, pi := 0, 0
	for di < len(dets) || pi < len(pkts) {
		var ev Event
		if pi >= len(pkts) || (di < len(dets) && dets[di].Seq < pkts[pi].Seq) {
			rec := dets[di]
			di++
			typ := eventType(&rec)
			if !wants(typ) {
				continue
			}
			ev = Event{Seq: rec.Seq, Type: typ, Stream: rec.Stream, Epoch: rec.Epoch, Detection: &rec}
		} else {
			pe := pkts[pi]
			pi++
			ev = Event{Seq: pe.Seq, Type: "packet", Stream: pe.Stream, Packet: &pe}
		}
		emit(ev)
		if ev.Seq > last {
			last = ev.Seq
		}
	}
	return last
}

func (l StoreLedger) queryAllDetections(since uint64) []history.DetectionRecord {
	var out []history.DetectionRecord
	cursor := since
	for len(out) < replayLimit {
		recs, next, more, err := l.Store.QueryDetections(history.Query{Cursor: cursor})
		if err != nil {
			break
		}
		out = append(out, recs...)
		cursor = next
		if !more {
			break
		}
	}
	return out
}

func (l StoreLedger) queryAllPackets(since uint64) []history.PacketEvent {
	var out []history.PacketEvent
	cursor := since
	for len(out) < replayLimit {
		recs, next, more, err := l.Store.QueryPackets(history.Query{Cursor: cursor})
		if err != nil {
			break
		}
		out = append(out, recs...)
		cursor = next
		if !more {
			break
		}
	}
	return out
}

// Core is the shared serving surface: the routes both tiers export
// from the same handler code, so a fleet client — or a parent
// aggregator in a broker tree — cannot tell a node from an aggregator.
//
//	GET /api/live         — SSE feed (?types=, ?since= store catch-up)
//	GET /api/history      — ledger/store retention snapshot
//	GET /api/metricz      — metrics registry snapshot
//	GET /healthz          — tier-specific liveness body, 503 on not-ok
//	GET /readyz           — tier-specific readiness body, 503 on not-ok
//
// and the quota'd DVR query surface over Store:
//
//	GET /api/streams/{id}/detections     — ?from=&to=&limit=&cursor=
//	GET /api/streams/{id}/packets        — same pagination
//	GET /api/streams/{id}/tiles          — persisted waterfall columns
//	GET /api/streams/{id}/snippets/{det} — captured IQ burst (404 on a
//	                                       tier that captures none)
type Core struct {
	// Broker carries the live feed; Ledger replays the ?since= catch-up
	// and serves /api/history. Both required.
	Broker *Broker
	Ledger Ledger
	// Store backs the paged DVR query routes. Required; a tier that
	// persists only detections (the aggregator's WAL) serves empty
	// packet/tile pages and 404s snippets from the same handlers.
	Store history.Store
	// Quota rate-limits the DVR query routes per host (nil = unlimited).
	Quota *Quota
	// Registry backs /api/metricz; Refresh, if set, runs before each
	// scrape (pull-style gauges).
	Registry *metrics.Registry
	Refresh  func()
	// FeedComment is the SSE hello comment (": rfdumpd live feed").
	FeedComment string
	// Health and Ready build the tier-specific probe bodies; ok=false
	// serves the body under 503. Both required.
	Health func() (body any, ok bool)
	Ready  func() (body any, ok bool)
}

// Register installs the shared routes on mux. Tier-specific routes
// (/api/streams, /api/detections, /api/nodes, …) are registered by the
// owning tier on the same mux.
func (c *Core) Register(mux *http.ServeMux) {
	mux.HandleFunc("/api/live", c.handleLive)
	mux.HandleFunc("GET /api/history", c.handleHistory)
	mux.Handle("/api/metricz", metrics.Handler(c.Registry, c.Refresh))
	mux.HandleFunc("/healthz", c.probe(c.Health))
	mux.HandleFunc("/readyz", c.probe(c.Ready))
	mux.HandleFunc("GET /api/streams/{id}/detections", c.Quota.Limit(c.handleStreamDetections))
	mux.HandleFunc("GET /api/streams/{id}/packets", c.Quota.Limit(c.handleStreamPackets))
	mux.HandleFunc("GET /api/streams/{id}/tiles", c.Quota.Limit(c.handleStreamTiles))
	mux.HandleFunc("GET /api/streams/{id}/snippets/{det}", c.Quota.Limit(c.handleSnippet))
}

// probe wraps a health builder into the shared 200/503 probe shape.
func (c *Core) probe(build func() (any, bool)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, ok := build()
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	}
}

// handleHistory serves the ledger's retention snapshot (kind, counts,
// bytes, segment count, sequence and time bounds).
func (c *Core) handleHistory(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, c.Ledger.Stats())
}

// handleLive is the SSE feed. Each subscriber gets a bounded queue; a
// client that stops reading loses events (and shows up in the dropped
// counters) instead of slowing ingest. Events are framed as
//
//	event: <type>
//	data: <Event JSON>
//
// ?since=<seq> replays stored history strictly after that sequence
// number before switching to the live tail — a client that reconnects
// with the last seq it saw misses nothing the store retained. The
// subscription opens before the replay, and live events at or below
// the replay horizon are skipped, so the seam is duplicate-free.
// Seq-less events (node-up/node-down connectivity edges) are never
// part of stored history and always pass the seam filter.
func (c *Core) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var types []string
	if t := r.URL.Query().Get("types"); t != "" {
		types = strings.Split(t, ",")
	}
	since, err := QueryUint(r, "since")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sub := c.Broker.Subscribe(types...)
	defer c.Broker.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprintf(w, "%s\n\n", c.FeedComment)

	var replayed uint64
	if r.URL.Query().Has("since") {
		replayed = c.Ledger.Replay(since, sub.wantsType, func(ev Event) {
			if data, err := json.Marshal(ev); err == nil {
				fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			}
		})
	}
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			if ev.Seq != 0 && ev.Seq <= replayed {
				continue // already served by the catch-up replay
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			fl.Flush()
		}
	}
}

func (c *Core) handleStreamDetections(w http.ResponseWriter, r *http.Request) {
	id, err := PathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := ParseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := c.Store.QueryDetections(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WritePage(w, "detections", recs, next, more)
}

func (c *Core) handleStreamPackets(w http.ResponseWriter, r *http.Request) {
	id, err := PathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := ParseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := c.Store.QueryPackets(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WritePage(w, "packets", recs, next, more)
}

func (c *Core) handleStreamTiles(w http.ResponseWriter, r *http.Request) {
	id, err := PathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q, err := ParseHistoryQuery(r, id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, next, more, err := c.Store.QueryTiles(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WritePage(w, "tiles", recs, next, more)
}

// handleSnippet serves the captured IQ burst behind one detection:
// JSON (SnippetJSON, base64 IQ) by default, or ?format=trace for RFDT
// bytes — a file rfdump -r reads directly, closing the DVR loop.
func (c *Core) handleSnippet(w http.ResponseWriter, r *http.Request) {
	id, err := PathID(r, "id")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	det, err := PathID(r, "det")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snip, err := c.Store.Snippet(id, det)
	if errors.Is(err, history.ErrNotFound) {
		http.Error(w, "no snippet for that detection (not captured, or evicted)", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if r.URL.Query().Get("format") == "trace" {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf(`attachment; filename="snippet-%d-%d.rfd"`, id, det))
		_ = trace.Write(w, snip.Rate, snip.IQ)
		return
	}
	WriteJSON(w, snip.JSON())
}

// WriteJSON serves v with the standard headers.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// QueryUint parses an optional numeric query parameter (0 when absent).
func QueryUint(r *http.Request, key string) (uint64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

// QueryFloat parses an optional float query parameter (0 when absent).
func QueryFloat(r *http.Request, key string) (float64, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", key, err)
	}
	return v, nil
}

// PathID parses a numeric path wildcard.
func PathID(r *http.Request, name string) (uint64, error) {
	v, err := strconv.ParseUint(r.PathValue(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// ParseHistoryQuery reads the shared pagination parameters:
// ?from=/to= (seconds, half-open [from, to)), ?limit= (page size),
// ?cursor= (resume strictly after this sequence number).
func ParseHistoryQuery(r *http.Request, stream uint64) (history.Query, error) {
	q := history.Query{Stream: stream}
	var err error
	if q.From, err = QueryFloat(r, "from"); err != nil {
		return q, err
	}
	if q.To, err = QueryFloat(r, "to"); err != nil {
		return q, err
	}
	limit, err := QueryUint(r, "limit")
	if err != nil {
		return q, err
	}
	q.Limit = int(limit)
	if q.Cursor, err = QueryUint(r, "cursor"); err != nil {
		return q, err
	}
	return q, nil
}

// WritePage writes the JSON envelope of every paginated history query:
// pass next_cursor back as ?cursor= while more is true and no record is
// ever served twice, even across retention eviction.
func WritePage(w http.ResponseWriter, field string, recs any, next uint64, more bool) {
	WriteJSON(w, map[string]any{field: recs, "next_cursor": next, "more": more})
}
