package serving

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rfdump/internal/history"
	"rfdump/internal/metrics"
)

// TestBrokerFanout10k is the aggregation-tier scaling gate: 10k+
// concurrent SSE subscribers must not unbound the ingest path. Half the
// subscribers drain continuously; half never read, so every publish
// exercises both the delivery and the drop-and-count branch. The test
// asserts (1) publish latency stays bounded at p99 — the ingest-side
// callback must not stall behind fan-out — and (2) drop accounting is
// exact: each stalled subscriber keeps its queue-full events and drops
// the rest, and the registry total equals the per-subscriber sum.
func TestBrokerFanout10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-subscriber load test skipped in -short")
	}
	const (
		nSubs   = 10_000
		queue   = 8
		publish = 100
	)
	reg := metrics.NewRegistry()
	b := NewBroker(queue, 0, reg) // eviction off: exact drop ledger
	if b.Shards() < 1 {
		t.Fatalf("broker has %d shards", b.Shards())
	}

	// Stalled half: subscribe and never read. Deterministic ledger:
	// exactly `queue` events buffered, publish-queue drops each.
	stalled := make([]*Subscriber, 0, nSubs/2)
	for i := 0; i < nSubs/2; i++ {
		stalled = append(stalled, b.Subscribe())
	}
	// Draining half: a pool of readers consuming as fast as they can.
	var wg sync.WaitGroup
	var drainTotal int64
	drained := make([]int64, nSubs/2)
	for i := 0; i < nSubs/2; i++ {
		s := b.Subscribe()
		wg.Add(1)
		go func(i int, s *Subscriber) {
			defer wg.Done()
			for range s.Events() {
				drained[i]++
			}
		}(i, s)
	}
	if got := b.Subscribers(); got != nSubs {
		t.Fatalf("Subscribers() = %d, want %d", got, nSubs)
	}

	// While publishing, keep subscriber churn running on the side: the
	// sharded maps must absorb Subscribe/Unsubscribe without stalling
	// the publish path behind a global write lock.
	churnStop := make(chan struct{})
	var churnWG sync.WaitGroup
	for w := 0; w < 4; w++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for {
				select {
				case <-churnStop:
					return
				default:
				}
				s := b.Subscribe("packet") // filtered out: no ledger impact
				b.Unsubscribe(s)
			}
		}()
	}

	lat := make([]time.Duration, publish)
	ev := Event{Type: "detection", Detection: &history.DetectionRecord{Family: "wifi"}}
	for i := 0; i < publish; i++ {
		ev.Seq = uint64(i + 1)
		start := time.Now()
		b.Publish(ev)
		lat[i] = time.Since(start)
	}
	close(churnStop)
	churnWG.Wait()

	// Exact ledger on the stalled half: queue events retained, the rest
	// dropped, per subscriber and in aggregate.
	wantDrop := int64(publish - queue)
	var totalDropped int64
	for i, s := range stalled {
		if got := s.Dropped(); got != wantDrop {
			t.Fatalf("stalled sub %d: Dropped() = %d, want %d", i, got, wantDrop)
		}
		if got := len(s.ch); got != queue {
			t.Fatalf("stalled sub %d: %d queued, want %d", i, got, queue)
		}
		totalDropped += s.Dropped()
		b.Unsubscribe(s)
	}
	// Draining half: readers may also drop under burst, but every event
	// is accounted for exactly once — delivered or dropped. Close their
	// channels so the readers exit, then sum the ledgers.
	var drainDropped int64
	subsSnapshot := make([]*Subscriber, 0, nSubs/2)
	for _, sh := range b.shards {
		sh.mu.RLock()
		for s := range sh.subs {
			subsSnapshot = append(subsSnapshot, s)
		}
		sh.mu.RUnlock()
	}
	for _, s := range subsSnapshot {
		b.Unsubscribe(s)
	}
	wg.Wait()
	for i := range drained {
		drainTotal += drained[i]
	}
	for _, s := range subsSnapshot {
		drainDropped += s.Dropped()
	}
	if got, want := drainTotal+drainDropped, int64(nSubs/2*publish); got != want {
		t.Fatalf("draining half accounting: delivered %d + dropped %d = %d, want %d",
			drainTotal, drainDropped, got, want)
	}
	regDropped := reg.Counter("server/sse/dropped_events").Load()
	if got, want := regDropped, totalDropped+drainDropped; got != want {
		t.Fatalf("registry dropped_events = %d, want per-subscriber sum %d", got, want)
	}
	if got := reg.Counter("server/sse/events").Load(); got != publish {
		t.Fatalf("registry sse/events = %d, want %d", got, publish)
	}
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() = %d after teardown, want 0", got)
	}

	// Bounded ingest-path latency: p99 of a 10k-wide fan-out publish.
	// The bound is deliberately loose (CI machines vary wildly) — it
	// exists to catch a publish path that blocks on a subscriber or a
	// churn lock, which shows up as seconds, not milliseconds.
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[publish/2], lat[publish*99/100-1]
	t.Logf("fanout %d subs × %d events on %d shards (%d cores): publish p50=%v p99=%v",
		nSubs, publish, b.Shards(), runtime.GOMAXPROCS(0), p50, p99)
	if limit := 250 * time.Millisecond; p99 > limit {
		t.Fatalf("publish p99 = %v exceeds %v: ingest path is not bounded", p99, limit)
	}
}

// TestBrokerFanout100k is the broker-tree scaling gate, an order of
// magnitude past the 10k exact-ledger test: a root aggregator serving
// 100k SSE subscribers (dashboards across a campus fleet) must still
// publish in bounded time. Most subscribers are stalled — the worst
// case for the publish loop, which walks every queue and takes the
// drop branch — with a small draining minority keeping the delivery
// branch hot. The assertion is purely about the ingest path: p99
// publish latency stays bounded, i.e. fan-out width degrades throughput
// linearly, never availability.
func TestBrokerFanout100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-subscriber load test skipped in -short")
	}
	const (
		nSubs   = 100_000
		nDrain  = 1_000
		queue   = 4
		publish = 50
	)
	reg := metrics.NewRegistry()
	b := NewBroker(queue, 0, reg)

	for i := 0; i < nSubs-nDrain; i++ {
		b.Subscribe()
	}
	var wg sync.WaitGroup
	for i := 0; i < nDrain; i++ {
		s := b.Subscribe()
		wg.Add(1)
		go func(s *Subscriber) {
			defer wg.Done()
			for range s.Events() {
			}
		}(s)
	}
	if got := b.Subscribers(); got != nSubs {
		t.Fatalf("Subscribers() = %d, want %d", got, nSubs)
	}

	lat := make([]time.Duration, publish)
	ev := Event{Type: "detection", Detection: &history.DetectionRecord{Family: "wifi"}}
	for i := 0; i < publish; i++ {
		ev.Seq = uint64(i + 1)
		start := time.Now()
		b.Publish(ev)
		lat[i] = time.Since(start)
	}

	// Tear down: unsubscribe everything so the drain readers exit.
	subsSnapshot := make([]*Subscriber, 0, nSubs)
	for _, sh := range b.shards {
		sh.mu.RLock()
		for s := range sh.subs {
			subsSnapshot = append(subsSnapshot, s)
		}
		sh.mu.RUnlock()
	}
	for _, s := range subsSnapshot {
		b.Unsubscribe(s)
	}
	wg.Wait()
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() = %d after teardown, want 0", got)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50, p99 := lat[publish/2], lat[publish*99/100-1]
	t.Logf("fanout %d subs × %d events on %d shards (%d cores): publish p50=%v p99=%v",
		nSubs, publish, b.Shards(), runtime.GOMAXPROCS(0), p50, p99)
	// 100k stalled queues are pure drop-branch work; generous bound for
	// CI, but a publish path that blocks shows up as seconds.
	if limit := 2 * time.Second; p99 > limit {
		t.Fatalf("publish p99 = %v exceeds %v: ingest path is not bounded", p99, limit)
	}
}

// TestBrokerShardDistribution pins the round-robin shard assignment:
// subscribers spread evenly, so no shard becomes the old global lock in
// disguise.
func TestBrokerShardDistribution(t *testing.T) {
	b := NewBrokerSharded(1, 0, 8, nil)
	const n = 800
	for i := 0; i < n; i++ {
		b.Subscribe()
	}
	for i, sh := range b.shards {
		sh.mu.RLock()
		got := len(sh.subs)
		sh.mu.RUnlock()
		if got != n/8 {
			t.Fatalf("shard %d holds %d subscribers, want %d", i, got, n/8)
		}
	}
}

// TestBrokerShardedEviction re-checks the consecutive-drop eviction
// contract on a multi-shard broker: eviction must use the subscriber's
// home shard, not whichever shard the publisher is iterating.
func TestBrokerShardedEviction(t *testing.T) {
	b := NewBrokerSharded(1, 3, 4, nil)
	subs := make([]*Subscriber, 16)
	for i := range subs {
		subs[i] = b.Subscribe()
	}
	for i := 0; i < 4; i++ {
		b.Publish(Event{Seq: uint64(i + 1), Type: "detection"})
	}
	// Queue length 1: first publish delivered, next three dropped →
	// every subscriber crosses the 3-consecutive-drop budget.
	for i, s := range subs {
		if !s.Evicted() {
			t.Fatalf("sub %d not evicted after 3 consecutive drops", i)
		}
		if _, ok := <-s.ch; ok {
			// first buffered event
		} else {
			t.Fatalf("sub %d: channel closed before buffered event read", i)
		}
		if _, ok := <-s.ch; ok {
			t.Fatalf("sub %d: unexpected second event", i)
		}
	}
	if got := b.Subscribers(); got != 0 {
		t.Fatalf("Subscribers() = %d after eviction, want 0", got)
	}
}
