package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with real taps, applied to
// complex streams. The zero value is unusable; construct with one of the
// designers below or NewFIR.
type FIR struct {
	taps []float64
	// delay line for streaming use
	state []complex128
	pos   int
}

// NewFIR returns a filter with the given taps.
func NewFIR(taps []float64) *FIR {
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, state: make([]complex128, len(taps))}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []float64 {
	out := make([]float64, len(f.taps))
	copy(out, f.taps)
	return out
}

// Reset clears the streaming delay line.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
	f.pos = 0
}

// Process filters in into out (same length), maintaining state across
// calls so that a stream can be filtered block by block. in and out may
// alias.
func (f *FIR) Process(in, out []complex64) {
	if len(in) != len(out) {
		panic("dsp: FIR.Process length mismatch")
	}
	n := len(f.taps)
	for i, v := range in {
		f.state[f.pos] = complex128(v)
		var acc complex128
		idx := f.pos
		for k := 0; k < n; k++ {
			acc += f.state[idx] * complex(f.taps[k], 0)
			idx--
			if idx < 0 {
				idx = n - 1
			}
		}
		out[i] = complex64(acc)
		f.pos++
		if f.pos == n {
			f.pos = 0
		}
	}
}

// Apply filters a whole block with zero initial state and returns a new
// slice (convolution truncated to len(in), matching streaming semantics).
func (f *FIR) Apply(in []complex64) []complex64 {
	out := make([]complex64, len(in))
	g := NewFIR(f.taps)
	g.Process(in, out)
	return out
}

// ApplyInto is Apply reusing caller storage: it filters in into dst
// (grown only if cap(dst) < len(in)) with zero initial state, resetting
// and reusing the receiver's own delay line instead of building a
// throwaway filter. It returns the filtered slice, which aliases dst's
// backing array; dst and in may alias (the delay line decouples reads
// from writes). The hot-path variant for per-block pipelines that call
// the filter once per chunk.
func (f *FIR) ApplyInto(dst, in []complex64) []complex64 {
	if cap(dst) < len(in) {
		dst = make([]complex64, len(in))
	}
	dst = dst[:len(in)]
	f.Reset()
	f.Process(in, dst)
	return dst
}

// ApplyReal filters a real-valued block with zero initial state.
func (f *FIR) ApplyReal(in []float64) []float64 {
	out := make([]float64, len(in))
	n := len(f.taps)
	for i := range in {
		var acc float64
		for k := 0; k < n; k++ {
			j := i - k
			if j < 0 {
				break
			}
			acc += in[j] * f.taps[k]
		}
		out[i] = acc
	}
	return out
}

// LowPass designs a windowed-sinc (Hamming) low-pass FIR with the given
// normalized cutoff (cutoffHz relative to sampleRate) and tap count
// (forced odd so the filter has integer group delay).
func LowPass(cutoffHz, sampleRate float64, taps int) *FIR {
	if taps < 3 {
		taps = 3
	}
	if taps%2 == 0 {
		taps++
	}
	fc := cutoffHz / sampleRate
	if fc <= 0 || fc >= 0.5 {
		panic(fmt.Sprintf("dsp: LowPass cutoff %v out of (0, rate/2)", cutoffHz))
	}
	h := make([]float64, taps)
	mid := float64(taps-1) / 2
	var sum float64
	for i := range h {
		x := float64(i) - mid
		var s float64
		if x == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*x) / (math.Pi * x)
		}
		// Hamming window.
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = s * w
		sum += h[i]
	}
	// Normalize to unity DC gain.
	for i := range h {
		h[i] /= sum
	}
	return NewFIR(h)
}

// GaussianTaps returns the taps of a Gaussian pulse-shaping filter with
// bandwidth-time product bt, sps samples per symbol, spanning span symbol
// periods. This is the classic GFSK shaping filter (Bluetooth uses
// BT = 0.5, h = 0.32).
func GaussianTaps(bt float64, sps, span int) []float64 {
	if sps < 1 {
		sps = 1
	}
	if span < 1 {
		span = 1
	}
	n := sps*span + 1
	taps := make([]float64, n)
	// Standard Gaussian filter: h(t) = sqrt(2*pi/ln2) * B * exp(-2*pi^2*B^2*t^2/ln2)
	// with t in symbol periods and B = bt.
	alpha := 2 * math.Pi * math.Pi * bt * bt / math.Ln2
	mid := float64(n-1) / 2
	var sum float64
	for i := range taps {
		t := (float64(i) - mid) / float64(sps)
		taps[i] = math.Exp(-alpha * t * t)
		sum += taps[i]
	}
	for i := range taps {
		taps[i] /= sum
	}
	return taps
}

// MovingAverage computes a streaming moving average over a fixed window of
// real values. It is the energy-averaging primitive used by the peak
// detector ("running average of energy over a window of consecutive
// samples", paper Section 3.2).
type MovingAverage struct {
	window []float64
	pos    int
	filled int
	sum    float64
}

// NewMovingAverage returns an averager over the given window size
// (minimum 1).
func NewMovingAverage(size int) *MovingAverage {
	if size < 1 {
		size = 1
	}
	return &MovingAverage{window: make([]float64, size)}
}

// Push adds a value and returns the current average over the values seen
// so far (up to the window size).
func (m *MovingAverage) Push(v float64) float64 {
	m.sum -= m.window[m.pos]
	m.window[m.pos] = v
	m.sum += v
	m.pos++
	if m.pos == len(m.window) {
		m.pos = 0
	}
	if m.filled < len(m.window) {
		m.filled++
	}
	return m.sum / float64(m.filled)
}

// Mean returns the current average without pushing.
func (m *MovingAverage) Mean() float64 {
	if m.filled == 0 {
		return 0
	}
	return m.sum / float64(m.filled)
}

// Full reports whether the window has been completely filled.
func (m *MovingAverage) Full() bool { return m.filled == len(m.window) }

// Reset clears the averager.
func (m *MovingAverage) Reset() {
	for i := range m.window {
		m.window[i] = 0
	}
	m.pos, m.filled, m.sum = 0, 0, 0
}

// Decimate keeps every factor-th sample of in (starting at index 0),
// returning a new slice. Used by the ether front end to model the USRP
// FPGA decimating the ADC stream down to what USB can carry.
func Decimate(in []complex64, factor int) []complex64 {
	return DecimateInto(nil, in, factor)
}

// DecimateInto is Decimate reusing caller storage: the kept samples are
// written into dst's backing array (grown only when too small) and the
// result slice is returned. dst may alias in — including the in-place
// idiom DecimateInto(in[:0], in, factor) — because the write index never
// overtakes the read index. This is the per-block hot-path variant: a
// front end decimating every chunk reuses one buffer forever.
func DecimateInto(dst, in []complex64, factor int) []complex64 {
	if factor <= 1 {
		if cap(dst) < len(in) {
			dst = make([]complex64, len(in))
		}
		dst = dst[:len(in)]
		copy(dst, in)
		return dst
	}
	n := (len(in) + factor - 1) / factor
	if cap(dst) < n {
		dst = make([]complex64, n)
	}
	dst = dst[:n]
	for i, j := 0, 0; i < len(in); i, j = i+factor, j+1 {
		dst[j] = in[i]
	}
	return dst
}
