package dsp

import "math"

// Goertzel computes the power of a single DFT bin of block — the cheap
// way to ask "is there energy at this exact frequency?" without a full
// FFT. freqHz is relative to the sample rate. Used by detectors that
// probe one known channel (e.g. confirming a Bluetooth hop) where an
// 8-bin FFT would be wasteful.
func Goertzel(block []complex64, freqHz, sampleRate float64) float64 {
	n := len(block)
	if n == 0 {
		return 0
	}
	// Complex Goertzel: y += x[i] * e^{-j w i} accumulated recursively.
	w := 2 * math.Pi * freqHz / sampleRate
	cosw, sinw := math.Cos(w), math.Sin(w)
	// Rotate a running conjugate phasor instead of calling sincos per
	// sample.
	pr, pi := 1.0, 0.0 // e^{-j w i}, starting at i=0
	var accR, accI float64
	for _, s := range block {
		sr, si := float64(real(s)), float64(imag(s))
		accR += sr*pr - si*pi
		accI += sr*pi + si*pr
		// p *= e^{-jw}
		npr := pr*cosw + pi*sinw
		npi := pi*cosw - pr*sinw
		pr, pi = npr, npi
	}
	return (accR*accR + accI*accI) / float64(n)
}

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// HammingWindow returns the n-point Hamming window.
func HammingWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
	}
	return w
}

// ApplyWindow multiplies block by the window in place and returns it
// (lengths must match; the shorter bounds the operation).
func ApplyWindow(block []complex64, window []float64) []complex64 {
	n := len(block)
	if len(window) < n {
		n = len(window)
	}
	for i := 0; i < n; i++ {
		w := float32(window[i])
		block[i] = complex(real(block[i])*w, imag(block[i])*w)
	}
	return block
}
