package dsp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// The fuzz targets feed the FFT kernels hostile inputs — odd and zero
// lengths, NaN/Inf sample values, arbitrary bit patterns — and require
// two things: no panic and no length-contract violation ever, and exact
// agreement with the direct kernels whenever the input is finite.

// fuzzSamples reinterprets raw fuzz bytes as complex64 samples (8 bytes
// each, little-endian float32 bits), so the fuzzer can synthesize NaN,
// Inf and denormal payloads directly. Capped to keep the O(n·ntaps)
// direct reference cheap.
func fuzzSamples(data []byte, max int) []complex64 {
	n := len(data) / 8
	if n > max {
		n = max
	}
	out := make([]complex64, n)
	for i := range out {
		re := math.Float32frombits(binary.LittleEndian.Uint32(data[8*i:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(data[8*i+4:]))
		out[i] = complex(re, im)
	}
	return out
}

func allFinite(in []complex64) bool {
	for _, v := range in {
		re, im := float64(real(v)), float64(imag(v))
		if math.IsNaN(re) || math.IsInf(re, 0) || math.IsNaN(im) || math.IsInf(im, 0) {
			return false
		}
	}
	return true
}

// fuzzBytes encodes float32 pairs for seed corpus entries.
func fuzzBytes(vals ...float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func FuzzFFTConvolver(f *testing.F) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	f.Add(uint8(5), uint8(0), []byte{})                                 // zero-length input
	f.Add(uint8(0), uint8(1), fuzzBytes(1, 2))                          // single sample, single tap
	f.Add(uint8(12), uint8(2), fuzzBytes(1, 0, 2, 0, 3, 0, 4, 0, 5, 0)) // odd length 5
	f.Add(uint8(7), uint8(3), fuzzBytes(nan, 1, inf, -1, 0, nan))       // NaN/Inf payload
	f.Add(uint8(31), uint8(0), []byte{1, 2, 3})                         // trailing partial sample
	f.Fuzz(func(t *testing.T, ntapsSel, blockSel uint8, data []byte) {
		ntaps := 1 + int(ntapsSel)%33
		rng := rand.New(rand.NewSource(int64(ntapsSel)))
		taps := randTaps(rng, ntaps)
		blockLen := 0 // auto-size
		if s := int(blockSel) % 4; s != 0 {
			blockLen = NextPow2(ntaps) << uint(s-1)
		}
		in := fuzzSamples(data, 1024)

		conv := NewFFTConvolver(taps, blockLen)
		out := conv.Apply(nil, in)
		if len(out) != len(in) {
			t.Fatalf("Apply: %d outputs for %d inputs", len(out), len(in))
		}
		if allFinite(in) {
			want := NewFIR(taps).ApplyInto(nil, in)
			tol := tapsTol(taps) * (1 + maxMag(in))
			for i := range out {
				if e := cdiff(out[i], want[i]); e > tol {
					t.Fatalf("ntaps=%d block=%d n=%d idx=%d: got %v want %v (err %g > %g)",
						ntaps, conv.BlockLen(), len(in), i, out[i], want[i], e, tol)
				}
			}
		}

		// The real-axis path must hold up under the same inputs.
		re := make([]float32, len(in))
		for i, v := range in {
			re[i] = real(v)
		}
		if got := conv.ApplyReal(nil, re); len(got) != len(re) {
			t.Fatalf("ApplyReal: %d outputs for %d inputs", len(got), len(re))
		}
	})
}

func maxMag(in []complex64) float64 {
	m := 0.0
	for _, v := range in {
		if h := math.Hypot(float64(real(v)), float64(imag(v))); h > m {
			m = h
		}
	}
	return m
}

func FuzzChannelizer(f *testing.F) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	f.Add(uint8(0), []byte{})                                            // zero-length input
	f.Add(uint8(1), fuzzBytes(1, 1))                                     // single sample
	f.Add(uint8(4), fuzzBytes(1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0)) // odd length 7
	f.Add(uint8(9), fuzzBytes(nan, inf, -1, nan, inf, 0))                // NaN/Inf payload
	f.Add(uint8(23), []byte{7})                                          // sub-sample garbage
	f.Fuzz(func(t *testing.T, cfgSel uint8, data []byte) {
		decim := []int{1, 2, 4}[int(cfgSel)%3]
		channels := 1 + int(cfgSel/3)%8
		in := fuzzSamples(data, 4096)

		cz, err := NewChannelizer(ChannelizerConfig{
			Taps:     LowPass(700_000, 8e6, 21).Taps(),
			Channels: channels, SpacingHz: 1e6, RateHz: 8e6,
			BlockLen: 512, Decim: decim,
		})
		if err != nil {
			t.Fatalf("C=%d D=%d rejected: %v", channels, decim, err)
		}

		// Per-channel extraction: correct output length for any input
		// length, no panics on hostile samples.
		perCh := make([][]complex64, channels)
		for ch := 0; ch < channels; ch++ {
			perCh[ch] = cz.Extract(nil, in, ch)
			if len(perCh[ch]) != cz.OutLen(len(in)) {
				t.Fatalf("C=%d D=%d n=%d ch=%d: Extract len %d, OutLen %d",
					channels, decim, len(in), ch, len(perCh[ch]), cz.OutLen(len(in)))
			}
		}

		// Shared-forward path must agree with per-channel extraction
		// (bitwise comparison is only meaningful on finite inputs — NaN
		// compares unequal to itself).
		finite := allFinite(in)
		visited := 0
		cz.ExtractAll(in, func(ch int, out []complex64) {
			visited++
			if len(out) != cz.OutLen(len(in)) {
				t.Fatalf("ExtractAll ch=%d: len %d, OutLen %d", ch, len(out), cz.OutLen(len(in)))
			}
			if !finite {
				return
			}
			for i := range out {
				if e := cdiff(out[i], perCh[ch][i]); e > 1e-4 {
					t.Fatalf("C=%d D=%d n=%d ch=%d idx=%d: ExtractAll %v vs Extract %v",
						channels, decim, len(in), ch, i, out[i], perCh[ch][i])
				}
			}
		})
		if visited != channels {
			t.Fatalf("ExtractAll visited %d of %d channels", visited, channels)
		}
	})
}
