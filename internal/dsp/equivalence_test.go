package dsp

import (
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// The property suite proves the FFT kernels are drop-in equivalents of
// the direct per-sample kernels the demodulators originally ran on:
// same lengths, same edge behavior, agreement within float32 tolerance.
// Each run draws a fresh seed (logged, so a failing draw is replayable
// with DSP_PROP_SEED=<n>) and sweeps randomized tap sets, block sizes
// and input lengths — including the awkward ones: empty, single-sample,
// non-power-of-two, and short-tail lengths that end mid-hop.

// propSeed returns this run's randomization seed.
func propSeed(t *testing.T) int64 {
	if s := os.Getenv("DSP_PROP_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad DSP_PROP_SEED %q: %v", s, err)
		}
		t.Logf("property seed %d (pinned by DSP_PROP_SEED)", v)
		return v
	}
	v := time.Now().UnixNano()
	t.Logf("property seed %d (replay with DSP_PROP_SEED=%d)", v, v)
	return v
}

func randSamples(rng *rand.Rand, n int) []complex64 {
	out := make([]complex64, n)
	for i := range out {
		out[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return out
}

func randTaps(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

// propLengths mixes the structurally interesting lengths for a convolver
// hopping by step with random fillers: hop-boundary straddles, a bare
// single sample, empty input, and non-power-of-two tails.
func propLengths(rng *rand.Rand, step int) []int {
	ls := []int{0, 1, 2, 3, step - 1, step, step + 1, 2*step + 3}
	for i := 0; i < 4; i++ {
		ls = append(ls, 1+rng.Intn(4096))
	}
	out := ls[:0]
	for _, n := range ls {
		if n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

func cdiff(a, b complex64) float64 {
	return math.Hypot(float64(real(a)-real(b)), float64(imag(a)-imag(b)))
}

// tapsTol returns the comparison tolerance for a tap set: float32 FFT
// round-trip error scales with the filter's L1 norm times the signal
// amplitude (unit-variance noise here).
func tapsTol(taps []float64) float64 {
	l1 := 0.0
	for _, v := range taps {
		l1 += math.Abs(v)
	}
	return 1e-4 * (1 + l1)
}

// TestPropFFTConvolverMatchesFIR: overlap-save convolution with real
// taps must match the direct FIR (zero state, truncated to the input
// length) for every tap count, block length and input length.
func TestPropFFTConvolverMatchesFIR(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for trial := 0; trial < 25; trial++ {
		ntaps := 1 + rng.Intn(40)
		taps := randTaps(rng, ntaps)
		blockLen := 0
		if rng.Intn(2) == 1 {
			blockLen = NextPow2(ntaps) << uint(rng.Intn(3))
		}
		conv := NewFFTConvolver(taps, blockLen)
		fir := NewFIR(taps)
		tol := tapsTol(taps)
		for _, n := range propLengths(rng, conv.step) {
			in := randSamples(rng, n)
			got := conv.Apply(nil, in)
			want := fir.ApplyInto(nil, in)
			if len(got) != len(want) {
				t.Fatalf("trial %d ntaps=%d block=%d n=%d: len %d want %d",
					trial, ntaps, conv.BlockLen(), n, len(got), len(want))
			}
			for i := range got {
				if e := cdiff(got[i], want[i]); e > tol {
					t.Fatalf("trial %d ntaps=%d block=%d n=%d idx=%d: got %v want %v (err %g > %g)",
						trial, ntaps, conv.BlockLen(), n, i, got[i], want[i], e, tol)
				}
			}
		}
	}
}

// TestPropComplexFFTConvolverMatchesDirect: complex-tap convolution
// (matched filters) against a float64 direct convolution.
func TestPropComplexFFTConvolverMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for trial := 0; trial < 15; trial++ {
		ntaps := 1 + rng.Intn(32)
		taps := randSamples(rng, ntaps)
		conv := NewComplexFFTConvolver(taps, 0)
		tol := 0.0
		for _, v := range taps {
			tol += math.Hypot(float64(real(v)), float64(imag(v)))
		}
		tol = 1e-4 * (1 + tol)
		for _, n := range propLengths(rng, conv.step) {
			in := randSamples(rng, n)
			got := conv.Apply(nil, in)
			if len(got) != n {
				t.Fatalf("trial %d n=%d: output len %d", trial, n, len(got))
			}
			for i := 0; i < n; i++ {
				var accR, accI float64
				for k := 0; k < ntaps && k <= i; k++ {
					sr, si := float64(real(in[i-k])), float64(imag(in[i-k]))
					tr, ti := float64(real(taps[k])), float64(imag(taps[k]))
					accR += sr*tr - si*ti
					accI += sr*ti + si*tr
				}
				want := complex64(complex(accR, accI))
				if e := cdiff(got[i], want); e > tol {
					t.Fatalf("trial %d n=%d idx=%d: got %v want %v (err %g)", trial, n, i, got[i], want, e)
				}
			}
		}
	}
}

// TestPropApplyRealMatchesDirect: the float32 real-axis path used by the
// 802.11b signature correlator.
func TestPropApplyRealMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for trial := 0; trial < 15; trial++ {
		ntaps := 1 + rng.Intn(24)
		taps := randTaps(rng, ntaps)
		conv := NewFFTConvolver(taps, 0)
		tol := tapsTol(taps)
		for _, n := range propLengths(rng, conv.step) {
			in := make([]float32, n)
			for i := range in {
				in[i] = float32(rng.NormFloat64())
			}
			got := conv.ApplyReal(nil, in)
			if len(got) != n {
				t.Fatalf("trial %d n=%d: output len %d", trial, n, len(got))
			}
			for i := 0; i < n; i++ {
				var acc float64
				for k := 0; k < ntaps && k <= i; k++ {
					acc += float64(in[i-k]) * taps[k]
				}
				if e := math.Abs(float64(got[i]) - acc); e > tol {
					t.Fatalf("trial %d n=%d idx=%d: got %v want %v (err %g)", trial, n, i, got[i], acc, e)
				}
			}
		}
	}
}

// TestPropConvolverCrossCorrelate: the WiFi demod's corr-via-convolution
// mapping — reversed-pattern taps turn overlap-save convolution into a
// sliding dot product, which normalized per lag must reproduce
// CrossCorrelate at every lag.
func TestPropConvolverCrossCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for trial := 0; trial < 10; trial++ {
		m := 4 + rng.Intn(29)
		pat := make([]float64, m)
		sig := make([]float64, m+rng.Intn(2000))
		sig32 := make([]float32, len(sig))
		for i := range pat {
			pat[i] = float64(float32(rng.NormFloat64())) // float32-exact values
		}
		for i := range sig {
			v := float32(rng.NormFloat64())
			sig[i] = float64(v)
			sig32[i] = v
		}
		taps := make([]float64, m)
		for k := range taps {
			taps[k] = pat[m-1-k]
		}
		conv := NewFFTConvolver(taps, 0)
		raw := conv.ApplyReal(nil, sig32)
		want := CrossCorrelate(sig, pat)
		var pNorm float64
		for _, v := range pat {
			pNorm += v * v
		}
		pNorm = math.Sqrt(pNorm)
		for lag := range want {
			var sNorm float64
			for k := 0; k < m; k++ {
				sNorm += sig[lag+k] * sig[lag+k]
			}
			got := 0.0
			if sNorm != 0 && pNorm != 0 {
				got = float64(raw[lag+m-1]) / (math.Sqrt(sNorm) * pNorm)
			}
			if e := math.Abs(got - want[lag]); e > 1e-3 {
				t.Fatalf("trial %d m=%d lag=%d: conv-corr %v want %v (err %g)", trial, m, lag, got, want[lag], e)
			}
		}
	}
}

// TestPropConvolverComplexCorrelate: same mapping for the complex
// matched filter (access-code hunting): conjugate-reversed taps, then
// magnitude over norms reproduces ComplexCorrelate.
func TestPropConvolverComplexCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for trial := 0; trial < 10; trial++ {
		m := 4 + rng.Intn(29)
		pat := randSamples(rng, m)
		sig := randSamples(rng, m+rng.Intn(2000))
		taps := make([]complex64, m)
		for k := range taps {
			p := pat[m-1-k]
			taps[k] = complex(real(p), -imag(p))
		}
		conv := NewComplexFFTConvolver(taps, 0)
		raw := conv.Apply(nil, sig)
		want := ComplexCorrelate(sig, pat)
		var pNorm float64
		for _, v := range pat {
			pNorm += float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
		}
		pNorm = math.Sqrt(pNorm)
		for lag := range want {
			var sNorm float64
			for k := 0; k < m; k++ {
				sv := sig[lag+k]
				sNorm += float64(real(sv))*float64(real(sv)) + float64(imag(sv))*float64(imag(sv))
			}
			got := 0.0
			if sNorm != 0 && pNorm != 0 {
				v := raw[lag+m-1]
				got = math.Hypot(float64(real(v)), float64(imag(v))) / (math.Sqrt(sNorm) * pNorm)
			}
			if e := math.Abs(got - want[lag]); e > 1e-3 {
				t.Fatalf("trial %d m=%d lag=%d: conv-corr %v want %v (err %g)", trial, m, lag, got, want[lag], e)
			}
		}
	}
}

// chanRef computes the direct reference chain for one channel:
// mix by -offsetHz (exact per-sample phase) -> zero-state FIR ->
// keep every decim-th sample.
func chanRef(in []complex64, offsetHz, rateHz float64, taps []float64, decim int) []complex64 {
	mixed := make([]complex64, len(in))
	w := -2 * math.Pi * offsetHz / rateHz
	for i, v := range in {
		ph := math.Mod(w*float64(i), 2*math.Pi)
		rot := complex(float32(math.Cos(ph)), float32(math.Sin(ph)))
		mixed[i] = v * rot
	}
	filtered := NewFIR(taps).ApplyInto(nil, mixed)
	out := make([]complex64, 0, (len(filtered)+decim-1)/decim)
	for i := 0; i < len(filtered); i += decim {
		out = append(out, filtered[i])
	}
	return out
}

// TestPropChannelizerMatchesDirect: every channel of the polyphase bank
// must match the per-channel mix+filter+decimate reference, for
// decimations 1, 2 and 4, odd and even channel counts, and awkward
// input lengths — via both Extract and the shared-forward ExtractAll.
func TestPropChannelizerMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	const rate = 8e6
	const spacing = 1e6
	lp := LowPass(700_000, rate, 21).Taps()
	configs := []struct {
		channels, decim, block int
		taps                   []float64
	}{
		{8, 1, 512, lp},
		{8, 2, 512, lp},
		{4, 4, 256, lp},
		{5, 2, 512, lp},
		{1, 1, 256, randTaps(rng, 9)},
	}
	for _, cfg := range configs {
		cz, err := NewChannelizer(ChannelizerConfig{
			Taps: cfg.taps, Channels: cfg.channels,
			SpacingHz: spacing, RateHz: rate,
			BlockLen: cfg.block, Decim: cfg.decim,
		})
		if err != nil {
			t.Fatalf("C=%d D=%d: %v", cfg.channels, cfg.decim, err)
		}
		tol := tapsTol(cfg.taps)
		for _, n := range propLengths(rng, cz.step) {
			in := randSamples(rng, n)
			want := make([][]complex64, cfg.channels)
			for ch := 0; ch < cfg.channels; ch++ {
				offset := (float64(ch) - float64(cfg.channels-1)/2) * spacing
				want[ch] = chanRef(in, offset, rate, cfg.taps, cfg.decim)
				got := cz.Extract(nil, in, ch)
				checkChannel(t, "Extract", cfg.channels, cfg.decim, n, ch, got, want[ch], tol)
			}
			visited := 0
			cz.ExtractAll(in, func(ch int, out []complex64) {
				checkChannel(t, "ExtractAll", cfg.channels, cfg.decim, n, ch, out, want[ch], tol)
				visited++
			})
			if visited != cfg.channels {
				t.Fatalf("C=%d D=%d n=%d: ExtractAll visited %d channels", cfg.channels, cfg.decim, n, visited)
			}
		}
	}
}

func checkChannel(t *testing.T, path string, C, D, n, ch int, got, want []complex64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s C=%d D=%d n=%d ch=%d: len %d want %d", path, C, D, n, ch, len(got), len(want))
	}
	for i := range got {
		if e := cdiff(got[i], want[i]); e > tol {
			t.Fatalf("%s C=%d D=%d n=%d ch=%d idx=%d: got %v want %v (err %g > %g)",
				path, C, D, n, ch, i, got[i], want[i], e, tol)
		}
	}
}

// TestFastAtan2Accuracy gates the table-anchored atan2 the FM
// discriminator runs on: worst absolute error under 1e-10 rad over
// random draws plus the axis/origin/denormal corner cases.
func TestFastAtan2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	worst := 0.0
	for i := 0; i < 1_000_000; i++ {
		y := rng.NormFloat64()
		x := rng.NormFloat64()
		if e := math.Abs(fastAtan2(y, x) - math.Atan2(y, x)); e > worst {
			worst = e
		}
	}
	cases := [][2]float64{
		{0, 1}, {1, 0}, {0, -1}, {-1, 0}, {0, 0},
		{1e-300, 1}, {1, 1e-300}, {1e300, 1e-300}, {1e-300, 1e300},
		{1, 1}, {-1, 1}, {1, -1}, {-1, -1},
		{math.SmallestNonzeroFloat64, 1}, {1, math.SmallestNonzeroFloat64},
	}
	for _, c := range cases {
		if e := math.Abs(fastAtan2(c[0], c[1]) - math.Atan2(c[0], c[1])); e > worst {
			worst = e
		}
	}
	t.Logf("worst error %g rad", worst)
	if worst > 1e-10 {
		t.Fatalf("fastAtan2 worst error %g > 1e-10", worst)
	}
}

// TestPropFastPhaseDiffMatchesPhaseDiff: the two-pass chunked
// discriminator must agree with the math.Atan2 reference on every
// length, including chunk-boundary lengths.
func TestPropFastPhaseDiffMatchesPhaseDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	for _, n := range []int{0, 1, 2, 3, 511, 512, 513, 1024, 1025, 3000} {
		in := randSamples(rng, n)
		got := FastPhaseDiff(in, nil)
		want := PhaseDiff(in, nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d want %d", n, len(got), len(want))
		}
		for i := range got {
			if e := math.Abs(got[i] - want[i]); e > 1e-9 {
				t.Fatalf("n=%d idx=%d: got %v want %v (err %g)", n, i, got[i], want[i], e)
			}
		}
	}
}

// TestPropCosPhaseDiff: the transcendental-free correlator input must be
// cos of the PhaseDiff reference.
func TestPropCosPhaseDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(propSeed(t)))
	in := randSamples(rng, 4096)
	// Zero sample: the phase products around it have zero magnitude, where
	// the angle is undefined (atan2 sees signed zeros, the fast path sees
	// its guard) — those indices are only required to stay finite.
	in[17] = 0
	got := CosPhaseDiff(in, nil)
	want := PhaseDiff(in, nil)
	if len(got) != len(want) {
		t.Fatalf("len %d want %d", len(got), len(want))
	}
	for i := range got {
		p := in[i+1] * complex(real(in[i]), -imag(in[i]))
		if math.Hypot(float64(real(p)), float64(imag(p))) < 1e-20 {
			if math.IsNaN(float64(got[i])) {
				t.Fatalf("idx=%d: NaN on zero-magnitude product", i)
			}
			continue
		}
		if e := math.Abs(float64(got[i]) - math.Cos(want[i])); e > 1e-5 {
			t.Fatalf("idx=%d: got %v want cos=%v (err %g)", i, got[i], math.Cos(want[i]), e)
		}
	}
}
