package dsp

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestFFTImpulse(t *testing.T) {
	x := make([]complex128, 16)
	x[0] = 1
	FFT(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1 (flat spectrum)", k, v)
		}
	}
}

func TestFFTDC(t *testing.T) {
	x := make([]complex128, 8)
	for i := range x {
		x[i] = 2
	}
	FFT(x)
	if cmplx.Abs(x[0]-16) > 1e-12 {
		t.Errorf("DC bin = %v, want 16", x[0])
	}
	for k := 1; k < 8; k++ {
		if cmplx.Abs(x[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, x[k])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	const bin = 5
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * bin * float64(i) / n
		x[i] = cmplx.Rect(1, ph)
	}
	FFT(x)
	for k := range x {
		want := 0.0
		if k == bin {
			want = n
		}
		if cmplx.Abs(x[k]-complex(want, 0)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, x[k], want)
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		x := make([]complex128, 32)
		orig := make([]complex128, 32)
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTParseval(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		const n = 64
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(r.Norm(), r.Norm())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		FFT(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(freqE/float64(n)-timeE) < 1e-6*timeE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		const n = 16
		a := make([]complex128, n)
		b := make([]complex128, n)
		sum := make([]complex128, n)
		for i := 0; i < n; i++ {
			a[i] = complex(r.Norm(), r.Norm())
			b[i] = complex(r.Norm(), r.Norm())
			sum[i] = a[i] + b[i]
		}
		FFT(a)
		FFT(b)
		FFT(sum)
		for i := 0; i < n; i++ {
			if cmplx.Abs(sum[i]-(a[i]+b[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for size 12")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestBinPowersTone(t *testing.T) {
	// Tone at +2.5 MHz of an 8 MHz band should land in bin 6 of 8
	// (bins cover [-4,-3) ... [3,4) MHz).
	const n = 256
	block := make([]complex64, n)
	for i := range block {
		ph := 2 * math.Pi * 2.5e6 * float64(i) / 8e6
		block[i] = complex64(cmplx.Rect(1, ph))
	}
	bins := BinPowers(block, 256, 8)
	best, bestIdx := 0.0, -1
	var total float64
	for i, p := range bins {
		total += p
		if p > best {
			best, bestIdx = p, i
		}
	}
	if bestIdx != 6 {
		t.Errorf("tone in bin %d, want 6 (bins: %v)", bestIdx, bins)
	}
	if best/total < 0.9 {
		t.Errorf("tone not concentrated: %.2f", best/total)
	}
}

func TestPow2Helpers(t *testing.T) {
	if !IsPow2(64) || IsPow2(63) || IsPow2(0) {
		t.Error("IsPow2")
	}
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {129, 256}} {
		if got := NextPow2(tc.in); got != tc.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLowPassDCGain(t *testing.T) {
	f := LowPass(1e6, 8e6, 31)
	var sum float64
	for _, tap := range f.Taps() {
		sum += tap
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("DC gain = %v", sum)
	}
}

func TestLowPassAttenuation(t *testing.T) {
	fir := LowPass(500e3, 8e6, 63)
	// In-band tone passes, out-of-band tone is attenuated.
	mkTone := func(freq float64) []complex64 {
		s := make([]complex64, 2000)
		for i := range s {
			ph := 2 * math.Pi * freq * float64(i) / 8e6
			s[i] = complex64(cmplx.Rect(1, ph))
		}
		return s
	}
	power := func(s []complex64) float64 {
		var p float64
		for _, v := range s[200:] { // skip transient
			p += float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
		}
		return p / float64(len(s)-200)
	}
	in := fir.Apply(mkTone(100e3))
	out := fir.Apply(mkTone(3e6))
	if power(in) < 0.8 {
		t.Errorf("in-band power = %v", power(in))
	}
	if power(out) > 0.01 {
		t.Errorf("out-of-band power = %v", power(out))
	}
}

func TestFIRStreamingMatchesBatch(t *testing.T) {
	r := NewRand(3)
	sig := make([]complex64, 500)
	for i := range sig {
		sig[i] = complex(float32(r.Norm()), float32(r.Norm()))
	}
	f1 := LowPass(1e6, 8e6, 21)
	batch := f1.Apply(sig)

	f2 := NewFIR(f1.Taps())
	stream := make([]complex64, 500)
	f2.Process(sig[:123], stream[:123])
	f2.Process(sig[123:400], stream[123:400])
	f2.Process(sig[400:], stream[400:])
	for i := range batch {
		d := batch[i] - stream[i]
		if math.Hypot(float64(real(d)), float64(imag(d))) > 1e-5 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestFIRReset(t *testing.T) {
	f := LowPass(1e6, 8e6, 11)
	in := []complex64{1, 1, 1, 1}
	out1 := make([]complex64, 4)
	out2 := make([]complex64, 4)
	f.Process(in, out1)
	f.Reset()
	f.Process(in, out2)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("Reset did not clear state")
		}
	}
}

func TestGaussianTaps(t *testing.T) {
	taps := GaussianTaps(0.5, 8, 3)
	if len(taps) != 25 {
		t.Fatalf("len = %d", len(taps))
	}
	var sum float64
	for i, v := range taps {
		sum += v
		if v < 0 {
			t.Errorf("negative tap %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
	// Symmetric with the peak in the middle.
	for i := 0; i < len(taps)/2; i++ {
		if math.Abs(taps[i]-taps[len(taps)-1-i]) > 1e-12 {
			t.Errorf("asymmetric at %d", i)
		}
	}
	if taps[12] < taps[0] {
		t.Error("peak not centered")
	}
}

func TestMovingAverage(t *testing.T) {
	m := NewMovingAverage(4)
	if m.Mean() != 0 {
		t.Error("fresh mean")
	}
	vals := []float64{4, 8, 12, 16, 20}
	wants := []float64{4, 6, 8, 10, 14}
	for i, v := range vals {
		if got := m.Push(v); math.Abs(got-wants[i]) > 1e-12 {
			t.Errorf("push %d: got %v want %v", i, got, wants[i])
		}
	}
	if !m.Full() {
		t.Error("should be full")
	}
	m.Reset()
	if m.Full() || m.Mean() != 0 {
		t.Error("reset")
	}
}

func TestDecimate(t *testing.T) {
	in := []complex64{0, 1, 2, 3, 4, 5, 6}
	out := Decimate(in, 3)
	if len(out) != 3 || out[0] != 0 || out[1] != 3 || out[2] != 6 {
		t.Errorf("decimated = %v", out)
	}
	same := Decimate(in, 1)
	if len(same) != len(in) {
		t.Error("factor 1")
	}
	same[0] = 99
	if in[0] == 99 {
		t.Error("decimate aliases input")
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // (-pi, pi] convention
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, tc := range cases {
		if got := WrapPhase(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("WrapPhase(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestWrapPhaseRangeProperty(t *testing.T) {
	f := func(raw int32) bool {
		p := float64(raw) / 1e6
		w := WrapPhase(p)
		return w > -math.Pi-1e-12 && w <= math.Pi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseDiffTone(t *testing.T) {
	// A pure tone has constant phase diff = 2*pi*f/rate.
	const freq, rate = 1e6, 8e6
	s := make([]complex64, 100)
	for i := range s {
		s[i] = complex64(cmplx.Rect(1, 2*math.Pi*freq*float64(i)/rate))
	}
	d := PhaseDiff(s, nil)
	want := 2 * math.Pi * freq / rate
	for i, v := range d {
		if math.Abs(v-want) > 1e-5 {
			t.Fatalf("diff[%d] = %v, want %v", i, v, want)
		}
	}
	// Second derivative of a tone is zero.
	dd := SecondDiff(d, nil)
	if MeanAbs(dd) > 1e-5 {
		t.Errorf("tone second derivative = %v", MeanAbs(dd))
	}
}

func TestUnwrapInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		// Build a smooth continuous phase, wrap it, unwrap it back.
		cont := make([]float64, 50)
		acc := 0.0
		for i := range cont {
			acc += (r.Float64() - 0.5) * 2 // steps in (-1, 1), < pi
			cont[i] = acc
		}
		wrapped := make([]float64, len(cont))
		for i, v := range cont {
			wrapped[i] = WrapPhase(v)
		}
		un := Unwrap(wrapped)
		// Unwrapped differs from original by a constant multiple of 2pi.
		off := un[0] - cont[0]
		for i := range un {
			if math.Abs(un[i]-cont[i]-off) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{1, -2, 3}
	if got := MeanAbs(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanAbs = %v", got)
	}
	if got := Mean(xs); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("variance of singleton")
	}
	if got := Variance([]float64{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if MeanAbs(nil) != 0 || Mean(nil) != 0 {
		t.Error("empty stats")
	}
}

func TestCircularMean(t *testing.T) {
	// Angles around the wrap point average correctly.
	angles := []float64{math.Pi - 0.1, -math.Pi + 0.1}
	got := CircularMean(angles)
	if math.Abs(math.Abs(got)-math.Pi) > 1e-9 {
		t.Errorf("circular mean = %v, want ±pi", got)
	}
}

func TestPhaseHistogram(t *testing.T) {
	angles := []float64{0, 0.01, math.Pi / 2, math.Pi/2 + 0.01, -math.Pi / 2}
	counts := PhaseHistogram(angles, 4)
	// Bins over (-pi, pi]: bin 2 = [0, pi/2), bin 3 = [pi/2, pi).
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(angles) {
		t.Errorf("total = %d", total)
	}
	dom := DominantBins(counts, 0.3)
	if len(dom) == 0 {
		t.Error("no dominant bins")
	}
	if PhaseHistogram(angles, 0) == nil {
		t.Error("zero bins should return empty slice")
	}
	if DominantBins([]int{0, 0}, 0.5) != nil {
		t.Error("dominant of empty histogram")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	if NewRand(0).Uint64() == 0 {
		t.Error("zero seed must be remapped")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v", mean)
	}
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-300 || c > n/10+300 {
			t.Errorf("Intn digit %d count %d", d, c)
		}
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("norm variance = %v", variance)
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestAWGNPower(t *testing.T) {
	r := NewRand(13)
	block := make([]complex64, 50000)
	AWGN(r, block, 2.0)
	var p float64
	for _, s := range block {
		p += float64(real(s))*float64(real(s)) + float64(imag(s))*float64(imag(s))
	}
	p /= float64(len(block))
	if math.Abs(p-2) > 0.1 {
		t.Errorf("noise power = %v, want 2", p)
	}
	// Zero power is a no-op.
	zero := make([]complex64, 10)
	AWGN(r, zero, 0)
	for _, s := range zero {
		if s != 0 {
			t.Fatal("AWGN(0) mutated block")
		}
	}
}

func TestCrossCorrelatePeak(t *testing.T) {
	pattern := []float64{1, -1, 1, 1, -1}
	signal := make([]float64, 40)
	copy(signal[17:], pattern)
	// Fill rest with small values so normalization is meaningful.
	for i := range signal {
		if signal[i] == 0 {
			signal[i] = 0.01
		}
	}
	corr := CrossCorrelate(signal, pattern)
	idx, v := MaxAbs(corr)
	if idx != 17 {
		t.Errorf("peak at %d, want 17", idx)
	}
	if v < 0.99 {
		t.Errorf("peak value %v", v)
	}
	if CrossCorrelate([]float64{1}, pattern) != nil {
		t.Error("short signal should return nil")
	}
}

func TestComplexCorrelateRotationInvariance(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		pattern := make([]complex64, 16)
		for i := range pattern {
			pattern[i] = complex(float32(r.Norm()), float32(r.Norm()))
		}
		signal := make([]complex64, 64)
		copy(signal[20:], pattern)
		for i := range signal {
			if signal[i] == 0 {
				signal[i] = complex(float32(r.Norm()*0.01), 0)
			}
		}
		base := ComplexCorrelate(signal, pattern)

		rot := complex64(cmplx.Rect(1, 2.1))
		rotated := make([]complex64, len(signal))
		for i, s := range signal {
			rotated[i] = s * rot
		}
		after := ComplexCorrelate(rotated, pattern)
		for i := range base {
			if math.Abs(base[i]-after[i]) > 1e-4 {
				return false
			}
		}
		iBase, _ := MaxAbs(base)
		return iBase == 20
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBarkerAutocorrelation(t *testing.T) {
	// Barker sequences have sidelobes bounded by 1/11 of the peak.
	b := make([]float64, 11)
	for i, v := range Barker11 {
		b[i] = float64(v)
	}
	for lag := 1; lag < 11; lag++ {
		var acc float64
		for i := 0; i+lag < 11; i++ {
			acc += b[i] * b[i+lag]
		}
		if math.Abs(acc) > 1.0+1e-9 {
			t.Errorf("lag %d sidelobe %v", lag, acc)
		}
	}
}

func TestBitCorrelate(t *testing.T) {
	stream := []byte{1, 0, 1, 1, 0, 0, 1}
	pattern := []byte{1, 1, 0}
	if got := BitCorrelate(stream, 2, pattern); got != 3 {
		t.Errorf("exact match = %d", got)
	}
	if got := BitCorrelate(stream, 0, pattern); got != 1 {
		t.Errorf("offset 0 = %d", got)
	}
	if BitCorrelate(stream, 5, pattern) != 0 {
		t.Error("out of range must be 0")
	}
	if BitCorrelate(stream, -1, pattern) != 0 {
		t.Error("negative offset must be 0")
	}
}

func TestRandBytes(t *testing.T) {
	r := NewRand(5)
	b := make([]byte, 64)
	r.Bytes(b)
	zeros := 0
	for _, v := range b {
		if v == 0 {
			zeros++
		}
	}
	if zeros > 10 {
		t.Errorf("suspiciously many zero bytes: %d", zeros)
	}
}

func TestGoertzelDetectsTone(t *testing.T) {
	const rate = 8e6
	mk := func(freq float64) []complex64 {
		s := make([]complex64, 800)
		for i := range s {
			ph := 2 * math.Pi * freq * float64(i) / rate
			s[i] = complex64(cmplx.Rect(1, ph))
		}
		return s
	}
	tone := mk(1.5e6)
	onBin := Goertzel(tone, 1.5e6, rate)
	offBin := Goertzel(tone, 2.5e6, rate)
	if onBin < 100*offBin {
		t.Errorf("Goertzel on=%v off=%v", onBin, offBin)
	}
	// Matches the FFT bin power up to normalization: energy of a unit
	// tone over n samples concentrates to ~n at the right bin.
	if onBin < 700 {
		t.Errorf("on-bin power %v, want ~800", onBin)
	}
	if Goertzel(nil, 1e6, rate) != 0 {
		t.Error("empty block")
	}
}

func TestWindows(t *testing.T) {
	for name, fn := range map[string]func(int) []float64{
		"hann":    HannWindow,
		"hamming": HammingWindow,
	} {
		w := fn(64)
		if len(w) != 64 {
			t.Fatalf("%s length", name)
		}
		// Symmetric, peak in the middle, edges low.
		for i := 0; i < 32; i++ {
			if math.Abs(w[i]-w[63-i]) > 1e-12 {
				t.Errorf("%s asymmetric at %d", name, i)
			}
		}
		if w[32] < 0.9 || w[0] > 0.1 {
			t.Errorf("%s shape: edge %v mid %v", name, w[0], w[32])
		}
		if one := fn(1); len(one) != 1 || one[0] != 1 {
			t.Errorf("%s(1) = %v", name, one)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	block := []complex64{2, 2, 2, 2}
	win := []float64{0, 0.5, 1, 0.5}
	ApplyWindow(block, win)
	want := []complex64{0, 1, 2, 1}
	for i := range want {
		if block[i] != want[i] {
			t.Fatalf("windowed %v", block)
		}
	}
}
