package dsp

import (
	"fmt"
	"math"
	"sync"
)

// FilterBank is an immutable frequency-domain image of one set of FIR
// taps at one FFT size: H[k] = FFT_n(taps, zero-padded). Banks are baked
// once per (taps, blockLen) pair and shared process-wide — the Gaussian
// and Barker shaping filters every demod instance needs are transformed
// exactly once.
type FilterBank struct {
	n     int
	ntaps int
	h     []complex64
}

type bankKey struct {
	n    int
	taps int
	hash uint64
}

// bankEntry keeps the taps alongside the bank so hash collisions can be
// detected (a colliding set of taps is simply baked uncached).
type bankEntry struct {
	re []float64
	im []float64
	b  *FilterBank
}

var bankCache sync.Map // bankKey -> *bankEntry

// bakeBank transforms taps at FFT size n via the float64 FFT, so the
// bank carries full double-precision bake accuracy rounded once.
func bakeBank(re, im []float64, n int) *FilterBank {
	x := make([]complex128, n)
	for i := range re {
		if im == nil {
			x[i] = complex(re[i], 0)
		} else {
			x[i] = complex(re[i], im[i])
		}
	}
	FFT(x)
	h := make([]complex64, n)
	for k, v := range x {
		h[k] = complex64(v)
	}
	return &FilterBank{n: n, ntaps: len(re), h: h}
}

func tapsHash(re, im []float64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v float64) {
		b := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h = (h ^ (b >> s & 0xff)) * prime
		}
	}
	for _, v := range re {
		mix(v)
	}
	for _, v := range im {
		mix(v)
	}
	return h
}

func float64sEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// loadBank returns the cached bank for (taps, n), baking it on first use.
func loadBank(re, im []float64, n int) *FilterBank {
	key := bankKey{n: n, taps: len(re), hash: tapsHash(re, im)}
	if v, ok := bankCache.Load(key); ok {
		e := v.(*bankEntry)
		if float64sEqual(e.re, re) && float64sEqual(e.im, im) {
			return e.b
		}
		return bakeBank(re, im, n) // hash collision: bake uncached
	}
	e := &bankEntry{
		re: append([]float64(nil), re...),
		im: append([]float64(nil), im...),
		b:  bakeBank(re, im, n),
	}
	v, _ := bankCache.LoadOrStore(key, e)
	return v.(*bankEntry).b
}

// FFTConvolver applies one FIR filter by overlap-save FFT convolution:
// the input is processed in hops of step = blockLen - (ntaps-1) samples,
// each hop costing one forward and one inverse transform instead of
// ntaps multiplies per sample. Output semantics match FIR.ApplyInto
// exactly — zero initial state, convolution truncated to the input
// length — so the convolver is a drop-in for the direct filter on
// per-burst (non-streaming) paths.
//
// A convolver owns scratch and is not safe for concurrent use; the plan
// and bank it references are shared.
type FFTConvolver struct {
	plan *FFTPlan
	bank *FilterBank
	step int
	seg  []complex64
	freq []complex64
}

// NewFFTConvolver builds a convolver for real taps. blockLen must be a
// power of two greater than len(taps)-1, or 0 to choose one.
func NewFFTConvolver(taps []float64, blockLen int) *FFTConvolver {
	return newFFTConvolver(taps, nil, blockLen)
}

// NewComplexFFTConvolver builds a convolver for complex taps (used for
// matched filters against complex patterns, e.g. access-code hunting).
func NewComplexFFTConvolver(taps []complex64, blockLen int) *FFTConvolver {
	re := make([]float64, len(taps))
	im := make([]float64, len(taps))
	for i, v := range taps {
		re[i] = float64(real(v))
		im[i] = float64(imag(v))
	}
	return newFFTConvolver(re, im, blockLen)
}

func newFFTConvolver(re, im []float64, blockLen int) *FFTConvolver {
	ntaps := len(re)
	if ntaps == 0 {
		panic("dsp: FFTConvolver needs at least one tap")
	}
	if blockLen == 0 {
		blockLen = NextPow2(8 * ntaps)
		if blockLen < 256 {
			blockLen = 256
		}
	}
	if !IsPow2(blockLen) || blockLen <= ntaps-1 {
		panic(fmt.Sprintf("dsp: FFTConvolver blockLen %d invalid for %d taps", blockLen, ntaps))
	}
	return &FFTConvolver{
		plan: PlanFFT(blockLen),
		bank: loadBank(re, im, blockLen),
		step: blockLen - (ntaps - 1),
		seg:  make([]complex64, blockLen),
		freq: make([]complex64, blockLen),
	}
}

// BlockLen returns the FFT size in use.
func (c *FFTConvolver) BlockLen() int { return c.plan.n }

// growC64 is grow for complex64 scratch.
func growC64(out []complex64, n int) []complex64 {
	if cap(out) < n {
		return make([]complex64, n)
	}
	return out[:n]
}

// growF32 is grow for float32 scratch.
func growF32(out []float32, n int) []float32 {
	if cap(out) < n {
		return make([]float32, n)
	}
	return out[:n]
}

// Apply convolves in with the taps (zero state, truncated to len(in),
// matching FIR.ApplyInto) into dst's storage and returns the result.
// dst must not alias in.
func (c *FFTConvolver) Apply(dst, in []complex64) []complex64 {
	n := len(in)
	dst = growC64(dst, n)
	pad := c.bank.ntaps - 1
	N := c.plan.n
	for p := 0; p < n; p += c.step {
		lo := p - pad
		src := c.seg
		if lo >= 0 && lo+N <= n {
			// Interior hop: transform straight out of the input, saving
			// the segment copy.
			src = in[lo : lo+N]
		} else {
			c.fillSegment(in, lo)
		}
		c.hop(src)
		m := c.step
		if n-p < m {
			m = n - p
		}
		copy(dst[p:p+m], c.seg[pad:pad+m])
	}
	return dst
}

// ApplyReal is Apply for real-valued float32 blocks (the 802.11b
// signature-correlation path), embedding the input on the real axis.
func (c *FFTConvolver) ApplyReal(dst, in []float32) []float32 {
	n := len(in)
	dst = growF32(dst, n)
	pad := c.bank.ntaps - 1
	N := c.plan.n
	seg := c.seg
	for p := 0; p < n; p += c.step {
		lo := p - pad
		for j := 0; j < N; j++ {
			k := lo + j
			if k >= 0 && k < n {
				seg[j] = complex(in[k], 0)
			} else {
				seg[j] = 0
			}
		}
		c.hop(seg)
		m := c.step
		if n-p < m {
			m = n - p
		}
		for t := 0; t < m; t++ {
			dst[p+t] = real(seg[pad+t])
		}
	}
	return dst
}

// hop transforms one segment, applies the bank, and inverts back into
// c.seg (safe even when src is c.seg: c.freq carries the spectrum).
// The filter multiply is fused into the inverse's conjugate-permuted
// staging pass, saving a full read+write sweep of the spectrum.
func (c *FFTConvolver) hop(src []complex64) {
	c.plan.Forward(c.freq, src)
	perm := c.plan.perm
	h := c.bank.h
	freq := c.freq
	seg := c.seg
	for i, s := range perm {
		f, g := freq[s], h[s]
		// conj(f * g), spelled out in float32 (see FFTPlan.stages).
		seg[i] = complex(
			real(f)*real(g)-imag(f)*imag(g),
			-(real(f)*imag(g) + imag(f)*real(g)))
	}
	c.plan.inverseTail(seg)
}

// fillSegment stages in[lo : lo+N] into c.seg, zero-padding outside the
// input (leading edge of the first hop, tail of the last).
func (c *FFTConvolver) fillSegment(in []complex64, lo int) {
	N := c.plan.n
	seg := c.seg[:N]
	a, b := lo, lo+N
	if a < 0 {
		a = 0
	}
	if b > len(in) {
		b = len(in)
	}
	for j := 0; j < a-lo; j++ {
		seg[j] = 0
	}
	if b > a {
		copy(seg[a-lo:], in[a:b])
	}
	for j := b - lo; j < N; j++ {
		seg[j] = 0
	}
}
