package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// Microbenchmarks for the FFT demod kernels and the direct baselines
// they replaced. The interesting comparisons:
//
//	DirectMixFIR vs ChannelizerExtract — one Bluetooth channel the old
//	way (per-sample mixer + direct FIR) against one overlap-save hop.
//	ChannelizerAll — all 8 channels off a single forward transform.
//	PhaseDiff vs FastPhaseDiff — math.Atan2 against the two-pass
//	table-anchored discriminator.

func benchInput(n int) []complex64 {
	rng := rand.New(rand.NewSource(9))
	in := make([]complex64, n)
	for i := range in {
		in[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	return in
}

// BenchmarkDirectMixFIR is the pre-FFT baseline for one channel:
// incremental-phase mixer followed by a 21-tap direct FIR.
func BenchmarkDirectMixFIR(b *testing.B) {
	in := benchInput(65536)
	fir := LowPass(700_000, 8e6, 21)
	scratch := make([]complex64, len(in))
	b.SetBytes(int64(len(in) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, in)
		step := 2 * math.Pi * -3.5e6 / 8e6
		ph := 0.0
		for j := range scratch {
			rot := complex(float32(math.Cos(ph)), float32(math.Sin(ph)))
			scratch[j] *= rot
			ph += step
			if ph > math.Pi {
				ph -= 2 * math.Pi
			} else if ph < -math.Pi {
				ph += 2 * math.Pi
			}
		}
		fir.ApplyInto(scratch, scratch)
	}
}

func BenchmarkChannelizerExtract(b *testing.B) {
	in := benchInput(65536)
	taps := LowPass(700_000, 8e6, 21).Taps()
	for _, bl := range []int{256, 512, 1024, 2048} {
		b.Run(map[int]string{256: "N256", 512: "N512", 1024: "N1024", 2048: "N2048"}[bl], func(b *testing.B) {
			cz, err := NewChannelizer(ChannelizerConfig{Taps: taps, Channels: 8, SpacingHz: 1e6, RateHz: 8e6, BlockLen: bl})
			if err != nil {
				b.Fatal(err)
			}
			var out []complex64
			b.SetBytes(int64(len(in) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = cz.Extract(out, in, 3)
			}
		})
	}
}

func BenchmarkChannelizerAll(b *testing.B) {
	in := benchInput(65536)
	taps := LowPass(700_000, 8e6, 21).Taps()
	cz, err := NewChannelizer(ChannelizerConfig{Taps: taps, Channels: 8, SpacingHz: 1e6, RateHz: 8e6, BlockLen: 1024})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(in) * 8 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cz.ExtractAll(in, func(ch int, out []complex64) {})
	}
}

func BenchmarkFFTConvolver(b *testing.B) {
	in := benchInput(65536)
	taps := LowPass(700_000, 8e6, 21).Taps()
	conv := NewFFTConvolver(taps, 0)
	var out []complex64
	b.SetBytes(int64(len(in) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = conv.Apply(out, in)
	}
}

func BenchmarkPhaseDiff(b *testing.B) {
	in := benchInput(65536)
	var out []float64
	b.SetBytes(int64(len(in) * 8))
	for i := 0; i < b.N; i++ {
		out = PhaseDiff(in, out)
	}
}

func BenchmarkFastPhaseDiff(b *testing.B) {
	in := benchInput(65536)
	var out []float64
	b.SetBytes(int64(len(in) * 8))
	for i := 0; i < b.N; i++ {
		out = FastPhaseDiff(in, out)
	}
}

func BenchmarkCosPhaseDiff(b *testing.B) {
	in := benchInput(65536)
	var out []float32
	b.SetBytes(int64(len(in) * 8))
	for i := 0; i < b.N; i++ {
		out = CosPhaseDiff(in, out)
	}
}

func BenchmarkFFTPlan(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(map[int]string{256: "N256", 512: "N512", 1024: "N1024"}[n], func(b *testing.B) {
			p := PlanFFT(n)
			src := benchInput(n)
			dst := make([]complex64, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Forward(dst, src)
			}
		})
	}
}
