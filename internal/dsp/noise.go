package dsp

import (
	"math"
)

// Rand is a small, fast, deterministic PRNG (xorshift64*), used everywhere
// randomness is needed so that traces, workloads and tests are exactly
// reproducible from a seed. It deliberately avoids math/rand so the
// sequence is stable across Go versions.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed
// non-zero constant because xorshift has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("dsp: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns a uniform random bit.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Norm returns a standard normal deviate (Box-Muller; one value per call,
// the pair's second value is discarded for simplicity).
func (r *Rand) Norm() float64 {
	for {
		u := r.Float64()
		if u <= 1e-300 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	for i := range b {
		if i%8 == 0 {
			_ = r.Uint64() // decorrelate runs of length < 8
		}
		b[i] = byte(r.Uint64())
	}
}

// AWGN adds complex white Gaussian noise with the given total noise power
// (variance split evenly between I and Q) to block in place.
func AWGN(r *Rand, block []complex64, noisePower float64) {
	if noisePower <= 0 {
		return
	}
	sigma := math.Sqrt(noisePower / 2)
	for i := range block {
		block[i] += complex(float32(sigma*r.Norm()), float32(sigma*r.Norm()))
	}
}

// NoiseBlock returns a freshly allocated block of complex Gaussian noise
// with the given total power per sample.
func NoiseBlock(r *Rand, n int, power float64) []complex64 {
	out := make([]complex64, n)
	AWGN(r, out, power)
	return out
}
