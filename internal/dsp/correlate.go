package dsp

import "math"

// Barker11 is the 11-chip Barker sequence used by 802.11b DSSS spreading
// at 1 and 2 Mbps. Each data symbol is spread by these 11 chips at
// 11 Mchip/s, giving the 22 MHz channel width of Table 2.
var Barker11 = [11]int8{+1, -1, +1, +1, -1, +1, +1, +1, -1, -1, -1}

// CrossCorrelate computes the normalized cross-correlation of pattern
// against signal at every lag in [0, len(signal)-len(pattern)], returning
// the correlation values. Both inputs are real. Normalization divides by
// the L2 norms so a perfect match scores 1.0 regardless of amplitude.
func CrossCorrelate(signal, pattern []float64) []float64 {
	n := len(signal) - len(pattern) + 1
	if n <= 0 {
		return nil
	}
	var pNorm float64
	for _, v := range pattern {
		pNorm += v * v
	}
	pNorm = math.Sqrt(pNorm)
	out := make([]float64, n)
	for lag := 0; lag < n; lag++ {
		var acc, sNorm float64
		for k, pv := range pattern {
			sv := signal[lag+k]
			acc += sv * pv
			sNorm += sv * sv
		}
		if sNorm == 0 || pNorm == 0 {
			out[lag] = 0
			continue
		}
		out[lag] = acc / (math.Sqrt(sNorm) * pNorm)
	}
	return out
}

// MaxAbs returns the index and value of the element with the largest
// absolute value (index -1 for empty input).
func MaxAbs(xs []float64) (int, float64) {
	idx, best := -1, 0.0
	for i, v := range xs {
		if a := math.Abs(v); a > best {
			best = a
			idx = i
		}
	}
	return idx, best
}

// ComplexCorrelate computes |sum(signal[lag+k] * conj(pattern[k]))| at
// every lag, normalized by the product of L2 norms. It is invariant under
// a global phase rotation of the signal, which is why the demodulators use
// it for preamble/access-code hunting on unsynchronized captures.
func ComplexCorrelate(signal, pattern []complex64) []float64 {
	n := len(signal) - len(pattern) + 1
	if n <= 0 {
		return nil
	}
	var pNorm float64
	for _, v := range pattern {
		pNorm += float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
	}
	pNorm = math.Sqrt(pNorm)
	out := make([]float64, n)
	for lag := 0; lag < n; lag++ {
		var accRe, accIm, sNorm float64
		for k, pv := range pattern {
			sv := signal[lag+k]
			sr, si := float64(real(sv)), float64(imag(sv))
			pr, pi := float64(real(pv)), float64(imag(pv))
			// sv * conj(pv)
			accRe += sr*pr + si*pi
			accIm += si*pr - sr*pi
			sNorm += sr*sr + si*si
		}
		if sNorm == 0 || pNorm == 0 {
			continue
		}
		out[lag] = math.Hypot(accRe, accIm) / (math.Sqrt(sNorm) * pNorm)
	}
	return out
}

// BitCorrelate counts matching bits between pattern and the window of
// stream starting at off. Returns matches out of len(pattern).
func BitCorrelate(stream []byte, off int, pattern []byte) int {
	if off < 0 || off+len(pattern) > len(stream) {
		return 0
	}
	m := 0
	for i, p := range pattern {
		if stream[off+i] == p {
			m++
		}
	}
	return m
}
