// Package dsp implements the signal-processing primitives the RFDump
// reproduction is built from: FFT, FIR filtering, Gaussian pulse shaping,
// phase extraction and derivatives, correlation, moving averages and a
// deterministic Gaussian noise source.
//
// Everything here is pure Go over float64/complex128 internals with
// complex64 stream adapters, stdlib only.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x.
// len(x) must be a power of two; FFT panics otherwise (a programming
// error, not a data error — callers size their buffers).
func FFT(x []complex128) {
	fftDir(x, false)
}

// IFFT computes the in-place inverse FFT of x, including the 1/N scale.
func IFFT(x []complex128) {
	fftDir(x, true)
	n := float64(len(x))
	for i := range x {
		x[i] = complex(real(x[i])/n, imag(x[i])/n)
	}
}

func fftDir(x []complex128, inverse bool) {
	n := len(x)
	if n == 0 {
		return
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("dsp: FFT size %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// FFT64 computes the FFT of a complex64 block into a freshly allocated
// complex128 slice, zero-padding (or truncating) to size n.
func FFT64(in []complex64, n int) []complex128 {
	out := make([]complex128, n)
	m := len(in)
	if m > n {
		m = n
	}
	for i := 0; i < m; i++ {
		out[i] = complex128(in[i])
	}
	FFT(out)
	return out
}

// PowerSpectrum writes |X[k]|^2 for each FFT bin of x into out (which must
// have len(x) capacity) and returns it. x is destroyed (transformed in
// place).
func PowerSpectrum(x []complex128, out []float64) []float64 {
	FFT(x)
	out = out[:len(x)]
	for i, v := range x {
		out[i] = real(v)*real(v) + imag(v)*imag(v)
	}
	return out
}

// BinPowers computes the total power in nbins equal slices of the spectrum
// of block, arranged so that bin 0 is the lowest frequency of the monitored
// band and bin nbins-1 the highest (i.e. the FFT output is fftshift-ed
// before binning). fftSize must be a power of two >= len(block) is not
// required — the block is truncated or zero-padded.
//
// This is the workhorse of the Bluetooth frequency detector: with an 8 MHz
// band and 8 bins, each bin is one 1 MHz Bluetooth channel.
func BinPowers(block []complex64, fftSize, nbins int) []float64 {
	x := FFT64(block, fftSize)
	bins := make([]float64, nbins)
	// fftshift: negative frequencies (second half of FFT output) come first.
	for k := 0; k < fftSize; k++ {
		shifted := (k + fftSize/2) % fftSize
		p := real(x[shifted])*real(x[shifted]) + imag(x[shifted])*imag(x[shifted])
		b := k * nbins / fftSize
		bins[b] += p
	}
	return bins
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(n - 1)))
}
