package dsp

import (
	"math"
)

// grow resizes out to n entries, reallocating only when the capacity is
// insufficient (callers pass reusable scratch buffers on hot paths).
func grow(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

// PhaseOf returns the instantaneous phase of a complex64 sample in
// radians, in (-pi, pi].
func PhaseOf(s complex64) float64 {
	return math.Atan2(float64(imag(s)), float64(real(s)))
}

// WrapPhase wraps an angle into (-pi, pi].
func WrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// PhaseDiff computes the wrapped phase difference between consecutive
// samples of block, i.e. the first derivative of phase scaled by the
// sample period. out[i] = arg(block[i+1] * conj(block[i])), one entry per
// adjacent pair (len(block)-1 values).
//
// Computing the difference via complex conjugate multiplication (one
// complex multiply plus one arctan per sample, exactly as the paper's
// Bluetooth detector costs it in Section 4.5) avoids explicit unwrapping.
func PhaseDiff(block []complex64, out []float64) []float64 {
	if len(block) < 2 {
		return out[:0]
	}
	out = grow(out, len(block)-1)
	for i := 0; i+1 < len(block); i++ {
		a := block[i]
		b := block[i+1]
		// b * conj(a)
		re := float64(real(b))*float64(real(a)) + float64(imag(b))*float64(imag(a))
		im := float64(imag(b))*float64(real(a)) - float64(real(b))*float64(imag(a))
		out[i] = math.Atan2(im, re)
	}
	return out
}

// CosPhaseDiff computes cos(arg(block[i+1] * conj(block[i]))) — the
// cosine of the adjacent-sample phase difference — without any
// transcendental call: cos(atan2(im, re)) is just re/sqrt(re²+im²).
// It produces exactly what the 802.11b signature correlator consumes
// (PhaseDiff followed by a per-sample cos), at a fraction of the cost.
// A zero product (either sample zero) yields 1, matching
// cos(atan2(0, 0)) = cos(0) on the direct path.
func CosPhaseDiff(block []complex64, out []float32) []float32 {
	if len(block) < 2 {
		return out[:0]
	}
	out = growF32(out, len(block)-1)
	for i := 0; i+1 < len(block); i++ {
		a := block[i]
		b := block[i+1]
		// b * conj(a)
		re := float64(real(b))*float64(real(a)) + float64(imag(b))*float64(imag(a))
		im := float64(imag(b))*float64(real(a)) - float64(real(b))*float64(imag(a))
		n2 := re*re + im*im
		if n2 == 0 {
			out[i] = 1
			continue
		}
		out[i] = float32(re / math.Sqrt(n2))
	}
	return out
}

// FastPhaseDiff is PhaseDiff with the library atan2 replaced by a
// table-anchored approximation (fastAtan2, absolute error under 1e-10
// rad). It is the FM-discriminator variant the FFT demod path uses: the
// Bluetooth slicer compares each difference against a moving average
// with margins of ~0.1 rad at the narrowest, nine orders of magnitude
// above the approximation error.
//
// The loop runs in two passes over L1-sized chunks — conjugate products
// into stack scratch, then the atan2 sweep — because feeding each
// product straight into the (non-inlined) fastAtan2 call measures ~3×
// slower than the split: with the product chain fused in, the core
// stops overlapping iterations across the call and every sample pays
// the full serial latency of both chains.
func FastPhaseDiff(block []complex64, out []float64) []float64 {
	if len(block) < 2 {
		return out[:0]
	}
	n := len(block) - 1
	out = grow(out, n)
	var res, ims [512]float64
	for base := 0; base < n; base += len(res) {
		m := n - base
		if m > len(res) {
			m = len(res)
		}
		for j := 0; j < m; j++ {
			a := block[base+j]
			b := block[base+j+1]
			// b * conj(a)
			res[j] = float64(real(b))*float64(real(a)) + float64(imag(b))*float64(imag(a))
			ims[j] = float64(imag(b))*float64(real(a)) - float64(real(b))*float64(imag(a))
		}
		for j := 0; j < m; j++ {
			out[base+j] = fastAtan2(ims[j], res[j])
		}
	}
	return out
}

const pi2 = math.Pi / 2

// atanTable[j] = atan(j/64) for the table-driven reduction below.
var atanTable = func() (t [65]float64) {
	for j := range t {
		t[j] = math.Atan(float64(j) / 64)
	}
	return
}()

// fastAtan2 approximates math.Atan2 for finite inputs to within 1e-11
// radians, built to run branch-free on the random-sign data an FM
// discriminator feeds it (the octant branches of a textbook atan2
// mispredict half the time there, which costs more than the math):
//
//   - octant fold to t = min/max in [0, 1] via a conditional swap
//   - table anchor: atan(t) = atan(j/64) + atan(u) with j = round(64t)
//     and u = (t - j/64)/(1 + t·j/64), so |u| <= 1/128 and two Taylor
//     terms bound the truncation error by u^5/5 < 2^-35/5
//   - the three sign/quadrant corrections applied as copysign-selected
//     multiply-adds instead of branches
//
// Like math.Atan2(0, 0) it returns 0 at the origin.
func fastAtan2(y, x float64) float64 {
	// min/max fold on the bit patterns: for non-negative floats IEEE
	// order is integer order, and the integer swap compiles to CMOV
	// instead of a coin-flip branch.
	const signMask = 1 << 63
	bax := math.Float64bits(x) &^ signMask
	bay := math.Float64bits(y) &^ signMask
	bn, bd := bay, bax
	if bn > bd {
		bn, bd = bd, bn
	}
	if bd == 0 {
		return 0
	}
	num := math.Float64frombits(bn)
	den := math.Float64frombits(bd)

	// The anchor index only needs num/den to ~1e-2 relative (an off-by-
	// one j still satisfies the identity below, it just widens |u|), so
	// a float32 divide picks it and the full-precision divider is paid
	// exactly once, inside u. The identity is exact:
	//   atan(num/den) = atan(tj) + atan(u),
	//   u = (num/den - tj)/(1 + (num/den)·tj) = (num - tj·den)/(den + tj·num)
	j := int(float32(num)/float32(den)*64 + 0.5)
	if uint(j) > 64 {
		// |x| or |y| outside float32 range made the estimate garbage;
		// redo the index at full precision.
		j = int(num/den*64 + 0.5)
	}
	tj := float64(j) * (1.0 / 64)
	u := (num - tj*den) / (den + tj*num)
	z := u * u
	base := atanTable[j] + u*(1+z*(-1.0/3+z*(1.0/5)))

	// swap: r = pi/2 - base; x < 0: r = pi - r; y < 0: r = -r — all as
	// copysign-driven selects (ax - ay is never -0 here, so s1 is +1 on
	// the tie, matching the strict bn > bd swap above).
	s1 := math.Copysign(1, math.Float64frombits(bax)-math.Float64frombits(bay))
	s2 := math.Copysign(1, x)
	s3 := math.Copysign(1, y)
	r := (math.Pi/4)*(1-s1) + s1*base
	r = (math.Pi/2)*(1-s2) + s2*r
	return s3 * r
}

// SecondDiff computes out[i] = WrapPhase(d[i+1]-d[i]) for a first-derivative
// sequence d, producing len(d)-1 values: the second derivative of phase.
// GFSK (continuous-phase, Gaussian-smoothed) signals have a second
// derivative near zero, which is the Bluetooth phase detector's test.
func SecondDiff(d, out []float64) []float64 {
	if len(d) < 2 {
		return out[:0]
	}
	out = grow(out, len(d)-1)
	for i := 0; i+1 < len(d); i++ {
		out[i] = WrapPhase(d[i+1] - d[i])
	}
	return out
}

// Unwrap produces a continuous phase sequence from wrapped phases by
// removing 2*pi jumps. Returns a new slice.
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	for i := 1; i < len(phases); i++ {
		d := WrapPhase(phases[i] - phases[i-1])
		out[i] = out[i-1] + d
	}
	return out
}

// MeanAbs returns the mean absolute value of xs (0 for empty input).
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += math.Abs(v)
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// CircularMean returns the circular mean of a set of angles, which is the
// right way to average phases near the wrap point.
func CircularMean(angles []float64) float64 {
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	return math.Atan2(sy, sx)
}

// PhaseHistogram bins wrapped angles into nbins equal bins over (-pi, pi]
// and returns the counts. This implements the constellation estimator of
// paper Figure 4: "computing a phase histogram with some number of bins,
// and making sure the appropriate bins are filled while others are empty".
func PhaseHistogram(angles []float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins <= 0 {
		return counts
	}
	for _, a := range angles {
		w := WrapPhase(a)
		// Map (-pi, pi] to [0, nbins).
		f := (w + math.Pi) / (2 * math.Pi)
		idx := int(f * float64(nbins))
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts
}

// DominantBins returns the indices of histogram bins holding at least
// frac of the total count, sorted ascending. A PSK constellation with M
// points concentrates symbol-transition phases into M (differential) or
// 2M (offset) bins; counting the dominant bins estimates M.
func DominantBins(counts []int, frac float64) []int {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	var out []int
	for i, c := range counts {
		if float64(c) >= frac*float64(total) {
			out = append(out, i)
		}
	}
	return out
}
