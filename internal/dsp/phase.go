package dsp

import (
	"math"
)

// grow resizes out to n entries, reallocating only when the capacity is
// insufficient (callers pass reusable scratch buffers on hot paths).
func grow(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

// PhaseOf returns the instantaneous phase of a complex64 sample in
// radians, in (-pi, pi].
func PhaseOf(s complex64) float64 {
	return math.Atan2(float64(imag(s)), float64(real(s)))
}

// WrapPhase wraps an angle into (-pi, pi].
func WrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// PhaseDiff computes the wrapped phase difference between consecutive
// samples of block, i.e. the first derivative of phase scaled by the
// sample period. out[i] = arg(block[i+1] * conj(block[i])), one entry per
// adjacent pair (len(block)-1 values).
//
// Computing the difference via complex conjugate multiplication (one
// complex multiply plus one arctan per sample, exactly as the paper's
// Bluetooth detector costs it in Section 4.5) avoids explicit unwrapping.
func PhaseDiff(block []complex64, out []float64) []float64 {
	if len(block) < 2 {
		return out[:0]
	}
	out = grow(out, len(block)-1)
	for i := 0; i+1 < len(block); i++ {
		a := block[i]
		b := block[i+1]
		// b * conj(a)
		re := float64(real(b))*float64(real(a)) + float64(imag(b))*float64(imag(a))
		im := float64(imag(b))*float64(real(a)) - float64(real(b))*float64(imag(a))
		out[i] = math.Atan2(im, re)
	}
	return out
}

// SecondDiff computes out[i] = WrapPhase(d[i+1]-d[i]) for a first-derivative
// sequence d, producing len(d)-1 values: the second derivative of phase.
// GFSK (continuous-phase, Gaussian-smoothed) signals have a second
// derivative near zero, which is the Bluetooth phase detector's test.
func SecondDiff(d, out []float64) []float64 {
	if len(d) < 2 {
		return out[:0]
	}
	out = grow(out, len(d)-1)
	for i := 0; i+1 < len(d); i++ {
		out[i] = WrapPhase(d[i+1] - d[i])
	}
	return out
}

// Unwrap produces a continuous phase sequence from wrapped phases by
// removing 2*pi jumps. Returns a new slice.
func Unwrap(phases []float64) []float64 {
	out := make([]float64, len(phases))
	if len(phases) == 0 {
		return out
	}
	out[0] = phases[0]
	for i := 1; i < len(phases); i++ {
		d := WrapPhase(phases[i] - phases[i-1])
		out[i] = out[i-1] + d
	}
	return out
}

// MeanAbs returns the mean absolute value of xs (0 for empty input).
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += math.Abs(v)
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// CircularMean returns the circular mean of a set of angles, which is the
// right way to average phases near the wrap point.
func CircularMean(angles []float64) float64 {
	var sx, sy float64
	for _, a := range angles {
		sx += math.Cos(a)
		sy += math.Sin(a)
	}
	return math.Atan2(sy, sx)
}

// PhaseHistogram bins wrapped angles into nbins equal bins over (-pi, pi]
// and returns the counts. This implements the constellation estimator of
// paper Figure 4: "computing a phase histogram with some number of bins,
// and making sure the appropriate bins are filled while others are empty".
func PhaseHistogram(angles []float64, nbins int) []int {
	counts := make([]int, nbins)
	if nbins <= 0 {
		return counts
	}
	for _, a := range angles {
		w := WrapPhase(a)
		// Map (-pi, pi] to [0, nbins).
		f := (w + math.Pi) / (2 * math.Pi)
		idx := int(f * float64(nbins))
		if idx >= nbins {
			idx = nbins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts
}

// DominantBins returns the indices of histogram bins holding at least
// frac of the total count, sorted ascending. A PSK constellation with M
// points concentrates symbol-transition phases into M (differential) or
// 2M (offset) bins; counting the dominant bins estimates M.
func DominantBins(counts []int, frac float64) []int {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	var out []int
	for i, c := range counts {
		if float64(c) >= frac*float64(total) {
			out = append(out, i)
		}
	}
	return out
}
