package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// FFTPlan is a precomputed float32 FFT of one power-of-two size: the
// input permutation and per-stage twiddle tables are baked once per
// size and shared process-wide, so steady-state transforms are
// zero-alloc. The transform is out-of-place — the decimation-in-time
// reordering is applied while copying the input, which costs nothing
// extra — and the butterflies run radix-4 with a single leading radix-2
// stage when log2(n) is odd. Twiddles are stored per stage as
// contiguous (w¹, w², w³) triples so the hot loop streams them in
// order instead of gathering strided entries from one big table.
//
// A plan holds no mutable state and is safe for concurrent use; callers
// own the dst/src buffers.
type FFTPlan struct {
	n     int
	log2n int
	perm  []int32 // dst[i] reads src[perm[i]]
	st    []fftStage
}

// fftStage is one radix-4 pass: q = size/4 butterflies per block, tw
// holds q interleaved (w¹, w², w³) twiddle triples.
type fftStage struct {
	q  int
	tw []complex64
}

var fftPlans sync.Map // int -> *FFTPlan

// PlanFFT returns the shared plan for power-of-two size n.
func PlanFFT(n int) *FFTPlan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("dsp: PlanFFT size %d is not a power of two", n))
	}
	if v, ok := fftPlans.Load(n); ok {
		return v.(*FFTPlan)
	}
	p := &FFTPlan{n: n, log2n: bits.TrailingZeros(uint(n))}
	p.perm = buildFFTPerm(n)
	size := 4
	if p.log2n&1 == 1 {
		size = 8 // the radix-2 stage handles size 2
	}
	for ; size <= n; size <<= 2 {
		q := size >> 2
		st := fftStage{q: q, tw: make([]complex64, 3*q)}
		for k := 0; k < q; k++ {
			for m := 1; m <= 3; m++ {
				a := -2 * math.Pi * float64(m*k) / float64(size)
				st.tw[3*k+m-1] = complex(float32(math.Cos(a)), float32(math.Sin(a)))
			}
		}
		p.st = append(p.st, st)
	}
	v, _ := fftPlans.LoadOrStore(n, p)
	return v.(*FFTPlan)
}

// buildFFTPerm computes the mixed radix-4/2 decimation-in-time input
// ordering: recursively, each size-n block splits into its r decimated
// subsequences (r = 4 while 4 | n, else 2), laid out contiguously.
func buildFFTPerm(n int) []int32 {
	perm := make([]int32, n)
	var rec func(out []int32, start, stride, n int)
	rec = func(out []int32, start, stride, n int) {
		if n == 1 {
			out[0] = int32(start)
			return
		}
		r := 4
		if n%4 != 0 {
			r = 2
		}
		m := n / r
		for c := 0; c < r; c++ {
			rec(out[c*m:(c+1)*m], start+c*stride, stride*r, m)
		}
	}
	rec(perm, 0, 1, n)
	return perm
}

// Size returns the transform length.
func (p *FFTPlan) Size() int { return p.n }

// Forward computes dst = FFT(src). len(dst) must equal the plan size;
// src may be shorter (zero-padded) and must not partially alias dst.
func (p *FFTPlan) Forward(dst, src []complex64) {
	p.load(dst, src, false)
	p.stages(dst)
}

// Inverse computes dst = IFFT(src) including the 1/n scale, via the
// conjugation identity so forward and inverse share one twiddle table.
func (p *FFTPlan) Inverse(dst, src []complex64) {
	p.load(dst, src, true)
	p.inverseTail(dst)
}

// inverseTail finishes an inverse transform whose input was staged
// conjugate-permuted into x (by load or by a caller fusing its own
// spectrum math into the staging pass): butterflies, then the combined
// conjugate and 1/n scale.
func (p *FFTPlan) inverseTail(x []complex64) {
	p.stages(x)
	inv := 1 / float32(p.n)
	for i := range x {
		x[i] = complex(real(x[i])*inv, -imag(x[i])*inv)
	}
}

func (p *FFTPlan) load(dst, src []complex64, conj bool) {
	if len(dst) != p.n {
		panic(fmt.Sprintf("dsp: FFTPlan dst length %d, plan size %d", len(dst), p.n))
	}
	if len(src) > p.n {
		panic(fmt.Sprintf("dsp: FFTPlan src length %d exceeds plan size %d", len(src), p.n))
	}
	perm := p.perm
	switch {
	case !conj && len(src) == p.n:
		for i, s := range perm {
			dst[i] = src[s]
		}
	case !conj:
		for i, s := range perm {
			if int(s) < len(src) {
				dst[i] = src[s]
			} else {
				dst[i] = 0
			}
		}
	case len(src) == p.n:
		for i, s := range perm {
			v := src[s]
			dst[i] = complex(real(v), -imag(v))
		}
	default:
		for i, s := range perm {
			if int(s) < len(src) {
				v := src[s]
				dst[i] = complex(real(v), -imag(v))
			} else {
				dst[i] = 0
			}
		}
	}
}

// stages runs the in-place butterfly passes over permuted data.
func (p *FFTPlan) stages(x []complex64) {
	n := p.n
	if n < 2 {
		return
	}
	if p.log2n&1 == 1 {
		// One radix-2 stage brings the remaining depth to a multiple of 2.
		for i := 0; i < n; i += 2 {
			a, b := x[i], x[i+1]
			x[i], x[i+1] = a+b, a-b
		}
	}
	// The butterflies spell out float32 arithmetic instead of using
	// complex64 operators: gc computes complex64 multiplies through
	// float64 intermediates, which more than doubles the cost of the
	// hot loop for no accuracy the transform needs.
	for si := range p.st {
		st := &p.st[si]
		q := st.q
		size := q << 2
		tws := st.tw
		for base := 0; base < n; base += size {
			b0 := x[base : base+q : base+q]
			b1 := x[base+q : base+2*q : base+2*q]
			b2 := x[base+2*q : base+3*q : base+3*q]
			b3 := x[base+3*q : base+size : base+size]
			ti := 0
			for k := 0; k < q; k++ {
				w1 := tws[ti]
				w2 := tws[ti+1]
				w3 := tws[ti+2]
				ti += 3
				x1, x2, x3 := b1[k], b2[k], b3[k]
				y1r := real(x1)*real(w1) - imag(x1)*imag(w1)
				y1i := real(x1)*imag(w1) + imag(x1)*real(w1)
				y2r := real(x2)*real(w2) - imag(x2)*imag(w2)
				y2i := real(x2)*imag(w2) + imag(x2)*real(w2)
				y3r := real(x3)*real(w3) - imag(x3)*imag(w3)
				y3i := real(x3)*imag(w3) + imag(x3)*real(w3)
				x0 := b0[k]
				t0r, t0i := real(x0)+y2r, imag(x0)+y2i
				t1r, t1i := real(x0)-y2r, imag(x0)-y2i
				t2r, t2i := y1r+y3r, y1i+y3i
				// t3 = -i * (y1 - y3)
				dr, di := y1r-y3r, y1i-y3i
				b0[k] = complex(t0r+t2r, t0i+t2i)
				b1[k] = complex(t1r+di, t1i-dr)
				b2[k] = complex(t0r-t2r, t0i-t2i)
				b3[k] = complex(t1r-di, t1i+dr)
			}
		}
	}
}
