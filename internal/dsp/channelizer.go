package dsp

import (
	"fmt"
	"math"
)

// ChannelizerConfig describes a uniform channel bank: Channels evenly
// spaced channels centered on the capture band, each mixed to baseband
// and low-pass filtered by Taps, optionally decimated by Decim.
//
// Channel ch sits at offset (ch - (Channels-1)/2) * SpacingHz from the
// band center, matching the per-channel iq.FrequencyShift(-offset)
// convention of the direct demod path.
type ChannelizerConfig struct {
	Taps      []float64
	Channels  int
	SpacingHz float64
	RateHz    float64
	// BlockLen is the FFT size (power of two, 0 = auto).
	BlockLen int
	// Decim keeps every Decim-th output sample (0 or 1 = full rate).
	Decim int
}

// Channelizer extracts every channel of a uniform bank from one forward
// transform per input segment: the segment spectrum is computed once,
// then each channel is a circular spectrum rotation (the mixer, by the
// shift theorem), a multiply against the shared frequency-domain filter
// bank, and one small inverse transform. Against C per-channel
// mix+filter passes this turns C·ntaps multiplies per sample into
// roughly log2(N) + C·log2(N)/step — with the forward FFT amortized
// across all channels, exactly the "one transform instead of
// per-channel mixing" batching the monitor's Bluetooth stage needs.
//
// Output semantics per channel match the direct reference chain
//
//	mix: FrequencyShift(-offsetHz) → filter: FIR.ApplyInto → Decimate
//
// with exact integer phase bookkeeping (each hop's mixer phase is
// corrected by a constant rotation computed in integer modular
// arithmetic, so there is no accumulated drift over long inputs).
//
// A Channelizer owns scratch and is not safe for concurrent use.
type Channelizer struct {
	cfg   ChannelizerConfig
	plan  *FFTPlan // size N forward
	iplan *FFTPlan // size N/Decim inverse
	bank  *FilterBank
	bins  []int // per-channel spectrum rotation, in [0, N)
	pad   int   // left history: ntaps-1 rounded up to a Decim multiple
	step  int   // fresh input consumed per hop (Decim multiple)

	spec  []complex64   // N-point forward spectrum of the current segment
	seg   []complex64   // N-point input staging (edge hops)
	zspec []complex64   // rotated/filtered/folded spectrum (N/Decim)
	chseg []complex64   // channel time segment (N/Decim)
	bufs  [][]complex64 // per-channel outputs for ExtractAll
}

// NewChannelizer validates the configuration and builds the bank. It
// returns an error when the channel offsets do not land on integer FFT
// bins (offset*BlockLen/RateHz must be integral for every channel — the
// caller can usually pick a larger BlockLen).
func NewChannelizer(cfg ChannelizerConfig) (*Channelizer, error) {
	if cfg.Channels < 1 {
		return nil, fmt.Errorf("dsp: channelizer needs at least 1 channel, got %d", cfg.Channels)
	}
	if len(cfg.Taps) == 0 {
		return nil, fmt.Errorf("dsp: channelizer needs filter taps")
	}
	if cfg.RateHz <= 0 {
		return nil, fmt.Errorf("dsp: channelizer rate %v invalid", cfg.RateHz)
	}
	if cfg.Decim == 0 {
		cfg.Decim = 1
	}
	if cfg.Decim < 1 {
		return nil, fmt.Errorf("dsp: channelizer decimation %d invalid", cfg.Decim)
	}
	ntaps := len(cfg.Taps)
	if cfg.BlockLen == 0 {
		cfg.BlockLen = NextPow2(8 * ntaps)
		if cfg.BlockLen < 512 {
			cfg.BlockLen = 512
		}
	}
	N := cfg.BlockLen
	if !IsPow2(N) {
		return nil, fmt.Errorf("dsp: channelizer BlockLen %d is not a power of two", N)
	}
	if N%cfg.Decim != 0 || !IsPow2(N/cfg.Decim) {
		return nil, fmt.Errorf("dsp: channelizer BlockLen %d not divisible into power-of-two by Decim %d", N, cfg.Decim)
	}

	pad := ntaps - 1
	if r := pad % cfg.Decim; r != 0 {
		pad += cfg.Decim - r
	}
	step := N - pad
	step -= step % cfg.Decim
	if step < cfg.Decim {
		return nil, fmt.Errorf("dsp: channelizer BlockLen %d too small for %d taps at decim %d", N, ntaps, cfg.Decim)
	}

	bins := make([]int, cfg.Channels)
	for ch := 0; ch < cfg.Channels; ch++ {
		offset := (float64(ch) - float64(cfg.Channels-1)/2) * cfg.SpacingHz
		fb := offset * float64(N) / cfg.RateHz
		b := math.Round(fb)
		if math.Abs(fb-b) > 1e-6 {
			return nil, fmt.Errorf("dsp: channel %d offset %v Hz is %.4f bins at BlockLen %d — not integral", ch, offset, fb, N)
		}
		bins[ch] = ((int(b) % N) + N) % N
	}

	M := N / cfg.Decim
	return &Channelizer{
		cfg:   cfg,
		plan:  PlanFFT(N),
		iplan: PlanFFT(M),
		bank:  loadBank(cfg.Taps, nil, N),
		bins:  bins,
		pad:   pad,
		step:  step,
		spec:  make([]complex64, N),
		seg:   make([]complex64, N),
		zspec: make([]complex64, M),
		chseg: make([]complex64, M),
	}, nil
}

// Channels returns the configured channel count.
func (c *Channelizer) Channels() int { return c.cfg.Channels }

// Decim returns the output decimation factor.
func (c *Channelizer) Decim() int { return c.cfg.Decim }

// OutLen returns the output length for an input of n samples.
func (c *Channelizer) OutLen(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + c.cfg.Decim - 1) / c.cfg.Decim
}

// Extract mixes, filters, and decimates channel ch of in into dst's
// storage and returns the result (length OutLen(len(in))). dst must not
// alias in.
func (c *Channelizer) Extract(dst, in []complex64, ch int) []complex64 {
	if ch < 0 || ch >= c.cfg.Channels {
		panic(fmt.Sprintf("dsp: channelizer channel %d out of range [0,%d)", ch, c.cfg.Channels))
	}
	dst = growC64(dst, c.OutLen(len(in)))
	for p := 0; p < len(in); p += c.step {
		c.forward(in, p)
		c.channelHop(dst, len(in), p, ch)
	}
	return dst
}

// ExtractAll computes every channel, sharing one forward transform per
// hop across the whole bank, and calls visit once per channel in
// ascending order. The visited slice is scratch owned by the
// channelizer, valid only during the call.
func (c *Channelizer) ExtractAll(in []complex64, visit func(ch int, out []complex64)) {
	outLen := c.OutLen(len(in))
	if cap(c.bufs) < c.cfg.Channels {
		c.bufs = make([][]complex64, c.cfg.Channels)
	}
	c.bufs = c.bufs[:c.cfg.Channels]
	for ch := range c.bufs {
		c.bufs[ch] = growC64(c.bufs[ch], outLen)
	}
	for p := 0; p < len(in); p += c.step {
		c.forward(in, p)
		for ch := 0; ch < c.cfg.Channels; ch++ {
			c.channelHop(c.bufs[ch], len(in), p, ch)
		}
	}
	for ch := 0; ch < c.cfg.Channels; ch++ {
		visit(ch, c.bufs[ch][:outLen])
	}
}

// forward computes the N-point spectrum of the segment whose fresh
// samples start at input offset p (history pad before, zero-padded at
// the edges).
func (c *Channelizer) forward(in []complex64, p int) {
	N := c.plan.n
	lo := p - c.pad
	if lo >= 0 && lo+N <= len(in) {
		c.plan.Forward(c.spec, in[lo:lo+N])
		return
	}
	seg := c.seg[:N]
	a, b := lo, lo+N
	if a < 0 {
		a = 0
	}
	if b > len(in) {
		b = len(in)
	}
	for j := 0; j < a-lo; j++ {
		seg[j] = 0
	}
	if b > a {
		copy(seg[a-lo:], in[a:b])
	}
	for j := b - lo; j < N; j++ {
		seg[j] = 0
	}
	c.plan.Forward(c.spec, seg)
}

// channelHop produces one hop of one channel from the current spectrum:
// rotate the spectrum by the channel's mixer bins, multiply the filter
// bank, fold for decimation, inverse-transform, and store the valid
// (fully-overlapped) region into dst.
func (c *Channelizer) channelHop(dst []complex64, n, p, ch int) {
	N := c.plan.n
	D := c.cfg.Decim
	M := N / D
	mask := N - 1
	b := c.bins[ch]

	// The segment-local mixer e^{-2πi·b·j/N} differs from the global
	// mixer e^{-2πi·b·(lo+j)/N} by the constant e^{+2πi·b·lo/N}; undo it
	// with one rotation folded into the spectrum multiply. b·lo is exact
	// in integers, so hops never accumulate phase error.
	lo := p - c.pad
	r := ((b*lo)%N + N) % N
	a := -2 * math.Pi * float64(r) / float64(N)
	rot := complex(float32(math.Cos(a)), float32(math.Sin(a)))

	h := c.bank.h
	spec := c.spec
	chseg := c.chseg[:M]
	if D == 1 {
		// Fuse mixer rotation and filter multiply into the inverse's
		// conjugate-permuted staging pass (iplan is plan at D=1), with
		// the complex products spelled out in float32 (see
		// FFTPlan.stages).
		rr, ri := real(rot), imag(rot)
		for i, s := range c.iplan.perm {
			f, g := spec[(int(s)+b)&mask], h[s]
			vr := real(f)*real(g) - imag(f)*imag(g)
			vi := real(f)*imag(g) + imag(f)*real(g)
			chseg[i] = complex(vr*rr-vi*ri, -(vr*ri + vi*rr))
		}
		c.iplan.inverseTail(chseg)
	} else {
		zspec := c.zspec[:M]
		// Decimation in time is aliasing in frequency: fold the N-point
		// product into M bins (sum of the D spectral images, scaled 1/D).
		inv := complex(1/float32(D), 0) * rot
		for k := 0; k < M; k++ {
			var acc complex64
			for d := 0; d < D; d++ {
				kk := k + d*M
				acc += spec[(kk+b)&mask] * h[kk]
			}
			zspec[k] = acc * inv
		}
		c.iplan.Inverse(chseg, zspec)
	}

	// Valid outputs: segment times j in [pad, pad+step), which are the
	// decimated points m = j/D (pad and step are Decim multiples, and so
	// is every hop offset, so global kept indices stay on the 0, D, 2D…
	// grid of dsp.Decimate).
	for m := c.pad / D; m < (c.pad+c.step)/D; m++ {
		g := lo + m*D
		if g >= n {
			break
		}
		dst[g/D] = chseg[m]
	}
}
