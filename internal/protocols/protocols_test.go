package protocols

import (
	"strings"
	"testing"
	"time"
)

func TestStringNames(t *testing.T) {
	cases := map[ID]string{
		WiFi80211b1M:  "802.11b/1Mbps",
		WiFi80211b11M: "802.11b/11Mbps",
		Bluetooth:     "Bluetooth",
		ZigBee:        "ZigBee",
		Microwave:     "Microwave",
		Unknown:       "unknown",
		ID(999):       "unknown",
	}
	for id, want := range cases {
		if got := id.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", id, got, want)
		}
	}
}

func TestFamily(t *testing.T) {
	for _, id := range []ID{WiFi80211b1M, WiFi80211b2M, WiFi80211b5M5, WiFi80211b11M} {
		if id.Family() != WiFi80211b1M {
			t.Errorf("%v.Family() = %v", id, id.Family())
		}
		if id.FamilyName() != "802.11b" {
			t.Errorf("%v.FamilyName() = %q", id, id.FamilyName())
		}
	}
	// 802.11g OFDM is its own family (detected by the OFDM extension).
	if WiFi80211g.Family() != WiFi80211g || WiFi80211g.FamilyName() != "802.11g" {
		t.Error("802.11g family")
	}
	if Bluetooth.Family() != Bluetooth {
		t.Error("BT family")
	}
	if Unknown.FamilyName() != "unknown" {
		t.Error("unknown family name")
	}
}

func TestDerivedTimingConstants(t *testing.T) {
	// DIFS = SIFS + 2*SlotTime (paper Section 4.4).
	if WiFiDIFS != WiFiSIFS+2*WiFiSlotTime {
		t.Errorf("DIFS = %v", WiFiDIFS)
	}
	if WiFiDIFS != 50*time.Microsecond {
		t.Errorf("DIFS = %v, want 50us", WiFiDIFS)
	}
	// Bluetooth: 1600 hops/s.
	if time.Second/BTSlot != 1600 {
		t.Errorf("hops/s = %v", time.Second/BTSlot)
	}
	// Microwave 60 Hz.
	if MicrowaveACPeriodUS < 16*time.Millisecond || MicrowaveACPeriodUS > 17*time.Millisecond {
		t.Errorf("AC period = %v", MicrowaveACPeriodUS)
	}
}

func TestTable2Complete(t *testing.T) {
	rows := Table2()
	if len(rows) != 8 {
		t.Fatalf("Table 2 has %d rows, want 8", len(rows))
	}
	seen := map[ID]bool{}
	for _, f := range rows {
		if seen[f.Proto] {
			t.Errorf("duplicate row %v", f.Proto)
		}
		seen[f.Proto] = true
		if f.ChannelWidthHz <= 0 {
			t.Errorf("%v has no channel width", f.Proto)
		}
	}
	// The protocols the paper's prototype detects must be present.
	for _, id := range []ID{WiFi80211b1M, Bluetooth, Microwave, ZigBee} {
		if !seen[id] {
			t.Errorf("missing %v", id)
		}
	}
}

func TestLookup(t *testing.T) {
	f, ok := Lookup(Bluetooth)
	if !ok || f.Mod != ModGFSK || f.Spreading != "FHSS" {
		t.Errorf("Bluetooth row = %+v ok=%v", f, ok)
	}
	if _, ok := Lookup(Unknown); ok {
		t.Error("Lookup(Unknown) should fail")
	}
}

func TestRateBPS(t *testing.T) {
	cases := map[ID]int{
		WiFi80211b1M:  1_000_000,
		WiFi80211b2M:  2_000_000,
		WiFi80211b5M5: 5_500_000,
		WiFi80211b11M: 11_000_000,
		Bluetooth:     1_000_000,
		ZigBee:        250_000,
		Microwave:     0,
	}
	for id, want := range cases {
		if got := RateBPS(id); got != want {
			t.Errorf("RateBPS(%v) = %d, want %d", id, got, want)
		}
	}
}

func TestModulationString(t *testing.T) {
	if ModDBPSK.String() != "DBPSK" || ModGFSK.String() != "GFSK" || Modulation(99).String() != "unknown" {
		t.Error("modulation names")
	}
}

func TestFormatTable2(t *testing.T) {
	out := FormatTable2()
	for _, want := range []string{"802.11b/1Mbps", "Bluetooth", "GFSK", "Barker", "625", "FHSS"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q", want)
		}
	}
}
