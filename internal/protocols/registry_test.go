package protocols

import (
	"strings"
	"testing"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// stubBlock is a minimal flowgraph.Block for detector specs under test.
type stubBlock struct{ name string }

func (b stubBlock) Name() string                                       { return b.name }
func (b stubBlock) Process(flowgraph.Item, func(flowgraph.Item)) error { return nil }
func (b stubBlock) Flush(func(flowgraph.Item)) error                   { return nil }

func stubSpec(name string, class FeatureClass, def bool) DetectorSpec {
	return DetectorSpec{
		Name:    name,
		Class:   class,
		Default: def,
		New:     func(DetectorEnv) flowgraph.Block { return stubBlock{name} },
	}
}

// The registry is process-global; this test binary registers a small
// fake protocol set once and every test reads it. Keys are prefixed to
// make collisions with real modules impossible.
var (
	testAlpha = MustRegister(&Module{ID: WiFi80211b1M, Key: "talpha", Label: "Alpha", Aliases: []string{"ta"}})
	testBeta  = MustRegister(&Module{ID: Bluetooth, Key: "tbeta"})
)

func init() {
	testAlpha.MustAddDetector(stubSpec("talpha-timing", ClassTiming, true))
	testAlpha.MustAddDetector(stubSpec("talpha-phase", ClassPhase, true))
	testBeta.MustAddDetector(stubSpec("tbeta-timing", ClassTiming, true))
	testBeta.MustAddDetector(stubSpec("tbeta-freq", ClassFreq, false))
}

func specNames(specs []DetectorSpec) []string {
	var out []string
	for _, s := range specs {
		out = append(out, s.Name)
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRegisterValidation(t *testing.T) {
	if _, err := Register(&Module{ID: ZigBee}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Register(&Module{Key: "tgamma"}); err == nil {
		t.Error("Unknown ID accepted")
	}
	if _, err := Register(&Module{ID: ZigBee, Key: "talpha"}); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := Register(&Module{ID: ZigBee, Key: "tgamma", Aliases: []string{"ta"}}); err == nil {
		t.Error("duplicate alias accepted")
	}
	if _, err := Register(&Module{ID: ZigBee, Key: "timing"}); err == nil {
		t.Error("selector-keyword key accepted")
	}
	if _, err := Register(&Module{ID: ZigBee, Key: "tgamma", Aliases: []string{"all"}}); err == nil {
		t.Error("selector-keyword alias accepted")
	}
	// WiFi80211b11M shares testAlpha's family.
	if _, err := Register(&Module{ID: WiFi80211b11M, Key: "tdelta"}); err == nil {
		t.Error("duplicate family accepted")
	}
}

func TestAddDetectorValidation(t *testing.T) {
	if err := testAlpha.AddDetector(DetectorSpec{Name: "", New: stubSpec("x", ClassTiming, false).New}); err == nil {
		t.Error("empty detector name accepted")
	}
	if err := testAlpha.AddDetector(DetectorSpec{Name: "nameless"}); err == nil {
		t.Error("nil factory accepted")
	}
	// Cross-module duplicate name.
	if err := testBeta.AddDetector(stubSpec("talpha-timing", ClassTiming, false)); err == nil {
		t.Error("duplicate detector name accepted")
	}
}

func TestModuleLookup(t *testing.T) {
	if m, ok := ModuleByKey("ta"); !ok || m != testAlpha {
		t.Error("alias lookup failed")
	}
	// Any rate variant maps to the family module.
	if m, ok := ModuleFor(WiFi80211b11M); !ok || m != testAlpha {
		t.Error("family lookup via rate variant failed")
	}
	if testAlpha.Label != "Alpha" {
		t.Errorf("explicit label overwritten: %q", testAlpha.Label)
	}
	if testBeta.Label != "Bluetooth" {
		t.Errorf("label did not default to family name: %q", testBeta.Label)
	}
	if LabelFor(WiFi80211b5M5) != "Alpha" {
		t.Errorf("LabelFor did not use module label: %q", LabelFor(WiFi80211b5M5))
	}
	if LabelFor(ZigBee) != "ZigBee" {
		t.Errorf("LabelFor fallback: %q", LabelFor(ZigBee))
	}
	if s, ok := DetectorByName("tbeta-freq"); !ok || s.Module() != testBeta {
		t.Error("DetectorByName failed or lost module backlink")
	}
}

func TestSelectDetectorsGrammar(t *testing.T) {
	cases := []struct {
		list string
		want []string
	}{
		// Bare classes pick Default specs only (tbeta-freq excluded).
		{"timing", []string{"talpha-timing", "tbeta-timing"}},
		{"timing,phase", []string{"talpha-timing", "tbeta-timing", "talpha-phase"}},
		{"freq", nil}, // no default freq detector -> error
		{"default", []string{"talpha-timing", "tbeta-timing", "talpha-phase"}},
		// Module selectors include non-default specs.
		{"tbeta", []string{"tbeta-timing", "tbeta-freq"}},
		{"tbeta.*", []string{"tbeta-timing", "tbeta-freq"}},
		{"tbeta.freq", []string{"tbeta-freq"}},
		{"ta.phase", []string{"talpha-phase"}},
		{"all", []string{"talpha-timing", "talpha-phase", "tbeta-timing", "tbeta-freq"}},
		// Dedup across selectors, order preserved.
		{"tbeta.freq,timing,tbeta", []string{"tbeta-freq", "talpha-timing", "tbeta-timing"}},
		{" timing , ,", []string{"talpha-timing", "tbeta-timing"}},
	}
	for _, c := range cases {
		specs, err := SelectDetectors(c.list)
		if c.want == nil {
			if err == nil {
				t.Errorf("SelectDetectors(%q): expected error, got %v", c.list, specNames(specs))
			}
			continue
		}
		if err != nil {
			t.Errorf("SelectDetectors(%q): %v", c.list, err)
			continue
		}
		if got := specNames(specs); !equal(got, c.want) {
			t.Errorf("SelectDetectors(%q) = %v, want %v", c.list, got, c.want)
		}
	}

	if _, err := SelectDetectors("list"); err != ErrDetectorList {
		t.Errorf("list selector returned %v", err)
	}
	if _, err := SelectDetectors(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := SelectDetectors("bogus"); err == nil {
		t.Error("unknown selector accepted")
	}
	if _, err := SelectDetectors("tbeta.phase"); err == nil {
		t.Error("missing class within module accepted")
	}
	if _, err := SelectDetectors("tbeta.bogus"); err == nil {
		t.Error("unknown class within module accepted")
	}
}

func TestDetectorSpecBuilds(t *testing.T) {
	env := DetectorEnv{Clock: iq.NewClock(iq.DefaultSampleRate)}
	s, ok := DetectorByName("talpha-timing")
	if !ok {
		t.Fatal("spec not found")
	}
	if b := s.New(env); b.Name() != "talpha-timing" {
		t.Errorf("built block named %q", b.Name())
	}
}

func TestUsageAndList(t *testing.T) {
	usage := DetectorUsage()
	for _, want := range []string{"timing", "talpha", "tbeta", "list"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage %q missing %q", usage, want)
		}
	}
	table := ListDetectors()
	for _, want := range []string{"talpha-timing", "tbeta-freq", "Alpha", "Bluetooth"} {
		if !strings.Contains(table, want) {
			t.Errorf("detector table missing %q:\n%s", want, table)
		}
	}
}

func TestDynamicIDs(t *testing.T) {
	id := RegisterName("LoRa-test")
	if id < dynamicIDBase {
		t.Fatalf("dynamic ID %d below base", id)
	}
	if id.String() != "LoRa-test" || id.FamilyName() != "LoRa-test" {
		t.Errorf("dynamic name: %q / %q", id.String(), id.FamilyName())
	}
	if id.Family() != id {
		t.Error("dynamic ID is not its own family")
	}
	if IDByName("LoRa-test") != id {
		t.Error("IDByName did not resolve dynamic name")
	}
	if IDByName("802.11g") != WiFi80211g {
		t.Error("IDByName did not resolve builtin name")
	}
	if IDByName("never-heard-of-it") != Unknown {
		t.Error("IDByName invented an ID")
	}

	m := MustRegister(&Module{ID: id, Key: "tlora"})
	if m.Label != "LoRa-test" {
		t.Errorf("dynamic label: %q", m.Label)
	}
	fams := Families()
	found := false
	for _, f := range fams {
		if f == id {
			found = true
		}
	}
	if !found {
		t.Errorf("Families() missing dynamic family: %v", fams)
	}
	if LabelFor(id) != "LoRa-test" {
		t.Errorf("LabelFor(dynamic) = %q", LabelFor(id))
	}
}
