package protocols

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// This file is the protocol module registry: the seam the paper's
// extensibility claim (§2.1, §3.2) hangs off. A protocol is added to the
// system by registering a Module that bundles its identity with its
// capabilities — cheap detectors grouped by feature class (Table 2:
// timing / phase / frequency), a demodulator for the analysis stage, a
// PHY modulator, and a traffic-profile fragment for trace synthesis.
// Every layer resolves protocols through the registry instead of
// enumerating them: the pipeline assembles whatever detectors are
// selected, the dispatcher labels its metrics from module labels, rfgen
// builds single-protocol profiles from traffic fragments, and rfdumpd
// serves the whole table at /api/protocols. Capabilities attach
// independently, so a module registered with only a detector still
// participates in detection (the analysis stage simply never claims its
// requests), and an out-of-tree protocol can allocate a fresh ID with
// RegisterName and plug in without touching any core source.

// FeatureClass groups fast detectors by the Table 2 feature column they
// exploit: MAC timing, modulation phase structure, or channel frequency
// occupancy.
type FeatureClass int

// The feature classes of Table 2.
const (
	ClassTiming FeatureClass = iota
	ClassPhase
	ClassFreq
	numClasses
)

// String implements fmt.Stringer.
func (c FeatureClass) String() string {
	switch c {
	case ClassTiming:
		return "timing"
	case ClassPhase:
		return "phase"
	case ClassFreq:
		return "freq"
	default:
		return "unknown"
	}
}

// classByName inverts FeatureClass.String.
func classByName(s string) (FeatureClass, bool) {
	switch s {
	case "timing":
		return ClassTiming, true
	case "phase":
		return ClassPhase, true
	case "freq":
		return ClassFreq, true
	}
	return 0, false
}

// SampleSource gives detectors and analyzers that inspect the signal
// bounded access to the sample stream ("after the detection stage, the
// stream of signal is only accessed as needed", Section 2.2).
type SampleSource interface {
	// Slice returns the samples of the interval clipped to the stream.
	Slice(iv iq.Interval) iq.Samples
}

// DetectorEnv is what the pipeline hands a detector factory at assembly
// time: the session clock and the session's sample window. Factories
// must not retain state across calls — every session gets fresh
// detector instances.
type DetectorEnv struct {
	// Clock is the engine's sample clock.
	Clock iq.Clock
	// Samples is the session's bounded view of the stream, for
	// signal-inspecting detectors (phase, frequency).
	Samples SampleSource
}

// DetectorSpec describes one fast detector: its flowgraph block name,
// its feature class, and a factory building a fresh instance for one
// pipeline session. The block it builds consumes *ChunkMeta-style items
// from the protocol-agnostic stage and emits Detection verdicts.
type DetectorSpec struct {
	// Name is the flowgraph block name ("802.11-timing"); it keys CPU
	// accounting and per-detector metrics, so it must be unique across
	// the registry.
	Name string
	// Class is the Table 2 feature class the detector exploits.
	Class FeatureClass
	// Default marks the spec as part of the bare class selectors
	// ("timing", "phase", "freq") and the "default" selector. Specialty
	// detectors (microwave, ZigBee, OFDM) leave it false and are
	// selected through their module instead.
	Default bool
	// New builds a fresh detector for one session.
	New func(env DetectorEnv) flowgraph.Block

	// module is the owning module, set by Module.AddDetector.
	module *Module
}

// Module returns the module the spec is registered under (nil for specs
// used directly in a Config without registration).
func (s DetectorSpec) Module() *Module { return s.module }

// AnalysisRequest asks the analysis stage to process a span of samples
// tentatively classified to a protocol family. Overlapping detections of
// one family are merged before dispatch so demodulators never see the
// same samples twice ("avoid redundant computation", Section 2.1).
type AnalysisRequest struct {
	// Family is the claimed protocol family.
	Family ID
	// Span is the merged sample range to analyze.
	Span iq.Interval
	// Channel is the claimed protocol channel when every contributing
	// detection agreed on one, else -1 (analyze all channels).
	Channel int
	// Confidence is the maximum contributing confidence.
	Confidence float64
	// Detectors lists the modules that contributed.
	Detectors []string
	// HeaderOnly asks the analyzer to stop after the physical-layer
	// header — set by the overload gate when full demodulation is shed.
	HeaderOnly bool
}

// Analyzer is the analysis-stage plug-in interface (demodulators,
// header-only decoders, deep packet inspection — "Functionality
// Extensible", Section 2.1). Analyzers receive merged AnalysisRequests
// and read samples through the accessor; whatever they emit is collected
// in the run result's Outputs.
type Analyzer interface {
	// Name identifies the analyzer block in CPU accounting.
	Name() string
	// Accepts reports whether the analyzer handles the family.
	Accepts(family ID) bool
	// Analyze processes one request, emitting its products.
	Analyze(src SampleSource, req AnalysisRequest, emit func(flowgraph.Item)) error
}

// AnalyzerOptions parameterizes a module's analyzer factory. Fields are
// a union across protocols; modules read what applies to them.
type AnalyzerOptions struct {
	// HeaderOnly asks for the header-only analyzer variant where the
	// module has one (the Section 2.2 "demodulation of headers only"
	// ablation).
	HeaderOnly bool
	// LAP and UAP name the Bluetooth piconet to follow.
	LAP uint32
	UAP byte
	// Channels is the monitored channel count for channelized protocols
	// (0 = module default).
	Channels int
}

// TrafficOptions parameterizes a module's traffic-profile fragment.
type TrafficOptions struct {
	// Count is the number of transmissions/exchanges to schedule
	// (0 = fragment default).
	Count int
	// PayloadBytes sizes packet payloads (0 = fragment default).
	PayloadBytes int
}

// Traffic is a module's rfgen profile fragment: MAC-level sources that
// schedule the protocol's transmissions into a synthesized ether.
type Traffic struct {
	// Sources are the scheduled transmitters; each value must implement
	// mac.Source (typed as any here because the mac layer sits above
	// this package).
	Sources []any
	// Duration fixes the trace length in samples (0 = until the sources
	// drain).
	Duration iq.Tick
}

// Module bundles one protocol's identity with its capabilities. Create
// it with its identity fields set, hand it to Register, then attach
// capabilities — typically all from one place (the builtin package, or
// an out-of-tree plugin's init).
type Module struct {
	// ID is the protocol's canonical identifier; per-rate variants
	// share the module of their family representative.
	ID ID
	// Key is the selector key ("wifi", "bt", "zigbee") used by flag
	// parsing, rfgen profiles and the HTTP API.
	Key string
	// Label names the protocol in metrics and report tables ("802.11b");
	// defaults to ID.FamilyName().
	Label string
	// Aliases are additional selector keys ("bluetooth" for "bt").
	Aliases []string

	mu           sync.RWMutex
	detectors    []DetectorSpec
	newAnalyzer  func(AnalyzerOptions) Analyzer
	newModulator func() any
	newTraffic   func(TrafficOptions) Traffic
}

// AddDetector attaches a fast detector to the module. The spec's name
// must be unique across the whole registry (it names a flowgraph block
// and its metrics).
func (m *Module) AddDetector(spec DetectorSpec) error {
	if spec.Name == "" || spec.New == nil {
		return fmt.Errorf("protocols: detector spec for %q needs Name and New", m.Key)
	}
	if _, ok := DetectorByName(spec.Name); ok {
		return fmt.Errorf("protocols: detector %q already registered", spec.Name)
	}
	spec.module = m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.detectors = append(m.detectors, spec)
	return nil
}

// MustAddDetector is AddDetector, panicking on error (init-time wiring).
func (m *Module) MustAddDetector(spec DetectorSpec) {
	if err := m.AddDetector(spec); err != nil {
		panic(err)
	}
}

// SetAnalyzer attaches the module's analysis-stage factory.
func (m *Module) SetAnalyzer(f func(AnalyzerOptions) Analyzer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.newAnalyzer = f
}

// SetModulator attaches the module's PHY modulator factory. The value
// built is protocol-shaped (each PHY has its own Modulate signature), so
// it is typed any; trace synthesis goes through SetTraffic instead.
func (m *Module) SetModulator(f func() any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.newModulator = f
}

// SetTraffic attaches the module's rfgen traffic-profile fragment.
func (m *Module) SetTraffic(f func(TrafficOptions) Traffic) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.newTraffic = f
}

// Detectors returns the module's detector specs (copy).
func (m *Module) Detectors() []DetectorSpec {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]DetectorSpec, len(m.detectors))
	copy(out, m.detectors)
	return out
}

// HasAnalyzer reports whether an analysis-stage factory is attached.
func (m *Module) HasAnalyzer() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.newAnalyzer != nil
}

// NewAnalyzer builds the module's analyzer (nil when none is attached).
func (m *Module) NewAnalyzer(opts AnalyzerOptions) Analyzer {
	m.mu.RLock()
	f := m.newAnalyzer
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(opts)
}

// HasModulator reports whether a PHY modulator factory is attached.
func (m *Module) HasModulator() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.newModulator != nil
}

// NewModulator builds the module's PHY modulator (nil when none).
func (m *Module) NewModulator() any {
	m.mu.RLock()
	f := m.newModulator
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f()
}

// HasTraffic reports whether a traffic fragment is attached.
func (m *Module) HasTraffic() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.newTraffic != nil
}

// NewTraffic builds the module's traffic fragment (zero Traffic when
// none is attached).
func (m *Module) NewTraffic(opts TrafficOptions) Traffic {
	m.mu.RLock()
	f := m.newTraffic
	m.mu.RUnlock()
	if f == nil {
		return Traffic{}
	}
	return f(opts)
}

// Capabilities lists what is attached, for the API and diagnostics.
func (m *Module) Capabilities() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	if len(m.detectors) > 0 {
		out = append(out, "detect")
	}
	if m.newAnalyzer != nil {
		out = append(out, "analyze")
	}
	if m.newModulator != nil {
		out = append(out, "modulate")
	}
	if m.newTraffic != nil {
		out = append(out, "traffic")
	}
	return out
}

// registry is the process-wide module table.
var registry = struct {
	mu    sync.RWMutex
	byKey map[string]*Module
	byID  map[ID]*Module
	order []*Module
}{
	byKey: map[string]*Module{},
	byID:  map[ID]*Module{},
}

// Register adds a module to the registry. The key (and every alias) and
// the family ID must be unused.
func Register(m *Module) (*Module, error) {
	if m.Key == "" {
		return nil, fmt.Errorf("protocols: module needs a Key")
	}
	if m.ID == Unknown {
		return nil, fmt.Errorf("protocols: module %q needs an ID (use RegisterName for new protocols)", m.Key)
	}
	if m.Label == "" {
		m.Label = m.ID.FamilyName()
		if m.Label == "unknown" {
			m.Label = m.Key
		}
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	keys := append([]string{m.Key}, m.Aliases...)
	for _, k := range keys {
		if _, dup := registry.byKey[k]; dup {
			return nil, fmt.Errorf("protocols: module key %q already registered", k)
		}
		if _, class := classByName(k); class || k == "all" || k == "default" || k == "list" {
			return nil, fmt.Errorf("protocols: module key %q collides with a selector keyword", k)
		}
	}
	fam := m.ID.Family()
	if _, dup := registry.byID[fam]; dup {
		return nil, fmt.Errorf("protocols: family %v already has a module", fam)
	}
	for _, k := range keys {
		registry.byKey[k] = m
	}
	registry.byID[fam] = m
	registry.order = append(registry.order, m)
	return m, nil
}

// MustRegister is Register, panicking on error (init-time wiring).
func MustRegister(m *Module) *Module {
	out, err := Register(m)
	if err != nil {
		panic(err)
	}
	return out
}

// Modules returns every registered module in registration order.
func Modules() []*Module {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]*Module, len(registry.order))
	copy(out, registry.order)
	return out
}

// ModuleByKey resolves a selector key or alias.
func ModuleByKey(key string) (*Module, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	m, ok := registry.byKey[key]
	return m, ok
}

// ModuleFor resolves a protocol ID (any rate variant) to its family's
// module.
func ModuleFor(id ID) (*Module, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	m, ok := registry.byID[id.Family()]
	return m, ok
}

// DetectorByName finds a registered detector spec by block name.
func DetectorByName(name string) (DetectorSpec, bool) {
	for _, m := range Modules() {
		for _, s := range m.Detectors() {
			if s.Name == name {
				return s, true
			}
		}
	}
	return DetectorSpec{}, false
}

// AllDetectors returns every registered detector spec in module
// registration order, timing class first within each module (stable
// assembly order for the "all" selector).
func AllDetectors() []DetectorSpec {
	var out []DetectorSpec
	for _, m := range Modules() {
		specs := m.Detectors()
		sort.SliceStable(specs, func(i, j int) bool { return specs[i].Class < specs[j].Class })
		out = append(out, specs...)
	}
	return out
}

// LabelFor returns the metrics/report label for a protocol: the
// registered module's label when there is one, else the built-in family
// name. Metrics derived through it pick up newly registered protocols
// automatically.
func LabelFor(id ID) string {
	if m, ok := ModuleFor(id); ok {
		return m.Label
	}
	return id.FamilyName()
}

// Families returns the distinct protocol families known to the system:
// the built-in Table 2 families plus any registered module family
// outside that set, in stable order.
func Families() []ID {
	out := []ID{WiFi80211b1M, WiFi80211g, Bluetooth, ZigBee, Microwave}
	seen := map[ID]bool{}
	for _, id := range out {
		seen[id] = true
	}
	for _, m := range Modules() {
		if fam := m.ID.Family(); !seen[fam] {
			seen[fam] = true
			out = append(out, fam)
		}
	}
	return out
}

// ErrDetectorList is returned by SelectDetectors for the "list"
// selector: the caller should print ListDetectors and exit.
var ErrDetectorList = fmt.Errorf("protocols: detector list requested")

// SelectDetectors resolves a comma-separated detector selector list
// against the registry. Selectors:
//
//	timing | phase | freq — every default detector of that feature class
//	<module>              — every detector of that module ("zigbee")
//	<module>.<class>      — that module's detectors of one class ("wifi.timing")
//	<module>.*            — same as <module>
//	default               — every default detector
//	all                   — every registered detector
//	list                  — returns ErrDetectorList (print ListDetectors)
//
// Results keep selector order, deduplicated by block name. At least one
// detector must resolve.
func SelectDetectors(list string) ([]DetectorSpec, error) {
	var out []DetectorSpec
	seen := map[string]bool{}
	add := func(s DetectorSpec) {
		if !seen[s.Name] {
			seen[s.Name] = true
			out = append(out, s)
		}
	}
	addClass := func(class FeatureClass, defaultOnly bool, within *Module) bool {
		found := false
		mods := Modules()
		if within != nil {
			mods = []*Module{within}
		}
		for _, m := range mods {
			for _, s := range m.Detectors() {
				if s.Class != class || (defaultOnly && !s.Default) {
					continue
				}
				add(s)
				found = true
			}
		}
		return found
	}
	any := false
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
			continue
		case tok == "list":
			return nil, ErrDetectorList
		case tok == "all":
			for _, s := range AllDetectors() {
				add(s)
			}
		case tok == "default":
			for c := ClassTiming; c < numClasses; c++ {
				addClass(c, true, nil)
			}
		default:
			if class, ok := classByName(tok); ok {
				addClass(class, true, nil)
				any = true
				continue
			}
			key, sub, qualified := strings.Cut(tok, ".")
			m, ok := ModuleByKey(key)
			if !ok {
				return nil, fmt.Errorf("unknown detector selector %q (try \"list\")", tok)
			}
			if !qualified || sub == "*" {
				for _, s := range m.Detectors() {
					add(s)
				}
			} else {
				class, ok := classByName(sub)
				if !ok {
					return nil, fmt.Errorf("unknown feature class %q in selector %q", sub, tok)
				}
				if !addClass(class, false, m) {
					return nil, fmt.Errorf("module %q has no %s detector", key, class)
				}
			}
		}
		any = true
	}
	if !any || len(out) == 0 {
		return nil, fmt.Errorf("no detectors selected")
	}
	return out, nil
}

// DetectorUsage is the one-line flag help shared by rfdump and rfdumpd.
func DetectorUsage() string {
	var keys []string
	for _, m := range Modules() {
		keys = append(keys, m.Key)
	}
	base := "comma list of selectors: timing,phase,freq (feature classes)"
	if len(keys) > 0 {
		base += "; " + strings.Join(keys, ",") + " (modules)"
	}
	return base + "; <module>.<class> (e.g. wifi.timing); all; list"
}

// ListDetectors renders the full registered-detector table (the "list"
// selector's output).
func ListDetectors() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n", "Detector", "Module", "Class", "Default", "Protocol")
	for _, m := range Modules() {
		for _, s := range m.Detectors() {
			def := ""
			if s.Default {
				def = "yes"
			}
			fmt.Fprintf(&b, "%-16s %-10s %-8s %-8s %s\n", s.Name, m.Key, s.Class, def, m.Label)
		}
	}
	return b.String()
}

// Dynamic protocol identifiers: out-of-tree modules allocate IDs here so
// detections, packets and metrics can name protocols the built-in enum
// has never heard of.
const dynamicIDBase ID = 1000

var dynamicIDs = struct {
	mu    sync.RWMutex
	names map[ID]string
	next  ID
}{names: map[ID]string{}, next: dynamicIDBase}

// RegisterName allocates a fresh protocol ID for a name unknown to the
// built-in enum. The name becomes the ID's String()/FamilyName(); the
// ID is its own family.
func RegisterName(name string) ID {
	dynamicIDs.mu.Lock()
	defer dynamicIDs.mu.Unlock()
	id := dynamicIDs.next
	dynamicIDs.next++
	dynamicIDs.names[id] = name
	return id
}

// dynamicName resolves a dynamically allocated ID.
func dynamicName(id ID) (string, bool) {
	dynamicIDs.mu.RLock()
	defer dynamicIDs.mu.RUnlock()
	n, ok := dynamicIDs.names[id]
	return n, ok
}

// IDByName inverts ID.String across built-in and dynamic IDs (log and
// truth-sidecar round trips).
func IDByName(s string) ID {
	for _, id := range []ID{
		WiFi80211b1M, WiFi80211b2M, WiFi80211b5M5, WiFi80211b11M,
		WiFi80211g, Bluetooth, ZigBee, Microwave,
	} {
		if id.String() == s {
			return id
		}
	}
	dynamicIDs.mu.RLock()
	defer dynamicIDs.mu.RUnlock()
	for id, name := range dynamicIDs.names {
		if name == s {
			return id
		}
	}
	return Unknown
}
