// Package protocols encodes Table 2 of the RFDump paper — the timing,
// modulation and channel features of the wireless protocols sharing the
// 2.4 GHz ISM band — as shared constants and a queryable feature table.
// Every layer of the system (modulators, MAC schedulers, detectors,
// experiments) takes these numbers from here so they cannot drift apart.
package protocols

import (
	"fmt"
	"time"
)

// ID identifies a wireless technology known to the system.
type ID int

// Known protocol identifiers.
const (
	Unknown ID = iota
	WiFi80211b1M
	WiFi80211b2M
	WiFi80211b5M5
	WiFi80211b11M
	WiFi80211g
	Bluetooth
	ZigBee
	Microwave
)

// String implements fmt.Stringer.
func (id ID) String() string {
	switch id {
	case WiFi80211b1M:
		return "802.11b/1Mbps"
	case WiFi80211b2M:
		return "802.11b/2Mbps"
	case WiFi80211b5M5:
		return "802.11b/5.5Mbps"
	case WiFi80211b11M:
		return "802.11b/11Mbps"
	case WiFi80211g:
		return "802.11g"
	case Bluetooth:
		return "Bluetooth"
	case ZigBee:
		return "ZigBee"
	case Microwave:
		return "Microwave"
	default:
		if n, ok := dynamicName(id); ok {
			return n
		}
		return "unknown"
	}
}

// Family collapses the per-rate 802.11b IDs into one protocol family for
// detection accounting (a detector classifies "802.11b", not a rate).
// 802.11g OFDM is its own family: its physical layer shares nothing with
// DSSS and it is detected by a different module (the OFDM extension).
func (id ID) Family() ID {
	switch id {
	case WiFi80211b1M, WiFi80211b2M, WiFi80211b5M5, WiFi80211b11M:
		return WiFi80211b1M
	default:
		return id
	}
}

// FamilyName returns a short family label used in report tables.
func (id ID) FamilyName() string {
	switch id.Family() {
	case WiFi80211b1M:
		return "802.11b"
	case WiFi80211g:
		return "802.11g"
	case Bluetooth:
		return "Bluetooth"
	case ZigBee:
		return "ZigBee"
	case Microwave:
		return "Microwave"
	default:
		if n, ok := dynamicName(id.Family()); ok {
			return n
		}
		return "unknown"
	}
}

// Modulation names the physical-layer modulation scheme.
type Modulation int

// Modulation schemes from Table 2.
const (
	ModUnknown Modulation = iota
	ModDBPSK
	ModDQPSK
	ModCCK
	ModOFDM
	ModGFSK
	ModOQPSK
	ModConstantEnvelope // microwave magnetron: unmodulated constant power
)

func (m Modulation) String() string {
	switch m {
	case ModDBPSK:
		return "DBPSK"
	case ModDQPSK:
		return "DQPSK"
	case ModCCK:
		return "CCK"
	case ModOFDM:
		return "OFDM"
	case ModGFSK:
		return "GFSK"
	case ModOQPSK:
		return "O-QPSK"
	case ModConstantEnvelope:
		return "CW"
	default:
		return "unknown"
	}
}

// 802.11b/g MAC timing (Table 2 and Section 3.2/4.4).
const (
	// WiFiSlotTime is the 802.11b slot time (ST).
	WiFiSlotTime = 20 * time.Microsecond
	// WiFiSlotTimeG is the 802.11g short slot time.
	WiFiSlotTimeG = 9 * time.Microsecond
	// WiFiSIFS is the Short Interframe Space separating a data frame from
	// its MAC-level acknowledgment.
	WiFiSIFS = 10 * time.Microsecond
	// WiFiDIFS = SIFS + 2*SlotTime (Section 4.4).
	WiFiDIFS = WiFiSIFS + 2*WiFiSlotTime
	// WiFiCWMax bounds the contention window the DIFS timing detector
	// searches: gaps of DIFS + k*ST for k in [0, WiFiCWMax]. The paper
	// uses 64 "to bound our latency".
	WiFiCWMax = 64
	// WiFiChannelWidthHz is the 22 MHz DSSS channel width.
	WiFiChannelWidthHz = 22_000_000
	// WiFiChipRate is the Barker/CCK chip rate.
	WiFiChipRate = 11_000_000
)

// Bluetooth timing and channel plan (Table 2 and Sections 3.2/4.4).
const (
	// BTSlot is the Bluetooth TDD slot: 625 us, 1600 hops/s.
	BTSlot = 625 * time.Microsecond
	// BTChannels is the number of 1 MHz hop channels.
	BTChannels = 79
	// BTChannelWidthHz is the per-channel width.
	BTChannelWidthHz = 1_000_000
	// BTSymbolRate is the GFSK symbol rate (1 Msym/s).
	BTSymbolRate = 1_000_000
	// BTModIndex is the nominal GFSK modulation index h.
	BTModIndex = 0.32
	// BTGaussianBT is the Gaussian filter bandwidth-time product.
	BTGaussianBT = 0.5
)

// ZigBee / 802.15.4 (2.4 GHz O-QPSK PHY) timing (Table 2).
const (
	// ZigBeeBackoffPeriod is the unit backoff (slot) period: 20 symbols.
	ZigBeeBackoffPeriod = 320 * time.Microsecond
	// ZigBeeSIFS: turnaround for short frames (12 symbols).
	ZigBeeSIFS = 192 * time.Microsecond
	// ZigBeeLIFS: long interframe space (40 symbols... per Table 2, 600us).
	ZigBeeLIFS = 600 * time.Microsecond
	// ZigBeeChannelWidthHz is the occupied bandwidth (~2 MHz; Table 2
	// rounds channel spacing to 5 MHz).
	ZigBeeChannelWidthHz = 2_000_000
	// ZigBeeChipRate is the O-QPSK chip rate.
	ZigBeeChipRate = 2_000_000
	// ZigBeeSymbolRate: 62.5 ksym/s, 4 bits/symbol, 32 chips/symbol.
	ZigBeeSymbolRate = 62_500
)

// Microwave oven emission timing (Table 2: "AC cycle 16667/20000 us",
// i.e. the magnetron is gated at the 60 Hz (US) or 50 Hz line frequency;
// channel width 10-75 MHz as it sweeps).
const (
	// MicrowaveACPeriodUS is the US 60 Hz AC period.
	MicrowaveACPeriodUS = 16667 * time.Microsecond
	// MicrowaveACPeriodEU is the EU 50 Hz AC period.
	MicrowaveACPeriodEU = 20 * time.Millisecond
	// MicrowaveDuty is the fraction of each AC cycle during which the
	// magnetron radiates (half-wave rectified supply → about half).
	MicrowaveDuty = 0.5
)

// Feature is one row of Table 2.
type Feature struct {
	Proto          ID
	SlotTime       time.Duration // MAC slot, 0 if n/a
	IFS            time.Duration // characteristic interframe space
	Mod            Modulation
	Spreading      string // Barker, CCK, FHSS, DSSS, ...
	ChannelWidthHz int
	Note           string
}

// Table2 returns the feature table exactly as the paper's Table 2 lays it
// out, one entry per row.
func Table2() []Feature {
	return []Feature{
		{WiFi80211b1M, WiFiSlotTime, WiFiSIFS, ModDBPSK, "Barker", WiFiChannelWidthHz, "preamble DBPSK"},
		{WiFi80211b2M, WiFiSlotTime, WiFiSIFS, ModDQPSK, "Barker", WiFiChannelWidthHz, "preamble DBPSK"},
		{WiFi80211b5M5, WiFiSlotTime, WiFiSIFS, ModDQPSK, "CCK", WiFiChannelWidthHz, "preamble DBPSK"},
		{WiFi80211b11M, WiFiSlotTime, WiFiSIFS, ModDQPSK, "CCK", WiFiChannelWidthHz, "preamble DBPSK"},
		{WiFi80211g, WiFiSlotTimeG, WiFiSIFS, ModOFDM, "", 20_000_000, "CTS-to-self at 802.11b rates"},
		{Bluetooth, BTSlot, 0, ModGFSK, "FHSS", BTChannelWidthHz, "1600 hops/s TDD"},
		{ZigBee, ZigBeeBackoffPeriod, ZigBeeSIFS, ModOQPSK, "DSSS", ZigBeeChannelWidthHz, "LIFS 600us"},
		{Microwave, 0, MicrowaveACPeriodUS, ModConstantEnvelope, "", 40_000_000, "AC-gated magnetron sweep"},
	}
}

// Lookup returns the Table 2 row for the given protocol (family rates map
// to their own rows; unknown protocols return ok=false).
func Lookup(id ID) (Feature, bool) {
	for _, f := range Table2() {
		if f.Proto == id {
			return f, true
		}
	}
	return Feature{}, false
}

// RateBPS returns the nominal air bit rate of a protocol variant in
// bits/second (payload modulation rate, not counting preamble).
func RateBPS(id ID) int {
	switch id {
	case WiFi80211b1M:
		return 1_000_000
	case WiFi80211b2M:
		return 2_000_000
	case WiFi80211b5M5:
		return 5_500_000
	case WiFi80211b11M:
		return 11_000_000
	case WiFi80211g:
		return 54_000_000
	case Bluetooth:
		return 1_000_000
	case ZigBee:
		return 250_000
	default:
		return 0
	}
}

// FormatTable2 renders Table 2 as fixed-width text for cmd/rfbench.
func FormatTable2() string {
	rows := Table2()
	out := fmt.Sprintf("%-16s %-10s %-10s %-8s %-8s %-10s %s\n",
		"Protocol", "Slot", "IFS", "Mod", "Spread", "Width", "Note")
	for _, f := range rows {
		slot := "-"
		if f.SlotTime > 0 {
			slot = f.SlotTime.String()
		}
		ifs := "-"
		if f.IFS > 0 {
			ifs = f.IFS.String()
		}
		out += fmt.Sprintf("%-16s %-10s %-10s %-8s %-8s %-10s %s\n",
			f.Proto, slot, ifs, f.Mod, f.Spreading,
			fmt.Sprintf("%.0fMHz", float64(f.ChannelWidthHz)/1e6), f.Note)
	}
	return out
}
