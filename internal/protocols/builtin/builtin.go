// Package builtin registers the built-in protocol modules — 802.11b,
// 802.11g OFDM, Bluetooth, ZigBee and the microwave-oven interferer —
// with the protocols registry. It is the glue layer the paper's
// extensibility claim implies: the detectors live in internal/core, the
// demodulators in internal/demod and the PHYs under internal/phy, and
// this package is the single place that binds them to protocol
// identities. Binaries import it for side effects:
//
//	import _ "rfdump/internal/protocols/builtin"
//
// An out-of-tree protocol does exactly what this package does, from its
// own package, against the same public API (see examples/newprotocol,
// which deliberately does NOT import builtin for its ZigBee module).
package builtin

import (
	"rfdump/internal/core"
	"rfdump/internal/demod"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/phy/microwave"
	"rfdump/internal/phy/ofdm"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/phy/zigbee"
	"rfdump/internal/protocols"
)

// Default piconet identity for synthesized Bluetooth traffic (the same
// values internal/experiments uses; duplicated literally because
// experiments sits above this package).
const (
	trafficLAP uint32 = 0x9E8B33
	trafficUAP byte   = 0x47
)

func wifiAddr(b byte) (a wifi.Addr) {
	for i := range a {
		a[i] = b
	}
	return
}

func init() {
	// 802.11b DSSS: timing + phase detectors, full demodulator, Barker
	// PHY, and a unicast ping-pong traffic fragment.
	wifiMod := protocols.MustRegister(&protocols.Module{
		ID:      protocols.WiFi80211b1M,
		Key:     "wifi",
		Aliases: []string{"80211b", "unicast"},
	})
	wifiMod.MustAddDetector(core.WiFiTimingSpec(core.WiFiTimingConfig{}))
	wifiMod.MustAddDetector(core.WiFiPhaseSpec(core.WiFiPhaseConfig{}))
	wifiMod.SetAnalyzer(func(opts protocols.AnalyzerOptions) protocols.Analyzer {
		if opts.HeaderOnly {
			return demod.NewWiFiHeaderDemod()
		}
		return demod.NewWiFiDemod()
	})
	wifiMod.SetModulator(func() any {
		m, err := wifi.NewModulator(protocols.WiFi80211b1M)
		if err != nil {
			return nil
		}
		return m
	})
	wifiMod.SetTraffic(func(opts protocols.TrafficOptions) protocols.Traffic {
		pings, payload := opts.Count, opts.PayloadBytes
		if pings <= 0 {
			pings = 100
		}
		if payload <= 0 {
			payload = 500
		}
		return protocols.Traffic{Sources: []any{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: pings, PayloadBytes: payload,
			InterPing: 8000, Requester: wifiAddr(0x11), Responder: wifiAddr(0x22),
			BSSID: wifiAddr(0x33), CFOHz: 2500,
		}}}
	})

	// Bluetooth FHSS: timing + phase + frequency detectors, the
	// piconet-following demodulator, GFSK PHY, and a piconet ping
	// fragment.
	btMod := protocols.MustRegister(&protocols.Module{
		ID:      protocols.Bluetooth,
		Key:     "bt",
		Aliases: []string{"bluetooth"},
	})
	btMod.MustAddDetector(core.BTTimingSpec(core.BTTimingConfig{}))
	btMod.MustAddDetector(core.BTPhaseSpec(core.BTPhaseConfig{}))
	btMod.MustAddDetector(core.BTFreqSpec(core.BTFreqConfig{}))
	btMod.SetAnalyzer(func(opts protocols.AnalyzerOptions) protocols.Analyzer {
		lap, uap := opts.LAP, opts.UAP
		if lap == 0 {
			lap, uap = trafficLAP, trafficUAP
		}
		d := demod.NewBTDemod(lap, uap, opts.Channels)
		d.HeaderOnly = opts.HeaderOnly
		return d
	})
	btMod.SetModulator(func() any { return bluetooth.NewModulator() })
	btMod.SetTraffic(func(opts protocols.TrafficOptions) protocols.Traffic {
		pings := opts.Count
		if pings <= 0 {
			pings = 100
		}
		return protocols.Traffic{Sources: []any{&mac.BluetoothPiconet{
			LAP: trafficLAP, UAP: trafficUAP,
			Pings: pings, InterPingSlots: 2, CFOHz: 1200,
		}}}
	})

	// 802.11g OFDM: cyclic-prefix detector and OFDM PHY. No analysis
	// capability — the 8 Msps front end cannot carry the 20 MHz OFDM
	// payload, so 802.11g requests end at detection (the paper's
	// future-work extension).
	gMod := protocols.MustRegister(&protocols.Module{
		ID:      protocols.WiFi80211g,
		Key:     "wifig",
		Aliases: []string{"ofdm", "80211g"},
	})
	gMod.MustAddDetector(core.OFDMSpec(core.OFDMConfig{}))
	gMod.SetModulator(func() any { return ofdm.NewModulator() })
	gMod.SetTraffic(func(opts protocols.TrafficOptions) protocols.Traffic {
		pings, payload := opts.Count, opts.PayloadBytes
		if pings <= 0 {
			pings = 100
		}
		if payload <= 0 {
			payload = 500
		}
		return protocols.Traffic{Sources: []any{&mac.WiFiGUnicast{
			Pings: pings, PayloadBytes: payload, InterPing: 8000, Protection: true,
			Requester: wifiAddr(0x51), Responder: wifiAddr(0x52), BSSID: wifiAddr(0x53),
		}}}
	})

	// ZigBee / 802.15.4: SIFS-turnaround timing detector, O-QPSK PHY,
	// periodic sensor-report fragment. (examples/newprotocol registers
	// an equivalent module itself instead of importing this package.)
	zbMod := protocols.MustRegister(&protocols.Module{
		ID:      protocols.ZigBee,
		Key:     "zigbee",
		Aliases: []string{"zb"},
	})
	zbMod.MustAddDetector(core.ZigBeeTimingSpec())
	zbMod.SetModulator(func() any { return zigbee.NewModulator() })
	zbMod.SetTraffic(func(opts protocols.TrafficOptions) protocols.Traffic {
		reports, payload := opts.Count, opts.PayloadBytes
		if reports <= 0 {
			reports = 100
		}
		if payload <= 0 {
			payload = 48
		}
		return protocols.Traffic{Sources: []any{&mac.ZigBeeSource{
			Reports: reports, PayloadBytes: payload, OffsetHz: 1_500_000,
		}}}
	})

	// Microwave oven: AC-cycle timing detector and the swept-magnetron
	// burst model. Not a protocol — nothing to demodulate.
	mwMod := protocols.MustRegister(&protocols.Module{
		ID:      protocols.Microwave,
		Key:     "microwave",
		Aliases: []string{"mw"},
	})
	mwMod.MustAddDetector(core.MicrowaveTimingSpec())
	mwMod.SetModulator(func() any {
		return microwave.DefaultOven(iq.NewClock(iq.DefaultSampleRate))
	})
	mwMod.SetTraffic(func(opts protocols.TrafficOptions) protocols.Traffic {
		return protocols.Traffic{
			Sources:  []any{&mac.MicrowaveSource{SNROffsetDB: 8}},
			Duration: iq.Tick(iq.DefaultSampleRate), // 1 s of oven cycles
		}
	})
}
