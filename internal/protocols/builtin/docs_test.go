package builtin

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"rfdump/internal/protocols"
)

// The docs-sync gate: the README protocol table and DESIGN.md §12 must
// name every registered builtin module (key, aliases, detector block
// names). Registering a detector without documenting it — or renaming
// one and leaving stale docs — fails here.
func TestDocsMatchRegistry(t *testing.T) {
	readme, err := os.ReadFile("../../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	design, err := os.ReadFile("../../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}

	if !strings.Contains(string(design), "## 12. The protocol module registry") {
		t.Error("DESIGN.md is missing §12 (the protocol module registry)")
	}

	rd := string(readme)
	for _, m := range protocols.Modules() {
		if !strings.Contains(rd, fmt.Sprintf("`%s`", m.Key)) {
			t.Errorf("README protocol table is missing module key %q", m.Key)
		}
		for _, a := range m.Aliases {
			if !strings.Contains(rd, fmt.Sprintf("`%s`", a)) {
				t.Errorf("README protocol table is missing alias %q of module %q", a, m.Key)
			}
		}
		for _, s := range m.Detectors() {
			if !strings.Contains(rd, fmt.Sprintf("`%s`", s.Name)) {
				t.Errorf("README protocol table is missing detector %q", s.Name)
			}
		}
		// The capability list must be documented truthfully.
		for _, c := range m.Capabilities() {
			if !strings.Contains(rd, c) {
				t.Errorf("README never mentions capability %q (module %q)", c, m.Key)
			}
		}
	}
}
