package builtin

import (
	"reflect"
	"sort"
	"testing"

	"rfdump/internal/mac"
	"rfdump/internal/protocols"
)

// The registry-coverage gate: every protocol family the enum knows must
// have exactly one registered module, and no module may exist for a
// family the enum (plus dynamic registrations) does not know. CI runs
// this test so a protocol added in one layer but not the other fails
// the build instead of silently losing coverage.
func TestRegistryCoversEveryFamily(t *testing.T) {
	for _, fam := range protocols.Families() {
		if _, ok := protocols.ModuleFor(fam); !ok {
			t.Errorf("family %v has no registered module", fam)
		}
	}
	known := map[protocols.ID]bool{}
	for _, fam := range protocols.Families() {
		known[fam] = true
	}
	for _, m := range protocols.Modules() {
		if !known[m.ID.Family()] {
			t.Errorf("module %q registered for family %v outside Families()", m.Key, m.ID.Family())
		}
	}
}

func TestBuiltinModuleTable(t *testing.T) {
	// key -> family, capabilities, detector block names.
	want := []struct {
		key   string
		fam   protocols.ID
		caps  []string
		specs []string
	}{
		{"wifi", protocols.WiFi80211b1M, []string{"detect", "analyze", "modulate", "traffic"}, []string{"802.11-timing", "802.11-phase"}},
		{"bt", protocols.Bluetooth, []string{"detect", "analyze", "modulate", "traffic"}, []string{"bt-timing", "bt-phase", "bt-freq"}},
		{"wifig", protocols.WiFi80211g, []string{"detect", "modulate", "traffic"}, []string{"802.11g-ofdm"}},
		{"zigbee", protocols.ZigBee, []string{"detect", "modulate", "traffic"}, []string{"zigbee-timing"}},
		{"microwave", protocols.Microwave, []string{"detect", "modulate", "traffic"}, []string{"microwave-timing"}},
	}
	for _, w := range want {
		m, ok := protocols.ModuleByKey(w.key)
		if !ok {
			t.Errorf("module %q not registered", w.key)
			continue
		}
		if m.ID.Family() != w.fam.Family() {
			t.Errorf("module %q family %v, want %v", w.key, m.ID.Family(), w.fam.Family())
		}
		if got := m.Capabilities(); !reflect.DeepEqual(got, w.caps) {
			t.Errorf("module %q capabilities %v, want %v", w.key, got, w.caps)
		}
		var names []string
		for _, s := range m.Detectors() {
			names = append(names, s.Name)
		}
		if !reflect.DeepEqual(names, w.specs) {
			t.Errorf("module %q detectors %v, want %v", w.key, names, w.specs)
		}
		// Metric labels stay the legacy family names so dashboards and
		// golden metric dumps survive the registry refactor.
		if m.Label != w.fam.FamilyName() {
			t.Errorf("module %q label %q, want family name %q", w.key, m.Label, w.fam.FamilyName())
		}
	}
}

// The exact registered detector-name set is locked down: these names key
// golden traces, CPU accounting and per-detector metrics.
func TestBuiltinDetectorNameSet(t *testing.T) {
	want := []string{
		"802.11-phase", "802.11-timing", "802.11g-ofdm",
		"bt-freq", "bt-phase", "bt-timing",
		"microwave-timing", "zigbee-timing",
	}
	var got []string
	for _, s := range protocols.AllDetectors() {
		got = append(got, s.Name)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("registered detectors %v, want %v", got, want)
	}
}

// Legacy selector semantics: "timing,phase" must still assemble the
// pre-registry pipeline in its historical order.
func TestLegacySelectorOrder(t *testing.T) {
	specs, err := protocols.SelectDetectors("timing,phase")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range specs {
		got = append(got, s.Name)
	}
	want := []string{"802.11-timing", "bt-timing", "802.11-phase", "bt-phase"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("timing,phase = %v, want %v", got, want)
	}
}

func TestBuiltinAliases(t *testing.T) {
	for alias, key := range map[string]string{
		"unicast": "wifi", "80211b": "wifi", "bluetooth": "bt",
		"ofdm": "wifig", "80211g": "wifig", "zb": "zigbee", "mw": "microwave",
	} {
		m, ok := protocols.ModuleByKey(alias)
		if !ok || m.Key != key {
			t.Errorf("alias %q did not resolve to module %q", alias, key)
		}
	}
}

// Every builtin traffic fragment must yield sources implementing
// mac.Source — the contract rfgen relies on when it builds profiles
// from the registry.
func TestBuiltinTrafficSources(t *testing.T) {
	for _, m := range protocols.Modules() {
		if !m.HasTraffic() {
			continue
		}
		tr := m.NewTraffic(protocols.TrafficOptions{Count: 3})
		if len(tr.Sources) == 0 {
			t.Errorf("module %q traffic has no sources", m.Key)
		}
		for _, s := range tr.Sources {
			if _, ok := s.(mac.Source); !ok {
				t.Errorf("module %q traffic source %T does not implement mac.Source", m.Key, s)
			}
		}
	}
}

// Every builtin modulator factory must return a non-nil value.
func TestBuiltinModulators(t *testing.T) {
	for _, m := range protocols.Modules() {
		if !m.HasModulator() {
			continue
		}
		if m.NewModulator() == nil {
			t.Errorf("module %q modulator factory returned nil", m.Key)
		}
	}
}

// Analyzer factories honor AnalyzerOptions: the WiFi module's
// header-only variant and the Bluetooth piconet parameters.
func TestBuiltinAnalyzers(t *testing.T) {
	wifi, _ := protocols.ModuleByKey("wifi")
	full := wifi.NewAnalyzer(protocols.AnalyzerOptions{})
	head := wifi.NewAnalyzer(protocols.AnalyzerOptions{HeaderOnly: true})
	if full == nil || head == nil {
		t.Fatal("wifi analyzer factory returned nil")
	}
	if full.Name() == head.Name() {
		t.Errorf("header-only analyzer %q should differ from full %q", head.Name(), full.Name())
	}
	if !full.Accepts(protocols.WiFi80211b11M) {
		t.Error("wifi analyzer rejects its own family")
	}
	if full.Accepts(protocols.Bluetooth) {
		t.Error("wifi analyzer accepts Bluetooth")
	}

	bt, _ := protocols.ModuleByKey("bt")
	if a := bt.NewAnalyzer(protocols.AnalyzerOptions{LAP: 0x123456, UAP: 0x9a, Channels: 8}); a == nil {
		t.Fatal("bt analyzer factory returned nil")
	}
	if a := bt.NewAnalyzer(protocols.AnalyzerOptions{}); a == nil {
		t.Fatal("bt analyzer with default piconet returned nil")
	}
	if !bt.NewAnalyzer(protocols.AnalyzerOptions{}).Accepts(protocols.Bluetooth) {
		t.Error("bt analyzer rejects Bluetooth")
	}
}
