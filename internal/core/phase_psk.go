package core

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/iq"
)

// ConstellationEstimate is the output of the generic PSK analysis of
// paper Figure 4: an estimated constellation size plus the carrier drift.
type ConstellationEstimate struct {
	// Points is the estimated number of PSK constellation points
	// (2 = BPSK/DBPSK, 4 = QPSK/DQPSK); 0 when no PSK structure found.
	Points int
	// DriftRadPerSym is the constant phase drift per symbol contributed
	// by the carrier frequency offset ("the drift allows us to determine
	// what channel is used", Section 3.3).
	DriftRadPerSym float64
	// Occupancy is the fraction of transitions falling in the dominant
	// bins (quality of the estimate).
	Occupancy float64
}

// EstimateConstellation implements the protocol-agnostic phase-histogram
// constellation estimator: it computes symbol-spaced phase transitions,
// removes the common drift, bins the result, and counts dominant bins.
// sps is the samples-per-symbol of the candidate protocol.
//
// For differential schemes the symbol transitions themselves carry the
// data, so the histogram of transition phases directly shows the
// constellation (DBPSK: two bins pi apart; DQPSK: four bins pi/2 apart).
func EstimateConstellation(samples iq.Samples, sps int, nbins int) ConstellationEstimate {
	if sps < 1 || len(samples) < 3*sps {
		return ConstellationEstimate{}
	}
	if nbins <= 0 {
		nbins = 16
	}
	// Symbol-spaced transition phases.
	n := len(samples)/sps - 1
	trans := make([]float64, 0, n)
	for k := 0; k+1 <= n; k++ {
		a := samples[k*sps]
		b := samples[(k+1)*sps]
		re := float64(real(b))*float64(real(a)) + float64(imag(b))*float64(imag(a))
		im := float64(imag(b))*float64(real(a)) - float64(real(b))*float64(imag(a))
		trans = append(trans, math.Atan2(im, re))
	}
	if len(trans) < 8 {
		return ConstellationEstimate{}
	}

	// Estimate drift with the M-power trick for the largest M we care
	// about (M=4): multiplying transition phases by 4 collapses any
	// BPSK/QPSK constellation to a single angle 4*drift.
	quad := make([]float64, len(trans))
	for i, t := range trans {
		quad[i] = dsp.WrapPhase(4 * t)
	}
	drift := dsp.CircularMean(quad) / 4

	centered := make([]float64, len(trans))
	for i, t := range trans {
		centered[i] = dsp.WrapPhase(t - drift)
	}
	counts := dsp.PhaseHistogram(centered, nbins)
	// A constellation point near ±pi (or jittered across any bin edge)
	// splits between adjacent bins, so cluster circularly-adjacent
	// dominant bins before counting points.
	dom := dsp.DominantBins(counts, 0.08)
	clusters := clusterCircular(dom, nbins)

	occ := 0
	for _, b := range dom {
		occ += counts[b]
	}
	est := ConstellationEstimate{
		DriftRadPerSym: drift,
		Occupancy:      float64(occ) / float64(len(trans)),
	}
	// Accept only clean constellations: most transitions concentrated in
	// the dominant clusters, and a plausible PSK order.
	if est.Occupancy < 0.8 {
		return est
	}
	switch clusters {
	case 1, 2:
		// One cluster means every transition carries the same phase (a
		// degenerate data pattern); report the minimal PSK order.
		est.Points = 2
	case 3, 4:
		est.Points = 4
	}
	return est
}

// clusterCircular counts groups of circularly-adjacent bin indices.
func clusterCircular(bins []int, nbins int) int {
	if len(bins) == 0 {
		return 0
	}
	member := make(map[int]bool, len(bins))
	for _, b := range bins {
		member[b] = true
	}
	clusters := 0
	for _, b := range bins {
		prev := (b - 1 + nbins) % nbins
		if !member[prev] {
			clusters++
		}
	}
	if clusters == 0 {
		// Every bin has a dominant predecessor: the whole circle is one
		// cluster (uniform spread).
		clusters = 1
	}
	return clusters
}

// IsGFSK reports whether the block looks like a continuous-phase
// frequency modulation: the second derivative of phase stays near zero
// (Section 3.3: "GFSK is a popular exception to the QAM pattern, but even
// that can be detected by checking that the second derivative of phase is
// always zero").
func IsGFSK(samples iq.Samples, maxSecondDeriv float64) bool {
	if len(samples) < 3 {
		return false
	}
	d := dsp.PhaseDiff(samples, make([]float64, 0, len(samples)))
	dd := dsp.SecondDiff(d, make([]float64, 0, len(d)))
	return dsp.MeanAbs(dd) <= maxSecondDeriv
}
