package core

import (
	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// Peak detector defaults (paper Section 4.3).
const (
	// DefaultAvgWindow is the energy averaging window: 2.5 us = 20
	// samples, chosen well below the smallest timing of interest
	// (802.11 SIFS = 80 samples).
	DefaultAvgWindow = 20
	// DefaultThresholdDB is how far above the noise floor the windowed
	// average must rise to open a peak (4 dB per the paper).
	DefaultThresholdDB = 4.0
	// DefaultHistory is the shared peak-history capacity. It must span a
	// Bluetooth search horizon of several slots plus 802.11 bursts; 256
	// recent peaks is ample.
	DefaultHistory = 256
)

// PeakConfig tunes the detector; zero values take the defaults above.
type PeakConfig struct {
	// AvgWindow is the averaging window in samples.
	AvgWindow int
	// ThresholdDB above the noise floor opens/closes peaks.
	ThresholdDB float64
	// NoiseFloor fixes the noise floor power estimate; when 0 the
	// detector calibrates from the quietest chunk averages seen so far.
	NoiseFloor float64
	// HistoryCap sizes the shared peak history ring.
	HistoryCap int
	// SampleStride, when > 1, makes the in-peak scan look at every n-th
	// sample — the optional sampling optimization of Section 3.1 ("when
	// analyzing a burst of samples with consistent signal strength, it
	// may be sufficient ... to only look at a subset of the samples").
	SampleStride int
}

func (c PeakConfig) withDefaults() PeakConfig {
	if c.AvgWindow <= 0 {
		c.AvgWindow = DefaultAvgWindow
	}
	if c.ThresholdDB == 0 {
		c.ThresholdDB = DefaultThresholdDB
	}
	if c.HistoryCap <= 0 {
		c.HistoryCap = DefaultHistory
	}
	if c.SampleStride <= 0 {
		c.SampleStride = 1
	}
	return c
}

// PeakDetector is the protocol-agnostic detection stage with the energy
// filter integrated (Section 4.2: integrating filtering into the peak
// detector keeps timestamps attached to the metadata). It consumes Chunk
// items and emits *ChunkMeta.
type PeakDetector struct {
	cfg     PeakConfig
	history *PeakHistory
	metas   metaPool

	avg        *dsp.MovingAverage
	inPeak     bool
	cur        Peak
	curEnergy  float64
	curCount   int
	lastStrong iq.Tick // last sample with instantaneous power above threshold

	// Noise floor calibration state (when cfg.NoiseFloor == 0).
	noise       float64
	noiseInit   bool
	lastAvg     float64
	totalChunks int
}

// NewPeakDetector returns the detector.
func NewPeakDetector(cfg PeakConfig) *PeakDetector {
	cfg = cfg.withDefaults()
	return &PeakDetector{
		cfg:     cfg,
		history: NewPeakHistory(cfg.HistoryCap),
		avg:     dsp.NewMovingAverage(cfg.AvgWindow),
		noise:   cfg.NoiseFloor,
	}
}

// Name implements flowgraph.Block.
func (p *PeakDetector) Name() string { return "peak-detector" }

// History exposes the shared peak history ring.
func (p *PeakDetector) History() *PeakHistory { return p.history }

// NoiseFloor returns the current noise floor estimate.
func (p *PeakDetector) NoiseFloor() float64 {
	if p.noise > 0 {
		return p.noise
	}
	return 1.0
}

func (p *PeakDetector) threshold() float64 {
	return p.NoiseFloor() * iq.FromDB(p.cfg.ThresholdDB)
}

// calibrate updates the noise floor estimate from an idle-looking chunk
// average. The estimate tracks the minimum chunk average with a slow
// upward drift so a burst at trace start cannot poison it forever.
func (p *PeakDetector) calibrate(chunkAvg float64) {
	if p.cfg.NoiseFloor > 0 {
		return
	}
	if !p.noiseInit || chunkAvg < p.noise {
		p.noise = chunkAvg
		p.noiseInit = true
		return
	}
	// Slow exponential drift toward observations, bounded at 2x current.
	target := chunkAvg
	if target > 2*p.noise {
		target = 2 * p.noise
	}
	p.noise += (target - p.noise) / 1024
}

// Process implements flowgraph.Block. Each input must be a Chunk (the
// batch path) or a pooled *chunkItem (the streaming path); the output is
// one pooled *ChunkMeta per chunk.
func (p *PeakDetector) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	var chunk Chunk
	switch v := item.(type) {
	case *chunkItem:
		chunk = v.Chunk
	default:
		chunk = item.(Chunk)
	}
	meta := p.metas.get()
	meta.Chunk = chunk
	meta.History = p.history
	if chunk.Block != nil {
		// The meta outlives the chunk item (detectors read the samples
		// downstream, and under the parallel scheduler the producer may
		// already be filling the next block): it holds its own reference,
		// released by the meta's last Dispose.
		chunk.Block.Retain()
	}

	// First pass: the cheap energy filter. "The energy-based filter first
	// computes the average energy of the last window of samples within
	// the chunk to see if there is a chance of having signal information
	// in the chunk" (Section 4.3).
	chunkAvg := chunk.Samples.MeanPower()
	meta.AvgPower = chunkAvg
	p.calibrate(chunkAvg)
	meta.NoiseFloor = p.NoiseFloor()
	thr := p.threshold()

	tail := chunk.Samples
	if w := p.cfg.AvgWindow; len(tail) > w {
		tail = tail[len(tail)-w:]
	}
	tailAvg := tail.MeanPower()
	meta.Busy = chunkAvg > thr || tailAvg > thr || p.inPeak

	if !meta.Busy {
		p.lastAvg = chunkAvg
		p.totalChunks++
		emit(meta)
		return nil
	}

	// Second pass, only for interesting chunks: sample-by-sample scan
	// with the moving average to refine peak boundaries. The
	// instantaneous magnitude threshold sharpens the start edge
	// (Section 4.3).
	stride := p.cfg.SampleStride
	instThr := thr // instantaneous power threshold for edge refinement
	for i := 0; i < len(chunk.Samples); i += stride {
		s := chunk.Samples[i]
		pw := iq.Power(s)
		avg := p.avg.Push(pw)
		t := chunk.Span.Start + iq.Tick(i)
		if !p.inPeak {
			if avg > thr {
				// Open a peak; refine the start by walking backwards
				// through the contiguous run of strong instantaneous
				// samples (the average crosses the threshold up to one
				// averaging window after the true start).
				start := t
				back := i - 2*p.cfg.AvgWindow*stride
				if back < 0 {
					back = 0
				}
				for j := i - stride; j >= back; j -= stride {
					if iq.Power(chunk.Samples[j]) <= instThr {
						break
					}
					start = chunk.Span.Start + iq.Tick(j)
				}
				p.inPeak = true
				p.cur = Peak{
					Span: iq.Interval{Start: start, End: t + 1},
				}
				p.curEnergy = 0
				p.curCount = 0
				p.lastStrong = t
			}
		} else {
			// Track the windowed min/max only once the averaging window
			// lies fully inside the peak, so edge warm-up (which still
			// contains pre-peak noise) cannot fake a huge dynamic range.
			// Requiring a strong current sample excludes the decay tail,
			// where the window straddles the transmission's end.
			if p.curCount >= 2*p.cfg.AvgWindow && pw > instThr {
				if p.cur.MaxPower == 0 || avg > p.cur.MaxPower {
					p.cur.MaxPower = avg
				}
				if p.cur.MinPower == 0 || avg < p.cur.MinPower {
					p.cur.MinPower = avg
				}
			}
			if avg < thr {
				// Close the peak. The moving average crosses below the
				// threshold an averaging-window after the transmission
				// ends; the last strong instantaneous sample marks the
				// true end edge (Section 4.3's precision refinement).
				p.closePeak(p.lastStrong+1, meta)
			}
		}
		if p.inPeak {
			if pw > instThr {
				p.lastStrong = t
			}
			p.curEnergy += pw
			p.curCount++
		}
	}
	if p.inPeak {
		// Peak continues into the next chunk.
		p.cur.Span.End = chunk.Span.End
	}
	p.lastAvg = chunkAvg
	p.totalChunks++
	emit(meta)
	return nil
}

func (p *PeakDetector) closePeak(end iq.Tick, meta *ChunkMeta) {
	p.cur.Span.End = end
	if p.curCount > 0 {
		p.cur.MeanPower = p.curEnergy / float64(p.curCount)
	}
	if p.cur.MaxPower == 0 {
		// Peak shorter than the averaging window: no interior windows.
		p.cur.MaxPower = p.cur.MeanPower
		p.cur.MinPower = p.cur.MeanPower
	}
	p.inPeak = false
	// Discard degenerate blips shorter than the averaging window: noise
	// spikes, not transmissions.
	if p.cur.Span.Len() < iq.Tick(p.cfg.AvgWindow) {
		return
	}
	p.history.Append(p.cur)
	if meta != nil {
		meta.Completed = append(meta.Completed, p.cur)
	}
}

// Flush implements flowgraph.Block: a peak still open at end of stream is
// closed and reported in a final empty ChunkMeta.
func (p *PeakDetector) Flush(emit func(flowgraph.Item)) error {
	if !p.inPeak {
		return nil
	}
	meta := p.metas.get()
	meta.History = p.history
	meta.NoiseFloor = p.NoiseFloor()
	meta.Busy = true
	meta.Chunk.Span = iq.Interval{Start: p.cur.Span.End, End: p.cur.Span.End}
	p.closePeak(p.cur.Span.End, meta)
	emit(meta)
	return nil
}
