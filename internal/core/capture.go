package core

import (
	"rfdump/internal/iq"
)

// Capture-on-detection: the core half of the spectrum DVR. The window
// already holds every sample of a fresh detection (the dispatcher
// flushes spans within MaxPending samples, far inside the retention
// target), so capturing a burst is one clipped copy out of the pooled
// blocks into a session-owned buffer — no allocation in steady state,
// no copy at all when nothing is detected. The zero-alloc gates stay
// honest: a quiet stream pays nothing, a detection pays one bounded
// memcpy accounted under history/capture/*.

// defaultCaptureMax bounds one captured burst (64k samples = 8 ms at
// 8 Msps, comfortably past the longest 802.11b frame).
const defaultCaptureMax = 1 << 16

// captureHook wraps the session's detection callback: deliver the
// verdict first, then copy the triggering span (padded, clipped,
// bounded) out of the window and hand it to the capture sink. The
// buffer is reused across detections — the sink's contract is to
// consume it before returning.
func (e *Engine) captureHook(window blockStore, cfg StreamConfig) func(Detection) {
	pad := cfg.CapturePad
	if pad == 0 {
		pad = iq.ChunkSamples
	}
	if pad < 0 {
		pad = 0
	}
	maxSamples := cfg.CaptureMaxSamples
	if maxSamples <= 0 {
		maxSamples = defaultCaptureMax
	}
	inner := cfg.OnDetection
	deliver := cfg.OnDetectionCapture
	bursts := e.cfg.Metrics.Counter("history/capture/bursts")
	samples := e.cfg.Metrics.Counter("history/capture/samples")
	truncated := e.cfg.Metrics.Counter("history/capture/truncated")
	var buf iq.Samples // session-owned, reused across detections
	return func(d Detection) {
		if inner != nil {
			inner(d)
		}
		span := d.Span.Expand(iq.Tick(pad))
		if span.Len() > iq.Tick(maxSamples) {
			// Keep the head: preamble and sync words live there, and they
			// are what a later re-demodulation locks onto.
			span.End = span.Start + iq.Tick(maxSamples)
			truncated.Inc()
		}
		var got iq.Interval
		buf, got = window.CopySlice(span, buf)
		if len(buf) == 0 {
			return // span already evicted (shed storm); nothing to store
		}
		bursts.Inc()
		samples.Add(int64(len(buf)))
		deliver(d, got, buf)
	}
}
