// Package core implements the RFDump architecture itself: the
// protocol-agnostic detection stage (peak detector with integrated
// energy filtering producing per-chunk metadata), the protocol-specific
// fast detectors (timing, phase and frequency analysis for 802.11b,
// Bluetooth, microwave ovens and ZigBee), and the dispatcher that
// selectively forwards tentatively-classified sample blocks to the
// analysis stage (Figure 2 of the paper).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rfdump/internal/blocks"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// Chunk is the unit the pipeline's source feeds in: ChunkSamples samples
// plus their position. Samples references the underlying stream (no
// copies; the whole point of the architecture is to touch the stream as
// little as possible).
type Chunk struct {
	// Seq is the chunk index.
	Seq int
	// Span is the chunk's sample range.
	Span iq.Interval
	// Samples is the chunk's view of the stream.
	Samples iq.Samples
	// Block, when non-nil, is the pooled block backing Samples. Holders
	// of the chunk beyond the producing stage must Retain it; the batch
	// path (a whole trace in one slice) leaves it nil and samples live
	// for the run.
	Block *blocks.Block
}

// Peak is one detected RF transmission: the protocol-agnostic stage's
// core metadata (paper Section 3.2).
type Peak struct {
	// Span is the refined start/end of the transmission.
	Span iq.Interval
	// MeanPower is the average power over the peak.
	MeanPower float64
	// MaxPower is the largest windowed average seen inside the peak.
	MaxPower float64
	// MinPower is the smallest windowed average seen in the peak's
	// interior. It is approximate: a strong noise sample in the decay
	// tail can drag it down, so envelope checks should prefer
	// MaxPower/MeanPower (which the microwave detector uses for its
	// "amplitude of the signal is constant across peaks" test).
	MinPower float64
}

// String implements fmt.Stringer.
func (p Peak) String() string {
	return fmt.Sprintf("peak%v pwr=%.2f", p.Span, p.MeanPower)
}

// PeakHistory is the shared "history window of recent peaks detected" the
// chunk metadata points to. It wraps iq.HistoryRing with power metadata.
// It is safe for concurrent use: the multi-threaded scheduler has the
// peak detector appending while protocol-specific detectors scan.
type PeakHistory struct {
	mu    sync.RWMutex
	ring  []Peak
	next  int
	count int
}

// NewPeakHistory returns a history holding up to capacity peaks.
func NewPeakHistory(capacity int) *PeakHistory {
	if capacity < 1 {
		capacity = 1
	}
	return &PeakHistory{ring: make([]Peak, capacity)}
}

// Append records a completed peak as most recent.
func (h *PeakHistory) Append(p Peak) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring[h.next] = p
	h.next = (h.next + 1) % len(h.ring)
	if h.count < len(h.ring) {
		h.count++
	}
}

// Len returns the number of peaks held.
func (h *PeakHistory) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// at is the lock-free indexing core (callers hold the lock).
func (h *PeakHistory) at(i int) Peak {
	if i < 0 || i >= h.count {
		panic("core: PeakHistory index out of range")
	}
	idx := h.next - 1 - i
	for idx < 0 {
		idx += len(h.ring)
	}
	return h.ring[idx]
}

// At returns the i-th most recent peak (0 = newest); it panics when out
// of range.
func (h *PeakHistory) At(i int) Peak {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.at(i)
}

// ScanBack visits peaks newest-first until fn returns false. The ring is
// read-locked for the duration: fn must not call Append.
func (h *PeakHistory) ScanBack(fn func(Peak) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for i := 0; i < h.count; i++ {
		if !fn(h.at(i)) {
			return
		}
	}
}

// ChunkMeta is the metadata the protocol-agnostic stage associates with
// each chunk of samples: "a concise representation of the sample stream
// ... stored separately as metadata associated with each block of
// samples" (Section 2.2). Protocol-specific detectors operate on this,
// not on the samples.
type ChunkMeta struct {
	// Chunk is the underlying chunk (samples remain accessible for the
	// detectors that need signal access, e.g. phase analysis). When
	// Chunk.Block is non-nil a pooled meta owns one reference to it,
	// released with the meta's last Dispose.
	Chunk Chunk
	// AvgPower is the chunk's average power.
	AvgPower float64
	// NoiseFloor is the detector's current noise floor estimate.
	NoiseFloor float64
	// Busy reports whether the chunk passed the energy filter.
	Busy bool
	// Completed lists peaks that ended within this chunk (refined spans
	// may begin in earlier chunks).
	Completed []Peak
	// History points to the shared recent-peak ring.
	History *PeakHistory

	// Pooled-lifetime state (zero for metas built by hand, e.g. in
	// tests, which then have value semantics and Retain/Dispose no-ops).
	refs atomic.Int32
	home *metaPool
}

// Retain adds a scheduler reference (flowgraph.Owned); a no-op for
// non-pooled metas.
func (m *ChunkMeta) Retain() {
	if m.home == nil {
		return
	}
	if m.refs.Add(1) <= 1 {
		panic("core: ChunkMeta retained after release")
	}
}

// Dispose drops one scheduler reference; the last one releases the
// backing block and recycles the meta. A no-op for non-pooled metas.
func (m *ChunkMeta) Dispose() {
	if m.home == nil {
		return
	}
	switch n := m.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("core: ChunkMeta disposed twice")
	}
	if b := m.Chunk.Block; b != nil {
		b.Release()
	}
	m.Chunk = Chunk{}
	m.AvgPower, m.NoiseFloor, m.Busy = 0, 0, false
	m.Completed = m.Completed[:0]
	m.History = nil
	m.home.pool.Put(m)
}

// metaPool recycles ChunkMeta values through the detection stage: one
// meta per chunk at 40k chunks/s is otherwise a steady GC tax.
type metaPool struct {
	pool sync.Pool
}

// get returns a reset meta with one reference.
func (mp *metaPool) get() *ChunkMeta {
	m, ok := mp.pool.Get().(*ChunkMeta)
	if !ok {
		m = &ChunkMeta{home: mp}
	}
	m.refs.Store(1)
	return m
}

// Detection is a fast detector's verdict: a tentative mapping of a sample
// span to a protocol family, with a confidence value (Section 2.2:
// "identifies properties of blocks of samples ... and associates
// confidence values with these properties").
type Detection struct {
	// Family is the claimed protocol family.
	Family protocols.ID
	// Span is the sample range to forward to the family's analyzer.
	Span iq.Interval
	// Detector names the module that fired.
	Detector string
	// Confidence in [0, 1].
	Confidence float64
	// Channel is the claimed protocol channel, or -1.
	Channel int
}

// String implements fmt.Stringer.
func (d Detection) String() string {
	return fmt.Sprintf("%s %s%v conf=%.2f", d.Detector, d.Family.FamilyName(), d.Span, d.Confidence)
}
