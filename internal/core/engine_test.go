package core

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"rfdump/internal/iq"
)

// sessionStream is the reference burst pattern (WiFi-shaped data+ACK
// timing) every session in the multi-session tests monitors.
func sessionStream() iq.Samples {
	return burstStream(200_000, 20, 51,
		iq.Interval{Start: 20_000, End: 60_000},
		iq.Interval{Start: 60_080, End: 62_500},
		iq.Interval{Start: 100_000, End: 140_000},
		iq.Interval{Start: 140_080, End: 142_500},
	)
}

// TestEngineMultiSession drives several concurrent sessions through one
// Engine (run under -race in CI). Each session must produce exactly the
// single-session result: sessions share the block pool and configuration
// but nothing per-run.
func TestEngineMultiSession(t *testing.T) {
	stream := sessionStream()
	ref, err := NewPipeline(testClock, TimingOnly()).
		RunStream(&sliceReader{s: stream}, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Detections) == 0 {
		t.Fatal("reference run found nothing; test stream is broken")
	}

	e := NewEngine(testClock, TimingOnly())
	const sessions = 6
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s, err := e.NewSession(StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			results[i], errs[i] = s.Run(&sliceReader{s: stream})
		}(i, s)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		res := results[i]
		if !reflect.DeepEqual(res.Detections, ref.Detections) {
			t.Errorf("session %d: %d detections, want %d (or spans differ)",
				i, len(res.Detections), len(ref.Detections))
		}
		if len(res.Requests) != len(ref.Requests) {
			t.Errorf("session %d: %d requests, want %d", i, len(res.Requests), len(ref.Requests))
		}
		if res.StreamLen != iq.Tick(len(stream)) {
			t.Errorf("session %d: stream len %d", i, res.StreamLen)
		}
	}
	// Every block reference must have been returned: window eviction,
	// chunk disposal and meta disposal all balance out.
	if live := e.Pool().Stats().Live; live != 0 {
		t.Errorf("%d blocks still live after all sessions finished", live)
	}
}

// TestEngineMultiSessionDistinctStreams: concurrent sessions over
// different streams stay independent — each reports its own stream's
// detections, not a neighbor's.
func TestEngineMultiSessionDistinctStreams(t *testing.T) {
	busy := sessionStream()
	quiet := burstStream(200_000, 20, 99) // noise only
	e := NewEngine(testClock, TimingOnly())

	type out struct {
		res *Result
		err error
	}
	run := func(s iq.Samples) out {
		sess, err := e.NewSession(StreamConfig{})
		if err != nil {
			return out{nil, err}
		}
		res, err := sess.Run(&sliceReader{s: s})
		return out{res, err}
	}
	var busyOut, quietOut out
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); busyOut = run(busy) }()
	go func() { defer wg.Done(); quietOut = run(quiet) }()
	wg.Wait()

	if busyOut.err != nil || quietOut.err != nil {
		t.Fatalf("errors: %v / %v", busyOut.err, quietOut.err)
	}
	if len(busyOut.res.Detections) == 0 {
		t.Error("busy session found nothing")
	}
	if len(quietOut.res.Detections) != 0 {
		t.Errorf("quiet session found %d detections from its neighbor?", len(quietOut.res.Detections))
	}
}

func TestSessionSingleUse(t *testing.T) {
	e := NewEngine(testClock, TimingOnly())
	s, err := e.NewSession(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&sliceReader{s: make(iq.Samples, 4 * iq.ChunkSamples)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(&sliceReader{s: make(iq.Samples, 4 * iq.ChunkSamples)}); err == nil {
		t.Fatal("second Run on one session should fail")
	}
}

// TestStreamSteadyStateAllocs is the acceptance gate for the zero-copy
// refactor: steady-state block processing must not allocate per chunk.
// A first session warms the pools; a second session over the same engine
// is then measured with the runtime's allocation counter. The budget of
// 0.1 allocations per chunk tolerates one-off growth (deque, scratch,
// sink buffers) and sync.Pool slack while failing loudly if anything on
// the per-chunk path boxes, copies or appends per chunk (which costs
// >= 1 alloc/chunk).
func TestStreamSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; alloc gate runs in the non-race job")
	}
	const n = 4000 * iq.ChunkSamples // 4000 chunks
	stream := burstStream(n, 20, 7)  // noise: the steady, quiet ether
	cfg := TimingOnly()
	cfg.Peak.NoiseFloor = 1
	e := NewEngine(testClock, cfg)

	runOnce := func() {
		s, err := e.NewSession(StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(&sliceReader{s: stream}); err != nil {
			t.Fatal(err)
		}
	}
	runOnce() // warm pools, grow scratch to steady state

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	runOnce()
	runtime.ReadMemStats(&after)

	allocs := float64(after.Mallocs - before.Mallocs)
	perChunk := allocs / float64(n/iq.ChunkSamples)
	t.Logf("%.0f allocations over %d chunks = %.4f allocs/chunk", allocs, n/iq.ChunkSamples, perChunk)
	if perChunk > 0.1 {
		t.Errorf("steady-state streaming allocates %.3f objects per chunk, want ~0 (<= 0.1)", perChunk)
	}
	if live := e.Pool().Stats().Live; live != 0 {
		t.Errorf("%d blocks still live after runs", live)
	}
}

// BenchmarkStreamPerChunk measures the full streaming path per chunk;
// run with -benchmem to see the allocs/op acceptance number (expected 0
// in steady state; rfbench -json records it in the v2 schema).
func BenchmarkStreamPerChunk(b *testing.B) {
	const n = 1000 * iq.ChunkSamples
	stream := burstStream(n, 20, 7)
	cfg := TimingOnly()
	cfg.Peak.NoiseFloor = 1
	e := NewEngine(testClock, cfg)
	// Warm-up session.
	if s, err := e.NewSession(StreamConfig{}); err != nil {
		b.Fatal(err)
	} else if _, err := s.Run(&sliceReader{s: stream}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(iq.ChunkSamples * 8))
	b.ResetTimer()
	chunks := 0
	for chunks < b.N {
		b.StopTimer()
		s, err := e.NewSession(StreamConfig{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := s.Run(&sliceReader{s: stream}); err != nil {
			b.Fatal(err)
		}
		chunks += n / iq.ChunkSamples
	}
}
