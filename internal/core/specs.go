package core

import (
	"rfdump/internal/flowgraph"
	"rfdump/internal/protocols"
)

// This file exports the built-in fast detectors as registry specs: the
// constructors below are how the detectors of this package are selected
// into a Config (directly, as the experiments do with tuned parameter
// structs) and how the builtin module package attaches them to their
// protocol modules. Each spec builds a fresh detector instance per
// pipeline session; the captured config struct is copied by value, so a
// spec is safe to share across concurrent engines.

// WiFiTimingSpec is the 802.11b SIFS/DIFS gap detector (Section 4.4).
func WiFiTimingSpec(cfg WiFiTimingConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:    "802.11-timing",
		Class:   protocols.ClassTiming,
		Default: true,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewWiFiTiming(env.Clock, cfg)
		},
	}
}

// BTTimingSpec is the Bluetooth 625 us slot-grid detector (Section 4.4).
func BTTimingSpec(cfg BTTimingConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:    "bt-timing",
		Class:   protocols.ClassTiming,
		Default: true,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewBTTiming(env.Clock, cfg)
		},
	}
}

// MicrowaveTimingSpec is the AC-cycle gating detector for microwave
// ovens (Table 2's 16.7/20 ms emission period).
func MicrowaveTimingSpec() protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:  "microwave-timing",
		Class: protocols.ClassTiming,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewMicrowaveTiming(env.Clock)
		},
	}
}

// ZigBeeTimingSpec is the 802.15.4 SIFS-turnaround detector (the
// paper's Section 3.2 worked example of protocol extension).
func ZigBeeTimingSpec() protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:  "zigbee-timing",
		Class: protocols.ClassTiming,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewZigBeeTiming(env.Clock)
		},
	}
}

// WiFiPhaseSpec is the DBPSK/Barker phase-signature detector.
func WiFiPhaseSpec(cfg WiFiPhaseConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:    "802.11-phase",
		Class:   protocols.ClassPhase,
		Default: true,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewWiFiPhase(env.Samples, cfg)
		},
	}
}

// BTPhaseSpec is the GFSK continuous-phase detector.
func BTPhaseSpec(cfg BTPhaseConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:    "bt-phase",
		Class:   protocols.ClassPhase,
		Default: true,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewBTPhase(env.Samples, env.Clock, cfg)
		},
	}
}

// BTFreqSpec is the 1 MHz hop-channel occupancy detector.
func BTFreqSpec(cfg BTFreqConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:    "bt-freq",
		Class:   protocols.ClassFreq,
		Default: true,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewBTFreq(cfg)
		},
	}
}

// OFDMSpec is the 802.11g cyclic-prefix correlation detector (the
// paper's future-work OFDM extension).
func OFDMSpec(cfg OFDMConfig) protocols.DetectorSpec {
	return protocols.DetectorSpec{
		Name:  "802.11g-ofdm",
		Class: protocols.ClassPhase,
		New: func(env protocols.DetectorEnv) flowgraph.Block {
			return NewOFDMDetector(env.Samples, cfg)
		},
	}
}
