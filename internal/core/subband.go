package core

import (
	"fmt"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// SubbandPeak addresses the Section 5.4 limitation the paper calls out:
// "when we monitor wider bands, we are likely to observe non-colliding
// packets that overlap in time but not in frequency. To our current peak
// detector, these may look like collisions or single coalesced packets.
// ... we would need to consider subdividing the monitored band,
// balancing the resulting complexity with reduced effectiveness of
// detection on wider bands."
//
// It splits the band into N subbands with one chunk-granularity energy
// state machine per subband: two narrowband transmissions on different
// channels produce two distinct peaks instead of one coalesced blob. The
// tradeoff is exactly the one the paper predicts: per-chunk FFT cost and
// coarser (chunk-resolution) peak edges, so the fine-grained
// PeakDetector remains the default and SubbandPeak is an optional
// second protocol-agnostic stage.
type SubbandPeak struct {
	// Bands is the number of subbands (default 4 over the 8 MHz band).
	Bands int
	// ThresholdDB over the per-subband noise floor opens a peak.
	ThresholdDB float64
	// FFTSize per chunk.
	FFTSize int
	// MinChunks suppresses single-chunk blips.
	MinChunks int

	window   []float64 // Hann window against inter-band leakage
	scratch  iq.Samples
	noise    []float64 // per-subband floor estimate
	initDone []bool
	open     []iq.Interval // open peak per subband (Start >= 0)
	runLen   []int
}

// SubbandPeakResult is one completed subband peak.
type SubbandPeakResult struct {
	// Band index (0 = lowest frequency).
	Band int
	// Span at chunk granularity.
	Span iq.Interval
}

// String implements fmt.Stringer.
func (r SubbandPeakResult) String() string {
	return fmt.Sprintf("band %d %v", r.Band, r.Span)
}

// NewSubbandPeak returns the detector.
func NewSubbandPeak(bands int) *SubbandPeak {
	if bands <= 0 {
		bands = 4
	}
	// The subband threshold sits higher than the wideband detector's
	// 4 dB: a narrowband signal's spectral skirts legitimately raise
	// neighbouring subbands by a few dB, and only the occupied channel
	// should peak.
	s := &SubbandPeak{Bands: bands, ThresholdDB: 10, FFTSize: 256, MinChunks: 2}
	s.noise = make([]float64, bands)
	s.initDone = make([]bool, bands)
	s.open = make([]iq.Interval, bands)
	s.runLen = make([]int, bands)
	for b := range s.open {
		s.open[b].Start = -1
	}
	return s
}

// Name implements flowgraph.Block.
func (s *SubbandPeak) Name() string { return "subband-peak" }

// Process implements flowgraph.Block: consumes Chunk or *ChunkMeta
// items and emits SubbandPeakResult items as subband peaks complete.
func (s *SubbandPeak) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	var chunk Chunk
	switch v := item.(type) {
	case Chunk:
		chunk = v
	case *ChunkMeta:
		chunk = v.Chunk
	default:
		return fmt.Errorf("core: SubbandPeak got %T", item)
	}
	if len(chunk.Samples) == 0 {
		return nil
	}
	// Window the chunk: rectangular-window sidelobes (-13 dB) leak a
	// strong narrowband signal into neighbouring subbands; Hann keeps
	// the split clean.
	if len(s.window) != len(chunk.Samples) {
		s.window = dsp.HannWindow(len(chunk.Samples))
		s.scratch = make(iq.Samples, len(chunk.Samples))
	}
	copy(s.scratch, chunk.Samples)
	dsp.ApplyWindow(s.scratch, s.window)
	powers := dsp.BinPowers(s.scratch, s.FFTSize, s.Bands)
	// BinPowers returns total power per FFT; normalize per sample.
	for b := range powers {
		powers[b] /= float64(s.FFTSize)
	}
	for b := 0; b < s.Bands; b++ {
		p := powers[b]
		// Per-subband CFAR-style calibration: the floor tracks the mean
		// of idle chunks (an exponential average), not the minimum — a
		// minimum dives into the low tail of the per-chunk chi-squared
		// power distribution and makes the threshold chatter.
		if !s.initDone[b] {
			s.noise[b] = p
			s.initDone[b] = true
		}
		thr := s.noise[b] * iq.FromDB(s.ThresholdDB)
		busy := p > thr
		if !busy {
			s.noise[b] += (p - s.noise[b]) / 64
		}
		if busy {
			if s.open[b].Start < 0 {
				s.open[b].Start = chunk.Span.Start
				s.runLen[b] = 0
			}
			s.open[b].End = chunk.Span.End
			s.runLen[b]++
		} else if s.open[b].Start >= 0 {
			if s.runLen[b] >= s.MinChunks {
				emit(SubbandPeakResult{Band: b, Span: s.open[b]})
			}
			s.open[b].Start = -1
		}
	}
	return nil
}

// Flush implements flowgraph.Block.
func (s *SubbandPeak) Flush(emit func(flowgraph.Item)) error {
	for b := 0; b < s.Bands; b++ {
		if s.open[b].Start >= 0 && s.runLen[b] >= s.MinChunks {
			emit(SubbandPeakResult{Band: b, Span: s.open[b]})
		}
		s.open[b].Start = -1
	}
	return nil
}
