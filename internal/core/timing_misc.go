package core

import (
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// MicrowaveTiming classifies long constant-envelope peaks recurring at
// the AC line period as microwave-oven emission ("A microwave timing
// block might look for peaks occurring at the rate of AC frequency ...
// since the emitted signal from a residential microwave has constant
// power, we can use signal strength information to verify whether the
// amplitude of the signal is constant across peaks", Section 3.2).
type MicrowaveTiming struct {
	clock iq.Clock

	minLen, maxLen iq.Tick
	period         iq.Tick
	tol            iq.Tick

	prevSpan  iq.Interval
	prevPower float64
	havePrev  bool
	streak    int
}

// NewMicrowaveTiming returns the detector (60 Hz AC assumed; a second
// instance can watch the 50 Hz grid).
func NewMicrowaveTiming(clock iq.Clock) *MicrowaveTiming {
	period := clock.Ticks(protocols.MicrowaveACPeriodUS)
	return &MicrowaveTiming{
		clock:  clock,
		minLen: period / 4,     // at least a quarter cycle of emission
		maxLen: period * 3 / 4, // at most three quarters
		period: period,
		tol:    period / 20, // ±5% period jitter
	}
}

// Name implements flowgraph.Block.
func (m *MicrowaveTiming) Name() string { return "microwave-timing" }

// Process implements flowgraph.Block.
func (m *MicrowaveTiming) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		m.observe(pk, emit)
	}
	return nil
}

func (m *MicrowaveTiming) observe(pk Peak, emit func(flowgraph.Item)) {
	n := pk.Span.Len()
	if n < m.minLen || n > m.maxLen {
		return
	}
	// Constant-envelope check: the largest windowed average stays close
	// to the mean (edge windows straddle the burst boundary, so the
	// windowed minimum is not usable for this).
	if pk.MeanPower <= 0 || pk.MaxPower/pk.MeanPower > 1.6 {
		return
	}
	if m.havePrev {
		dt := pk.Span.Start - m.prevSpan.Start
		powerRatio := pk.MeanPower / m.prevPower
		if absTick(dt-m.period) <= m.tol && powerRatio > 0.5 && powerRatio < 2 {
			m.streak++
			conf := 0.6 + 0.1*float64(m.streak)
			if conf > 0.95 {
				conf = 0.95
			}
			emit(Detection{
				Family:     protocols.Microwave,
				Span:       pk.Span,
				Detector:   "microwave-timing",
				Confidence: conf,
				Channel:    -1,
			})
			// Report the anchor burst the first time a streak forms.
			if m.streak == 1 {
				emit(Detection{
					Family:     protocols.Microwave,
					Span:       m.prevSpan,
					Detector:   "microwave-timing",
					Confidence: 0.6,
					Channel:    -1,
				})
			}
		} else {
			m.streak = 0
		}
	}
	m.prevSpan = pk.Span
	m.prevPower = pk.MeanPower
	m.havePrev = true
}

// Flush implements flowgraph.Block.
func (m *MicrowaveTiming) Flush(func(flowgraph.Item)) error { return nil }

// ZigBeeTiming classifies peaks separated by the 802.15.4 turnaround
// (tACK/SIFS) or whole backoff periods as ZigBee — the paper's worked
// example of extending timing analysis to a new protocol ("a ZigBee
// timing block would look for spacings that are a multiple of backoff
// periods (slot time), LIFS, SIFS or tACK", Section 3.2). It is
// registered by the examples/newprotocol demo.
type ZigBeeTiming struct {
	clock iq.Clock

	sifs    iq.Tick
	lifs    iq.Tick
	backoff iq.Tick
	tol     iq.Tick

	prevEnd  iq.Tick
	prevSpan iq.Interval
	havePrev bool
}

// NewZigBeeTiming returns the detector.
func NewZigBeeTiming(clock iq.Clock) *ZigBeeTiming {
	return &ZigBeeTiming{
		clock:   clock,
		sifs:    clock.Ticks(protocols.ZigBeeSIFS),
		lifs:    clock.Ticks(protocols.ZigBeeLIFS),
		backoff: clock.Ticks(protocols.ZigBeeBackoffPeriod),
		tol:     iq.Tick(8 * clock.Rate / 1e6), // ±8 us
	}
}

// Name implements flowgraph.Block.
func (z *ZigBeeTiming) Name() string { return "zigbee-timing" }

// Process implements flowgraph.Block.
func (z *ZigBeeTiming) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		z.observe(pk, emit)
	}
	return nil
}

func (z *ZigBeeTiming) observe(pk Peak, emit func(flowgraph.Item)) {
	defer func() {
		z.prevEnd = pk.Span.End
		z.prevSpan = pk.Span
		z.havePrev = true
	}()
	if !z.havePrev {
		return
	}
	gap := pk.Span.Start - z.prevEnd
	if gap <= 0 {
		return
	}
	match := false
	switch {
	case absTick(gap-z.sifs) <= z.tol:
		match = true
	case absTick(gap-z.lifs) <= z.tol:
		match = true
	default:
		// Whole backoff periods, up to 8.
		m := int((gap + z.backoff/2) / z.backoff)
		if m >= 1 && m <= 8 && absTick(gap-iq.Tick(m)*z.backoff) <= z.tol {
			match = true
		}
	}
	if !match {
		return
	}
	for _, span := range []iq.Interval{z.prevSpan, pk.Span} {
		emit(Detection{
			Family:     protocols.ZigBee,
			Span:       span,
			Detector:   "zigbee-timing",
			Confidence: 0.6,
			Channel:    -1,
		})
	}
}

// Flush implements flowgraph.Block.
func (z *ZigBeeTiming) Flush(func(flowgraph.Item)) error { return nil }
