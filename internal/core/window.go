package core

import (
	"sync"

	"rfdump/internal/blocks"
	"rfdump/internal/iq"
)

// BlockWindow is the streaming pipeline's sample store: a bounded deque
// of retained pooled blocks standing in for the contiguous stream. It
// replaces SlidingWindow on the zero-copy path — instead of copying every
// block into one compacting buffer, the window retains the blocks
// themselves and evicts (releases) the oldest once the retention target
// is exceeded, so a recycled buffer can never be read through the window.
//
// Slice clips to retained history like every accessor. A slice that falls
// inside a single block is a zero-copy view of that block; one that
// crosses block boundaries is assembled into an internal scratch buffer.
// Either way the returned slice is valid only until the next Slice or
// Append call — the contract every detector and analyzer already honors
// (each probes one span at a time, and the depth-first scheduler finishes
// a stage before the source appends again). The parallel scheduler must
// wrap the window in lockedBlockWindow, which copies.
type BlockWindow struct {
	blks   []*blocks.Block
	starts []iq.Tick // starts[i] is the absolute tick of blks[i][0]
	head   int       // index of the oldest live block
	end    iq.Tick   // one past the newest sample
	total  int       // live samples across blocks
	limit  int       // retention target in samples

	scratch iq.Samples // cross-block slice assembly, reused
}

// NewBlockWindow returns a window retaining at least limit samples
// (minimum four chunks, like SlidingWindow).
func NewBlockWindow(limit int) *BlockWindow {
	if limit < 4*iq.ChunkSamples {
		limit = 4 * iq.ChunkSamples
	}
	return &BlockWindow{limit: limit}
}

// AppendBlock takes ownership of one reference to b (the caller's) and
// makes its samples the newest window content. Blocks must arrive in
// stream order; eviction releases the oldest blocks once the retention
// target is exceeded.
func (w *BlockWindow) AppendBlock(b *blocks.Block) {
	if len(w.blks) == cap(w.blks) && w.head > len(w.blks)/2 {
		// Compact the deque in place so steady-state appends stay
		// allocation-free (mirrors SlidingWindow's buffer compaction).
		n := copy(w.blks, w.blks[w.head:])
		copy(w.starts, w.starts[w.head:])
		w.blks = w.blks[:n]
		w.starts = w.starts[:n]
		w.head = 0
	}
	w.blks = append(w.blks, b)
	w.starts = append(w.starts, w.end)
	w.end += iq.Tick(b.Len())
	w.total += b.Len()
	for w.head < len(w.blks)-1 && w.total-w.blks[w.head].Len() >= w.limit {
		w.total -= w.blks[w.head].Len()
		w.blks[w.head].Release()
		w.blks[w.head] = nil
		w.head++
	}
}

// End returns the absolute tick one past the newest sample.
func (w *BlockWindow) End() iq.Tick { return w.end }

// Base returns the absolute tick of the oldest retained sample.
func (w *BlockWindow) Base() iq.Tick { return w.end - iq.Tick(w.total) }

// Close releases every retained block. The window is empty but usable
// afterwards (ticks keep counting from End).
func (w *BlockWindow) Close() {
	for i := w.head; i < len(w.blks); i++ {
		w.blks[i].Release()
		w.blks[i] = nil
	}
	w.blks = w.blks[:0]
	w.starts = w.starts[:0]
	w.head = 0
	w.total = 0
}

// clip bounds iv to retained history and locates the block holding the
// first sample. It returns the clipped bounds, the index of that block,
// and the offset of lo within it; ok is false for an empty result. Pure
// read — safe under a shared lock.
func (w *BlockWindow) clip(iv iq.Interval) (lo, hi iq.Tick, idx, off int, ok bool) {
	lo, hi = iv.Start, iv.End
	if base := w.Base(); lo < base {
		lo = base
	}
	if hi > w.end {
		hi = w.end
	}
	if hi <= lo {
		return 0, 0, 0, 0, false
	}
	// Binary search for the newest block starting at or before lo
	// (hand-rolled: sort.Search's closure would allocate per call).
	i, j := w.head, len(w.blks)
	for i < j-1 {
		mid := (i + j) / 2
		if w.starts[mid] <= lo {
			i = mid
		} else {
			j = mid
		}
	}
	return lo, hi, i, int(lo - w.starts[i]), true
}

// Slice implements SampleAccessor, clipping to retained history. See the
// type comment for the validity contract.
func (w *BlockWindow) Slice(iv iq.Interval) iq.Samples {
	lo, hi, i, off, ok := w.clip(iv)
	if !ok {
		return nil
	}
	first := w.blks[i]
	if hi <= w.starts[i]+iq.Tick(first.Len()) {
		// Entirely inside one block: zero-copy view.
		return first.Samples()[off : off+int(hi-lo)]
	}
	n := int(hi - lo)
	if cap(w.scratch) < n {
		w.scratch = make(iq.Samples, n)
	}
	out := w.scratch[:n]
	filled := copy(out, first.Samples()[off:])
	for i++; filled < n; i++ {
		filled += copy(out[filled:], w.blks[i].Samples())
	}
	return out
}

// CopySlice copies the clipped interval into dst (grown when needed)
// and returns the filled slice together with the actual clipped bounds.
// Unlike Slice, the result does not alias window storage, so the caller
// may hold it across appends — the capture-on-detection path reuses one
// buffer per session this way, keeping steady state allocation-free.
func (w *BlockWindow) CopySlice(iv iq.Interval, dst iq.Samples) (iq.Samples, iq.Interval) {
	lo, hi, i, off, ok := w.clip(iv)
	if !ok {
		return dst[:0], iq.Interval{}
	}
	n := int(hi - lo)
	if cap(dst) < n {
		dst = make(iq.Samples, n)
	}
	out := dst[:n]
	filled := copy(out, w.blks[i].Samples()[off:])
	for i++; filled < n; i++ {
		filled += copy(out[filled:], w.blks[i].Samples())
	}
	return out, iq.Interval{Start: lo, End: hi}
}

// sliceCopy returns a freshly allocated copy of the clipped interval
// without touching the shared scratch buffer — a pure read, safe for
// concurrent callers holding a shared lock.
func (w *BlockWindow) sliceCopy(iv iq.Interval) iq.Samples {
	lo, hi, i, off, ok := w.clip(iv)
	if !ok {
		return nil
	}
	out := make(iq.Samples, int(hi-lo))
	filled := copy(out, w.blks[i].Samples()[off:])
	for i++; filled < len(out); i++ {
		filled += copy(out[filled:], w.blks[i].Samples())
	}
	return out
}

// lockedBlockWindow synchronizes a BlockWindow for the parallel
// scheduler. Like lockedWindow it hands out copies from Slice: a block
// goroutine may still be reading while the source appends and evicts, so
// views into blocks or the shared scratch are not safe to share.
type lockedBlockWindow struct {
	mu sync.RWMutex
	w  *BlockWindow
}

func (l *lockedBlockWindow) AppendBlock(b *blocks.Block) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.AppendBlock(b)
}

func (l *lockedBlockWindow) End() iq.Tick {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.w.End()
}

func (l *lockedBlockWindow) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Close()
}

func (l *lockedBlockWindow) Slice(iv iq.Interval) iq.Samples {
	// sliceCopy assembles straight into the returned copy instead of the
	// window's shared scratch, so concurrent readers under RLock do not
	// race on BlockWindow.scratch.
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.w.sliceCopy(iv)
}

func (l *lockedBlockWindow) CopySlice(iv iq.Interval, dst iq.Samples) (iq.Samples, iq.Interval) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.w.CopySlice(iv, dst)
}

// blockStore is what a streaming Session needs from its sample store.
type blockStore interface {
	SampleAccessor
	AppendBlock(b *blocks.Block)
	End() iq.Tick
	Close()
	// CopySlice is Slice into a caller-owned buffer, returning the
	// clipped bounds — the capture path's non-aliasing read.
	CopySlice(iv iq.Interval, dst iq.Samples) (iq.Samples, iq.Interval)
}
