package core

import (
	"testing"
	"time"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
)

// TestShedTransitionsObservableAsMetrics drives the pacer through the
// full shed ladder and back down, asserting that every transition —
// the shed order (full demod → header-only → dropped analysis → whole
// chunks) and each hysteresis re-admission — lands in exactly one
// core/shed/transition/* counter, and that the level gauge tracks.
func TestShedTransitionsObservableAsMetrics(t *testing.T) {
	base := time.Unix(1000, 0)
	wall := base
	reg := metrics.NewRegistry()
	p := newPacer(testClock, OverloadConfig{Now: func() time.Time { return wall }})
	p.instrument(reg)

	transitions := func() map[string]int64 {
		out := map[string]int64{}
		for name, v := range reg.Snapshot().Counters {
			if len(name) > len("core/shed/transition/") && name[:len("core/shed/transition/")] == "core/shed/transition/" {
				out[name[len("core/shed/transition/"):]] = v
			}
		}
		return out
	}

	steps := []struct {
		name           string
		elapsed        time.Duration // wall time since base
		streamed       time.Duration // stream time delivered
		wantLevel      ShedLevel
		wantTransition string // "" = no transition this step
	}{
		// Raise path: the shed order of DESIGN.md §8 — demod first,
		// analysis next, whole chunks last (watermarks 50/150/400 ms).
		{"steady", 0, 0, ShedNone, ""},
		{"shed-demod", 60 * time.Millisecond, 0, ShedDemod, "none->shed-demod"},
		{"shed-analysis", 200 * time.Millisecond, 0, ShedAnalysis, "shed-demod->shed-analysis"},
		{"shed-chunks", 500 * time.Millisecond, 0, ShedChunks, "shed-analysis->shed-chunks"},
		// Hysteresis: lag 300 ms is above half the 400 ms chunk
		// watermark, so the level holds — no transition recorded.
		{"hold", 500 * time.Millisecond, 200 * time.Millisecond, ShedChunks, ""},
		// Re-admission path: each recovery is its own transition.
		{"readmit-analysis", 500 * time.Millisecond, 320 * time.Millisecond, ShedAnalysis, "shed-chunks->shed-analysis"},
		{"readmit-demod", 500 * time.Millisecond, 440 * time.Millisecond, ShedDemod, "shed-analysis->shed-demod"},
		{"readmit-none", 500 * time.Millisecond, 480 * time.Millisecond, ShedNone, "shed-demod->none"},
	}

	seen := map[string]int64{}
	for _, step := range steps {
		wall = base.Add(step.elapsed)
		if lvl := p.observe(testClock.Ticks(step.streamed)); lvl != step.wantLevel {
			t.Fatalf("%s: level %v, want %v", step.name, lvl, step.wantLevel)
		}
		if got := reg.Snapshot().Gauges["core/shed/level"]; got != int64(step.wantLevel) {
			t.Errorf("%s: level gauge %d, want %d", step.name, got, int64(step.wantLevel))
		}
		if step.wantTransition != "" {
			seen[step.wantTransition]++
		}
		got := transitions()
		for name, n := range got {
			if seen[name] != n {
				t.Errorf("%s: transition %q = %d, want %d", step.name, name, n, seen[name])
			}
		}
		for name, n := range seen {
			if got[name] != n {
				t.Errorf("%s: transition %q missing (want %d)", step.name, name, n)
			}
		}
	}
}

// TestShedGateCountersInRegistry asserts the gate's shed decisions are
// visible through the registry: header-only downgrades under ShedDemod
// and dropped requests under ShedAnalysis.
func TestShedGateCountersInRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	p := newPacer(testClock, OverloadConfig{})
	p.instrument(reg)
	g := &shedGate{pacer: p}
	emit := func(flowgraph.Item) {}
	req := AnalysisRequest{Family: protocols.WiFi80211b1M, Span: iq.Interval{Start: 0, End: 100}}

	p.level.Store(int32(ShedDemod))
	_ = g.Process(req, emit)
	p.level.Store(int32(ShedAnalysis))
	_ = g.Process(req, emit)
	_ = g.Process(req, emit)

	snap := reg.Snapshot()
	if got := snap.Counters["core/shed/header_only"]; got != 1 {
		t.Errorf("header_only = %d, want 1", got)
	}
	if got := snap.Counters["core/shed/requests"]; got != 2 {
		t.Errorf("requests = %d, want 2", got)
	}
}
