package core

import (
	"math"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// BTPhaseConfig tunes the GFSK detector.
type BTPhaseConfig struct {
	// ProbeSamples bounds how much of each peak the detector reads
	// (GFSK-ness is apparent in the first few hundred samples; reading
	// the whole DH5 would waste the cost advantage).
	ProbeSamples int
	// MaxSecondDeriv is the mean |second derivative of phase| bound for
	// a continuous-phase (GFSK) classification, in radians.
	MaxSecondDeriv float64
	// MinExcessVariance rejects unmodulated carriers (microwave ovens):
	// the first-derivative variance must exceed the noise-predicted
	// level (1/SNR per sample pair) by at least this much — frequency
	// modulation by data is what provides the excess.
	MinExcessVariance float64
	// Channels is the number of Bluetooth channels the monitored band
	// holds (8 for the 8 MHz capture).
	Channels int
}

func (c BTPhaseConfig) withDefaults() BTPhaseConfig {
	if c.ProbeSamples <= 0 {
		c.ProbeSamples = 3 * iq.ChunkSamples
	}
	if c.MaxSecondDeriv == 0 {
		c.MaxSecondDeriv = 0.85
	}
	if c.MinExcessVariance == 0 {
		c.MinExcessVariance = 2e-3
	}
	if c.Channels <= 0 {
		c.Channels = 8
	}
	return c
}

// BTPhase is the Bluetooth phase detector of Section 4.5: "Bluetooth uses
// a continuous-phase modulation technique called GMSK. Thus, if the second
// derivative of the phase is equal to zero, the packet is classified as
// Bluetooth. The first derivative identifies the channel." The detection
// cost is one complex conjugate multiply plus one arctan per probed
// sample, plus subtractions.
type BTPhase struct {
	cfg BTPhaseConfig
	src SampleAccessor

	maxSpan iq.Tick

	diffs  []float64
	diffs2 []float64
}

// NewBTPhase returns the detector.
func NewBTPhase(src SampleAccessor, clock iq.Clock, cfg BTPhaseConfig) *BTPhase {
	cfg = cfg.withDefaults()
	return &BTPhase{
		cfg:     cfg,
		src:     src,
		maxSpan: clock.Ticks(protocols.BTSlot) * 5,
		diffs:   make([]float64, cfg.ProbeSamples),
		diffs2:  make([]float64, cfg.ProbeSamples),
	}
}

// Name implements flowgraph.Block.
func (b *BTPhase) Name() string { return "bt-phase" }

// Process implements flowgraph.Block.
func (b *BTPhase) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		b.analyzePeakNF(pk, meta.NoiseFloor, emit)
	}
	return nil
}

func (b *BTPhase) analyzePeak(pk Peak, emit func(flowgraph.Item)) {
	b.analyzePeakNF(pk, 1.0, emit)
}

func (b *BTPhase) analyzePeakNF(pk Peak, noiseFloor float64, emit func(flowgraph.Item)) {
	if pk.Span.Len() > b.maxSpan {
		return // longer than any Bluetooth packet
	}
	probe := pk.Span
	if probe.Len() > iq.Tick(b.cfg.ProbeSamples) {
		probe.End = probe.Start + iq.Tick(b.cfg.ProbeSamples)
	}
	samples := b.src.Slice(probe)
	if len(samples) < 3 {
		return
	}
	d := dsp.PhaseDiff(samples, b.diffs[:0])
	dd := dsp.SecondDiff(d, b.diffs2[:0])

	smooth := dsp.MeanAbs(dd)
	if smooth > b.cfg.MaxSecondDeriv {
		return // phase jumps: PSK/DSSS or noise, not GFSK
	}
	drift := dsp.CircularMean(d)
	variance := dsp.Variance(d)
	// Frequency modulation must contribute variance beyond what receiver
	// noise alone predicts (var ≈ 1/SNR per adjacent-sample pair);
	// otherwise this is an unmodulated carrier (microwave magnetron).
	if noiseFloor <= 0 {
		noiseFloor = 1
	}
	snr := samples.MeanPower() / noiseFloor
	noiseVar := 0.0
	if snr > 1 {
		noiseVar = 1 / snr
	}
	if variance-noiseVar < b.cfg.MinExcessVariance {
		return
	}

	// The first derivative identifies the channel: mean drift maps to a
	// frequency offset within the band.
	offsetHz := drift * float64(iq.DefaultSampleRate) / (2 * math.Pi)
	channel := int(math.Round(offsetHz/float64(protocols.BTChannelWidthHz) + (float64(b.cfg.Channels)-1)/2))
	if channel < 0 || channel >= b.cfg.Channels {
		return // outside the monitored band: not one of our channels
	}

	conf := 1 - smooth/b.cfg.MaxSecondDeriv
	if conf < 0.1 {
		conf = 0.1
	}
	emit(Detection{
		Family:     protocols.Bluetooth,
		Span:       pk.Span,
		Detector:   "bt-gfsk",
		Confidence: conf,
		Channel:    channel,
	})
}

// Flush implements flowgraph.Block.
func (b *BTPhase) Flush(func(flowgraph.Item)) error { return nil }
