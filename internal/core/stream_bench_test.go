package core

import (
	"testing"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// Micro-benchmarks for the hot inner loops of the detection stage —
// useful when tuning the per-sample budget that keeps the architecture
// real-time (the whole premise of Table 1).

func BenchmarkPeakDetectorPerChunk(b *testing.B) {
	stream := burstStreamB(200_000, 20, 1)
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	drain := func(flowgraph.Item) {}
	chunks := make([]Chunk, 0, len(stream)/iq.ChunkSamples)
	for s := 0; s+iq.ChunkSamples <= len(stream); s += iq.ChunkSamples {
		chunks = append(chunks, Chunk{
			Seq:     s / iq.ChunkSamples,
			Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(s + iq.ChunkSamples)},
			Samples: stream[s : s+iq.ChunkSamples],
		})
	}
	b.SetBytes(int64(len(stream) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range chunks {
			_ = pd.Process(c, drain)
		}
	}
}

func BenchmarkWiFiPhaseWindow(b *testing.B) {
	stream := burstStreamB(4000, 20, 2)
	det := NewWiFiPhase(&memAccessorB{s: stream}, WiFiPhaseConfig{})
	b.SetBytes(int64(iq.ChunkSamples * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.windowScore(stream[1000 : 1000+iq.ChunkSamples])
	}
}

func BenchmarkBTPhaseProbe(b *testing.B) {
	stream := burstStreamB(4000, 20, 3)
	det := NewBTPhase(&memAccessorB{s: stream}, iq.NewClock(0), BTPhaseConfig{})
	pk := Peak{Span: iq.Interval{Start: 500, End: 3500}, MeanPower: 100}
	drain := func(flowgraph.Item) {}
	b.SetBytes(int64(pk.Span.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.analyzePeak(pk, drain)
	}
}

func BenchmarkOFDMScore(b *testing.B) {
	stream := burstStreamB(4000, 20, 4)
	det := NewOFDMDetector(&memAccessorB{s: stream}, OFDMConfig{})
	b.SetBytes(int64(1600 * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.score(stream[500:2100])
	}
}

// test-local helpers (separate names to avoid colliding with _test.go
// helpers in other files).
func burstStreamB(n int, snrDB float64, seed uint64) iq.Samples {
	return burstStream(n, snrDB, seed, iq.Interval{Start: 0, End: iq.Tick(n)})
}

type memAccessorB struct{ s iq.Samples }

func (m *memAccessorB) Slice(iv iq.Interval) iq.Samples {
	lo, hi := int(iv.Start), int(iv.End)
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.s) {
		hi = len(m.s)
	}
	if hi <= lo {
		return nil
	}
	return m.s[lo:hi]
}
