package core_test

import (
	"fmt"
	"math"
	"math/cmplx"

	"rfdump/internal/core"
	"rfdump/internal/dsp"
	"rfdump/internal/ether"
	"rfdump/internal/iq"
	"rfdump/internal/mac"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// Example runs the RFDump pipeline over a small synthesized ether and
// prints what the fast detectors classified.
func Example() {
	sta := func(b byte) (a wifi.Addr) {
		for i := range a {
			a[i] = b
		}
		return
	}
	// Two 802.11b echo exchanges on an otherwise quiet band.
	res, err := ether.Run(ether.Config{
		SNRdB: 20,
		Seed:  1,
		Sources: []mac.Source{&mac.WiFiUnicast{
			Rate: protocols.WiFi80211b1M, Pings: 2, PayloadBytes: 100,
			InterPing: 20_000,
			Requester: sta(1), Responder: sta(2), BSSID: sta(3),
		}},
	})
	if err != nil {
		panic(err)
	}

	// Detection stage only: SIFS/DIFS timing analysis.
	pipeline := core.NewPipeline(res.Clock, core.Detect(core.WiFiTimingSpec(core.WiFiTimingConfig{})))
	out, err := pipeline.Run(res.Samples)
	if err != nil {
		panic(err)
	}
	families := map[string]int{}
	for _, d := range out.Detections {
		families[d.Family.FamilyName()]++
	}
	fmt.Printf("classified %d transmissions as 802.11b\n", families["802.11b"])
	fmt.Printf("ground truth had %d\n", res.Truth.VisibleCount(protocols.WiFi80211b1M))
	// Output:
	// classified 8 transmissions as 802.11b
	// ground truth had 8
}

// ExampleEstimateConstellation shows the Figure 4 constellation
// estimator on a clean QPSK burst.
func ExampleEstimateConstellation() {
	// Synthesize 500 QPSK symbols at 8 samples/symbol.
	samples := makeQPSK(500, 8)
	est := core.EstimateConstellation(samples, 8, 16)
	fmt.Printf("%d-PSK\n", est.Points)
	// Output:
	// 4-PSK
}

// makeQPSK builds a deterministic QPSK sample stream for the example.
func makeQPSK(symbols, sps int) iq.Samples {
	r := dsp.NewRand(5)
	out := make(iq.Samples, 0, symbols*sps)
	phase := 0.0
	for k := 0; k < symbols; k++ {
		phase += float64(r.Intn(4)) * math.Pi / 2
		c := complex64(cmplx.Rect(1, phase))
		for i := 0; i < sps; i++ {
			out = append(out, c)
		}
	}
	return out
}
