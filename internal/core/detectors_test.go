package core

import (
	"math"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/phy"
	"rfdump/internal/phy/bluetooth"
	"rfdump/internal/phy/wifi"
	"rfdump/internal/protocols"
)

// feedPeaks drives a metadata-only detector with synthetic peaks (one
// ChunkMeta per peak) and returns its detections.
func feedPeaks(t *testing.T, det flowgraph.Block, peaks []Peak) []Detection {
	t.Helper()
	hist := NewPeakHistory(DefaultHistory)
	var out []Detection
	emit := func(it flowgraph.Item) { out = append(out, it.(Detection)) }
	for _, pk := range peaks {
		hist.Append(pk)
		meta := &ChunkMeta{History: hist, Completed: []Peak{pk}, Busy: true}
		if err := det.Process(meta, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := det.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return out
}

func pk(start, end iq.Tick) Peak {
	return Peak{Span: iq.Interval{Start: start, End: end}, MeanPower: 100, MaxPower: 110, MinPower: 90}
}

var testClock = iq.NewClock(0)

func TestWiFiTimingSIFS(t *testing.T) {
	det := NewWiFiTiming(testClock, WiFiTimingConfig{DisableDIFS: true})
	// data [0, 39232), SIFS 80, ack [39312, 41744).
	dets := feedPeaks(t, det, []Peak{pk(0, 39232), pk(39312, 41744)})
	if len(dets) != 2 {
		t.Fatalf("detections = %v", dets)
	}
	// Both the data frame and the ACK are forwarded.
	if dets[0].Span.Start != 0 || dets[1].Span.Start != 39312 {
		t.Errorf("spans: %v", dets)
	}
	for _, d := range dets {
		if d.Family != protocols.WiFi80211b1M || d.Detector != "802.11-sifs" {
			t.Errorf("detection %v", d)
		}
	}
}

func TestWiFiTimingSIFSToleranceBoundary(t *testing.T) {
	det := NewWiFiTiming(testClock, WiFiTimingConfig{DisableDIFS: true, SIFSToleranceUS: 2})
	// Gap 120 samples = 15 us: outside ±2 us of SIFS.
	dets := feedPeaks(t, det, []Peak{pk(0, 1000), pk(1120, 2000)})
	if len(dets) != 0 {
		t.Errorf("out-of-tolerance gap detected: %v", dets)
	}
}

func TestWiFiTimingDIFS(t *testing.T) {
	det := NewWiFiTiming(testClock, WiFiTimingConfig{DisableSIFS: true})
	// Gaps DIFS + k*ST: 400 + k*160 samples.
	peaks := []Peak{pk(0, 1000)}
	start := iq.Tick(1000)
	for k := 0; k < 5; k++ {
		s := start + 400 + iq.Tick(k)*160
		peaks = append(peaks, pk(s, s+1000))
		start = s + 1000
	}
	dets := feedPeaks(t, det, peaks)
	if len(dets) != 5 {
		t.Fatalf("DIFS detections = %d, want 5 (first peak has no predecessor)", len(dets))
	}
	for _, d := range dets {
		if d.Detector != "802.11-difs" {
			t.Error(d)
		}
	}
}

func TestWiFiTimingDIFSBeyondCW(t *testing.T) {
	det := NewWiFiTiming(testClock, WiFiTimingConfig{DisableSIFS: true, CWMax: 8})
	// k = 20 exceeds CWMax 8.
	gap := iq.Tick(400 + 20*160)
	dets := feedPeaks(t, det, []Peak{pk(0, 1000), pk(1000+gap, 3000+gap)})
	if len(dets) != 0 {
		t.Errorf("k beyond CW detected: %v", dets)
	}
}

func TestBTTimingSlotGrid(t *testing.T) {
	det := NewBTTiming(testClock, BTTimingConfig{})
	slot := testClock.Ticks(protocols.BTSlot) // 5000 samples
	// Packets starting at slots 0, 6, 14 (within 5-slot length bound).
	peaks := []Peak{
		pk(0, 4*slot),
		pk(6*slot, 6*slot+2*slot),
		pk(14*slot, 14*slot+3000),
	}
	dets := feedPeaks(t, det, peaks)
	// First packet cannot match (no history); packets 2 and 3 match.
	if len(dets) != 2 {
		t.Fatalf("BT timing detections = %v", dets)
	}
	for _, d := range dets {
		if d.Family != protocols.Bluetooth {
			t.Error(d)
		}
	}
}

func TestBTTimingFirstPacketMissed(t *testing.T) {
	// The documented floor of Figure 8: the session's first packet is
	// always missed by timing detection.
	det := NewBTTiming(testClock, BTTimingConfig{})
	slot := testClock.Ticks(protocols.BTSlot)
	dets := feedPeaks(t, det, []Peak{pk(0, slot)})
	if len(dets) != 0 {
		t.Error("first packet should be unmatchable")
	}
}

func TestBTTimingRejectsOverlong(t *testing.T) {
	det := NewBTTiming(testClock, BTTimingConfig{})
	slot := testClock.Ticks(protocols.BTSlot)
	// 8-slot peak cannot be a Bluetooth packet (max 5 slots).
	dets := feedPeaks(t, det, []Peak{pk(0, slot), pk(6*slot, 14*slot)})
	if len(dets) != 0 {
		t.Errorf("overlong peak classified: %v", dets)
	}
}

func TestBTTimingOffGridRejected(t *testing.T) {
	det := NewBTTiming(testClock, BTTimingConfig{})
	slot := testClock.Ticks(protocols.BTSlot)
	// Second packet 1.5 slots after the first: off grid.
	dets := feedPeaks(t, det, []Peak{pk(0, slot), pk(slot+slot/2, 2*slot+slot/2)})
	if len(dets) != 0 {
		t.Errorf("off-grid packet classified: %v", dets)
	}
}

func TestBTTimingCacheSpeedsMatching(t *testing.T) {
	slot := testClock.Ticks(protocols.BTSlot)
	mkPeaks := func() []Peak {
		var peaks []Peak
		for i := 0; i < 40; i++ {
			s := iq.Tick(i*2) * slot
			peaks = append(peaks, pk(s, s+3000))
		}
		return peaks
	}
	with := NewBTTiming(testClock, BTTimingConfig{})
	feedPeaks(t, with, mkPeaks())
	without := NewBTTiming(testClock, BTTimingConfig{DisableCache: true})
	feedPeaks(t, without, mkPeaks())
	if with.CacheHits == 0 {
		t.Error("cache never hit on steady traffic")
	}
	if with.HistoryScans >= without.HistoryScans {
		t.Errorf("cache did not reduce history scans: %d vs %d", with.HistoryScans, without.HistoryScans)
	}
}

func TestMicrowaveTimingDetectsOven(t *testing.T) {
	det := NewMicrowaveTiming(testClock)
	period := testClock.Ticks(protocols.MicrowaveACPeriodUS)
	on := period / 2
	var peaks []Peak
	for i := 0; i < 4; i++ {
		s := iq.Tick(i) * period
		p := pk(s, s+on)
		p.MaxPower = 105 // near-constant envelope
		peaks = append(peaks, p)
	}
	dets := feedPeaks(t, det, peaks)
	if len(dets) < 3 {
		t.Fatalf("microwave detections = %d", len(dets))
	}
	for _, d := range dets {
		if d.Family != protocols.Microwave {
			t.Error(d)
		}
	}
}

func TestMicrowaveTimingRejectsVaryingEnvelope(t *testing.T) {
	det := NewMicrowaveTiming(testClock)
	period := testClock.Ticks(protocols.MicrowaveACPeriodUS)
	on := period / 2
	var peaks []Peak
	for i := 0; i < 4; i++ {
		s := iq.Tick(i) * period
		p := pk(s, s+on)
		p.MaxPower = 400 // 4x the mean: not a magnetron
		peaks = append(peaks, p)
	}
	if dets := feedPeaks(t, det, peaks); len(dets) != 0 {
		t.Errorf("varying envelope classified: %v", dets)
	}
}

func TestMicrowaveTimingRejectsWrongPeriod(t *testing.T) {
	det := NewMicrowaveTiming(testClock)
	period := testClock.Ticks(protocols.MicrowaveACPeriodUS)
	on := period / 2
	var peaks []Peak
	for i := 0; i < 4; i++ {
		s := iq.Tick(i) * period * 2 // every other cycle: wrong period
		p := pk(s, s+on)
		p.MaxPower = 105
		peaks = append(peaks, p)
	}
	if dets := feedPeaks(t, det, peaks); len(dets) != 0 {
		t.Errorf("wrong period classified: %v", dets)
	}
}

func TestZigBeeTimingTurnaround(t *testing.T) {
	det := NewZigBeeTiming(testClock)
	tack := testClock.Ticks(protocols.ZigBeeSIFS)
	dets := feedPeaks(t, det, []Peak{pk(0, 10000), pk(10000+tack, 12000)})
	if len(dets) != 2 {
		t.Fatalf("zigbee detections = %v", dets)
	}
}

func TestZigBeeTimingBackoffMultiples(t *testing.T) {
	det := NewZigBeeTiming(testClock)
	backoff := testClock.Ticks(protocols.ZigBeeBackoffPeriod)
	dets := feedPeaks(t, det, []Peak{pk(0, 5000), pk(5000+3*backoff, 9000)})
	if len(dets) != 2 {
		t.Fatalf("backoff-multiple gap missed: %v", dets)
	}
	// 9.5 backoffs: beyond the 8-backoff search and off-grid.
	det2 := NewZigBeeTiming(testClock)
	dets2 := feedPeaks(t, det2, []Peak{pk(0, 5000), pk(5000+19*backoff/2, 30000)})
	if len(dets2) != 0 {
		t.Errorf("off-grid gap classified: %v", dets2)
	}
}

// --- phase detectors on synthesized signal ---

// streamAccessor for tests.
type memAccessor struct{ s iq.Samples }

func (m *memAccessor) Slice(iv iq.Interval) iq.Samples {
	lo, hi := int(iv.Start), int(iv.End)
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.s) {
		hi = len(m.s)
	}
	if hi <= lo {
		return nil
	}
	return m.s[lo:hi]
}

func wifiBurstStream(t *testing.T, rate protocols.ID, payload int, snrDB float64, pad int) (iq.Samples, iq.Interval) {
	t.Helper()
	mod, err := wifi.NewModulator(rate)
	if err != nil {
		t.Fatal(err)
	}
	frame := wifi.BuildDataFrame(wifi.Broadcast, wifi.Addr{1}, wifi.Addr{2}, 0, make([]byte, payload))
	burst, err := mod.Modulate(frame)
	if err != nil {
		t.Fatal(err)
	}
	ch := phy.Channel{SNRdB: snrDB, CFOHz: 1500, PhaseRad: 0.7}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, pad+len(burst.Samples)+pad)
	span := iq.Interval{Start: iq.Tick(pad), End: iq.Tick(pad + len(burst.Samples))}
	stream.Add(span.Start, burst.Samples)
	dsp.AWGN(dsp.NewRand(42), stream, 1)
	return stream, span
}

func TestWiFiPhaseDetectsDSSS(t *testing.T) {
	stream, span := wifiBurstStream(t, protocols.WiFi80211b1M, 200, 20, 400)
	acc := &memAccessor{s: stream}
	det := NewWiFiPhase(acc, WiFiPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) == 0 {
		t.Fatal("no detection")
	}
	covered := iq.CoverageOf(span, []iq.Interval{dets[0].Span})
	if float64(covered) < 0.9*float64(span.Len()) {
		t.Errorf("1 Mbps packet only %d/%d covered", covered, span.Len())
	}
	if dets[0].Confidence < 0.7 {
		t.Errorf("confidence %v", dets[0].Confidence)
	}
}

func TestWiFiPhaseCCKHeaderOnly(t *testing.T) {
	// For an 11 Mbps packet only the 192 us DBPSK PLCP matches — the
	// selectivity Table 4 measures.
	stream, span := wifiBurstStream(t, protocols.WiFi80211b11M, 600, 20, 400)
	acc := &memAccessor{s: stream}
	det := NewWiFiPhase(acc, WiFiPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) == 0 {
		t.Fatal("PLCP header not detected")
	}
	var fwd iq.Tick
	for _, d := range dets {
		fwd += d.Span.Len()
	}
	plcp := iq.Tick(wifi.PLCPBits * wifi.SymbolSPS) // 1536 samples
	if fwd < plcp/2 || fwd > 3*plcp {
		t.Errorf("forwarded %d samples, want ~%d (header only)", fwd, plcp)
	}
}

func TestWiFiPhaseRejectsGFSK(t *testing.T) {
	mod := bluetooth.NewModulator()
	bits := make([]byte, 500)
	r := dsp.NewRand(1)
	for i := range bits {
		bits[i] = byte(r.Uint64() & 1)
	}
	burst := mod.ModulateBits(bits, 0, 3)
	ch := phy.Channel{SNRdB: 20}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 400+len(burst.Samples)+400)
	span := iq.Interval{Start: 400, End: iq.Tick(400 + len(burst.Samples))}
	stream.Add(400, burst.Samples)
	dsp.AWGN(dsp.NewRand(2), stream, 1)

	det := NewWiFiPhase(&memAccessor{s: stream}, WiFiPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("GFSK classified as DSSS: %v", dets)
	}
}

func TestWiFiPhaseRejectsNoise(t *testing.T) {
	stream := dsp.NoiseBlock(dsp.NewRand(3), 20000, 1)
	det := NewWiFiPhase(&memAccessor{s: stream}, WiFiPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: iq.Interval{Start: 0, End: 20000}}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("noise classified: %v", dets)
	}
}

func btBurstStream(t *testing.T, channel int, snrDB float64) (iq.Samples, iq.Interval) {
	t.Helper()
	mod := bluetooth.NewModulator()
	dev := bluetooth.Device{LAP: 0x9E8B33, UAP: 0x47}
	h := bluetooth.Header{LTAddr: 1, Type: bluetooth.TypeDH3}
	payload := make([]byte, 150)
	offset := (float64(channel) - 3.5) * 1e6
	burst := mod.ModulatePacket(dev, h, payload, 5, offset, channel)
	ch := phy.Channel{SNRdB: snrDB, CFOHz: -2000}
	ch.Apply(burst, 1, phy.SampleRate)
	stream := make(iq.Samples, 500+len(burst.Samples)+500)
	span := iq.Interval{Start: 500, End: iq.Tick(500 + len(burst.Samples))}
	stream.Add(500, burst.Samples)
	dsp.AWGN(dsp.NewRand(7), stream, 1)
	return stream, span
}

func TestBTPhaseDetectsGFSKAndChannel(t *testing.T) {
	for _, channel := range []int{0, 3, 7} {
		stream, span := btBurstStream(t, channel, 20)
		det := NewBTPhase(&memAccessor{s: stream}, testClock, BTPhaseConfig{})
		var dets []Detection
		det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
		if len(dets) != 1 {
			t.Fatalf("ch %d: detections = %v", channel, dets)
		}
		if dets[0].Channel != channel {
			t.Errorf("channel estimate %d, want %d", dets[0].Channel, channel)
		}
		if dets[0].Family != protocols.Bluetooth {
			t.Error("family")
		}
	}
}

func TestBTPhaseRejectsDSSS(t *testing.T) {
	stream, span := wifiBurstStream(t, protocols.WiFi80211b1M, 100, 20, 400)
	det := NewBTPhase(&memAccessor{s: stream}, testClock, BTPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: span}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("DSSS classified as GFSK: %v", dets)
	}
}

func TestBTPhaseRejectsUnmodulatedCarrier(t *testing.T) {
	// A CW tone (microwave-like) has near-zero derivative variance.
	stream := make(iq.Samples, 10000)
	for i := range stream {
		ph := 2 * math.Pi * 0.02 * float64(i)
		stream[i] = complex(float32(10*math.Cos(ph)), float32(10*math.Sin(ph)))
	}
	dsp.AWGN(dsp.NewRand(8), stream, 1)
	det := NewBTPhase(&memAccessor{s: stream}, testClock, BTPhaseConfig{})
	var dets []Detection
	det.analyzePeak(Peak{Span: iq.Interval{Start: 0, End: 10000}}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Errorf("CW classified as GFSK: %v", dets)
	}
}

func TestBTPhaseRejectsOverlongPeak(t *testing.T) {
	stream, _ := btBurstStream(t, 3, 20)
	det := NewBTPhase(&memAccessor{s: stream}, testClock, BTPhaseConfig{})
	var dets []Detection
	long := iq.Interval{Start: 0, End: testClock.Ticks(protocols.BTSlot) * 7}
	det.analyzePeak(Peak{Span: long}, func(it flowgraph.Item) { dets = append(dets, it.(Detection)) })
	if len(dets) != 0 {
		t.Error("7-slot peak classified as Bluetooth")
	}
}
