package core

import (
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// BTTimingConfig tunes the Bluetooth timing detector.
type BTTimingConfig struct {
	// ToleranceUS is the ± tolerance on slot alignment.
	ToleranceUS float64
	// MaxSlots bounds how far back (in slots) the history search goes.
	MaxSlots int
	// CacheSize is the Bluetooth activity cache capacity (Section 4.4:
	// "we maintain a cache of latest observed Bluetooth activity and
	// check against the cache before searching through the history
	// window").
	CacheSize int
	// MinPeakUS rejects peaks shorter than this (noise fragments).
	MinPeakUS float64
	// DisableCache forces the full history scan (the ablation baseline).
	DisableCache bool
}

func (c BTTimingConfig) withDefaults() BTTimingConfig {
	if c.ToleranceUS <= 0 {
		c.ToleranceUS = 12
	}
	if c.MaxSlots <= 0 {
		// With only 8 of 79 hop channels audible, consecutive audible
		// packets of a session are many slots apart; the horizon must
		// cover that (4096 slots = 2.56 s).
		c.MaxSlots = 4096
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 4
	}
	if c.MinPeakUS <= 0 {
		// Shortest Bluetooth packet is the 68 us ID; anything shorter is
		// a noise fragment and would only feed spurious slot matches.
		c.MinPeakUS = 50
	}
	return c
}

// btCacheEntry is one cached Bluetooth session: a slot-grid anchor plus a
// hit counter that drives eviction and confidence ("We also maintain a
// counter for the elements of the cache ... Our cache eviction policy and
// confidence value are based on this counter", Section 4.4).
type btCacheEntry struct {
	anchor iq.Tick // start time of a confirmed Bluetooth peak
	hits   int
}

// BTTiming classifies peaks whose start times fall on a 625 us slot grid
// relative to recent peaks as Bluetooth (packets are sent in TDD slots of
// 625 us, master and slave alternating).
type BTTiming struct {
	cfg   BTTimingConfig
	clock iq.Clock

	slot    iq.Tick
	tol     iq.Tick
	maxSpan iq.Tick // longest allowed BT packet (5 slots)
	minSpan iq.Tick // shortest plausible BT packet

	cache []btCacheEntry

	// CacheHits/HistoryScans instrument the ablation benchmark.
	CacheHits    int
	HistoryScans int
}

// NewBTTiming returns the detector.
func NewBTTiming(clock iq.Clock, cfg BTTimingConfig) *BTTiming {
	cfg = cfg.withDefaults()
	return &BTTiming{
		cfg:     cfg,
		clock:   clock,
		slot:    clock.Ticks(protocols.BTSlot),
		tol:     iq.Tick(cfg.ToleranceUS * float64(clock.Rate) / 1e6),
		maxSpan: clock.Ticks(protocols.BTSlot) * 5,
		minSpan: iq.Tick(cfg.MinPeakUS * float64(clock.Rate) / 1e6),
	}
}

// Name implements flowgraph.Block.
func (b *BTTiming) Name() string { return "bt-timing" }

// Process implements flowgraph.Block.
func (b *BTTiming) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		b.observe(pk, meta.History, emit)
	}
	return nil
}

// slotAligned reports whether dt is within tolerance of a positive
// multiple of the slot length, bounded by MaxSlots.
func (b *BTTiming) slotAligned(dt iq.Tick) bool {
	if dt <= 0 {
		return false
	}
	m := int((dt + b.slot/2) / b.slot)
	if m < 1 || m > b.cfg.MaxSlots {
		return false
	}
	return absTick(dt-iq.Tick(m)*b.slot) <= b.tol
}

func (b *BTTiming) observe(pk Peak, hist *PeakHistory, emit func(flowgraph.Item)) {
	// Bluetooth packets never exceed 5 slots; overlong peaks cannot be
	// one packet, and sub-ID-length fragments are noise.
	if pk.Span.Len() > b.maxSpan || pk.Span.Len() < b.minSpan {
		return
	}
	start := pk.Span.Start

	confidence := 0.0
	matched := false

	// Cache first.
	if !b.cfg.DisableCache {
		for i := range b.cache {
			if b.slotAligned(start - b.cache[i].anchor) {
				b.cache[i].hits++
				b.cache[i].anchor = start
				b.CacheHits++
				matched = true
				confidence = cacheConfidence(b.cache[i].hits)
				break
			}
		}
	}

	// Fall back to the history window: find any earlier peak whose start
	// is a whole number of slots before ours.
	if !matched && hist != nil {
		b.HistoryScans++
		horizon := iq.Tick(b.cfg.MaxSlots) * b.slot
		hist.ScanBack(func(old Peak) bool {
			if old.Span.Start >= start {
				return true // skip self/newer entries
			}
			if start-old.Span.Start > horizon {
				return false // beyond the search horizon; stop
			}
			if old.Span.Len() <= b.maxSpan && b.slotAligned(start-old.Span.Start) {
				matched = true
				confidence = 0.5
				return false
			}
			return true
		})
		if matched {
			b.insertCache(start)
		}
	}

	if matched {
		emit(Detection{
			Family:     protocols.Bluetooth,
			Span:       pk.Span,
			Detector:   "bt-timing",
			Confidence: confidence,
			Channel:    -1,
		})
	}
}

func cacheConfidence(hits int) float64 {
	c := 0.5 + float64(hits)*0.05
	if c > 0.95 {
		c = 0.95
	}
	return c
}

// insertCache adds a new session anchor, evicting the entry with the
// fewest hits when full.
func (b *BTTiming) insertCache(anchor iq.Tick) {
	if b.cfg.DisableCache {
		return
	}
	if len(b.cache) < b.cfg.CacheSize {
		b.cache = append(b.cache, btCacheEntry{anchor: anchor, hits: 1})
		return
	}
	victim := 0
	for i := 1; i < len(b.cache); i++ {
		if b.cache[i].hits < b.cache[victim].hits {
			victim = i
		}
	}
	b.cache[victim] = btCacheEntry{anchor: anchor, hits: 1}
}

// Flush implements flowgraph.Block.
func (b *BTTiming) Flush(func(flowgraph.Item)) error { return nil }
