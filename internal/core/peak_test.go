package core

import (
	"math"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// runPeaks drives the detector over a stream and returns completed peaks
// and all metas.
func runPeaks(t *testing.T, pd *PeakDetector, stream iq.Samples) ([]Peak, []*ChunkMeta) {
	t.Helper()
	var peaks []Peak
	var metas []*ChunkMeta
	emit := func(it flowgraph.Item) {
		m := it.(*ChunkMeta)
		metas = append(metas, m)
		peaks = append(peaks, m.Completed...)
	}
	n := len(stream)
	for s := 0; s < n; s += iq.ChunkSamples {
		e := s + iq.ChunkSamples
		if e > n {
			e = n
		}
		if err := pd.Process(Chunk{
			Seq:     s / iq.ChunkSamples,
			Span:    iq.Interval{Start: iq.Tick(s), End: iq.Tick(e)},
			Samples: stream[s:e],
		}, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := pd.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return peaks, metas
}

// burstStream builds noise with constant-envelope bursts at given spans.
func burstStream(n int, snrDB float64, seed uint64, spans ...iq.Interval) iq.Samples {
	r := dsp.NewRand(seed)
	stream := make(iq.Samples, n)
	amp := math.Sqrt(iq.FromDB(snrDB))
	for _, span := range spans {
		ph := r.Float64() * 2 * math.Pi
		for t := span.Start; t < span.End && int(t) < n; t++ {
			ph += 0.3
			stream[t] = complex(float32(amp*math.Cos(ph)), float32(amp*math.Sin(ph)))
		}
	}
	dsp.AWGN(r, stream, 1.0)
	return stream
}

func TestPeakDetectorFindsBursts(t *testing.T) {
	spans := []iq.Interval{{Start: 1000, End: 3000}, {Start: 5000, End: 5400}, {Start: 9000, End: 14000}}
	stream := burstStream(20000, 20, 1, spans...)
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != len(spans) {
		t.Fatalf("found %d peaks, want %d: %v", len(peaks), len(spans), peaks)
	}
	for i, pk := range peaks {
		if absTick(pk.Span.Start-spans[i].Start) > 20 {
			t.Errorf("peak %d start %d, want ~%d", i, pk.Span.Start, spans[i].Start)
		}
		if absTick(pk.Span.End-spans[i].End) > 25 {
			t.Errorf("peak %d end %d, want ~%d", i, pk.Span.End, spans[i].End)
		}
		if pk.MeanPower < 50 {
			t.Errorf("peak %d power %v", i, pk.MeanPower)
		}
	}
}

func TestPeakDetectorNoiseOnly(t *testing.T) {
	stream := dsp.NoiseBlock(dsp.NewRand(2), 100_000, 1.0)
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, metas := runPeaks(t, pd, stream)
	if len(peaks) > 2 {
		t.Errorf("noise produced %d peaks", len(peaks))
	}
	busy := 0
	for _, m := range metas {
		if m.Busy {
			busy++
		}
	}
	if busy > len(metas)/10 {
		t.Errorf("%d of %d noise chunks flagged busy", busy, len(metas))
	}
}

func TestPeakDetectorCalibratesNoiseFloor(t *testing.T) {
	stream := burstStream(40000, 15, 3, iq.Interval{Start: 10000, End: 15000})
	for i := range stream {
		stream[i] *= 3 // noise floor power 9, burst power ~290
	}
	pd := NewPeakDetector(PeakConfig{}) // no floor given: calibrate
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Fatalf("found %d peaks with calibrated floor", len(peaks))
	}
	if nf := pd.NoiseFloor(); nf < 5 || nf > 14 {
		t.Errorf("calibrated floor %v, want ~9", nf)
	}
}

func TestPeakDetectorSIFSGapPreserved(t *testing.T) {
	// Two bursts separated by exactly 80 samples (SIFS): the refined
	// gap must stay within the SIFS detector's tolerance.
	spans := []iq.Interval{{Start: 2000, End: 6000}, {Start: 6080, End: 7000}}
	stream := burstStream(10000, 20, 4, spans...)
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 2 {
		t.Fatalf("found %d peaks", len(peaks))
	}
	gap := peaks[1].Span.Start - peaks[0].Span.End
	if absTick(gap-80) > 20 {
		t.Errorf("gap %d, want 80±20", gap)
	}
}

func TestPeakDetectorSplitsAtLowSNR(t *testing.T) {
	// Below the energy threshold the burst is invisible.
	stream := burstStream(20000, 1, 5, iq.Interval{Start: 5000, End: 10000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	// At SNR 1 dB the signal+noise average (~2.26) is below the 4 dB
	// threshold (2.51): no stable peak.
	whole := 0
	for _, pk := range peaks {
		if pk.Span.Len() > 4000 {
			whole++
		}
	}
	if whole != 0 {
		t.Errorf("low-SNR burst detected whole %d times", whole)
	}
}

func TestPeakDetectorCrossChunkPeaks(t *testing.T) {
	// A peak spanning many chunks is reported once, in the chunk where
	// it ends.
	stream := burstStream(10000, 20, 6, iq.Interval{Start: 100, End: 9000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Fatalf("%d peaks", len(peaks))
	}
	if peaks[0].Span.Len() < 8800 {
		t.Errorf("span %v", peaks[0].Span)
	}
}

func TestPeakDetectorFlushClosesOpenPeak(t *testing.T) {
	// Burst running to end of stream is closed by Flush.
	stream := burstStream(4000, 20, 7, iq.Interval{Start: 1000, End: 4000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Fatalf("%d peaks", len(peaks))
	}
	if peaks[0].Span.End < 3900 {
		t.Errorf("flush end %v", peaks[0].Span)
	}
}

func TestPeakDetectorHistoryShared(t *testing.T) {
	stream := burstStream(20000, 20, 8, iq.Interval{Start: 1000, End: 2000}, iq.Interval{Start: 5000, End: 6000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	_, metas := runPeaks(t, pd, stream)
	if len(metas) == 0 {
		t.Fatal("no metas")
	}
	hist := metas[0].History
	for _, m := range metas {
		if m.History != hist {
			t.Fatal("history ring not shared across chunks")
		}
	}
	if hist.Len() != 2 {
		t.Errorf("history holds %d peaks", hist.Len())
	}
	// Newest first.
	if hist.At(0).Span.Start < hist.At(1).Span.Start {
		t.Error("history order")
	}
}

func TestPeakDetectorSamplingStride(t *testing.T) {
	// Stride 4 (the Section 3.1 sampling optimization) still finds the
	// burst with similar boundaries.
	stream := burstStream(20000, 20, 9, iq.Interval{Start: 4000, End: 12000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1, SampleStride: 4})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Fatalf("%d peaks with stride", len(peaks))
	}
	if absTick(peaks[0].Span.Start-4000) > 40 || absTick(peaks[0].Span.End-12000) > 60 {
		t.Errorf("strided span %v", peaks[0].Span)
	}
}

func TestPeakDetectorConstantEnvelopeMetadata(t *testing.T) {
	stream := burstStream(20000, 20, 10, iq.Interval{Start: 2000, End: 10000})
	pd := NewPeakDetector(PeakConfig{NoiseFloor: 1})
	peaks, _ := runPeaks(t, pd, stream)
	if len(peaks) != 1 {
		t.Fatal("peak count")
	}
	pk := peaks[0]
	if pk.MinPower <= 0 || pk.MaxPower <= 0 {
		t.Errorf("powers not tracked: max=%v min=%v", pk.MaxPower, pk.MinPower)
	}
	// The robust constant-envelope indicator is max/mean (MinPower can
	// catch a lucky noise sample in the decay tail).
	if pk.MaxPower/pk.MeanPower > 1.5 {
		t.Errorf("max/mean = %v", pk.MaxPower/pk.MeanPower)
	}
}
