package core

import (
	"io"
	"testing"

	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// sliceReader implements BlockReader over a slice.
type sliceReader struct {
	s   iq.Samples
	pos int
}

func (r *sliceReader) ReadBlock(dst iq.Samples) (int, error) {
	if r.pos >= len(r.s) {
		return 0, io.EOF
	}
	n := copy(dst, r.s[r.pos:])
	r.pos += n
	if r.pos >= len(r.s) {
		return n, io.EOF
	}
	return n, nil
}

func TestSlidingWindowBasics(t *testing.T) {
	w := NewSlidingWindow(1000)
	block := make(iq.Samples, 500)
	for i := range block {
		block[i] = complex(float32(i), 0)
	}
	w.Append(block)
	if w.End() != 500 {
		t.Errorf("end %d", w.End())
	}
	got := w.Slice(iq.Interval{Start: 100, End: 110})
	if len(got) != 10 || real(got[0]) != 100 {
		t.Errorf("slice %v", got)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	w := NewSlidingWindow(1000)
	for b := 0; b < 20; b++ {
		block := make(iq.Samples, 500)
		for i := range block {
			block[i] = complex(float32(b*500+i), 0)
		}
		w.Append(block)
	}
	if w.End() != 10000 {
		t.Fatalf("end %d", w.End())
	}
	// Old data evicted: a slice from tick 0 comes back clipped.
	if got := w.Slice(iq.Interval{Start: 0, End: 100}); len(got) != 0 {
		t.Errorf("evicted slice returned %d samples", len(got))
	}
	// Recent data intact and correctly addressed.
	got := w.Slice(iq.Interval{Start: 9990, End: 10000})
	if len(got) != 10 || real(got[0]) != 9990 {
		t.Errorf("recent slice %v", got)
	}
	// Window retains at least limit samples.
	if got := w.Slice(iq.Interval{Start: 9000, End: 10000}); len(got) != 1000 {
		t.Errorf("retention %d", len(got))
	}
}

func TestRunStreamMatchesRun(t *testing.T) {
	stream := burstStream(200_000, 20, 51,
		iq.Interval{Start: 20_000, End: 60_000},
		iq.Interval{Start: 60_080, End: 62_500},
		iq.Interval{Start: 100_000, End: 140_000},
		iq.Interval{Start: 140_080, End: 142_500},
	)
	batch := NewPipeline(testClock, TimingOnly())
	resBatch, err := batch.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	live := NewPipeline(testClock, TimingOnly())
	resLive, err := live.RunStream(&sliceReader{s: stream}, StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resLive.Detections) != len(resBatch.Detections) {
		t.Fatalf("live %d detections, batch %d", len(resLive.Detections), len(resBatch.Detections))
	}
	for i := range resLive.Detections {
		if resLive.Detections[i].Span != resBatch.Detections[i].Span {
			t.Errorf("detection %d span: %v vs %v", i,
				resLive.Detections[i].Span, resBatch.Detections[i].Span)
		}
	}
	if resLive.StreamLen != iq.Tick(len(stream)) {
		t.Errorf("stream len %d", resLive.StreamLen)
	}
}

func TestRunStreamBoundedMemoryPhaseDetection(t *testing.T) {
	// Phase detectors probe samples through the sliding window; with a
	// window larger than a burst, live detection still works.
	stream, span := wifiBurstStream(t, protocols.WiFi80211b1M, 200, 20, 2000)
	p := NewPipeline(testClock, Detect(WiFiPhaseSpec(WiFiPhaseConfig{})))
	res, err := p.RunStream(&sliceReader{s: stream}, StreamConfig{WindowSamples: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Detections {
		if d.Span.Overlaps(span) {
			found = true
		}
	}
	if !found {
		t.Error("live phase detection missed the burst")
	}
}

func TestRunStreamCallbacks(t *testing.T) {
	stream := burstStream(100_000, 20, 52,
		iq.Interval{Start: 10_000, End: 40_000},
		iq.Interval{Start: 40_080, End: 42_000},
	)
	p := NewPipeline(testClock, TimingOnly())
	var dets int
	_, err := p.RunStream(&sliceReader{s: stream}, StreamConfig{
		OnDetection: func(Detection) { dets++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dets == 0 {
		t.Error("no detection callbacks")
	}
}
