package core

import (
	"sort"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
)

// AnalysisRequest asks the analysis stage to process a span of samples
// tentatively classified to a protocol family. Overlapping detections of
// one family are merged before dispatch so demodulators never see the
// same samples twice ("avoid redundant computation", Section 2.1). It is
// an alias of the registry-facing type so protocol modules can ship
// analyzers without importing core.
type AnalysisRequest = protocols.AnalysisRequest

// DispatcherConfig tunes the dispatcher.
type DispatcherConfig struct {
	// SlackSamples joins detections separated by up to this many samples
	// and pads request spans so demodulators see the burst edges
	// (defaults to one chunk, the paper's forwarding granularity: "we
	// send on an average about 12 us of excess samples along with each
	// packet due to the chunk granularity").
	SlackSamples iq.Tick
	// MaxPending bounds latency: a pending merged span is flushed once a
	// newer detection starts this many samples later (the architecture
	// tolerates delay but not unbounded buffering).
	MaxPending iq.Tick
}

func (c DispatcherConfig) withDefaults() DispatcherConfig {
	if c.SlackSamples <= 0 {
		c.SlackSamples = iq.ChunkSamples
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 80_000 // 10 ms at 8 Msps
	}
	return c
}

// pendingSpan is a per-family merge buffer.
type pendingSpan struct {
	span       iq.Interval
	channel    int
	chanMixed  bool
	confidence float64
	detectors  map[string]bool
}

// Dispatcher is the protocol-specific detection stage's output side: it
// records every Detection, merges them per family on the fly, and emits
// AnalysisRequests for the analysis stage (Figure 2's arrows from the
// detection stage into per-protocol analysis).
type Dispatcher struct {
	cfg     DispatcherConfig
	pending map[protocols.ID]*pendingSpan

	// OnDetection, if set, is invoked for every detection as it arrives
	// (live monitoring). Under the parallel scheduler it runs on the
	// dispatcher's goroutine.
	OnDetection func(Detection)
	// Retain controls accumulation into All/Requests; live sessions with
	// callbacks disable it to bound memory.
	Retain bool

	// All accumulates every detection seen (the experiments read this
	// for accuracy metrics).
	All []Detection
	// Requests accumulates every emitted request.
	Requests []AnalysisRequest

	// reg, when non-nil, publishes per-protocol-family counters. Labels
	// come from the module registry (protocols.LabelFor), so a protocol
	// registered out of tree shows up in /api/metricz under its own
	// label with no dispatcher changes. Counters are cached per family:
	// the only allocation is the first detection of each family, which
	// keeps the steady-state streaming path at zero allocs per chunk.
	reg  *metrics.Registry
	fams map[protocols.ID]*famCounters
}

// famCounters is the per-protocol-family metrics bundle.
type famCounters struct {
	detections       *metrics.Counter
	forwardedSpans   *metrics.Counter
	forwardedSamples *metrics.Counter
}

// instrument attaches a metrics registry; nil disables (zero cost).
func (d *Dispatcher) instrument(reg *metrics.Registry) {
	d.reg = reg
	if reg != nil && d.fams == nil {
		d.fams = make(map[protocols.ID]*famCounters)
	}
}

// famMetrics returns (creating on first use) the counters for a family.
func (d *Dispatcher) famMetrics(fam protocols.ID) *famCounters {
	fc := d.fams[fam]
	if fc == nil {
		base := "dispatch/" + protocols.LabelFor(fam) + "/"
		fc = &famCounters{
			detections:       d.reg.Counter(base + "detections"),
			forwardedSpans:   d.reg.Counter(base + "forwarded_spans"),
			forwardedSamples: d.reg.Counter(base + "forwarded_samples"),
		}
		d.fams[fam] = fc
	}
	return fc
}

// NewDispatcher returns a dispatcher.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	return &Dispatcher{
		cfg:     cfg.withDefaults(),
		pending: make(map[protocols.ID]*pendingSpan),
		Retain:  true,
	}
}

// Name implements flowgraph.Block.
func (d *Dispatcher) Name() string { return "dispatcher" }

// Process implements flowgraph.Block: consumes Detection items, emits
// AnalysisRequest items.
func (d *Dispatcher) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	det := item.(Detection)
	if d.Retain {
		d.All = append(d.All, det)
	}
	if d.OnDetection != nil {
		d.OnDetection(det)
	}
	fam := det.Family.Family()
	if d.reg != nil {
		d.famMetrics(fam).detections.Inc()
	}
	p := d.pending[fam]
	if p != nil {
		// Extend the pending span when the new detection is close enough.
		if det.Span.Start <= p.span.End+d.cfg.SlackSamples && det.Span.End+d.cfg.MaxPending >= p.span.Start {
			if det.Span.End > p.span.End {
				p.span.End = det.Span.End
			}
			if det.Span.Start < p.span.Start {
				p.span.Start = det.Span.Start
			}
			if det.Confidence > p.confidence {
				p.confidence = det.Confidence
			}
			if det.Channel >= 0 {
				if p.channel < 0 {
					p.channel = det.Channel
				} else if p.channel != det.Channel {
					p.chanMixed = true
				}
			}
			p.detectors[det.Detector] = true
			return nil
		}
		d.flush(fam, emit)
	}
	d.pending[fam] = &pendingSpan{
		span:       det.Span,
		channel:    det.Channel,
		confidence: det.Confidence,
		detectors:  map[string]bool{det.Detector: true},
	}
	return nil
}

func (d *Dispatcher) flush(fam protocols.ID, emit func(flowgraph.Item)) {
	p := d.pending[fam]
	if p == nil {
		return
	}
	delete(d.pending, fam)
	ch := p.channel
	if p.chanMixed {
		ch = -1
	}
	names := make([]string, 0, len(p.detectors))
	for n := range p.detectors {
		names = append(names, n)
	}
	sort.Strings(names)
	req := AnalysisRequest{
		Family:     fam,
		Span:       p.span.Expand(d.cfg.SlackSamples / 2),
		Channel:    ch,
		Confidence: p.confidence,
		Detectors:  names,
	}
	if d.Retain {
		d.Requests = append(d.Requests, req)
	}
	if d.reg != nil {
		fc := d.famMetrics(fam)
		fc.forwardedSpans.Inc()
		fc.forwardedSamples.Add(int64(req.Span.End - req.Span.Start))
	}
	emit(req)
}

// Flush implements flowgraph.Block.
func (d *Dispatcher) Flush(emit func(flowgraph.Item)) error {
	fams := make([]protocols.ID, 0, len(d.pending))
	for fam := range d.pending {
		fams = append(fams, fam)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	for _, fam := range fams {
		d.flush(fam, emit)
	}
	return nil
}

// ForwardedSpans returns the merged per-family forwarded intervals for
// false-positive accounting.
func (d *Dispatcher) ForwardedSpans(family protocols.ID) []iq.Interval {
	var out []iq.Interval
	for _, r := range d.Requests {
		if r.Family.Family() == family.Family() {
			out = append(out, r.Span)
		}
	}
	return iq.Merge(out)
}
