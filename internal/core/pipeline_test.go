package core

import (
	"math"
	"math/cmplx"
	"testing"

	"rfdump/internal/dsp"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

func det(fam protocols.ID, start, end iq.Tick, name string, ch int) Detection {
	return Detection{Family: fam, Span: iq.Interval{Start: start, End: end},
		Detector: name, Confidence: 0.8, Channel: ch}
}

func runDispatcher(t *testing.T, cfg DispatcherConfig, dets ...Detection) (*Dispatcher, []AnalysisRequest) {
	t.Helper()
	d := NewDispatcher(cfg)
	var reqs []AnalysisRequest
	emit := func(it flowgraph.Item) { reqs = append(reqs, it.(AnalysisRequest)) }
	for _, dt := range dets {
		if err := d.Process(dt, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return d, reqs
}

func TestDispatcherMergesOverlapping(t *testing.T) {
	_, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, 1000, 2000, "802.11-sifs", -1),
		det(protocols.WiFi80211b1M, 1500, 2500, "802.11-dbpsk", -1),
	)
	if len(reqs) != 1 {
		t.Fatalf("requests = %v", reqs)
	}
	r := reqs[0]
	// Merged span (padded by slack/2).
	if r.Span.Start > 1000 || r.Span.End < 2500 {
		t.Errorf("merged span %v", r.Span)
	}
	if len(r.Detectors) != 2 {
		t.Errorf("detectors %v", r.Detectors)
	}
}

func TestDispatcherSeparatesDistant(t *testing.T) {
	_, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, 0, 1000, "a", -1),
		det(protocols.WiFi80211b1M, 50_000, 51_000, "a", -1),
	)
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
}

func TestDispatcherKeepsFamiliesApart(t *testing.T) {
	_, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, 0, 1000, "a", -1),
		det(protocols.Bluetooth, 500, 1500, "b", 3),
	)
	if len(reqs) != 2 {
		t.Fatalf("requests = %v", reqs)
	}
	fams := map[protocols.ID]bool{}
	for _, r := range reqs {
		fams[r.Family] = true
	}
	if !fams[protocols.WiFi80211b1M] || !fams[protocols.Bluetooth] {
		t.Error("families merged")
	}
}

func TestDispatcherChannelAgreement(t *testing.T) {
	// Agreeing channels survive; disagreeing collapse to -1.
	_, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.Bluetooth, 0, 1000, "bt-gfsk", 5),
		det(protocols.Bluetooth, 100, 900, "bt-freq", 5),
	)
	if len(reqs) != 1 || reqs[0].Channel != 5 {
		t.Errorf("agreeing channels: %v", reqs)
	}
	_, reqs = runDispatcher(t, DispatcherConfig{},
		det(protocols.Bluetooth, 0, 1000, "bt-gfsk", 5),
		det(protocols.Bluetooth, 100, 900, "bt-freq", 2),
	)
	if len(reqs) != 1 || reqs[0].Channel != -1 {
		t.Errorf("disagreeing channels: %v", reqs)
	}
	// Timing (-1) plus a channel detector keeps the channel.
	_, reqs = runDispatcher(t, DispatcherConfig{},
		det(protocols.Bluetooth, 0, 1000, "bt-timing", -1),
		det(protocols.Bluetooth, 100, 900, "bt-gfsk", 6),
	)
	if len(reqs) != 1 || reqs[0].Channel != 6 {
		t.Errorf("mixed -1/channel: %v", reqs)
	}
}

func TestDispatcherRecordsEverything(t *testing.T) {
	d, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, 0, 1000, "a", -1),
		det(protocols.WiFi80211b1M, 100, 500, "b", -1),
	)
	if len(d.All) != 2 {
		t.Error("detections lost")
	}
	if len(d.Requests) != len(reqs) {
		t.Error("requests not recorded")
	}
	spans := d.ForwardedSpans(protocols.WiFi80211b1M)
	if len(spans) != 1 {
		t.Errorf("forwarded %v", spans)
	}
}

// toneChunks makes ChunkMeta items with a tone in the given BT channel.
func toneChunks(t *testing.T, channel int, nchunks int, power float64) []*ChunkMeta {
	t.Helper()
	freq := (float64(channel) - 3.5) * 1e6
	r := dsp.NewRand(9)
	var metas []*ChunkMeta
	phase := 0.0
	for c := 0; c < nchunks; c++ {
		samples := make(iq.Samples, iq.ChunkSamples)
		for i := range samples {
			phase += 2 * math.Pi * freq / 8e6
			v := cmplx.Rect(math.Sqrt(power), phase)
			samples[i] = complex64(v)
		}
		dsp.AWGN(r, samples, 1)
		metas = append(metas, &ChunkMeta{
			Chunk: Chunk{
				Seq:     c,
				Span:    iq.Interval{Start: iq.Tick(c * iq.ChunkSamples), End: iq.Tick((c + 1) * iq.ChunkSamples)},
				Samples: samples,
			},
			Busy:       power > 0,
			NoiseFloor: 1,
		})
	}
	return metas
}

func TestBTFreqDetectsChannel(t *testing.T) {
	det := NewBTFreq(BTFreqConfig{})
	var dets []Detection
	emit := func(it flowgraph.Item) { dets = append(dets, it.(Detection)) }
	metas := toneChunks(t, 2, 10, 100)
	// And idle chunks to close the run.
	metas = append(metas, &ChunkMeta{Chunk: Chunk{Seq: 10,
		Span: iq.Interval{Start: 2000, End: 2200}}, Busy: false, NoiseFloor: 1})
	for _, m := range metas {
		if err := det.Process(m, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := det.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("detections = %v", dets)
	}
	if dets[0].Channel != 2 || dets[0].Family != protocols.Bluetooth {
		t.Errorf("detection %v", dets[0])
	}
	if dets[0].Span.Len() < 9*iq.ChunkSamples {
		t.Errorf("run span %v", dets[0].Span)
	}
}

func TestBTFreqIgnoresWideband(t *testing.T) {
	// White noise spreads across all bins: no detection.
	det := NewBTFreq(BTFreqConfig{})
	var dets []Detection
	emit := func(it flowgraph.Item) { dets = append(dets, it.(Detection)) }
	r := dsp.NewRand(10)
	for c := 0; c < 10; c++ {
		samples := dsp.NoiseBlock(r, iq.ChunkSamples, 100)
		m := &ChunkMeta{Chunk: Chunk{Seq: c,
			Span:    iq.Interval{Start: iq.Tick(c * iq.ChunkSamples), End: iq.Tick((c + 1) * iq.ChunkSamples)},
			Samples: samples}, Busy: true, NoiseFloor: 1}
		if err := det.Process(m, emit); err != nil {
			t.Fatal(err)
		}
	}
	det.Flush(emit)
	if len(dets) != 0 {
		t.Errorf("wideband classified: %v", dets)
	}
}

func TestBTFreqFlushClosesRun(t *testing.T) {
	det := NewBTFreq(BTFreqConfig{})
	var dets []Detection
	emit := func(it flowgraph.Item) { dets = append(dets, it.(Detection)) }
	for _, m := range toneChunks(t, 6, 8, 100) {
		det.Process(m, emit)
	}
	det.Flush(emit)
	if len(dets) != 1 || dets[0].Channel != 6 {
		t.Errorf("flush detections = %v", dets)
	}
}

func TestEstimateConstellationBPSK(t *testing.T) {
	// Differential BPSK at 8 sps with a small carrier offset.
	r := dsp.NewRand(11)
	const sps = 8
	samples := make(iq.Samples, 0, 8000)
	phase := 0.0
	for k := 0; k < 1000; k++ {
		if r.Bool() {
			phase += math.Pi
		}
		for i := 0; i < sps; i++ {
			phase += 0.01 // carrier drift
			samples = append(samples, complex64(cmplx.Rect(1, phase)))
		}
	}
	dsp.AWGN(r, samples, 0.01)
	est := EstimateConstellation(samples, sps, 16)
	if est.Points != 2 {
		t.Errorf("BPSK estimated as %d-ary (occupancy %.2f)", est.Points, est.Occupancy)
	}
	if math.Abs(est.DriftRadPerSym-0.08) > 0.03 {
		t.Errorf("drift %v, want ~0.08", est.DriftRadPerSym)
	}
}

func TestEstimateConstellationQPSK(t *testing.T) {
	r := dsp.NewRand(12)
	const sps = 8
	samples := make(iq.Samples, 0, 8000)
	phase := 0.0
	for k := 0; k < 1000; k++ {
		phase += float64(r.Intn(4)) * math.Pi / 2
		for i := 0; i < sps; i++ {
			samples = append(samples, complex64(cmplx.Rect(1, phase)))
		}
	}
	dsp.AWGN(r, samples, 0.01)
	est := EstimateConstellation(samples, sps, 16)
	if est.Points != 4 {
		t.Errorf("QPSK estimated as %d-ary (occupancy %.2f)", est.Points, est.Occupancy)
	}
}

func TestEstimateConstellationNoise(t *testing.T) {
	samples := dsp.NoiseBlock(dsp.NewRand(13), 4000, 1)
	est := EstimateConstellation(samples, 8, 16)
	if est.Points != 0 {
		t.Errorf("noise estimated as %d-PSK", est.Points)
	}
	if e := EstimateConstellation(samples[:10], 8, 16); e.Points != 0 {
		t.Error("short input")
	}
}

func TestIsGFSK(t *testing.T) {
	// Smooth FM: yes. Noise: no.
	smooth := make(iq.Samples, 1000)
	ph := 0.0
	for i := range smooth {
		ph += 0.1 * math.Sin(float64(i)/50)
		smooth[i] = complex64(cmplx.Rect(1, ph))
	}
	if !IsGFSK(smooth, 0.3) {
		t.Error("smooth FM rejected")
	}
	if IsGFSK(dsp.NoiseBlock(dsp.NewRand(14), 1000, 1), 0.3) {
		t.Error("noise accepted")
	}
	if IsGFSK(smooth[:2], 0.3) {
		t.Error("too-short accepted")
	}
}

func TestPipelineRequiresDetectors(t *testing.T) {
	p := NewPipeline(testClock, Config{})
	if _, err := p.Run(make(iq.Samples, 1000)); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestPipelineEmptyStream(t *testing.T) {
	p := NewPipeline(testClock, TimingOnly())
	res, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Detections) != 0 || res.StreamLen != 0 {
		t.Error("empty stream produced detections")
	}
}

func TestPipelineNoiseStream(t *testing.T) {
	p := NewPipeline(testClock, TimingAndPhase())
	res, err := p.Run(dsp.NoiseBlock(dsp.NewRand(15), 200_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) > 2 {
		t.Errorf("noise produced %d analysis requests", len(res.Requests))
	}
	if res.Busy <= 0 {
		t.Error("no CPU accounted")
	}
	if res.CPUPerRealTime() <= 0 {
		t.Error("CPU/RT")
	}
}

func TestPipelineParallelMatchesSequential(t *testing.T) {
	stream := burstStream(100_000, 20, 16,
		iq.Interval{Start: 10_000, End: 20_000}, iq.Interval{Start: 20_080, End: 22_000})
	seq := NewPipeline(testClock, TimingOnly())
	resSeq, err := seq.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := TimingOnly()
	parCfg.Parallel = true
	par := NewPipeline(testClock, parCfg)
	resPar, err := par.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(resSeq.Detections) != len(resPar.Detections) {
		t.Errorf("parallel detections %d != sequential %d",
			len(resPar.Detections), len(resSeq.Detections))
	}
}

func TestStreamAccessorClipping(t *testing.T) {
	acc := &StreamAccessor{Stream: make(iq.Samples, 100)}
	if got := acc.Slice(iq.Interval{Start: -10, End: 50}); len(got) != 50 {
		t.Errorf("negative clip: %d", len(got))
	}
	if got := acc.Slice(iq.Interval{Start: 90, End: 200}); len(got) != 10 {
		t.Errorf("end clip: %d", len(got))
	}
	if got := acc.Slice(iq.Interval{Start: 200, End: 300}); got != nil {
		t.Error("out of range should be nil")
	}
}
