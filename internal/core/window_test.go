package core

import (
	"fmt"
	"testing"

	"rfdump/internal/blocks"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// rampBlock fills a pooled block with n samples whose real part is the
// absolute tick, so slices are self-describing.
func rampBlock(p *blocks.Pool, base iq.Tick, n int) *blocks.Block {
	b := p.Get()
	buf := b.Buf()
	for i := 0; i < n; i++ {
		buf[i] = complex(float32(base)+float32(i), 0)
	}
	b.SetLen(n)
	return b
}

func checkRamp(t *testing.T, got iq.Samples, start iq.Tick, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("slice has %d samples, want %d", len(got), n)
	}
	for i, s := range got {
		if real(s) != float32(start)+float32(i) {
			t.Fatalf("sample %d = %v, want %v", i, real(s), float32(start)+float32(i))
		}
	}
}

func TestBlockWindowClipping(t *testing.T) {
	pool := blocks.NewPool(iq.ChunkSamples)
	w := NewBlockWindow(4 * iq.ChunkSamples)
	for i := 0; i < 3; i++ {
		w.AppendBlock(rampBlock(pool, iq.Tick(i*iq.ChunkSamples), iq.ChunkSamples))
	}
	end := iq.Tick(3 * iq.ChunkSamples)
	if w.End() != end {
		t.Fatalf("End = %d, want %d", w.End(), end)
	}

	// Negative start clips to the window base.
	checkRamp(t, w.Slice(iq.Interval{Start: -500, End: 10}), 0, 10)
	// End past the stream clips to the newest sample.
	checkRamp(t, w.Slice(iq.Interval{Start: end - 10, End: end + 500}), end-10, 10)
	// Empty and inverted intervals yield nil.
	if got := w.Slice(iq.Interval{Start: 50, End: 50}); got != nil {
		t.Errorf("empty interval returned %d samples", len(got))
	}
	if got := w.Slice(iq.Interval{Start: 60, End: 40}); got != nil {
		t.Errorf("inverted interval returned %d samples", len(got))
	}
	// Fully out-of-range (both sides) yields nil.
	if got := w.Slice(iq.Interval{Start: end + 100, End: end + 200}); got != nil {
		t.Errorf("future interval returned %d samples", len(got))
	}

	// A single-block slice must be a zero-copy view of the block.
	single := w.Slice(iq.Interval{Start: 10, End: 20})
	checkRamp(t, single, 10, 10)
	// A cross-block slice is assembled but must still be exact.
	edge := iq.Tick(iq.ChunkSamples)
	checkRamp(t, w.Slice(iq.Interval{Start: edge - 7, End: edge + 9}), edge-7, 16)
	// Spanning all three blocks.
	checkRamp(t, w.Slice(iq.Interval{Start: 5, End: end - 5}), 5, int(end)-10)

	w.Close()
	if live := pool.Stats().Live; live != 0 {
		t.Errorf("%d blocks live after Close", live)
	}
}

func TestBlockWindowEviction(t *testing.T) {
	pool := blocks.NewPool(iq.ChunkSamples)
	w := NewBlockWindow(4 * iq.ChunkSamples) // minimum retention
	const n = 40
	for i := 0; i < n; i++ {
		w.AppendBlock(rampBlock(pool, iq.Tick(i*iq.ChunkSamples), iq.ChunkSamples))
	}
	end := iq.Tick(n * iq.ChunkSamples)
	// Old data evicted: a slice from tick 0 comes back empty.
	if got := w.Slice(iq.Interval{Start: 0, End: 100}); len(got) != 0 {
		t.Errorf("evicted slice returned %d samples", len(got))
	}
	// Window retains at least the limit.
	checkRamp(t, w.Slice(iq.Interval{Start: end - 4*iq.ChunkSamples, End: end}), end-4*iq.ChunkSamples, 4*iq.ChunkSamples)
	// Evicted blocks went back to the pool (only the retained ones live).
	if live := pool.Stats().Live; live != int64(len(w.blks)-w.head) {
		t.Errorf("pool live = %d, window holds %d", live, len(w.blks)-w.head)
	}
	w.Close()
	if live := pool.Stats().Live; live != 0 {
		t.Errorf("%d blocks live after Close", live)
	}
}

func TestBlockWindowShortBlocks(t *testing.T) {
	// Variable-length blocks (short reads, decimated front ends) must
	// keep tick addressing exact across the deque.
	pool := blocks.NewPool(iq.ChunkSamples)
	w := NewBlockWindow(4 * iq.ChunkSamples)
	var base iq.Tick
	for _, n := range []int{200, 37, 1, 158, 200} {
		w.AppendBlock(rampBlock(pool, base, n))
		base += iq.Tick(n)
	}
	checkRamp(t, w.Slice(iq.Interval{Start: 190, End: 250}), 190, 60)
	checkRamp(t, w.Slice(iq.Interval{Start: 236, End: 240}), 236, 4)
	w.Close()
}

// TestLockedBlockWindowConcurrentSlice: the parallel scheduler's wrapper
// must allow concurrent Slice calls — including cross-block intervals,
// which in the bare window assemble into a shared scratch buffer — while
// the source appends. Run under -race this pins the no-shared-scratch
// guarantee; in any mode it checks the copies are exact.
func TestLockedBlockWindowConcurrentSlice(t *testing.T) {
	pool := blocks.NewPool(iq.ChunkSamples)
	// Retention larger than everything appended: concurrent appends must
	// not evict the range the slicers are reading.
	lw := &lockedBlockWindow{w: NewBlockWindow(16 * iq.ChunkSamples)}
	for i := 0; i < 4; i++ {
		lw.AppendBlock(rampBlock(pool, iq.Tick(i*iq.ChunkSamples), iq.ChunkSamples))
	}

	edge := iq.Tick(iq.ChunkSamples)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			start := edge - 11 - iq.Tick(g) // every slice crosses a block boundary
			for i := 0; i < 200; i++ {
				got := lw.Slice(iq.Interval{Start: start, End: start + 40})
				if len(got) != 40 {
					done <- fmt.Errorf("goroutine %d: %d samples, want 40", g, len(got))
					return
				}
				for j, s := range got {
					if real(s) != float32(start)+float32(j) {
						done <- fmt.Errorf("goroutine %d: sample %d = %v, want %v", g, j, real(s), float32(start)+float32(j))
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for i := 4; i < 12; i++ {
		lw.AppendBlock(rampBlock(pool, iq.Tick(i*iq.ChunkSamples), iq.ChunkSamples))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	lw.Close()
	if live := pool.Stats().Live; live != 0 {
		t.Errorf("%d blocks live after Close", live)
	}
}

func TestStreamAccessorClippingEdges(t *testing.T) {
	stream := make(iq.Samples, 100)
	for i := range stream {
		stream[i] = complex(float32(i), 0)
	}
	acc := &StreamAccessor{Stream: stream}

	checkRamp(t, acc.Slice(iq.Interval{Start: -10, End: 5}), 0, 5)
	checkRamp(t, acc.Slice(iq.Interval{Start: 95, End: 500}), 95, 5)
	if got := acc.Slice(iq.Interval{Start: 20, End: 20}); got != nil {
		t.Errorf("empty interval returned %d samples", len(got))
	}
	if got := acc.Slice(iq.Interval{Start: 30, End: 10}); got != nil {
		t.Errorf("inverted interval returned %d samples", len(got))
	}
	if got := acc.Slice(iq.Interval{Start: -20, End: -5}); got != nil {
		t.Errorf("fully negative interval returned %d samples", len(got))
	}
	checkRamp(t, acc.Slice(iq.Interval{Start: 40, End: 60}), 40, 20)
}

// TestDispatcherMergeAtChunkEdges pins the merge rule exactly at the
// chunk-granularity slack boundary: detections whose gap equals
// SlackSamples merge; one sample past it they split.
func TestDispatcherMergeAtChunkEdges(t *testing.T) {
	slack := iq.Tick(iq.ChunkSamples)
	edge := iq.Tick(10 * iq.ChunkSamples)

	// Gap of exactly SlackSamples (next start == prev end + slack): merge.
	_, reqs := runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, edge-1000, edge, "a", -1),
		det(protocols.WiFi80211b1M, edge+slack, edge+slack+1000, "a", -1),
	)
	if len(reqs) != 1 {
		t.Fatalf("slack-gap detections: %d requests, want 1 merged", len(reqs))
	}
	if reqs[0].Span.Start > edge-1000 || reqs[0].Span.End < edge+slack+1000 {
		t.Errorf("merged span %v does not cover both detections", reqs[0].Span)
	}

	// One sample past the slack: split.
	_, reqs = runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, edge-1000, edge, "a", -1),
		det(protocols.WiFi80211b1M, edge+slack+1, edge+slack+1000, "a", -1),
	)
	if len(reqs) != 2 {
		t.Fatalf("past-slack detections: %d requests, want 2", len(reqs))
	}

	// Back-to-back at a chunk edge (zero gap across the boundary): merge.
	_, reqs = runDispatcher(t, DispatcherConfig{},
		det(protocols.WiFi80211b1M, edge-500, edge, "a", -1),
		det(protocols.WiFi80211b1M, edge, edge+500, "a", -1),
	)
	if len(reqs) != 1 {
		t.Fatalf("adjacent detections: %d requests, want 1 merged", len(reqs))
	}
}
