package core

import (
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// SlidingWindow is a bounded-memory SampleAccessor for live monitoring:
// it holds the most recent W samples of the stream. Detectors that probe
// a peak's samples see them as long as the peak is younger than the
// window — which the architecture guarantees for its own latency bounds
// (the dispatcher flushes pending spans within MaxPending samples).
//
// Slices of evicted history come back clipped (possibly nil); detectors
// already tolerate short probes, mirroring how a real deployment cannot
// revisit RF that left its capture buffer.
type SlidingWindow struct {
	buf   iq.Samples // compacted storage; buf[0] is absolute tick base
	base  iq.Tick
	limit int // target retention in samples
}

// NewSlidingWindow returns a window retaining at least limit samples
// (minimum four chunks).
func NewSlidingWindow(limit int) *SlidingWindow {
	if limit < 4*iq.ChunkSamples {
		limit = 4 * iq.ChunkSamples
	}
	return &SlidingWindow{buf: make(iq.Samples, 0, 2*limit), limit: limit}
}

// Append adds the next block of the stream.
func (w *SlidingWindow) Append(block iq.Samples) {
	if len(w.buf)+len(block) > cap(w.buf) && len(w.buf) > w.limit {
		// Compact: keep the newest limit samples.
		drop := len(w.buf) - w.limit
		copy(w.buf, w.buf[drop:])
		w.buf = w.buf[:w.limit]
		w.base += iq.Tick(drop)
	}
	w.buf = append(w.buf, block...)
}

// End returns the absolute tick one past the newest sample.
func (w *SlidingWindow) End() iq.Tick { return w.base + iq.Tick(len(w.buf)) }

// Slice implements SampleAccessor, clipping to retained history.
func (w *SlidingWindow) Slice(iv iq.Interval) iq.Samples {
	lo, hi := iv.Start, iv.End
	if lo < w.base {
		lo = w.base
	}
	if hi > w.End() {
		hi = w.End()
	}
	if hi <= lo {
		return nil
	}
	return w.buf[lo-w.base : hi-w.base]
}

// BlockReader is the minimal live-input contract (satisfied by
// frontend.SampleSource): fill dst, return n read and io.EOF at end.
type BlockReader interface {
	ReadBlock(dst iq.Samples) (int, error)
}

// StreamConfig tunes RunStream.
type StreamConfig struct {
	// WindowSamples bounds retained history (default 1 s at 8 Msps /40,
	// i.e. 200 ms).
	WindowSamples int
	// OnDetection, if set, is called for every detection as it is made
	// (live monitoring UI); it must not retain the value. Under the
	// parallel scheduler it runs on the dispatcher's goroutine.
	OnDetection func(Detection)
	// OnOutput, if set, receives analyzer products (decoded packets) as
	// they are produced, on the sink's goroutine under the parallel
	// scheduler.
	OnOutput func(flowgraph.Item)
	// OnDetectionCapture, if set, fires after OnDetection with the
	// detection, the clipped absolute span of its triggering samples
	// (padded by CapturePad each side) and those samples themselves —
	// the raw IQ burst a spectrum DVR stores for later re-demodulation.
	// The sample slice is a session-owned buffer reused across
	// detections: consume or copy it before returning, never retain it.
	// Runs on the dispatcher's goroutine; must not block.
	OnDetectionCapture func(det Detection, span iq.Interval, burst iq.Samples)
	// CapturePad widens each captured span by this many samples on both
	// sides so demodulators re-running a snippet see the preamble ramp
	// (default one chunk, 200 samples; negative = no padding).
	CapturePad int
	// CaptureMaxSamples bounds one captured burst (default 65536). A
	// longer detection keeps its head — preamble and sync live there.
	CaptureMaxSamples int
	// NoRetain stops the Result from accumulating Detections/Requests
	// (when OnDetection is set) and Outputs (when OnOutput is set), so a
	// long-running live session uses bounded memory.
	NoRetain bool
	// Supervise, when non-nil, isolates block faults: panics are
	// recovered and erroring detectors/analyzers are quarantined (and
	// optionally readmitted after a backoff) instead of aborting the
	// run.
	Supervise *flowgraph.SupervisorConfig
	// Overload, when non-nil, enables watermark-based load shedding
	// against real time; shed work is accounted in Result.Degradation.
	Overload *OverloadConfig
	// OnSessionStart, if set, fires at the top of Session.Run with the
	// engine-assigned session id — the fan-out point where a
	// multi-session server announces a new live run (one per ingest
	// connection) to its subscribers.
	OnSessionStart func(id uint64)
	// OnSessionEnd, if set, fires after the session's flowgraph has
	// drained, with the run result (nil when Run failed) — the matching
	// teardown hook. Both hooks run on the Run caller's goroutine.
	OnSessionEnd func(id uint64, res *Result, err error)
}

// RunStream processes a live sample source with bounded memory: the
// real-time mode of the architecture ("the tool must run in real-time...
// our system can process transmissions after some delay (e.g., a second)
// but the processing must keep up", Section 1). The detectors, dispatcher
// and analyzers are identical to Run; only the sample storage differs.
// Detection and output callbacks fire incrementally as the scheduler
// produces items, and with Supervise/Overload set the run degrades
// gracefully (quarantine, load shedding) instead of dying.
//
// RunStream is one Session over the pipeline's engine; programs wanting
// several concurrent streaming runs over one configuration use Engine
// and Session directly.
func (p *Pipeline) RunStream(src BlockReader, cfg StreamConfig) (*Result, error) {
	s, err := p.engine.session(p.analyzers, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(src)
}
