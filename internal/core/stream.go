package core

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// SlidingWindow is a bounded-memory SampleAccessor for live monitoring:
// it holds the most recent W samples of the stream. Detectors that probe
// a peak's samples see them as long as the peak is younger than the
// window — which the architecture guarantees for its own latency bounds
// (the dispatcher flushes pending spans within MaxPending samples).
//
// Slices of evicted history come back clipped (possibly nil); detectors
// already tolerate short probes, mirroring how a real deployment cannot
// revisit RF that left its capture buffer.
type SlidingWindow struct {
	buf   iq.Samples // compacted storage; buf[0] is absolute tick base
	base  iq.Tick
	limit int // target retention in samples
}

// NewSlidingWindow returns a window retaining at least limit samples
// (minimum four chunks).
func NewSlidingWindow(limit int) *SlidingWindow {
	if limit < 4*iq.ChunkSamples {
		limit = 4 * iq.ChunkSamples
	}
	return &SlidingWindow{buf: make(iq.Samples, 0, 2*limit), limit: limit}
}

// Append adds the next block of the stream.
func (w *SlidingWindow) Append(block iq.Samples) {
	if len(w.buf)+len(block) > cap(w.buf) && len(w.buf) > w.limit {
		// Compact: keep the newest limit samples.
		drop := len(w.buf) - w.limit
		copy(w.buf, w.buf[drop:])
		w.buf = w.buf[:w.limit]
		w.base += iq.Tick(drop)
	}
	w.buf = append(w.buf, block...)
}

// End returns the absolute tick one past the newest sample.
func (w *SlidingWindow) End() iq.Tick { return w.base + iq.Tick(len(w.buf)) }

// Slice implements SampleAccessor, clipping to retained history.
func (w *SlidingWindow) Slice(iv iq.Interval) iq.Samples {
	lo, hi := iv.Start, iv.End
	if lo < w.base {
		lo = w.base
	}
	if hi > w.End() {
		hi = w.End()
	}
	if hi <= lo {
		return nil
	}
	return w.buf[lo-w.base : hi-w.base]
}

// BlockReader is the minimal live-input contract (satisfied by
// frontend.SampleSource): fill dst, return n read and io.EOF at end.
type BlockReader interface {
	ReadBlock(dst iq.Samples) (int, error)
}

// streamWindow is what RunStream needs from its sample store.
type streamWindow interface {
	SampleAccessor
	Append(block iq.Samples)
	End() iq.Tick
}

// lockedWindow synchronizes a SlidingWindow for the parallel scheduler:
// blocks run on their own goroutines while the source keeps appending,
// and compaction moves samples, so Slice must hand out copies — a block
// may still be reading them when the window slides.
type lockedWindow struct {
	mu sync.RWMutex
	w  *SlidingWindow
}

func (l *lockedWindow) Append(block iq.Samples) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Append(block)
}

func (l *lockedWindow) End() iq.Tick {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.w.End()
}

func (l *lockedWindow) Slice(iv iq.Interval) iq.Samples {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.w.Slice(iv)
	if len(s) == 0 {
		return nil
	}
	return append(iq.Samples(nil), s...)
}

// StreamConfig tunes RunStream.
type StreamConfig struct {
	// WindowSamples bounds retained history (default 1 s at 8 Msps /40,
	// i.e. 200 ms).
	WindowSamples int
	// OnDetection, if set, is called for every detection as it is made
	// (live monitoring UI); it must not retain the value. Under the
	// parallel scheduler it runs on the dispatcher's goroutine.
	OnDetection func(Detection)
	// OnOutput, if set, receives analyzer products (decoded packets) as
	// they are produced, on the sink's goroutine under the parallel
	// scheduler.
	OnOutput func(flowgraph.Item)
	// NoRetain stops the Result from accumulating Detections/Requests
	// (when OnDetection is set) and Outputs (when OnOutput is set), so a
	// long-running live session uses bounded memory.
	NoRetain bool
	// Supervise, when non-nil, isolates block faults: panics are
	// recovered and erroring detectors/analyzers are quarantined (and
	// optionally readmitted after a backoff) instead of aborting the
	// run.
	Supervise *flowgraph.SupervisorConfig
	// Overload, when non-nil, enables watermark-based load shedding
	// against real time; shed work is accounted in Result.Degradation.
	Overload *OverloadConfig
}

// RunStream processes a live sample source with bounded memory: the
// real-time mode of the architecture ("the tool must run in real-time...
// our system can process transmissions after some delay (e.g., a second)
// but the processing must keep up", Section 1). The detectors, dispatcher
// and analyzers are identical to Run; only the sample storage differs.
// Detection and output callbacks fire incrementally as the scheduler
// produces items, and with Supervise/Overload set the run degrades
// gracefully (quarantine, load shedding) instead of dying.
func (p *Pipeline) RunStream(src BlockReader, cfg StreamConfig) (*Result, error) {
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 1_600_000 // 200 ms at 8 Msps
	}
	var window streamWindow = NewSlidingWindow(cfg.WindowSamples)
	if p.cfg.Parallel {
		window = &lockedWindow{w: NewSlidingWindow(cfg.WindowSamples)}
	}
	opts := assembleOpts{
		onDetection: cfg.OnDetection,
		onOutput:    cfg.OnOutput,
		noRetainDet: cfg.NoRetain && cfg.OnDetection != nil,
		noRetainOut: cfg.NoRetain && cfg.OnOutput != nil,
	}
	var pace *pacer
	if cfg.Overload != nil {
		pace = newPacer(p.clock, *cfg.Overload)
		pace.instrument(p.cfg.Metrics)
		opts.gate = &shedGate{pacer: pace}
	}
	graph, dispatcher, outputs, err := p.assemble(window, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Supervise != nil {
		graph.Supervise(*cfg.Supervise)
	}

	var (
		seq     int
		readErr error
		block   = make(iq.Samples, iq.ChunkSamples)
	)
	source := func() (flowgraph.Item, bool) {
		for {
			if readErr != nil {
				return nil, false
			}
			n, err := src.ReadBlock(block)
			if err != nil && !errors.Is(err, io.EOF) {
				readErr = err
			}
			if n == 0 {
				readErr = err
				return nil, false
			}
			start := window.End()
			window.Append(block[:n])
			span := iq.Interval{Start: start, End: start + iq.Tick(n)}
			c := Chunk{Seq: seq, Span: span, Samples: window.Slice(span)}
			seq++
			if errors.Is(err, io.EOF) {
				readErr = err
			}
			// Last-resort shedding: when the pipeline has fallen past the
			// chunk watermark the chunk never enters the graph (detectors
			// included — they are shed last, and only here).
			if pace != nil && pace.observe(window.End()) >= ShedChunks {
				pace.shedChunks.Inc()
				pace.shedSamples.Add(int64(n))
				continue
			}
			return c, true
		}
	}

	if p.cfg.Parallel {
		err = graph.RunParallel(source, 128)
	} else {
		err = graph.Run(source)
	}
	if err != nil {
		return nil, err
	}
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		return nil, fmt.Errorf("core: stream source: %w", readErr)
	}

	stats := graph.Stats()
	return &Result{
		Detections:  dispatcher.All,
		Requests:    dispatcher.Requests,
		Outputs:     *outputs,
		Stats:       stats,
		Busy:        graph.TotalBusy(),
		StreamLen:   window.End(),
		Clock:       p.clock,
		Degradation: degradationFrom(stats, pace),
	}, nil
}
