package core

import (
	"errors"
	"fmt"
	"io"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// SlidingWindow is a bounded-memory SampleAccessor for live monitoring:
// it holds the most recent W samples of the stream. Detectors that probe
// a peak's samples see them as long as the peak is younger than the
// window — which the architecture guarantees for its own latency bounds
// (the dispatcher flushes pending spans within MaxPending samples).
//
// Slices of evicted history come back clipped (possibly nil); detectors
// already tolerate short probes, mirroring how a real deployment cannot
// revisit RF that left its capture buffer.
type SlidingWindow struct {
	buf   iq.Samples // compacted storage; buf[0] is absolute tick base
	base  iq.Tick
	limit int // target retention in samples
}

// NewSlidingWindow returns a window retaining at least limit samples
// (minimum four chunks).
func NewSlidingWindow(limit int) *SlidingWindow {
	if limit < 4*iq.ChunkSamples {
		limit = 4 * iq.ChunkSamples
	}
	return &SlidingWindow{buf: make(iq.Samples, 0, 2*limit), limit: limit}
}

// Append adds the next block of the stream.
func (w *SlidingWindow) Append(block iq.Samples) {
	if len(w.buf)+len(block) > cap(w.buf) && len(w.buf) > w.limit {
		// Compact: keep the newest limit samples.
		drop := len(w.buf) - w.limit
		copy(w.buf, w.buf[drop:])
		w.buf = w.buf[:w.limit]
		w.base += iq.Tick(drop)
	}
	w.buf = append(w.buf, block...)
}

// End returns the absolute tick one past the newest sample.
func (w *SlidingWindow) End() iq.Tick { return w.base + iq.Tick(len(w.buf)) }

// Slice implements SampleAccessor, clipping to retained history.
func (w *SlidingWindow) Slice(iv iq.Interval) iq.Samples {
	lo, hi := iv.Start, iv.End
	if lo < w.base {
		lo = w.base
	}
	if hi > w.End() {
		hi = w.End()
	}
	if hi <= lo {
		return nil
	}
	return w.buf[lo-w.base : hi-w.base]
}

// BlockReader is the minimal live-input contract (satisfied by
// frontend.SampleSource): fill dst, return n read and io.EOF at end.
type BlockReader interface {
	ReadBlock(dst iq.Samples) (int, error)
}

// StreamConfig tunes RunStream.
type StreamConfig struct {
	// WindowSamples bounds retained history (default 1 s at 8 Msps /40,
	// i.e. 200 ms).
	WindowSamples int
	// OnDetection, if set, is called for every detection as it is made
	// (live monitoring UI); it must not retain the value.
	OnDetection func(Detection)
	// OnOutput, if set, receives analyzer products (decoded packets) as
	// they are produced.
	OnOutput func(flowgraph.Item)
}

// RunStream processes a live sample source with bounded memory: the
// real-time mode of the architecture ("the tool must run in real-time...
// our system can process transmissions after some delay (e.g., a second)
// but the processing must keep up", Section 1). The detectors, dispatcher
// and analyzers are identical to Run; only the sample storage differs.
func (p *Pipeline) RunStream(src BlockReader, cfg StreamConfig) (*Result, error) {
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 1_600_000 // 200 ms at 8 Msps
	}
	window := NewSlidingWindow(cfg.WindowSamples)
	graph, dispatcher, outputs, err := p.assemble(window)
	if err != nil {
		return nil, err
	}

	var (
		seq     int
		readErr error
		block   = make(iq.Samples, iq.ChunkSamples)
	)
	source := func() (flowgraph.Item, bool) {
		if readErr != nil {
			return nil, false
		}
		n, err := src.ReadBlock(block)
		if err != nil && !errors.Is(err, io.EOF) {
			readErr = err
		}
		if n == 0 {
			readErr = err
			return nil, false
		}
		start := window.End()
		window.Append(block[:n])
		c := Chunk{
			Seq:     seq,
			Span:    iq.Interval{Start: start, End: start + iq.Tick(n)},
			Samples: window.Slice(iq.Interval{Start: start, End: start + iq.Tick(n)}),
		}
		seq++
		if errors.Is(err, io.EOF) {
			readErr = err
		}
		return c, true
	}

	if err := graph.Run(source); err != nil {
		return nil, err
	}
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		return nil, fmt.Errorf("core: stream source: %w", readErr)
	}

	// Live callbacks: deliver in order (the sequential scheduler already
	// produced them in order; for simplicity they are delivered at the
	// end of each graph push via the dispatcher/sink records).
	if cfg.OnDetection != nil {
		for _, d := range dispatcher.All {
			cfg.OnDetection(d)
		}
	}
	if cfg.OnOutput != nil {
		for _, it := range *outputs {
			cfg.OnOutput(it)
		}
	}

	return &Result{
		Detections: dispatcher.All,
		Requests:   dispatcher.Requests,
		Outputs:    *outputs,
		Stats:      graph.Stats(),
		Busy:       graph.TotalBusy(),
		StreamLen:  window.End(),
		Clock:      p.clock,
	}, nil
}
