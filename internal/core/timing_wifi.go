package core

import (
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// WiFiTimingConfig tunes the 802.11 timing detector.
type WiFiTimingConfig struct {
	// SIFSToleranceUS is the ± tolerance around SIFS (δ(SIFS)).
	SIFSToleranceUS float64
	// DIFSToleranceUS is the ± tolerance around DIFS + k*ST gaps.
	DIFSToleranceUS float64
	// CWMax bounds k (paper uses 64 "to bound our latency").
	CWMax int
	// EnableSIFS/EnableDIFS select which patterns to search; both default
	// to on. The unicast microbenchmark isolates SIFS, the broadcast one
	// DIFS.
	DisableSIFS bool
	DisableDIFS bool
}

func (c WiFiTimingConfig) withDefaults() WiFiTimingConfig {
	if c.SIFSToleranceUS <= 0 {
		c.SIFSToleranceUS = 2.5
	}
	if c.DIFSToleranceUS <= 0 {
		c.DIFSToleranceUS = 4
	}
	if c.CWMax <= 0 {
		c.CWMax = protocols.WiFiCWMax
	}
	return c
}

// WiFiTiming is the 802.11 protocol-specific timing detector of Sections
// 3.2/4.4: it classifies a pair of peaks separated by SIFS (a data frame
// and its MAC-level ACK) and peaks separated from their predecessor by
// DIFS + k*SlotTime (contention) as 802.11. It operates purely on the
// peak metadata.
type WiFiTiming struct {
	cfg   WiFiTimingConfig
	clock iq.Clock

	sifs iq.Tick
	difs iq.Tick
	slot iq.Tick
	sTol iq.Tick
	dTol iq.Tick

	prevEnd   iq.Tick
	prevSpan  iq.Interval
	havePrev  bool
	prevMatch bool // previous peak was already reported as 802.11
}

// NewWiFiTiming returns the detector for the given sample clock.
func NewWiFiTiming(clock iq.Clock, cfg WiFiTimingConfig) *WiFiTiming {
	cfg = cfg.withDefaults()
	w := &WiFiTiming{cfg: cfg, clock: clock}
	w.sifs = clock.Ticks(protocols.WiFiSIFS)
	w.difs = clock.Ticks(protocols.WiFiDIFS)
	w.slot = clock.Ticks(protocols.WiFiSlotTime)
	w.sTol = iq.Tick(cfg.SIFSToleranceUS * float64(clock.Rate) / 1e6)
	w.dTol = iq.Tick(cfg.DIFSToleranceUS * float64(clock.Rate) / 1e6)
	return w
}

// Name implements flowgraph.Block.
func (w *WiFiTiming) Name() string { return "802.11-timing" }

// Process implements flowgraph.Block: consumes *ChunkMeta, emits
// Detection items for classified peaks.
func (w *WiFiTiming) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	meta := item.(*ChunkMeta)
	for _, pk := range meta.Completed {
		w.observe(pk, emit)
	}
	return nil
}

func (w *WiFiTiming) observe(pk Peak, emit func(flowgraph.Item)) {
	defer func() {
		w.prevEnd = pk.Span.End
		w.prevSpan = pk.Span
		w.havePrev = true
	}()

	if !w.havePrev {
		w.prevMatch = false
		return
	}
	gap := pk.Span.Start - w.prevEnd
	if gap < 0 {
		w.prevMatch = false
		return
	}

	// SIFS pattern: this peak is the ACK of the previous peak. Forward
	// both ("a packet and the MAC-level acknowledgment have a time gap
	// corresponding to SIFS").
	if !w.cfg.DisableSIFS && absTick(gap-w.sifs) <= w.sTol {
		if !w.prevMatch {
			emit(Detection{
				Family:     protocols.WiFi80211b1M,
				Span:       w.prevSpan,
				Detector:   "802.11-sifs",
				Confidence: 0.9,
				Channel:    -1,
			})
		}
		emit(Detection{
			Family:     protocols.WiFi80211b1M,
			Span:       pk.Span,
			Detector:   "802.11-sifs",
			Confidence: 0.9,
			Channel:    -1,
		})
		w.prevMatch = true
		return
	}

	// DIFS + k*ST pattern: contention spacing.
	if !w.cfg.DisableDIFS && gap >= w.difs-w.dTol {
		rem := gap - w.difs
		k := int((rem + w.slot/2) / w.slot)
		if k >= 0 && k <= w.cfg.CWMax {
			offset := rem - iq.Tick(k)*w.slot
			if absTick(offset) <= w.dTol {
				emit(Detection{
					Family:     protocols.WiFi80211b1M,
					Span:       pk.Span,
					Detector:   "802.11-difs",
					Confidence: 0.7,
					Channel:    -1,
				})
				w.prevMatch = true
				return
			}
		}
	}
	w.prevMatch = false
}

// Flush implements flowgraph.Block.
func (w *WiFiTiming) Flush(func(flowgraph.Item)) error { return nil }

func absTick(t iq.Tick) iq.Tick {
	if t < 0 {
		return -t
	}
	return t
}
