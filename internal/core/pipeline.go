package core

import (
	"fmt"
	"time"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
	"rfdump/internal/protocols"
)

// Analyzer is the analysis-stage plug-in interface (demodulators,
// header-only decoders, deep packet inspection — "Functionality
// Extensible", Section 2.1). Analyzers receive merged AnalysisRequests
// and read samples through the accessor; whatever they emit is collected
// in the run result's Outputs. It is an alias of the registry-facing
// interface so protocol modules can carry analyzer factories without a
// dependency cycle.
type Analyzer = protocols.Analyzer

// RegistryAnalyzers builds one analyzer per registered module that has
// an analysis capability, in module registration order.
func RegistryAnalyzers(opts protocols.AnalyzerOptions) []Analyzer {
	var out []Analyzer
	for _, m := range protocols.Modules() {
		if a := m.NewAnalyzer(opts); a != nil {
			out = append(out, a)
		}
	}
	return out
}

// RegistryAnalyzerFactories is RegistryAnalyzers for the multi-session
// Engine: one factory per analysis-capable module, each stamping out
// fresh instances.
func RegistryAnalyzerFactories(opts protocols.AnalyzerOptions) []AnalyzerFactory {
	var out []AnalyzerFactory
	for _, m := range protocols.Modules() {
		if !m.HasAnalyzer() {
			continue
		}
		m := m
		out = append(out, func() Analyzer { return m.NewAnalyzer(opts) })
	}
	return out
}

// StreamAccessor adapts an in-memory stream to SampleAccessor.
type StreamAccessor struct {
	Stream iq.Samples
}

// Slice implements SampleAccessor with clipping.
func (s *StreamAccessor) Slice(iv iq.Interval) iq.Samples {
	start, end := int64(iv.Start), int64(iv.End)
	if start < 0 {
		start = 0
	}
	if end > int64(len(s.Stream)) {
		end = int64(len(s.Stream))
	}
	if end <= start {
		return nil
	}
	return s.Stream[start:end]
}

// Config selects which fast detectors the pipeline runs. Detectors are
// registry specs — either resolved from the module registry by
// ParseDetectors, or built directly with the spec constructors
// (WiFiTimingSpec, BTPhaseSpec, ...). The experiments use the latter to
// produce the paper's "RFDump with timing detection", "... with phase
// detection" and "... with timing and phase" variants.
type Config struct {
	Peak     PeakConfig
	Dispatch DispatcherConfig
	// Detectors is the fast-detector set, assembled in order (duplicate
	// block names are dropped after the first).
	Detectors []protocols.DetectorSpec
	// Parallel runs the flowgraph with the multi-threaded scheduler (the
	// paper's future-work extension; default single-threaded like GNU
	// Radio at the time).
	Parallel bool
	// DemodWorkers shards the analysis stage across this many worker
	// goroutines: each analysis request is handed to a work-stealing
	// worker pool in which every worker owns a private set of analyzer
	// instances, and the decoded outputs are re-sequenced so downstream
	// consumers see exactly the single-threaded order. 0 or 1 keeps the
	// inline per-analyzer chain; negative selects GOMAXPROCS. Sharding
	// needs analyzer factories to stamp per-worker instances, so it
	// applies on the Engine/Session path (NewEngine with factories); the
	// instance-sharing Pipeline path ignores it.
	DemodWorkers int
	// Metrics, when non-nil, publishes the run's observability surface
	// into the registry: per-block flowgraph stats, per-detector
	// ns/chunk histograms and accept/reject counters, per-analyzer
	// request costs, per-protocol detection/forwarding counters and CRC
	// pass rates (labelled from the module registry), and (with
	// Overload) shed-level transitions. Nil disables all instrumentation
	// at zero hot-path cost.
	Metrics *metrics.Registry
}

// Detect returns a Config running the given detector specs.
func Detect(specs ...protocols.DetectorSpec) Config {
	return Config{Detectors: specs}
}

// TimingOnly returns the configuration using only timing detectors.
func TimingOnly() Config {
	return Detect(WiFiTimingSpec(WiFiTimingConfig{}), BTTimingSpec(BTTimingConfig{}))
}

// PhaseOnly returns the configuration using only phase detectors.
func PhaseOnly() Config {
	return Detect(WiFiPhaseSpec(WiFiPhaseConfig{}), BTPhaseSpec(BTPhaseConfig{}))
}

// TimingAndPhase returns the combined configuration.
func TimingAndPhase() Config {
	c := TimingOnly()
	c.Detectors = append(c.Detectors, PhaseOnly().Detectors...)
	return c
}

// Result summarizes one pipeline run.
type Result struct {
	// Detections is every fast-detector verdict.
	Detections []Detection
	// Requests is every merged span forwarded to analysis.
	Requests []AnalysisRequest
	// Outputs collects everything the analyzers emitted (decoded
	// packets, diagnostics).
	Outputs []flowgraph.Item
	// Stats is the per-block CPU accounting.
	Stats []flowgraph.BlockStat
	// Busy is the total single-thread CPU time.
	Busy time.Duration
	// StreamLen is the processed trace length.
	StreamLen iq.Tick
	// Clock converts ticks to time.
	Clock iq.Clock
	// Degradation accounts work shed under overload and dropped by
	// supervision (all-zero for a clean run).
	Degradation Degradation
}

// CPUPerRealTime returns the paper's headline efficiency metric:
// CPU time / real time of the trace.
func (r *Result) CPUPerRealTime() float64 {
	rt := r.Clock.Duration(r.StreamLen)
	if rt <= 0 {
		return 0
	}
	return float64(r.Busy) / float64(rt)
}

// ForwardedSpans returns merged forwarded intervals for a family.
func (r *Result) ForwardedSpans(family protocols.ID) []iq.Interval {
	var out []iq.Interval
	for _, req := range r.Requests {
		if req.Family.Family() == family.Family() {
			out = append(out, req.Span)
		}
	}
	return iq.Merge(out)
}

// Pipeline is the assembled RFDump architecture: chunk source → peak
// detector (with integrated energy filter) → protocol-specific fast
// detectors → dispatcher → analyzers (Figure 2). It is the
// one-run-at-a-time façade over an Engine with a fixed analyzer set;
// programs that want several concurrent streaming runs build an Engine
// with analyzer factories and open Sessions directly.
type Pipeline struct {
	engine    *Engine
	analyzers []Analyzer
}

// NewPipeline builds a pipeline description; Run assembles a fresh
// flowgraph per trace (detector state never leaks across runs).
func NewPipeline(clock iq.Clock, cfg Config, analyzers ...Analyzer) *Pipeline {
	return &Pipeline{engine: NewEngine(clock, cfg), analyzers: analyzers}
}

// analyzerBlock adapts an Analyzer to a flowgraph.Block, filtering
// requests by family.
type analyzerBlock struct {
	a   Analyzer
	src SampleAccessor
}

func (b *analyzerBlock) Name() string { return b.a.Name() }

func (b *analyzerBlock) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	req, ok := item.(AnalysisRequest)
	if !ok || !b.a.Accepts(req.Family) {
		return nil
	}
	return b.a.Analyze(b.src, req, emit)
}

func (b *analyzerBlock) Flush(func(flowgraph.Item)) error { return nil }

// analyzerSetBlock is one sharded worker's replica: a full analyzer set
// run in registration order against each request, exactly the order the
// inline per-analyzer chain delivers (the dispatcher fans a request to
// every analyzer block in the order they were connected).
type analyzerSetBlock struct {
	analyzers []Analyzer
	src       SampleAccessor
}

func (b *analyzerSetBlock) Name() string { return "analyzers" }

func (b *analyzerSetBlock) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	req, ok := item.(AnalysisRequest)
	if !ok {
		return nil
	}
	for _, a := range b.analyzers {
		if !a.Accepts(req.Family) {
			continue
		}
		if err := a.Analyze(b.src, req, emit); err != nil {
			return err
		}
	}
	return nil
}

func (b *analyzerSetBlock) Flush(func(flowgraph.Item)) error { return nil }

// sinkBlock collects analyzer outputs and/or delivers them live.
type sinkBlock struct {
	items  *[]flowgraph.Item
	onItem func(flowgraph.Item)
	retain bool
}

func (s *sinkBlock) Name() string { return "sink" }
func (s *sinkBlock) Process(item flowgraph.Item, _ func(flowgraph.Item)) error {
	if s.retain {
		*s.items = append(*s.items, item)
	}
	if s.onItem != nil {
		s.onItem(item)
	}
	return nil
}
func (s *sinkBlock) Flush(func(flowgraph.Item)) error { return nil }

// assembleOpts tunes assemble for the streaming path: live delivery
// hooks, retention control, and the overload shed gate.
type assembleOpts struct {
	onDetection func(Detection)
	onOutput    func(flowgraph.Item)
	noRetainDet bool // drop Detections/Requests accumulation
	noRetainOut bool // drop Outputs accumulation
	gate        *shedGate
}

// assemble builds the flowgraph for one run over the given accessor:
// peak detector -> enabled fast detectors -> dispatcher [-> shed gate]
// -> analyzers -> sink.
func (e *Engine) assemble(analyzers []Analyzer, src SampleAccessor, opts assembleOpts) (*flowgraph.Graph, *Dispatcher, *[]flowgraph.Item, error) {
	graph := flowgraph.New()

	peak := NewPeakDetector(e.cfg.Peak)
	graph.MustAdd(peak)
	graph.MustRoot("peak-detector")

	dispatcher := NewDispatcher(e.cfg.Dispatch)
	dispatcher.OnDetection = opts.onDetection
	dispatcher.Retain = !opts.noRetainDet
	dispatcher.instrument(e.cfg.Metrics)
	graph.MustAdd(dispatcher)

	// The detector stage is assembled from registry specs: every module
	// that registered a detector participates the same way, built-in or
	// not ("a new protocol is added by registering a detector", §3.2).
	env := protocols.DetectorEnv{Clock: e.clock, Samples: src}
	added := 0
	seen := map[string]bool{}
	for _, spec := range e.cfg.Detectors {
		if spec.New == nil || seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		b := spec.New(env)
		if b.Name() != spec.Name {
			return nil, nil, nil, fmt.Errorf("core: detector spec %q built a block named %q", spec.Name, b.Name())
		}
		graph.MustAdd(meter(e.cfg.Metrics, "detector", "ns_per_chunk", b))
		graph.MustConnect("peak-detector", b.Name())
		graph.MustConnect(b.Name(), "dispatcher")
		added++
	}
	if added == 0 {
		return nil, nil, nil, fmt.Errorf("core: pipeline has no detectors enabled")
	}

	outputs := new([]flowgraph.Item)
	sink := &sinkBlock{items: outputs, onItem: opts.onOutput, retain: !opts.noRetainOut}
	graph.MustAdd(sink)
	analyzerUpstream := "dispatcher"
	if opts.gate != nil {
		graph.MustAdd(opts.gate)
		graph.MustConnect("dispatcher", opts.gate.Name())
		analyzerUpstream = opts.gate.Name()
	}
	if e.sharded() {
		// One sharded stage replaces the per-analyzer chain: each worker
		// stamps its own analyzer set from the factories (analyzers carry
		// scratch state and cannot be shared), runs the accepting ones in
		// registration order, and the stage re-sequences emissions so the
		// sink sees the inline order. Per-analyzer metering does not apply
		// — the stage accounts its workers' CPU in bulk via OffThreadBusy.
		sh := flowgraph.NewSharded("analyzers", e.demodWorkers(), func(int) flowgraph.Block {
			set := make([]Analyzer, len(e.factories))
			for i, f := range e.factories {
				set[i] = f()
			}
			return &analyzerSetBlock{analyzers: set, src: src}
		})
		graph.MustAdd(sh)
		graph.MustConnect(analyzerUpstream, sh.Name())
		graph.MustConnect(sh.Name(), "sink")
	} else {
		for _, a := range analyzers {
			b := &analyzerBlock{a: a, src: src}
			graph.MustAdd(meter(e.cfg.Metrics, "analyzer", "ns_per_request", b))
			graph.MustConnect(analyzerUpstream, b.Name())
			graph.MustConnect(b.Name(), "sink")
		}
	}
	// Publish per-block work/queue/panic stats into the registry (no-op
	// without one).
	graph.AttachMetrics(e.cfg.Metrics, "flowgraph")
	return graph, dispatcher, outputs, nil
}

// Run processes a full trace.
func (p *Pipeline) Run(stream iq.Samples) (*Result, error) {
	src := &StreamAccessor{Stream: stream}
	graph, dispatcher, outputs, err := p.engine.assemble(p.analyzers, src, assembleOpts{})
	if err != nil {
		return nil, err
	}

	// Chunk source.
	nchunks := (len(stream) + iq.ChunkSamples - 1) / iq.ChunkSamples
	seq := 0
	source := func() (flowgraph.Item, bool) {
		if seq >= nchunks {
			return nil, false
		}
		start := seq * iq.ChunkSamples
		end := start + iq.ChunkSamples
		if end > len(stream) {
			end = len(stream)
		}
		c := Chunk{
			Seq:     seq,
			Span:    iq.Interval{Start: iq.Tick(start), End: iq.Tick(end)},
			Samples: stream[start:end],
		}
		seq++
		return c, true
	}

	if p.engine.cfg.Parallel {
		err = graph.RunParallel(source, 128)
	} else {
		err = graph.Run(source)
	}
	if err != nil {
		return nil, err
	}

	stats := graph.Stats()
	return &Result{
		Detections:  dispatcher.All,
		Requests:    dispatcher.Requests,
		Outputs:     *outputs,
		Stats:       stats,
		Busy:        graph.TotalBusy(),
		StreamLen:   iq.Tick(len(stream)),
		Clock:       p.engine.clock,
		Degradation: degradationFrom(stats, nil),
	}, nil
}
