package core

import (
	"reflect"
	"sync"
	"testing"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/protocols"
)

// shardProbe is a deterministic test analyzer: it accepts every family
// and fingerprints each request from the actual window samples, so the
// equivalence check below proves the sharded stage delivers both the
// same requests in the same order AND the same sample bytes a worker
// goroutine reads through the locked window.
type shardProbe struct {
	label   string
	scratch []float64 // per-instance state: shared instances would race
}

type probeOut struct {
	Who    string
	Span   iq.Interval
	Energy float64
}

func (p *shardProbe) Name() string              { return p.label }
func (p *shardProbe) Accepts(protocols.ID) bool { return true }
func (p *shardProbe) Analyze(src SampleAccessor, req AnalysisRequest, emit func(flowgraph.Item)) error {
	s := src.Slice(req.Span)
	p.scratch = p.scratch[:0]
	var acc float64
	for _, v := range s {
		e := float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
		p.scratch = append(p.scratch, e)
		acc += e
	}
	emit(probeOut{Who: p.label, Span: req.Span, Energy: acc})
	return nil
}

func probeFactories() []AnalyzerFactory {
	return []AnalyzerFactory{
		func() Analyzer { return &shardProbe{label: "probe-a"} },
		func() Analyzer { return &shardProbe{label: "probe-b"} },
	}
}

func runShardSession(t *testing.T, workers int, stream iq.Samples) *Result {
	t.Helper()
	cfg := TimingOnly()
	cfg.DemodWorkers = workers
	e := NewEngine(testClock, cfg, probeFactories()...)
	s, err := e.NewSession(StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(&sliceReader{s: stream})
	if err != nil {
		t.Fatal(err)
	}
	if live := e.Pool().Stats().Live; live != 0 {
		t.Errorf("workers=%d: %d blocks still live after session", workers, live)
	}
	return res
}

// TestShardedSessionEquivalence: a sharded session must be output-
// equivalent to the inline session — same detections, same requests,
// and analyzer outputs identical in content and order (two analyzers
// per request, in registration order, requests in dispatch order).
func TestShardedSessionEquivalence(t *testing.T) {
	stream := sessionStream()
	ref := runShardSession(t, 0, stream)
	if len(ref.Outputs) == 0 {
		t.Fatal("reference session produced no analyzer outputs; test stream is broken")
	}
	for _, workers := range []int{2, 4, -1} {
		got := runShardSession(t, workers, stream)
		if !reflect.DeepEqual(got.Detections, ref.Detections) {
			t.Errorf("workers=%d: detections differ from inline run", workers)
		}
		if !reflect.DeepEqual(got.Requests, ref.Requests) {
			t.Errorf("workers=%d: requests differ from inline run", workers)
		}
		if !reflect.DeepEqual(got.Outputs, ref.Outputs) {
			t.Errorf("workers=%d: %d outputs, want %d identical in order (first diverging entries: %+v)",
				workers, len(got.Outputs), len(ref.Outputs), firstDiff(got.Outputs, ref.Outputs))
		}
	}
}

func firstDiff(a, b []flowgraph.Item) [2]flowgraph.Item {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(a[i], b[i]) {
			return [2]flowgraph.Item{a[i], b[i]}
		}
	}
	return [2]flowgraph.Item{}
}

// TestShardedSessionRace is the -race hammer for the sharded analysis
// stage: several sharded sessions run concurrently over one engine
// (shared block pool churning underneath), each tearing down while its
// siblings are mid-stream. Detections must stay per-session correct and
// every pooled block reference must balance after the storm.
func TestShardedSessionRace(t *testing.T) {
	stream := sessionStream()
	cfg := TimingOnly()
	cfg.DemodWorkers = 4
	e := NewEngine(testClock, cfg, probeFactories()...)

	ref := runShardSession(t, 0, stream)

	const sessions = 8
	results := make([]*Result, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s, err := e.NewSession(StreamConfig{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			results[i], errs[i] = s.Run(&sliceReader{s: stream})
		}(i, s)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Outputs, ref.Outputs) {
			t.Errorf("session %d: outputs differ from single-session sharded run", i)
		}
	}
	if live := e.Pool().Stats().Live; live != 0 {
		t.Errorf("%d blocks still live after all sharded sessions finished", live)
	}
}
