package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"rfdump/internal/blocks"
	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
)

// AnalyzerFactory builds a fresh analyzer instance. Analyzers carry
// per-run scratch state (demodulator delay lines, reusable buffers), so
// an Engine serving several concurrent sessions cannot share instances —
// it shares factories and stamps out one analyzer set per session.
type AnalyzerFactory func() Analyzer

// Engine is the build-once half of the streaming pipeline: the resolved
// detector configuration, the clock, the analyzer factories, the metrics
// registry (inside Config), and the shared block pool. It is immutable
// after construction and safe for concurrent use — NewSession may be
// called from any number of goroutines, and the sessions run
// independently: each gets its own detectors, dispatcher, sample window,
// degradation state and callbacks, while all of them recycle sample
// blocks through the one pool (idle sessions donate capacity to busy
// ones).
type Engine struct {
	cfg       Config
	clock     iq.Clock
	factories []AnalyzerFactory
	pool      *blocks.Pool
	chunks    chunkItemPool
	sessions  atomic.Uint64 // session id allocator
}

// NewEngine resolves the configuration once and returns the engine.
func NewEngine(clock iq.Clock, cfg Config, factories ...AnalyzerFactory) *Engine {
	cfg.Peak = cfg.Peak.withDefaults()
	return &Engine{
		cfg:       cfg,
		clock:     clock,
		factories: factories,
		pool:      blocks.NewPool(iq.ChunkSamples),
	}
}

// Clock returns the engine's sample clock.
func (e *Engine) Clock() iq.Clock { return e.clock }

// sharded reports whether the analysis stage runs on the work-stealing
// worker pool: the configuration asks for it and factories exist to
// stamp per-worker analyzer instances.
func (e *Engine) sharded() bool {
	return e.demodWorkers() > 1 && len(e.factories) > 0
}

// demodWorkers resolves Config.DemodWorkers (negative = GOMAXPROCS).
func (e *Engine) demodWorkers() int {
	if e.cfg.DemodWorkers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.cfg.DemodWorkers
}

// Pool returns the shared block pool (diagnostics and tests; its Stats
// expose allocation behavior).
func (e *Engine) Pool() *blocks.Pool { return e.pool }

// NewSession builds one independent streaming run over the engine:
// fresh detector and analyzer instances, a fresh sample window and
// dispatcher. The session is single-use — assemble, Run, done.
func (e *Engine) NewSession(cfg StreamConfig) (*Session, error) {
	var analyzers []Analyzer
	if !e.sharded() {
		// The sharded stage stamps its own per-worker sets from the
		// factories; building a throwaway set here would only leak state.
		analyzers = make([]Analyzer, len(e.factories))
		for i, f := range e.factories {
			analyzers[i] = f()
		}
	}
	return e.session(analyzers, cfg)
}

// session is NewSession over pre-built analyzer instances (the
// single-session Pipeline path reuses its own instances).
func (e *Engine) session(analyzers []Analyzer, cfg StreamConfig) (*Session, error) {
	if cfg.WindowSamples <= 0 {
		cfg.WindowSamples = 1_600_000 // 200 ms at 8 Msps
	}
	var window blockStore = NewBlockWindow(cfg.WindowSamples)
	if e.cfg.Parallel || e.sharded() {
		// Sharded analysis reads the window from worker goroutines while
		// the source appends, so it needs the copying locked window just
		// like the parallel scheduler.
		window = &lockedBlockWindow{w: NewBlockWindow(cfg.WindowSamples)}
	}
	opts := assembleOpts{
		onDetection: cfg.OnDetection,
		onOutput:    cfg.OnOutput,
		noRetainDet: cfg.NoRetain && (cfg.OnDetection != nil || cfg.OnDetectionCapture != nil),
		noRetainOut: cfg.NoRetain && cfg.OnOutput != nil,
	}
	if cfg.OnDetectionCapture != nil {
		opts.onDetection = e.captureHook(window, cfg)
	}
	var pace *pacer
	if cfg.Overload != nil {
		pace = newPacer(e.clock, *cfg.Overload)
		pace.instrument(e.cfg.Metrics)
		opts.gate = &shedGate{pacer: pace}
	}
	graph, dispatcher, outputs, err := e.assemble(analyzers, window, opts)
	if err != nil {
		return nil, err
	}
	if cfg.Supervise != nil {
		graph.Supervise(*cfg.Supervise)
	}
	return &Session{
		e:          e,
		id:         e.sessions.Add(1),
		window:     window,
		graph:      graph,
		dispatcher: dispatcher,
		outputs:    outputs,
		pace:       pace,
		onStart:    cfg.OnSessionStart,
		onEnd:      cfg.OnSessionEnd,
	}, nil
}

// Session is the per-run half of the split: one live monitoring run over
// an Engine, with its own sample window, flowgraph (detector state),
// dispatcher, degradation accounting and delivery callbacks.
type Session struct {
	e          *Engine
	id         uint64
	window     blockStore
	graph      *flowgraph.Graph
	dispatcher *Dispatcher
	outputs    *[]flowgraph.Item
	pace       *pacer
	onStart    func(id uint64)
	onEnd      func(id uint64, res *Result, err error)
	ran        atomic.Bool
}

// ID returns the engine-assigned session id (unique per engine,
// monotonically increasing from 1). Lifecycle hooks receive it so a
// server can correlate events across many concurrent sessions.
func (s *Session) ID() uint64 { return s.id }

// Run drives the session over a block source until EOF, with bounded
// memory and zero steady-state allocations per chunk: every block is a
// pooled blocks.Block filled in place by the reader, appended to the
// session window (which holds a reference until eviction) and carried
// through the flowgraph by a pooled chunk item whose disposal — normal,
// shed or quarantined — returns the reference.
func (s *Session) Run(src BlockReader) (*Result, error) {
	if s.ran.Swap(true) {
		return nil, fmt.Errorf("core: Session.Run called twice (sessions are single-use)")
	}
	if s.onStart != nil {
		s.onStart(s.id)
	}
	res, err := s.run(src)
	if s.onEnd != nil {
		s.onEnd(s.id, res, err)
	}
	return res, err
}

// run is Run after the single-use guard and lifecycle hooks.
func (s *Session) run(src BlockReader) (*Result, error) {
	defer s.window.Close()

	var (
		seq     int
		readErr error
	)
	source := func() (flowgraph.Item, bool) {
		for {
			if readErr != nil {
				return nil, false
			}
			blk := s.e.pool.Get()
			n, err := src.ReadBlock(blk.Buf())
			if err != nil && !errors.Is(err, io.EOF) {
				readErr = err
			}
			if n == 0 {
				blk.Release()
				readErr = err
				return nil, false
			}
			blk.SetLen(n)
			start := s.window.End()
			span := iq.Interval{Start: start, End: start + iq.Tick(n)}
			s.window.AppendBlock(blk) // the window now owns our reference
			curSeq := seq
			seq++
			if errors.Is(err, io.EOF) {
				readErr = err
			}
			// Last-resort shedding: when the pipeline has fallen past the
			// chunk watermark the chunk never enters the graph (detectors
			// included — they are shed last, and only here). The block
			// stays in the window as plain history.
			if s.pace != nil && s.pace.observe(s.window.End()) >= ShedChunks {
				s.pace.shedChunks.Inc()
				s.pace.shedSamples.Add(int64(n))
				continue
			}
			c := s.e.chunks.get()
			c.Seq = curSeq
			c.Span = span
			c.Samples = blk.Samples()
			c.Block = blk.Retain() // the chunk item's own reference
			return c, true
		}
	}

	var err error
	if s.e.cfg.Parallel {
		err = s.graph.RunParallel(source, 128)
	} else {
		err = s.graph.Run(source)
	}
	if err != nil {
		return nil, err
	}
	if readErr != nil && !errors.Is(readErr, io.EOF) {
		return nil, fmt.Errorf("core: stream source: %w", readErr)
	}

	stats := s.graph.Stats()
	return &Result{
		Detections:  s.dispatcher.All,
		Requests:    s.dispatcher.Requests,
		Outputs:     *s.outputs,
		Stats:       stats,
		Busy:        s.graph.TotalBusy(),
		StreamLen:   s.window.End(),
		Clock:       s.e.clock,
		Degradation: degradationFrom(stats, s.pace),
	}, nil
}

// chunkItem is the pooled flowgraph item carrying one block through the
// detection stage. It implements flowgraph.Owned: the scheduler disposes
// it after the peak detector consumes it (or on any drop path —
// quarantine, fail-fast drain, overload shed), releasing the block
// reference it carries and recycling the item.
type chunkItem struct {
	Chunk
	refs atomic.Int32
	home *chunkItemPool
}

// Retain implements flowgraph.Owned.
func (c *chunkItem) Retain() {
	if c.refs.Add(1) <= 1 {
		panic("core: chunk item retained after release")
	}
}

// Dispose implements flowgraph.Owned.
func (c *chunkItem) Dispose() {
	switch n := c.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("core: chunk item disposed twice")
	}
	if c.Block != nil {
		c.Block.Release()
	}
	c.Chunk = Chunk{}
	c.home.pool.Put(c)
}

// chunkItemPool recycles chunk items (see metaPool).
type chunkItemPool struct {
	pool sync.Pool
}

// get returns a reset item with one reference.
func (cp *chunkItemPool) get() *chunkItem {
	c, ok := cp.pool.Get().(*chunkItem)
	if !ok {
		c = &chunkItem{home: cp}
	}
	c.refs.Store(1)
	return c
}
