package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"rfdump/internal/flowgraph"
	"rfdump/internal/iq"
	"rfdump/internal/metrics"
)

// ShedLevel is the streaming pipeline's graceful-degradation state. The
// shed order follows the paper's cost/tolerance analysis: demodulation is
// the expensive arbiter, so it goes first (downgraded to header-only
// analysis); analysis requests are dropped next; the cheap detectors —
// which tolerate false positives and produce the airtime picture — are
// shed last, and only implicitly, when whole chunks must be dropped at
// the source.
type ShedLevel int32

const (
	// ShedNone: keeping up, everything runs.
	ShedNone ShedLevel = iota
	// ShedDemod: analysis requests are downgraded to header-only.
	ShedDemod
	// ShedAnalysis: analysis requests are dropped before the analyzers.
	ShedAnalysis
	// ShedChunks: chunks are dropped at the source; detectors are blind
	// for the shed spans.
	ShedChunks
)

// String implements fmt.Stringer.
func (l ShedLevel) String() string {
	switch l {
	case ShedNone:
		return "none"
	case ShedDemod:
		return "shed-demod"
	case ShedAnalysis:
		return "shed-analysis"
	case ShedChunks:
		return "shed-chunks"
	}
	return fmt.Sprintf("shed-level-%d", int32(l))
}

// OverloadConfig enables the real-time pacing model in RunStream: the
// pacer compares wall-clock progress against stream time and raises the
// shed level as the pipeline falls behind ("the processing must keep
// up", Section 1 — the monitor tolerates delay, not unbounded lag).
type OverloadConfig struct {
	// DemodLag is the lag watermark above which full demodulation is
	// shed (default 50 ms).
	DemodLag time.Duration
	// AnalysisLag is the watermark above which analysis requests are
	// dropped entirely (default 150 ms).
	AnalysisLag time.Duration
	// ChunkLag is the last-resort watermark above which whole chunks are
	// dropped at the source (default 400 ms).
	ChunkLag time.Duration
	// Now overrides the wall clock (deterministic tests).
	Now func() time.Time
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.DemodLag <= 0 {
		c.DemodLag = 50 * time.Millisecond
	}
	if c.AnalysisLag <= 0 {
		c.AnalysisLag = 150 * time.Millisecond
	}
	if c.ChunkLag <= 0 {
		c.ChunkLag = 400 * time.Millisecond
	}
	return c
}

// pacer tracks processing lag against real time and holds the current
// shed level plus the shedding counters. The level is read by the shed
// gate from a scheduler goroutine while the source updates it, so it is
// atomic; the counters likewise.
type pacer struct {
	cfg     OverloadConfig
	clock   iq.Clock
	start   time.Time
	started bool

	level atomic.Int32
	peak  atomic.Int32

	shedChunks   *metrics.Counter
	shedSamples  *metrics.Counter
	headerOnly   *metrics.Counter
	shedRequests *metrics.Counter

	// Observability (instrument): the current shed level as a gauge and
	// one counter per level transition, so degradation episodes are
	// visible live and countable after the fact.
	reg        *metrics.Registry
	levelGauge *metrics.Gauge
}

func newPacer(clock iq.Clock, cfg OverloadConfig) *pacer {
	return &pacer{
		cfg: cfg.withDefaults(), clock: clock,
		shedChunks:   &metrics.Counter{},
		shedSamples:  &metrics.Counter{},
		headerOnly:   &metrics.Counter{},
		shedRequests: &metrics.Counter{},
	}
}

// instrument publishes the pacer's counters into reg (no-op on nil):
// shedding totals under core/shed/*, the live level gauge, and a
// counter per shed-level transition under core/shed/transition/.
func (p *pacer) instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.reg = reg
	p.shedChunks = reg.Counter("core/shed/chunks")
	p.shedSamples = reg.Counter("core/shed/samples")
	p.headerOnly = reg.Counter("core/shed/header_only")
	p.shedRequests = reg.Counter("core/shed/requests")
	p.levelGauge = reg.Gauge("core/shed/level")
}

func (p *pacer) now() time.Time {
	if p.cfg.Now != nil {
		return p.cfg.Now()
	}
	return time.Now()
}

// observe updates the shed level given how much stream time has been
// delivered, and returns the level the next chunk is admitted at. The
// wall clock starts on the first observation so setup cost is not
// counted as lag.
func (p *pacer) observe(delivered iq.Tick) ShedLevel {
	now := p.now()
	if !p.started {
		p.start = now
		p.started = true
	}
	lag := now.Sub(p.start) - p.clock.Duration(delivered)

	// Raise watermarks.
	lvl := ShedNone
	if lag >= p.cfg.DemodLag {
		lvl = ShedDemod
	}
	if lag >= p.cfg.AnalysisLag {
		lvl = ShedAnalysis
	}
	if lag >= p.cfg.ChunkLag {
		lvl = ShedChunks
	}
	cur := ShedLevel(p.level.Load())
	if lvl < cur {
		// Hysteresis on recovery: a level is only left once lag falls
		// below half its watermark, so the pipeline does not oscillate
		// around a boundary.
		down := ShedNone
		if lag > p.cfg.DemodLag/2 {
			down = ShedDemod
		}
		if lag > p.cfg.AnalysisLag/2 {
			down = ShedAnalysis
		}
		if lag > p.cfg.ChunkLag/2 {
			down = ShedChunks
		}
		if down > lvl {
			lvl = down
		}
		if lvl > cur {
			lvl = cur
		}
	}
	if lvl != cur {
		p.level.Store(int32(lvl))
		p.levelGauge.Set(int64(lvl))
		if p.reg != nil {
			p.reg.Counter("core/shed/transition/" + cur.String() + "->" + lvl.String()).Inc()
		}
	}
	if int32(lvl) > p.peak.Load() {
		p.peak.Store(int32(lvl))
	}
	return lvl
}

// current returns the shed level without updating it.
func (p *pacer) current() ShedLevel { return ShedLevel(p.level.Load()) }

// shedGate sits between the dispatcher and the analyzers, applying the
// shed order under overload: at ShedDemod requests are downgraded to
// header-only analysis, at ShedAnalysis and above they are dropped.
// Every decision is accounted so Result.Degradation can attribute
// misses to shedding rather than SNR.
type shedGate struct {
	pacer *pacer
}

// Name implements flowgraph.Block.
func (s *shedGate) Name() string { return "shed-gate" }

// Process implements flowgraph.Block.
func (s *shedGate) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	req, ok := item.(AnalysisRequest)
	if !ok {
		emit(item)
		return nil
	}
	switch level := s.pacer.current(); {
	case level >= ShedAnalysis:
		s.pacer.shedRequests.Inc()
	case level >= ShedDemod:
		req.HeaderOnly = true
		s.pacer.headerOnly.Inc()
		emit(req)
	default:
		emit(req)
	}
	return nil
}

// Flush implements flowgraph.Block.
func (s *shedGate) Flush(func(flowgraph.Item)) error { return nil }

// Degradation attributes lost work: what overload shedding dropped and
// what supervision quarantined, so miss-rate metrics can separate
// shedding-induced losses from SNR effects.
type Degradation struct {
	// ShedChunks / ShedSamples count input dropped at the source under
	// ShedChunks (detectors never saw these spans).
	ShedChunks  int64
	ShedSamples int64
	// HeaderOnlyRequests counts analysis requests downgraded to
	// header-only under ShedDemod.
	HeaderOnlyRequests int64
	// ShedRequests counts analysis requests dropped under ShedAnalysis.
	ShedRequests int64
	// PeakLevel is the worst shed level the run reached.
	PeakLevel ShedLevel
	// BlockErrors / BlockPanics / BlockDropped aggregate the supervised
	// scheduler's per-block counters.
	BlockErrors  int64
	BlockPanics  int64
	BlockDropped int64
	// Quarantined names the blocks out of service at end of run.
	Quarantined []string
}

// Any reports whether the run degraded at all.
func (d Degradation) Any() bool {
	return d.ShedChunks > 0 || d.HeaderOnlyRequests > 0 || d.ShedRequests > 0 ||
		d.BlockErrors > 0 || d.BlockPanics > 0 || d.BlockDropped > 0 ||
		len(d.Quarantined) > 0
}

// String implements fmt.Stringer with a one-line operator summary.
func (d Degradation) String() string {
	return fmt.Sprintf(
		"shed: %d chunks (%d samples), %d header-only, %d dropped requests, peak=%s; blocks: %d errors, %d panics, %d dropped items, quarantined=%v",
		d.ShedChunks, d.ShedSamples, d.HeaderOnlyRequests, d.ShedRequests, d.PeakLevel,
		d.BlockErrors, d.BlockPanics, d.BlockDropped, d.Quarantined)
}

// degradationFrom merges pacer counters (nil when overload control is
// off) with the graph's supervision counters.
func degradationFrom(stats []flowgraph.BlockStat, p *pacer) Degradation {
	var d Degradation
	if p != nil {
		d.ShedChunks = p.shedChunks.Load()
		d.ShedSamples = p.shedSamples.Load()
		d.HeaderOnlyRequests = p.headerOnly.Load()
		d.ShedRequests = p.shedRequests.Load()
		d.PeakLevel = ShedLevel(p.peak.Load())
	}
	for _, st := range stats {
		d.BlockErrors += st.Errors
		d.BlockPanics += st.Panics
		d.BlockDropped += st.Dropped
		if st.Quarantined {
			d.Quarantined = append(d.Quarantined, st.Name)
		}
	}
	return d
}
