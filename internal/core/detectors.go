package core

import (
	"fmt"
	"strings"
)

// ParseDetectors resolves a comma-separated detector list (the shared
// -detectors flag syntax of rfdump and rfdumpd) into a Config. Known
// names: timing, phase, freq, microwave, zigbee, ofdm. At least one
// detector must be selected.
func ParseDetectors(list string) (Config, error) {
	cfg := Config{}
	any := false
	for _, d := range strings.Split(list, ",") {
		switch strings.TrimSpace(d) {
		case "timing":
			cfg.WiFiTiming = &WiFiTimingConfig{}
			cfg.BTTiming = &BTTimingConfig{}
		case "phase":
			cfg.WiFiPhase = &WiFiPhaseConfig{}
			cfg.BTPhase = &BTPhaseConfig{}
		case "freq":
			cfg.BTFreq = &BTFreqConfig{}
		case "microwave":
			cfg.Microwave = true
		case "zigbee":
			cfg.ZigBee = true
		case "ofdm":
			cfg.OFDM = &OFDMConfig{}
		case "":
			continue
		default:
			return cfg, fmt.Errorf("unknown detector %q", d)
		}
		any = true
	}
	if !any {
		return cfg, fmt.Errorf("no detectors selected")
	}
	return cfg, nil
}
