package core

import (
	"rfdump/internal/protocols"
)

// ErrDetectorList is returned by ParseDetectors when the user asked for
// the "list" mode; callers print DetectorList() and exit.
var ErrDetectorList = protocols.ErrDetectorList

// ParseDetectors resolves a comma-separated detector list (the shared
// -detectors flag syntax of rfdump and rfdumpd) into a Config. The
// grammar is registry-derived — see DetectorUsage for the selector
// forms — so a protocol registered out of tree is selectable with no
// changes here. At least one detector must be selected.
func ParseDetectors(list string) (Config, error) {
	specs, err := protocols.SelectDetectors(list)
	if err != nil {
		return Config{}, err
	}
	return Detect(specs...), nil
}

// DetectorUsage is the one-line -detectors flag help shared by rfdump
// and rfdumpd, enumerating the registry's selectors.
func DetectorUsage() string { return protocols.DetectorUsage() }

// DetectorList renders the full registered-detector table (the
// -detectors=list mode).
func DetectorList() string { return protocols.ListDetectors() }
