package core

import (
	"time"

	"rfdump/internal/flowgraph"
	"rfdump/internal/metrics"
)

// meteredBlock wraps a detector or analyzer block with the cost ledger
// the paper's argument rests on: a per-item latency histogram (is the
// "fast detector" still an order of magnitude cheaper than
// demodulation?), accept/reject counters (how selective is it?), and —
// for emitted products carrying a pass/fail verdict, i.e. decoded
// packets — per-protocol CRC pass/fail counters. The wrapper preserves
// the inner block's name so graph wiring and CPU accounting are
// unchanged, and it implements flowgraph.WorkObserver so per-item
// timing reuses the scheduler's own busy-time measurement instead of a
// second pair of clock reads.
type meteredBlock struct {
	inner     flowgraph.Block
	reg       *metrics.Registry
	perItemNs *metrics.Histogram
	accepts   *metrics.Counter // items emitted downstream
	rejects   *metrics.Counter // inputs that produced no output

	// Per-invocation scratch. Each block is driven by exactly one
	// scheduler goroutine (the scheduler thread, or the node's worker
	// under RunParallel), so binding the downstream emit here — and the
	// forward method value once at construction — keeps Process
	// allocation-free.
	fwd     func(flowgraph.Item)
	emit    func(flowgraph.Item)
	emitted int64
}

// meter wraps b when a registry is configured (kind is "detector" or
// "analyzer"; unit names the per-item histogram: ns_per_chunk /
// ns_per_request). With reg == nil the block is returned untouched and
// the pipeline carries zero instrumentation cost.
func meter(reg *metrics.Registry, kind, unit string, b flowgraph.Block) flowgraph.Block {
	if reg == nil {
		return b
	}
	base := "core/" + kind + "/" + b.Name() + "/"
	m := &meteredBlock{
		inner:     b,
		reg:       reg,
		perItemNs: reg.Histogram(base+unit, nil),
		accepts:   reg.Counter(base + "accepts"),
		rejects:   reg.Counter(base + "rejects"),
	}
	m.fwd = m.forward
	return m
}

// Name implements flowgraph.Block (pass-through: wiring by name).
func (m *meteredBlock) Name() string { return m.inner.Name() }

// forward tallies one emission and its product verdict, then passes it
// downstream.
func (m *meteredBlock) forward(out flowgraph.Item) {
	m.emitted++
	if o, ok := out.(metrics.Outcome); ok {
		label, pass := o.MetricOutcome()
		if pass {
			m.reg.Counter("demod/" + label + "/crc_pass").Inc()
		} else {
			m.reg.Counter("demod/" + label + "/crc_fail").Inc()
		}
	}
	m.emit(out)
}

// Process implements flowgraph.Block.
func (m *meteredBlock) Process(item flowgraph.Item, emit func(flowgraph.Item)) error {
	m.emit = emit
	m.emitted = 0
	err := m.inner.Process(item, m.fwd)
	if m.emitted > 0 {
		m.accepts.Add(m.emitted)
	} else {
		m.rejects.Inc()
	}
	return err
}

// ObserveWork implements flowgraph.WorkObserver: the scheduler reports
// the duration it measured for this block's latest Process call.
func (m *meteredBlock) ObserveWork(d time.Duration) {
	m.perItemNs.Observe(int64(d))
}

// Flush implements flowgraph.Block. End-of-stream emissions count as
// accepts but are not timed per item (there is no item).
func (m *meteredBlock) Flush(emit func(flowgraph.Item)) error {
	m.emit = emit
	m.emitted = 0
	err := m.inner.Flush(m.fwd)
	m.accepts.Add(m.emitted)
	return err
}
