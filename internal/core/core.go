package core
